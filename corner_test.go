package dscts

// Determinism regression tests for the multi-corner sign-off path: the
// worker count and the corner order must never change any per-corner
// metric. Each corner's evaluation is a pure function of (tree, tech,
// corner) and results merge in corner order, so Workers=1 and Workers=N —
// and any permutation of the corner list — are required to produce
// bit-identical per-corner Metrics, not merely close ones.

import (
	"context"
	"testing"

	"dscts/internal/core"
	"dscts/internal/dse"
)

// TestCornerWorkersDeterminism synthesizes C4 and C5 with the full
// slow/typ/fast sign-off at one worker and at eight and requires
// bit-identical per-corner Metrics and summaries.
func TestCornerWorkersDeterminism(t *testing.T) {
	tc := ASAP7()
	for _, id := range []string{"C4", "C5"} {
		id := id
		t.Run(id, func(t *testing.T) {
			p, err := GenerateBenchmark(id, 1)
			if err != nil {
				t.Fatal(err)
			}
			run := func(workers int) *CornerReport {
				out, err := Synthesize(p.Root, p.Sinks, tc, Options{Workers: workers, Corners: SignoffCorners()})
				if err != nil {
					t.Fatal(err)
				}
				return out.Corners
			}
			a, b := run(1), run(8)
			if len(a.Results) != 3 || len(b.Results) != 3 {
				t.Fatalf("corner counts %d vs %d", len(a.Results), len(b.Results))
			}
			for i := range a.Results {
				label := id + " corner " + a.Results[i].Corner.Name
				metricsIdentical(t, label, a.Results[i].Metrics, b.Results[i].Metrics)
			}
			if a.Summary != b.Summary {
				t.Fatalf("summaries differ: %+v vs %+v", a.Summary, b.Summary)
			}
		})
	}
}

// TestCornerOrderDeterminism permutes the corner list and requires every
// corner's metrics to match the canonical order's, with results merged in
// request order and an order-free summary.
func TestCornerOrderDeterminism(t *testing.T) {
	tc := ASAP7()
	p, err := GenerateBenchmark("C4", 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Synthesize(p.Root, p.Sinks, tc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	canonical := SignoffCorners() // slow, typ, fast
	ref, err := EvaluateCorners(out.Tree, tc, canonical, 1)
	if err != nil {
		t.Fatal(err)
	}
	perms := [][]int{{0, 1, 2}, {2, 1, 0}, {1, 2, 0}, {2, 0, 1}}
	for _, perm := range perms {
		cs := make([]Corner, len(perm))
		for i, j := range perm {
			cs[i] = canonical[j]
		}
		rep, err := EvaluateCorners(out.Tree, tc, cs, 4)
		if err != nil {
			t.Fatal(err)
		}
		for i, j := range perm {
			if rep.Results[i].Corner.Name != canonical[j].Name {
				t.Fatalf("perm %v: result %d is %s want %s", perm, i, rep.Results[i].Corner.Name, canonical[j].Name)
			}
			metricsIdentical(t, "perm corner "+canonical[j].Name, ref.Results[j].Metrics, rep.Results[i].Metrics)
		}
		if rep.Summary != ref.Summary {
			t.Fatalf("perm %v: summary %+v vs %+v", perm, rep.Summary, ref.Summary)
		}
	}
}

// TestCornerSweepDeterminismDSE checks a concurrent multi-corner DSE sweep
// returns the same corner points in the same order as a single-threaded
// one, and that the cross-corner Pareto front is reproducible.
func TestCornerSweepDeterminismDSE(t *testing.T) {
	tc := ASAP7()
	p, err := GenerateBenchmark("C4", 1)
	if err != nil {
		t.Fatal(err)
	}
	ths := []int{50, 200, 800}
	run := func(workers int) []DSECornerPoint {
		pts, err := dse.SweepFanoutCorners(context.Background(), p.Root, p.Sinks, tc, ths, SignoffCorners(), core.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return pts
	}
	a, b := run(1), run(4)
	if len(a) != len(b) {
		t.Fatalf("point counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Param != b[i].Param || len(a[i].Corners) != len(b[i].Corners) {
			t.Fatalf("point %d shape differs", i)
		}
		for c := range a[i].Corners {
			if a[i].Corners[c] != b[i].Corners[c] {
				t.Errorf("point %d corner %d differs: %+v vs %+v", i, c, a[i].Corners[c], b[i].Corners[c])
			}
		}
	}
	fa := ParetoCornersLatency(a)
	fb := ParetoCornersLatency(b)
	if len(fa) != len(fb) {
		t.Fatalf("front sizes differ: %d vs %d", len(fa), len(fb))
	}
	if len(fa) == 0 {
		t.Fatal("empty cross-corner front")
	}
}

// TestSynthesizeWithCornersMatchesPlain pins that attaching sign-off
// corners never perturbs the synthesis itself: the tree and the typical-
// corner metrics equal a corner-free run's, and the typ corner result
// equals the top-level metrics.
func TestSynthesizeWithCornersMatchesPlain(t *testing.T) {
	tc := ASAP7()
	p, err := GenerateBenchmark("C5", 1)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Synthesize(p.Root, p.Sinks, tc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cornered, err := Synthesize(p.Root, p.Sinks, tc, Options{Corners: SignoffCorners()})
	if err != nil {
		t.Fatal(err)
	}
	metricsIdentical(t, "top-level metrics", plain.Metrics, cornered.Metrics)
	typ := cornered.Corners.ByName("typ")
	if typ == nil {
		t.Fatal("typ corner missing")
	}
	metricsIdentical(t, "typ corner vs top-level", cornered.Metrics, typ.Metrics)
}
