package dscts

// Golden-metrics regression suite: the single-corner (typical) Metrics of
// every built-in benchmark are pinned in testdata/golden/*.json so a
// refactor that silently drifts results — a reordered reduction, a changed
// default, an "equivalent" algorithm swap — fails here instead of shipping.
//
// The engine is deterministic (TestWorkersDeterminism), so the pins use a
// tight relative tolerance rather than exact equality only to absorb
// cross-architecture floating-point differences (e.g. FMA contraction).
// Intentional result changes re-pin with:
//
//	go test -run TestGoldenMetrics -update .

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden snapshots from the current engine")

// goldenMetrics is one design's pinned numbers. Floats carry a relative
// tolerance; counts are exact.
type goldenMetrics struct {
	Design    string  `json:"design"`
	Sinks     int     `json:"sinks"`
	LatencyPS float64 `json:"latency_ps"`
	SkewPS    float64 `json:"skew_ps"`
	WLum      float64 `json:"wirelength_um"`
	Buffers   int     `json:"buffers"`
	NTSVs     int     `json:"ntsvs"`
	PowerMW   float64 `json:"power_total_mw"`
}

// goldenRelTol is the relative tolerance for pinned floats: far below any
// real regression (which moves results by percents), far above any
// cross-platform FP noise (ulps).
const goldenRelTol = 1e-6

func goldenPath(id string) string {
	return filepath.Join("testdata", "golden", id+".json")
}

func currentGolden(t *testing.T, id string) goldenMetrics {
	t.Helper()
	tc := ASAP7()
	p, err := GenerateBenchmark(id, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Synthesize(p.Root, p.Sinks, tc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pw, err := EstimatePower(out.Tree, tc, DefaultPowerParams())
	if err != nil {
		t.Fatal(err)
	}
	m := out.Metrics
	return goldenMetrics{
		Design: id, Sinks: len(p.Sinks),
		LatencyPS: m.Latency, SkewPS: m.Skew, WLum: m.WL,
		Buffers: m.Buffers, NTSVs: m.NTSVs,
		PowerMW: pw.TotalMW,
	}
}

func relClose(a, b float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= goldenRelTol*scale
}

func TestGoldenMetrics(t *testing.T) {
	for _, id := range Benchmarks() {
		id := id
		t.Run(id, func(t *testing.T) {
			if testing.Short() && id != "C4" && id != "C5" {
				t.Skip("large design skipped with -short")
			}
			got := currentGolden(t, id)
			path := goldenPath(id)
			if *updateGolden {
				data, err := json.MarshalIndent(got, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				data = append(data, '\n')
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("updated %s", path)
				return
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden snapshot (run with -update to create): %v", err)
			}
			var want goldenMetrics
			if err := json.Unmarshal(data, &want); err != nil {
				t.Fatalf("corrupt golden snapshot %s: %v", path, err)
			}
			var diffs []string
			intEq := func(name string, g, w int) {
				if g != w {
					diffs = append(diffs, fmt.Sprintf("%s: got %d, pinned %d", name, g, w))
				}
			}
			fltEq := func(name string, g, w float64) {
				if !relClose(g, w) {
					diffs = append(diffs, fmt.Sprintf("%s: got %.9g, pinned %.9g (rel %.2g)",
						name, g, w, math.Abs(g-w)/math.Max(math.Abs(g), math.Abs(w))))
				}
			}
			intEq("sinks", got.Sinks, want.Sinks)
			intEq("buffers", got.Buffers, want.Buffers)
			intEq("ntsvs", got.NTSVs, want.NTSVs)
			fltEq("latency_ps", got.LatencyPS, want.LatencyPS)
			fltEq("skew_ps", got.SkewPS, want.SkewPS)
			fltEq("wirelength_um", got.WLum, want.WLum)
			fltEq("power_total_mw", got.PowerMW, want.PowerMW)
			if len(diffs) > 0 {
				t.Errorf("%s drifted from golden snapshot %s:\n  %s\n(re-pin deliberate changes with: go test -run TestGoldenMetrics -update .)",
					id, path, diffs[0])
				for _, d := range diffs[1:] {
					t.Errorf("  %s", d)
				}
			}
		})
	}
}
