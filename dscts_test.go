package dscts

import (
	"bytes"
	"testing"
)

func TestPublicAPIQuickstart(t *testing.T) {
	p, err := GenerateBenchmark("C4", 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Synthesize(p.Root, p.Sinks, ASAP7(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Metrics.Latency <= 0 || out.Metrics.NTSVs == 0 {
		t.Fatalf("implausible outcome %+v", out.Metrics)
	}
}

func TestPublicAPIBenchmarks(t *testing.T) {
	ids := Benchmarks()
	if len(ids) != 5 || ids[0] != "C1" || ids[4] != "C5" {
		t.Fatalf("benchmarks: %v", ids)
	}
	if _, err := GenerateBenchmark("nope", 1); err == nil {
		t.Error("unknown benchmark should error")
	}
}

func TestPublicAPIDEFRoundTrip(t *testing.T) {
	p, err := GenerateBenchmark("C4", 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDEF(p, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseDEF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Sinks) != len(p.Sinks) {
		t.Fatalf("%d vs %d sinks", len(back.Sinks), len(p.Sinks))
	}
	if err := WriteDEF(nil, &buf); err == nil {
		t.Error("nil placement should error")
	}
}

func TestPublicAPIBaselinesAndEval(t *testing.T) {
	p, err := GenerateBenchmark("C4", 3)
	if err != nil {
		t.Fatal(err)
	}
	tc := ASAP7()
	tr, err := OpenROADBaseline(p.Root, p.Sinks, tc)
	if err != nil {
		t.Fatal(err)
	}
	before, err := Evaluate(tr, tc)
	if err != nil {
		t.Fatal(err)
	}
	n, err := FlipVeloso(tr)
	if err != nil || n == 0 {
		t.Fatalf("FlipVeloso: n=%d err=%v", n, err)
	}
	after, err := Evaluate(tr, tc)
	if err != nil {
		t.Fatal(err)
	}
	if after.Latency >= before.Latency {
		t.Fatalf("flip did not help: %v -> %v", before.Latency, after.Latency)
	}
	nl, err := EvaluateNLDM(tr, tc)
	if err != nil {
		t.Fatal(err)
	}
	if nl.MaxSlew <= 0 {
		t.Error("NLDM evaluation should report slew")
	}
}

func TestPublicAPIFlipKnobs(t *testing.T) {
	p, err := GenerateBenchmark("C4", 4)
	if err != nil {
		t.Fatal(err)
	}
	tc := ASAP7()
	base, err := OpenROADBaseline(p.Root, p.Sinks, tc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FlipByFanout(base.Clone(), 100); err != nil {
		t.Fatal(err)
	}
	if _, err := FlipByCriticality(base.Clone(), tc, 0.5); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIDSE(t *testing.T) {
	p, err := GenerateBenchmark("C4", 5)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := ExploreFanout(p.Root, p.Sinks, ASAP7(), []int{50, 200, 800})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("%d points", len(pts))
	}
	if f := ParetoLatency(pts); len(f) == 0 || len(f) > 3 {
		t.Fatalf("latency front size %d", len(f))
	}
	if f := ParetoSkew(pts); len(f) == 0 {
		t.Fatal("empty skew front")
	}
}
