package dscts

import (
	"bytes"
	"testing"
)

func TestPublicAPIQuickstart(t *testing.T) {
	p, err := GenerateBenchmark("C4", 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Synthesize(p.Root, p.Sinks, ASAP7(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Metrics.Latency <= 0 || out.Metrics.NTSVs == 0 {
		t.Fatalf("implausible outcome %+v", out.Metrics)
	}
}

func TestPublicAPIBenchmarks(t *testing.T) {
	ids := Benchmarks()
	if len(ids) != 5 || ids[0] != "C1" || ids[4] != "C5" {
		t.Fatalf("benchmarks: %v", ids)
	}
	if _, err := GenerateBenchmark("nope", 1); err == nil {
		t.Error("unknown benchmark should error")
	}
}

func TestPublicAPIDEFRoundTrip(t *testing.T) {
	p, err := GenerateBenchmark("C4", 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDEF(p, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseDEF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Sinks) != len(p.Sinks) {
		t.Fatalf("%d vs %d sinks", len(back.Sinks), len(p.Sinks))
	}
	if err := WriteDEF(nil, &buf); err == nil {
		t.Error("nil placement should error")
	}
}

// TestDEFRoundTripPreservesPlacement checks ParseDEF(WriteDEF(p)) preserves
// the clock root, sink count and every sink coordinate for C1..C3. DEF
// stores integer database units at 1000 DBU/µm, so coordinates survive up
// to half a nanometre.
func TestDEFRoundTripPreservesPlacement(t *testing.T) {
	const tol = 0.5e-3 // µm: half a DBU at 1000 DBU/µm
	near := func(a, b float64) bool {
		d := a - b
		return d <= tol && d >= -tol
	}
	for _, id := range []string{"C1", "C2", "C3"} {
		p, err := GenerateBenchmark(id, 1)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteDEF(p, &buf); err != nil {
			t.Fatalf("%s: write: %v", id, err)
		}
		back, err := ParseDEF(&buf)
		if err != nil {
			t.Fatalf("%s: parse: %v", id, err)
		}
		if !near(back.Root.X, p.Root.X) || !near(back.Root.Y, p.Root.Y) {
			t.Fatalf("%s: root %v round-tripped to %v", id, p.Root, back.Root)
		}
		if len(back.Sinks) != len(p.Sinks) {
			t.Fatalf("%s: %d sinks round-tripped to %d", id, len(p.Sinks), len(back.Sinks))
		}
		for i, s := range p.Sinks {
			if !near(back.Sinks[i].X, s.X) || !near(back.Sinks[i].Y, s.Y) {
				t.Fatalf("%s: sink %d %v round-tripped to %v", id, i, s, back.Sinks[i])
			}
		}
	}
}

// TestParseDEFMalformed covers the parser's error paths: syntactically
// broken files and structurally clock-less ones must error, never yield a
// placement.
func TestParseDEFMalformed(t *testing.T) {
	cases := map[string]string{
		"empty":             "",
		"truncated section": "VERSION 5.8 ;\nDESIGN x ;\nCOMPONENTS 1 ;\n- ff_0 DFF + PLACED ( 10 10 ) N ;\n", // no END COMPONENTS / END DESIGN
		"bad dbu":           "VERSION 5.8 ;\nDESIGN x ;\nUNITS DISTANCE MICRONS zap ;\nEND DESIGN\n",
		"bad coordinate":    "VERSION 5.8 ;\nDESIGN x ;\nDIEAREA ( 0 0 ) ( 10 oops ) ;\nEND DESIGN\n",
		"no clock net":      "VERSION 5.8 ;\nDESIGN x ;\nDIEAREA ( 0 0 ) ( 1000 1000 ) ;\nEND DESIGN\n",
	}
	for name, body := range cases {
		if _, err := ParseDEF(bytes.NewReader([]byte(body))); err == nil {
			t.Errorf("%s: malformed DEF parsed without error", name)
		}
	}
}

func TestPublicAPIBaselinesAndEval(t *testing.T) {
	p, err := GenerateBenchmark("C4", 3)
	if err != nil {
		t.Fatal(err)
	}
	tc := ASAP7()
	tr, err := OpenROADBaseline(p.Root, p.Sinks, tc)
	if err != nil {
		t.Fatal(err)
	}
	before, err := Evaluate(tr, tc)
	if err != nil {
		t.Fatal(err)
	}
	n, err := FlipVeloso(tr)
	if err != nil || n == 0 {
		t.Fatalf("FlipVeloso: n=%d err=%v", n, err)
	}
	after, err := Evaluate(tr, tc)
	if err != nil {
		t.Fatal(err)
	}
	if after.Latency >= before.Latency {
		t.Fatalf("flip did not help: %v -> %v", before.Latency, after.Latency)
	}
	nl, err := EvaluateNLDM(tr, tc)
	if err != nil {
		t.Fatal(err)
	}
	if nl.MaxSlew <= 0 {
		t.Error("NLDM evaluation should report slew")
	}
}

func TestPublicAPIFlipKnobs(t *testing.T) {
	p, err := GenerateBenchmark("C4", 4)
	if err != nil {
		t.Fatal(err)
	}
	tc := ASAP7()
	base, err := OpenROADBaseline(p.Root, p.Sinks, tc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FlipByFanout(base.Clone(), 100); err != nil {
		t.Fatal(err)
	}
	if _, err := FlipByCriticality(base.Clone(), tc, 0.5); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIDSE(t *testing.T) {
	p, err := GenerateBenchmark("C4", 5)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := ExploreFanout(p.Root, p.Sinks, ASAP7(), []int{50, 200, 800}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("%d points", len(pts))
	}
	if f := ParetoLatency(pts); len(f) == 0 || len(f) > 3 {
		t.Fatalf("latency front size %d", len(f))
	}
	if f := ParetoSkew(pts); len(f) == 0 {
		t.Fatal("empty skew front")
	}
}
