package main

import (
	"fmt"
	"os"
	"time"

	"dscts/internal/baseline"
	"dscts/internal/bench"
	"dscts/internal/core"
	"dscts/internal/ctree"
	"dscts/internal/eval"
	"dscts/internal/report"
	"dscts/internal/tech"
)

func table1(cfg config) error {
	tc := tech.ASAP7()
	t := report.NewTable("Table I: layer unit resistances and capacitances",
		"Unit Res. (kOhm/um)", "Unit Cap. (fF/um)")
	for _, name := range tc.SortedLayerNames() {
		l, _ := tc.Layer(name)
		t.AddRow(name, l.UnitRes, l.UnitCap)
	}
	t.AddTextRow("nTSV", fmt.Sprintf("%.3f", tc.TSV.Res), fmt.Sprintf("%.3f", tc.TSV.Cap))
	t.Render(os.Stdout)
	return emitCSV(cfg, "table1.csv", t)
}

func table2(cfg config) error {
	t := report.NewTable("Table II: benchmark statistics",
		"Name", "#Cells", "#FFs", "Util.", "Die (um)")
	for _, d := range bench.Suite() {
		t.AddTextRow(d.ID, d.Name,
			fmt.Sprintf("%d", d.Cells), fmt.Sprintf("%d", d.FFs),
			fmt.Sprintf("%.2f", d.Util), fmt.Sprintf("%.0f", bench.DieSide(d)))
	}
	t.Render(os.Stdout)
	return emitCSV(cfg, "table2.csv", t)
}

// flowResult is one cell group of Table III.
type flowResult struct {
	Latency, Skew, WL float64
	Bufs, TSVs        int
	RT                float64 // seconds
}

func evalTree(tc *tech.Tech, t *ctree.Tree) (*eval.Metrics, error) {
	return eval.New(tc, eval.Elmore).Evaluate(t)
}

func fromMetrics(m *eval.Metrics, rt float64) flowResult {
	return flowResult{Latency: m.Latency, Skew: m.Skew, WL: m.WL, Bufs: m.Buffers, TSVs: m.NTSVs, RT: rt}
}

// table3Flows runs all eight Table III flows for one design.
func table3Flows(tc *tech.Tech, p *bench.Placement) (map[string]flowResult, error) {
	out := map[string]flowResult{}

	// OpenROAD-style buffered clock tree (front side only).
	t0 := time.Now()
	orTree, err := baseline.OpenROADTree(p.Root, p.Sinks, tc, baseline.OpenROADOptions{Seed: 7})
	if err != nil {
		return nil, fmt.Errorf("openroad tree: %w", err)
	}
	orBuildRT := time.Since(t0).Seconds()
	m, err := evalTree(tc, orTree)
	if err != nil {
		return nil, err
	}
	out["or"] = fromMetrics(m, orBuildRT)

	// OpenROAD + [2].
	t1 := time.Now()
	orVeloso := orTree.Clone()
	if _, err := baseline.Veloso(orVeloso); err != nil {
		return nil, fmt.Errorf("openroad+[2]: %w", err)
	}
	m, err = evalTree(tc, orVeloso)
	if err != nil {
		return nil, err
	}
	out["or+v"] = fromMetrics(m, orBuildRT+time.Since(t1).Seconds())

	// Ours (full double-side flow, all edges full mode).
	ours, err := core.Synthesize(p.Root, p.Sinks, tc, core.Options{})
	if err != nil {
		return nil, fmt.Errorf("ours: %w", err)
	}
	out["ours"] = fromMetrics(ours.Metrics, ours.TotalTime.Seconds())

	// Our buffered clock tree (single side: routing + buffer insertion +
	// skew refinement).
	buffered, err := core.Synthesize(p.Root, p.Sinks, tc, core.Options{Mode: core.SingleSide})
	if err != nil {
		return nil, fmt.Errorf("our buffered: %w", err)
	}
	out["buf"] = fromMetrics(buffered.Metrics, buffered.TotalTime.Seconds())

	// Our buffered + [2]/[7]/[6] (paper settings: fanout 100, q = 0.5).
	for key, apply := range map[string]func(*ctree.Tree) error{
		"buf+v": func(t *ctree.Tree) error { _, err := baseline.Veloso(t); return err },
		"buf+f": func(t *ctree.Tree) error { _, err := baseline.FanoutFlip(t, 100); return err },
		"buf+c": func(t *ctree.Tree) error { _, err := baseline.CriticalFlip(t, tc, 0.5); return err },
	} {
		tStart := time.Now()
		tr := buffered.Tree.Clone()
		if err := apply(tr); err != nil {
			return nil, fmt.Errorf("%s: %w", key, err)
		}
		m, err := evalTree(tc, tr)
		if err != nil {
			return nil, err
		}
		out[key] = fromMetrics(m, buffered.TotalTime.Seconds()+time.Since(tStart).Seconds())
	}
	return out, nil
}

func table3(cfg config) error {
	tc := tech.ASAP7()
	top := report.NewTable("Table III (top): OpenROAD-style flows vs Ours",
		"OR Lat", "OR Skew", "OR Buf",
		"OR+[2] Lat", "OR+[2] Skew", "OR+[2] Buf", "OR+[2] WL", "OR+[2] TSV", "OR+[2] RT",
		"Ours Lat", "Ours Skew", "Ours Buf", "Ours WL", "Ours TSV", "Ours RT")
	bot := report.NewTable("Table III (bottom): post-CTS methods on our buffered clock tree",
		"Buf Lat", "Buf Skew", "Buf Buf",
		"+[2] Lat", "+[2] Skew", "+[2] TSV",
		"+[7] Lat", "+[7] Skew", "+[7] TSV",
		"+[6] Lat", "+[6] Skew", "+[6] TSV",
		"Ours Lat", "Ours Skew", "Ours TSV")
	for _, d := range bench.Suite() {
		fmt.Fprintf(os.Stderr, "table3: running %s (%s, %d FFs)...\n", d.ID, d.Name, d.FFs)
		p, err := bench.Generate(d, cfg.seed)
		if err != nil {
			return fmt.Errorf("%s: %w", d.ID, err)
		}
		r, err := table3Flows(tc, p)
		if err != nil {
			return fmt.Errorf("%s: %w", d.ID, err)
		}
		top.AddRow(d.ID,
			r["or"].Latency, r["or"].Skew, float64(r["or"].Bufs),
			r["or+v"].Latency, r["or+v"].Skew, float64(r["or+v"].Bufs), r["or+v"].WL/1000, float64(r["or+v"].TSVs), r["or+v"].RT,
			r["ours"].Latency, r["ours"].Skew, float64(r["ours"].Bufs), r["ours"].WL/1000, float64(r["ours"].TSVs), r["ours"].RT)
		bot.AddRow(d.ID,
			r["buf"].Latency, r["buf"].Skew, float64(r["buf"].Bufs),
			r["buf+v"].Latency, r["buf+v"].Skew, float64(r["buf+v"].TSVs),
			r["buf+f"].Latency, r["buf+f"].Skew, float64(r["buf+f"].TSVs),
			r["buf+c"].Latency, r["buf+c"].Skew, float64(r["buf+c"].TSVs),
			r["ours"].Latency, r["ours"].Skew, float64(r["ours"].TSVs))
	}
	// Ratio rows vs Ours (matching the paper's normalization).
	top.AddRatioRow("Ratio", []int{9, 10, 11, 9, 10, 11, 12, 13, 14, 9, 10, 11, 12, 13, 14})
	bot.AddRatioRow("Ratio", []int{12, 13, -1, 12, 13, 14, 12, 13, 14, 12, 13, 14, 12, 13, 14})
	top.Render(os.Stdout)
	fmt.Println()
	bot.Render(os.Stdout)
	if err := emitCSV(cfg, "table3_top.csv", top); err != nil {
		return err
	}
	return emitCSV(cfg, "table3_bottom.csv", bot)
}
