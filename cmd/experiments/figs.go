package main

import (
	"fmt"
	"os"

	"dscts/internal/bench"
	"dscts/internal/core"
	"dscts/internal/dse"
	"dscts/internal/refine"
	"dscts/internal/report"
	"dscts/internal/tech"
)

func fig8(cfg config) error {
	t := report.NewTable("Fig. 8: adaptive scale factor t vs N/10,000", "N", "N/10000", "t")
	for _, n := range []int{1000, 4000, 6000, 7000, 8000, 9000, 10000, 12000, 14338} {
		t.AddTextRow(fmt.Sprintf("N=%d", n),
			fmt.Sprintf("%d", n), fmt.Sprintf("%.2f", float64(n)/10000), fmt.Sprintf("%.4f", refine.AdaptiveT(n)))
	}
	t.Render(os.Stdout)
	return emitCSV(cfg, "fig8.csv", t)
}

func fig10(cfg config) error {
	tc := tech.ASAP7()
	d, err := bench.ByID("C3")
	if err != nil {
		return err
	}
	p, err := bench.Generate(d, cfg.seed)
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "fig10: running C3 double- and single-side with root sets...")

	t := report.NewTable("Fig. 10: MOES vs min-latency root selection on C3 (ethmac)",
		"Latency (ps)", "#Buffers", "#nTSVs", "MOES")
	for _, mode := range []struct {
		label string
		side  core.SideMode
	}{
		{"double-side", core.DoubleSide},
		{"single-side", core.SingleSide},
	} {
		out, err := core.Synthesize(p.Root, p.Sinks, tc, core.Options{
			Mode: mode.side, KeepRootSet: true, SkipRefine: true, DiversePruning: true,
		})
		if err != nil {
			return fmt.Errorf("fig10 %s: %w", mode.label, err)
		}
		cands := out.DP.Candidates
		// Best with MOES and best without (min latency).
		bestMOES, bestLat := 0, 0
		for i, c := range cands {
			if c.MOES < cands[bestMOES].MOES {
				bestMOES = i
			}
			if c.Latency < cands[bestLat].Latency {
				bestLat = i
			}
		}
		for i, c := range cands {
			tag := ""
			switch {
			case i == bestMOES && i == bestLat:
				tag = " <- w/ MOES = w/o MOES"
			case i == bestMOES:
				tag = " <- w/ MOES"
			case i == bestLat:
				tag = " <- w/o MOES (min latency)"
			}
			t.AddTextRow(fmt.Sprintf("%s cand %02d%s", mode.label, i, tag),
				fmt.Sprintf("%.2f", c.Latency), fmt.Sprintf("%d", c.Bufs),
				fmt.Sprintf("%d", c.TSVs), fmt.Sprintf("%.1f", c.MOES))
		}
		mo, la := cands[bestMOES], cands[bestLat]
		fmt.Printf("%s: %d root candidates; w/ MOES (%.1f ps, %d buf, %d tsv) vs w/o MOES (%.1f ps, %d buf, %d tsv); resource gap %+d\n",
			mode.label, len(cands), mo.Latency, mo.Bufs, mo.TSVs, la.Latency, la.Bufs, la.TSVs,
			(la.Bufs+la.TSVs)-(mo.Bufs+mo.TSVs))
	}
	t.Render(os.Stdout)
	return emitCSV(cfg, "fig10.csv", t)
}

func fig11(cfg config) error {
	tc := tech.ASAP7()
	t := report.NewTable("Fig. 11: effectiveness of skew refinement (SR)",
		"Lat w/o SR", "Lat w/ SR", "Skew w/o SR", "Skew w/ SR", "#Buf w/o SR", "#Buf w/ SR")
	for _, d := range bench.Suite() {
		fmt.Fprintf(os.Stderr, "fig11: running %s...\n", d.ID)
		p, err := bench.Generate(d, cfg.seed)
		if err != nil {
			return fmt.Errorf("%s: %w", d.ID, err)
		}
		without, err := core.Synthesize(p.Root, p.Sinks, tc, core.Options{SkipRefine: true})
		if err != nil {
			return fmt.Errorf("%s w/o SR: %w", d.ID, err)
		}
		with, err := core.Synthesize(p.Root, p.Sinks, tc, core.Options{})
		if err != nil {
			return fmt.Errorf("%s w/ SR: %w", d.ID, err)
		}
		t.AddRow(d.ID,
			without.Metrics.Latency, with.Metrics.Latency,
			without.Metrics.Skew, with.Metrics.Skew,
			float64(without.Metrics.Buffers), float64(with.Metrics.Buffers))
	}
	t.Render(os.Stdout)
	return emitCSV(cfg, "fig11.csv", t)
}

func fig12(cfg config) error {
	tc := tech.ASAP7()
	d, err := bench.ByID("C3")
	if err != nil {
		return err
	}
	p, err := bench.Generate(d, cfg.seed)
	if err != nil {
		return err
	}
	step := 10
	if cfg.fastDSE {
		step = 50
	}
	thresholds := dse.Thresholds(20, 1000, step)
	fractions := dse.Fractions(0.2, 0.9, 0.05)

	fmt.Fprintf(os.Stderr, "fig12: our DSE sweep (%d thresholds)...\n", len(thresholds))
	oursPts, err := dse.SweepFanout(p.Root, p.Sinks, tc, thresholds, core.Options{})
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "fig12: buffered tree + flip sweeps...")
	buffered, err := core.Synthesize(p.Root, p.Sinks, tc, core.Options{Mode: core.SingleSide})
	if err != nil {
		return err
	}
	f7, err := dse.SweepFanoutFlip(buffered.Tree, tc, thresholds, 0)
	if err != nil {
		return err
	}
	f6, err := dse.SweepCriticalFlip(buffered.Tree, tc, fractions, 0)
	if err != nil {
		return err
	}
	full, err := core.Synthesize(p.Root, p.Sinks, tc, core.Options{})
	if err != nil {
		return err
	}

	all := report.NewTable("Fig. 12: DSE scatter on C3 (all explored points)",
		"Flow", "Param", "#Buf+#nTSV", "Latency (ps)", "Skew (ps)")
	add := func(pts []dse.Point) {
		for i, q := range pts {
			all.AddTextRow(fmt.Sprintf("%s-%03d", q.Flow, i),
				q.Flow, fmt.Sprintf("%g", q.Param), fmt.Sprintf("%d", q.Resources()),
				fmt.Sprintf("%.2f", q.Latency), fmt.Sprintf("%.2f", q.Skew))
		}
	}
	add(oursPts)
	add(f7)
	add(f6)
	add([]dse.Point{
		{Flow: "our-buffered", Latency: buffered.Metrics.Latency, Skew: buffered.Metrics.Skew,
			Bufs: buffered.Metrics.Buffers, TSVs: buffered.Metrics.NTSVs},
		{Flow: "ours-table3", Latency: full.Metrics.Latency, Skew: full.Metrics.Skew,
			Bufs: full.Metrics.Buffers, TSVs: full.Metrics.NTSVs},
	})
	if err := emitCSV(cfg, "fig12_all.csv", all); err != nil {
		return err
	}

	// Pareto fronts per flow on (resources, latency) and (resources, skew).
	for _, obj := range []struct {
		name string
		f    dse.Objective
	}{{"latency", dse.Latency}, {"skew", dse.Skew}} {
		t := report.NewTable(fmt.Sprintf("Fig. 12 Pareto fronts: %s vs #buffers+#nTSVs", obj.name),
			"Flow", "Param", "#Buf+#nTSV", "Value (ps)")
		for _, set := range []struct {
			name string
			pts  []dse.Point
		}{{"ours-dse", oursPts}, {"buffered+[7]", f7}, {"buffered+[6]", f6}} {
			front := dse.Pareto(set.pts, dse.Resources, obj.f)
			for i, q := range front {
				t.AddTextRow(fmt.Sprintf("%s-front-%02d", set.name, i),
					set.name, fmt.Sprintf("%g", q.Param), fmt.Sprintf("%d", q.Resources()),
					fmt.Sprintf("%.2f", obj.f(q)))
			}
		}
		t.Render(os.Stdout)
		fmt.Println()
		if err := emitCSV(cfg, fmt.Sprintf("fig12_pareto_%s.csv", obj.name), t); err != nil {
			return err
		}
	}

	// Hypervolume comparison quantifying Fig. 12's qualitative claim.
	refRes, refLat, refSkew := 0.0, 0.0, 0.0
	for _, q := range append(append(append([]dse.Point{}, oursPts...), f7...), f6...) {
		refRes = max(refRes, float64(q.Resources())*1.05)
		refLat = max(refLat, q.Latency*1.05)
		refSkew = max(refSkew, q.Skew*1.05)
	}
	fmt.Println("Hypervolume (higher = better front coverage):")
	for _, set := range []struct {
		name string
		pts  []dse.Point
	}{{"ours-dse", oursPts}, {"buffered+[7]", f7}, {"buffered+[6]", f6}} {
		hvL := dse.Hypervolume(set.pts, dse.Resources, dse.Latency, refRes, refLat)
		hvS := dse.Hypervolume(set.pts, dse.Resources, dse.Skew, refRes, refSkew)
		fmt.Printf("  %-14s latency-HV %.3g  skew-HV %.3g\n", set.name, hvL, hvS)
	}
	return nil
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
