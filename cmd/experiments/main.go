// Command experiments regenerates every table and figure of the paper's
// evaluation (Sec. IV) on the synthetic Table II benchmarks:
//
//	-table1   layer parasitics (Table I)
//	-table2   benchmark statistics (Table II)
//	-table3   main comparison against OpenROAD-style CTS and methods
//	          [2]/[6]/[7] (Table III)
//	-fig8     adaptive scale factor t(N) (Fig. 8)
//	-fig10    MOES vs minimum-latency selection on C3 (Fig. 10)
//	-fig11    skew refinement on/off (Fig. 11)
//	-fig12    design-space exploration scatter on C3 (Fig. 12)
//	-all      everything above
//
// Numbers land on stdout; -csv DIR additionally writes machine-readable
// CSVs for plotting.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dscts/internal/report"
)

type config struct {
	seed    int64
	csvDir  string
	designs []string
	fastDSE bool
}

func main() {
	var (
		t1   = flag.Bool("table1", false, "print Table I")
		t2   = flag.Bool("table2", false, "print Table II")
		t3   = flag.Bool("table3", false, "run Table III")
		f8   = flag.Bool("fig8", false, "print Fig. 8 data")
		f10  = flag.Bool("fig10", false, "run Fig. 10")
		f11  = flag.Bool("fig11", false, "run Fig. 11")
		f12  = flag.Bool("fig12", false, "run Fig. 12")
		all  = flag.Bool("all", false, "run everything")
		seed = flag.Int64("seed", 1, "benchmark placement seed")
		csv  = flag.String("csv", "", "directory for CSV output (optional)")
		fast = flag.Bool("fast-dse", false, "coarser Fig. 12 sweep (step 50 instead of 10)")
	)
	flag.Parse()
	cfg := config{seed: *seed, csvDir: *csv, fastDSE: *fast}
	if cfg.csvDir != "" {
		if err := os.MkdirAll(cfg.csvDir, 0o755); err != nil {
			fatal(err)
		}
	}
	ran := false
	run := func(on bool, f func(config) error) {
		if !(on || *all) {
			return
		}
		ran = true
		if err := f(cfg); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	run(*t1, table1)
	run(*t2, table2)
	run(*t3, table3)
	run(*f8, fig8)
	run(*f10, fig10)
	run(*f11, fig11)
	run(*f12, fig12)
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}

// emitCSV writes a table as CSV into the configured directory.
func emitCSV(cfg config, name string, t *report.Table) error {
	if cfg.csvDir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(cfg.csvDir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	t.RenderCSV(f)
	return nil
}
