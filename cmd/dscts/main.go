// Command dscts runs the double-side CTS flow on a DEF file (or a named
// Table II benchmark) and prints the resulting clock-tree metrics. With
// -json the metrics go to stdout as a single machine-readable JSON object
// (human chatter suppressed); every error path exits nonzero, so scripts
// and smoke tests can assert on both.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"dscts/internal/bench"
	"dscts/internal/core"
	"dscts/internal/corner"
	"dscts/internal/def"
	"dscts/internal/eco"
	"dscts/internal/export"
	"dscts/internal/geom"
	"dscts/internal/partition"
	"dscts/internal/power"
	"dscts/internal/tech"
	"dscts/internal/viz"
)

func main() {
	var (
		defPath   = flag.String("def", "", "input placed DEF file (with a clk pin/net)")
		design    = flag.String("design", "", "built-in benchmark to run (C1..C5 or name)")
		xlSinks   = flag.Int("xl", 0, "synthesize a generated mega-scale placement with this many sinks (use with -partition)")
		partMax   = flag.Int("partition", 0, "partition-parallel pipeline region capacity in sinks (0 = monolithic flow)")
		partStrat = flag.String("partition-strategy", "", "region cut strategy: kd (default) or grid")
		seed      = flag.Int64("seed", 1, "benchmark generation seed")
		single    = flag.Bool("single-side", false, "disable nTSVs (front-side-only CTS)")
		fanout    = flag.Int("fanout", 0, "fanout threshold for heterogeneous DP (0 = full mode)")
		skipSR    = flag.Bool("no-sr", false, "skip skew refinement")
		alpha     = flag.Float64("alpha", 1, "MOES latency weight")
		beta      = flag.Float64("beta", 10, "MOES buffer weight")
		gamma     = flag.Float64("gamma", 1, "MOES nTSV weight")
		svgOut    = flag.String("svg", "", "write an SVG rendering of the tree")
		defOut    = flag.String("export-def", "", "legalize cells and write the clock tree as DEF")
		showPower = flag.Bool("power", false, "print the clock power breakdown @1GHz/0.7V")
		workers   = flag.Int("workers", 0, "worker pool size for all phases (0 = all CPUs; results are identical for any value)")
		jsonOut   = flag.Bool("json", false, "emit machine-readable metrics JSON to stdout instead of the human report")
		cornerSet = flag.String("corners", "", "comma-separated PVT corners for multi-corner sign-off (slow,typ,fast)")
		cornersIn = flag.String("corners-file", "", "JSON file of custom corners for sign-off (overrides -corners)")
		ecoFrom   = flag.String("eco-from", "", "JSON delta file to apply as an incremental ECO after the base synthesis (see DESIGN.md §4)")
		ecoMove   = flag.String("move", "", "ECO sink moves, \"sink:x,y\" separated by ';' (e.g. \"7:100.5,200.25;9:1,2\")")
		ecoAdd    = flag.String("add", "", "ECO sink additions, \"x,y\" separated by ';'")
		ecoRemove = flag.String("remove", "", "comma-separated sink indices the ECO removes")
	)
	flag.Parse()
	tc := tech.ASAP7()

	var corners []corner.Corner
	switch {
	case *cornersIn != "":
		f, err := os.Open(*cornersIn)
		if err != nil {
			fatal(err)
		}
		corners, err = corner.LoadJSON(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	case *cornerSet != "":
		var err error
		if corners, err = corner.ParseList(*cornerSet); err != nil {
			fatal(err)
		}
	}

	var rootX, rootY float64
	var sinks int
	opt := core.Options{
		FanoutThreshold: *fanout,
		SkipRefine:      *skipSR,
		Alpha:           *alpha, Beta: *beta, Gamma: *gamma,
		Workers: *workers,
		Corners: corners,
	}
	if *single {
		opt.Mode = core.SingleSide
	}

	var p *bench.Placement
	switch {
	case *defPath != "":
		f, err := os.Open(*defPath)
		if err != nil {
			fatal(err)
		}
		parsed, err := def.Parse(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		p, err = bench.FromDEF(parsed)
		if err != nil {
			fatal(err)
		}
	case *design != "":
		d, err := bench.ByID(*design)
		if err != nil {
			fatal(err)
		}
		if p, err = bench.Generate(d, *seed); err != nil {
			fatal(err)
		}
	case *xlSinks > 0:
		var err error
		if p, err = bench.GenerateXL(*xlSinks, *seed); err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: dscts -def file.def | -design C1..C5 | -xl N [flags]")
		os.Exit(2)
	}
	rootX, rootY, sinks = p.Root.X, p.Root.Y, len(p.Sinks)
	// The partition cut-line chooser avoids the placement's macro
	// blockages when they are known.
	opt.Partition = partition.Options{MaxSinks: *partMax, Strategy: *partStrat, Macros: p.Macros}

	delta, haveDelta, err := parseDelta(*ecoFrom, *ecoMove, *ecoAdd, *ecoRemove)
	if err != nil {
		fatal(err)
	}
	if haveDelta {
		if err := delta.Validate(sinks); err != nil {
			fatal(err)
		}
		opt.RetainECO = true
	}

	out, err := core.Synthesize(p.Root, p.Sinks, tc, opt)
	if err != nil {
		fatal(err)
	}
	var ecoOut *core.Outcome
	if haveDelta {
		if ecoOut, err = core.SynthesizeECO(out, delta, core.Options{Workers: *workers}); err != nil {
			fatal(err)
		}
	}
	m := out.Metrics
	var pw *power.Breakdown
	if *showPower {
		if pw, err = power.Estimate(out.Tree, tc, power.DefaultParams()); err != nil {
			fatal(err)
		}
	}
	if *jsonOut {
		rep := jsonReport{
			Design: p.Design.Name, Sinks: sinks,
			Root:      xy{rootX, rootY},
			Model:     "elmore",
			LatencyPS: m.Latency, SkewPS: m.Skew,
			Buffers: m.Buffers, NTSVs: m.NTSVs, WLum: m.WL,
			RuntimeS: runtimes{
				Total: out.TotalTime.Seconds(), Route: out.RouteTime.Seconds(),
				Insert: out.InsertTime.Seconds(), Refine: out.RefineTime.Seconds(),
				Partition: out.PartitionTime.Seconds(), Stitch: out.StitchTime.Seconds(),
				Corners: out.CornersTime.Seconds(),
			},
			DP: dpStats{Nodes: out.DP.Nodes, Solutions: out.DP.Solutions},
		}
		if len(out.Regions) > 0 {
			ps := &partitionStats{Regions: len(out.Regions)}
			for _, r := range out.Regions {
				ps.MaxRegionSinks = max(ps.MaxRegionSinks, r.Sinks)
			}
			rep.Partition = ps
		}
		if out.Corners != nil {
			for _, res := range out.Corners.Results {
				rep.Corners = append(rep.Corners, cornerStats{
					Name:      res.Corner.Name,
					LatencyPS: res.Metrics.Latency,
					SkewPS:    res.Metrics.Skew,
				})
			}
			s := out.Corners.Summary
			rep.Worst = &worstStats{
				SkewPS: s.WorstSkew, SkewCorner: s.WorstSkewCorner,
				LatencyPS: s.WorstLatency, LatencyCorner: s.WorstLatencyCorner,
				LatencySpreadPS: s.LatencySpread, MaxDivergencePS: s.MaxDivergence,
			}
		}
		if out.Refine != nil {
			rep.Refine = &refineStats{
				Triggered: out.Refine.Triggered, Inserted: out.Refine.Inserted,
				SkewBeforePS: out.Refine.Before.Skew, SkewAfterPS: out.Refine.After.Skew,
			}
		}
		if pw != nil {
			rep.Power = &powerStats{TotalMW: pw.TotalMW, SwitchingMW: pw.SwitchingMW, InternalMW: pw.InternalMW}
		}
		if ecoOut != nil {
			em := ecoOut.Metrics
			rep.ECO = &ecoStats{
				LatencyPS: em.Latency, SkewPS: em.Skew,
				Buffers: em.Buffers, NTSVs: em.NTSVs, WLum: em.WL,
				Sinks:       len(em.SinkDelays),
				DirtyScopes: ecoOut.ECO.DirtyScopes, TotalScopes: ecoOut.ECO.TotalScopes,
				Partitioned: ecoOut.ECO.Partitioned,
				TotalS:      ecoOut.TotalTime.Seconds(),
			}
			if e := ecoOut.TotalTime.Seconds(); e > 0 {
				rep.ECO.SpeedupVsBase = out.TotalTime.Seconds() / e
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	} else {
		fmt.Printf("design   %s (%d sinks, root %.1f,%.1f)\n", p.Design.Name, sinks, rootX, rootY)
		fmt.Printf("latency  %.3f ps\n", m.Latency)
		fmt.Printf("skew     %.3f ps\n", m.Skew)
		fmt.Printf("buffers  %d\n", m.Buffers)
		fmt.Printf("nTSVs    %d\n", m.NTSVs)
		fmt.Printf("clk WL   %.1f um (%.3f x1e6 nm)\n", m.WL, m.WL*1000/1e6)
		fmt.Printf("runtime  %.3fs (route %.3fs, insert %.3fs, refine %.3fs)\n",
			out.TotalTime.Seconds(), out.RouteTime.Seconds(), out.InsertTime.Seconds(), out.RefineTime.Seconds())
		if len(out.Regions) > 0 {
			fmt.Printf("partition: %d regions (fan-out %.3fs, stitch %.3fs)\n",
				len(out.Regions), out.PartitionTime.Seconds(), out.StitchTime.Seconds())
			for _, r := range out.Regions {
				fmt.Printf("  region %-3d %7d sinks  lat %8.2f ps  skew %7.2f ps  arrival %8.2f ps  %v\n",
					r.ID, r.Sinks, r.Latency, r.Skew, r.Arrival, r.Time.Round(time.Millisecond))
			}
		}
		if out.Refine != nil && out.Refine.Triggered {
			fmt.Printf("skew refinement: %d buffers, skew %.3f -> %.3f ps\n",
				out.Refine.Inserted, out.Refine.Before.Skew, out.Refine.After.Skew)
		}
		fmt.Printf("DP: %d nodes, %d candidate solutions\n", out.DP.Nodes, out.DP.Solutions)
		if out.Corners != nil {
			fmt.Printf("corner sign-off (%d corners, %.3fs):\n", len(out.Corners.Results), out.CornersTime.Seconds())
			fmt.Printf("  %-10s %12s %10s\n", "corner", "latency(ps)", "skew(ps)")
			for _, res := range out.Corners.Results {
				fmt.Printf("  %-10s %12.3f %10.3f\n", res.Corner.Name, res.Metrics.Latency, res.Metrics.Skew)
			}
			s := out.Corners.Summary
			fmt.Printf("  worst skew %.3f ps (%s), worst latency %.3f ps (%s)\n",
				s.WorstSkew, s.WorstSkewCorner, s.WorstLatency, s.WorstLatencyCorner)
			fmt.Printf("  latency spread %.3f ps, max per-sink divergence %.3f ps\n",
				s.LatencySpread, s.MaxDivergence)
		}
		if pw != nil {
			fmt.Printf("power    %.3f mW @1GHz (switching %.3f, buffer internal %.3f)\n",
				pw.TotalMW, pw.SwitchingMW, pw.InternalMW)
		}
		if ecoOut != nil {
			em := ecoOut.Metrics
			fmt.Printf("eco: moved %d, added %d, removed %d -> %d sinks\n",
				len(delta.Move), len(delta.Add), len(delta.Remove), len(em.SinkDelays))
			fmt.Printf("eco: %d of %d scopes dirty, %.3fs vs base %.3fs (%.1fx)\n",
				ecoOut.ECO.DirtyScopes, ecoOut.ECO.TotalScopes,
				ecoOut.TotalTime.Seconds(), out.TotalTime.Seconds(),
				out.TotalTime.Seconds()/ecoOut.TotalTime.Seconds())
			fmt.Printf("eco latency %.3f ps, skew %.3f ps, buffers %d, nTSVs %d, WL %.1f um\n",
				em.Latency, em.Skew, em.Buffers, em.NTSVs, em.WL)
		}
	}
	// With an ECO delta, exports and renderings carry the post-ECO tree —
	// that is the placement the change order produced.
	finalTree := out.Tree
	if ecoOut != nil {
		finalTree = ecoOut.Tree
	}
	if *defOut != "" {
		f, err := os.Create(*defOut)
		if err != nil {
			fatal(err)
		}
		cells, err := export.WriteDEF(f, finalTree, p.Die, p.Macros, tc, export.Options{DesignName: p.Design.Name + "_clk"})
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		note(*jsonOut, "exported %d legalized cells (max disp %.3f um) -> %s\n", len(cells.Cells), cells.MaxDisp, *defOut)
	}
	if *svgOut != "" {
		f, err := os.Create(*svgOut)
		if err != nil {
			fatal(err)
		}
		err = viz.WriteSVG(f, finalTree, p.Die, p.Macros, viz.Options{Title: p.Design.Name})
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		note(*jsonOut, "rendering -> %s\n", *svgOut)
	}
}

// jsonReport is the -json output: everything the human report prints, as
// one stable machine-readable object on stdout.
type jsonReport struct {
	Design string `json:"design"`
	Sinks  int    `json:"sinks"`
	Root   xy     `json:"root"`
	// Model names the delay model behind the top-level metrics, so
	// machine consumers can distinguish future evaluation modes.
	Model     string        `json:"model"`
	LatencyPS float64       `json:"latency_ps"`
	SkewPS    float64       `json:"skew_ps"`
	Buffers   int           `json:"buffers"`
	NTSVs     int           `json:"ntsvs"`
	WLum      float64       `json:"wirelength_um"`
	RuntimeS  runtimes      `json:"runtime_s"`
	DP        dpStats       `json:"dp"`
	Refine    *refineStats  `json:"refine,omitempty"`
	Power     *powerStats   `json:"power,omitempty"`
	Corners   []cornerStats `json:"corners,omitempty"`
	Worst     *worstStats   `json:"worst,omitempty"`
	// Partition summarizes a partition-parallel run (absent for the
	// monolithic flow).
	Partition *partitionStats `json:"partition,omitempty"`
	// ECO summarizes the incremental re-synthesis when a delta was given
	// (-eco-from/-move/-add/-remove); the top-level metrics remain the
	// BASE run's.
	ECO *ecoStats `json:"eco,omitempty"`
}

// ecoStats is the -json summary of an incremental (ECO) run.
type ecoStats struct {
	LatencyPS     float64 `json:"latency_ps"`
	SkewPS        float64 `json:"skew_ps"`
	Buffers       int     `json:"buffers"`
	NTSVs         int     `json:"ntsvs"`
	WLum          float64 `json:"wirelength_um"`
	Sinks         int     `json:"sinks"`
	DirtyScopes   int     `json:"dirty_scopes"`
	TotalScopes   int     `json:"total_scopes"`
	Partitioned   bool    `json:"partitioned"`
	TotalS        float64 `json:"total_s"`
	SpeedupVsBase float64 `json:"speedup_vs_base,omitempty"`
}

// partitionStats is the -json summary of a partitioned run.
type partitionStats struct {
	Regions        int `json:"regions"`
	MaxRegionSinks int `json:"max_region_sinks"`
}

// cornerStats is one corner's row of the -corners sign-off output.
type cornerStats struct {
	Name      string  `json:"name"`
	LatencyPS float64 `json:"latency_ps"`
	SkewPS    float64 `json:"skew_ps"`
}

// worstStats is the cross-corner summary of the -corners output.
type worstStats struct {
	SkewPS          float64 `json:"skew_ps"`
	SkewCorner      string  `json:"skew_corner"`
	LatencyPS       float64 `json:"latency_ps"`
	LatencyCorner   string  `json:"latency_corner"`
	LatencySpreadPS float64 `json:"latency_spread_ps"`
	MaxDivergencePS float64 `json:"max_divergence_ps"`
}

type xy struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

type runtimes struct {
	Total     float64 `json:"total"`
	Route     float64 `json:"route"`
	Insert    float64 `json:"insert"`
	Refine    float64 `json:"refine"`
	Partition float64 `json:"partition,omitempty"`
	Stitch    float64 `json:"stitch,omitempty"`
	Corners   float64 `json:"corners,omitempty"`
}

type dpStats struct {
	Nodes     int `json:"nodes"`
	Solutions int `json:"solutions"`
}

type refineStats struct {
	Triggered    bool    `json:"triggered"`
	Inserted     int     `json:"inserted"`
	SkewBeforePS float64 `json:"skew_before_ps"`
	SkewAfterPS  float64 `json:"skew_after_ps"`
}

type powerStats struct {
	TotalMW     float64 `json:"total_mw"`
	SwitchingMW float64 `json:"switching_mw"`
	InternalMW  float64 `json:"internal_mw"`
}

// note prints side-effect confirmations; under -json they go to stderr so
// stdout stays a single parseable object.
func note(jsonMode bool, format string, args ...any) {
	w := os.Stdout
	if jsonMode {
		w = os.Stderr
	}
	fmt.Fprintf(w, format, args...)
}

// parseDelta merges the ECO flags into one delta: the -eco-from file first,
// then the -move/-add/-remove shorthands appended.
func parseDelta(fromFile, moves, adds, removes string) (eco.Delta, bool, error) {
	var d eco.Delta
	have := false
	if fromFile != "" {
		f, err := os.Open(fromFile)
		if err != nil {
			return d, false, err
		}
		d, err = eco.LoadJSON(f)
		f.Close()
		if err != nil {
			return d, false, err
		}
		have = true
	}
	if moves != "" {
		for _, part := range strings.Split(moves, ";") {
			sink, pt, err := parseSinkPoint(part)
			if err != nil {
				return d, false, fmt.Errorf("-move %q: %w", part, err)
			}
			d.Move = append(d.Move, eco.Move{Sink: sink, To: pt})
		}
		have = true
	}
	if adds != "" {
		for _, part := range strings.Split(adds, ";") {
			pt, err := parsePoint(part)
			if err != nil {
				return d, false, fmt.Errorf("-add %q: %w", part, err)
			}
			d.Add = append(d.Add, pt)
		}
		have = true
	}
	if removes != "" {
		for _, part := range strings.Split(removes, ",") {
			idx, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return d, false, fmt.Errorf("-remove %q: %w", part, err)
			}
			d.Remove = append(d.Remove, idx)
		}
		have = true
	}
	return d, have, nil
}

// parseSinkPoint parses "sink:x,y".
func parseSinkPoint(s string) (int, geom.Point, error) {
	idx, coords, ok := strings.Cut(strings.TrimSpace(s), ":")
	if !ok {
		return 0, geom.Point{}, fmt.Errorf("want \"sink:x,y\"")
	}
	sink, err := strconv.Atoi(idx)
	if err != nil {
		return 0, geom.Point{}, err
	}
	pt, err := parsePoint(coords)
	return sink, pt, err
}

// parsePoint parses "x,y".
func parsePoint(s string) (geom.Point, error) {
	xs, ys, ok := strings.Cut(strings.TrimSpace(s), ",")
	if !ok {
		return geom.Point{}, fmt.Errorf("want \"x,y\"")
	}
	x, err := strconv.ParseFloat(strings.TrimSpace(xs), 64)
	if err != nil {
		return geom.Point{}, err
	}
	y, err := strconv.ParseFloat(strings.TrimSpace(ys), 64)
	if err != nil {
		return geom.Point{}, err
	}
	return geom.Pt(x, y), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dscts:", err)
	os.Exit(1)
}
