// Command dsctsd serves the double-side CTS engine as a multi-tenant HTTP
// service: a bounded job queue with admission control and per-job worker
// budgets, a content-addressed result cache, and NDJSON progress streaming.
//
//	dsctsd [-addr :8577] [-max-running 4] [-max-queued 64] [-workers 0] [-cache 128]
//	       [-job-timeout 0] [-watchdog-grace 2s] [-idem-entries 512]
//	       [-fault-spec ""] [-fault-seed 1]
//
// API (see internal/serve):
//
//	POST /synthesize?mode=sync|async|stream   body: serve.Request JSON
//	POST /dse?mode=...                        body: serve.Request with thresholds
//	POST /eco?mode=...                        body: serve.Request with delta
//	GET  /jobs/{id}                           job snapshot (?mode=stream for NDJSON)
//	POST /jobs/{id}/cancel                    stop a queued or running job
//	GET  /healthz                             liveness
//	GET  /readyz                              readiness (503 while draining or saturated)
//	GET  /stats                               queue + cache counters
//
// On SIGTERM/SIGINT the daemon drains first — /readyz flips to 503 so load
// balancers divert traffic — then shuts the listener down gracefully and
// cancels whatever is still in flight.
//
// -fault-spec arms the deterministic fault-injection registry (see
// internal/fault) for chaos testing a real deployment; leave it empty in
// production (the default, a zero-cost no-op).
//
// Example:
//
//	curl -s localhost:8577/synthesize -d '{"design":"C3"}'
//	curl -s localhost:8577/dse -d '{"design":"C4","thresholds":[50,200,800]}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dscts/internal/fault"
	"dscts/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", ":8577", "listen address")
		maxRunning = flag.Int("max-running", 4, "jobs executing concurrently")
		maxQueued  = flag.Int("max-queued", 64, "admitted jobs waiting beyond the running set (admission control)")
		workers    = flag.Int("workers", 0, "total synthesis worker budget shared by running jobs (0 = all CPUs)")
		cacheSize  = flag.Int("cache", 128, "result cache capacity (entries, LRU)")
		retain     = flag.Int("retain-jobs", 1024, "finished job records kept for GET /jobs/{id}")
		jobTimeout = flag.Duration("job-timeout", 0, "per-job running wall-clock deadline (0 = none; requests can shorten it via timeout_ms)")
		wdGrace    = flag.Duration("watchdog-grace", 0, "how long a cancelled/expired job may keep running before its worker is force-reclaimed (0 = default 2s)")
		idemSize   = flag.Int("idem-entries", 0, "idempotency keys retained for deduplicating retried submissions (0 = default 512, negative disables)")
		faultSpec  = flag.String("fault-spec", "", "fault-injection schedule for chaos testing, e.g. \"panic@serve.job:0.01\" (empty = disabled; see internal/fault)")
		faultSeed  = flag.Int64("fault-seed", 1, "seed for -fault-spec (same spec + seed replays the same schedule)")
	)
	flag.Parse()

	var reg *fault.Registry
	if *faultSpec != "" {
		var err error
		if reg, err = fault.Parse(*faultSpec, *faultSeed); err != nil {
			fmt.Fprintln(os.Stderr, "dsctsd:", err)
			os.Exit(1)
		}
		log.Printf("dsctsd: FAULT INJECTION ARMED (seed %d): %s", *faultSeed, reg)
	}
	srv := serve.NewServer(serve.Config{
		MaxRunning: *maxRunning, MaxQueued: *maxQueued,
		Workers: *workers, CacheEntries: *cacheSize, RetainJobs: *retain,
		JobTimeout: *jobTimeout, WatchdogGrace: *wdGrace,
		IdempotencyEntries: *idemSize, Faults: reg,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() {
		log.Printf("dsctsd: listening on %s (max-running %d, max-queued %d)", *addr, *maxRunning, *maxQueued)
		errc <- hs.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		srv.Close()
		fmt.Fprintln(os.Stderr, "dsctsd:", err)
		os.Exit(1)
	case sig := <-sigc:
		log.Printf("dsctsd: %v, draining and shutting down", sig)
		// Flip /readyz to 503 before closing the listener so load
		// balancers stop routing here while in-flight work finishes.
		srv.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintln(os.Stderr, "dsctsd: shutdown:", err)
			srv.Close()
			os.Exit(1)
		}
		srv.Close() // cancels in-flight jobs, joins runners
	}
}
