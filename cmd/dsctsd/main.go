// Command dsctsd serves the double-side CTS engine as a multi-tenant HTTP
// service: a bounded job queue with admission control and per-job worker
// budgets, a content-addressed result cache, and NDJSON progress streaming.
//
//	dsctsd [-addr :8577] [-max-running 4] [-max-queued 64] [-workers 0] [-cache 128]
//	       [-job-timeout 0] [-watchdog-grace 2s] [-idem-entries 512]
//	       [-cache-dir ""] [-qos-classes interactive:3,batch:1] [-tenant-quota 0]
//	       [-metrics] [-debug-addr ""] [-log-level info] [-log-format text]
//	       [-fault-spec ""] [-fault-seed 1]
//	       [-peers ""] [-node-id ""] [-cluster-secret ""]
//
// API (see internal/serve):
//
//	POST /synthesize?mode=sync|async|stream   body: serve.Request JSON
//	POST /dse?mode=...                        body: serve.Request with thresholds
//	POST /eco?mode=...                        body: serve.Request with delta
//	GET  /jobs/{id}                           job snapshot (?mode=stream for NDJSON)
//	POST /jobs/{id}/cancel                    stop a queued or running job
//	GET  /healthz                             liveness
//	GET  /readyz                              readiness (503 while draining or saturated)
//	GET  /stats                               queue + cache counters
//	GET  /version                             build identity (module version, VCS revision)
//	GET  /metrics                             Prometheus text exposition (unless -metrics=false)
//
// Observability: -metrics (on by default) serves the Prometheus registry at
// GET /metrics — every counter it exports reads the same atomics as /stats.
// -debug-addr mounts net/http/pprof on a SEPARATE listener (keep it off the
// service port and firewalled; profiles expose internals). Logs are
// structured (log/slog): -log-level trims severity, -log-format=json emits
// one JSON object per line for log pipelines.
//
// On SIGTERM/SIGINT the daemon drains first — /readyz flips to 503 so load
// balancers divert traffic — then shuts the listener down gracefully and
// cancels whatever is still in flight.
//
// Persistence: -cache-dir names a directory for the disk-backed cache tier.
// Finished results and retained ECO bases are written behind the in-memory
// caches (write-behind, never on the request path) and reloaded on the next
// start, so a restarted daemon serves previously-computed requests as cache
// hits — POST /eco bases included. Corrupt or version-mismatched files are
// skipped, counted and deleted at warm start. Empty (the default) disables
// persistence.
//
// QoS: -qos-classes configures the priority classes as "name:weight,..."
// (first class is the default; requests pick one with the "class" field).
// Dispatch is weighted-fair across classes and round-robin across tenants
// within a class; the "tenant" request field or X-Tenant header names the
// tenant. -tenant-quota caps each tenant's outstanding jobs (429 past it;
// 0 = unlimited).
//
// Cluster mode: -peers lists the static member set as "id=url,..." (this
// node included) and -node-id names which entry is us. Cache keys then
// route over a consistent-hash ring — a sync request whose key hashes to a
// peer is forwarded there, so repeated invocations hit exactly one node's
// cache — oversized partitioned jobs dispatch regions to peers (POST
// /internal/region), and idle peers steal queued regions. Every remote
// path degrades to local execution when a peer is down (per-peer circuit
// breakers fed by /readyz probes), and results are bit-identical to a
// single-node run. -cluster-secret authenticates the /internal/* peer
// endpoints; see DESIGN.md §9.
//
// -fault-spec arms the deterministic fault-injection registry (see
// internal/fault) for chaos testing a real deployment; leave it empty in
// production (the default, a zero-cost no-op).
//
// Example:
//
//	curl -s localhost:8577/synthesize -d '{"design":"C3"}'
//	curl -s localhost:8577/dse -d '{"design":"C4","thresholds":[50,200,800]}'
//	curl -s localhost:8577/metrics | grep dscts_jobs_total
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dscts/internal/clusterd"
	"dscts/internal/fault"
	"dscts/internal/obs"
	"dscts/internal/serve"
	"dscts/internal/store"
)

func main() {
	var (
		addr       = flag.String("addr", ":8577", "listen address")
		maxRunning = flag.Int("max-running", 4, "jobs executing concurrently")
		maxQueued  = flag.Int("max-queued", 64, "admitted jobs waiting beyond the running set (admission control)")
		workers    = flag.Int("workers", 0, "total synthesis worker budget shared by running jobs (0 = all CPUs)")
		cacheSize  = flag.Int("cache", 128, "result cache capacity (entries, LRU)")
		retain     = flag.Int("retain-jobs", 1024, "finished job records kept for GET /jobs/{id}")
		jobTimeout = flag.Duration("job-timeout", 0, "per-job running wall-clock deadline (0 = none; requests can shorten it via timeout_ms)")
		wdGrace    = flag.Duration("watchdog-grace", 0, "how long a cancelled/expired job may keep running before its worker is force-reclaimed (0 = default 2s)")
		idemSize   = flag.Int("idem-entries", 0, "idempotency keys retained for deduplicating retried submissions (0 = default 512, negative disables)")
		cacheDir   = flag.String("cache-dir", "", "directory for the persistent cache tier (empty = in-memory only; results and ECO bases survive restarts when set)")
		qosClasses = flag.String("qos-classes", "", "QoS classes as name:weight,... — first is the default class (empty = interactive:3,batch:1)")
		tenQuota   = flag.Int("tenant-quota", 0, "max outstanding jobs per tenant (0 = unlimited)")
		metricsOn  = flag.Bool("metrics", true, "serve the Prometheus registry at GET /metrics")
		debugAddr  = flag.String("debug-addr", "", "separate listener for net/http/pprof (empty = disabled; never expose publicly)")
		logLevel   = flag.String("log-level", "info", "minimum log severity: debug, info, warn or error")
		logFormat  = flag.String("log-format", "text", "log encoding: text or json")
		faultSpec  = flag.String("fault-spec", "", "fault-injection schedule for chaos testing, e.g. \"panic@serve.job:0.01\" (empty = disabled; see internal/fault)")
		faultSeed  = flag.Int64("fault-seed", 1, "seed for -fault-spec (same spec + seed replays the same schedule)")
		peersFlag  = flag.String("peers", "", "cluster member list as id=url,id=url,... including this node (empty = single-node)")
		nodeID     = flag.String("node-id", "", "this node's ID within -peers (required with -peers)")
		clusterKey = flag.String("cluster-secret", "", "shared secret authenticating /internal/* peer calls (recommended with -peers)")
	)
	flag.Parse()

	logger, err := buildLogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsctsd:", err)
		os.Exit(1)
	}
	slog.SetDefault(logger)

	var reg *fault.Registry
	if *faultSpec != "" {
		if reg, err = fault.Parse(*faultSpec, *faultSeed); err != nil {
			logger.Error("bad -fault-spec", "error", err)
			os.Exit(1)
		}
		logger.Warn("FAULT INJECTION ARMED — never run this configuration in production",
			"spec", reg.String(), "seed", *faultSeed)
	}
	var metrics *obs.Registry
	if *metricsOn {
		metrics = obs.NewRegistry()
	}
	classes, err := serve.ParseQoSClasses(*qosClasses)
	if err != nil {
		logger.Error("bad -qos-classes", "error", err)
		os.Exit(1)
	}
	// Cluster mode: parse and validate the static member list up front so a
	// typo fails the boot, not the first forwarded request.
	var cluster *serve.ClusterConfig
	if *peersFlag != "" {
		peers, err := clusterd.ParsePeers(*peersFlag)
		if err != nil {
			logger.Error("bad -peers", "error", err)
			os.Exit(1)
		}
		if _, _, err := clusterd.SplitSelf(peers, *nodeID); err != nil {
			logger.Error("bad -node-id", "error", err)
			os.Exit(1)
		}
		if *clusterKey == "" {
			logger.Warn("cluster mode without -cluster-secret: /internal/* peer endpoints are unauthenticated")
		}
		cluster = &serve.ClusterConfig{NodeID: *nodeID, Peers: peers, Secret: *clusterKey}
	} else if *nodeID != "" {
		logger.Error("-node-id requires -peers")
		os.Exit(1)
	}
	// The daemon owns the store: opened (and warm-start verified) before the
	// server exists, closed — flushing the write-behind tail — after the
	// queue has fully drained.
	var st *store.Store
	if *cacheDir != "" {
		if st, err = store.Open(store.Config{Dir: *cacheDir, Logger: logger}); err != nil {
			logger.Error("cannot open -cache-dir", "dir", *cacheDir, "error", err)
			os.Exit(1)
		}
		defer func() {
			if err := st.Close(); err != nil {
				logger.Error("store close failed", "error", err)
			}
		}()
	}
	srv := serve.NewServer(serve.Config{
		MaxRunning: *maxRunning, MaxQueued: *maxQueued,
		Workers: *workers, CacheEntries: *cacheSize, RetainJobs: *retain,
		JobTimeout: *jobTimeout, WatchdogGrace: *wdGrace,
		IdempotencyEntries: *idemSize, Faults: reg,
		QoSClasses: classes, TenantQuota: *tenQuota, Store: st,
		Metrics: metrics, Logger: logger, Cluster: cluster,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	if *debugAddr != "" {
		go serveDebug(logger, *debugAddr)
	}

	errc := make(chan error, 1)
	go func() {
		build := obs.Build()
		logger.Info("listening",
			"addr", *addr, "max_running", *maxRunning, "max_queued", *maxQueued,
			"metrics", *metricsOn, "version", build.Version, "revision", build.Revision)
		errc <- hs.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		srv.Close()
		if st != nil {
			st.Close() // os.Exit skips the deferred close
		}
		logger.Error("listener failed", "error", err)
		os.Exit(1)
	case sig := <-sigc:
		logger.Info("draining and shutting down", "signal", sig.String())
		// Flip /readyz to 503 before closing the listener so load
		// balancers stop routing here while in-flight work finishes.
		srv.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			logger.Error("shutdown failed", "error", err)
			srv.Close()
			if st != nil {
				st.Close()
			}
			os.Exit(1)
		}
		srv.Close() // cancels in-flight jobs, joins runners
	}
}

// buildLogger assembles the process logger from the -log-level and
// -log-format flags.
func buildLogger(level, format string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
}

// serveDebug mounts net/http/pprof on its own listener: profiling must
// never ride the service port (it bypasses the API surface and leaks
// internals), so the handlers are registered on a private mux bound to
// -debug-addr only.
func serveDebug(logger *slog.Logger, addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	logger.Info("pprof debug listener up", "addr", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		logger.Error("debug listener failed", "error", err)
	}
}
