// Command dsctsd serves the double-side CTS engine as a multi-tenant HTTP
// service: a bounded job queue with admission control and per-job worker
// budgets, a content-addressed result cache, and NDJSON progress streaming.
//
//	dsctsd [-addr :8577] [-max-running 4] [-max-queued 64] [-workers 0] [-cache 128]
//
// API (see internal/serve):
//
//	POST /synthesize?mode=sync|async|stream   body: serve.Request JSON
//	POST /dse?mode=...                        body: serve.Request with thresholds
//	GET  /jobs/{id}                           job snapshot (?mode=stream for NDJSON)
//	POST /jobs/{id}/cancel                    stop a queued or running job
//	GET  /healthz                             liveness
//	GET  /stats                               queue + cache counters
//
// Example:
//
//	curl -s localhost:8577/synthesize -d '{"design":"C3"}'
//	curl -s localhost:8577/dse -d '{"design":"C4","thresholds":[50,200,800]}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dscts/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", ":8577", "listen address")
		maxRunning = flag.Int("max-running", 4, "jobs executing concurrently")
		maxQueued  = flag.Int("max-queued", 64, "admitted jobs waiting beyond the running set (admission control)")
		workers    = flag.Int("workers", 0, "total synthesis worker budget shared by running jobs (0 = all CPUs)")
		cacheSize  = flag.Int("cache", 128, "result cache capacity (entries, LRU)")
		retain     = flag.Int("retain-jobs", 1024, "finished job records kept for GET /jobs/{id}")
	)
	flag.Parse()

	srv := serve.NewServer(serve.Config{
		MaxRunning: *maxRunning, MaxQueued: *maxQueued,
		Workers: *workers, CacheEntries: *cacheSize, RetainJobs: *retain,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() {
		log.Printf("dsctsd: listening on %s (max-running %d, max-queued %d)", *addr, *maxRunning, *maxQueued)
		errc <- hs.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		srv.Close()
		fmt.Fprintln(os.Stderr, "dsctsd:", err)
		os.Exit(1)
	case sig := <-sigc:
		log.Printf("dsctsd: %v, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintln(os.Stderr, "dsctsd: shutdown:", err)
			srv.Close()
			os.Exit(1)
		}
		srv.Close() // cancels in-flight jobs, joins runners
	}
}
