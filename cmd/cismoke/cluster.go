package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// clusterStatsView mirrors the per-node cluster counter section of
// BENCH_cluster.json (serve.ClusterStats).
type clusterStatsView struct {
	Forwarded         int64 `json:"forwarded"`
	ForwardFallback   int64 `json:"forward_fallback_local"`
	ForwardedIn       int64 `json:"forwarded_in"`
	RegionsDispatched int64 `json:"regions_dispatched"`
	RegionsServed     int64 `json:"regions_served"`
	RegionsStolen     int64 `json:"regions_stolen"`
	StealsGiven       int64 `json:"steals_given"`
}

// clusterView mirrors the BENCH_cluster.json fields the cluster gate
// asserts on (benchgen -load -cluster N).
type clusterView struct {
	Nodes               int     `json:"nodes"`
	Jobs                int     `json:"jobs"`
	AggregateThroughput float64 `json:"aggregate_throughput_jobs_per_sec"`
	Forwarded           int64   `json:"forwarded"`
	ForwardedIn         int64   `json:"forwarded_in"`
	PerNode             []struct {
		NodeID string `json:"node_id"`
		Jobs   int64  `json:"jobs"`
		Stats  struct {
			Cluster *clusterStatsView `json:"cluster"`
		} `json:"server_stats"`
	} `json:"per_node"`
	XL *struct {
		RegionsDispatched int64 `json:"regions_dispatched"`
		RegionsStolen     int64 `json:"regions_stolen"`
		RegionsServed     int64 `json:"regions_served_by_peers"`
	} `json:"xl_dispatch"`
	Kill *struct {
		KilledNode         string `json:"killed_node"`
		Jobs               int64  `json:"jobs"`
		Resubmitted        int64  `json:"resubmitted"`
		Lost               int64  `json:"lost"`
		UnstructuredErrors int64  `json:"unstructured_errors"`
	} `json:"kill_one_node"`
	Chaos *struct {
		FaultSpec string `json:"fault_spec"`
		FaultNode string `json:"fault_node"`
		Ops       struct {
			Total        int64 `json:"total"`
			Done         int64 `json:"done"`
			Unstructured int64 `json:"unstructured"`
		} `json:"ops"`
		ErrorRate    float64 `json:"error_rate"`
		MaxErrorRate float64 `json:"max_error_rate"`
	} `json:"chaos"`
	LeakedGoroutines int `json:"leaked_goroutines"`
}

// serveBaseline is the slice of BENCH_serve.json the scaling ratio is
// computed against.
type serveBaseline struct {
	Throughput float64 `json:"throughput_jobs_per_sec"`
}

// cmdCluster gates the distributed-mode contract from BENCH_cluster.json:
// the cluster actually routed (forwards flowed and balanced), actually
// executed regions remotely, survived losing a node without losing work,
// leaked nothing, and — measured against the single-node BENCH_serve.json
// baseline — scaled its aggregate throughput by at least -min-ratio. A
// chaos-mode report (benchgen -load -cluster N -chaos ...) swaps the
// kill/XL assertions for the bounded-error-rate contract.
func cmdCluster(args []string) error {
	fs := flag.NewFlagSet("cluster", flag.ExitOnError)
	minNodes := fs.Int("min-nodes", 3, "minimum cluster size the report must cover")
	minRatio := fs.Float64("min-ratio", 2.5, "required aggregate-throughput multiple over the -baseline single-node report (0 = skip; use on instrumented -race runs)")
	baseline := fs.String("baseline", "BENCH_serve.json", "single-node load report the ratio is measured against")
	fs.Parse(args)
	var r clusterView
	if err := decode(fs, "BENCH_cluster.json", &r); err != nil {
		return err
	}
	if r.Nodes < *minNodes {
		return fmt.Errorf("cluster of %d nodes, want >= %d", r.Nodes, *minNodes)
	}
	if len(r.PerNode) != r.Nodes {
		return fmt.Errorf("%d per-node sections for %d nodes", len(r.PerNode), r.Nodes)
	}
	if r.Jobs <= 0 || r.AggregateThroughput <= 0 {
		return fmt.Errorf("load implausible: %d jobs at %.2f jobs/s", r.Jobs, r.AggregateThroughput)
	}

	// Routing engaged and balanced: forwards flowed, every successful
	// relay was received, and no node sat idle.
	if r.Forwarded == 0 {
		return fmt.Errorf("zero forwards: consistent-hash routing never engaged")
	}
	if r.ForwardedIn < r.Forwarded || (r.Chaos == nil && r.Forwarded != r.ForwardedIn) {
		return fmt.Errorf("forward accounting broken: %d sent vs %d received", r.Forwarded, r.ForwardedIn)
	}
	var sumServed, sumDispatched, sumStolen, sumStealsGiven int64
	for _, n := range r.PerNode {
		if n.Jobs == 0 {
			return fmt.Errorf("node %s served zero phase-A jobs: load was not spread", n.NodeID)
		}
		if n.Stats.Cluster == nil {
			return fmt.Errorf("node %s has no cluster stats section", n.NodeID)
		}
		sumServed += n.Stats.Cluster.RegionsServed
		sumDispatched += n.Stats.Cluster.RegionsDispatched
		sumStolen += n.Stats.Cluster.RegionsStolen
		sumStealsGiven += n.Stats.Cluster.StealsGiven
	}
	// A peer can execute a dispatched region and still have the RPC reply
	// lost to a fault, so served may exceed applied dispatches under
	// chaos; they match exactly on a healthy run. Applied steals can never
	// exceed handed-out leases.
	if sumServed < sumDispatched || (r.Chaos == nil && sumServed != sumDispatched) {
		return fmt.Errorf("region accounting broken: %d served vs %d dispatched", sumServed, sumDispatched)
	}
	if sumStolen > sumStealsGiven {
		return fmt.Errorf("steal accounting broken: %d stolen vs %d leases given", sumStolen, sumStealsGiven)
	}

	if r.Chaos != nil {
		switch {
		case r.Chaos.Ops.Total == 0:
			return fmt.Errorf("chaos soak issued no operations")
		case r.Chaos.Ops.Done == 0:
			return fmt.Errorf("no operation succeeded under cluster chaos")
		case r.Chaos.Ops.Unstructured != 0:
			return fmt.Errorf("%d unstructured failures under cluster chaos", r.Chaos.Ops.Unstructured)
		case r.Chaos.MaxErrorRate <= 0 || r.Chaos.MaxErrorRate > 0.5:
			return fmt.Errorf("declared max_error_rate %.3f implausible", r.Chaos.MaxErrorRate)
		case r.Chaos.ErrorRate > r.Chaos.MaxErrorRate:
			return fmt.Errorf("cluster error rate %.3f exceeds the %.2f bound", r.Chaos.ErrorRate, r.Chaos.MaxErrorRate)
		}
	} else {
		// Remote region execution actually happened, and losing a node
		// lost no work.
		if r.XL == nil {
			return fmt.Errorf("no xl_dispatch section: remote region dispatch was not exercised")
		}
		if r.XL.RegionsDispatched+r.XL.RegionsStolen == 0 {
			return fmt.Errorf("xl job ran with zero remote regions (dispatch and steal both idle)")
		}
		if r.Kill == nil || r.Kill.Jobs == 0 {
			return fmt.Errorf("no kill-one-node section: recovery was not exercised")
		}
		if r.Kill.Lost != 0 || r.Kill.UnstructuredErrors != 0 {
			return fmt.Errorf("kill-one-node lost %d jobs (%d unstructured) — the contract is zero",
				r.Kill.Lost, r.Kill.UnstructuredErrors)
		}
	}

	if r.LeakedGoroutines != 0 {
		return fmt.Errorf("%d goroutines leaked past cluster shutdown", r.LeakedGoroutines)
	}

	ratio := 0.0
	if *minRatio > 0 {
		f, err := os.Open(*baseline)
		if err != nil {
			return fmt.Errorf("baseline for -min-ratio: %w", err)
		}
		var base serveBaseline
		err = json.NewDecoder(f).Decode(&base)
		f.Close()
		if err != nil {
			return fmt.Errorf("baseline %s: %w", *baseline, err)
		}
		if base.Throughput <= 0 {
			return fmt.Errorf("baseline %s has no throughput_jobs_per_sec", *baseline)
		}
		ratio = r.AggregateThroughput / base.Throughput
		if ratio < *minRatio {
			return fmt.Errorf("aggregate %.1f jobs/s is only %.2fx the %.1f jobs/s baseline, want >= %.2fx",
				r.AggregateThroughput, ratio, base.Throughput, *minRatio)
		}
	}

	fmt.Printf("cluster gate: %d nodes, %d jobs at %.1f jobs/s", r.Nodes, r.Jobs, r.AggregateThroughput)
	if ratio > 0 {
		fmt.Printf(" (%.2fx baseline)", ratio)
	}
	fmt.Printf(", %d forwarded, %d regions remote", r.Forwarded, sumServed+sumStolen)
	if r.Kill != nil {
		fmt.Printf(", kill %s: %d resubmitted / 0 lost", r.Kill.KilledNode, r.Kill.Resubmitted)
	}
	if r.Chaos != nil {
		fmt.Printf(", chaos on %s: error rate %.3f <= %.2f", r.Chaos.FaultNode, r.Chaos.ErrorRate, r.Chaos.MaxErrorRate)
	}
	fmt.Println(", zero leaks")
	return nil
}
