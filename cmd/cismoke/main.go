// Command cismoke is the CI assertion checker: each subcommand verifies one
// smoke-test contract that the workflow used to express as an inline
// `python3 -c` block, so the pipeline runs on any Go-only runner. Input is
// a JSON document on stdin (the usual case, piped from `dscts -json`) or a
// file argument; any violated assertion prints a message and exits nonzero.
//
//	dscts -design C4 -json | cismoke synth -sinks 1056
//	dscts -design C3 -corners slow,typ,fast -json | cismoke corners
//	dscts -design C4 -partition 300 -json | cismoke partition -max-region 300
//	cismoke scale BENCH_scale.json
//	dscts -xl 500000 -partition 50000 -json | cismoke xl -sinks 500000
//	cismoke eco -design C3 -pct 1 -min-speedup 5 BENCH_eco.json
//	cismoke chaos BENCH_chaos.json
//	cismoke cluster -min-ratio 2.5 -baseline BENCH_serve.json BENCH_cluster.json
//	cismoke metrics BENCH_serve.json
//	cismoke metrics -min-families 25 BENCH_chaos.json
//	cismoke persist BENCH_persist.json
//	cismoke warm BENCH_chaos.json
//	cismoke allocs -max-regress 15 BENCH_parallel.json /tmp/BENCH_parallel_new.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	sub, args := os.Args[1], os.Args[2:]
	var err error
	switch sub {
	case "allocs":
		err = cmdAllocs(args)
	case "synth":
		err = cmdSynth(args)
	case "corners":
		err = cmdCorners(args)
	case "partition":
		err = cmdPartition(args)
	case "scale":
		err = cmdScale(args)
	case "xl":
		err = cmdXL(args)
	case "eco":
		err = cmdECO(args)
	case "chaos":
		err = cmdChaos(args)
	case "cluster":
		err = cmdCluster(args)
	case "metrics":
		err = cmdMetrics(args)
	case "persist":
		err = cmdPersist(args)
	case "warm":
		err = cmdWarm(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "cismoke %s: %v\n", sub, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: cismoke {allocs|synth|corners|partition|scale|xl|eco|chaos|cluster|metrics|persist|warm} [flags] [file...]")
	os.Exit(2)
}

// decode reads the JSON input: the positional file argument if given
// (falling back to defaultPath when non-empty), stdin otherwise. Flags
// must precede the file — Go's flag parsing stops at the first positional
// operand, so anything after the path is rejected loudly here rather than
// silently ignored (a trailing `-min-speedup 99` that never gates is worse
// than an error).
func decode(fs *flag.FlagSet, defaultPath string, v any) error {
	if fs.NArg() > 1 {
		return fmt.Errorf("unexpected arguments %q: flags must come before the report file", fs.Args()[1:])
	}
	path := fs.Arg(0)
	if path == "" {
		path = defaultPath
	}
	var r io.Reader = os.Stdin
	if path != "" && path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	if err := json.NewDecoder(r).Decode(v); err != nil {
		return fmt.Errorf("invalid JSON input: %w", err)
	}
	return nil
}

// dsctsReport mirrors the fields of `dscts -json` the smoke tests assert on.
type dsctsReport struct {
	Design    string  `json:"design"`
	Sinks     int     `json:"sinks"`
	Model     string  `json:"model"`
	LatencyPS float64 `json:"latency_ps"`
	SkewPS    float64 `json:"skew_ps"`
	Runtime   struct {
		Stitch float64 `json:"stitch"`
	} `json:"runtime_s"`
	Corners []struct {
		Name      string  `json:"name"`
		LatencyPS float64 `json:"latency_ps"`
		SkewPS    float64 `json:"skew_ps"`
	} `json:"corners"`
	Worst *struct {
		SkewPS        float64 `json:"skew_ps"`
		LatencyCorner string  `json:"latency_corner"`
	} `json:"worst"`
	Partition *struct {
		Regions        int `json:"regions"`
		MaxRegionSinks int `json:"max_region_sinks"`
	} `json:"partition"`
	ECO *struct {
		LatencyPS   float64 `json:"latency_ps"`
		SkewPS      float64 `json:"skew_ps"`
		DirtyScopes int     `json:"dirty_scopes"`
		TotalScopes int     `json:"total_scopes"`
	} `json:"eco"`
}

func cmdSynth(args []string) error {
	fs := flag.NewFlagSet("synth", flag.ExitOnError)
	sinks := fs.Int("sinks", 0, "expected sink count (0 = don't check)")
	model := fs.String("model", "elmore", "expected delay model")
	wantECO := fs.Bool("eco", false, "require an eco section with sane values")
	fs.Parse(args)
	var r dsctsReport
	if err := decode(fs, "", &r); err != nil {
		return err
	}
	if r.LatencyPS <= 0 {
		return fmt.Errorf("latency_ps = %v, want > 0", r.LatencyPS)
	}
	if r.SkewPS < 0 {
		return fmt.Errorf("skew_ps = %v, want >= 0", r.SkewPS)
	}
	if *sinks > 0 && r.Sinks != *sinks {
		return fmt.Errorf("sinks = %d, want %d", r.Sinks, *sinks)
	}
	if *model != "" && r.Model != *model {
		return fmt.Errorf("model = %q, want %q", r.Model, *model)
	}
	if *wantECO {
		switch {
		case r.ECO == nil:
			return fmt.Errorf("no eco section in the report")
		case r.ECO.LatencyPS <= 0 || r.ECO.SkewPS < 0:
			return fmt.Errorf("eco metrics implausible: %+v", *r.ECO)
		case r.ECO.TotalScopes <= 0 || r.ECO.DirtyScopes > r.ECO.TotalScopes:
			return fmt.Errorf("eco dirty set implausible: %d/%d", r.ECO.DirtyScopes, r.ECO.TotalScopes)
		}
	}
	return nil
}

func cmdCorners(args []string) error {
	fs := flag.NewFlagSet("corners", flag.ExitOnError)
	names := fs.String("names", "slow,typ,fast", "expected corner names in order (comma-separated)")
	worstLatency := fs.String("worst-latency", "slow", "expected worst-latency corner")
	fs.Parse(args)
	var r dsctsReport
	if err := decode(fs, "", &r); err != nil {
		return err
	}
	want := splitCSV(*names)
	if len(r.Corners) != len(want) {
		return fmt.Errorf("%d corners, want %d", len(r.Corners), len(want))
	}
	maxSkew := 0.0
	for i, c := range r.Corners {
		if c.Name != want[i] {
			return fmt.Errorf("corner %d is %q, want %q", i, c.Name, want[i])
		}
		if c.LatencyPS <= 0 || c.SkewPS <= 0 {
			return fmt.Errorf("corner %q has implausible metrics: %+v", c.Name, c)
		}
		if c.SkewPS > maxSkew {
			maxSkew = c.SkewPS
		}
	}
	if r.Worst == nil {
		return fmt.Errorf("no worst summary")
	}
	if r.Worst.LatencyCorner != *worstLatency {
		return fmt.Errorf("worst latency corner %q, want %q", r.Worst.LatencyCorner, *worstLatency)
	}
	if r.Worst.SkewPS < maxSkew-1e-9 {
		return fmt.Errorf("worst skew %v below the per-corner max %v", r.Worst.SkewPS, maxSkew)
	}
	return nil
}

func cmdPartition(args []string) error {
	fs := flag.NewFlagSet("partition", flag.ExitOnError)
	maxRegion := fs.Int("max-region", 0, "maximum sinks per region (0 = don't check)")
	minRegions := fs.Int("min-regions", 2, "minimum region count")
	fs.Parse(args)
	var r dsctsReport
	if err := decode(fs, "", &r); err != nil {
		return err
	}
	if r.Partition == nil {
		return fmt.Errorf("no partition section in the report")
	}
	if r.Partition.Regions < *minRegions {
		return fmt.Errorf("regions = %d, want >= %d", r.Partition.Regions, *minRegions)
	}
	if *maxRegion > 0 && r.Partition.MaxRegionSinks > *maxRegion {
		return fmt.Errorf("max_region_sinks = %d, want <= %d", r.Partition.MaxRegionSinks, *maxRegion)
	}
	if r.LatencyPS <= 0 || r.SkewPS <= 0 {
		return fmt.Errorf("implausible metrics: latency %v, skew %v", r.LatencyPS, r.SkewPS)
	}
	if r.Runtime.Stitch < 0 {
		return fmt.Errorf("stitch runtime %v < 0", r.Runtime.Stitch)
	}
	return nil
}

func cmdXL(args []string) error {
	fs := flag.NewFlagSet("xl", flag.ExitOnError)
	sinks := fs.Int("sinks", 500000, "expected sink count")
	minRegions := fs.Int("min-regions", 8, "minimum region count")
	fs.Parse(args)
	var r dsctsReport
	if err := decode(fs, "", &r); err != nil {
		return err
	}
	if r.Sinks != *sinks {
		return fmt.Errorf("sinks = %d, want %d", r.Sinks, *sinks)
	}
	if r.Partition == nil || r.Partition.Regions < *minRegions {
		return fmt.Errorf("partition section %+v, want >= %d regions", r.Partition, *minRegions)
	}
	if r.LatencyPS <= 0 || r.SkewPS <= 0 {
		return fmt.Errorf("implausible metrics: latency %v, skew %v", r.LatencyPS, r.SkewPS)
	}
	return nil
}

// scaleReport mirrors BENCH_scale.json.
type scaleReport struct {
	Workers           int `json:"workers"`
	PartitionMaxSinks int `json:"partition_max_sinks"`
	Sizes             []struct {
		Sinks              int     `json:"sinks"`
		Regions            int     `json:"regions"`
		MonoMS             float64 `json:"mono_ms"`
		Part1WMS           float64 `json:"part_1w_ms"`
		PartNWMS           float64 `json:"part_nw_ms"`
		PartCriticalPathMS float64 `json:"part_critical_path_ms"`
		LatencyPartPS      float64 `json:"latency_part_ps"`
		SkewPartPS         float64 `json:"skew_part_ps"`
		Validated          bool    `json:"validated"`
	} `json:"sizes"`
	LargestCommon *struct {
		Sinks            int     `json:"sinks"`
		Speedup          float64 `json:"speedup"`
		ProjectedSpeedup float64 `json:"projected_speedup"`
	} `json:"largest_common"`
}

func cmdScale(args []string) error {
	fs := flag.NewFlagSet("scale", flag.ExitOnError)
	fs.Parse(args)
	var r scaleReport
	if err := decode(fs, "BENCH_scale.json", &r); err != nil {
		return err
	}
	if r.Workers < 1 || r.PartitionMaxSinks <= 0 {
		return fmt.Errorf("header implausible: workers %d, partition_max_sinks %d", r.Workers, r.PartitionMaxSinks)
	}
	if len(r.Sizes) < 2 {
		return fmt.Errorf("need a scaling curve, got %d sizes", len(r.Sizes))
	}
	maxMono := 0
	for _, pt := range r.Sizes {
		if pt.Sinks <= 0 || pt.Regions < 1 {
			return fmt.Errorf("size row implausible: %+v", pt)
		}
		if pt.Part1WMS <= 0 || pt.PartNWMS <= 0 || pt.PartCriticalPathMS <= 0 {
			return fmt.Errorf("size %d: missing partitioned timings", pt.Sinks)
		}
		if !pt.Validated {
			return fmt.Errorf("size %d: stitched tree not validated", pt.Sinks)
		}
		if pt.SkewPartPS <= 0 || pt.LatencyPartPS <= 0 {
			return fmt.Errorf("size %d: implausible metrics", pt.Sinks)
		}
		if pt.MonoMS > 0 && pt.Sinks > maxMono {
			maxMono = pt.Sinks
		}
	}
	lc := r.LargestCommon
	if lc == nil {
		return fmt.Errorf("no largest_common summary")
	}
	if lc.Sinks != maxMono {
		return fmt.Errorf("largest_common.sinks = %d, want %d (largest size with a mono run)", lc.Sinks, maxMono)
	}
	if lc.Speedup <= 0 || lc.ProjectedSpeedup <= 0 {
		return fmt.Errorf("largest_common speedups implausible: %+v", *lc)
	}
	return nil
}

// ecoBench mirrors BENCH_eco.json.
type ecoBench struct {
	Workers int `json:"workers"`
	Rows    []struct {
		Design      string  `json:"design"`
		Sinks       int     `json:"sinks"`
		Mode        string  `json:"mode"`
		DeltaPct    float64 `json:"delta_pct"`
		DirtyScopes int     `json:"dirty_scopes"`
		TotalScopes int     `json:"total_scopes"`
		FullMS      float64 `json:"full_ms"`
		ECOMS       float64 `json:"eco_ms"`
		Speedup     float64 `json:"speedup"`
	} `json:"rows"`
}

func cmdECO(args []string) error {
	fs := flag.NewFlagSet("eco", flag.ExitOnError)
	design := fs.String("design", "C3", "design whose speedup is gated")
	pct := fs.Float64("pct", 1, "delta size (percent) whose speedup is gated")
	minSpeedup := fs.Float64("min-speedup", 5, "required best speedup for the gated (design, pct) cell")
	fs.Parse(args)
	var r ecoBench
	if err := decode(fs, "BENCH_eco.json", &r); err != nil {
		return err
	}
	if r.Workers < 1 || len(r.Rows) == 0 {
		return fmt.Errorf("report empty: workers %d, %d rows", r.Workers, len(r.Rows))
	}
	best := 0.0
	found := false
	for _, row := range r.Rows {
		if row.Sinks <= 0 || row.FullMS <= 0 || row.ECOMS <= 0 || row.Speedup <= 0 {
			return fmt.Errorf("row implausible: %+v", row)
		}
		if row.DirtyScopes <= 0 || row.DirtyScopes > row.TotalScopes {
			return fmt.Errorf("row %s/%s %.3g%%: dirty set %d/%d implausible",
				row.Design, row.Mode, row.DeltaPct, row.DirtyScopes, row.TotalScopes)
		}
		if row.Design == *design && row.DeltaPct == *pct {
			found = true
			if row.Speedup > best {
				best = row.Speedup
			}
		}
	}
	if !found {
		return fmt.Errorf("no row for %s at %.3g%%", *design, *pct)
	}
	if best < *minSpeedup {
		return fmt.Errorf("best %s speedup at %.3g%% is %.2fx, want >= %.1fx", *design, *pct, best, *minSpeedup)
	}
	fmt.Printf("eco gate: %s at %.3g%% best speedup %.1fx (>= %.1fx)\n", *design, *pct, best, *minSpeedup)
	return nil
}

// chaosView mirrors the BENCH_chaos.json fields the fault-tolerance gate
// asserts on (benchgen -load -chaos).
type chaosView struct {
	FaultSpec  string  `json:"fault_spec"`
	DurationMS float64 `json:"duration_ms"`
	Ops        struct {
		Total          int64 `json:"total"`
		Done           int64 `json:"done"`
		InjectedErrors int64 `json:"injected_errors"`
		Timeouts       int64 `json:"timeouts"`
		Panics         int64 `json:"panics"`
		Unstructured   int64 `json:"unstructured"`
	} `json:"ops"`
	ErrorRate        float64 `json:"error_rate"`
	MaxErrorRate     float64 `json:"max_error_rate"`
	InjectedFaults   int64   `json:"injected_faults"`
	LeakedGoroutines int     `json:"leaked_goroutines"`
	Stats            struct {
		Jobs struct {
			Running          int64 `json:"running"`
			AbandonedWorkers int64 `json:"abandoned_workers"`
		} `json:"jobs"`
	} `json:"server_stats"`
}

// cmdChaos re-checks the chaos soak's contract from its report: the soak ran
// real traffic with real injections, every failure was structured, nothing
// leaked, and the error rate stayed within its declared bound. The soak
// binary asserts the same things before exiting zero; this gate keeps the
// committed/uploaded artifact honest independently of that exit code.
func cmdChaos(args []string) error {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	minOps := fs.Int64("min-ops", 50, "minimum operations the soak must have issued (absolute floor; keep low — see -min-ops-per-sec)")
	minRate := fs.Float64("min-ops-per-sec", 0, "minimum throughput (ops / soak seconds) the soak must have sustained (0 = skip); duration-relative, so a longer soak on a slow runner does not flake the way an absolute -min-ops does")
	fs.Parse(args)
	var r chaosView
	if err := decode(fs, "BENCH_chaos.json", &r); err != nil {
		return err
	}
	if r.FaultSpec == "" || r.DurationMS <= 0 {
		return fmt.Errorf("header implausible: spec %q, duration %v ms", r.FaultSpec, r.DurationMS)
	}
	if r.Ops.Total < *minOps {
		return fmt.Errorf("only %d ops issued, want >= %d", r.Ops.Total, *minOps)
	}
	if *minRate > 0 {
		rate := float64(r.Ops.Total) / (r.DurationMS / 1000)
		if rate < *minRate {
			return fmt.Errorf("soak sustained %.2f ops/s over %.0fs, want >= %.2f ops/s", rate, r.DurationMS/1000, *minRate)
		}
	}
	if r.Ops.Done == 0 {
		return fmt.Errorf("no operation succeeded under chaos")
	}
	if r.Ops.Unstructured != 0 {
		return fmt.Errorf("%d unstructured failures (every failure must be a classified, structured response)", r.Ops.Unstructured)
	}
	if r.InjectedFaults == 0 {
		return fmt.Errorf("no faults fired: the soak did not actually inject anything")
	}
	if r.LeakedGoroutines != 0 {
		return fmt.Errorf("%d goroutines leaked past shutdown", r.LeakedGoroutines)
	}
	if r.Stats.Jobs.Running != 0 || r.Stats.Jobs.AbandonedWorkers != 0 {
		return fmt.Errorf("worker budget not reclaimed: %d running, %d abandoned after drain",
			r.Stats.Jobs.Running, r.Stats.Jobs.AbandonedWorkers)
	}
	if r.MaxErrorRate <= 0 || r.MaxErrorRate > 0.5 {
		return fmt.Errorf("declared max_error_rate %.3f implausible", r.MaxErrorRate)
	}
	if r.ErrorRate > r.MaxErrorRate {
		return fmt.Errorf("error rate %.3f exceeds the %.2f bound", r.ErrorRate, r.MaxErrorRate)
	}
	fmt.Printf("chaos gate: %d ops, %d injections (%d err/%d timeout/%d panic), error rate %.3f <= %.2f, zero leaks\n",
		r.Ops.Total, r.InjectedFaults, r.Ops.InjectedErrors, r.Ops.Timeouts, r.Ops.Panics,
		r.ErrorRate, r.MaxErrorRate)
	return nil
}

func splitCSV(csv string) []string {
	var out []string
	for _, part := range strings.Split(csv, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
