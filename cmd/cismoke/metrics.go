package main

import (
	"flag"
	"fmt"
	"math"
	"strings"
)

// metricsView mirrors the report fields the metrics gate asserts on. Both
// BENCH_serve.json (benchgen -load) and BENCH_chaos.json (-load -chaos)
// carry this shape: a server_stats snapshot plus a /metrics scrape taken at
// the same quiescent moment, so the two must agree sample-for-sample.
type metricsView struct {
	Stats struct {
		UptimeSeconds float64 `json:"uptime_seconds"`
		Jobs          struct {
			Submitted      int64 `json:"submitted"`
			Rejected       int64 `json:"rejected"`
			RejectedFull   int64 `json:"rejected_full"`
			RejectedLarge  int64 `json:"rejected_large"`
			RejectedClosed int64 `json:"rejected_closed"`
			RejectedQuota  int64 `json:"rejected_quota"`
			Queued         int64 `json:"queued"`
			Running        int64 `json:"running"`
			Done           int64 `json:"done"`
			Failed         int64 `json:"failed"`
			Cancelled      int64 `json:"cancelled"`
			Panics         int64 `json:"panics"`
			Timeouts       int64 `json:"timeouts"`
			WatchdogKills  int64 `json:"watchdog_kills"`
			Abandoned      int64 `json:"abandoned_workers"`
			Deduped        int64 `json:"deduped"`
		} `json:"jobs"`
		Cache struct {
			Entries     int64 `json:"entries"`
			Hits        int64 `json:"hits"`
			Misses      int64 `json:"misses"`
			Evictions   int64 `json:"evictions"`
			Corruptions int64 `json:"corruptions"`
			EncodeDrops int64 `json:"encode_drops"`
		} `json:"cache"`
		ECOBases struct {
			Entries int64 `json:"entries"`
			Hits    int64 `json:"hits"`
			Misses  int64 `json:"misses"`
		} `json:"eco_bases"`
		Faults     map[string]int64 `json:"faults"`
		LastPanics []struct {
			JobID string `json:"job_id"`
		} `json:"last_panics"`
	} `json:"server_stats"`
	Metrics *struct {
		Families    int                `json:"families"`
		FamilyNames []string           `json:"family_names"`
		Samples     map[string]float64 `json:"samples"`
	} `json:"metrics"`
}

// requiredFamilies must appear in every scrape regardless of traffic: the
// queue/cache counters are registered eagerly and the runtime/build gauges
// come with the registry.
var requiredFamilies = []string{
	"dscts_build_info",
	"dscts_cache_encode_drops_total",
	"dscts_cache_hits_total",
	"dscts_http_request_duration_seconds",
	"dscts_job_duration_seconds",
	"dscts_jobs_rejected_total",
	"dscts_jobs_submitted_total",
	"dscts_jobs_total",
	"dscts_qos_dispatched_total",
	"dscts_qos_pending",
	"dscts_store_warm_loaded_total",
	"dscts_store_writes_total",
	"dscts_uptime_seconds",
	"go_goroutines",
	"go_heap_alloc_bytes",
}

// panicRingSize mirrors the serve-side panic retention ring: /stats keeps
// at most this many PanicRecords while the counter keeps growing.
const panicRingSize = 8

// cmdMetrics cross-checks the /metrics scrape embedded in a load or chaos
// report against the server_stats section of the same report. The two come
// from the same atomics, so any disagreement means the exporter wiring —
// not the workload — regressed: a renamed family, a counter read from the
// wrong field, a histogram missing observations.
func cmdMetrics(args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	minFamilies := fs.Int("min-families", 25, "minimum distinct metric families the scrape must export")
	fs.Parse(args)
	var r metricsView
	if err := decode(fs, "BENCH_serve.json", &r); err != nil {
		return err
	}
	m := r.Metrics
	if m == nil {
		return fmt.Errorf("no metrics section in the report (daemon run without Config.Metrics?)")
	}
	if m.Families < *minFamilies {
		return fmt.Errorf("only %d metric families exported, want >= %d", m.Families, *minFamilies)
	}
	if len(m.FamilyNames) != m.Families {
		return fmt.Errorf("families = %d but %d family names listed", m.Families, len(m.FamilyNames))
	}
	have := make(map[string]bool, len(m.FamilyNames))
	for _, f := range m.FamilyNames {
		have[f] = true
	}
	var bad []string
	for _, f := range requiredFamilies {
		if !have[f] {
			bad = append(bad, fmt.Sprintf("family %s missing from the scrape", f))
		}
	}

	// Counter-for-counter equality with /stats. Missing samples count as
	// mismatches: every name here is registered eagerly.
	j, c, e := r.Stats.Jobs, r.Stats.Cache, r.Stats.ECOBases
	eq := []struct {
		sample string
		want   int64
	}{
		{`dscts_jobs_submitted_total`, j.Submitted},
		{`dscts_jobs_rejected_total{reason="queue_full"}`, j.RejectedFull},
		{`dscts_jobs_rejected_total{reason="too_large"}`, j.RejectedLarge},
		{`dscts_jobs_rejected_total{reason="closed"}`, j.RejectedClosed},
		{`dscts_jobs_rejected_total{reason="quota"}`, j.RejectedQuota},
		{`dscts_jobs_total{state="done"}`, j.Done},
		{`dscts_jobs_total{state="failed"}`, j.Failed},
		{`dscts_jobs_total{state="cancelled"}`, j.Cancelled},
		{`dscts_jobs_panics_total`, j.Panics},
		{`dscts_jobs_timeouts_total`, j.Timeouts},
		{`dscts_jobs_watchdog_kills_total`, j.WatchdogKills},
		{`dscts_jobs_abandoned_workers`, j.Abandoned},
		{`dscts_jobs_queue_depth`, j.Queued},
		{`dscts_jobs_running`, j.Running},
		{`dscts_idempotent_replays_total`, j.Deduped},
		{`dscts_cache_hits_total`, c.Hits},
		{`dscts_cache_misses_total`, c.Misses},
		{`dscts_cache_evictions_total`, c.Evictions},
		{`dscts_cache_corruptions_total`, c.Corruptions},
		{`dscts_cache_encode_drops_total`, c.EncodeDrops},
		{`dscts_cache_entries`, c.Entries},
		{`dscts_eco_base_hits_total`, e.Hits},
		{`dscts_eco_base_misses_total`, e.Misses},
		{`dscts_eco_base_entries`, e.Entries},
	}
	for _, chk := range eq {
		got, ok := m.Samples[chk.sample]
		switch {
		case !ok:
			bad = append(bad, fmt.Sprintf("sample %s missing from the scrape", chk.sample))
		case math.Abs(got-float64(chk.want)) > 1e-6:
			bad = append(bad, fmt.Sprintf("%s = %g but /stats says %d", chk.sample, got, chk.want))
		}
	}

	// The rejection reasons are a partition of the rejected total.
	if sum := j.RejectedFull + j.RejectedLarge + j.RejectedClosed + j.RejectedQuota; sum != j.Rejected {
		bad = append(bad, fmt.Sprintf("rejection reasons sum to %d but rejected = %d", sum, j.Rejected))
	}
	// Submission accounting: a rejection is NOT a submission — every
	// rejection path (too-large, closed, full, quota) returns before the
	// submitted counter, and idempotent replays never reach it — so every
	// submitted job is in exactly one terminal-or-live state.
	if sum := j.Done + j.Failed + j.Cancelled + j.Queued + j.Running; sum != j.Submitted {
		bad = append(bad, fmt.Sprintf("job states sum to %d but submitted = %d (a job escaped the state machine)", sum, j.Submitted))
	}
	// Every finished job lands in exactly one latency histogram series.
	hit, miss := m.Samples[`dscts_job_duration_seconds_count{cache="hit"}`], m.Samples[`dscts_job_duration_seconds_count{cache="miss"}`]
	if int64(hit+miss+0.5) != j.Done {
		bad = append(bad, fmt.Sprintf("job_duration histogram observed %g hit + %g miss jobs but done = %d", hit, miss, j.Done))
	}
	// The injected-faults counter is the sum of the per-point /stats map.
	var faults int64
	for _, n := range r.Stats.Faults {
		faults += n
	}
	if got := m.Samples[`dscts_faults_injected_total`]; math.Abs(got-float64(faults)) > 1e-6 {
		bad = append(bad, fmt.Sprintf("dscts_faults_injected_total = %g but /stats faults sum to %d", got, faults))
	}
	// The panic ring retains the most recent panicRingSize records.
	wantRing := j.Panics
	if wantRing > panicRingSize {
		wantRing = panicRingSize
	}
	if int64(len(r.Stats.LastPanics)) != wantRing {
		bad = append(bad, fmt.Sprintf("last_panics has %d records, want %d (panics = %d, ring = %d)",
			len(r.Stats.LastPanics), wantRing, j.Panics, panicRingSize))
	}
	if up := m.Samples[`dscts_uptime_seconds`]; up <= 0 {
		bad = append(bad, fmt.Sprintf("dscts_uptime_seconds = %g, want > 0", up))
	}

	if len(bad) > 0 {
		return fmt.Errorf("metrics/stats disagree:\n  %s", strings.Join(bad, "\n  "))
	}
	fmt.Printf("metrics gate: %d families, %d counters match /stats (submitted %d = done %d + failed %d + cancelled %d; %d rejections outside)\n",
		m.Families, len(eq), j.Submitted, j.Done, j.Failed, j.Cancelled, j.Rejected)
	return nil
}
