package main

import (
	"flag"
	"fmt"
	"strings"
)

// persistView mirrors the BENCH_persist.json fields the persistence gate
// asserts on (benchgen -persist).
type persistView struct {
	Jobs         int     `json:"jobs"`
	Cold         latView `json:"latency_cold"`
	Warm         latView `json:"latency_warm_restart"`
	SpeedupP50   float64 `json:"warm_speedup_p50"`
	WarmRequests int     `json:"warm_requests"`
	WarmHits     int     `json:"warm_hits"`
	EcoBaseHit   bool    `json:"eco_base_hit_after_restart"`
	Stats        struct {
		Cache struct {
			Hits   int64 `json:"hits"`
			Misses int64 `json:"misses"`
		} `json:"cache"`
		Store *storeView `json:"store"`
	} `json:"server_stats"`
}

// storeView mirrors the persistent tier's stats section of a service report.
type storeView struct {
	Writes             int64 `json:"writes"`
	WriteErrors        int64 `json:"write_errors"`
	Dropped            int64 `json:"dropped"`
	Pending            int64 `json:"pending"`
	ResultEntries      int64 `json:"result_entries"`
	BaseEntries        int64 `json:"base_entries"`
	WarmResults        int64 `json:"warm_results"`
	WarmBases          int64 `json:"warm_bases"`
	WarmSkippedCorrupt int64 `json:"warm_skipped_corrupt"`
	WarmSkippedVersion int64 `json:"warm_skipped_version"`
	WarmSkippedIO      int64 `json:"warm_skipped_io"`
}

type latView struct {
	P50 float64 `json:"p50_ms"`
	P99 float64 `json:"p99_ms"`
}

// cmdPersist re-checks the restart benchmark's contract from its report: the
// restarted daemon served every replayed request from the disk-warmed cache,
// resolved an unseen-delta ECO from the persisted base snapshot, loaded the
// warm start without skipping a single file, and the warm path was actually
// faster than recomputing. The benchmark binary asserts most of this before
// exiting zero; this gate keeps the committed artifact honest independently
// of that exit code.
func cmdPersist(args []string) error {
	fs := flag.NewFlagSet("persist", flag.ExitOnError)
	minSpeedup := fs.Float64("min-speedup", 3, "required cold/warm p50 ratio across the restart")
	fs.Parse(args)
	var r persistView
	if err := decode(fs, "BENCH_persist.json", &r); err != nil {
		return err
	}
	var bad []string
	if r.Jobs <= 0 || r.WarmRequests <= 0 {
		return fmt.Errorf("header implausible: jobs %d, warm_requests %d", r.Jobs, r.WarmRequests)
	}
	if r.WarmHits != r.WarmRequests {
		bad = append(bad, fmt.Sprintf("only %d/%d post-restart requests were cache hits (persistence did not survive the restart)", r.WarmHits, r.WarmRequests))
	}
	if !r.EcoBaseHit {
		bad = append(bad, "post-restart eco recomputed its base: the persisted base snapshot was not found")
	}
	st := r.Stats.Store
	if st == nil {
		return fmt.Errorf("no store section in server_stats (benchmark run without a cache dir?)")
	}
	if st.WarmResults < int64(r.Jobs) {
		bad = append(bad, fmt.Sprintf("warm start loaded %d results, want >= %d (the cold run persisted every job)", st.WarmResults, r.Jobs))
	}
	if st.WarmBases < 1 {
		bad = append(bad, "warm start loaded no base snapshots")
	}
	if skipped := st.WarmSkippedCorrupt + st.WarmSkippedVersion + st.WarmSkippedIO; skipped != 0 {
		bad = append(bad, fmt.Sprintf("warm start skipped %d files (%d corrupt, %d version, %d io) over a cleanly closed store",
			skipped, st.WarmSkippedCorrupt, st.WarmSkippedVersion, st.WarmSkippedIO))
	}
	if st.WriteErrors != 0 || st.Dropped != 0 {
		bad = append(bad, fmt.Sprintf("write-behind lost data: %d write errors, %d dropped", st.WriteErrors, st.Dropped))
	}
	if r.Cold.P50 <= 0 || r.Warm.P50 <= 0 {
		bad = append(bad, fmt.Sprintf("latency columns implausible: cold p50 %v ms, warm p50 %v ms", r.Cold.P50, r.Warm.P50))
	} else if r.SpeedupP50 < *minSpeedup {
		bad = append(bad, fmt.Sprintf("warm restart only %.1fx faster than cold (p50 %.2f -> %.2f ms), want >= %.1fx",
			r.SpeedupP50, r.Cold.P50, r.Warm.P50, *minSpeedup))
	}
	if len(bad) > 0 {
		return fmt.Errorf("persistence contract violated:\n  %s", strings.Join(bad, "\n  "))
	}
	fmt.Printf("persist gate: %d/%d warm hits across restart, eco base hit, %d results + %d bases loaded, 0 skips, %.0fx p50 speedup\n",
		r.WarmHits, r.WarmRequests, st.WarmResults, st.WarmBases, r.SpeedupP50)
	return nil
}

// cmdWarm asserts, from any service report that embeds server_stats (a
// chaos soak or load run with -cache-dir), that the daemon actually
// warm-started from the persistent tier. Unlike the persist gate this one
// tolerates warm-start skips — debris from an interrupted run is exactly
// what the restart-mid-chaos soak produces — but it never tolerates
// write-behind data loss or a silently empty warm start.
func cmdWarm(args []string) error {
	fs := flag.NewFlagSet("warm", flag.ExitOnError)
	minResults := fs.Int64("min-results", 1, "required warm-loaded result blobs")
	fs.Parse(args)
	var r struct {
		Stats struct {
			Store *storeView `json:"store"`
		} `json:"server_stats"`
	}
	if err := decode(fs, "BENCH_chaos.json", &r); err != nil {
		return err
	}
	st := r.Stats.Store
	if st == nil {
		return fmt.Errorf("no store section in server_stats (run without -cache-dir?)")
	}
	var bad []string
	if st.WarmResults < *minResults {
		bad = append(bad, fmt.Sprintf("warm start loaded %d results, want >= %d (persistence silently stopped working)", st.WarmResults, *minResults))
	}
	if st.WriteErrors != 0 || st.Dropped != 0 {
		bad = append(bad, fmt.Sprintf("write-behind lost data: %d write errors, %d dropped", st.WriteErrors, st.Dropped))
	}
	if len(bad) > 0 {
		return fmt.Errorf("warm-start contract violated:\n  %s", strings.Join(bad, "\n  "))
	}
	fmt.Printf("warm gate: %d results + %d bases loaded (skipped: %d corrupt, %d version, %d io)\n",
		st.WarmResults, st.WarmBases, st.WarmSkippedCorrupt, st.WarmSkippedVersion, st.WarmSkippedIO)
	return nil
}
