package main

// The allocation-regression gate: `cismoke allocs baseline.json new.json`
// compares a fresh `benchgen -bench` run against the committed
// BENCH_parallel.json and fails when any stage's allocs_per_op or
// bytes_per_op grew by more than the threshold. Unlike wall-clock, Go's
// allocation accounting is machine-transferable — the same binary allocates
// the same amounts on any host — which is exactly why the generic
// `benchgen -compare` ratio gate leaves these columns alone and this
// subcommand gates them instead.

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// decodeFile reads one JSON report by path; allocs is the only subcommand
// that takes two positional reports, so the stdin-capable decode helper
// does not fit.
func decodeFile(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("%s: invalid JSON: %w", path, err)
	}
	return nil
}

// parallelAllocView mirrors the BENCH_parallel.json fields this gate reads.
type parallelAllocView struct {
	Stages map[string]struct {
		BytesPerOp  int64 `json:"bytes_per_op"`
		AllocsPerOp int64 `json:"allocs_per_op"`
	} `json:"stages"`
}

func cmdAllocs(args []string) error {
	fs := flag.NewFlagSet("allocs", flag.ExitOnError)
	maxRegress := fs.Float64("max-regress", 15, "maximum allowed growth per stage, percent")
	// Absolute slack floors keep near-zero warm stages from tripping the
	// relative gate on scheduler noise: 15% of a 200-alloc stage is 30
	// allocs, well inside run-to-run jitter from pool timing.
	slackAllocs := fs.Int64("slack-allocs", 128, "absolute allocs_per_op growth always tolerated")
	slackBytes := fs.Int64("slack-bytes", 65536, "absolute bytes_per_op growth always tolerated")
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: cismoke allocs [-max-regress pct] baseline.json new.json")
	}
	var base, cur parallelAllocView
	if err := decodeFile(fs.Arg(0), &base); err != nil {
		return err
	}
	if err := decodeFile(fs.Arg(1), &cur); err != nil {
		return err
	}
	if len(base.Stages) == 0 || len(cur.Stages) == 0 {
		return fmt.Errorf("empty stage table (baseline %d, new %d)", len(base.Stages), len(cur.Stages))
	}

	names := make([]string, 0, len(base.Stages))
	for name := range base.Stages {
		if _, ok := cur.Stages[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return fmt.Errorf("no common stages between %s and %s", fs.Arg(0), fs.Arg(1))
	}

	var regressions []string
	gate := func(stage, metric string, was, now, slack int64) {
		limit := was + int64(float64(was)**maxRegress/100)
		if s := was + slack; s > limit {
			limit = s
		}
		if now > limit {
			regressions = append(regressions,
				fmt.Sprintf("%s %s: %d -> %d (limit %d, +%.0f%% or +%d)",
					stage, metric, was, now, limit, *maxRegress, slack))
		}
	}
	for _, name := range names {
		was, now := base.Stages[name], cur.Stages[name]
		gate(name, "allocs_per_op", was.AllocsPerOp, now.AllocsPerOp, *slackAllocs)
		gate(name, "bytes_per_op", was.BytesPerOp, now.BytesPerOp, *slackBytes)
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Printf("  REGRESSION %s\n", r)
		}
		return fmt.Errorf("%d allocation regression(s) beyond %.0f%%", len(regressions), *maxRegress)
	}
	fmt.Printf("allocs gate: %d stages within %.0f%% of baseline\n", len(names), *maxRegress)
	return nil
}
