package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"dscts/internal/obs"
	"dscts/internal/serve"
)

// latencyStats are the classic load-test percentiles, in milliseconds.
type latencyStats struct {
	P50  float64 `json:"p50_ms"`
	P90  float64 `json:"p90_ms"`
	P99  float64 `json:"p99_ms"`
	Max  float64 `json:"max_ms"`
	Mean float64 `json:"mean_ms"`
}

// loadReport is the machine-readable BENCH_serve.json: service throughput
// and latency under concurrent replayed synthesis traffic, next to the
// queue/cache counters that explain them.
type loadReport struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	Jobs        int `json:"jobs"`
	Distinct    int `json:"distinct_requests"`
	Concurrency int `json:"client_concurrency"`
	MaxRunning  int `json:"max_running"`

	WallMS     float64      `json:"wall_ms"`
	Throughput float64      `json:"throughput_jobs_per_sec"`
	Latency    latencyStats `json:"latency"`
	ColdMS     latencyStats `json:"latency_cache_miss"`
	WarmMS     latencyStats `json:"latency_cache_hit"`

	Stats serve.Stats `json:"server_stats"`
	// MetricsBefore and Metrics are GET /metrics scrapes bracketing the run;
	// `cismoke metrics` cross-checks the after-run samples against Stats.
	MetricsBefore *metricsSection `json:"metrics_before,omitempty"`
	Metrics       *metricsSection `json:"metrics,omitempty"`
	Notes         []string        `json:"notes"`
}

func percentiles(ms []float64) latencyStats {
	if len(ms) == 0 {
		return latencyStats{}
	}
	sorted := append([]float64(nil), ms...)
	sort.Float64s(sorted)
	at := func(p float64) float64 {
		i := int(p * float64(len(sorted)-1))
		return sorted[i]
	}
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	return latencyStats{
		P50: at(0.50), P90: at(0.90), P99: at(0.99),
		Max: sorted[len(sorted)-1], Mean: sum / float64(len(sorted)),
	}
}

// runLoad spins an in-process dsctsd, replays `jobs` synthesis requests
// drawn round-robin from a pool of `distinct` request shapes across C1..C5
// with `conc` concurrent clients, and writes the throughput/latency report.
func runLoad(path string, jobs, conc, distinct int) error {
	if jobs <= 0 {
		jobs = 40
	}
	if conc <= 0 {
		conc = 8
	}
	if distinct <= 0 || distinct > jobs {
		distinct = (jobs + 1) / 2
	}
	maxRunning := conc
	srv := serve.NewServer(serve.Config{
		MaxRunning: maxRunning,
		MaxQueued:  jobs + conc, // admission never the bottleneck here
		Metrics:    obs.NewRegistry(),
	})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	client := serve.NewClient(base)
	metricsBefore, err := scrapeMetrics(base)
	if err != nil {
		return err
	}

	// The distinct request pool: the five Table II designs crossed with
	// option variants that change the result identity.
	designs := []string{"C1", "C2", "C3", "C4", "C5"}
	pool := make([]*serve.Request, distinct)
	for i := range pool {
		pool[i] = &serve.Request{
			Design: designs[i%len(designs)],
			Seed:   int64(1 + i/len(designs)),
			Options: serve.OptionsSpec{
				FanoutThreshold: []int{0, 150, 600}[i%3],
			},
		}
	}

	type sample struct {
		ms  float64
		hit bool
	}
	samples := make([]sample, jobs)
	errs := make([]error, jobs)
	var next int
	var mu sync.Mutex
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= jobs {
					return
				}
				t0 := time.Now()
				info, err := client.Synthesize(context.Background(), pool[i%distinct])
				if err == nil && info.State != serve.StateDone {
					err = fmt.Errorf("job %s ended %s (%s)", info.ID, info.State, info.Error)
				}
				if err != nil {
					errs[i] = err
					continue
				}
				samples[i] = sample{ms: float64(time.Since(t0)) / float64(time.Millisecond), hit: info.CacheHit}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("load job %d: %w", i, err)
		}
	}
	st, err := client.Stats(context.Background())
	if err != nil {
		return err
	}
	// Scrape while the daemon is quiescent (all clients joined) so the
	// sample map and the Stats snapshot describe the same moment.
	metricsAfter, err := scrapeMetrics(base)
	if err != nil {
		return err
	}

	var all, cold, warm []float64
	for _, s := range samples {
		all = append(all, s.ms)
		if s.hit {
			warm = append(warm, s.ms)
		} else {
			cold = append(cold, s.ms)
		}
	}
	rep := loadReport{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0),
		Jobs: jobs, Distinct: distinct, Concurrency: conc, MaxRunning: maxRunning,
		WallMS:        float64(wall) / float64(time.Millisecond),
		Throughput:    float64(jobs) / wall.Seconds(),
		Latency:       percentiles(all),
		ColdMS:        percentiles(cold),
		WarmMS:        percentiles(warm),
		Stats:         *st,
		MetricsBefore: metricsBefore,
		Metrics:       metricsAfter,
		Notes: []string{
			"end-to-end HTTP sync requests against an in-process dsctsd over loopback; latency includes queueing, JSON and the synthesis itself",
			"requests are drawn round-robin from the distinct pool, so repeats past the first pass are content-addressed cache hits (identical requests in flight concurrently may both miss)",
			"results are worker-budget independent (bit-identical Metrics), so MaxRunning only trades latency against throughput",
		},
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("service load report -> %s\n", path)
	fmt.Printf("  %d jobs (%d distinct) x%d clients: %.1f jobs/s, p50 %.1f ms, p99 %.1f ms, cache %d/%d hits\n",
		jobs, distinct, conc, rep.Throughput, rep.Latency.P50, rep.Latency.P99,
		st.Cache.Hits, st.Cache.Hits+st.Cache.Misses)
	return nil
}
