package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"time"

	"dscts/internal/obs"
	"dscts/internal/serve"
	"dscts/internal/store"
)

// persistReport is the machine-readable BENCH_persist.json: the same request
// pool replayed cold (fresh daemon, empty disk tier) and then again after a
// full daemon restart over the same -cache-dir, so the warm column measures
// what the persistent tier actually buys — a disk-warmed cache hit instead
// of a re-synthesis.
type persistReport struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	Jobs        int `json:"jobs"`
	Concurrency int `json:"client_concurrency"`

	Cold       latencyStats `json:"latency_cold"`
	Warm       latencyStats `json:"latency_warm_restart"`
	SpeedupP50 float64      `json:"warm_speedup_p50"`

	WarmRequests int `json:"warm_requests"`
	WarmHits     int `json:"warm_hits"`
	// EcoBaseHitAfterRestart reports whether a POST /eco issued to the
	// RESTARTED daemon — with a delta never seen before — resolved its base
	// synthesis from the disk-warmed base cache instead of recomputing it.
	EcoBaseHitAfterRestart bool `json:"eco_base_hit_after_restart"`

	// Stats is the restarted daemon's quiescent /stats snapshot; its store
	// section carries the warm-start load/skip counters the persist gate
	// cross-checks.
	Stats serve.Stats `json:"server_stats"`
	Notes []string    `json:"notes"`
}

// persistDaemon is one in-process dsctsd over its own store handle. The
// store is owned here, daemon-style: opened before the server, closed (and
// flushed) after it.
type persistDaemon struct {
	st     *store.Store
	srv    *serve.Server
	hs     *http.Server
	client *serve.Client
}

func startPersistDaemon(dir string, conc int) (*persistDaemon, error) {
	st, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		return nil, err
	}
	srv := serve.NewServer(serve.Config{
		MaxRunning: conc,
		MaxQueued:  256,
		Store:      st,
		Metrics:    obs.NewRegistry(),
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		st.Close()
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	return &persistDaemon{
		st: st, srv: srv, hs: hs,
		client: serve.NewClient("http://" + ln.Addr().String()),
	}, nil
}

// stop tears the daemon down in dependency order: listener, then queue
// (drains in-flight jobs), then store (flushes the write-behind tail).
func (d *persistDaemon) stop() error {
	d.hs.Close()
	d.srv.Close()
	return d.st.Close()
}

// persistPool is the replayed request set: three Table II designs crossed
// with fanout variants, each a distinct cache identity.
func persistPool(jobs int) []*serve.Request {
	designs := []string{"C1", "C2", "C3"}
	pool := make([]*serve.Request, jobs)
	for i := range pool {
		pool[i] = &serve.Request{
			Design: designs[i%len(designs)],
			Seed:   int64(1 + i/len(designs)),
			Options: serve.OptionsSpec{
				FanoutThreshold: []int{0, 150, 600}[i%3],
			},
		}
	}
	return pool
}

// replay submits the pool synchronously (one client; the point is per-request
// latency, not throughput) and returns the latencies plus the hit count.
func replay(client *serve.Client, pool []*serve.Request) ([]float64, int, error) {
	ms := make([]float64, 0, len(pool))
	hits := 0
	for i, req := range pool {
		t0 := time.Now()
		info, err := client.Synthesize(context.Background(), req)
		if err != nil {
			return nil, 0, fmt.Errorf("request %d: %w", i, err)
		}
		if info.State != serve.StateDone {
			return nil, 0, fmt.Errorf("request %d ended %s (%s)", i, info.State, info.Error)
		}
		ms = append(ms, float64(time.Since(t0))/float64(time.Millisecond))
		if info.CacheHit {
			hits++
		}
	}
	return ms, hits, nil
}

// ecoRequest builds a POST /eco request whose base is pool[0] and whose
// delta moves one sink by a step that depends on `variant`, so different
// variants share the base identity but never the full-result identity.
func ecoRequest(base *serve.Request, variant float64) *serve.Request {
	req := *base
	req.Delta = &serve.DeltaSpec{
		Move: []serve.MoveSpec{{Sink: 0, X: 40 + variant, Y: 40 + variant}},
	}
	return &req
}

// runPersist measures the disk-backed cache tier across a daemon restart and
// writes BENCH_persist.json. It fails loudly if the restarted daemon
// recomputes anything the first process already solved: every warm replay
// must be a cache hit and the unseen-delta ECO must resolve its base from
// the disk-warmed snapshot.
func runPersist(path string, jobs, conc int) error {
	if jobs <= 0 {
		jobs = 9
	}
	if conc <= 0 {
		conc = 4
	}
	dir, err := os.MkdirTemp("", "dscts-persist-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	pool := persistPool(jobs)

	// Cold process: populate the tier. The ECO here retains (and persists)
	// the base snapshot the post-restart ECO must find.
	d1, err := startPersistDaemon(dir, conc)
	if err != nil {
		return err
	}
	cold, coldHits, err := replay(d1.client, pool)
	if err != nil {
		d1.stop()
		return fmt.Errorf("cold replay: %w", err)
	}
	if coldHits != 0 {
		d1.stop()
		return fmt.Errorf("cold replay saw %d cache hits, want 0 (stale shared state?)", coldHits)
	}
	if _, err := d1.client.ECO(context.Background(), ecoRequest(pool[0], 0)); err != nil {
		d1.stop()
		return fmt.Errorf("cold eco: %w", err)
	}
	if err := d1.stop(); err != nil {
		return fmt.Errorf("cold shutdown: %w", err)
	}

	// Restarted process over the same directory: the warm column.
	d2, err := startPersistDaemon(dir, conc)
	if err != nil {
		return fmt.Errorf("restart: %w", err)
	}
	defer d2.stop()
	warm, warmHits, err := replay(d2.client, pool)
	if err != nil {
		return fmt.Errorf("warm replay: %w", err)
	}
	if warmHits != len(pool) {
		return fmt.Errorf("restarted daemon served %d/%d warm requests from cache, want all (persistence broken)", warmHits, len(pool))
	}
	ecoInfo, err := d2.client.ECO(context.Background(), ecoRequest(pool[0], 1))
	if err != nil {
		return fmt.Errorf("warm eco: %w", err)
	}
	if ecoInfo.Result == nil || !ecoInfo.Result.BaseCacheHit {
		return fmt.Errorf("post-restart eco with an unseen delta recomputed its base (want a disk-warmed base hit)")
	}
	st, err := d2.client.Stats(context.Background())
	if err != nil {
		return err
	}
	if st.Store == nil {
		return fmt.Errorf("no store section in /stats (daemon run without Config.Store?)")
	}

	coldPct, warmPct := percentiles(cold), percentiles(warm)
	speedup := 0.0
	if warmPct.P50 > 0 {
		speedup = coldPct.P50 / warmPct.P50
	}
	rep := persistReport{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0),
		Jobs: jobs, Concurrency: conc,
		Cold: coldPct, Warm: warmPct, SpeedupP50: speedup,
		WarmRequests: len(pool), WarmHits: warmHits,
		EcoBaseHitAfterRestart: true,
		Stats:                  *st,
		Notes: []string{
			"cold = fresh daemon over an empty -cache-dir; warm = the SAME requests against a fully restarted daemon over the same directory",
			"warm latency is a disk-warmed in-memory cache hit: the store is read only at warm start, never on the request path",
			"the eco row submits a delta the first process never saw, so only the persisted base snapshot can explain base_cache_hit",
		},
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("persistence report -> %s\n", path)
	fmt.Printf("  %d jobs: cold p50 %.1f ms, warm-restart p50 %.2f ms (%.0fx), %d/%d warm hits, eco base hit across restart, store loaded %d results + %d bases\n",
		jobs, coldPct.P50, warmPct.P50, speedup, warmHits, len(pool),
		st.Store.WarmResults, st.Store.WarmBases)
	return nil
}
