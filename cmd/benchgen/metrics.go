package main

import (
	"fmt"
	"net/http"

	"dscts/internal/obs"
)

// metricsSection embeds a GET /metrics scrape in a benchmark report:
// the family inventory plus the raw sample map, so `cismoke metrics` can
// cross-check the exported counters against the server_stats section
// without re-running the load.
type metricsSection struct {
	// Families is the number of distinct metric families exported.
	Families int `json:"families"`
	// FamilyNames is the sorted family inventory (histogram suffixes
	// collapsed).
	FamilyNames []string `json:"family_names"`
	// Samples maps full sample names (labels included, as rendered) to
	// values.
	Samples map[string]float64 `json:"samples"`
}

// scrapeMetrics fetches and parses base/metrics.
func scrapeMetrics(base string) (*metricsSection, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return nil, fmt.Errorf("scrape /metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scrape /metrics: HTTP %d", resp.StatusCode)
	}
	samples, err := obs.ParseText(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("scrape /metrics: %w", err)
	}
	fams := obs.FamilyNames(samples)
	return &metricsSection{Families: len(fams), FamilyNames: fams, Samples: samples}, nil
}
