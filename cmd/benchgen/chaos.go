package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dscts/internal/fault"
	"dscts/internal/obs"
	"dscts/internal/serve"
	"dscts/internal/store"
)

// defaultChaosSpec is the built-in seeded fault schedule of `-chaos default`:
// every failure mode the hardening has to absorb. The one-shot nth= rules
// guarantee each mode fires at least once even in a short smoke (so every
// classification bucket is exercised); the rate rules keep firing for as
// long as the soak runs. The hang is the nastiest entry — a worker stuck
// past its deadline, reclaimed only by the watchdog — so it is rare and
// bounded (3s against the jobs' 2s request deadline).
const defaultChaosSpec = "panic@serve.job:nth=3;" +
	"hang@serve.job:nth=11:3s;" +
	"cancel@serve.job:nth=7;" +
	"panic@serve.job:0.02;" +
	"error@core.route:0.02;" +
	"error@core.eco:0.02;" +
	"delay@core.insert:0.05:20ms;" +
	"hang@serve.job:0.004:3s;" +
	"cancel@serve.job:0.01;" +
	"corrupt@serve.cache:0.05"

// chaosOps classifies every operation of the soak. An operation is one
// logical client call after retries; exactly one bucket counts it.
type chaosOps struct {
	// Total is the number of operations issued.
	Total int64 `json:"total"`
	// Done finished successfully (CacheHits of them from the result cache).
	Done      int64 `json:"done"`
	CacheHits int64 `json:"cache_hits"`
	// InjectedErrors are jobs failed by a scripted mid-flow error (the error
	// string names the injection).
	InjectedErrors int64 `json:"injected_errors"`
	// Timeouts are HTTP 504s: the per-job deadline fired (including hung
	// bodies reclaimed by the watchdog).
	Timeouts int64 `json:"timeouts"`
	// Panics are HTTP 500s: the job body panicked and the daemon recovered.
	Panics int64 `json:"panics"`
	// Cancelled jobs were stopped by an injected context cancellation.
	Cancelled int64 `json:"cancelled"`
	// Rejected operations exhausted their retries against 429/503.
	Rejected int64 `json:"rejected"`
	// OtherFailures are structured failures outside the buckets above.
	OtherFailures int64 `json:"other_failures"`
	// Unstructured counts everything else — transport errors, empty error
	// bodies. The soak asserts this stays ZERO: every failure the daemon
	// produces under chaos must be a structured, classified response.
	Unstructured int64 `json:"unstructured"`
}

// chaosReport is the machine-readable BENCH_chaos.json.
type chaosReport struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	FaultSpec  string  `json:"fault_spec"`
	FaultSeed  int64   `json:"fault_seed"`
	DurationMS float64 `json:"duration_ms"`
	Workers    int     `json:"client_concurrency"`

	Ops chaosOps `json:"ops"`
	// ErrorRate is the non-success fraction of operations; the soak bounds
	// it by MaxErrorRate (injection rates times flow depth, with slack).
	ErrorRate    float64 `json:"error_rate"`
	MaxErrorRate float64 `json:"max_error_rate"`
	// InjectedFaults totals the registry's fired injections across kinds.
	InjectedFaults int64 `json:"injected_faults"`
	// LeakedGoroutines is the post-shutdown goroutine delta (must be 0).
	LeakedGoroutines int `json:"leaked_goroutines"`

	Stats serve.Stats `json:"server_stats"`
	// Metrics is a GET /metrics scrape taken at the same quiescent moment
	// as Stats; `cismoke metrics` asserts the two agree sample-for-sample.
	Metrics *metricsSection `json:"metrics,omitempty"`
	Notes   []string        `json:"notes"`
}

// runChaos soaks an in-process dsctsd under a seeded fault schedule for the
// given duration, classifies every operation, and writes BENCH_chaos.json.
// It fails (nonzero exit) if the daemon crashed, any failure was
// unstructured, goroutines or worker budget leaked, or the error rate left
// its bound — the chaos contract of DESIGN.md §5.
func runChaos(path, spec string, seed int64, duration time.Duration, conc int, cacheDir string) error {
	if spec == "default" {
		spec = defaultChaosSpec
	}
	if conc <= 0 {
		conc = 8
	}
	if duration <= 0 {
		duration = 30 * time.Second
	}
	reg, err := fault.Parse(spec, seed)
	if err != nil {
		return err
	}
	before := runtime.NumGoroutine()

	// With -cache-dir the soak runs over a persistent tier: a second soak on
	// the same directory is a restart-mid-chaos test — the warm start must
	// absorb whatever the interrupted run left behind.
	var pst *store.Store
	if cacheDir != "" {
		pst, err = store.Open(store.Config{Dir: cacheDir})
		if err != nil {
			return err
		}
	}

	srv := serve.NewServer(serve.Config{
		MaxRunning: 4, MaxQueued: 64,
		JobTimeout:    5 * time.Second,
		WatchdogGrace: 300 * time.Millisecond,
		Faults:        reg,
		Metrics:       obs.NewRegistry(),
		Store:         pst,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()

	// The request pool mixes plain synthesis with ECO splices so the chaos
	// schedule reaches the core phase boundaries AND the incremental path.
	type op struct {
		req *serve.Request
		eco bool
	}
	pool := []op{
		{req: &serve.Request{Design: "C1"}},
		{req: &serve.Request{Design: "C2"}},
		{req: &serve.Request{Design: "C1", Options: serve.OptionsSpec{FanoutThreshold: 150}}},
		{req: &serve.Request{Design: "C2", Options: serve.OptionsSpec{SkipRefine: true}}},
		{req: &serve.Request{Design: "C1", Seed: 2}},
		{req: &serve.Request{Design: "C1", Delta: &serve.DeltaSpec{Add: []serve.XY{{X: 120, Y: 80}}}}, eco: true},
		{req: &serve.Request{Design: "C2", Delta: &serve.DeltaSpec{Move: []serve.MoveSpec{{Sink: 3, X: 50, Y: 60}}}}, eco: true},
	}

	var ops chaosOps
	count := func(p *int64) { atomic.AddInt64(p, 1) }
	deadline := time.Now().Add(duration)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := &serve.Client{Base: base, RetryBackoff: 5 * time.Millisecond}
			for n := 0; time.Now().Before(deadline); n++ {
				o := pool[(w+n)%len(pool)]
				req := *o.req
				req.TimeoutMS = 2000
				req.IdempotencyKey = fmt.Sprintf("chaos-%d-%d", w, n)
				var info *serve.JobInfo
				var err error
				if o.eco {
					info, err = client.ECO(context.Background(), &req)
				} else {
					info, err = client.Synthesize(context.Background(), &req)
				}
				count(&ops.Total)
				classify(&ops, info, err, count)
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)

	client := serve.NewClient(base)
	st, err := client.Stats(context.Background())
	if err != nil {
		return fmt.Errorf("chaos: daemon unreachable after the soak (crashed?): %w", err)
	}
	// A hang injected in the soak's final seconds leaves a reclaimed worker
	// whose body is still unwinding; give the daemon a bounded window to
	// quiesce before taking the gated snapshot. A genuine leak never clears,
	// so the gate below still catches it.
	for quiesce := time.Now().Add(5 * time.Second); (st.Jobs.Running != 0 || st.Jobs.AbandonedWorkers != 0) && time.Now().Before(quiesce); {
		time.Sleep(50 * time.Millisecond)
		if st, err = client.Stats(context.Background()); err != nil {
			return fmt.Errorf("chaos: daemon unreachable after the soak (crashed?): %w", err)
		}
	}
	if err := client.Health(context.Background()); err != nil {
		return fmt.Errorf("chaos: daemon unhealthy after the soak: %w", err)
	}
	// Scrape at the same quiescent point as Stats: the clients have joined
	// and the daemon is still up, so the two snapshots must agree.
	metrics, err := scrapeMetrics(base)
	if err != nil {
		return fmt.Errorf("chaos: %w", err)
	}
	hs.Close()
	srv.Close()
	if pst != nil {
		if err := pst.Close(); err != nil {
			return fmt.Errorf("chaos: store close: %w", err)
		}
	}

	// Goroutine settle loop: abandoned bodies are joined by Close, so the
	// count must return to the pre-soak level.
	settle := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(settle) {
		time.Sleep(20 * time.Millisecond)
	}
	leaked := runtime.NumGoroutine() - before
	if leaked < 0 {
		leaked = 0
	}

	var injected int64
	for _, n := range st.Faults {
		injected += n
	}
	failures := ops.Total - ops.Done
	rep := chaosReport{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0),
		FaultSpec: spec, FaultSeed: seed,
		DurationMS: float64(wall) / float64(time.Millisecond),
		Workers:    conc,
		Ops:        ops,
		ErrorRate:  float64(failures) / float64(max64(ops.Total, 1)),
		// Bound: each job crosses several injection points, so the failure
		// rate is roughly the sum of the per-point rates; 0.5 leaves room
		// for unlucky seeds without masking a daemon that mostly fails.
		MaxErrorRate:     0.5,
		InjectedFaults:   injected,
		LeakedGoroutines: leaked,
		Stats:            *st,
		Metrics:          metrics,
		Notes: []string{
			"seeded chaos soak against an in-process dsctsd: keyed sync requests with client retries, while the fault registry injects panics, errors, delays, hangs, cancels and cache corruption",
			"asserts: daemon alive, zero unstructured failures, zero leaked goroutines, zero abandoned workers after drain, injections actually fired, error rate bounded",
			"the fire pattern is reproducible from fault_seed; rerun with the same spec and seed to replay the schedule",
		},
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("chaos soak report -> %s\n", path)
	fmt.Printf("  %d ops in %.1fs x%d clients: %d done (%d cached), %d injected errors, %d timeouts, %d panics, %d cancelled; %d faults fired; error rate %.3f\n",
		ops.Total, wall.Seconds(), conc, ops.Done, ops.CacheHits,
		ops.InjectedErrors, ops.Timeouts, ops.Panics, ops.Cancelled, injected, rep.ErrorRate)

	var violations []string
	if ops.Total == 0 {
		violations = append(violations, "no operations completed")
	}
	if ops.Unstructured != 0 {
		violations = append(violations, fmt.Sprintf("%d unstructured failures", ops.Unstructured))
	}
	if leaked != 0 {
		violations = append(violations, fmt.Sprintf("%d leaked goroutines", leaked))
	}
	if st.Jobs.Running != 0 || st.Jobs.AbandonedWorkers != 0 {
		violations = append(violations, fmt.Sprintf("worker budget not reclaimed: %d running, %d abandoned",
			st.Jobs.Running, st.Jobs.AbandonedWorkers))
	}
	if injected == 0 {
		violations = append(violations, "fault registry never fired (schedule or threading broken)")
	}
	if rep.ErrorRate > rep.MaxErrorRate {
		violations = append(violations, fmt.Sprintf("error rate %.3f exceeds %.2f", rep.ErrorRate, rep.MaxErrorRate))
	}
	if len(violations) > 0 {
		return fmt.Errorf("chaos contract violated: %s", strings.Join(violations, "; "))
	}
	return nil
}

// classify sorts one operation's outcome into its chaosOps bucket.
func classify(ops *chaosOps, info *serve.JobInfo, err error, count func(*int64)) {
	if err == nil {
		switch info.State {
		case serve.StateDone:
			count(&ops.Done)
			if info.CacheHit {
				count(&ops.CacheHits)
			}
		case serve.StateCancelled:
			count(&ops.Cancelled)
		case serve.StateFailed:
			if strings.Contains(info.Error, "injected fault") {
				count(&ops.InjectedErrors)
			} else if info.Error != "" {
				count(&ops.OtherFailures)
			} else {
				count(&ops.Unstructured)
			}
		default:
			count(&ops.Unstructured)
		}
		return
	}
	var apiErr interface{ HTTPStatus() int }
	if errors.As(err, &apiErr) {
		switch apiErr.HTTPStatus() {
		case http.StatusGatewayTimeout:
			count(&ops.Timeouts)
		case http.StatusInternalServerError:
			count(&ops.Panics)
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			count(&ops.Rejected)
		default:
			count(&ops.OtherFailures)
		}
		return
	}
	count(&ops.Unstructured)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
