package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// The bench-regression comparator: `benchgen -compare baseline.json
// new.json -max-regress 15%` walks both reports, pairs their gated
// indicators by path, and exits nonzero when any regresses past the
// threshold. Gated indicators are chosen to be meaningful across machines:
//
//   - ratio metrics (higher is better): speedup, projected_speedup,
//     scale_out, speedup_mono_over_part, jobs_per_sec — dimensionless
//     ratios of durations measured in the SAME run, so they transfer
//     between hosts far better than raw milliseconds;
//   - quality metrics (lower is better): *_ps latencies/skews and
//     *_rel_err — deterministic functions of (code, seed), so any drift is
//     a real change.
//
// Raw *_ms / *_ns wall-clock leaves are deliberately NOT gated: comparing
// absolute times recorded on different hardware only produces noise.

// comparePolicy classifies a leaf key.
func comparePolicy(key string) (higherBetter, gated bool) {
	switch {
	case key == "speedup" || key == "scale_out" ||
		strings.HasSuffix(key, "_speedup") || strings.HasSuffix(key, "speedup_mono_over_part") ||
		strings.HasSuffix(key, "jobs_per_sec"):
		return true, true
	case strings.HasSuffix(key, "_ps") || strings.HasSuffix(key, "_rel_err"):
		return false, true
	}
	return false, false
}

// identity labels an array element by its identifying fields so rows pair
// up even when rows were inserted or reordered between the two reports.
func identity(v any, index int) string {
	obj, ok := v.(map[string]any)
	if !ok {
		return strconv.Itoa(index)
	}
	var parts []string
	for _, k := range []string{"design", "mode", "name", "id", "sinks", "delta_pct", "corners", "stage"} {
		if f, ok := obj[k]; ok {
			parts = append(parts, fmt.Sprintf("%s=%v", k, f))
		}
	}
	if len(parts) == 0 {
		return strconv.Itoa(index)
	}
	return strings.Join(parts, ",")
}

// flattenGated collects every gated numeric leaf, keyed by its path.
func flattenGated(v any, path string, out map[string]float64) {
	switch t := v.(type) {
	case map[string]any:
		for k, c := range t {
			p := k
			if path != "" {
				p = path + "." + k
			}
			if f, ok := c.(float64); ok {
				if _, gated := comparePolicy(k); gated {
					out[p] = f
				}
				continue
			}
			flattenGated(c, p, out)
		}
	case []any:
		for i, c := range t {
			flattenGated(c, fmt.Sprintf("%s[%s]", path, identity(c, i)), out)
		}
	}
}

type regression struct {
	path     string
	old, new float64
	change   float64 // signed relative change, regression-positive
}

// compareReports pairs the gated indicators of two parsed reports and
// returns the regressions beyond maxRegress (a fraction, e.g. 0.15).
// Indicators present in only one report are skipped: rows come and go as
// benchmarks evolve, and the gate must not punish adding coverage.
func compareReports(base, cur any, maxRegress float64) (regs []regression, checked int) {
	bv, cv := map[string]float64{}, map[string]float64{}
	flattenGated(base, "", bv)
	flattenGated(cur, "", cv)
	paths := make([]string, 0, len(bv))
	for p := range bv {
		if _, ok := cv[p]; ok {
			paths = append(paths, p)
		}
	}
	sort.Strings(paths)
	for _, p := range paths {
		old, now := bv[p], cv[p]
		key := p
		if i := strings.LastIndex(p, "."); i >= 0 {
			key = p[i+1:]
		}
		higher, _ := comparePolicy(key)
		// Both sides negligible: nothing to gate (dormant indicators).
		if abs(old) < 1e-9 && abs(now) < 1e-9 {
			continue
		}
		checked++
		den := abs(old)
		if den < 1e-9 {
			den = 1e-9
		}
		var change float64
		if higher {
			change = (old - now) / den // dropped speedup regresses
		} else {
			change = (now - old) / den // grown skew/latency/error regresses
		}
		if change > maxRegress {
			regs = append(regs, regression{path: p, old: old, new: now, change: change})
		}
	}
	return regs, checked
}

// parseMaxRegress accepts "15%" or "0.15".
func parseMaxRegress(s string) (float64, error) {
	s = strings.TrimSpace(s)
	pct := strings.HasSuffix(s, "%")
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("benchgen: bad -max-regress %q", s)
	}
	if pct {
		v /= 100
	}
	return v, nil
}

func loadJSON(path string) (any, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var v any
	if err := json.Unmarshal(data, &v); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return v, nil
}

// runCompare implements the CLI entry. Returns an error for usage/IO
// problems; regressions print a table and exit(1) directly.
func runCompare(basePath, newPath string, maxRegress float64) error {
	base, err := loadJSON(basePath)
	if err != nil {
		return err
	}
	cur, err := loadJSON(newPath)
	if err != nil {
		return err
	}
	regs, checked := compareReports(base, cur, maxRegress)
	if checked == 0 {
		return fmt.Errorf("benchgen: no comparable indicators between %s and %s", basePath, newPath)
	}
	fmt.Printf("compared %d indicators (%s vs %s), max regress %.1f%%\n",
		checked, basePath, newPath, 100*maxRegress)
	if len(regs) == 0 {
		fmt.Println("no regressions")
		return nil
	}
	for _, r := range regs {
		fmt.Printf("REGRESSION %-70s %12.4g -> %-12.4g (%+.1f%%)\n", r.path, r.old, r.new, 100*r.change)
	}
	os.Exit(1)
	return nil
}
