// Command benchgen emits the synthetic Table II benchmark placements as
// placed DEF files (one per design) plus the embedded LEF, so external
// tools — or the dscts CLI via -def — can consume them.
//
//	benchgen -out ./benchmarks [-seed 1] [-design C3]
//
// With -bench it instead measures the parallel synthesis engine stage by
// stage (grid vs brute-force clustering, single- vs multi-worker DP
// insertion, end-to-end synthesis) and writes a machine-readable
// BENCH_parallel.json with ns/op and allocs/op per stage:
//
//	benchgen -bench [-bench-out BENCH_parallel.json]
//
// With -load it replays concurrent synthesis jobs against an in-process
// dsctsd service and writes throughput/latency percentiles to a
// machine-readable BENCH_serve.json:
//
//	benchgen -load [-load-jobs 40] [-load-conc 8] [-load-distinct 20] [-load-out BENCH_serve.json]
//
// With -load -chaos it instead soaks the in-process service under a seeded
// fault-injection schedule (internal/fault) for -duration, asserting the
// hardening contract — daemon alive, every failure structured, zero leaked
// goroutines or workers, bounded error rate — and writes BENCH_chaos.json:
//
//	benchgen -load -chaos default [-chaos-seed 1] [-duration 30s]
//
// With -load -cluster N it boots an in-process N-node dsctsd cluster over
// loopback (consistent-hash routing with forward-on-miss, remote region
// dispatch, work stealing) and writes per-node throughput, forward/steal
// counters, an XL remote-dispatch section and a kill-one-node recovery
// section to BENCH_cluster.json; combined with -chaos it instead soaks the
// cluster with the fault schedule armed on one node only:
//
//	benchgen -load -cluster 3 [-load-jobs 180] [-load-conc 8]
//	benchgen -load -cluster 3 -chaos default -duration 5m
//
// With -persist it replays a request pool against an in-process dsctsd
// backed by a disk cache tier, restarts the daemon over the same directory,
// and writes the warm-vs-cold comparison to BENCH_persist.json — failing if
// the restarted daemon recomputes anything the first process already solved:
//
//	benchgen -persist [-persist-jobs 9] [-persist-out BENCH_persist.json]
//
// With -corners-out it measures the multi-corner sign-off evaluator (one
// synthesized tree swept across K interpolated PVT corners, at one worker
// and at GOMAXPROCS) and writes the corner-scaling report:
//
//	benchgen -corners-out BENCH_corners.json
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"dscts/internal/bench"
	"dscts/internal/lef"
)

func main() {
	var (
		out        = flag.String("out", "benchmarks", "output directory")
		seed       = flag.Int64("seed", 1, "placement seed")
		design     = flag.String("design", "", "single design to emit (default: all)")
		doBench    = flag.Bool("bench", false, "measure the parallel engine and write a JSON report instead of emitting DEFs")
		benchOut   = flag.String("bench-out", "BENCH_parallel.json", "report path for -bench")
		doLoad     = flag.Bool("load", false, "replay concurrent jobs against an in-process dsctsd and write a JSON report")
		loadOut    = flag.String("load-out", "BENCH_serve.json", "report path for -load")
		clusterN   = flag.Int("cluster", 0, "with -load: boot an in-process N-node cluster (consistent-hash routing, region dispatch, stealing) instead of one daemon and write BENCH_cluster.json")
		doCorner   = flag.String("corners-out", "", "measure multi-corner sign-off scaling and write the JSON report to this path (e.g. BENCH_corners.json)")
		doScale    = flag.String("scale-out", "", "measure monolithic vs partition-parallel scaling over XL placements and write the JSON report to this path (e.g. BENCH_scale.json)")
		scaleSize  = flag.String("scale-sizes", "100000,250000,500000,1000000", "comma-separated sink counts for -scale-out")
		scaleWk    = flag.Int("scale-workers", 0, "worker budget for the multi-worker runs of -scale-out (0 = all CPUs)")
		scaleCap   = flag.Int("scale-mono-cap", 1000000, "largest size the monolithic flow is timed at in -scale-out (it grows superlinearly; 0 = no cap)")
		scalePart  = flag.Int("scale-partition", 50000, "region capacity (Partition.MaxSinks) for -scale-out")
		loadJobs   = flag.Int("load-jobs", 40, "total jobs to replay with -load")
		loadConc   = flag.Int("load-conc", 8, "concurrent clients (and running-job slots) for -load")
		loadDist   = flag.Int("load-distinct", 0, "distinct request shapes for -load (0 = jobs/2, so half the replay can hit the cache)")
		doPersist  = flag.Bool("persist", false, "measure the disk-backed cache tier across a daemon restart and write a JSON report")
		persistOut = flag.String("persist-out", "BENCH_persist.json", "report path for -persist")
		persistJob = flag.Int("persist-jobs", 9, "distinct requests replayed on each side of the restart for -persist")
		debugAddr  = flag.String("debug-addr", "", "with -load: separate net/http/pprof listener kept up for the whole run (empty = disabled; never expose publicly)")
		chaos      = flag.String("chaos", "", "with -load: fault-injection spec for the chaos soak (\"default\" = built-in schedule; see internal/fault)")
		chaosSeed  = flag.Int64("chaos-seed", 1, "fault-schedule seed for -chaos (same spec + seed replays the same schedule)")
		chaosDir   = flag.String("cache-dir", "", "persistent cache directory for the -chaos soak; soak twice over the same dir to test a restart mid-chaos")
		duration   = flag.Duration("duration", 30*time.Second, "chaos soak duration for -chaos")
		ecoOut     = flag.String("eco-out", "", "measure full-vs-incremental (ECO) re-synthesis and write the JSON report to this path (e.g. BENCH_eco.json)")
		ecoDes     = flag.String("eco-designs", "C1,C2,C3,C4,C5", "comma-separated designs for -eco-out")
		ecoXL      = flag.Int("eco-xl", 500000, "XL placement sink count for -eco-out (0 = skip the XL row)")
		ecoPart    = flag.Int("eco-partition", 2000, "region capacity for the partitioned C-series rows of -eco-out (0 = mono rows only)")
		ecoXLPart  = flag.Int("eco-xl-partition", 50000, "region capacity for the XL rows of -eco-out")
		ecoPcts    = flag.String("eco-pcts", "0.1,1,10", "comma-separated delta sizes (percent of sinks) for -eco-out")
		ecoWk      = flag.Int("eco-workers", 0, "worker budget for -eco-out (0 = all CPUs)")
		ecoReps    = flag.Int("eco-reps", 3, "measurement repetitions for -eco-out (fastest run is reported)")
	)
	// `benchgen -compare baseline.json new.json [-max-regress 15%]` is the
	// bench-regression gate; it is parsed by hand because the two report
	// paths are positional between flags, which the flag package rejects.
	if len(os.Args) > 1 && (os.Args[1] == "-compare" || os.Args[1] == "--compare") {
		if err := compareCLI(os.Args[2:]); err != nil {
			fatal(err)
		}
		return
	}
	flag.Parse()
	if *doBench {
		if err := runBench(*benchOut); err != nil {
			fatal(err)
		}
		return
	}
	if *doLoad {
		if *debugAddr != "" {
			go serveDebug(*debugAddr)
		}
		if *clusterN > 0 {
			// Cluster runs (plain or chaos) default to their own report
			// name; an explicit -load-out still wins.
			out := *loadOut
			if !flagWasSet("load-out") {
				out = "BENCH_cluster.json"
			}
			// -load-jobs is TOTAL jobs; unset means runCluster scales its
			// own default with the node count.
			jobs := 0
			if flagWasSet("load-jobs") {
				jobs = *loadJobs
			}
			if err := runCluster(out, *clusterN, jobs, *loadConc, *loadDist, *chaos, *chaosSeed, *duration); err != nil {
				fatal(err)
			}
			return
		}
		if *chaos != "" {
			// The chaos soak gets its own default report name so a plain
			// `-load` baseline and a chaos run never clobber each other;
			// an explicit -load-out still wins.
			out := *loadOut
			if !flagWasSet("load-out") {
				out = "BENCH_chaos.json"
			}
			if err := runChaos(out, *chaos, *chaosSeed, *duration, *loadConc, *chaosDir); err != nil {
				fatal(err)
			}
			return
		}
		if err := runLoad(*loadOut, *loadJobs, *loadConc, *loadDist); err != nil {
			fatal(err)
		}
		return
	}
	if *doPersist {
		if err := runPersist(*persistOut, *persistJob, *loadConc); err != nil {
			fatal(err)
		}
		return
	}
	if *doCorner != "" {
		if err := runCorners(*doCorner); err != nil {
			fatal(err)
		}
		return
	}
	if *doScale != "" {
		sizes, err := parseSizes(*scaleSize)
		if err != nil {
			fatal(err)
		}
		if err := runScale(*doScale, sizes, *scaleWk, *scaleCap, *scalePart, *seed); err != nil {
			fatal(err)
		}
		return
	}
	if *ecoOut != "" {
		pcts, err := parsePcts(*ecoPcts)
		if err != nil {
			fatal(err)
		}
		designs := splitCSV(*ecoDes)
		if err := runECOBench(*ecoOut, designs, *ecoXL, *ecoPart, *ecoXLPart, *ecoWk, *ecoReps, pcts, *seed); err != nil {
			fatal(err)
		}
		return
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	designs := bench.Suite()
	if *design != "" {
		d, err := bench.ByID(*design)
		if err != nil {
			fatal(err)
		}
		designs = []bench.Design{d}
	}
	for _, d := range designs {
		p, err := bench.Generate(d, *seed)
		if err != nil {
			fatal(err)
		}
		path := filepath.Join(*out, fmt.Sprintf("%s_%s.def", d.ID, d.Name))
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := p.ToDEF().Write(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %d FFs, die %.0fx%.0f um -> %s\n",
			d.ID, len(p.Sinks), p.Die.W(), p.Die.H(), path)
	}
	lefPath := filepath.Join(*out, "asap7_min.lef")
	if err := os.WriteFile(lefPath, []byte(lef.Embedded), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("library -> %s\n", lefPath)
}

// flagWasSet reports whether a flag was given explicitly on the command line.
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// parseSizes parses the comma-separated -scale-sizes list.
func parseSizes(csv string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(csv, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("benchgen: bad -scale-sizes entry %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchgen: -scale-sizes is empty")
	}
	return out, nil
}

// splitCSV splits a comma-separated list, dropping empty entries.
func splitCSV(csv string) []string {
	var out []string
	for _, part := range strings.Split(csv, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// parsePcts parses the -eco-pcts list.
func parsePcts(csv string) ([]float64, error) {
	var out []float64
	for _, part := range splitCSV(csv) {
		v, err := strconv.ParseFloat(part, 64)
		if err != nil || v <= 0 || v > 100 {
			return nil, fmt.Errorf("benchgen: bad -eco-pcts entry %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchgen: -eco-pcts is empty")
	}
	return out, nil
}

// compareCLI parses `-compare base.json new.json [-max-regress P]`.
func compareCLI(args []string) error {
	var paths []string
	maxRegress := 0.15
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-max-regress", "--max-regress":
			if i+1 >= len(args) {
				return fmt.Errorf("benchgen: -max-regress needs a value")
			}
			i++
			v, err := parseMaxRegress(args[i])
			if err != nil {
				return err
			}
			maxRegress = v
		default:
			paths = append(paths, args[i])
		}
	}
	if len(paths) != 2 {
		return fmt.Errorf("benchgen: usage: benchgen -compare baseline.json new.json [-max-regress 15%%]")
	}
	return runCompare(paths[0], paths[1], maxRegress)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgen:", err)
	os.Exit(1)
}
