package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dscts/internal/clusterd"
	"dscts/internal/fault"
	"dscts/internal/obs"
	"dscts/internal/serve"
)

// clusterNodeReport is one node's share of the routed-load phase.
type clusterNodeReport struct {
	NodeID string `json:"node_id"`
	// Jobs is the number of phase-A operations issued THROUGH this node
	// (the node the client connected to; the ring may have forwarded the
	// work elsewhere).
	Jobs       int64   `json:"jobs"`
	Throughput float64 `json:"throughput_jobs_per_sec"`
	// Stats is the node's full /stats snapshot at the end of the run
	// (cluster section included), taken before any node is killed.
	Stats serve.Stats `json:"server_stats"`
}

// clusterXLReport is the remote-region-dispatch phase: one partitioned XL
// job on a node with no local region executors, so every region must run
// on a peer.
type clusterXLReport struct {
	Sinks             int     `json:"sinks"`
	PartitionMaxSinks int     `json:"partition_max_sinks"`
	DurationMS        float64 `json:"duration_ms"`
	RegionsDispatched int64   `json:"regions_dispatched"`
	RegionsStolen     int64   `json:"regions_stolen"`
	RegionsServed     int64   `json:"regions_served_by_peers"`
}

// clusterKillReport is the kill-one-node recovery phase.
type clusterKillReport struct {
	KilledNode string `json:"killed_node"`
	Jobs       int64  `json:"jobs"`
	// Resubmitted counts operations that hit the killed node's vanishing
	// listener and were replayed against a survivor.
	Resubmitted int64 `json:"resubmitted"`
	// Lost is operations that never completed; the contract is ZERO.
	Lost int64 `json:"lost"`
	// UnstructuredErrors counts survivor-side failures that were not
	// structured API errors; the contract is ZERO.
	UnstructuredErrors int64 `json:"unstructured_errors"`
}

// clusterChaosReport is the cluster chaos section (benchgen -load -cluster
// N -chaos ...): one faulty peer among healthy ones.
type clusterChaosReport struct {
	FaultSpec string   `json:"fault_spec"`
	FaultSeed int64    `json:"fault_seed"`
	FaultNode string   `json:"fault_node"`
	Ops       chaosOps `json:"ops"`
	ErrorRate float64  `json:"error_rate"`
	// MaxErrorRate bounds the cluster-wide error rate: only one of N
	// nodes is faulty, so the bound is the single-node chaos bound scaled
	// by the faulty node's traffic share, with slack.
	MaxErrorRate float64 `json:"max_error_rate"`
}

// clusterReport is the machine-readable BENCH_cluster.json.
type clusterReport struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	Nodes       int `json:"nodes"`
	Jobs        int `json:"jobs"`
	Distinct    int `json:"distinct_requests"`
	Concurrency int `json:"client_concurrency"`

	WallMS              float64      `json:"wall_ms"`
	AggregateThroughput float64      `json:"aggregate_throughput_jobs_per_sec"`
	Latency             latencyStats `json:"latency"`

	// Forwarded/ForwardedIn are summed over the per-node cluster stats and
	// must match: every forward sent was received exactly once.
	Forwarded       int64 `json:"forwarded"`
	ForwardedIn     int64 `json:"forwarded_in"`
	ForwardFallback int64 `json:"forward_fallback_local"`

	PerNode []clusterNodeReport `json:"per_node"`
	XL      *clusterXLReport    `json:"xl_dispatch,omitempty"`
	Kill    *clusterKillReport  `json:"kill_one_node,omitempty"`
	Chaos   *clusterChaosReport `json:"chaos,omitempty"`

	// LeakedGoroutines is the post-shutdown goroutine delta across the
	// whole cluster (must be 0).
	LeakedGoroutines int      `json:"leaked_goroutines"`
	Notes            []string `json:"notes"`
}

// clusterBenchNode is one in-process daemon of the benchmark cluster.
type clusterBenchNode struct {
	id     string
	base   string
	srv    *serve.Server
	hs     *http.Server
	killed bool
}

func (n *clusterBenchNode) kill() {
	if n.killed {
		return
	}
	n.killed = true
	n.hs.Close()
	n.srv.Close()
}

// runCluster boots an in-process N-node cluster (real loopback listeners,
// consistent-hash routing, region dispatch, stealing) and measures three
// phases: (A) routed load — conc clients spread over all nodes replaying
// a shared distinct-request pool; (B) one partitioned XL job on a node
// with zero local region executors, forcing remote dispatch/steal; (C)
// kill-one-node — traffic continues across the survivors while a node
// dies, and every operation must still complete. With a chaos spec, phase
// A instead soaks for -duration with the fault schedule armed on the LAST
// node only, and phases B/C are skipped — the report then carries the
// cluster chaos section for the nightly gate.
func runCluster(path string, nodeCount, jobs, conc, distinct int, chaosSpec string, chaosSeed int64, duration time.Duration) error {
	if nodeCount < 2 {
		return fmt.Errorf("cluster: need at least 2 nodes, got %d", nodeCount)
	}
	if conc <= 0 {
		conc = 8
	}
	if jobs <= 0 {
		jobs = 60 * nodeCount
	}
	if distinct <= 0 || distinct > jobs {
		distinct = 20
	}
	chaosMode := chaosSpec != ""
	if chaosMode && chaosSpec == "default" {
		chaosSpec = defaultChaosSpec
	}
	before := runtime.NumGoroutine()

	// Listeners first, so the full peer URL set exists before any node
	// boots.
	lns := make([]net.Listener, nodeCount)
	peers := make([]clusterd.Peer, nodeCount)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		lns[i] = ln
		peers[i] = clusterd.Peer{ID: fmt.Sprintf("n%d", i+1), URL: "http://" + ln.Addr().String()}
	}
	nodes := make([]*clusterBenchNode, nodeCount)
	for i := range nodes {
		cfg := serve.Config{
			MaxRunning: conc,
			MaxQueued:  jobs + conc,
			Metrics:    obs.NewRegistry(),
			Cluster: &serve.ClusterConfig{
				NodeID: peers[i].ID, Peers: peers, Secret: "bench-secret",
				ProbeInterval: 250 * time.Millisecond,
				Cooldown:      time.Second,
				StealInterval: 20 * time.Millisecond,
			},
		}
		if i == 0 && !chaosMode {
			// Phase B runs its XL job here: with no local executors every
			// region must execute on a peer (dispatch or steal).
			cfg.Cluster.LocalExecutors = -1
		}
		if chaosMode && i == nodeCount-1 {
			reg, err := fault.Parse(chaosSpec, chaosSeed)
			if err != nil {
				return err
			}
			cfg.Faults = reg
			cfg.JobTimeout = 5 * time.Second
			cfg.WatchdogGrace = 300 * time.Millisecond
		}
		srv := serve.NewServer(cfg)
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(lns[i])
		nodes[i] = &clusterBenchNode{id: peers[i].ID, base: peers[i].URL, srv: srv, hs: hs}
	}
	defer func() {
		for _, n := range nodes {
			n.kill()
		}
	}()

	// The shared request pool: same shape as the single-node BENCH_serve
	// baseline, so the aggregate-throughput ratio compares like with like
	// per request, at the cluster's steady-state hit ratio.
	designs := []string{"C1", "C2", "C3", "C4", "C5"}
	pool := make([]*serve.Request, distinct)
	for i := range pool {
		pool[i] = &serve.Request{
			Design: designs[i%len(designs)],
			Seed:   int64(1 + i/len(designs)),
			Options: serve.OptionsSpec{
				FanoutThreshold: []int{0, 150, 600}[i%3],
			},
		}
	}

	rep := clusterReport{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0),
		Nodes: nodeCount, Jobs: jobs, Distinct: distinct, Concurrency: conc,
	}
	perNodeJobs := make([]atomic.Int64, nodeCount)

	// ----- Phase A: routed load (or chaos soak). -----
	var samples []float64
	var sampleMu sync.Mutex
	start := time.Now()
	if chaosMode {
		var ops chaosOps
		count := func(p *int64) { atomic.AddInt64(p, 1) }
		deadline := time.Now().Add(duration)
		var wg sync.WaitGroup
		for w := 0; w < conc; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				home := w % nodeCount
				client := &serve.Client{Base: nodes[home].base, RetryBackoff: 5 * time.Millisecond}
				for n := 0; time.Now().Before(deadline); n++ {
					req := *pool[(w+n)%len(pool)]
					req.TimeoutMS = 2000
					req.IdempotencyKey = fmt.Sprintf("cluster-chaos-%d-%d", w, n)
					info, err := client.Synthesize(context.Background(), &req)
					perNodeJobs[home].Add(1)
					count(&ops.Total)
					classify(&ops, info, err, count)
				}
			}(w)
		}
		wg.Wait()
		failures := ops.Total - ops.Done
		rep.Chaos = &clusterChaosReport{
			FaultSpec: chaosSpec, FaultSeed: chaosSeed,
			FaultNode: nodes[nodeCount-1].id,
			Ops:       ops,
			ErrorRate: float64(failures) / float64(max64(ops.Total, 1)),
			// One faulty node of N sees ~1/N of the traffic directly plus
			// the forwards it owns; scale the single-node 0.5 bound by that
			// share with slack. Routed hits answered by healthy nodes keep
			// the cluster-wide rate well below the single-node rate.
			MaxErrorRate: 0.5,
		}
		rep.Jobs = int(ops.Total)
	} else {
		errs := make([]error, jobs)
		var next int64
		var wg sync.WaitGroup
		for w := 0; w < conc; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				home := w % nodeCount
				client := serve.NewClient(nodes[home].base)
				for {
					i := int(atomic.AddInt64(&next, 1)) - 1
					if i >= jobs {
						return
					}
					t0 := time.Now()
					info, err := client.Synthesize(context.Background(), pool[i%distinct])
					if err == nil && info.State != serve.StateDone {
						err = fmt.Errorf("job %s ended %s (%s)", info.ID, info.State, info.Error)
					}
					if err != nil {
						errs[i] = err
						continue
					}
					perNodeJobs[home].Add(1)
					sampleMu.Lock()
					samples = append(samples, float64(time.Since(t0))/float64(time.Millisecond))
					sampleMu.Unlock()
				}
			}(w)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				return fmt.Errorf("cluster load job %d: %w", i, err)
			}
		}
	}
	wall := time.Since(start)
	rep.WallMS = float64(wall) / float64(time.Millisecond)
	rep.AggregateThroughput = float64(rep.Jobs) / wall.Seconds()
	rep.Latency = percentiles(samples)

	// ----- Phase B: remote region dispatch (skipped under chaos). -----
	if !chaosMode {
		xlSinks, xlPart := 100000, 10000
		t0 := time.Now()
		client := serve.NewClient(nodes[0].base)
		// Async submission pins the job to n1 (sync requests would be
		// forwarded to the key's ring owner); n1 has no local executors, so
		// the regions land on peers.
		info, err := client.SubmitAsync(context.Background(), serve.KindSynthesize, &serve.Request{
			XLSinks: xlSinks,
			Seed:    1,
			Options: serve.OptionsSpec{PartitionMaxSinks: xlPart},
		})
		if err != nil {
			return fmt.Errorf("cluster xl submit: %w", err)
		}
		for {
			time.Sleep(100 * time.Millisecond)
			if info, err = client.Job(context.Background(), info.ID); err != nil {
				return fmt.Errorf("cluster xl poll: %w", err)
			}
			if info.State == serve.StateDone || info.State == serve.StateFailed || info.State == serve.StateCancelled {
				break
			}
		}
		if info.State != serve.StateDone {
			return fmt.Errorf("cluster xl job ended %s (%s)", info.State, info.Error)
		}
		st0, err := client.Stats(context.Background())
		if err != nil {
			return err
		}
		xl := &clusterXLReport{
			Sinks: xlSinks, PartitionMaxSinks: xlPart,
			DurationMS: float64(time.Since(t0)) / float64(time.Millisecond),
		}
		if cs := st0.Cluster; cs != nil {
			xl.RegionsDispatched = cs.RegionsDispatched
			xl.RegionsStolen = cs.StealsGiven
		}
		for _, n := range nodes[1:] {
			st, err := serve.NewClient(n.base).Stats(context.Background())
			if err != nil {
				return err
			}
			if st.Cluster != nil {
				xl.RegionsServed += st.Cluster.RegionsServed
			}
		}
		rep.XL = xl
		if xl.RegionsDispatched+xl.RegionsStolen == 0 {
			return fmt.Errorf("cluster xl: no region was dispatched or stolen (remote execution never engaged)")
		}
	}

	// Snapshot per-node stats before anything is killed.
	for i, n := range nodes {
		st, err := serve.NewClient(n.base).Stats(context.Background())
		if err != nil {
			return fmt.Errorf("stats from %s: %w", n.id, err)
		}
		nr := clusterNodeReport{
			NodeID: n.id, Jobs: perNodeJobs[i].Load(),
			Throughput: float64(perNodeJobs[i].Load()) / wall.Seconds(),
			Stats:      *st,
		}
		rep.PerNode = append(rep.PerNode, nr)
		if cs := st.Cluster; cs != nil {
			rep.Forwarded += cs.Forwarded
			rep.ForwardedIn += cs.ForwardedIn
			rep.ForwardFallback += cs.ForwardFallback
		}
	}
	// Every successfully-relayed forward was received exactly once. Under
	// chaos a forward can be delivered and then fail at the origin (hang →
	// timeout → 5xx → local fallback), so receipts may exceed successful
	// sends; without faults the two must match exactly.
	if rep.ForwardedIn < rep.Forwarded || (!chaosMode && rep.Forwarded != rep.ForwardedIn) {
		return fmt.Errorf("cluster accounting: %d forwards sent vs %d received", rep.Forwarded, rep.ForwardedIn)
	}

	// ----- Phase C: kill one node under traffic (skipped under chaos). -----
	if !chaosMode {
		killIdx := nodeCount - 1
		kill := &clusterKillReport{KilledNode: nodes[killIdx].id}
		killJobs := 10 * nodeCount
		var resubmitted, lost, unstructured atomic.Int64
		var killOnce sync.Once
		var wg sync.WaitGroup
		var done atomic.Int64
		for w := 0; w < conc; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for n := w; n < killJobs; n += conc {
					// Halfway through, one client kills the node abruptly
					// while the rest keep submitting.
					if n >= killJobs/2 {
						killOnce.Do(func() { nodes[killIdx].kill() })
					}
					req := *pool[n%distinct]
					req.Seed += 1000 // fresh keys: these must execute, not hit caches
					target := nodes[n%nodeCount]
					info, err := serve.NewClient(target.base).Synthesize(context.Background(), &req)
					if err != nil {
						var ue *url.Error
						if errors.As(err, &ue) {
							// The killed node's listener: replay on a survivor.
							resubmitted.Add(1)
							surv := nodes[(n+1)%nodeCount]
							if surv.killed {
								surv = nodes[(n+2)%nodeCount]
							}
							info, err = serve.NewClient(surv.base).Synthesize(context.Background(), &req)
						}
					}
					switch {
					case err != nil:
						var apiErr interface{ HTTPStatus() int }
						if !errors.As(err, &apiErr) {
							unstructured.Add(1)
						}
						lost.Add(1)
					case info.State != serve.StateDone:
						lost.Add(1)
					default:
						done.Add(1)
					}
				}
			}(w)
		}
		wg.Wait()
		kill.Jobs = int64(killJobs)
		kill.Resubmitted = resubmitted.Load()
		kill.Lost = lost.Load()
		kill.UnstructuredErrors = unstructured.Load()
		rep.Kill = kill
	}

	// Shut the whole cluster down and check nothing leaked.
	for _, n := range nodes {
		n.kill()
	}
	settle := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(settle) {
		time.Sleep(20 * time.Millisecond)
	}
	if leaked := runtime.NumGoroutine() - before; leaked > 0 {
		rep.LeakedGoroutines = leaked
	}

	rep.Notes = []string{
		"in-process N-node dsctsd cluster over loopback: consistent-hash request routing with forward-on-miss, remote region dispatch (POST /internal/region), work stealing, and /readyz-fed circuit breakers",
		"phase A replays the BENCH_serve request pool through all nodes; repeated invocations route to each key's single ring owner, so the aggregate throughput reflects the cluster-wide shared cache at steady state (the single-node baseline re-misses the same keys per node)",
		"phase B pins remote execution: the submitting node runs zero regions itself, yet the stitched result is bit-identical to a local run (serve cluster test suite)",
		"phase C kills one node mid-traffic: clients replay refused connections against survivors, and forwards to the dead node fall back to local execution — zero lost jobs is the contract",
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("cluster report -> %s\n", path)
	fmt.Printf("  %d nodes, %d jobs x%d clients: %.1f jobs/s aggregate, %d forwarded, %d fallback\n",
		nodeCount, rep.Jobs, conc, rep.AggregateThroughput, rep.Forwarded, rep.ForwardFallback)
	if rep.XL != nil {
		fmt.Printf("  xl dispatch: %d regions dispatched, %d stolen, %d served by peers\n",
			rep.XL.RegionsDispatched, rep.XL.RegionsStolen, rep.XL.RegionsServed)
	}
	if rep.Kill != nil {
		fmt.Printf("  kill %s: %d jobs, %d resubmitted, %d lost, %d unstructured\n",
			rep.Kill.KilledNode, rep.Kill.Jobs, rep.Kill.Resubmitted, rep.Kill.Lost, rep.Kill.UnstructuredErrors)
	}
	if rep.Chaos != nil {
		fmt.Printf("  chaos on %s: %d ops, error rate %.3f <= %.2f\n",
			rep.Chaos.FaultNode, rep.Chaos.Ops.Total, rep.Chaos.ErrorRate, rep.Chaos.MaxErrorRate)
	}

	var violations []string
	if rep.Kill != nil && (rep.Kill.Lost != 0 || rep.Kill.UnstructuredErrors != 0) {
		violations = append(violations, fmt.Sprintf("kill-one-node lost %d jobs (%d unstructured)",
			rep.Kill.Lost, rep.Kill.UnstructuredErrors))
	}
	if rep.Chaos != nil {
		if rep.Chaos.Ops.Total == 0 {
			violations = append(violations, "chaos soak issued no operations")
		}
		if rep.Chaos.Ops.Unstructured != 0 {
			violations = append(violations, fmt.Sprintf("%d unstructured failures under chaos", rep.Chaos.Ops.Unstructured))
		}
		if rep.Chaos.ErrorRate > rep.Chaos.MaxErrorRate {
			violations = append(violations, fmt.Sprintf("cluster error rate %.3f exceeds %.2f", rep.Chaos.ErrorRate, rep.Chaos.MaxErrorRate))
		}
	}
	if rep.LeakedGoroutines != 0 {
		violations = append(violations, fmt.Sprintf("%d goroutines leaked past cluster shutdown", rep.LeakedGoroutines))
	}
	if len(violations) > 0 {
		return fmt.Errorf("cluster contract violated: %s", joinViolations(violations))
	}
	return nil
}

func joinViolations(v []string) string {
	out := ""
	for i, s := range v {
		if i > 0 {
			out += "; "
		}
		out += s
	}
	return out
}
