package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"dscts/internal/bench"
	"dscts/internal/core"
	"dscts/internal/partition"
	"dscts/internal/tech"
)

// scaleReport is the BENCH_scale.json payload: the sink-count scaling curve
// of the monolithic flow versus the partition-parallel pipeline (at one
// worker and at the full budget), over seeded GenerateXL placements.
type scaleReport struct {
	GOMAXPROCS        int          `json:"gomaxprocs"`
	Workers           int          `json:"workers"`
	PartitionMaxSinks int          `json:"partition_max_sinks"`
	Seed              int64        `json:"seed"`
	Sizes             []scalePoint `json:"sizes"`
	// LargestCommon is the speedup summary at the largest size both paths
	// ran: monolithic wall time over partitioned wall time at the full
	// worker budget.
	LargestCommon *scaleSummary `json:"largest_common,omitempty"`
}

type scalePoint struct {
	Sinks   int     `json:"sinks"`
	Regions int     `json:"regions"`
	GenMS   float64 `json:"gen_ms"`
	// MonoMS is 0 when the monolithic flow was skipped at this size
	// (beyond -scale-mono-cap).
	MonoMS   float64 `json:"mono_ms,omitempty"`
	Part1WMS float64 `json:"part_1w_ms"`
	PartNWMS float64 `json:"part_nw_ms"`
	// SpeedupMono is MonoMS / PartNWMS (0 when monolithic was skipped).
	SpeedupMono float64 `json:"speedup_mono_over_part,omitempty"`
	// ScaleOut is Part1WMS / PartNWMS — the pipeline's own worker scaling
	// as measured on THIS host. On a single-core host it stays ~1: region
	// fan-out cannot beat the core count.
	ScaleOut float64 `json:"scale_out"`
	// PartCriticalPathMS projects the partitioned wall time on a host with
	// `workers` real cores from measured single-worker data: the partition
	// split, an LPT packing of the measured per-region times onto `workers`
	// lanes, and the serial stitch + evaluation tail. No modeling beyond
	// scheduling: every addend is a measured duration.
	PartCriticalPathMS float64 `json:"part_critical_path_ms"`
	// ProjectedSpeedup is MonoMS / PartCriticalPathMS — the speedup a
	// `workers`-core host gets over the monolithic flow (0 when monolithic
	// was skipped).
	ProjectedSpeedup float64 `json:"projected_speedup,omitempty"`

	LatencyMonoPS float64 `json:"latency_mono_ps,omitempty"`
	SkewMonoPS    float64 `json:"skew_mono_ps,omitempty"`
	LatencyPartPS float64 `json:"latency_part_ps"`
	SkewPartPS    float64 `json:"skew_part_ps"`
	// Validated records that the stitched tree passed ctree.Validate (the
	// partitioned flow validates internally; a failed validation fails the
	// whole run).
	Validated bool `json:"validated"`
}

type scaleSummary struct {
	Sinks   int     `json:"sinks"`
	Speedup float64 `json:"speedup"`
	// ProjectedSpeedup is the `workers`-core critical-path speedup at the
	// same size (see scalePoint.PartCriticalPathMS).
	ProjectedSpeedup float64 `json:"projected_speedup"`
}

// lptMakespan packs the measured per-region durations onto `lanes` workers
// longest-first (the classic LPT heuristic — the same order-independent
// schedule the pipeline's fan-out approximates) and returns the makespan.
func lptMakespan(durations []time.Duration, lanes int) time.Duration {
	if lanes < 1 {
		lanes = 1
	}
	sorted := append([]time.Duration(nil), durations...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] > sorted[b] })
	load := make([]time.Duration, lanes)
	for _, d := range sorted {
		min := 0
		for i := 1; i < lanes; i++ {
			if load[i] < load[min] {
				min = i
			}
		}
		load[min] += d
	}
	max := load[0]
	for _, l := range load[1:] {
		if l > max {
			max = l
		}
	}
	return max
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// runScale generates BENCH_scale.json.
func runScale(path string, sizes []int, workers, monoCap, partMax int, seed int64) error {
	tc := tech.ASAP7()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rep := scaleReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0), Workers: workers,
		PartitionMaxSinks: partMax, Seed: seed,
	}
	for _, n := range sizes {
		fmt.Fprintf(os.Stderr, "scale: %d sinks: generating...\n", n)
		t0 := time.Now()
		p, err := bench.GenerateXL(n, seed)
		if err != nil {
			return err
		}
		pt := scalePoint{Sinks: n, GenMS: ms(time.Since(t0))}

		popt := core.Options{
			Workers:   1,
			Partition: partition.Options{MaxSinks: partMax, Macros: p.Macros},
		}
		fmt.Fprintf(os.Stderr, "scale: %d sinks: partitioned @1 worker...\n", n)
		t1 := time.Now()
		out, err := core.Synthesize(p.Root, p.Sinks, tc, popt)
		if err != nil {
			return fmt.Errorf("partitioned %d sinks: %w", n, err)
		}
		pt.Part1WMS = ms(time.Since(t1))
		pt.Regions = len(out.Regions)
		pt.LatencyPartPS, pt.SkewPartPS = out.Metrics.Latency, out.Metrics.Skew
		if err := out.Tree.Validate(); err != nil {
			return fmt.Errorf("partitioned %d sinks: stitched tree invalid: %w", n, err)
		}
		pt.Validated = true
		// Critical-path projection onto `workers` cores from the measured
		// single-worker run: split + LPT(region times) + stitch + the
		// serial tail (evaluation/composition).
		regionTimes := make([]time.Duration, len(out.Regions))
		var regionSum time.Duration
		for i, r := range out.Regions {
			regionTimes[i] = r.Time
			regionSum += r.Time
		}
		split := out.PartitionTime - regionSum
		if split < 0 {
			split = 0
		}
		tail := out.TotalTime - out.PartitionTime - out.StitchTime
		if tail < 0 {
			tail = 0
		}
		pt.PartCriticalPathMS = ms(split + lptMakespan(regionTimes, workers) + out.StitchTime + tail)

		fmt.Fprintf(os.Stderr, "scale: %d sinks: partitioned @%d workers...\n", n, workers)
		popt.Workers = workers
		t2 := time.Now()
		if _, err := core.Synthesize(p.Root, p.Sinks, tc, popt); err != nil {
			return fmt.Errorf("partitioned %d sinks @%d workers: %w", n, workers, err)
		}
		pt.PartNWMS = ms(time.Since(t2))
		if pt.PartNWMS > 0 {
			pt.ScaleOut = pt.Part1WMS / pt.PartNWMS
		}

		if monoCap <= 0 || n <= monoCap {
			fmt.Fprintf(os.Stderr, "scale: %d sinks: monolithic @%d workers...\n", n, workers)
			t3 := time.Now()
			mono, err := core.Synthesize(p.Root, p.Sinks, tc, core.Options{Workers: workers})
			if err != nil {
				return fmt.Errorf("monolithic %d sinks: %w", n, err)
			}
			pt.MonoMS = ms(time.Since(t3))
			pt.LatencyMonoPS, pt.SkewMonoPS = mono.Metrics.Latency, mono.Metrics.Skew
			if pt.PartNWMS > 0 {
				pt.SpeedupMono = pt.MonoMS / pt.PartNWMS
			}
			if pt.PartCriticalPathMS > 0 {
				pt.ProjectedSpeedup = pt.MonoMS / pt.PartCriticalPathMS
			}
			if rep.LargestCommon == nil || n > rep.LargestCommon.Sinks {
				rep.LargestCommon = &scaleSummary{Sinks: n, Speedup: pt.SpeedupMono, ProjectedSpeedup: pt.ProjectedSpeedup}
			}
		}
		fmt.Fprintf(os.Stderr, "scale: %d sinks: mono %.0fms, part %.0fms (1w %.0fms), %d regions\n",
			n, pt.MonoMS, pt.PartNWMS, pt.Part1WMS, pt.Regions)
		rep.Sizes = append(rep.Sizes, pt)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("scale report -> %s\n", path)
	return nil
}
