package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"dscts/internal/arena"
	"dscts/internal/bench"
	"dscts/internal/cluster"
	"dscts/internal/core"
	"dscts/internal/dme"
	"dscts/internal/geom"
	"dscts/internal/insert"
	"dscts/internal/tech"
)

// stageResult is one row of the BENCH_parallel.json report.
type stageResult struct {
	NsPerOp     int64 `json:"ns_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	Iterations  int   `json:"iterations"`
}

// gcProfile is the GC cost of a fixed batch of synthesis runs, measured
// cold (fresh scratch every run) and warm (one recycled arena). Pause totals
// are wall-clock dependent and therefore deliberately not gated by the
// bench comparator (suffix _ms); the collection counts are the structural
// evidence that arena recycling removes GC pressure.
type gcProfile struct {
	Runs             int     `json:"runs"`
	ColdCollections  uint32  `json:"cold_collections"`
	ColdPauseTotalMS float64 `json:"cold_pause_total_ms"`
	WarmCollections  uint32  `json:"warm_collections"`
	WarmPauseTotalMS float64 `json:"warm_pause_total_ms"`
}

// benchReport is the machine-readable evidence file for the parallel,
// allocation-lean synthesis engine: per-stage cost at one worker and at
// GOMAXPROCS, plus the pre-accelerator clustering reference. The
// *-arenawarm-* stages re-run a stage on one recycled arena.Job (warmed by a
// single untimed run), so their bytes/allocs columns are the steady-state
// cost of a recycled job; ArenaSavings summarizes the warm-vs-cold drop as
// saved fractions (1 = everything saved). Those fractions feed the
// `cismoke allocs` CI gate rather than the ratio comparator.
type benchReport struct {
	GOOS         string                 `json:"goos"`
	GOARCH       string                 `json:"goarch"`
	NumCPU       int                    `json:"num_cpu"`
	GOMAXPROCS   int                    `json:"gomaxprocs"`
	Stages       map[string]stageResult `json:"stages"`
	Speedups     map[string]float64     `json:"speedups"`
	ArenaSavings map[string]float64     `json:"arena_savings"`
	GCSynthC3    gcProfile              `json:"gc_synthesize_C3"`
	Notes        []string               `json:"notes"`
}

func measure(fn func(b *testing.B)) stageResult {
	r := testing.Benchmark(fn)
	return stageResult{
		NsPerOp:     r.NsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		Iterations:  r.N,
	}
}

func runBench(path string) error {
	tc := tech.ASAP7()
	d3, err := bench.ByID("C3")
	if err != nil {
		return err
	}
	p3, err := bench.Generate(d3, 1)
	if err != nil {
		return err
	}
	d5, err := bench.ByID("C5")
	if err != nil {
		return err
	}
	p5, err := bench.Generate(d5, 1)
	if err != nil {
		return err
	}

	front := tc.Front()
	dualOpt := cluster.DualOptions{
		HighSize: 3000, LowSize: 30, Seed: 1, MaxIter: 40, Workers: 1,
		CapOf:    func(s, c geom.Point) float64 { return tc.SinkCap + front.UnitCap*s.Dist(c) },
		CapLimit: 0.6 * tc.Buf.MaxCap,
	}
	nCPU := runtime.GOMAXPROCS(0)

	clusterBench := func(opt cluster.DualOptions) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := cluster.DualLevel(p3.Sinks, opt); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	stages := map[string]stageResult{}

	optBrute := dualOpt
	optBrute.Brute = true
	stages["clustering-C3-brute-workers1"] = measure(clusterBench(optBrute))
	stages["clustering-C3-grid-workers1"] = measure(clusterBench(dualOpt))
	optPar := dualOpt
	optPar.Workers = nCPU
	stages["clustering-C3-grid-workersN"] = measure(clusterBench(optPar))
	optWarm := dualOpt
	optWarm.Arena = arena.NewJob(len(p3.Sinks))
	stages["clustering-C3-arenawarm-workers1"] = measure(func(b *testing.B) {
		if _, err := cluster.DualLevel(p3.Sinks, optWarm); err != nil {
			b.Fatal(err) // untimed warm-up: every later iteration recycles
		}
		b.ReportAllocs()
		b.ResetTimer()
		clusterBench(optWarm)(b)
	})

	dual, err := cluster.DualLevel(p3.Sinks, dualOpt)
	if err != nil {
		return err
	}
	routed, err := dme.HierarchicalRoute(p3.Root, p3.Sinks, dual, tc, dme.HierOptions{MaxTrunkEdge: 40})
	if err != nil {
		return err
	}
	insertBench := func(workers int) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tr := routed.Clone()
				cfg := insert.DefaultConfig(tc)
				cfg.Workers = workers
				if _, err := insert.Run(tr, cfg); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	stages["insertion-C3-workers1"] = measure(insertBench(1))
	stages["insertion-C3-workersN"] = measure(insertBench(nCPU))

	synthBench := func(p *bench.Placement, workers int, job *arena.Job) func(b *testing.B) {
		return func(b *testing.B) {
			if job != nil {
				if _, err := core.Synthesize(p.Root, p.Sinks, tc, core.Options{Workers: workers, Arena: job}); err != nil {
					b.Fatal(err) // untimed warm-up: every later iteration recycles
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Synthesize(p.Root, p.Sinks, tc, core.Options{Workers: workers, Arena: job}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	stages["synthesize-C3-workers1"] = measure(synthBench(p3, 1, nil))
	stages["synthesize-C3-workersN"] = measure(synthBench(p3, nCPU, nil))
	stages["synthesize-C5-workers1"] = measure(synthBench(p5, 1, nil))
	stages["synthesize-C5-workersN"] = measure(synthBench(p5, nCPU, nil))
	stages["synthesize-C3-arenawarm-workers1"] = measure(synthBench(p3, 1, arena.NewJob(len(p3.Sinks))))
	stages["synthesize-C5-arenawarm-workers1"] = measure(synthBench(p5, 1, arena.NewJob(len(p5.Sinks))))

	ratio := func(a, b string) float64 {
		if stages[b].NsPerOp == 0 {
			return 0
		}
		return float64(stages[a].NsPerOp) / float64(stages[b].NsPerOp)
	}
	saved := func(cold, warm int64) float64 {
		if cold == 0 {
			return 0
		}
		return 1 - float64(warm)/float64(cold)
	}
	savings := map[string]float64{}
	for _, pair := range [][2]string{
		{"clustering-C3-grid-workers1", "clustering-C3-arenawarm-workers1"},
		{"synthesize-C3-workers1", "synthesize-C3-arenawarm-workers1"},
		{"synthesize-C5-workers1", "synthesize-C5-arenawarm-workers1"},
	} {
		cold, warm := stages[pair[0]], stages[pair[1]]
		savings[pair[1]+"-bytes-saved"] = saved(cold.BytesPerOp, warm.BytesPerOp)
		savings[pair[1]+"-allocs-saved"] = saved(cold.AllocsPerOp, warm.AllocsPerOp)
	}

	gcRuns := 20
	gcCost := func(job *arena.Job) (uint32, float64) {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		for i := 0; i < gcRuns; i++ {
			if _, err := core.Synthesize(p3.Root, p3.Sinks, tc, core.Options{Workers: 1, Arena: job}); err != nil {
				panic(err) // the same call just benchmarked clean
			}
		}
		runtime.ReadMemStats(&after)
		return after.NumGC - before.NumGC,
			float64(after.PauseTotalNs-before.PauseTotalNs) / 1e6
	}
	warmJob := arena.NewJob(len(p3.Sinks))
	if _, err := core.Synthesize(p3.Root, p3.Sinks, tc, core.Options{Workers: 1, Arena: warmJob}); err != nil {
		return err
	}
	gc := gcProfile{Runs: gcRuns}
	gc.ColdCollections, gc.ColdPauseTotalMS = gcCost(nil)
	gc.WarmCollections, gc.WarmPauseTotalMS = gcCost(warmJob)

	rep := benchReport{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: nCPU,
		Stages:     stages,
		Speedups: map[string]float64{
			"clustering-grid-over-brute":    ratio("clustering-C3-brute-workers1", "clustering-C3-grid-workers1"),
			"clustering-workersN-over-1":    ratio("clustering-C3-grid-workers1", "clustering-C3-grid-workersN"),
			"insertion-workersN-over-1":     ratio("insertion-C3-workers1", "insertion-C3-workersN"),
			"synthesize-C3-workersN-over-1": ratio("synthesize-C3-workers1", "synthesize-C3-workersN"),
			"synthesize-C5-workersN-over-1": ratio("synthesize-C5-workers1", "synthesize-C5-workersN"),
		},
		ArenaSavings: savings,
		GCSynthC3:    gc,
		Notes: []string{
			"all ratios are measured on this host in this run; the brute column is the pre-grid O(n*k) assignment scan (cluster.DualOptions.Brute), measured with the current allocation-lean code around it",
			"workersN runs at GOMAXPROCS; on a single-core host the N and 1 columns coincide and the parallel engine is exercised for correctness only",
			"arenawarm stages reuse ONE arena.Job across every iteration after a single untimed warm-up run, so their bytes/allocs columns are the steady-state cost of a recycled job; arena_savings holds the warm-vs-cold drop as saved fractions and `cismoke allocs` gates bytes/allocs against this file in CI",
			"seed-commit reference timings (full pre-engine implementation) are recorded with host context in PERFORMANCE.md",
			"all columns produce bit-identical Metrics for every worker count and for any Arena value (TestWorkersDeterminism, TestJobRecycleBitIdentical)",
		},
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("parallel engine report -> %s\n", path)
	for _, k := range []string{"clustering-grid-over-brute", "clustering-workersN-over-1", "synthesize-C5-workersN-over-1"} {
		fmt.Printf("  %-32s %.2fx\n", k, rep.Speedups[k])
	}
	for _, k := range []string{"synthesize-C3-arenawarm-workers1-bytes-saved", "synthesize-C3-arenawarm-workers1-allocs-saved"} {
		fmt.Printf("  %-48s %.1f%%\n", k, 100*rep.ArenaSavings[k])
	}
	fmt.Printf("  gc over %d C3 runs: cold %d collections / %.1f ms paused, warm %d / %.1f ms\n",
		gc.Runs, gc.ColdCollections, gc.ColdPauseTotalMS, gc.WarmCollections, gc.WarmPauseTotalMS)
	return nil
}
