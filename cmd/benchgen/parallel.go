package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"dscts/internal/bench"
	"dscts/internal/cluster"
	"dscts/internal/core"
	"dscts/internal/dme"
	"dscts/internal/geom"
	"dscts/internal/insert"
	"dscts/internal/tech"
)

// stageResult is one row of the BENCH_parallel.json report.
type stageResult struct {
	NsPerOp     int64 `json:"ns_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	Iterations  int   `json:"iterations"`
}

// benchReport is the machine-readable evidence file for the parallel,
// allocation-lean synthesis engine: per-stage cost at one worker and at
// GOMAXPROCS, plus the pre-accelerator clustering reference.
type benchReport struct {
	GOOS       string                 `json:"goos"`
	GOARCH     string                 `json:"goarch"`
	NumCPU     int                    `json:"num_cpu"`
	GOMAXPROCS int                    `json:"gomaxprocs"`
	Stages     map[string]stageResult `json:"stages"`
	Speedups   map[string]float64     `json:"speedups"`
	Notes      []string               `json:"notes"`
}

func measure(fn func(b *testing.B)) stageResult {
	r := testing.Benchmark(fn)
	return stageResult{
		NsPerOp:     r.NsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		Iterations:  r.N,
	}
}

func runBench(path string) error {
	tc := tech.ASAP7()
	d3, err := bench.ByID("C3")
	if err != nil {
		return err
	}
	p3, err := bench.Generate(d3, 1)
	if err != nil {
		return err
	}
	d5, err := bench.ByID("C5")
	if err != nil {
		return err
	}
	p5, err := bench.Generate(d5, 1)
	if err != nil {
		return err
	}

	front := tc.Front()
	dualOpt := cluster.DualOptions{
		HighSize: 3000, LowSize: 30, Seed: 1, MaxIter: 40, Workers: 1,
		CapOf:    func(s, c geom.Point) float64 { return tc.SinkCap + front.UnitCap*s.Dist(c) },
		CapLimit: 0.6 * tc.Buf.MaxCap,
	}
	nCPU := runtime.GOMAXPROCS(0)

	clusterBench := func(opt cluster.DualOptions) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := cluster.DualLevel(p3.Sinks, opt); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	stages := map[string]stageResult{}

	optBrute := dualOpt
	optBrute.Brute = true
	stages["clustering-C3-brute-workers1"] = measure(clusterBench(optBrute))
	stages["clustering-C3-grid-workers1"] = measure(clusterBench(dualOpt))
	optPar := dualOpt
	optPar.Workers = nCPU
	stages["clustering-C3-grid-workersN"] = measure(clusterBench(optPar))

	dual, err := cluster.DualLevel(p3.Sinks, dualOpt)
	if err != nil {
		return err
	}
	routed, err := dme.HierarchicalRoute(p3.Root, p3.Sinks, dual, tc, dme.HierOptions{MaxTrunkEdge: 40})
	if err != nil {
		return err
	}
	insertBench := func(workers int) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tr := routed.Clone()
				cfg := insert.DefaultConfig(tc)
				cfg.Workers = workers
				if _, err := insert.Run(tr, cfg); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	stages["insertion-C3-workers1"] = measure(insertBench(1))
	stages["insertion-C3-workersN"] = measure(insertBench(nCPU))

	synthBench := func(p *bench.Placement, workers int) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Synthesize(p.Root, p.Sinks, tc, core.Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	stages["synthesize-C3-workers1"] = measure(synthBench(p3, 1))
	stages["synthesize-C3-workersN"] = measure(synthBench(p3, nCPU))
	stages["synthesize-C5-workers1"] = measure(synthBench(p5, 1))
	stages["synthesize-C5-workersN"] = measure(synthBench(p5, nCPU))

	ratio := func(a, b string) float64 {
		if stages[b].NsPerOp == 0 {
			return 0
		}
		return float64(stages[a].NsPerOp) / float64(stages[b].NsPerOp)
	}
	rep := benchReport{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: nCPU,
		Stages:     stages,
		Speedups: map[string]float64{
			"clustering-grid-over-brute":    ratio("clustering-C3-brute-workers1", "clustering-C3-grid-workers1"),
			"clustering-workersN-over-1":    ratio("clustering-C3-grid-workers1", "clustering-C3-grid-workersN"),
			"insertion-workersN-over-1":     ratio("insertion-C3-workers1", "insertion-C3-workersN"),
			"synthesize-C3-workersN-over-1": ratio("synthesize-C3-workers1", "synthesize-C3-workersN"),
			"synthesize-C5-workersN-over-1": ratio("synthesize-C5-workers1", "synthesize-C5-workersN"),
		},
		Notes: []string{
			"all ratios are measured on this host in this run; the brute column is the pre-grid O(n*k) assignment scan (cluster.DualOptions.Brute), measured with the current allocation-lean code around it",
			"workersN runs at GOMAXPROCS; on a single-core host the N and 1 columns coincide and the parallel engine is exercised for correctness only",
			"seed-commit reference timings (full pre-engine implementation) are recorded with host context in PERFORMANCE.md",
			"all columns produce bit-identical Metrics for every worker count (TestWorkersDeterminism)",
		},
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("parallel engine report -> %s\n", path)
	for _, k := range []string{"clustering-grid-over-brute", "clustering-workersN-over-1", "synthesize-C5-workersN-over-1"} {
		fmt.Printf("  %-32s %.2fx\n", k, rep.Speedups[k])
	}
	return nil
}
