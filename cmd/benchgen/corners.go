package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"dscts/internal/bench"
	"dscts/internal/core"
	"dscts/internal/corner"
	"dscts/internal/tech"
)

// cornerStage is one row of BENCH_corners.json: evaluating one tree across
// K corners at a given worker count.
type cornerStage struct {
	Corners    int   `json:"corners"`
	Workers    int   `json:"workers"`
	NsPerOp    int64 `json:"ns_per_op"`
	Iterations int   `json:"iterations"`
}

// cornerReport is the machine-readable evidence file for the multi-corner
// sign-off subsystem: how corner-sweep cost scales with the corner count
// and with workers, plus the end-to-end synthesis cost with and without
// the preset sign-off attached.
type cornerReport struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Design     string `json:"design"`
	Sinks      int    `json:"sinks"`

	Signoff []cornerStage `json:"signoff_sweeps"`

	SynthesizeMS        float64 `json:"synthesize_ms"`
	SynthesizeSignoffMS float64 `json:"synthesize_with_signoff_ms"`

	ScalingPerCorner map[string]float64 `json:"scaling_per_corner"`
	ParallelSpeedup  map[string]float64 `json:"parallel_speedup"`
	Notes            []string           `json:"notes"`
}

// runCorners measures the corner-parallel sign-off evaluator on C3 and
// writes the report to path.
func runCorners(path string) error {
	tc := tech.ASAP7()
	d, err := bench.ByID("C3")
	if err != nil {
		return err
	}
	p, err := bench.Generate(d, 1)
	if err != nil {
		return err
	}
	nCPU := runtime.GOMAXPROCS(0)

	// One tree, evaluated many ways: synthesize once at the typical
	// corner, like real sign-off.
	out, err := core.Synthesize(p.Root, p.Sinks, tc, core.Options{})
	if err != nil {
		return err
	}
	tree := out.Tree

	cornersOf := func(k int) []corner.Corner {
		if k == 1 {
			return []corner.Corner{corner.Typ()}
		}
		cs := make([]corner.Corner, k)
		for i := range cs {
			cs[i] = corner.Interpolate(corner.Slow(), corner.Fast(),
				float64(i)/float64(k-1), fmt.Sprintf("k%d", i))
		}
		return cs
	}
	// b.Fatal only stops the benchmark goroutine — testing.Benchmark
	// still returns — so failures are captured through benchErr and
	// checked after every measurement; a broken engine must fail the run,
	// not write a report of ~0 ns/op rows.
	var benchErr error
	evalBench := func(k, workers int) func(b *testing.B) {
		cs := cornersOf(k)
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := corner.Evaluate(context.Background(), tree, tc, cs,
					corner.Options{Workers: workers}); err != nil {
					benchErr = err
					b.Fatal(err)
				}
			}
		}
	}

	var stages []cornerStage
	measureAt := func(k, workers int) int64 {
		r := testing.Benchmark(evalBench(k, workers))
		stages = append(stages, cornerStage{
			Corners: k, Workers: workers,
			NsPerOp: r.NsPerOp(), Iterations: r.N,
		})
		return r.NsPerOp()
	}
	ns := map[[2]int]int64{}
	for _, k := range []int{1, 2, 4, 8, 16} {
		ns[[2]int{k, 1}] = measureAt(k, 1)
		// On a single-core host workers=GOMAXPROCS is the same
		// measurement; skip the duplicate rows.
		if nCPU > 1 {
			ns[[2]int{k, nCPU}] = measureAt(k, nCPU)
		}
		if benchErr != nil {
			return benchErr
		}
	}

	// End-to-end: a full synthesis with the slow/typ/fast sign-off
	// attached versus without.
	synthMS := func(opt core.Options) (float64, error) {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Synthesize(p.Root, p.Sinks, tc, opt); err != nil {
					benchErr = err
					b.Fatal(err)
				}
			}
		})
		return float64(r.NsPerOp()) / 1e6, benchErr
	}
	plainMS, err := synthMS(core.Options{})
	if err != nil {
		return err
	}
	signoffMS, err := synthMS(core.Options{Corners: corner.Presets()})
	if err != nil {
		return err
	}

	scaling := map[string]float64{}
	for _, k := range []int{2, 4, 8, 16} {
		// Near-linear scaling means timePerCorner(K)/timePerCorner(1) ≈ 1.
		scaling[fmt.Sprintf("corners%d-vs-1-per-corner", k)] =
			float64(ns[[2]int{k, 1}]) / (float64(k) * float64(ns[[2]int{1, 1}]))
	}
	speedup := map[string]float64{}
	if nCPU > 1 {
		for _, k := range []int{4, 8, 16} {
			speedup[fmt.Sprintf("corners%d-workersN-over-1", k)] =
				float64(ns[[2]int{k, 1}]) / float64(ns[[2]int{k, nCPU}])
		}
	}

	rep := cornerReport{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		NumCPU: runtime.NumCPU(), GOMAXPROCS: nCPU,
		Design: d.ID, Sinks: len(p.Sinks),
		Signoff:             stages,
		SynthesizeMS:        plainMS,
		SynthesizeSignoffMS: signoffMS,
		ScalingPerCorner:    scaling,
		ParallelSpeedup:     speedup,
		Notes: []string{
			"sign-off sweeps evaluate ONE synthesized C3 tree across K interpolated slow..fast corners (corner.Evaluate); synthesis itself always runs at the typical corner",
			"scaling_per_corner is timePerCorner(K)/timePerCorner(1) at one worker: 1.0 means perfectly linear in the corner count",
			"parallel_speedup is time(K workers=1)/time(K workers=GOMAXPROCS); on a single-core host the multi-worker column duplicates workers=1 so it is omitted and the fan-out is exercised for correctness only (by the determinism suites)",
			"per-corner Metrics are bit-identical for every worker count and corner order (TestEvaluateDeterminismAcrossWorkersAndOrder, TestCornerWorkersDeterminism)",
		},
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("corner sign-off report -> %s\n", path)
	fmt.Printf("  synthesize C3 %.1f ms -> %.1f ms with slow/typ/fast sign-off\n", plainMS, signoffMS)
	for _, k := range []int{8, 16} {
		line := fmt.Sprintf("  %2d corners: %.2f per-corner scaling",
			k, scaling[fmt.Sprintf("corners%d-vs-1-per-corner", k)])
		if s, ok := speedup[fmt.Sprintf("corners%d-workersN-over-1", k)]; ok {
			line += fmt.Sprintf(", %.2fx parallel speedup", s)
		}
		fmt.Println(line)
	}
	return nil
}
