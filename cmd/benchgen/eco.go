package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"dscts/internal/bench"
	"dscts/internal/core"
	"dscts/internal/eco"
	"dscts/internal/geom"
	"dscts/internal/partition"
	"dscts/internal/tech"
)

// ecoReport is the BENCH_eco.json payload: full-vs-incremental re-synthesis
// runtime across delta sizes, per design and pipeline mode.
type ecoReport struct {
	GOMAXPROCS int   `json:"gomaxprocs"`
	Workers    int   `json:"workers"`
	Seed       int64 `json:"seed"`
	// Reps is the measurement repetition count; every reported time is the
	// fastest of Reps runs.
	Reps              int      `json:"reps"`
	PartitionMaxSinks int      `json:"partition_max_sinks"`
	XLPartitionSinks  int      `json:"xl_partition_sinks,omitempty"`
	Rows              []ecoRow `json:"rows"`
}

type ecoRow struct {
	Design string `json:"design"`
	Sinks  int    `json:"sinks"`
	// Mode is "mono" (monolithic prior, cluster-level dirty sets) or
	// "part" (partitioned prior, region-level dirty sets).
	Mode string `json:"mode"`
	// DeltaPct is the edit size as a percentage of the sink count.
	DeltaPct   float64 `json:"delta_pct"`
	DeltaSinks int     `json:"delta_sinks"`
	Moves      int     `json:"moves"`
	Adds       int     `json:"adds"`
	Removes    int     `json:"removes"`

	DirtyScopes int `json:"dirty_scopes"`
	TotalScopes int `json:"total_scopes"`

	// FullMS re-synthesizes the post-delta placement from scratch; ECOMS
	// applies the delta incrementally against the retained base. Speedup is
	// FullMS / ECOMS.
	FullMS  float64 `json:"full_ms"`
	ECOMS   float64 `json:"eco_ms"`
	Speedup float64 `json:"speedup"`

	LatencyFullPS float64 `json:"latency_full_ps"`
	LatencyECOPS  float64 `json:"latency_eco_ps"`
	SkewFullPS    float64 `json:"skew_full_ps"`
	SkewECOPS     float64 `json:"skew_eco_ps"`
	// LatencyRelErr is |eco-full|/full — the equivalence gap the test suite
	// pins (TestECOVsFullEquivalence).
	LatencyRelErr float64 `json:"latency_rel_err"`
}

// ecoDelta builds a localized delta — the realistic ECO shape: an edit
// concentrated around a random anchor (a macro shifted, a block re-placed)
// rather than uniform noise. Of the `count` sinks nearest the anchor, ~70%
// move by a small local offset, ~15% are removed, and ~15% new sinks appear
// near the anchor. Deterministic in (sinks, seed, count).
func ecoDelta(sinks []geom.Point, die geom.BBox, seed int64, count int) eco.Delta {
	rng := rand.New(rand.NewSource(seed))
	anchor := sinks[rng.Intn(len(sinks))]
	span := 0.02 * (die.W() + die.H()) / 2 // local: ~2% of the die edge
	type ds struct {
		idx  int
		dist float64
	}
	order := make([]ds, len(sinks))
	for i, p := range sinks {
		order[i] = ds{i, p.Dist(anchor)}
	}
	sort.Slice(order, func(a, b int) bool {
		if order[a].dist != order[b].dist {
			return order[a].dist < order[b].dist
		}
		return order[a].idx < order[b].idx
	})
	if count > len(order) {
		count = len(order)
	}
	var d eco.Delta
	for k := 0; k < count; k++ {
		i := order[k].idx
		switch {
		case k%7 == 3: // ~15%: removed
			d.Remove = append(d.Remove, i)
		case k%7 == 6: // ~15%: a new sink appears nearby
			d.Add = append(d.Add, geom.Pt(
				anchor.X+(rng.Float64()-0.5)*span,
				anchor.Y+(rng.Float64()-0.5)*span,
			))
		default: // ~70%: moved locally
			d.Move = append(d.Move, eco.Move{Sink: i, To: geom.Pt(
				sinks[i].X+(rng.Float64()-0.5)*span,
				sinks[i].Y+(rng.Float64()-0.5)*span,
			)})
		}
	}
	return d
}

// minTime returns fn's fastest wall-clock over repeated runs: at least
// `reps` runs, and — like the Go benchmark harness — it keeps repeating a
// fast fn until minTotal of cumulative measurement has accumulated (capped
// at maxReps), because a 2 ms measurement needs far more samples than a 5 s
// one to shed scheduler and GC noise. The regression gate compares the
// resulting ratios across runs and machines, so their stability is what
// bounds the gate's false-positive rate.
func minTime(reps int, fn func() error) (time.Duration, error) {
	const (
		minTotal = 300 * time.Millisecond
		maxReps  = 25
	)
	best := time.Duration(0)
	total := time.Duration(0)
	for i := 0; i < reps || (total < minTotal && i < maxReps); i++ {
		t0 := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		d := time.Since(t0)
		total += d
		if i == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// ecoMeasure runs one (base, delta-size) cell: base synthesis with retained
// state, then for each percentage a localized delta applied both
// incrementally and as a full re-synthesis of the post-delta placement.
func ecoMeasure(rep *ecoReport, design string, root geom.Point, sinks []geom.Point, macros []geom.BBox, die geom.BBox, mode string, partMax int, pcts []float64, workers, reps int, seed int64) error {
	tc := tech.ASAP7()
	opt := core.Options{Workers: workers, RetainECO: true}
	if partMax > 0 {
		opt.Partition = partition.Options{MaxSinks: partMax, Macros: macros}
	}
	fmt.Fprintf(os.Stderr, "eco: %s/%s: base synthesis (%d sinks)...\n", design, mode, len(sinks))
	base, err := core.Synthesize(root, sinks, tc, opt)
	if err != nil {
		return fmt.Errorf("%s/%s base: %w", design, mode, err)
	}
	fullOpt := opt
	fullOpt.RetainECO = false
	for pi, pct := range pcts {
		count := int(float64(len(sinks)) * pct / 100)
		if count < 1 {
			count = 1
		}
		d := ecoDelta(sinks, die, seed+int64(pi)*7919, count)
		if err := d.Validate(len(sinks)); err != nil {
			return fmt.Errorf("%s/%s delta %.3g%%: %w", design, mode, pct, err)
		}

		var out *core.Outcome
		ecoTime, err := minTime(reps, func() error {
			var err error
			out, err = core.SynthesizeECO(base, d, core.Options{Workers: workers})
			return err
		})
		if err != nil {
			return fmt.Errorf("%s/%s eco %.3g%%: %w", design, mode, pct, err)
		}
		ecoMS := msOf(ecoTime)

		newSinks, _ := eco.Apply(sinks, d)
		var full *core.Outcome
		fullTime, err := minTime(reps, func() error {
			var err error
			full, err = core.Synthesize(root, newSinks, tc, fullOpt)
			return err
		})
		if err != nil {
			return fmt.Errorf("%s/%s full %.3g%%: %w", design, mode, pct, err)
		}
		fullMS := msOf(fullTime)

		row := ecoRow{
			Design: design, Sinks: len(sinks), Mode: mode,
			DeltaPct: pct, DeltaSinks: count,
			Moves: len(d.Move), Adds: len(d.Add), Removes: len(d.Remove),
			DirtyScopes: out.ECO.DirtyScopes, TotalScopes: out.ECO.TotalScopes,
			FullMS: fullMS, ECOMS: ecoMS,
			LatencyFullPS: full.Metrics.Latency, LatencyECOPS: out.Metrics.Latency,
			SkewFullPS: full.Metrics.Skew, SkewECOPS: out.Metrics.Skew,
		}
		if ecoMS > 0 {
			row.Speedup = fullMS / ecoMS
		}
		if full.Metrics.Latency > 0 {
			row.LatencyRelErr = abs(out.Metrics.Latency-full.Metrics.Latency) / full.Metrics.Latency
		}
		rep.Rows = append(rep.Rows, row)
		fmt.Fprintf(os.Stderr, "eco: %s/%s %.3g%% (%d sinks): full %.1fms, eco %.1fms (%.1fx), dirty %d/%d\n",
			design, mode, pct, count, fullMS, ecoMS, row.Speedup, row.DirtyScopes, row.TotalScopes)
	}
	return nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func msOf(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// runECOBench generates BENCH_eco.json: C-series designs in both pipeline
// modes plus an XL partitioned design, across delta sizes.
func runECOBench(path string, designs []string, xlSinks, partMax, xlPartMax, workers, reps int, pcts []float64, seed int64) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if reps < 1 {
		reps = 1
	}
	rep := &ecoReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0), Workers: workers, Seed: seed,
		Reps: reps, PartitionMaxSinks: partMax, XLPartitionSinks: xlPartMax,
	}
	for _, id := range designs {
		d, err := bench.ByID(id)
		if err != nil {
			return err
		}
		p, err := bench.Generate(d, seed)
		if err != nil {
			return err
		}
		if err := ecoMeasure(rep, d.ID, p.Root, p.Sinks, p.Macros, p.Die, "mono", 0, pcts, workers, reps, seed); err != nil {
			return err
		}
		if partMax > 0 && len(p.Sinks) > partMax {
			if err := ecoMeasure(rep, d.ID, p.Root, p.Sinks, p.Macros, p.Die, "part", partMax, pcts, workers, reps, seed); err != nil {
				return err
			}
		}
	}
	if xlSinks > 0 {
		p, err := bench.GenerateXL(xlSinks, seed)
		if err != nil {
			return err
		}
		label := fmt.Sprintf("XL%dk", xlSinks/1000)
		if err := ecoMeasure(rep, label, p.Root, p.Sinks, p.Macros, p.Die, "part", xlPartMax, pcts, workers, reps, seed); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("eco report -> %s\n", path)
	return nil
}
