package main

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
)

// serveDebug mounts net/http/pprof on its own listener for the lifetime of
// the process, mirroring dsctsd's -debug-addr: the nightly heap soak runs a
// long chaos load with this enabled and scrapes /debug/pprof/heap mid-soak
// so the uploaded profile shows the steady-state arena/cache footprint, not
// an idle post-drain heap. A listen failure only disables profiling — the
// soak itself must keep running — so it is reported and swallowed.
func serveDebug(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if err := http.ListenAndServe(addr, mux); err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: debug listener on %s failed: %v\n", addr, err)
	}
}
