// Package tech models the double-side technology: metal layer unit parasitics
// (front side M1-M9 and back side BM1-BM3 from the ASAP7-derived Table I of
// the paper), the clock buffer cell and the nano-TSV (nTSV) cell.
//
// Units follow DESIGN.md: lengths in µm, resistance in kΩ, capacitance in fF.
// The product kΩ·fF is ps, so all delays computed from these values are in
// picoseconds directly.
package tech

import (
	"errors"
	"fmt"
	"sort"
)

// Layer describes one routing layer's unit parasitics.
type Layer struct {
	Name    string
	UnitRes float64 // kΩ/µm
	UnitCap float64 // fF/µm
	Back    bool    // true for back-side metal (BM*)
}

// Buffer is the clock buffer cell model. The paper uses a single buffer kind
// (BUFx4_ASAP7_75t_R) following OpenROAD's default CTS flow; sizing is left
// to downstream optimization.
type Buffer struct {
	Name      string
	InputCap  float64 // fF, load presented to the driving net
	DriveRes  float64 // kΩ, linear output resistance
	Intrinsic float64 // ps, parasitic delay at zero load
	MaxCap    float64 // fF, maximum load the buffer may legally drive
	Width     float64 // µm, footprint
	Height    float64 // µm
}

// Delay returns the buffer stage delay driving the given load (fF) using the
// linear gate model D = intrinsic + Rdrive·Cload. This is the model the DP
// optimizes; NLDM evaluation lives in internal/timing.
func (b Buffer) Delay(load float64) float64 {
	return b.Intrinsic + b.DriveRes*load
}

// NTSV is the nano-TSV cell model: a resistive via connecting a front-side
// landing pad to a back-side one, as in [1] (Chen et al., IEDM'21).
type NTSV struct {
	Name   string
	Res    float64 // kΩ
	Cap    float64 // fF
	Width  float64 // µm
	Height float64 // µm
}

// Tech aggregates the full technology view consumed by the CTS flow.
type Tech struct {
	Layers []Layer
	Buf    Buffer
	TSV    NTSV

	// FrontLayer / BackLayer are the layers used for delay evaluation.
	// The paper follows OpenROAD's convention of using M3 for front-side
	// clock wires, and BM1-BM3 (identical parasitics) for the back side.
	FrontLayer string
	BackLayer  string

	// SinkCap is the clock input pin capacitance of a sink (FF), fF.
	SinkCap float64

	// MaxFanout bounds the number of sinks a leaf-level net may drive.
	MaxFanout int
}

// Errors returned by Validate.
var (
	ErrNoLayers   = errors.New("tech: no layers defined")
	ErrLayerNames = errors.New("tech: front/back layer not found")
	ErrNonPhys    = errors.New("tech: non-physical parameter")
)

// ASAP7 returns the default technology of the paper's experiments:
// Table I layer parasitics, the BUFx4_ASAP7_75t_R buffer and the nTSV
// of Sec. IV-A (R = 0.020 kΩ, C = 0.004 fF).
func ASAP7() *Tech {
	return &Tech{
		Layers: []Layer{
			{Name: "M1", UnitRes: 0.138890, UnitCap: 0.11368},
			{Name: "M2", UnitRes: 0.024222, UnitCap: 0.13426},
			{Name: "M3", UnitRes: 0.024222, UnitCap: 0.12918},
			{Name: "M4", UnitRes: 0.016778, UnitCap: 0.11396},
			{Name: "M5", UnitRes: 0.014677, UnitCap: 0.13323},
			{Name: "M6", UnitRes: 0.010371, UnitCap: 0.11575},
			{Name: "M7", UnitRes: 0.009672, UnitCap: 0.13293},
			{Name: "M8", UnitRes: 0.007431, UnitCap: 0.11822},
			{Name: "M9", UnitRes: 0.006874, UnitCap: 0.13497},
			{Name: "BM1", UnitRes: 0.000384, UnitCap: 0.116264, Back: true},
			{Name: "BM2", UnitRes: 0.000384, UnitCap: 0.116264, Back: true},
			{Name: "BM3", UnitRes: 0.000384, UnitCap: 0.116264, Back: true},
		},
		Buf: Buffer{
			Name:      "BUFx4_ASAP7_75t_R",
			InputCap:  1.2,
			DriveRes:  0.60,
			Intrinsic: 12.0,
			MaxCap:    60.0,
			Width:     0.378,
			Height:    0.270,
		},
		TSV: NTSV{
			Name:   "NTSV",
			Res:    0.020,
			Cap:    0.004,
			Width:  0.270,
			Height: 0.270,
		},
		FrontLayer: "M3",
		BackLayer:  "BM1",
		SinkCap:    0.8,
		MaxFanout:  40,
	}
}

// Layer returns the named layer.
func (t *Tech) Layer(name string) (Layer, bool) {
	for _, l := range t.Layers {
		if l.Name == name {
			return l, true
		}
	}
	return Layer{}, false
}

// Front returns the front-side evaluation layer.
func (t *Tech) Front() Layer {
	l, _ := t.Layer(t.FrontLayer)
	return l
}

// Back returns the back-side evaluation layer.
func (t *Tech) Back() Layer {
	l, _ := t.Layer(t.BackLayer)
	return l
}

// Validate checks the technology for internal consistency and physical
// plausibility. Flows call this once at startup.
func (t *Tech) Validate() error {
	if len(t.Layers) == 0 {
		return ErrNoLayers
	}
	names := map[string]bool{}
	for _, l := range t.Layers {
		if l.UnitRes <= 0 || l.UnitCap <= 0 {
			return fmt.Errorf("%w: layer %s r=%g c=%g", ErrNonPhys, l.Name, l.UnitRes, l.UnitCap)
		}
		if names[l.Name] {
			return fmt.Errorf("tech: duplicate layer %s", l.Name)
		}
		names[l.Name] = true
	}
	if !names[t.FrontLayer] || !names[t.BackLayer] {
		return ErrLayerNames
	}
	fl, _ := t.Layer(t.FrontLayer)
	bl, _ := t.Layer(t.BackLayer)
	if fl.Back {
		return fmt.Errorf("tech: front layer %s is marked back-side", t.FrontLayer)
	}
	if !bl.Back {
		return fmt.Errorf("tech: back layer %s is not marked back-side", t.BackLayer)
	}
	if t.Buf.InputCap <= 0 || t.Buf.DriveRes <= 0 || t.Buf.Intrinsic < 0 || t.Buf.MaxCap <= 0 {
		return fmt.Errorf("%w: buffer %+v", ErrNonPhys, t.Buf)
	}
	if t.TSV.Res <= 0 || t.TSV.Cap <= 0 {
		return fmt.Errorf("%w: ntsv %+v", ErrNonPhys, t.TSV)
	}
	if t.SinkCap <= 0 {
		return fmt.Errorf("%w: sink cap %g", ErrNonPhys, t.SinkCap)
	}
	if t.MaxFanout <= 0 {
		return fmt.Errorf("%w: max fanout %d", ErrNonPhys, t.MaxFanout)
	}
	// The whole premise of double-side CTS: back metal must be much less
	// resistive than front metal (r_b·c_b << r_f·c_f in Sec. II-B).
	if bl.UnitRes*bl.UnitCap >= fl.UnitRes*fl.UnitCap {
		return fmt.Errorf("tech: back-side RC (%g) not below front-side RC (%g)",
			bl.UnitRes*bl.UnitCap, fl.UnitRes*fl.UnitCap)
	}
	return nil
}

// SortedLayerNames returns layer names, front side first in definition order,
// then back side; used for stable table output.
func (t *Tech) SortedLayerNames() []string {
	names := make([]string, 0, len(t.Layers))
	for _, l := range t.Layers {
		names = append(names, l.Name)
	}
	sort.SliceStable(names, func(i, j int) bool {
		li, _ := t.Layer(names[i])
		lj, _ := t.Layer(names[j])
		if li.Back != lj.Back {
			return !li.Back
		}
		return false // stable: keep definition order within a side
	})
	return names
}
