package tech

import (
	"strings"
	"testing"
)

func TestASAP7Valid(t *testing.T) {
	tc := ASAP7()
	if err := tc.Validate(); err != nil {
		t.Fatalf("default tech invalid: %v", err)
	}
}

func TestTableIValues(t *testing.T) {
	// Spot-check values against Table I of the paper.
	tc := ASAP7()
	cases := []struct {
		layer string
		r, c  float64
	}{
		{"M1", 0.138890, 0.11368},
		{"M3", 0.024222, 0.12918},
		{"M9", 0.006874, 0.13497},
		{"BM1", 0.000384, 0.116264},
		{"BM3", 0.000384, 0.116264},
	}
	for _, cse := range cases {
		l, ok := tc.Layer(cse.layer)
		if !ok {
			t.Fatalf("layer %s missing", cse.layer)
		}
		if l.UnitRes != cse.r || l.UnitCap != cse.c {
			t.Errorf("%s = (%g,%g), want (%g,%g)", cse.layer, l.UnitRes, l.UnitCap, cse.r, cse.c)
		}
	}
	if tc.TSV.Res != 0.020 || tc.TSV.Cap != 0.004 {
		t.Errorf("nTSV R/C = %g/%g, want 0.020/0.004", tc.TSV.Res, tc.TSV.Cap)
	}
}

func TestFrontBackSelection(t *testing.T) {
	tc := ASAP7()
	if tc.Front().Name != "M3" || tc.Front().Back {
		t.Errorf("Front = %+v", tc.Front())
	}
	if tc.Back().Name != "BM1" || !tc.Back().Back {
		t.Errorf("Back = %+v", tc.Back())
	}
	// The double-side premise: back RC per unit length far below front.
	f, b := tc.Front(), tc.Back()
	if b.UnitRes*b.UnitCap > f.UnitRes*f.UnitCap/10 {
		t.Errorf("back RC %g not << front RC %g", b.UnitRes*b.UnitCap, f.UnitRes*f.UnitCap)
	}
}

func TestBufferDelayMonotone(t *testing.T) {
	b := ASAP7().Buf
	prev := b.Delay(0)
	if prev != b.Intrinsic {
		t.Errorf("Delay(0) = %v, want intrinsic %v", prev, b.Intrinsic)
	}
	for load := 1.0; load <= 100; load += 1 {
		d := b.Delay(load)
		if d <= prev {
			t.Fatalf("buffer delay not strictly increasing at load %v", load)
		}
		prev = d
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	mk := func(mut func(*Tech)) *Tech {
		tc := ASAP7()
		mut(tc)
		return tc
	}
	cases := []struct {
		name string
		tc   *Tech
		want string
	}{
		{"no layers", mk(func(tc *Tech) { tc.Layers = nil }), "no layers"},
		{"bad front name", mk(func(tc *Tech) { tc.FrontLayer = "M99" }), "not found"},
		{"bad back name", mk(func(tc *Tech) { tc.BackLayer = "BM99" }), "not found"},
		{"negative res", mk(func(tc *Tech) { tc.Layers[0].UnitRes = -1 }), "non-physical"},
		{"zero cap", mk(func(tc *Tech) { tc.Layers[2].UnitCap = 0 }), "non-physical"},
		{"dup layer", mk(func(tc *Tech) { tc.Layers[1].Name = "M1" }), "duplicate"},
		{"front is back", mk(func(tc *Tech) { tc.FrontLayer = "BM1" }), "marked back-side"},
		{"back is front", mk(func(tc *Tech) { tc.BackLayer = "M3" }), "not marked back-side"},
		{"bad buffer", mk(func(tc *Tech) { tc.Buf.DriveRes = 0 }), "non-physical"},
		{"bad ntsv", mk(func(tc *Tech) { tc.TSV.Cap = 0 }), "non-physical"},
		{"bad sink cap", mk(func(tc *Tech) { tc.SinkCap = -1 }), "non-physical"},
		{"bad fanout", mk(func(tc *Tech) { tc.MaxFanout = 0 }), "non-physical"},
		{"back not better", mk(func(tc *Tech) {
			for i := range tc.Layers {
				if tc.Layers[i].Back {
					tc.Layers[i].UnitRes = 1.0
				}
			}
		}), "not below"},
	}
	for _, c := range cases {
		err := c.tc.Validate()
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.want)
		}
	}
}

func TestSortedLayerNames(t *testing.T) {
	names := ASAP7().SortedLayerNames()
	if len(names) != 12 {
		t.Fatalf("got %d names", len(names))
	}
	if names[0] != "M1" || names[8] != "M9" || names[9] != "BM1" {
		t.Errorf("order wrong: %v", names)
	}
}

func TestLayerLookupMissing(t *testing.T) {
	if _, ok := ASAP7().Layer("nope"); ok {
		t.Error("expected miss")
	}
}
