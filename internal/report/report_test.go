package report

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestRenderAlignsColumns(t *testing.T) {
	tb := NewTable("T", "A", "LongHeader")
	tb.AddRow("C1", 1.5, 2)
	tb.AddRow("C2", 10.25, 30000)
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "LongHeader") {
		t.Fatalf("render output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header and data lines share the same width.
	var w int
	for _, l := range lines {
		if strings.HasPrefix(l, "=") {
			w = len(l)
		}
	}
	for _, l := range lines {
		if len(l) > w {
			t.Fatalf("line wider than rule: %q", l)
		}
	}
}

func TestRatioRowGeomean(t *testing.T) {
	tb := NewTable("", "X", "Ref")
	tb.AddRow("a", 2, 1)
	tb.AddRow("b", 8, 1)
	// Ratios vs column 1: geomean(2/1, 8/1) = 4.
	tb.AddRatioRow("Ratio", []int{1, 1})
	var buf bytes.Buffer
	tb.RenderCSV(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	last := lines[len(lines)-1]
	if !strings.HasPrefix(last, "Ratio,4.000,1.000") {
		t.Fatalf("ratio row = %q", last)
	}
}

func TestRatioRowSkipsNegativeRef(t *testing.T) {
	tb := NewTable("", "X", "Y")
	tb.AddRow("a", 2, 3)
	tb.AddRatioRow("Ratio", []int{-1, 1})
	var buf bytes.Buffer
	tb.RenderCSV(&buf)
	if !strings.Contains(buf.String(), "Ratio,-,") {
		t.Fatalf("csv = %q", buf.String())
	}
}

func TestRatioRowIgnoresNonPositive(t *testing.T) {
	tb := NewTable("", "X", "Ref")
	tb.AddRow("a", 2, 1)
	tb.AddRow("b", 0, 1) // zero cell: skipped, not poisoning the geomean
	tb.AddRatioRow("Ratio", []int{1, 1})
	if tb.NumRows() != 3 {
		t.Fatal("rows")
	}
	var buf bytes.Buffer
	tb.RenderCSV(&buf)
	if !strings.Contains(buf.String(), "Ratio,2.000") {
		t.Fatalf("csv = %q", buf.String())
	}
}

func TestRatioRowPanicsOnBadRefCols(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	tb := NewTable("", "A", "B")
	tb.AddRow("x", 1, 2)
	tb.AddRatioRow("Ratio", []int{0})
}

func TestTextRowsAndCells(t *testing.T) {
	tb := NewTable("", "A")
	tb.AddTextRow("r", "hello")
	tb.AddRow("n", 42)
	if tb.Cell(1, 0) != 42 {
		t.Fatalf("Cell = %v", tb.Cell(1, 0))
	}
	var buf bytes.Buffer
	tb.Render(&buf)
	if !strings.Contains(buf.String(), "hello") {
		t.Fatal("text cell lost")
	}
}

func TestFormatCell(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{3, "3"},
		{3.5, "3.500"},
		{12345.6, "12345.6"},
		{0.123, "0.123"},
		{math.Pi, "3.142"},
	}
	for _, c := range cases {
		if got := formatCell(c.v); got != c.want {
			t.Errorf("formatCell(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}
