// Package report renders the experiment tables in the layout of the paper:
// fixed-width ASCII columns, one row per design, and a trailing ratio row
// normalizing every flow against a reference column group (geometric mean
// of per-design ratios, the EDA convention).
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table accumulates rows of labeled numeric cells.
type Table struct {
	Title   string
	Columns []string
	rows    []row
}

type row struct {
	label string
	cells []float64
	text  []string // non-numeric override per cell ("" = numeric)
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a numeric row.
func (t *Table) AddRow(label string, cells ...float64) {
	t.rows = append(t.rows, row{label: label, cells: cells, text: make([]string, len(cells))})
}

// AddTextRow appends a row of preformatted cells.
func (t *Table) AddTextRow(label string, cells ...string) {
	r := row{label: label, cells: make([]float64, len(cells)), text: cells}
	t.rows = append(t.rows, r)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Cell returns the numeric value at (row, col).
func (t *Table) Cell(r, c int) float64 { return t.rows[r].cells[c] }

// AddRatioRow appends a "Ratio" row: for every column, the geometric mean
// over data rows of cell/reference, where the reference column for column c
// is refCols[c] (use c itself for the normalization target, yielding 1.0).
// Columns with a negative refCols entry are left blank.
func (t *Table) AddRatioRow(label string, refCols []int) {
	if len(refCols) != len(t.Columns) {
		panic("report: refCols length mismatch")
	}
	n := len(t.rows)
	cells := make([]string, len(t.Columns))
	for c := range t.Columns {
		if refCols[c] < 0 {
			cells[c] = "-"
			continue
		}
		logSum, count := 0.0, 0
		for r := 0; r < n; r++ {
			v := t.rows[r].cells[c]
			ref := t.rows[r].cells[refCols[c]]
			if v <= 0 || ref <= 0 {
				continue
			}
			logSum += math.Log(v / ref)
			count++
		}
		if count == 0 {
			cells[c] = "-"
			continue
		}
		cells[c] = fmt.Sprintf("%.3f", math.Exp(logSum/float64(count)))
	}
	t.AddTextRow(label, cells...)
}

// Render writes the table as aligned ASCII.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns)+1)
	widths[0] = len("Design")
	for _, r := range t.rows {
		if len(r.label) > widths[0] {
			widths[0] = len(r.label)
		}
	}
	cells := make([][]string, len(t.rows))
	for ri, r := range t.rows {
		cells[ri] = make([]string, len(t.Columns))
		for c := range t.Columns {
			s := r.text[c]
			if s == "" {
				s = formatCell(r.cells[c])
			}
			cells[ri][c] = s
		}
	}
	for c, h := range t.Columns {
		widths[c+1] = len(h)
		for ri := range t.rows {
			if l := len(cells[ri][c]); l > widths[c+1] {
				widths[c+1] = l
			}
		}
	}
	total := widths[0]
	for _, wd := range widths[1:] {
		total += wd + 2
	}
	if t.Title != "" {
		fmt.Fprintln(w, t.Title)
	}
	fmt.Fprintln(w, strings.Repeat("=", total))
	fmt.Fprintf(w, "%-*s", widths[0], "Design")
	for c, h := range t.Columns {
		fmt.Fprintf(w, "  %*s", widths[c+1], h)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", total))
	for ri, r := range t.rows {
		fmt.Fprintf(w, "%-*s", widths[0], r.label)
		for c := range t.Columns {
			fmt.Fprintf(w, "  %*s", widths[c+1], cells[ri][c])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, strings.Repeat("=", total))
}

// RenderCSV writes the table as CSV for downstream plotting.
func (t *Table) RenderCSV(w io.Writer) {
	fmt.Fprintf(w, "design,%s\n", strings.Join(t.Columns, ","))
	for _, r := range t.rows {
		parts := make([]string, 0, len(t.Columns)+1)
		parts = append(parts, r.label)
		for c := range t.Columns {
			s := r.text[c]
			if s == "" {
				s = formatCell(r.cells[c])
			}
			parts = append(parts, s)
		}
		fmt.Fprintln(w, strings.Join(parts, ","))
	}
}

func formatCell(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e9:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}
