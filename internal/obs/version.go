package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// BuildInfo identifies the running binary: the module version, the VCS
// revision it was built from, and the Go toolchain. Fields that the build
// did not stamp (e.g. a test binary, or a build outside a git checkout)
// are "unknown".
type BuildInfo struct {
	// Version is the main module's version ("(devel)" for source builds).
	Version string `json:"version"`
	// Revision is the VCS commit hash, with a "-dirty" suffix when the
	// working tree was modified.
	Revision string `json:"revision"`
	// BuildTime is the VCS commit timestamp (RFC 3339), when stamped.
	BuildTime string `json:"build_time,omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
}

var (
	buildOnce sync.Once
	buildInfo BuildInfo
)

// Build returns the binary's build identity, read once from
// runtime/debug.ReadBuildInfo.
func Build() BuildInfo {
	buildOnce.Do(func() {
		buildInfo = BuildInfo{Version: "unknown", Revision: "unknown", GoVersion: runtime.Version()}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		if bi.Main.Version != "" {
			buildInfo.Version = bi.Main.Version
		}
		dirty := false
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfo.Revision = s.Value
			case "vcs.time":
				buildInfo.BuildTime = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if dirty && buildInfo.Revision != "unknown" {
			buildInfo.Revision += "-dirty"
		}
	})
	return buildInfo
}

// RegisterBuildInfo adds the constant build-identity family (value 1,
// identity in the labels — the Prometheus *_info convention). Nil-safe.
func RegisterBuildInfo(r *Registry) {
	if r == nil {
		return
	}
	b := Build()
	r.GaugeFunc("dscts_build_info",
		"Build identity of the running dsctsd (constant 1; identity in the labels).",
		func() float64 { return 1 },
		L("version", b.Version), L("revision", b.Revision), L("go_version", b.GoVersion))
}
