package obs

import (
	"runtime"
	"sync"
	"time"
)

// memCache caches one runtime.ReadMemStats snapshot per scrape window:
// ReadMemStats stops the world briefly, and a scrape reads several heap
// families, so all of them share a snapshot no older than memCacheTTL.
type memCache struct {
	mu   sync.Mutex
	at   time.Time
	stat runtime.MemStats
}

const memCacheTTL = time.Second

func (m *memCache) get() *runtime.MemStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	if time.Since(m.at) > memCacheTTL {
		runtime.ReadMemStats(&m.stat)
		m.at = time.Now()
	}
	return &m.stat
}

// RegisterRuntime adds the Go runtime families (goroutines, GOMAXPROCS,
// heap sizes and object count, GC cycle count and cumulative pause time)
// to the registry. Values are read at scrape time; heap families share one
// cached MemStats snapshot per second. Nil-safe.
func RegisterRuntime(r *Registry) {
	if r == nil {
		return
	}
	mc := &memCache{}
	r.GaugeFunc("go_goroutines", "Number of goroutines that currently exist.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_gomaxprocs", "GOMAXPROCS: the scheduler's processor limit.",
		func() float64 { return float64(runtime.GOMAXPROCS(0)) })
	r.GaugeFunc("go_heap_alloc_bytes", "Bytes of allocated heap objects.",
		func() float64 { return float64(mc.get().HeapAlloc) })
	r.GaugeFunc("go_heap_sys_bytes", "Bytes of heap memory obtained from the OS.",
		func() float64 { return float64(mc.get().HeapSys) })
	r.GaugeFunc("go_heap_objects", "Number of allocated heap objects.",
		func() float64 { return float64(mc.get().HeapObjects) })
	r.CounterFunc("go_gc_cycles_total", "Completed GC cycles since process start.",
		func() float64 { return float64(mc.get().NumGC) })
	r.CounterFunc("go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.",
		func() float64 { return float64(mc.get().PauseTotalNs) / 1e9 })
}
