// Package obs is the dependency-free observability substrate of the dscts
// service: a metrics registry (counters, gauges, histograms with
// exponential latency buckets) rendered in Prometheus text exposition
// format, a per-job span tracer fed by the flow's progress events, and a
// Go-runtime collector. It deliberately has no third-party dependencies —
// the container this repo builds in bakes only the standard library — and
// its hot-path instruments (Counter.Add, Gauge.Set, Histogram.Observe) are
// single atomic operations: no locks, no allocations, safe from any
// goroutine.
//
// Measurement honesty: a nil *Registry is a valid no-op. Every constructor
// on a nil registry returns a nil instrument, and every method of a nil
// instrument returns immediately, so code can thread one optional registry
// through unconditionally — `reg.Counter(...)` then `c.Inc()` — and a
// disabled build pays only a nil check per event.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension (a Prometheus label pair). Instruments
// registered under the same family name with different label values render
// as separate samples of one family.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for Label{k, v}.
func L(k, v string) Label { return Label{Key: k, Value: v} }

// metricKind is the Prometheus TYPE of a family.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// sample is one rendered line: a label set and a value source.
type sample struct {
	labels []Label
	value  func() float64
	hist   *Histogram // non-nil for histogram families
	// counterOwner backs CounterOf's lookup-or-create: the instrument the
	// value closure reads, returned on a repeat registration.
	counterOwner *Counter
}

// family is one named metric family with its registered samples.
type family struct {
	name string
	help string
	kind metricKind

	mu      sync.Mutex
	samples []*sample
	byKey   map[string]*sample // label-set key -> sample
}

// Registry holds metric families and renders them in Prometheus text
// format. The zero value is NOT usable; construct with NewRegistry. A nil
// *Registry is the disabled no-op (see the package comment).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family returns (creating if needed) the named family, enforcing that one
// name keeps one TYPE and HELP for the registry's lifetime.
func (r *Registry) family(name, help string, kind metricKind) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, byKey: make(map[string]*sample)}
		r.families[name] = f
		r.order = append(r.order, name)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, f.kind))
	}
	return f
}

// labelKey canonicalizes a label set for duplicate detection.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte(',')
	}
	return b.String()
}

// add registers one sample under the family, panicking on an exact
// duplicate (same name and label set): that is always a wiring bug.
func (f *family) add(labels []Label, s *sample) *sample {
	f.mu.Lock()
	defer f.mu.Unlock()
	key := labelKey(labels)
	if _, dup := f.byKey[key]; dup {
		panic(fmt.Sprintf("obs: duplicate registration of %s{%s}", f.name, key))
	}
	s.labels = labels
	f.byKey[key] = s
	f.samples = append(f.samples, s)
	return s
}

// lookup returns the sample for a label set, or nil.
func (f *family) lookup(labels []Label) *sample {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.byKey[labelKey(labels)]
}

// Counter is a monotonically increasing integer metric. All methods are
// safe on a nil receiver (no-op).
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must be >= 0 for Prometheus semantics; not enforced).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Counter registers (or reuses) a counter sample.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	f := r.family(name, help, kindCounter)
	c := &Counter{}
	f.add(labels, &sample{value: func() float64 { return float64(c.v.Load()) }})
	return c
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the bridge that keeps /metrics and an existing atomic (e.g. a
// /stats counter) sharing one source of truth instead of double-counting.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.family(name, help, kindCounter).add(labels, &sample{value: fn})
}

// Gauge is a settable instantaneous value. Safe on a nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add increments by delta (CAS loop; gauges are not hot-path instruments).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the gauge (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Gauge registers a settable gauge sample.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	g := &Gauge{}
	r.family(name, help, kindGauge).add(labels, &sample{value: g.Value})
	return g
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.family(name, help, kindGauge).add(labels, &sample{value: fn})
}

// Histogram is a cumulative-bucket latency/size distribution. Observe is a
// binary search plus two atomic adds: lock-free and allocation-free. Safe
// on a nil receiver.
type Histogram struct {
	bounds  []float64 // upper bounds, ascending, exclusive of +Inf
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bound >= v (Prometheus buckets are `le`, inclusive upper bounds).
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.bounds) {
		h.buckets[i].Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Histogram registers a histogram sample with the given bucket upper
// bounds (ascending; +Inf is implicit). nil buckets use LatencyBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = LatencyBuckets
	}
	h := &Histogram{bounds: bounds, buckets: make([]atomic.Int64, len(bounds))}
	f := r.family(name, help, kindHistogram)
	f.add(labels, &sample{hist: h})
	return h
}

// HistogramOf returns the already registered histogram for a label set, or
// registers a new one — the lazily-populated "vec" pattern for label values
// not known at wiring time. The lookup takes the family lock; callers on a
// hot path should hold the returned *Histogram instead of re-resolving.
func (r *Registry) HistogramOf(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	f := r.family(name, help, kindHistogram)
	if s := f.lookup(labels); s != nil {
		return s.hist
	}
	if bounds == nil {
		bounds = LatencyBuckets
	}
	h := &Histogram{bounds: bounds, buckets: make([]atomic.Int64, len(bounds))}
	f.add(labels, &sample{hist: h})
	return h
}

// CounterOf returns the already registered counter for a label set, or
// registers a new one (see HistogramOf).
func (r *Registry) CounterOf(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	f := r.family(name, help, kindCounter)
	f.mu.Lock()
	key := labelKey(labels)
	if s, ok := f.byKey[key]; ok {
		f.mu.Unlock()
		return s.counterOwner
	}
	c := &Counter{}
	s := &sample{labels: labels, value: func() float64 { return float64(c.v.Load()) }, counterOwner: c}
	f.byKey[key] = s
	f.samples = append(f.samples, s)
	f.mu.Unlock()
	return c
}

// ExpBuckets returns n exponentially growing bucket bounds starting at
// start with the given factor: start, start*factor, ...
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets is the default histogram layout for request and phase
// latencies, in seconds: 100 µs doubling up to ~210 s, wide enough for a
// cache hit and a million-sink partitioned synthesis on one scale.
var LatencyBuckets = ExpBuckets(100e-6, 2, 22)

// WritePrometheus renders every family in Prometheus text exposition
// format (version 0.0.4), families sorted by name, samples in registration
// order. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		f.mu.Lock()
		samples := append([]*sample(nil), f.samples...)
		f.mu.Unlock()
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range samples {
			if f.kind == kindHistogram {
				writeHistogram(&b, f.name, s)
				continue
			}
			b.WriteString(f.name)
			writeLabels(&b, s.labels, "")
			b.WriteByte(' ')
			b.WriteString(formatValue(s.value()))
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders the cumulative _bucket/_sum/_count triplet.
func writeHistogram(b *strings.Builder, name string, s *sample) {
	h := s.hist
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += h.buckets[i].Load()
		b.WriteString(name)
		b.WriteString("_bucket")
		writeLabels(b, s.labels, formatValue(bound))
		b.WriteByte(' ')
		b.WriteString(strconv.FormatInt(cum, 10))
		b.WriteByte('\n')
	}
	count := h.count.Load()
	b.WriteString(name)
	b.WriteString("_bucket")
	writeLabels(b, s.labels, "+Inf")
	b.WriteByte(' ')
	b.WriteString(strconv.FormatInt(count, 10))
	b.WriteByte('\n')
	b.WriteString(name)
	b.WriteString("_sum")
	writeLabels(b, s.labels, "")
	b.WriteByte(' ')
	b.WriteString(formatValue(h.Sum()))
	b.WriteByte('\n')
	b.WriteString(name)
	b.WriteString("_count")
	writeLabels(b, s.labels, "")
	b.WriteByte(' ')
	b.WriteString(strconv.FormatInt(count, 10))
	b.WriteByte('\n')
}

// writeLabels renders {k="v",...}, appending le when non-empty.
func writeLabels(b *strings.Builder, labels []Label, le string) {
	if len(labels) == 0 && le == "" {
		return
	}
	b.WriteByte('{')
	first := true
	for _, l := range labels {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if le != "" {
		if !first {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// formatValue renders a float the way Prometheus clients do: shortest
// round-trip representation, +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Families returns the registered family names, sorted. Nil-safe.
func (r *Registry) Families() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := append([]string(nil), r.order...)
	r.mu.Unlock()
	sort.Strings(out)
	return out
}
