package obs

import (
	"sort"
	"sync"
	"time"
)

// Tracer records one job's phase timeline from the flow's begin/end
// progress events (core.Options.Progress): each phase opens with a begin
// event and closes with an end event carrying the engine-measured elapsed
// time; point events (sweep points, per-region or per-cluster completions,
// per-corner completions) are counted against the phase they belong to.
// A nil *Tracer is a no-op. Safe for concurrent use — progress callbacks
// may arrive from multiple goroutines.
type Tracer struct {
	mu    sync.Mutex
	start time.Time
	open  map[string]time.Time
	spans []Span
	pts   map[string]int
}

// Span is one closed phase interval of a job timeline.
type Span struct {
	// Phase is the flow phase name (route, insert, refine, eval, corners,
	// partition, stitch, eco, sweep).
	Phase string `json:"phase"`
	// StartMS is the phase's offset from the tracer's first event, ms.
	StartMS float64 `json:"start_ms"`
	// DurMS is the phase duration, ms: the engine-reported elapsed when the
	// end event carried one (deterministic), wall-clock since begin
	// otherwise.
	DurMS float64 `json:"dur_ms"`
}

// PhaseTotal aggregates a job's spans per phase — the phase-by-phase
// breakdown returned in job results and fed to the per-phase histograms.
type PhaseTotal struct {
	Phase string `json:"phase"`
	// Count is the number of closed spans (a partitioned ECO can re-enter a
	// phase; the monolithic flow closes each once).
	Count int `json:"count"`
	// Points is the number of point events (sweep points, regions, corners,
	// dirty clusters) the phase reported.
	Points int `json:"points,omitempty"`
	// MS is the summed span duration, ms.
	MS float64 `json:"ms"`
}

// NewTracer returns an empty tracer; the timeline origin is the first
// event.
func NewTracer() *Tracer {
	return &Tracer{open: make(map[string]time.Time), pts: make(map[string]int)}
}

// now returns the current time, pinning the timeline origin on first use.
func (t *Tracer) now() time.Time {
	n := time.Now()
	if t.start.IsZero() {
		t.start = n
	}
	return n
}

// Begin opens a phase span.
func (t *Tracer) Begin(phase string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.open[phase] = t.now()
	t.mu.Unlock()
}

// End closes a phase span. elapsed, when positive, is the engine-measured
// duration (preferred: it is what the flow itself reports in Outcome);
// zero falls back to wall-clock since Begin. An End without a Begin
// records a span at the current offset with the given elapsed.
func (t *Tracer) End(phase string, elapsed time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	n := t.now()
	began, ok := t.open[phase]
	if ok {
		delete(t.open, phase)
	} else {
		began = n
	}
	dur := elapsed
	if dur <= 0 && ok {
		dur = n.Sub(began)
	}
	t.spans = append(t.spans, Span{
		Phase:   phase,
		StartMS: float64(began.Sub(t.start)) / float64(time.Millisecond),
		DurMS:   float64(dur) / float64(time.Millisecond),
	})
	t.mu.Unlock()
}

// Point counts one point event against a phase (open or not).
func (t *Tracer) Point(phase string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.now()
	t.pts[phase]++
	t.mu.Unlock()
}

// Spans snapshots the closed spans in completion order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]Span(nil), t.spans...)
	t.mu.Unlock()
	return out
}

// Totals aggregates the closed spans per phase, ordered by first
// completion; point-only phases (e.g. DSE sweeps) appear with Count 0.
func (t *Tracer) Totals() []PhaseTotal {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	idx := make(map[string]int)
	var out []PhaseTotal
	for _, s := range t.spans {
		i, ok := idx[s.Phase]
		if !ok {
			i = len(out)
			idx[s.Phase] = i
			out = append(out, PhaseTotal{Phase: s.Phase})
		}
		out[i].Count++
		out[i].MS += s.DurMS
	}
	// Phases that only ever reported points still deserve a row.
	var pointOnly []string
	for ph := range t.pts {
		if _, ok := idx[ph]; !ok {
			pointOnly = append(pointOnly, ph)
		}
	}
	sort.Strings(pointOnly)
	for _, ph := range pointOnly {
		idx[ph] = len(out)
		out = append(out, PhaseTotal{Phase: ph})
	}
	for ph, n := range t.pts {
		out[idx[ph]].Points = n
	}
	return out
}
