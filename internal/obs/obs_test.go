package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "h")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatalf("nil counter value = %d", c.Value())
	}
	g := r.Gauge("g", "h")
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatalf("nil gauge value = %v", g.Value())
	}
	h := r.Histogram("h_seconds", "h", nil)
	h.Observe(0.5)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil histogram recorded")
	}
	r.CounterFunc("f_total", "h", func() float64 { return 1 })
	r.GaugeFunc("f", "h", func() float64 { return 1 })
	RegisterRuntime(r)
	RegisterBuildInfo(r)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry rendered %q, err %v", sb.String(), err)
	}
	if r.Families() != nil {
		t.Fatalf("nil registry has families")
	}
	var tr *Tracer
	tr.Begin("route")
	tr.End("route", time.Second)
	tr.Point("route")
	if tr.Spans() != nil || tr.Totals() != nil {
		t.Fatalf("nil tracer recorded")
	}
}

func TestCounterGaugeRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("dscts_widgets_total", "Widgets made.", L("kind", "a"))
	c2 := r.Counter("dscts_widgets_total", "Widgets made.", L("kind", "b"))
	c.Add(3)
	c2.Inc()
	g := r.Gauge("dscts_depth", "Queue depth.")
	g.Set(7)
	g.Add(-2)
	r.GaugeFunc("dscts_temp", "From a func.", func() float64 { return 1.5 })

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP dscts_widgets_total Widgets made.",
		"# TYPE dscts_widgets_total counter",
		`dscts_widgets_total{kind="a"} 3`,
		`dscts_widgets_total{kind="b"} 1`,
		"# TYPE dscts_depth gauge",
		"dscts_depth 5",
		"dscts_temp 1.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in rendering:\n%s", want, out)
		}
	}
	// One family header even with two children.
	if n := strings.Count(out, "# TYPE dscts_widgets_total"); n != 1 {
		t.Errorf("family header appears %d times", n)
	}
}

func TestHistogramBucketsAndRender(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.001, 0.01, 0.1}, L("phase", "route"))
	for _, v := range []float64{0.0005, 0.001, 0.005, 0.05, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); math.Abs(got-5.0565) > 1e-12 {
		t.Fatalf("sum = %v", got)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// le bounds are inclusive and cumulative: 0.001 holds 0.0005 AND 0.001.
	for _, want := range []string{
		`lat_seconds_bucket{phase="route",le="0.001"} 2`,
		`lat_seconds_bucket{phase="route",le="0.01"} 3`,
		`lat_seconds_bucket{phase="route",le="0.1"} 4`,
		`lat_seconds_bucket{phase="route",le="+Inf"} 5`,
		`lat_seconds_count{phase="route"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in rendering:\n%s", want, out)
		}
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(100e-6, 2, 4)
	want := []float64{100e-6, 200e-6, 400e-6, 800e-6}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-18 {
			t.Fatalf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
	if len(LatencyBuckets) != 22 {
		t.Fatalf("LatencyBuckets has %d bounds", len(LatencyBuckets))
	}
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "h")
	h := r.Histogram("h_seconds", "h", nil)
	g := r.Gauge("g", "h")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(0.001)
				g.Add(1)
			}
		}()
	}
	// Concurrent scrapes must not race with writers.
	for i := 0; i < 20; i++ {
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 || g.Value() != 8000 {
		t.Fatalf("counter %d, histogram %d, gauge %v; want 8000 each", c.Value(), h.Count(), g.Value())
	}
	if got := h.Sum(); math.Abs(got-8.0) > 1e-9 {
		t.Fatalf("histogram sum = %v, want 8", got)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "h", L("a", "1"))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("dup_total", "h", L("a", "1"))
}

func TestCounterOfAndHistogramOfReuse(t *testing.T) {
	r := NewRegistry()
	a := r.CounterOf("http_total", "h", L("code", "200"))
	b := r.CounterOf("http_total", "h", L("code", "200"))
	if a != b {
		t.Fatal("CounterOf created a second instrument for the same labels")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("reused counter does not share state")
	}
	h1 := r.HistogramOf("ph_seconds", "h", nil, L("phase", "route"))
	h2 := r.HistogramOf("ph_seconds", "h", nil, L("phase", "route"))
	if h1 != h2 {
		t.Fatal("HistogramOf created a second instrument for the same labels")
	}
}

func TestParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "h").Add(42)
	r.Gauge("b", "h", L("k", "v")).Set(1.25)
	h := r.Histogram("c_seconds", "h", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(2)
	RegisterRuntime(r)
	RegisterBuildInfo(r)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if samples["a_total"] != 42 {
		t.Errorf("a_total = %v", samples["a_total"])
	}
	if samples[`b{k="v"}`] != 1.25 {
		t.Errorf("b = %v", samples[`b{k="v"}`])
	}
	if samples[`c_seconds_bucket{le="0.1"}`] != 1 || samples[`c_seconds_bucket{le="+Inf"}`] != 2 {
		t.Errorf("histogram buckets wrong: %v", samples)
	}
	if samples["c_seconds_count"] != 2 {
		t.Errorf("c_seconds_count = %v", samples["c_seconds_count"])
	}
	fams := FamilyNames(samples)
	want := map[string]bool{"a_total": true, "b": true, "c_seconds": true, "go_goroutines": true, "dscts_build_info": true}
	got := make(map[string]bool, len(fams))
	for _, f := range fams {
		got[f] = true
	}
	for f := range want {
		if !got[f] {
			t.Errorf("family %q missing from %v", f, fams)
		}
	}
	if got["c_seconds_bucket"] || got["c_seconds_count"] || got["c_seconds_sum"] {
		t.Errorf("histogram suffixes leaked into families: %v", fams)
	}
}

func TestBuildInfoPopulated(t *testing.T) {
	b := Build()
	if b.Version == "" || b.Revision == "" || b.GoVersion == "" {
		t.Fatalf("build info has empty fields: %+v", b)
	}
}
