package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ParseText parses a Prometheus text exposition payload into a flat
// sample map: full sample name (labels included, exactly as rendered) to
// value. It understands what WritePrometheus emits — HELP/TYPE comments,
// counter/gauge lines, histogram _bucket/_sum/_count triplets — which is
// also the subset every real exporter emits, so `benchgen -load` and
// `cismoke metrics` can scrape any conforming endpoint.
func ParseText(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		// The value is the last space-separated field; the sample name is
		// everything before it (label values may themselves contain spaces).
		cut := strings.LastIndexByte(text, ' ')
		if cut <= 0 {
			return nil, fmt.Errorf("obs: metrics line %d: no value in %q", line, text)
		}
		name := strings.TrimSpace(text[:cut])
		v, err := strconv.ParseFloat(text[cut+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("obs: metrics line %d: bad value in %q: %w", line, text, err)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("obs: metrics line %d: duplicate sample %q", line, name)
		}
		out[name] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// FamilyNames reduces a ParseText sample map to its distinct family names,
// sorted: the label section is dropped and the histogram series suffixes
// (_bucket, _sum, _count) collapse into their base family.
func FamilyNames(samples map[string]float64) []string {
	set := make(map[string]bool)
	for name := range samples {
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, suf); base != name {
				name = base
				break
			}
		}
		set[name] = true
	}
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
