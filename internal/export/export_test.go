package export

import (
	"bytes"
	"strings"
	"testing"

	"dscts/internal/bench"
	"dscts/internal/core"
	"dscts/internal/def"
	"dscts/internal/tech"
)

func TestWriteDEFFullFlow(t *testing.T) {
	tc := tech.ASAP7()
	d, err := bench.ByID("C4")
	if err != nil {
		t.Fatal(err)
	}
	p, err := bench.Generate(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := core.Synthesize(p.Root, p.Sinks, tc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	cells, err := WriteDEF(&buf, out.Tree, p.Die, p.Macros, tc, Options{DesignName: "riscv32i_clk"})
	if err != nil {
		t.Fatal(err)
	}
	bufs, tsvs := out.Tree.Counts()
	if len(cells.Cells) != bufs+tsvs {
		t.Fatalf("legalized %d cells for %d+%d in tree", len(cells.Cells), bufs, tsvs)
	}

	parsed, err := def.Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("exported DEF does not parse back: %v", err)
	}
	if parsed.Design != "riscv32i_clk" {
		t.Errorf("design %q", parsed.Design)
	}
	// Components: sinks + buffers + nTSVs.
	want := len(p.Sinks) + bufs + tsvs
	if len(parsed.Components) != want {
		t.Fatalf("%d components, want %d", len(parsed.Components), want)
	}
	// Stage nets: one per buffer plus the root net.
	if len(parsed.Nets) != bufs+1 {
		t.Fatalf("%d nets, want %d", len(parsed.Nets), bufs+1)
	}
	// Every sink appears on exactly one net.
	sinkNets := map[string]int{}
	for _, n := range parsed.Nets {
		for _, c := range n.Conns {
			if strings.HasPrefix(c.Comp, "ff_") {
				sinkNets[c.Comp]++
			}
		}
	}
	if len(sinkNets) != len(p.Sinks) {
		t.Fatalf("%d sinks connected, want %d", len(sinkNets), len(p.Sinks))
	}
	for name, cnt := range sinkNets {
		if cnt != 1 {
			t.Fatalf("sink %s on %d nets", name, cnt)
		}
	}
	// Every buffer drives exactly one net (pin Y appears once) and loads
	// exactly one (pin A once).
	pinCount := map[string]map[string]int{}
	for _, n := range parsed.Nets {
		for _, c := range n.Conns {
			if strings.HasPrefix(c.Comp, "clk_buffer_") {
				if pinCount[c.Comp] == nil {
					pinCount[c.Comp] = map[string]int{}
				}
				pinCount[c.Comp][c.Pin]++
			}
		}
	}
	if len(pinCount) != bufs {
		t.Fatalf("%d buffers in nets, want %d", len(pinCount), bufs)
	}
	for name, pins := range pinCount {
		if pins["A"] != 1 || pins["Y"] != 1 {
			t.Fatalf("buffer %s pins %v", name, pins)
		}
	}
}

func TestToDEFRejectsInvalidTree(t *testing.T) {
	tc := tech.ASAP7()
	d, _ := bench.ByID("C4")
	p, err := bench.Generate(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := core.Synthesize(p.Root, p.Sinks, tc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bad := out.Tree.Clone()
	bad.Nodes[1].Parent = 1 // corrupt
	var buf bytes.Buffer
	if _, err := WriteDEF(&buf, bad, p.Die, nil, tc, Options{}); err == nil {
		t.Fatal("corrupt tree must be rejected")
	}
}
