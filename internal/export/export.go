// Package export writes a synthesized clock tree back out as a placed DEF:
// the original sink components, the legalized buffer and nTSV cells, and
// the clock net split into per-stage nets (one net per driver, the way a
// physical-design tool expects a buffered clock to appear).
package export

import (
	"fmt"
	"io"

	"dscts/internal/ctree"
	"dscts/internal/def"
	"dscts/internal/geom"
	"dscts/internal/legal"
	"dscts/internal/tech"
)

// Options configures the export.
type Options struct {
	DesignName string
	DBU        int
	// SinkMacro names the flip-flop macro for sink components.
	SinkMacro string
}

// ToDEF lowers the tree plus its legalized cells into a DEF file object.
// The stage structure follows the buffers: the root drives net "clk"; each
// buffer b_i drives net "clk_stage_<i>"; every wire vertex belongs to the
// net of its nearest driving buffer above.
func ToDEF(t *ctree.Tree, cells *legal.Result, die geom.BBox, tc *tech.Tech, opt Options) (*def.File, error) {
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("export: %w", err)
	}
	if opt.DesignName == "" {
		opt.DesignName = "dscts_clock"
	}
	if opt.DBU <= 0 {
		opt.DBU = 1000
	}
	if opt.SinkMacro == "" {
		opt.SinkMacro = "DFFHQNx1_ASAP7_75t_R"
	}
	f := &def.File{Design: opt.DesignName, DBU: opt.DBU, Die: die}

	// Inserted cells (already legalized).
	bufOfNode := map[int]string{} // tree node -> node-buffer cell name
	midOfEdge := map[int]string{} // tree node (edge) -> mid buffer name
	for _, c := range cells.Cells {
		f.Components = append(f.Components, def.Component{
			Name: c.Name, Macro: c.Macro, Pos: c.Got,
		})
		if c.Kind == legal.KindBuffer {
			// Distinguish mid-edge vs node buffers by the wiring.
			if t.Nodes[c.TreeNode].Wiring.BufMid && !seenMid(midOfEdge, c.TreeNode) {
				midOfEdge[c.TreeNode] = c.Name
			} else {
				bufOfNode[c.TreeNode] = c.Name
			}
		}
	}

	// Sinks.
	for _, sid := range t.Sinks() {
		n := &t.Nodes[sid]
		f.Components = append(f.Components, def.Component{
			Name:  fmt.Sprintf("ff_%d", n.SinkIdx),
			Macro: opt.SinkMacro,
			Pos:   n.Pos,
		})
	}

	// Stage nets. Walk the tree tracking the current driving net; a
	// buffer terminates the net (its input pin) and opens a new one.
	f.Pins = append(f.Pins, def.Pin{
		Name: "clk", Net: "clk", Direction: "INPUT", Pos: t.Nodes[t.Root()].Pos,
	})
	nets := map[string]*def.Net{}
	getNet := func(name string) *def.Net {
		if n, ok := nets[name]; ok {
			return n
		}
		n := &def.Net{Name: name}
		nets[name] = n
		f.Nets = append(f.Nets, def.Net{}) // placeholder, fixed below
		return n
	}
	rootNet := getNet("clk")
	rootNet.Conns = append(rootNet.Conns, def.NetConn{Comp: "PIN", Pin: "clk"})
	stageSeq := 0
	var walk func(id int, netName string)
	walk = func(id int, netName string) {
		n := &t.Nodes[id]
		cur := netName
		if id != t.Root() {
			if mid, ok := midOfEdge[id]; ok {
				// Mid-edge buffer: input on the current net, output opens
				// a new stage for everything from here down.
				getNet(cur).Conns = append(getNet(cur).Conns, def.NetConn{Comp: mid, Pin: "A"})
				stageSeq++
				cur = fmt.Sprintf("clk_stage_%d", stageSeq)
				getNet(cur).Conns = append(getNet(cur).Conns, def.NetConn{Comp: mid, Pin: "Y"})
			}
			if n.Kind == ctree.KindSink {
				getNet(cur).Conns = append(getNet(cur).Conns, def.NetConn{
					Comp: fmt.Sprintf("ff_%d", n.SinkIdx), Pin: "CLK",
				})
				return
			}
		}
		if name, ok := bufOfNode[id]; ok {
			getNet(cur).Conns = append(getNet(cur).Conns, def.NetConn{Comp: name, Pin: "A"})
			stageSeq++
			cur = fmt.Sprintf("clk_stage_%d", stageSeq)
			getNet(cur).Conns = append(getNet(cur).Conns, def.NetConn{Comp: name, Pin: "Y"})
		}
		for _, c := range n.Children {
			walk(c, cur)
		}
	}
	walk(t.Root(), "clk")

	// Materialize nets in deterministic creation order.
	f.Nets = f.Nets[:0]
	order := []string{"clk"}
	for i := 1; i <= stageSeq; i++ {
		order = append(order, fmt.Sprintf("clk_stage_%d", i))
	}
	for _, name := range order {
		if n, ok := nets[name]; ok {
			f.Nets = append(f.Nets, *n)
		}
	}
	return f, nil
}

func seenMid(m map[int]string, node int) bool {
	_, ok := m[node]
	return ok
}

// WriteDEF is the one-call convenience: legalize and write.
func WriteDEF(w io.Writer, t *ctree.Tree, die geom.BBox, macros []geom.BBox, tc *tech.Tech, opt Options) (*legal.Result, error) {
	cells, err := legal.Legalize(t, die, macros, tc, legal.Options{})
	if err != nil {
		return nil, err
	}
	f, err := ToDEF(t, cells, die, tc, opt)
	if err != nil {
		return nil, err
	}
	if err := f.Write(w); err != nil {
		return nil, err
	}
	return cells, nil
}
