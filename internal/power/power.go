// Package power estimates clock-tree dynamic power — the quantity the
// paper's wirelength objective stands in for ("the wirelength is still
// largely determined by the clock routing topology and impacts power
// significantly", Sec. III-B). The clock net switches every cycle, so
//
//	P_dyn  = f · Vdd² · C_total      (switching, α = 1 for clocks)
//	P_int  = f · Σ E_buf             (buffer internal energy)
//
// with C_total decomposed into front wire, back wire, nTSV, buffer input
// and sink pin capacitance, letting experiments attribute power to the
// side assignment.
package power

import (
	"fmt"

	"dscts/internal/ctree"
	"dscts/internal/tech"
)

// Params are the electrical operating conditions.
type Params struct {
	FreqGHz float64 // clock frequency
	Vdd     float64 // supply voltage (V)
	// BufEnergyFJ is the internal (short-circuit + parasitic) energy per
	// buffer toggle in fJ; 0 uses a default derived from the buffer size.
	BufEnergyFJ float64
}

// DefaultParams returns 1 GHz at the ASAP7 nominal 0.7 V.
func DefaultParams() Params {
	return Params{FreqGHz: 1.0, Vdd: 0.7, BufEnergyFJ: 2.0}
}

// Breakdown is the capacitance and power decomposition.
type Breakdown struct {
	// Capacitance components (fF).
	FrontWireCap float64
	BackWireCap  float64
	NTSVCap      float64
	BufInputCap  float64
	SinkPinCap   float64

	// Power components (mW). Note fF·GHz·V² = µW, reported in mW.
	SwitchingMW float64
	InternalMW  float64
	TotalMW     float64
}

// TotalCap returns the switched capacitance in fF.
func (b *Breakdown) TotalCap() float64 {
	return b.FrontWireCap + b.BackWireCap + b.NTSVCap + b.BufInputCap + b.SinkPinCap
}

// Estimate computes the power breakdown of an annotated clock tree.
func Estimate(t *ctree.Tree, tc *tech.Tech, p Params) (*Breakdown, error) {
	if p.FreqGHz <= 0 || p.Vdd <= 0 {
		return nil, fmt.Errorf("power: non-physical operating point %+v", p)
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("power: %w", err)
	}
	if p.BufEnergyFJ == 0 {
		p.BufEnergyFJ = 2.0
	}
	front, back, tsv, buf := tc.Front(), tc.Back(), tc.TSV, tc.Buf
	var b Breakdown
	buffers := 0
	for id := 1; id < t.Len(); id++ {
		n := &t.Nodes[id]
		l := t.EdgeLen(id)
		if n.Kind == ctree.KindSink {
			b.FrontWireCap += front.UnitCap * l
			b.SinkPinCap += tc.SinkCap
			continue
		}
		w := n.Wiring
		if w.WireSide == ctree.Back {
			b.BackWireCap += back.UnitCap * l
		} else {
			b.FrontWireCap += front.UnitCap * l
		}
		b.NTSVCap += float64(w.NTSVCount()) * tsv.Cap
		nb := w.BufferCount()
		if n.BufferAtNode {
			nb++
		}
		buffers += nb
		b.BufInputCap += float64(nb) * buf.InputCap
	}
	if t.Nodes[t.Root()].BufferAtNode {
		buffers++
		b.BufInputCap += buf.InputCap
	}
	// fF × GHz × V² = µW; /1000 → mW.
	b.SwitchingMW = b.TotalCap() * p.FreqGHz * p.Vdd * p.Vdd / 1000
	b.InternalMW = float64(buffers) * p.BufEnergyFJ * p.FreqGHz / 1000
	b.TotalMW = b.SwitchingMW + b.InternalMW
	return &b, nil
}
