package power

import (
	"math"
	"testing"

	"dscts/internal/bench"
	"dscts/internal/core"
	"dscts/internal/ctree"
	"dscts/internal/geom"
	"dscts/internal/tech"
)

func TestEstimateByHand(t *testing.T) {
	tc := tech.ASAP7()
	// root --50µm front--> centroid --2µm leaf--> sink.
	tr := ctree.New(geom.Pt(0, 0))
	c := tr.AddCentroid(0, geom.Pt(50, 0), 0)
	tr.AddSink(c, geom.Pt(52, 0), 0)
	p := Params{FreqGHz: 2, Vdd: 0.7, BufEnergyFJ: 2}
	b, err := Estimate(tr, tc, p)
	if err != nil {
		t.Fatal(err)
	}
	front := tc.Front()
	wantFront := front.UnitCap * 52
	if math.Abs(b.FrontWireCap-wantFront) > 1e-9 {
		t.Errorf("front cap %v want %v", b.FrontWireCap, wantFront)
	}
	if b.SinkPinCap != tc.SinkCap || b.BackWireCap != 0 || b.NTSVCap != 0 || b.BufInputCap != 0 {
		t.Errorf("breakdown %+v", b)
	}
	wantSw := (wantFront + tc.SinkCap) * 2 * 0.49 / 1000
	if math.Abs(b.SwitchingMW-wantSw) > 1e-12 {
		t.Errorf("switching %v want %v", b.SwitchingMW, wantSw)
	}
	if b.InternalMW != 0 {
		t.Errorf("internal %v for bufferless tree", b.InternalMW)
	}
	if math.Abs(b.TotalMW-(b.SwitchingMW+b.InternalMW)) > 1e-15 {
		t.Error("total != sum")
	}
}

func TestEstimateCountsSides(t *testing.T) {
	tc := tech.ASAP7()
	tr := ctree.New(geom.Pt(0, 0))
	c := tr.AddCentroid(0, geom.Pt(100, 0), 0)
	tr.Nodes[c].Wiring = ctree.EdgeWiring{WireSide: ctree.Back, TSVUp: true, TSVDown: true}
	tr.Nodes[c].BufferAtNode = true
	tr.AddSink(c, geom.Pt(100, 0), 0)
	b, err := Estimate(tr, tc, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if b.BackWireCap <= 0 || b.FrontWireCap != 0 {
		t.Errorf("side attribution wrong: %+v", b)
	}
	if math.Abs(b.NTSVCap-2*tc.TSV.Cap) > 1e-12 {
		t.Errorf("ntsv cap %v", b.NTSVCap)
	}
	if b.BufInputCap != tc.Buf.InputCap {
		t.Errorf("buf cap %v", b.BufInputCap)
	}
	if b.InternalMW <= 0 {
		t.Error("buffer internal power missing")
	}
}

func TestEstimateErrors(t *testing.T) {
	tc := tech.ASAP7()
	tr := ctree.New(geom.Pt(0, 0))
	tr.AddCentroid(0, geom.Pt(1, 1), 0)
	if _, err := Estimate(tr, tc, Params{FreqGHz: 0, Vdd: 1}); err == nil {
		t.Error("zero frequency should error")
	}
	if _, err := Estimate(tr, tc, Params{FreqGHz: 1, Vdd: -1}); err == nil {
		t.Error("negative vdd should error")
	}
	bad := ctree.New(geom.Pt(0, 0))
	c := bad.AddCentroid(0, geom.Pt(5, 0), 0)
	s := bad.AddSink(c, geom.Pt(6, 0), 0)
	bad.Nodes[s].Wiring = ctree.EdgeWiring{WireSide: ctree.Back}
	if _, err := Estimate(bad, tc, DefaultParams()); err == nil {
		t.Error("invalid tree should error")
	}
}

// The back side saves wire power on the same topology only through lower
// *latency*-driven buffer counts — unit caps are similar — so total power
// of the double-side tree must come out in the same ballpark as the
// single-side tree, not wildly off (sanity envelope).
func TestEstimateFullFlowComparison(t *testing.T) {
	tc := tech.ASAP7()
	d, err := bench.ByID("C4")
	if err != nil {
		t.Fatal(err)
	}
	p, err := bench.Generate(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := core.Synthesize(p.Root, p.Sinks, tc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ss, err := core.Synthesize(p.Root, p.Sinks, tc, core.Options{Mode: core.SingleSide})
	if err != nil {
		t.Fatal(err)
	}
	bd, err := Estimate(ds.Tree, tc, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	bs, err := Estimate(ss.Tree, tc, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if bd.BackWireCap == 0 {
		t.Error("double-side tree shows no back-side cap")
	}
	if bs.BackWireCap != 0 {
		t.Error("single-side tree shows back-side cap")
	}
	ratio := bd.TotalMW / bs.TotalMW
	if ratio < 0.5 || ratio > 1.5 {
		t.Errorf("power ratio %v outside sanity envelope", ratio)
	}
	if bd.TotalMW <= 0 {
		t.Error("non-positive power")
	}
}
