// Package arena provides the per-job scratch-memory layer of the numeric
// core: typed bump allocators (Slab), reusable free lists (Pool), growable
// flat buffers (Grow/GrowZero) and a per-synthesis-job bundle (Job) that
// carries phase-keyed scratch state through cluster → route → insert →
// refine → eval.
//
// The contract, in one paragraph: arenas hold SCRATCH ONLY. Nothing reachable
// from a phase's public result may alias arena-backed memory — results are
// allocated fresh and escape to the caller, scratch dies (logically) at
// Reset. Reset never shrinks and never frees; it only rewinds offsets, so a
// recycled arena reaches a fixed point where steady-state jobs allocate
// almost nothing. Because every value read out of scratch is (re)written
// before use on each run, recycling cannot change any numeric result: the
// golden C1..C5 and workers-1-vs-N determinism suites pin that, and
// TestJobRecycleBitIdentical in this package's consumers re-checks it under
// the race detector.
package arena

import (
	"sync"
	"sync/atomic"
)

// Grow returns s with length n, reusing capacity when possible. Contents are
// unspecified (stale values from a previous use may be visible); callers must
// fully overwrite before reading. Use GrowZero when zeroed memory is needed.
func Grow[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	c := 2 * cap(s)
	if c < n {
		c = n
	}
	return make([]T, n, c)
}

// GrowZero returns s with length n and all elements set to the zero value.
func GrowZero[T any](s []T, n int) []T {
	s = Grow(s, n)
	clear(s)
	return s
}

// Slab is a typed bump allocator. Take hands out zeroed slices carved from
// large chunks; Reset rewinds the slab so the chunks are reused. Slices
// returned by Take stay valid (never moved, never handed to anyone else)
// until the next Reset; after Reset their contents may be overwritten by new
// Take calls, so no slice may be retained across a Reset. Take uses three-
// index slice expressions, so appending to a taken slice reallocates instead
// of silently aliasing the neighbour allocation.
type Slab[T any] struct {
	chunks [][]T
	cur    int // index of the chunk Take is carving from
	off    int // fill offset within chunks[cur]
	// next chunk size; doubles as the slab grows so arbitrarily sized jobs
	// settle in O(log n) chunk allocations.
	chunkSize int
}

// minChunk is the smallest chunk a Slab allocates, in elements.
const minChunk = 1024

// Take returns a zeroed slice of length n backed by the slab.
func (s *Slab[T]) Take(n int) []T {
	if n == 0 {
		return nil
	}
	for s.cur < len(s.chunks) {
		c := s.chunks[s.cur]
		if len(c)-s.off >= n {
			out := c[s.off : s.off+n : s.off+n]
			s.off += n
			clear(out)
			return out
		}
		s.cur++
		s.off = 0
	}
	// Out of capacity: grow with a fresh chunk large enough for n.
	if s.chunkSize < minChunk {
		s.chunkSize = minChunk
	}
	for s.chunkSize < n {
		s.chunkSize *= 2
	}
	c := make([]T, s.chunkSize)
	s.chunkSize *= 2
	s.chunks = append(s.chunks, c)
	s.cur = len(s.chunks) - 1
	out := c[0:n:n]
	s.off = n
	return out
}

// Reset rewinds the slab; all previously taken slices are dead and their
// backing memory will be handed out again.
func (s *Slab[T]) Reset() {
	s.cur = 0
	s.off = 0
}

// Cap returns the total element capacity across all chunks (for tests and
// metrics).
func (s *Slab[T]) Cap() int {
	total := 0
	for _, c := range s.chunks {
		total += len(c)
	}
	return total
}

// Pool is a concurrency-safe free list of *T scratch objects. Unlike
// sync.Pool it never drops entries under GC pressure, which is what makes
// the steady-state allocation counts of recycled jobs reproducible in
// benchmarks.
type Pool[T any] struct {
	mu   sync.Mutex
	free []*T
}

// Get pops a previously Put object, or returns nil when the pool is empty
// (the caller allocates a fresh one).
func (p *Pool[T]) Get() *T {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		x := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return x
	}
	return nil
}

// Put returns an object to the pool. The object must not be used after Put.
func (p *Pool[T]) Put(x *T) {
	if x == nil {
		return
	}
	p.mu.Lock()
	p.free = append(p.free, x)
	p.mu.Unlock()
}

// Phase keys a Job scratch slot to the pipeline stage that owns it. Each
// phase package defines its own scratch type and stores it in its slot; the
// arena package never needs to know the concrete types (which would invert
// the dependency direction).
type Phase uint8

const (
	PhaseCluster Phase = iota
	PhaseRoute
	PhaseInsert
	PhaseRefine
	PhaseEval
	numPhases
)

// Job is the scratch bundle owned by one synthesis job. It is recycled
// across ECO iterations (core.ECOState retains it) and across queued serve
// jobs (JobPool buckets it by size). A Job may be used by many goroutines of
// ONE synthesis run at a time — slot access is synchronized and each slot
// value pools its own per-worker scratch — but never by two runs at once;
// TryAcquire enforces that for retained ECO bases shared through an LRU.
type Job struct {
	busy  atomic.Bool
	hint  int
	mu    sync.Mutex
	slots [numPhases]any
}

// NewJob returns a Job sized (advisorily) for sinkHint sinks.
func NewJob(sinkHint int) *Job {
	return &Job{hint: sinkHint}
}

// SinkHint returns the advisory size the job was last used at.
func (j *Job) SinkHint() int {
	if j == nil {
		return 0
	}
	return j.hint
}

// SetSinkHint records the size of the run about to use the job.
func (j *Job) SetSinkHint(n int) {
	if j != nil && n > j.hint {
		j.hint = n
	}
}

// TryAcquire claims exclusive use of the job for one synthesis run. It
// returns false when another run holds the job — the caller then proceeds
// with a nil arena (heap fallback) rather than blocking or racing. A nil job
// is never acquirable.
func (j *Job) TryAcquire() bool {
	if j == nil {
		return false
	}
	return j.busy.CompareAndSwap(false, true)
}

// Release returns the job after TryAcquire.
func (j *Job) Release() {
	if j != nil {
		j.busy.Store(false)
	}
}

// GobEncode implements gob.GobEncoder as a no-op. A Job is pure scratch —
// nothing in it is part of any result — so a Job reachable from a persisted
// graph (e.g. core.Options.Arena inside a retained ECO base) serializes as
// nothing and decodes to an empty job that re-warms on first use. Without
// this, gob would reject the containing type outright: Job intentionally
// exports no fields.
func (j *Job) GobEncode() ([]byte, error) { return nil, nil }

// GobDecode implements gob.GobDecoder; see GobEncode.
func (j *Job) GobDecode([]byte) error { return nil }

// Slot returns the phase's scratch object, creating it with mk on first use.
// The concrete type S is chosen by the owning phase package; mixing types in
// one slot panics (it would be a phase-key collision, always a bug). A nil
// job returns nil, letting call sites fall back to their package-level pool.
func Slot[S any](j *Job, ph Phase, mk func() *S) *S {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if v := j.slots[ph]; v != nil {
		return v.(*S)
	}
	s := mk()
	j.slots[ph] = s
	return s
}

// JobPool is the size-bucketed free list that recycles Jobs across queued
// serve jobs. Buckets are powers of two over the sink-count hint, so a job
// warmed on a 50k-sink run is not handed to a 16-sink request (whose scratch
// would pin tens of MB) and vice versa.
type JobPool struct {
	mu      sync.Mutex
	buckets map[int][]*Job
	// perBucket caps retained jobs per bucket; beyond it Put drops the job
	// for the GC, bounding steady-state memory at (buckets × perBucket)
	// warm arenas.
	perBucket int

	gets, hits, puts uint64
}

// NewJobPool returns a pool keeping at most perBucket warm jobs per size
// bucket (<=0 means a default of 4).
func NewJobPool(perBucket int) *JobPool {
	if perBucket <= 0 {
		perBucket = 4
	}
	return &JobPool{buckets: map[int][]*Job{}, perBucket: perBucket}
}

func bucketOf(sinkHint int) int {
	b := 0
	for v := sinkHint; v > 0; v >>= 1 {
		b++
	}
	return b
}

// Get returns an acquired Job warmed at roughly sinkHint sinks, creating one
// when the bucket is empty. The returned job is exclusively owned by the
// caller until Put.
func (p *JobPool) Get(sinkHint int) *Job {
	if p == nil {
		return nil
	}
	b := bucketOf(sinkHint)
	p.mu.Lock()
	p.gets++
	var j *Job
	if free := p.buckets[b]; len(free) > 0 {
		j = free[len(free)-1]
		free[len(free)-1] = nil
		p.buckets[b] = free[:len(free)-1]
		p.hits++
	}
	p.mu.Unlock()
	if j == nil {
		j = NewJob(sinkHint)
	}
	j.SetSinkHint(sinkHint)
	j.busy.Store(true)
	return j
}

// Put releases the job back to its size bucket. Jobs that may be in an
// inconsistent state (a panic unwound through a phase mid-Take) must be
// dropped instead — just don't Put them.
func (p *JobPool) Put(j *Job) {
	if p == nil || j == nil {
		return
	}
	j.Release()
	b := bucketOf(j.hint)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.puts++
	if len(p.buckets[b]) < p.perBucket {
		p.buckets[b] = append(p.buckets[b], j)
	}
}

// Stats reports (gets, hits, puts) counters for tests and metrics.
func (p *JobPool) Stats() (gets, hits, puts uint64) {
	if p == nil {
		return 0, 0, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.gets, p.hits, p.puts
}
