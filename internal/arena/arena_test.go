package arena

import (
	"sync"
	"testing"
)

func TestGrowReusesCapacity(t *testing.T) {
	s := make([]int, 0, 16)
	g := Grow(s, 8)
	if len(g) != 8 || cap(g) != 16 {
		t.Fatalf("Grow: len=%d cap=%d, want 8/16", len(g), cap(g))
	}
	g2 := Grow(g, 32)
	if len(g2) != 32 || cap(g2) < 32 {
		t.Fatalf("Grow beyond cap: len=%d cap=%d", len(g2), cap(g2))
	}
	z := GrowZero([]float64{1, 2, 3}, 2)
	if z[0] != 0 || z[1] != 0 {
		t.Fatalf("GrowZero left stale contents: %v", z)
	}
}

func TestSlabTakeZeroedAndDisjoint(t *testing.T) {
	var s Slab[int]
	a := s.Take(10)
	b := s.Take(10)
	for i := range a {
		a[i] = i + 1
	}
	for _, v := range b {
		if v != 0 {
			t.Fatalf("Take returned non-zero memory: %v", b)
		}
	}
	for i, v := range a {
		if v != i+1 {
			t.Fatalf("overlapping Take slices: a=%v", a)
		}
	}
	// Appending to a taken slice must not scribble over the next Take's
	// memory (three-index slice expression forces reallocation).
	c := s.Take(4)
	c = append(c, 99)
	d := s.Take(4)
	for _, v := range d {
		if v == 99 {
			t.Fatalf("append aliased into slab: d=%v", d)
		}
	}
}

func TestSlabResetRecyclesWithoutAliasingLiveTakes(t *testing.T) {
	var s Slab[int]
	a := s.Take(64)
	for i := range a {
		a[i] = 7
	}
	capBefore := s.Cap()
	s.Reset()
	b := s.Take(64)
	// b reuses a's memory (that is the point of Reset)…
	if &a[0] != &b[0] {
		t.Fatalf("Reset did not recycle chunk memory")
	}
	// …and Take re-zeroes it so no stale values leak.
	for _, v := range b {
		if v != 0 {
			t.Fatalf("stale contents after Reset: %v", b[:8])
		}
	}
	if s.Cap() != capBefore {
		t.Fatalf("Reset changed capacity: %d -> %d", capBefore, s.Cap())
	}
}

func TestSlabOutOfCapacityGrowth(t *testing.T) {
	var s Slab[byte]
	small := s.Take(minChunk / 2)
	big := s.Take(4 * minChunk) // cannot fit the first chunk: must grow
	if len(big) != 4*minChunk {
		t.Fatalf("big take length %d", len(big))
	}
	for i := range small {
		small[i] = 0xAA
	}
	for _, v := range big {
		if v == 0xAA {
			t.Fatalf("growth chunk aliases earlier take")
		}
	}
	if s.Cap() < minChunk/2+4*minChunk {
		t.Fatalf("capacity %d did not grow", s.Cap())
	}
	// After Reset the slab serves the same sizes with no new chunks.
	s.Reset()
	before := s.Cap()
	_ = s.Take(minChunk / 2)
	_ = s.Take(4 * minChunk)
	if s.Cap() != before {
		t.Fatalf("steady-state Take grew capacity: %d -> %d", before, s.Cap())
	}
}

func TestPoolGetPut(t *testing.T) {
	var p Pool[int]
	if p.Get() != nil {
		t.Fatalf("empty pool returned object")
	}
	x := new(int)
	*x = 42
	p.Put(x)
	p.Put(nil) // no-op
	if got := p.Get(); got != x {
		t.Fatalf("pool returned %v, want the object put", got)
	}
	if p.Get() != nil {
		t.Fatalf("pool returned object twice")
	}
}

func TestJobSlotLazyAndTyped(t *testing.T) {
	type scratch struct{ n int }
	j := NewJob(100)
	if Slot[scratch](nil, PhaseCluster, func() *scratch { return &scratch{} }) != nil {
		t.Fatalf("nil job must yield nil slot")
	}
	a := Slot(j, PhaseCluster, func() *scratch { return &scratch{n: 1} })
	b := Slot(j, PhaseCluster, func() *scratch { return &scratch{n: 2} })
	if a != b || a.n != 1 {
		t.Fatalf("slot not cached: a=%v b=%v", a, b)
	}
	// Distinct phases get distinct slots.
	c := Slot(j, PhaseEval, func() *scratch { return &scratch{n: 3} })
	if c == a || c.n != 3 {
		t.Fatalf("phase slots collide")
	}
}

func TestJobTryAcquire(t *testing.T) {
	j := NewJob(10)
	if !j.TryAcquire() {
		t.Fatalf("fresh job not acquirable")
	}
	if j.TryAcquire() {
		t.Fatalf("double acquire succeeded")
	}
	j.Release()
	if !j.TryAcquire() {
		t.Fatalf("job not acquirable after release")
	}
	var nilJob *Job
	if nilJob.TryAcquire() {
		t.Fatalf("nil job acquirable")
	}
	nilJob.Release() // must not panic
	if nilJob.SinkHint() != 0 {
		t.Fatalf("nil job hint")
	}
}

func TestJobPoolBucketsAndRecycle(t *testing.T) {
	p := NewJobPool(2)
	j1 := p.Get(50_000)
	j2 := p.Get(100) // different bucket
	p.Put(j1)
	p.Put(j2)
	// Same-size request gets the warm job back; the small bucket's job must
	// not be handed to a large request.
	j3 := p.Get(50_000)
	if j3 != j1 {
		t.Fatalf("pool did not recycle same-bucket job")
	}
	if j3.TryAcquire() {
		t.Fatalf("pool handed out an unacquired job")
	}
	j4 := p.Get(60_000) // same power-of-two bucket as 50k
	if j4 == j2 {
		t.Fatalf("small-bucket job leaked into large bucket")
	}
	gets, hits, puts := p.Stats()
	if gets != 4 || hits != 1 || puts != 2 {
		t.Fatalf("stats gets=%d hits=%d puts=%d", gets, hits, puts)
	}
}

func TestJobPoolPerBucketCap(t *testing.T) {
	p := NewJobPool(1)
	a, b := p.Get(1000), p.Get(1000)
	p.Put(a)
	p.Put(b) // over cap: dropped
	if got := p.Get(1000); got != a {
		t.Fatalf("expected the one retained job back")
	}
	if got := p.Get(1000); got == b {
		t.Fatalf("over-cap job was retained")
	}
}

func TestJobPoolConcurrent(t *testing.T) {
	p := NewJobPool(4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				j := p.Get(1 << uint(i%6))
				j.SetSinkHint(1 << uint(i%6))
				p.Put(j)
			}
		}()
	}
	wg.Wait()
	gets, _, puts := p.Stats()
	if gets != 1600 || puts != 1600 {
		t.Fatalf("gets=%d puts=%d", gets, puts)
	}
}

func TestNilJobPoolSafe(t *testing.T) {
	var p *JobPool
	if p.Get(10) != nil {
		t.Fatalf("nil pool returned job")
	}
	p.Put(nil)
	if g, h, u := p.Stats(); g != 0 || h != 0 || u != 0 {
		t.Fatalf("nil pool stats")
	}
}
