// Package legal legalizes the cells a synthesized clock tree inserts —
// mid-edge buffers, end-point buffers and nTSV landing cells — onto the
// placement row/site grid: inside the die, outside macro blockages, and
// without overlapping one another. The paper's flow promises "a legal clock
// tree" (Sec. III-A); this is the step that makes the promise concrete for
// the DEF export.
//
// The legalizer is a greedy nearest-site search (Tetris-style): cells are
// processed in order of insertion position, each snapped to the closest
// free legal site by scanning outward row by row. Displacements are
// reported so callers can judge electrical fidelity; for clock cells the
// displacement is typically a fraction of a µm, far below the segment
// lengths the timing model works with.
package legal

import (
	"fmt"
	"math"
	"sort"

	"dscts/internal/ctree"
	"dscts/internal/geom"
	"dscts/internal/tech"
)

// CellKind classifies a legalized cell.
type CellKind int

const (
	// KindBuffer is a clock buffer (mid-edge or end-point).
	KindBuffer CellKind = iota
	// KindNTSV is a nano-TSV landing cell.
	KindNTSV
)

func (k CellKind) String() string {
	if k == KindNTSV {
		return "ntsv"
	}
	return "buffer"
}

// Cell is one legalized instance.
type Cell struct {
	Name  string
	Kind  CellKind
	Macro string
	// Want is the electrical position the tree asked for; Got is the
	// legalized site origin.
	Want, Got geom.Point
	// TreeNode is the clock-tree node whose wiring owns the cell.
	TreeNode int
}

// Displacement returns the Manhattan distance the cell moved.
func (c Cell) Displacement() float64 { return c.Want.Dist(c.Got) }

// Result is the legalization outcome.
type Result struct {
	Cells []Cell
	// MaxDisp and AvgDisp summarize displacement (µm).
	MaxDisp, AvgDisp float64
}

// Options configures the grid.
type Options struct {
	// RowHeight is the placement row pitch (µm); 0 uses the buffer cell
	// height (ASAP7: 0.27).
	RowHeight float64
	// SitePitch is the horizontal site pitch (µm); 0 derives it from the
	// nTSV cell width.
	SitePitch float64
	// MaxSearchRadius bounds the outward site search (µm); 0 means 25.
	MaxSearchRadius float64
}

// Legalize places every inserted cell of the tree. The tree itself is not
// modified; wire endpoints stay at their routed positions.
func Legalize(t *ctree.Tree, die geom.BBox, macros []geom.BBox, tc *tech.Tech, opt Options) (*Result, error) {
	if !die.Valid() {
		return nil, fmt.Errorf("legal: invalid die box")
	}
	if opt.RowHeight <= 0 {
		opt.RowHeight = tc.Buf.Height
	}
	if opt.SitePitch <= 0 {
		opt.SitePitch = tc.TSV.Width
	}
	if opt.RowHeight <= 0 || opt.SitePitch <= 0 {
		return nil, fmt.Errorf("legal: non-positive grid pitch")
	}
	if opt.MaxSearchRadius <= 0 {
		opt.MaxSearchRadius = 25
	}
	g := &grid{
		die: die, macros: macros,
		rowH: opt.RowHeight, siteW: opt.SitePitch,
		occupied: map[[2]int]bool{},
		maxR:     opt.MaxSearchRadius,
	}

	// Gather the cells the wiring implies, in deterministic tree order.
	var wants []Cell
	seq := 0
	name := func(kind CellKind) string {
		seq++
		return fmt.Sprintf("clk_%s_%d", kind, seq)
	}
	t.PreOrder(func(id int) {
		n := &t.Nodes[id]
		if id != t.Root() {
			up := t.Nodes[n.Parent].Pos
			down := n.Pos
			w := n.Wiring
			if w.BufMid {
				wants = append(wants, Cell{
					Name: name(KindBuffer), Kind: KindBuffer, Macro: tc.Buf.Name,
					Want: ctree.PointAlongL(up, down, 0.5), TreeNode: id,
				})
			}
			if w.WireSide == ctree.Back && w.TSVUp {
				wants = append(wants, Cell{
					Name: name(KindNTSV), Kind: KindNTSV, Macro: tc.TSV.Name,
					Want: up, TreeNode: id,
				})
			}
			if w.WireSide == ctree.Back && w.TSVDown {
				wants = append(wants, Cell{
					Name: name(KindNTSV), Kind: KindNTSV, Macro: tc.TSV.Name,
					Want: down, TreeNode: id,
				})
			}
		}
		if n.BufferAtNode {
			wants = append(wants, Cell{
				Name: name(KindBuffer), Kind: KindBuffer, Macro: tc.Buf.Name,
				Want: n.Pos, TreeNode: id,
			})
		}
	})

	res := &Result{Cells: make([]Cell, 0, len(wants))}
	var sumDisp float64
	for _, c := range wants {
		width := tc.Buf.Width
		if c.Kind == KindNTSV {
			width = tc.TSV.Width
		}
		got, ok := g.place(c.Want, width)
		if !ok {
			return nil, fmt.Errorf("legal: no free site for %s near %v within %.1f µm",
				c.Name, c.Want, g.maxR)
		}
		c.Got = got
		res.Cells = append(res.Cells, c)
		d := c.Displacement()
		sumDisp += d
		if d > res.MaxDisp {
			res.MaxDisp = d
		}
	}
	if len(res.Cells) > 0 {
		res.AvgDisp = sumDisp / float64(len(res.Cells))
	}
	return res, nil
}

// grid tracks row/site occupancy.
type grid struct {
	die      geom.BBox
	macros   []geom.BBox
	rowH     float64
	siteW    float64
	maxR     float64
	occupied map[[2]int]bool
}

// place finds the nearest free legal site to want for a cell of the given
// width (occupying ceil(width/siteW) sites).
func (g *grid) place(want geom.Point, width float64) (geom.Point, bool) {
	sites := int(math.Ceil(width / g.siteW))
	if sites < 1 {
		sites = 1
	}
	row0 := int(math.Round((want.Y - g.die.MinY) / g.rowH))
	col0 := int(math.Round((want.X - g.die.MinX) / g.siteW))
	maxRings := int(g.maxR/math.Min(g.rowH, g.siteW)) + 1
	type cand struct {
		row, col int
		d        float64
	}
	// Ring search: expand Chebyshev rings around (row0,col0), pick the
	// closest feasible candidate in Manhattan distance.
	for ring := 0; ring <= maxRings; ring++ {
		var cands []cand
		for dr := -ring; dr <= ring; dr++ {
			for _, dc := range ringCols(ring, dr) {
				r, cl := row0+dr, col0+dc
				p, ok := g.siteOrigin(r, cl, sites)
				if !ok {
					continue
				}
				cands = append(cands, cand{r, cl, p.Dist(want)})
			}
		}
		if len(cands) == 0 {
			continue
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].d < cands[j].d })
		for _, c := range cands {
			if g.free(c.row, c.col, sites) {
				g.occupy(c.row, c.col, sites)
				p, _ := g.siteOrigin(c.row, c.col, sites)
				return p, true
			}
		}
	}
	return geom.Point{}, false
}

// ringCols enumerates the column offsets of ring cells at row offset dr.
func ringCols(ring, dr int) []int {
	if dr == -ring || dr == ring {
		cols := make([]int, 0, 2*ring+1)
		for dc := -ring; dc <= ring; dc++ {
			cols = append(cols, dc)
		}
		return cols
	}
	if ring == 0 {
		return []int{0}
	}
	return []int{-ring, ring}
}

// siteOrigin returns the position of (row, col) if the span of `sites`
// sites is inside the die and outside macros.
func (g *grid) siteOrigin(row, col, sites int) (geom.Point, bool) {
	x := g.die.MinX + float64(col)*g.siteW
	y := g.die.MinY + float64(row)*g.rowH
	xEnd := x + float64(sites)*g.siteW
	if x < g.die.MinX || xEnd > g.die.MaxX || y < g.die.MinY || y+g.rowH > g.die.MaxY {
		return geom.Point{}, false
	}
	for _, m := range g.macros {
		if x < m.MaxX && xEnd > m.MinX && y < m.MaxY && y+g.rowH > m.MinY {
			return geom.Point{}, false
		}
	}
	return geom.Pt(x, y), true
}

func (g *grid) free(row, col, sites int) bool {
	for s := 0; s < sites; s++ {
		if g.occupied[[2]int{row, col + s}] {
			return false
		}
	}
	return true
}

func (g *grid) occupy(row, col, sites int) {
	for s := 0; s < sites; s++ {
		g.occupied[[2]int{row, col + s}] = true
	}
}
