package legal

import (
	"strings"
	"testing"

	"dscts/internal/bench"
	"dscts/internal/core"
	"dscts/internal/ctree"
	"dscts/internal/geom"
	"dscts/internal/tech"
)

func smallTree() *ctree.Tree {
	t := ctree.New(geom.Pt(50, 50))
	st := t.Add(0, ctree.KindSteiner, geom.Pt(60, 50))
	t.Nodes[st].Wiring = ctree.EdgeWiring{BufMid: true}
	c := t.AddCentroid(st, geom.Pt(70, 55), 0)
	t.Nodes[c].Wiring = ctree.EdgeWiring{WireSide: ctree.Back, TSVUp: true, TSVDown: true}
	t.Nodes[c].BufferAtNode = true
	t.AddSink(c, geom.Pt(71, 56), 0)
	return t
}

func TestLegalizeBasics(t *testing.T) {
	tc := tech.ASAP7()
	tr := smallTree()
	die := geom.NewBBox(geom.Pt(0, 0), geom.Pt(100, 100))
	res, err := Legalize(tr, die, nil, tc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 1 mid buffer + 1 node buffer + 2 nTSVs.
	if len(res.Cells) != 4 {
		t.Fatalf("got %d cells", len(res.Cells))
	}
	bufs, tsvs := 0, 0
	for _, c := range res.Cells {
		switch c.Kind {
		case KindBuffer:
			bufs++
			if c.Macro != tc.Buf.Name {
				t.Errorf("buffer macro %q", c.Macro)
			}
		case KindNTSV:
			tsvs++
			if c.Macro != tc.TSV.Name {
				t.Errorf("ntsv macro %q", c.Macro)
			}
		}
		if !die.Contains(c.Got, 1e-9) {
			t.Errorf("cell %s at %v outside die", c.Name, c.Got)
		}
		if !strings.HasPrefix(c.Name, "clk_") {
			t.Errorf("cell name %q", c.Name)
		}
	}
	if bufs != 2 || tsvs != 2 {
		t.Fatalf("bufs/tsvs = %d/%d", bufs, tsvs)
	}
	// Displacements are sub-µm on an empty die (grid rounding only).
	if res.MaxDisp > 1.0 {
		t.Errorf("max displacement %v too large", res.MaxDisp)
	}
	if res.AvgDisp > res.MaxDisp {
		t.Errorf("avg %v > max %v", res.AvgDisp, res.MaxDisp)
	}
}

func TestLegalizeAvoidsMacros(t *testing.T) {
	tc := tech.ASAP7()
	tr := smallTree()
	die := geom.NewBBox(geom.Pt(0, 0), geom.Pt(100, 100))
	// A macro right on top of every wanted position.
	macro := geom.NewBBox(geom.Pt(45, 45), geom.Pt(75, 60))
	res, err := Legalize(tr, die, []geom.BBox{macro}, tc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Cells {
		if macro.Contains(c.Got, -1e-9) {
			t.Fatalf("cell %s placed inside macro at %v", c.Name, c.Got)
		}
	}
	// Everything had to move out of the macro.
	if res.MaxDisp == 0 {
		t.Fatal("expected displacement around the macro")
	}
}

func TestLegalizeNoOverlaps(t *testing.T) {
	tc := tech.ASAP7()
	// Many buffers asked at the same point: all must land on distinct
	// sites.
	tr := ctree.New(geom.Pt(10, 10))
	c := tr.AddCentroid(0, geom.Pt(10, 10), 0)
	tr.Nodes[c].BufferAtNode = true
	for i := 0; i < 30; i++ {
		s := tr.AddSink(c, geom.Pt(10, 10), i)
		_ = s
	}
	// Build 20 sibling centroids at the same spot, each with a buffer.
	for k := 1; k < 20; k++ {
		cc := tr.AddCentroid(0, geom.Pt(10, 10), k)
		tr.Nodes[cc].BufferAtNode = true
		tr.AddSink(cc, geom.Pt(10, 10), 100+k)
	}
	die := geom.NewBBox(geom.Pt(0, 0), geom.Pt(40, 40))
	res, err := Legalize(tr, die, nil, tc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[geom.Point]bool{}
	for _, cell := range res.Cells {
		if seen[cell.Got] {
			t.Fatalf("two cells share site %v", cell.Got)
		}
		seen[cell.Got] = true
	}
}

func TestLegalizeFailsWhenNoRoom(t *testing.T) {
	tc := tech.ASAP7()
	tr := smallTree()
	die := geom.NewBBox(geom.Pt(0, 0), geom.Pt(100, 100))
	// Macro covering the entire die except a sliver far away: search
	// radius is bounded, so legalization must fail loudly.
	macro := geom.NewBBox(geom.Pt(0, 0), geom.Pt(100, 99))
	if _, err := Legalize(tr, die, []geom.BBox{macro}, tc, Options{MaxSearchRadius: 5}); err == nil {
		t.Fatal("expected failure with no reachable free sites")
	}
}

func TestLegalizeErrors(t *testing.T) {
	tc := tech.ASAP7()
	tr := smallTree()
	var empty geom.BBox
	if _, err := Legalize(tr, empty, nil, tc, Options{}); err == nil {
		t.Error("invalid die should error")
	}
}

func TestLegalizeFullFlowTree(t *testing.T) {
	tc := tech.ASAP7()
	d, err := bench.ByID("C4")
	if err != nil {
		t.Fatal(err)
	}
	p, err := bench.Generate(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := core.Synthesize(p.Root, p.Sinks, tc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Legalize(out.Tree, p.Die, p.Macros, tc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bufs, tsvs := out.Tree.Counts()
	nb, nt := 0, 0
	for _, c := range res.Cells {
		if c.Kind == KindBuffer {
			nb++
		} else {
			nt++
		}
	}
	if nb != bufs || nt != tsvs {
		t.Fatalf("legalized %d/%d cells for %d/%d in tree", nb, nt, bufs, tsvs)
	}
	// Clock cells displace by at most a few sites at realistic density.
	if res.AvgDisp > 2.0 {
		t.Errorf("average displacement %v µm is suspicious", res.AvgDisp)
	}
}
