package viz

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"dscts/internal/bench"
	"dscts/internal/core"
	"dscts/internal/geom"
	"dscts/internal/tech"
)

func TestWriteSVGFullFlow(t *testing.T) {
	tc := tech.ASAP7()
	d, err := bench.ByID("C4")
	if err != nil {
		t.Fatal(err)
	}
	p, err := bench.Generate(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := core.Synthesize(p.Root, p.Sinks, tc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSVG(&buf, out.Tree, p.Die, p.Macros, Options{Title: "C4"}); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Fatal("not a well-formed SVG envelope")
	}
	bufs, tsvs := out.Tree.Counts()
	if !strings.Contains(svg, fmt.Sprintf("buf=%d tsv=%d", bufs, tsvs)) {
		t.Errorf("legend missing counts buf=%d tsv=%d", bufs, tsvs)
	}
	// One circle per sink plus the root marker.
	if got := strings.Count(svg, "<circle"); got != len(p.Sinks)+1 {
		t.Errorf("%d circles, want %d", got, len(p.Sinks)+1)
	}
	// Back-side wires present and dashed.
	if !strings.Contains(svg, "stroke-dasharray") {
		t.Error("no dashed back-side wires rendered")
	}
	if !strings.Contains(svg, "C4") {
		t.Error("title missing")
	}
}

func TestWriteSVGLeafNetsToggle(t *testing.T) {
	tc := tech.ASAP7()
	d, _ := bench.ByID("C4")
	p, err := bench.Generate(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := core.Synthesize(p.Root, p.Sinks, tc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var with, without bytes.Buffer
	if err := WriteSVG(&with, out.Tree, p.Die, nil, Options{ShowLeafNets: true}); err != nil {
		t.Fatal(err)
	}
	if err := WriteSVG(&without, out.Tree, p.Die, nil, Options{}); err != nil {
		t.Fatal(err)
	}
	if with.Len() <= without.Len() {
		t.Error("leaf nets should add geometry")
	}
}

func TestWriteSVGErrors(t *testing.T) {
	var empty geom.BBox
	if err := WriteSVG(&bytes.Buffer{}, nil, empty, nil, Options{}); err == nil {
		t.Fatal("invalid die must error")
	}
}
