// Package viz renders a synthesized double-side clock tree as an SVG:
// front-side wires in blue, back-side wires in red, buffers as green
// squares, nTSVs as orange diamonds, sinks as gray dots and macros as
// hatched boxes. Useful for eyeballing the side assignment the DP chose
// (compare with Fig. 2 of the paper).
package viz

import (
	"bufio"
	"fmt"
	"io"

	"dscts/internal/ctree"
	"dscts/internal/geom"
)

// Options controls the rendering.
type Options struct {
	// WidthPx is the output image width in pixels (height follows the die
	// aspect ratio). 0 means 900.
	WidthPx float64
	// ShowLeafNets draws centroid→sink star wires (can be dense).
	ShowLeafNets bool
	Title        string
}

// WriteSVG renders the tree onto the die with macro blockages.
func WriteSVG(w io.Writer, t *ctree.Tree, die geom.BBox, macros []geom.BBox, opt Options) error {
	if !die.Valid() || die.W() <= 0 || die.H() <= 0 {
		return fmt.Errorf("viz: invalid die")
	}
	if opt.WidthPx <= 0 {
		opt.WidthPx = 900
	}
	scale := opt.WidthPx / die.W()
	hPx := die.H() * scale
	bw := bufio.NewWriter(w)
	// SVG y grows downward; flip so the die's MinY lands at the bottom.
	X := func(x float64) float64 { return (x - die.MinX) * scale }
	Y := func(y float64) float64 { return hPx - (y-die.MinY)*scale }

	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		opt.WidthPx, hPx, opt.WidthPx, hPx)
	fmt.Fprintf(bw, `<rect x="0" y="0" width="%.0f" height="%.0f" fill="#fbfbf8" stroke="#444"/>`+"\n", opt.WidthPx, hPx)
	if opt.Title != "" {
		fmt.Fprintf(bw, `<text x="8" y="16" font-family="monospace" font-size="13">%s</text>`+"\n", opt.Title)
	}
	for _, m := range macros {
		fmt.Fprintf(bw, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#ddd" stroke="#999"/>`+"\n",
			X(m.MinX), Y(m.MaxY), m.W()*scale, m.H()*scale)
	}

	// Wires: draw the L-route of every edge.
	line := func(a, b geom.Point, style string) {
		if a == b {
			return
		}
		corner := geom.Pt(b.X, a.Y)
		fmt.Fprintf(bw, `<polyline points="%.1f,%.1f %.1f,%.1f %.1f,%.1f" fill="none" %s/>`+"\n",
			X(a.X), Y(a.Y), X(corner.X), Y(corner.Y), X(b.X), Y(b.Y), style)
	}
	const (
		frontStyle = `stroke="#2060c0" stroke-width="1.2"`
		backStyle  = `stroke="#c03030" stroke-width="1.8" stroke-dasharray="5,3"`
		leafStyle  = `stroke="#9ab" stroke-width="0.5"`
	)
	t.PreOrder(func(id int) {
		if id == t.Root() {
			return
		}
		n := &t.Nodes[id]
		a := t.Nodes[n.Parent].Pos
		b := n.Pos
		switch {
		case n.Kind == ctree.KindSink:
			if opt.ShowLeafNets {
				line(a, b, leafStyle)
			}
		case n.Wiring.WireSide == ctree.Back:
			line(a, b, backStyle)
		default:
			line(a, b, frontStyle)
		}
	})

	// Cells on top of wires.
	bufCount, tsvCount := 0, 0
	mark := func(p geom.Point, kind string) {
		switch kind {
		case "buf":
			bufCount++
			fmt.Fprintf(bw, `<rect x="%.1f" y="%.1f" width="6" height="6" fill="#20a040" stroke="#064"/>`+"\n",
				X(p.X)-3, Y(p.Y)-3)
		case "tsv":
			tsvCount++
			fmt.Fprintf(bw, `<path d="M %.1f %.1f l 4 4 l -4 4 l -4 -4 z" fill="#f0a020" stroke="#940"/>`+"\n",
				X(p.X), Y(p.Y)-4)
		}
	}
	t.PreOrder(func(id int) {
		n := &t.Nodes[id]
		if id != t.Root() {
			up := t.Nodes[n.Parent].Pos
			w := n.Wiring
			if w.BufMid {
				mark(ctree.PointAlongL(up, n.Pos, 0.5), "buf")
			}
			if w.WireSide == ctree.Back && w.TSVUp {
				mark(up, "tsv")
			}
			if w.WireSide == ctree.Back && w.TSVDown {
				mark(n.Pos, "tsv")
			}
		}
		if n.BufferAtNode {
			mark(n.Pos, "buf")
		}
		if n.Kind == ctree.KindSink {
			fmt.Fprintf(bw, `<circle cx="%.1f" cy="%.1f" r="1.2" fill="#888"/>`+"\n", X(n.Pos.X), Y(n.Pos.Y))
		}
	})
	// Root marker.
	rp := t.Nodes[t.Root()].Pos
	fmt.Fprintf(bw, `<circle cx="%.1f" cy="%.1f" r="5" fill="#000"/>`+"\n", X(rp.X), Y(rp.Y))
	fmt.Fprintf(bw, `<text x="8" y="%.0f" font-family="monospace" font-size="11">front=blue back=red(dashed) buf=%d tsv=%d</text>`+"\n",
		hPx-8, bufCount, tsvCount)
	fmt.Fprintln(bw, `</svg>`)
	return bw.Flush()
}
