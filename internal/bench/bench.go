// Package bench reproduces the paper's benchmark suite (Table II). The
// authors run the OpenROAD backend flow on five designs and take the placed
// DEFs; we synthesize placements with the same statistics deterministically
// (see DESIGN.md §1): die area derived from cell count and utilization,
// macro blockages, and spatially clustered flip-flop placement matching the
// non-uniform distributions that motivate the paper's hierarchical routing
// (Fig. 5).
package bench

import (
	"fmt"
	"math"
	"math/rand"

	"dscts/internal/def"
	"dscts/internal/geom"
)

// Design is one row of Table II.
type Design struct {
	ID    string // C1..C5
	Name  string
	Cells int
	FFs   int
	Util  float64
	// Macros is the number of macro blockages synthesized; chosen per
	// design to mimic the floorplans (jpeg/ethmac have macro regions).
	Macros int
	// Hotspots is the number of placement density clusters.
	Hotspots int
}

// Suite returns the five designs of Table II.
func Suite() []Design {
	return []Design{
		{ID: "C1", Name: "jpeg", Cells: 54973, FFs: 4380, Util: 0.50, Macros: 2, Hotspots: 6},
		{ID: "C2", Name: "swerv_wrapper", Cells: 148407, FFs: 14338, Util: 0.40, Macros: 4, Hotspots: 8},
		{ID: "C3", Name: "ethmac", Cells: 56851, FFs: 10018, Util: 0.40, Macros: 2, Hotspots: 6},
		{ID: "C4", Name: "riscv32i", Cells: 11579, FFs: 1056, Util: 0.50, Macros: 0, Hotspots: 4},
		{ID: "C5", Name: "aes", Cells: 29306, FFs: 2072, Util: 0.50, Macros: 1, Hotspots: 5},
	}
}

// ByID returns the design with the given ID (C1..C5) or name.
func ByID(id string) (Design, error) {
	for _, d := range Suite() {
		if d.ID == id || d.Name == id {
			return d, nil
		}
	}
	return Design{}, fmt.Errorf("bench: unknown design %q", id)
}

// avgCellArea is the assumed mean standard-cell footprint (µm²) used to
// derive die area from Table II's cell counts; calibrated so die sizes land
// in the few-hundred-µm range typical of these blocks in ASAP7.
const avgCellArea = 1.0

// Placement is a synthesized benchmark instance.
type Placement struct {
	Design Design
	Die    geom.BBox
	Root   geom.Point // clock entry pin
	Sinks  []geom.Point
	Macros []geom.BBox
}

// DieSide returns the square die edge length for a design (µm).
func DieSide(d Design) float64 {
	return math.Sqrt(float64(d.Cells) * avgCellArea / d.Util)
}

// Generate synthesizes the placement for design d. The same (design, seed)
// always produces identical output.
func Generate(d Design, seed int64) *Placement {
	side := DieSide(d)
	rng := rand.New(rand.NewSource(seed*1_000_003 + int64(len(d.Name))*7919 + int64(d.Cells)))
	p := &Placement{
		Design: d,
		Die:    geom.NewBBox(geom.Pt(0, 0), geom.Pt(side, side)),
		// The clock tree root sits at the die center: OpenROAD's flow
		// buffers the path from the boundary clock port to the first
		// tree buffer near the sink centroid, and CTS papers measure the
		// tree from there. A boundary root would add a constant
		// max-fanout stem that no flow in Table III can optimize.
		Root: geom.Pt(side/2, side/2),
	}
	// Macro blockages hug the die edges like memory macros do.
	for m := 0; m < d.Macros; m++ {
		w := side * (0.15 + 0.10*rng.Float64())
		h := side * (0.15 + 0.10*rng.Float64())
		var x, y float64
		switch m % 4 {
		case 0:
			x, y = 0, side-h
		case 1:
			x, y = side-w, side-h
		case 2:
			x, y = 0, side*0.3
		default:
			x, y = side-w, side*0.3
		}
		p.Macros = append(p.Macros, geom.NewBBox(geom.Pt(x, y), geom.Pt(x+w, y+h)))
	}
	// Hotspot centers avoid macros.
	var hot []geom.Point
	for len(hot) < d.Hotspots {
		c := geom.Pt(rng.Float64()*side, rng.Float64()*side)
		if p.inMacro(c) {
			continue
		}
		hot = append(hot, c)
	}
	sigma := side / (2.2 * math.Sqrt(float64(d.Hotspots)))
	// 70% of FFs cluster around hotspots, 30% spread uniformly — matching
	// the mixed register-file/datapath structure of the benchmarks.
	for len(p.Sinks) < d.FFs {
		var c geom.Point
		if rng.Float64() < 0.7 {
			h := hot[rng.Intn(len(hot))]
			c = geom.Pt(h.X+rng.NormFloat64()*sigma, h.Y+rng.NormFloat64()*sigma)
		} else {
			c = geom.Pt(rng.Float64()*side, rng.Float64()*side)
		}
		c = p.Die.Clamp(c)
		if p.inMacro(c) {
			continue
		}
		p.Sinks = append(p.Sinks, c)
	}
	return p
}

func (p *Placement) inMacro(c geom.Point) bool {
	for _, m := range p.Macros {
		if m.Contains(c, 0) {
			return true
		}
	}
	return false
}

// ToDEF converts the placement to a DEF design with one clock net
// connecting the clk pin to every flip-flop.
func (p *Placement) ToDEF() *def.File {
	f := &def.File{Design: p.Design.Name, DBU: 1000, Die: p.Die}
	net := def.Net{Name: "clk", Conns: []def.NetConn{{Comp: "PIN", Pin: "clk"}}}
	for i, s := range p.Sinks {
		name := fmt.Sprintf("ff_%d", i)
		f.Components = append(f.Components, def.Component{
			Name: name, Macro: "DFFHQNx1_ASAP7_75t_R", Pos: s,
		})
		net.Conns = append(net.Conns, def.NetConn{Comp: name, Pin: "CLK"})
	}
	f.Pins = append(f.Pins, def.Pin{Name: "clk", Net: "clk", Direction: "INPUT", Pos: p.Root})
	f.Nets = append(f.Nets, net)
	return f
}

// FromDEF reconstructs a Placement from a DEF file (inverse of ToDEF for
// flows driven by external DEFs).
func FromDEF(f *def.File) (*Placement, error) {
	root, sinks, err := f.ClockSinks("clk")
	if err != nil {
		return nil, err
	}
	return &Placement{
		Design: Design{Name: f.Design, FFs: len(sinks)},
		Die:    f.Die,
		Root:   root,
		Sinks:  sinks,
	}, nil
}
