// Package bench reproduces the paper's benchmark suite (Table II). The
// authors run the OpenROAD backend flow on five designs and take the placed
// DEFs; we synthesize placements with the same statistics deterministically
// (see DESIGN.md §1): die area derived from cell count and utilization,
// macro blockages, and spatially clustered flip-flop placement matching the
// non-uniform distributions that motivate the paper's hierarchical routing
// (Fig. 5).
package bench

import (
	"fmt"
	"math"
	"math/rand"

	"dscts/internal/def"
	"dscts/internal/geom"
	"dscts/internal/par"
)

// Design is one row of Table II.
type Design struct {
	ID    string // C1..C5
	Name  string
	Cells int
	FFs   int
	Util  float64
	// Macros is the number of macro blockages synthesized; chosen per
	// design to mimic the floorplans (jpeg/ethmac have macro regions).
	Macros int
	// Hotspots is the number of placement density clusters.
	Hotspots int
}

// Suite returns the five designs of Table II.
func Suite() []Design {
	return []Design{
		{ID: "C1", Name: "jpeg", Cells: 54973, FFs: 4380, Util: 0.50, Macros: 2, Hotspots: 6},
		{ID: "C2", Name: "swerv_wrapper", Cells: 148407, FFs: 14338, Util: 0.40, Macros: 4, Hotspots: 8},
		{ID: "C3", Name: "ethmac", Cells: 56851, FFs: 10018, Util: 0.40, Macros: 2, Hotspots: 6},
		{ID: "C4", Name: "riscv32i", Cells: 11579, FFs: 1056, Util: 0.50, Macros: 0, Hotspots: 4},
		{ID: "C5", Name: "aes", Cells: 29306, FFs: 2072, Util: 0.50, Macros: 1, Hotspots: 5},
	}
}

// ByID returns the design with the given ID (C1..C5) or name.
func ByID(id string) (Design, error) {
	for _, d := range Suite() {
		if d.ID == id || d.Name == id {
			return d, nil
		}
	}
	return Design{}, fmt.Errorf("bench: unknown design %q", id)
}

// avgCellArea is the assumed mean standard-cell footprint (µm²) used to
// derive die area from Table II's cell counts; calibrated so die sizes land
// in the few-hundred-µm range typical of these blocks in ASAP7.
const avgCellArea = 1.0

// Placement is a synthesized benchmark instance.
type Placement struct {
	Design Design
	Die    geom.BBox
	Root   geom.Point // clock entry pin
	Sinks  []geom.Point
	Macros []geom.BBox
}

// DieSide returns the square die edge length for a design (µm).
func DieSide(d Design) float64 {
	return math.Sqrt(float64(d.Cells) * avgCellArea / d.Util)
}

// maxRejectTries bounds the rejection-sampling attempts per placed point.
// Hotspot centers and sinks are rejected when they land inside a macro;
// beyond this many consecutive rejections the macro coverage has made the
// placement practically infeasible and Generate reports an error instead of
// spinning forever.
const maxRejectTries = 10_000

// feasible estimates the macro-free area fraction of the die on a coarse
// grid and rejects combinations of utilization and macro coverage that
// leave (almost) nowhere to place sinks. The grid is deterministic, so the
// check is too.
func (p *Placement) feasible() error {
	const grid = 64
	free := 0
	for gy := 0; gy < grid; gy++ {
		for gx := 0; gx < grid; gx++ {
			c := geom.Pt(
				p.Die.MinX+(float64(gx)+0.5)/grid*p.Die.W(),
				p.Die.MinY+(float64(gy)+0.5)/grid*p.Die.H(),
			)
			if !p.inMacro(c) {
				free++
			}
		}
	}
	if frac := float64(free) / (grid * grid); frac < 0.02 {
		return fmt.Errorf("bench: %s: macros cover %.1f%% of the die at utilization %.2f; placement infeasible",
			p.Design.Name, 100*(1-frac), p.Design.Util)
	}
	return nil
}

// validateDesign rejects designs Generate cannot place: the rejection
// sampler indexes hotspots and divides by the utilization, so adversarial
// zero/negative fields must fail up front rather than panic or spin.
func validateDesign(d Design) error {
	switch {
	case d.Cells <= 0:
		return fmt.Errorf("bench: %s: cell count %d must be positive", d.Name, d.Cells)
	case d.FFs <= 0:
		return fmt.Errorf("bench: %s: FF count %d must be positive", d.Name, d.FFs)
	case d.Util <= 0 || d.Util > 1:
		return fmt.Errorf("bench: %s: utilization %.3f outside (0, 1]", d.Name, d.Util)
	case d.Hotspots < 1:
		return fmt.Errorf("bench: %s: needs at least one hotspot, got %d", d.Name, d.Hotspots)
	case d.Macros < 0:
		return fmt.Errorf("bench: %s: negative macro count %d", d.Name, d.Macros)
	}
	return nil
}

// Generate synthesizes the placement for design d. The same (design, seed)
// always produces identical output. It returns a descriptive error when the
// design is malformed or its utilization and macro coverage make placement
// infeasible (the rejection-sampling loops are bounded, never endless).
func Generate(d Design, seed int64) (*Placement, error) {
	if err := validateDesign(d); err != nil {
		return nil, err
	}
	side := DieSide(d)
	rng := rand.New(rand.NewSource(seed*1_000_003 + int64(len(d.Name))*7919 + int64(d.Cells)))
	p := &Placement{
		Design: d,
		Die:    geom.NewBBox(geom.Pt(0, 0), geom.Pt(side, side)),
		// The clock tree root sits at the die center: OpenROAD's flow
		// buffers the path from the boundary clock port to the first
		// tree buffer near the sink centroid, and CTS papers measure the
		// tree from there. A boundary root would add a constant
		// max-fanout stem that no flow in Table III can optimize.
		Root: geom.Pt(side/2, side/2),
	}
	// Macro blockages hug the die edges like memory macros do.
	for m := 0; m < d.Macros; m++ {
		w := side * (0.15 + 0.10*rng.Float64())
		h := side * (0.15 + 0.10*rng.Float64())
		var x, y float64
		switch m % 4 {
		case 0:
			x, y = 0, side-h
		case 1:
			x, y = side-w, side-h
		case 2:
			x, y = 0, side*0.3
		default:
			x, y = side-w, side*0.3
		}
		p.Macros = append(p.Macros, geom.NewBBox(geom.Pt(x, y), geom.Pt(x+w, y+h)))
	}
	if err := p.feasible(); err != nil {
		return nil, err
	}
	// Hotspot centers avoid macros.
	hot, err := p.hotspots(rng, d.Hotspots)
	if err != nil {
		return nil, err
	}
	sigma := side / (2.2 * math.Sqrt(float64(d.Hotspots)))
	// 70% of FFs cluster around hotspots, 30% spread uniformly — matching
	// the mixed register-file/datapath structure of the benchmarks.
	p.Sinks = make([]geom.Point, 0, d.FFs)
	tries := 0
	for len(p.Sinks) < d.FFs {
		var c geom.Point
		if rng.Float64() < 0.7 {
			h := hot[rng.Intn(len(hot))]
			c = geom.Pt(h.X+rng.NormFloat64()*sigma, h.Y+rng.NormFloat64()*sigma)
		} else {
			c = geom.Pt(rng.Float64()*side, rng.Float64()*side)
		}
		c = p.Die.Clamp(c)
		if p.inMacro(c) {
			if tries++; tries > maxRejectTries {
				return nil, fmt.Errorf("bench: %s: sink placement rejected %d times in a row; macro coverage leaves no room",
					d.Name, tries)
			}
			continue
		}
		tries = 0
		p.Sinks = append(p.Sinks, c)
	}
	return p, nil
}

// hotspots draws n macro-free hotspot centers with a bounded rejection loop.
func (p *Placement) hotspots(rng *rand.Rand, n int) ([]geom.Point, error) {
	hot := make([]geom.Point, 0, n)
	tries := 0
	for len(hot) < n {
		c := geom.Pt(p.Die.MinX+rng.Float64()*p.Die.W(), p.Die.MinY+rng.Float64()*p.Die.H())
		if p.inMacro(c) {
			if tries++; tries > maxRejectTries {
				return nil, fmt.Errorf("bench: %s: hotspot placement rejected %d times in a row; macro coverage leaves no room",
					p.Design.Name, tries)
			}
			continue
		}
		tries = 0
		hot = append(hot, c)
	}
	return hot, nil
}

// xlChunk is the sink count generated per chunk of GenerateXL. Chunks are
// seeded independently, so the result never depends on how many chunks run
// concurrently, and no chunk ever holds more than this much rejection-
// sampling working state.
const xlChunk = 65536

// XLDesign describes a synthetic mega-scale design with the given sink
// count: utilization and macro/hotspot structure follow the Table II
// recipes, scaled up.
func XLDesign(sinkCount int) Design {
	hotspots := sinkCount / 25_000
	if hotspots < 8 {
		hotspots = 8
	}
	return Design{
		ID:    fmt.Sprintf("XL%d", sinkCount),
		Name:  fmt.Sprintf("xl-%d", sinkCount),
		Cells: sinkCount * 10, FFs: sinkCount, Util: 0.45,
		Macros: 4, Hotspots: hotspots,
	}
}

// GenerateXL synthesizes a seeded multi-million-sink placement for the
// partition-parallel pipeline. Unlike Generate it fills a preallocated sink
// array chunk by chunk — each chunk draws from its own (seed, chunk)-derived
// stream with a bounded rejection loop — so generation is O(chunk) in
// working state, embarrassingly parallel, and bit-identical for every
// worker count. The same (sinkCount, seed) always produces identical
// output.
func GenerateXL(sinkCount int, seed int64) (*Placement, error) {
	if sinkCount <= 0 {
		return nil, fmt.Errorf("bench: XL sink count must be positive, got %d", sinkCount)
	}
	d := XLDesign(sinkCount)
	side := DieSide(d)
	base := rand.New(rand.NewSource(seed*1_000_003 + 0x5c4e + int64(sinkCount)))
	p := &Placement{
		Design: d,
		Die:    geom.NewBBox(geom.Pt(0, 0), geom.Pt(side, side)),
		Root:   geom.Pt(side/2, side/2),
	}
	for m := 0; m < d.Macros; m++ {
		w := side * (0.12 + 0.08*base.Float64())
		h := side * (0.12 + 0.08*base.Float64())
		var x, y float64
		switch m % 4 {
		case 0:
			x, y = 0, side-h
		case 1:
			x, y = side-w, side-h
		case 2:
			x, y = 0, 0
		default:
			x, y = side-w, 0
		}
		p.Macros = append(p.Macros, geom.NewBBox(geom.Pt(x, y), geom.Pt(x+w, y+h)))
	}
	if err := p.feasible(); err != nil {
		return nil, err
	}
	hot, err := p.hotspots(base, d.Hotspots)
	if err != nil {
		return nil, err
	}
	sigma := side / (2.2 * math.Sqrt(float64(d.Hotspots)))
	p.Sinks = make([]geom.Point, sinkCount)
	chunks := (sinkCount + xlChunk - 1) / xlChunk
	errs := make([]error, chunks)
	par.ForEach(0, chunks, func(ci int) {
		lo := ci * xlChunk
		hi := lo + xlChunk
		if hi > sinkCount {
			hi = sinkCount
		}
		rng := rand.New(rand.NewSource(seed*2_000_003 + int64(ci)*97_001 + 0x71))
		tries := 0
		for i := lo; i < hi; {
			var c geom.Point
			if rng.Float64() < 0.7 {
				h := hot[rng.Intn(len(hot))]
				c = geom.Pt(h.X+rng.NormFloat64()*sigma, h.Y+rng.NormFloat64()*sigma)
			} else {
				c = geom.Pt(rng.Float64()*side, rng.Float64()*side)
			}
			c = p.Die.Clamp(c)
			if p.inMacro(c) {
				if tries++; tries > maxRejectTries {
					errs[ci] = fmt.Errorf("bench: %s: sink placement rejected %d times in a row", d.Name, tries)
					return
				}
				continue
			}
			tries = 0
			p.Sinks[i] = c
			i++
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return p, nil
}

func (p *Placement) inMacro(c geom.Point) bool {
	for _, m := range p.Macros {
		if m.Contains(c, 0) {
			return true
		}
	}
	return false
}

// ToDEF converts the placement to a DEF design with one clock net
// connecting the clk pin to every flip-flop.
func (p *Placement) ToDEF() *def.File {
	f := &def.File{Design: p.Design.Name, DBU: 1000, Die: p.Die}
	net := def.Net{Name: "clk", Conns: []def.NetConn{{Comp: "PIN", Pin: "clk"}}}
	for i, s := range p.Sinks {
		name := fmt.Sprintf("ff_%d", i)
		f.Components = append(f.Components, def.Component{
			Name: name, Macro: "DFFHQNx1_ASAP7_75t_R", Pos: s,
		})
		net.Conns = append(net.Conns, def.NetConn{Comp: name, Pin: "CLK"})
	}
	f.Pins = append(f.Pins, def.Pin{Name: "clk", Net: "clk", Direction: "INPUT", Pos: p.Root})
	f.Nets = append(f.Nets, net)
	return f
}

// FromDEF reconstructs a Placement from a DEF file (inverse of ToDEF for
// flows driven by external DEFs).
func FromDEF(f *def.File) (*Placement, error) {
	root, sinks, err := f.ClockSinks("clk")
	if err != nil {
		return nil, err
	}
	return &Placement{
		Design: Design{Name: f.Design, FFs: len(sinks)},
		Die:    f.Die,
		Root:   root,
		Sinks:  sinks,
	}, nil
}
