package bench

import (
	"bytes"
	"testing"

	"dscts/internal/def"
)

func TestSuiteMatchesTableII(t *testing.T) {
	s := Suite()
	if len(s) != 5 {
		t.Fatalf("suite size %d", len(s))
	}
	want := []struct {
		id    string
		cells int
		ffs   int
		util  float64
	}{
		{"C1", 54973, 4380, 0.50},
		{"C2", 148407, 14338, 0.40},
		{"C3", 56851, 10018, 0.40},
		{"C4", 11579, 1056, 0.50},
		{"C5", 29306, 2072, 0.50},
	}
	for i, w := range want {
		d := s[i]
		if d.ID != w.id || d.Cells != w.cells || d.FFs != w.ffs || d.Util != w.util {
			t.Errorf("row %d = %+v, want %+v", i, d, w)
		}
	}
}

func TestByID(t *testing.T) {
	d, err := ByID("C3")
	if err != nil || d.Name != "ethmac" {
		t.Fatalf("ByID(C3) = %+v, %v", d, err)
	}
	d, err = ByID("aes")
	if err != nil || d.ID != "C5" {
		t.Fatalf("ByID(aes) = %+v, %v", d, err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown id should error")
	}
}

func TestGenerateDeterministicAndComplete(t *testing.T) {
	d, _ := ByID("C4")
	a := Generate(d, 1)
	b := Generate(d, 1)
	if len(a.Sinks) != d.FFs {
		t.Fatalf("sinks %d, want %d", len(a.Sinks), d.FFs)
	}
	for i := range a.Sinks {
		if a.Sinks[i] != b.Sinks[i] {
			t.Fatal("generation not deterministic")
		}
	}
	c := Generate(d, 2)
	same := true
	for i := range a.Sinks {
		if a.Sinks[i] != c.Sinks[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestGenerateRespectsDieAndMacros(t *testing.T) {
	for _, d := range Suite() {
		p := Generate(d, 7)
		if len(p.Macros) != d.Macros {
			t.Errorf("%s: %d macros, want %d", d.ID, len(p.Macros), d.Macros)
		}
		for i, s := range p.Sinks {
			if !p.Die.Contains(s, 1e-9) {
				t.Fatalf("%s: sink %d at %v outside die %+v", d.ID, i, s, p.Die)
			}
			for _, m := range p.Macros {
				if m.Contains(s, -1e-9) {
					t.Fatalf("%s: sink %d at %v inside macro %+v", d.ID, i, s, m)
				}
			}
		}
		if !p.Die.Contains(p.Root, 1e-9) {
			t.Errorf("%s: root %v outside die", d.ID, p.Root)
		}
	}
}

func TestDieSideScalesWithCells(t *testing.T) {
	c4, _ := ByID("C4")
	c2, _ := ByID("C2")
	if DieSide(c4) >= DieSide(c2) {
		t.Errorf("die sides: C4 %v >= C2 %v", DieSide(c4), DieSide(c2))
	}
	if s := DieSide(c4); s < 100 || s > 400 {
		t.Errorf("C4 die side %v outside plausible range", s)
	}
}

func TestDEFRoundTrip(t *testing.T) {
	d, _ := ByID("C4")
	p := Generate(d, 3)
	f := p.ToDEF()
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := def.Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromDEF(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Sinks) != len(p.Sinks) {
		t.Fatalf("sink count %d vs %d", len(back.Sinks), len(p.Sinks))
	}
	for i := range p.Sinks {
		if !back.Sinks[i].Eq(p.Sinks[i], 1e-3) { // DBU quantization: 1/1000 µm
			t.Fatalf("sink %d moved: %v vs %v", i, back.Sinks[i], p.Sinks[i])
		}
	}
	if !back.Root.Eq(p.Root, 1e-3) {
		t.Errorf("root moved: %v vs %v", back.Root, p.Root)
	}
}
