package bench

import (
	"bytes"
	"math/rand"
	"testing"

	"dscts/internal/def"
	"dscts/internal/geom"
)

func TestSuiteMatchesTableII(t *testing.T) {
	s := Suite()
	if len(s) != 5 {
		t.Fatalf("suite size %d", len(s))
	}
	want := []struct {
		id    string
		cells int
		ffs   int
		util  float64
	}{
		{"C1", 54973, 4380, 0.50},
		{"C2", 148407, 14338, 0.40},
		{"C3", 56851, 10018, 0.40},
		{"C4", 11579, 1056, 0.50},
		{"C5", 29306, 2072, 0.50},
	}
	for i, w := range want {
		d := s[i]
		if d.ID != w.id || d.Cells != w.cells || d.FFs != w.ffs || d.Util != w.util {
			t.Errorf("row %d = %+v, want %+v", i, d, w)
		}
	}
}

func TestByID(t *testing.T) {
	d, err := ByID("C3")
	if err != nil || d.Name != "ethmac" {
		t.Fatalf("ByID(C3) = %+v, %v", d, err)
	}
	d, err = ByID("aes")
	if err != nil || d.ID != "C5" {
		t.Fatalf("ByID(aes) = %+v, %v", d, err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown id should error")
	}
}

func TestGenerateDeterministicAndComplete(t *testing.T) {
	d, _ := ByID("C4")
	a, err := Generate(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Sinks) != d.FFs {
		t.Fatalf("sinks %d, want %d", len(a.Sinks), d.FFs)
	}
	for i := range a.Sinks {
		if a.Sinks[i] != b.Sinks[i] {
			t.Fatal("generation not deterministic")
		}
	}
	c, err := Generate(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Sinks {
		if a.Sinks[i] != c.Sinks[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestGenerateRespectsDieAndMacros(t *testing.T) {
	for _, d := range Suite() {
		p, err := Generate(d, 7)
		if err != nil {
			t.Fatal(err)
		}
		if len(p.Macros) != d.Macros {
			t.Errorf("%s: %d macros, want %d", d.ID, len(p.Macros), d.Macros)
		}
		for i, s := range p.Sinks {
			if !p.Die.Contains(s, 1e-9) {
				t.Fatalf("%s: sink %d at %v outside die %+v", d.ID, i, s, p.Die)
			}
			for _, m := range p.Macros {
				if m.Contains(s, -1e-9) {
					t.Fatalf("%s: sink %d at %v inside macro %+v", d.ID, i, s, m)
				}
			}
		}
		if !p.Die.Contains(p.Root, 1e-9) {
			t.Errorf("%s: root %v outside die", d.ID, p.Root)
		}
	}
}

func TestDieSideScalesWithCells(t *testing.T) {
	c4, _ := ByID("C4")
	c2, _ := ByID("C2")
	if DieSide(c4) >= DieSide(c2) {
		t.Errorf("die sides: C4 %v >= C2 %v", DieSide(c4), DieSide(c2))
	}
	if s := DieSide(c4); s < 100 || s > 400 {
		t.Errorf("C4 die side %v outside plausible range", s)
	}
}

func TestDEFRoundTrip(t *testing.T) {
	d, _ := ByID("C4")
	p, err := Generate(d, 3)
	if err != nil {
		t.Fatal(err)
	}
	f := p.ToDEF()
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := def.Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromDEF(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Sinks) != len(p.Sinks) {
		t.Fatalf("sink count %d vs %d", len(back.Sinks), len(p.Sinks))
	}
	for i := range p.Sinks {
		if !back.Sinks[i].Eq(p.Sinks[i], 1e-3) { // DBU quantization: 1/1000 µm
			t.Fatalf("sink %d moved: %v vs %v", i, back.Sinks[i], p.Sinks[i])
		}
	}
	if !back.Root.Eq(p.Root, 1e-3) {
		t.Errorf("root moved: %v vs %v", back.Root, p.Root)
	}
}

func TestGenerateRejectsMalformedDesigns(t *testing.T) {
	base := Design{ID: "X", Name: "x", Cells: 10000, FFs: 500, Util: 0.5, Macros: 1, Hotspots: 4}
	bad := []func(*Design){
		func(d *Design) { d.FFs = 0 },
		func(d *Design) { d.Cells = -1 },
		func(d *Design) { d.Util = 0 },
		func(d *Design) { d.Util = 1.5 },
		func(d *Design) { d.Hotspots = 0 }, // used to panic in the sampler
		func(d *Design) { d.Macros = -1 },
	}
	for i, mut := range bad {
		d := base
		mut(&d)
		if _, err := Generate(d, 1); err == nil {
			t.Errorf("malformed design %d (%+v) generated; want error", i, d)
		}
	}
}

func TestGenerateInfeasibleMacroCoverage(t *testing.T) {
	// Blanket the die with a hand-built macro set: the feasibility check
	// and the bounded rejection loops must produce descriptive errors
	// instead of spinning forever.
	d := Design{ID: "X1", Name: "blanket", Cells: 10000, FFs: 500, Util: 0.5, Hotspots: 4}
	side := DieSide(d)
	p := &Placement{
		Design: d,
		Die:    geom.NewBBox(geom.Pt(0, 0), geom.Pt(side, side)),
		Macros: []geom.BBox{geom.NewBBox(geom.Pt(-1, -1), geom.Pt(side+1, side+1))},
	}
	if err := p.feasible(); err == nil {
		t.Fatal("fully covered die passed the feasibility check")
	}
	// The bounded hotspot sampler must terminate with an error too.
	if _, err := p.hotspots(rand.New(rand.NewSource(1)), d.Hotspots); err == nil {
		t.Fatal("hotspot sampling on a fully covered die returned no error")
	}
}

func TestGenerateXLDeterministicAndComplete(t *testing.T) {
	const n = 150_000 // spans multiple chunks
	a, err := GenerateXL(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateXL(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Sinks) != n {
		t.Fatalf("sinks %d, want %d", len(a.Sinks), n)
	}
	for i := range a.Sinks {
		if a.Sinks[i] != b.Sinks[i] {
			t.Fatalf("XL generation not deterministic at sink %d", i)
		}
	}
	c, err := GenerateXL(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Sinks {
		if a.Sinks[i] != c.Sinks[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different XL seeds should differ")
	}
	for i, s := range a.Sinks {
		if !a.Die.Contains(s, 1e-9) {
			t.Fatalf("sink %d at %v outside die", i, s)
		}
		for _, m := range a.Macros {
			if m.Contains(s, -1e-9) {
				t.Fatalf("sink %d at %v inside macro %+v", i, s, m)
			}
		}
	}
}

func TestGenerateXLRejectsBadCount(t *testing.T) {
	if _, err := GenerateXL(0, 1); err == nil {
		t.Fatal("zero sink count accepted")
	}
	if _, err := GenerateXL(-5, 1); err == nil {
		t.Fatal("negative sink count accepted")
	}
}
