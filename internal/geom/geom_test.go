package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func TestPointArithmetic(t *testing.T) {
	p := Pt(1, 2)
	q := Pt(4, 6)
	if got := p.Add(q); got != Pt(5, 8) {
		t.Errorf("Add = %v", got)
	}
	if got := q.Sub(p); got != Pt(3, 4) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(2, 4) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dist(q); got != 7 {
		t.Errorf("Dist = %v, want 7", got)
	}
	if got := p.DistEuclid(q); got != 5 {
		t.Errorf("DistEuclid = %v, want 5", got)
	}
	if got := p.Lerp(q, 0.5); got != Pt(2.5, 4) {
		t.Errorf("Lerp = %v", got)
	}
}

func TestTiltedRoundTrip(t *testing.T) {
	f := func(x, y float64) bool {
		x = sanitize(x)
		y = sanitize(y)
		p := Pt(x, y)
		return FromTilted(p.Tilted()).Eq(p, 1e-6*(1+math.Abs(x)+math.Abs(y)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The defining property of the tilted frame: L1 distance in the original
// frame equals L∞ distance in the tilted frame.
func TestTiltedMetric(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a := Pt(sanitize(ax), sanitize(ay))
		b := Pt(sanitize(bx), sanitize(by))
		ta, tb := a.Tilted(), b.Tilted()
		linf := math.Max(math.Abs(ta.X-tb.X), math.Abs(ta.Y-tb.Y))
		return math.Abs(linf-a.Dist(b)) <= 1e-6*(1+a.Dist(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistSymmetryAndTriangle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		a := Pt(rng.Float64()*100, rng.Float64()*100)
		b := Pt(rng.Float64()*100, rng.Float64()*100)
		c := Pt(rng.Float64()*100, rng.Float64()*100)
		if math.Abs(a.Dist(b)-b.Dist(a)) > eps {
			t.Fatalf("asymmetric distance %v %v", a, b)
		}
		if a.Dist(c) > a.Dist(b)+b.Dist(c)+eps {
			t.Fatalf("triangle inequality violated %v %v %v", a, b, c)
		}
	}
}

func TestBBox(t *testing.T) {
	b := NewBBox(Pt(1, 5), Pt(3, 2), Pt(-1, 4))
	if b.MinX != -1 || b.MaxX != 3 || b.MinY != 2 || b.MaxY != 5 {
		t.Fatalf("bbox = %+v", b)
	}
	if b.W() != 4 || b.H() != 3 || b.HalfPerimeter() != 7 {
		t.Errorf("W/H/HP = %v %v %v", b.W(), b.H(), b.HalfPerimeter())
	}
	if got := b.Center(); got != Pt(1, 3.5) {
		t.Errorf("Center = %v", got)
	}
	if !b.Contains(Pt(0, 3), 0) || b.Contains(Pt(5, 3), 0) {
		t.Error("Contains wrong")
	}
	if got := b.Clamp(Pt(10, 0)); got != Pt(3, 2) {
		t.Errorf("Clamp = %v", got)
	}
	var empty BBox
	if empty.Valid() {
		t.Error("zero BBox should be invalid")
	}
	empty.Union(b)
	if !empty.Valid() || empty != b {
		t.Errorf("Union into empty = %+v", empty)
	}
}

func TestArcBasics(t *testing.T) {
	// Points (0,0) and (2,2) lie on a slope +1 line: v = x-y equal (0).
	a, ok := ArcFromPoints(Pt(0, 0), Pt(2, 2), eps)
	if !ok {
		t.Fatal("expected valid arc")
	}
	if math.Abs(a.Len()-4) > eps {
		t.Errorf("Len = %v, want 4 (Manhattan)", a.Len())
	}
	if !a.Mid().Eq(Pt(1, 1), eps) {
		t.Errorf("Mid = %v", a.Mid())
	}
	// Points not on a Manhattan arc.
	if _, ok := ArcFromPoints(Pt(0, 0), Pt(2, 1), eps); ok {
		t.Error("expected invalid arc for non-diagonal points")
	}
	p := PointArc(Pt(3, 4))
	if !p.IsPoint(eps) || !p.A().Eq(Pt(3, 4), eps) {
		t.Errorf("PointArc = %v", p)
	}
	if !a.Sample(0).Eq(a.A(), eps) || !a.Sample(1).Eq(a.B(), eps) {
		t.Error("Sample endpoints mismatch")
	}
}

func TestTRRIntersect(t *testing.T) {
	// Two point-cores at Manhattan distance 10; expanding each by 5 must
	// intersect in exactly the set of midpoints (a Manhattan arc).
	a := NewTRR(PointArc(Pt(0, 0)), 5)
	b := NewTRR(PointArc(Pt(10, 0)), 5)
	is := a.Intersect(b)
	if is.Empty() {
		t.Fatal("expected non-empty intersection")
	}
	core := is.CoreArc()
	// All points on the core must be at distance exactly 5 from both centers.
	for _, s := range []float64{0, 0.25, 0.5, 0.75, 1} {
		p := core.Sample(s)
		if math.Abs(p.Dist(Pt(0, 0))-5) > eps || math.Abs(p.Dist(Pt(10, 0))-5) > eps {
			t.Errorf("core point %v not equidistant: %v %v", p, p.Dist(Pt(0, 0)), p.Dist(Pt(10, 0)))
		}
	}
	// Radii that don't reach: empty intersection.
	c := NewTRR(PointArc(Pt(10, 0)), 3)
	if got := a.Intersect(c); !got.Empty() {
		t.Errorf("expected empty intersection, got %+v", got)
	}
}

func TestTRRDistPoint(t *testing.T) {
	r := NewTRR(PointArc(Pt(0, 0)), 2) // diamond radius 2 at origin
	cases := []struct {
		p Point
		d float64
	}{
		{Pt(0, 0), 0},
		{Pt(2, 0), 0},
		{Pt(3, 0), 1},
		{Pt(0, -5), 3},
		{Pt(2, 2), 2},
	}
	for _, c := range cases {
		if got := r.DistPoint(c.p); math.Abs(got-c.d) > eps {
			t.Errorf("DistPoint(%v) = %v, want %v", c.p, got, c.d)
		}
	}
}

// Property: for random point cores, DistPoint(TRR(core,r), p) ==
// max(0, dist(core,p) - r).
func TestTRRDistPointProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		c := Pt(rng.Float64()*100-50, rng.Float64()*100-50)
		p := Pt(rng.Float64()*100-50, rng.Float64()*100-50)
		r := rng.Float64() * 20
		want := math.Max(0, c.Dist(p)-r)
		got := NewTRR(PointArc(c), r).DistPoint(p)
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("DistPoint mismatch: center %v p %v r %v: got %v want %v", c, p, r, got, want)
		}
	}
}

func TestArcDistAndClosest(t *testing.T) {
	a, _ := ArcFromPoints(Pt(0, 0), Pt(2, 2), eps)
	b, _ := ArcFromPoints(Pt(10, 0), Pt(12, 2), eps)
	d := ArcDist(a, b)
	pa, pb := ClosestBetweenArcs(a, b)
	if math.Abs(pa.Dist(pb)-d) > eps {
		t.Errorf("ClosestBetweenArcs dist %v != ArcDist %v", pa.Dist(pb), d)
	}
	// Brute-force check of ArcDist by sampling.
	best := math.Inf(1)
	for i := 0; i <= 100; i++ {
		for j := 0; j <= 100; j++ {
			d2 := a.Sample(float64(i) / 100).Dist(b.Sample(float64(j) / 100))
			best = math.Min(best, d2)
		}
	}
	if math.Abs(best-d) > 1e-6 {
		t.Errorf("ArcDist = %v, brute force = %v", d, best)
	}
}

// Property: ClosestOnArc returns a point on the arc whose distance matches
// the sampled minimum.
func TestClosestOnArcProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 500; i++ {
		o := Pt(rng.Float64()*50, rng.Float64()*50)
		l := rng.Float64() * 20
		var end Point
		if rng.Intn(2) == 0 {
			end = o.Add(Pt(l, l)) // slope +1
		} else {
			end = o.Add(Pt(l, -l)) // slope -1
		}
		a, ok := ArcFromPoints(o, end, 1e-6)
		if !ok {
			t.Fatalf("arc construction failed for %v %v", o, end)
		}
		p := Pt(rng.Float64()*100-25, rng.Float64()*100-25)
		cp := ClosestOnArc(a, p)
		best := math.Inf(1)
		for s := 0; s <= 200; s++ {
			best = math.Min(best, a.Sample(float64(s)/200).Dist(p))
		}
		if cp.Dist(p) > best+1e-6 {
			t.Fatalf("ClosestOnArc %v dist %v > sampled best %v", cp, cp.Dist(p), best)
		}
	}
}

func TestTRRDistArcConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 500; i++ {
		c := Pt(rng.Float64()*50, rng.Float64()*50)
		r := rng.Float64() * 10
		trr := NewTRR(PointArc(c), r)
		o := Pt(rng.Float64()*50, rng.Float64()*50)
		a, _ := ArcFromPoints(o, o.Add(Pt(5, 5)), 1e-6)
		want := math.Inf(1)
		for s := 0; s <= 100; s++ {
			want = math.Min(want, trr.DistPoint(a.Sample(float64(s)/100)))
		}
		got := trr.DistArc(a)
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("DistArc = %v, sampled = %v", got, want)
		}
	}
}

func sanitize(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 1e6)
}
