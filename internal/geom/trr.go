package geom

import (
	"fmt"
	"math"
)

// Arc is a Manhattan arc: a (possibly degenerate) segment whose slope in the
// original frame is ±1, or a single point. In tilted coordinates an Arc is an
// axis-aligned segment, which is how it is stored: (U0,V0)-(U1,V1) with
// either U0==U1 or V0==V1.
//
// Merging segments in DME are Manhattan arcs; the tapping-point search and
// the distance computations below all run in the tilted frame where they
// reduce to interval arithmetic.
type Arc struct {
	U0, V0, U1, V1 float64
}

// ArcFromPoints returns the Manhattan arc between two points given in the
// ORIGINAL frame. The two points must lie on a common Manhattan arc (same u
// or same v in tilted coordinates); otherwise ok is false.
func ArcFromPoints(a, b Point, eps float64) (Arc, bool) {
	ta, tb := a.Tilted(), b.Tilted()
	if math.Abs(ta.X-tb.X) <= eps || math.Abs(ta.Y-tb.Y) <= eps {
		return Arc{ta.X, ta.Y, tb.X, tb.Y}, true
	}
	return Arc{}, false
}

// PointArc returns the degenerate arc consisting of the single point p
// (original frame).
func PointArc(p Point) Arc {
	t := p.Tilted()
	return Arc{t.X, t.Y, t.X, t.Y}
}

// IsPoint reports whether the arc is degenerate (a single point).
func (a Arc) IsPoint(eps float64) bool {
	return math.Abs(a.U0-a.U1) <= eps && math.Abs(a.V0-a.V1) <= eps
}

// Len returns the Manhattan length of the arc (the L1 distance between its
// endpoints in the original frame). For an axis-aligned tilted segment this
// equals max(|du|, |dv|) = |du|+|dv| since one of them is zero.
func (a Arc) Len() float64 {
	return math.Abs(a.U0-a.U1) + math.Abs(a.V0-a.V1)
}

// A returns one endpoint in the original frame.
func (a Arc) A() Point { return FromTilted(Point{a.U0, a.V0}) }

// B returns the other endpoint in the original frame.
func (a Arc) B() Point { return FromTilted(Point{a.U1, a.V1}) }

// Mid returns the arc midpoint in the original frame.
func (a Arc) Mid() Point {
	return FromTilted(Point{(a.U0 + a.U1) / 2, (a.V0 + a.V1) / 2})
}

// Sample returns the point a fraction t∈[0,1] along the arc (original frame).
func (a Arc) Sample(t float64) Point {
	return FromTilted(Point{a.U0 + (a.U1-a.U0)*t, a.V0 + (a.V1-a.V0)*t})
}

func (a Arc) String() string {
	return fmt.Sprintf("arc[%v--%v]", a.A(), a.B())
}

// canonical returns the arc with U0<=U1 and V0<=V1 (safe because one of the
// two extents is zero for a valid Manhattan arc).
func (a Arc) canonical() Arc {
	if a.U0 > a.U1 {
		a.U0, a.U1 = a.U1, a.U0
	}
	if a.V0 > a.V1 {
		a.V0, a.V1 = a.V1, a.V0
	}
	return a
}

// TRR is a tilted rectangle region: the Minkowski sum of a Manhattan arc
// (its core) with a Manhattan disk of the given radius. In tilted
// coordinates a TRR is an axis-aligned rectangle [ulo,uhi]×[vlo,vhi].
type TRR struct {
	ULo, UHi, VLo, VHi float64
}

// NewTRR builds the TRR with the given core arc and radius.
func NewTRR(core Arc, radius float64) TRR {
	c := core.canonical()
	return TRR{c.U0 - radius, c.U1 + radius, c.V0 - radius, c.V1 + radius}
}

// Empty reports whether the region is empty.
func (t TRR) Empty() bool { return t.ULo > t.UHi || t.VLo > t.VHi }

// Intersect returns the intersection of two TRRs. The intersection of two
// tilted rectangles is a tilted rectangle (possibly empty).
func (t TRR) Intersect(o TRR) TRR {
	return TRR{
		ULo: math.Max(t.ULo, o.ULo),
		UHi: math.Min(t.UHi, o.UHi),
		VLo: math.Max(t.VLo, o.VLo),
		VHi: math.Min(t.VHi, o.VHi),
	}
}

// Contains reports whether the original-frame point p lies in the region.
func (t TRR) Contains(p Point, eps float64) bool {
	tp := p.Tilted()
	return tp.X >= t.ULo-eps && tp.X <= t.UHi+eps && tp.Y >= t.VLo-eps && tp.Y <= t.VHi+eps
}

// CoreArc returns a maximal Manhattan arc inside the TRR, preferring the
// longer extent. Degenerate TRRs yield point arcs. This is how DME turns the
// intersection of two expanded merging regions back into a merging segment:
// for valid DME merges the intersection is itself a Manhattan arc (one of the
// tilted extents is zero up to floating-point noise), and CoreArc recovers
// it. When numerical noise leaves a thin 2-D sliver we collapse the shorter
// extent to its midline.
func (t TRR) CoreArc() Arc {
	du := t.UHi - t.ULo
	dv := t.VHi - t.VLo
	if du >= dv {
		vm := (t.VLo + t.VHi) / 2
		return Arc{t.ULo, vm, t.UHi, vm}
	}
	um := (t.ULo + t.UHi) / 2
	return Arc{um, t.VLo, um, t.VHi}
}

// DistPoint returns the Manhattan distance from the original-frame point p to
// the region (0 if inside). In tilted coordinates the L1 distance becomes
// L∞, so the distance to an axis-aligned rectangle is the max of the per-axis
// interval distances.
func (t TRR) DistPoint(p Point) float64 {
	tp := p.Tilted()
	du := intervalDist(tp.X, t.ULo, t.UHi)
	dv := intervalDist(tp.Y, t.VLo, t.VHi)
	return math.Max(du, dv)
}

// DistArc returns the minimum Manhattan distance between the region and the
// arc a.
func (t TRR) DistArc(a Arc) float64 {
	c := a.canonical()
	du := intervalGap(c.U0, c.U1, t.ULo, t.UHi)
	dv := intervalGap(c.V0, c.V1, t.VLo, t.VHi)
	return math.Max(du, dv)
}

// ArcDist returns the minimum Manhattan distance between two Manhattan arcs.
func ArcDist(a, b Arc) float64 {
	ca, cb := a.canonical(), b.canonical()
	du := intervalGap(ca.U0, ca.U1, cb.U0, cb.U1)
	dv := intervalGap(ca.V0, ca.V1, cb.V0, cb.V1)
	return math.Max(du, dv)
}

// ClosestOnArc returns the point of arc a closest (in Manhattan distance) to
// the original-frame point p.
func ClosestOnArc(a Arc, p Point) Point {
	c := a.canonical()
	tp := p.Tilted()
	u := clamp(tp.X, c.U0, c.U1)
	v := clamp(tp.Y, c.V0, c.V1)
	return FromTilted(Point{u, v})
}

// ClosestBetweenArcs returns a pair of points (pa on a, pb on b) realizing
// the minimum Manhattan distance between the two arcs.
func ClosestBetweenArcs(a, b Arc) (Point, Point) {
	ca, cb := a.canonical(), b.canonical()
	ua, ub := closestIntervalPoints(ca.U0, ca.U1, cb.U0, cb.U1)
	va, vb := closestIntervalPoints(ca.V0, ca.V1, cb.V0, cb.V1)
	return FromTilted(Point{ua, va}), FromTilted(Point{ub, vb})
}

// intervalDist returns the distance from x to the interval [lo,hi].
func intervalDist(x, lo, hi float64) float64 {
	if x < lo {
		return lo - x
	}
	if x > hi {
		return x - hi
	}
	return 0
}

// intervalGap returns the gap between intervals [a0,a1] and [b0,b1]
// (0 if they overlap).
func intervalGap(a0, a1, b0, b1 float64) float64 {
	if a1 < b0 {
		return b0 - a1
	}
	if b1 < a0 {
		return a0 - b1
	}
	return 0
}

// closestIntervalPoints returns the pair (xa in [a0,a1], xb in [b0,b1]) with
// minimum |xa-xb|; when the intervals overlap both points coincide in the
// overlap.
func closestIntervalPoints(a0, a1, b0, b1 float64) (float64, float64) {
	if a1 < b0 {
		return a1, b0
	}
	if b1 < a0 {
		return a0, b1
	}
	lo := math.Max(a0, b0)
	hi := math.Min(a1, b1)
	m := (lo + hi) / 2
	return m, m
}
