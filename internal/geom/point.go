// Package geom provides the planar Manhattan geometry primitives used by
// clock routing: points, bounding boxes, Manhattan arcs (segments with slope
// ±1 in the rectilinear metric) and tilted rectangle regions (TRRs).
//
// Deferred-Merge Embedding (DME) operates in the Manhattan metric, where the
// locus of points at a fixed distance from a point is a diamond (a tilted
// square). All DME region arithmetic in this package is carried out in
// "tilted coordinates" u = x+y, v = x-y, in which diamonds become axis-aligned
// rectangles and Manhattan arcs become axis-aligned segments.
package geom

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Point is a location in µm on the die plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for constructing a Point.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p + q componentwise.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q componentwise.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by f.
func (p Point) Scale(f float64) Point { return Point{p.X * f, p.Y * f} }

// Dist returns the Manhattan (L1) distance between p and q. Clock wirelength
// and Elmore wire delays are both functions of this metric.
func (p Point) Dist(q Point) float64 {
	return math.Abs(p.X-q.X) + math.Abs(q.Y-p.Y)
}

// DistEuclid returns the Euclidean distance between p and q; used only by the
// k-means clustering objective.
func (p Point) DistEuclid(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Hypot(dx, dy)
}

// Dist2 returns the squared Euclidean distance between p and q. Comparing
// squared distances orders points identically to DistEuclid without the
// overflow-guarded math.Hypot, which makes it the right primitive for the
// nearest-centroid hot loop of clustering.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Lerp returns the point a fraction t of the way from p to q along the
// straight segment pq. t outside [0,1] extrapolates.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// Eq reports whether p and q coincide within tolerance eps.
func (p Point) Eq(q Point, eps float64) bool {
	return math.Abs(p.X-q.X) <= eps && math.Abs(p.Y-q.Y) <= eps
}

func (p Point) String() string { return fmt.Sprintf("(%.4g,%.4g)", p.X, p.Y) }

// Tilted maps p into tilted coordinates (u,v) = (x+y, x-y). In this frame the
// Manhattan metric becomes the Chebyshev (L∞) metric scaled by 1: for points
// a, b, dist_L1(a,b) = max(|ua-ub|, |va-vb|).
func (p Point) Tilted() Point { return Point{p.X + p.Y, p.X - p.Y} }

// FromTilted maps a tilted-coordinate point back to the original frame.
func FromTilted(t Point) Point { return Point{(t.X + t.Y) / 2, (t.X - t.Y) / 2} }

// BBox is an axis-aligned bounding box. The zero BBox is treated as empty
// until grown; use NewBBox or Grow.
type BBox struct {
	MinX, MinY, MaxX, MaxY float64
	valid                  bool
}

// NewBBox returns the bounding box of the given points.
func NewBBox(pts ...Point) BBox {
	var b BBox
	for _, p := range pts {
		b.Grow(p)
	}
	return b
}

// Grow extends b to include p.
func (b *BBox) Grow(p Point) {
	if !b.valid {
		b.MinX, b.MinY, b.MaxX, b.MaxY = p.X, p.Y, p.X, p.Y
		b.valid = true
		return
	}
	b.MinX = math.Min(b.MinX, p.X)
	b.MinY = math.Min(b.MinY, p.Y)
	b.MaxX = math.Max(b.MaxX, p.X)
	b.MaxY = math.Max(b.MaxY, p.Y)
}

// Union extends b to include all of o.
func (b *BBox) Union(o BBox) {
	if !o.valid {
		return
	}
	b.Grow(Point{o.MinX, o.MinY})
	b.Grow(Point{o.MaxX, o.MaxY})
}

// Valid reports whether the box contains at least one point.
func (b BBox) Valid() bool { return b.valid }

// GobEncode serializes the box INCLUDING the unexported emptiness flag;
// without it a gob round-trip would silently turn every non-empty box into
// the empty one, breaking Grow/Union/Valid on restored state (the serve
// persistence tier snapshots retained ECO bases with gob).
func (b BBox) GobEncode() ([]byte, error) {
	out := make([]byte, 33)
	binary.LittleEndian.PutUint64(out[0:8], math.Float64bits(b.MinX))
	binary.LittleEndian.PutUint64(out[8:16], math.Float64bits(b.MinY))
	binary.LittleEndian.PutUint64(out[16:24], math.Float64bits(b.MaxX))
	binary.LittleEndian.PutUint64(out[24:32], math.Float64bits(b.MaxY))
	if b.valid {
		out[32] = 1
	}
	return out, nil
}

// GobDecode is the inverse of GobEncode.
func (b *BBox) GobDecode(data []byte) error {
	if len(data) != 33 {
		return fmt.Errorf("geom: bad BBox gob payload: %d bytes", len(data))
	}
	b.MinX = math.Float64frombits(binary.LittleEndian.Uint64(data[0:8]))
	b.MinY = math.Float64frombits(binary.LittleEndian.Uint64(data[8:16]))
	b.MaxX = math.Float64frombits(binary.LittleEndian.Uint64(data[16:24]))
	b.MaxY = math.Float64frombits(binary.LittleEndian.Uint64(data[24:32]))
	b.valid = data[32] == 1
	return nil
}

// W returns the box width.
func (b BBox) W() float64 { return b.MaxX - b.MinX }

// H returns the box height.
func (b BBox) H() float64 { return b.MaxY - b.MinY }

// HalfPerimeter returns W+H, the HPWL contribution of the box.
func (b BBox) HalfPerimeter() float64 { return b.W() + b.H() }

// Center returns the box center.
func (b BBox) Center() Point { return Point{(b.MinX + b.MaxX) / 2, (b.MinY + b.MaxY) / 2} }

// Contains reports whether p lies inside b (inclusive, with tolerance eps).
func (b BBox) Contains(p Point, eps float64) bool {
	return p.X >= b.MinX-eps && p.X <= b.MaxX+eps && p.Y >= b.MinY-eps && p.Y <= b.MaxY+eps
}

// Clamp returns p moved to the nearest point inside b.
func (b BBox) Clamp(p Point) Point {
	return Point{clamp(p.X, b.MinX, b.MaxX), clamp(p.Y, b.MinY, b.MaxY)}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
