package geom

import (
	"bytes"
	"encoding/gob"
	"testing"
)

// TestBBoxGobRoundTrip pins the custom BBox codec: gob ignores unexported
// fields, so without GobEncode/GobDecode the `valid` flag would silently
// decode as false and every persisted box would report invalid. The codec
// must carry bounds AND validity, for both the zero box and a grown one.
func TestBBoxGobRoundTrip(t *testing.T) {
	boxes := []BBox{
		{},                                // zero value: invalid, must stay invalid
		NewBBox(Pt(1, 2)),                 // degenerate but valid
		NewBBox(Pt(-3, 4), Pt(10, -2.5)),  // ordinary box
		NewBBox(Pt(0, 0), Pt(1e12, 1e12)), // large coordinates
	}
	for i, b := range boxes {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&b); err != nil {
			t.Fatalf("box %d: encode: %v", i, err)
		}
		var got BBox
		if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&got); err != nil {
			t.Fatalf("box %d: decode: %v", i, err)
		}
		if got.Valid() != b.Valid() {
			t.Errorf("box %d: validity %v -> %v", i, b.Valid(), got.Valid())
		}
		if got != b {
			t.Errorf("box %d: round trip changed the box: %+v -> %+v", i, b, got)
		}
	}

	// A struct embedding a BBox round-trips too (the codec is what the ECO
	// base snapshots rely on, where boxes ride inside retained state).
	type wrapper struct {
		Name string
		Box  BBox
	}
	w := wrapper{Name: "region", Box: NewBBox(Pt(1, 1), Pt(2, 9))}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&w); err != nil {
		t.Fatal(err)
	}
	var got wrapper
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got != w {
		t.Errorf("wrapped box changed: %+v -> %+v", w, got)
	}

	// Truncated payloads error instead of fabricating a box.
	var bad BBox
	if err := bad.GobDecode([]byte{1, 2, 3}); err == nil {
		t.Error("truncated payload decoded")
	}
}
