package baseline

import (
	"fmt"
	"sort"

	"dscts/internal/ctree"
	"dscts/internal/eval"
	"dscts/internal/tech"
)

// FlipToBack moves the selected trunk edges of a buffered clock tree to the
// back side and inserts nTSVs at every front/back boundary, preserving
// connectivity (the incremental post-CTS flow of Fig. 1 left / Fig. 2).
//
// flip[id] requests the edge into node id to move; requests on edges that
// carry a mid-edge buffer are ignored (buffer pins live on the front side,
// Sec. II-A). The tree is modified in place; the return value is the number
// of nTSVs inserted.
func FlipToBack(t *ctree.Tree, flip []bool) (int, error) {
	if len(flip) != t.Len() {
		return 0, fmt.Errorf("baseline: flip mask length %d for %d nodes", len(flip), t.Len())
	}
	isTrunk := func(id int) bool {
		k := t.Nodes[id].Kind
		return id != t.Root() && (k == ctree.KindSteiner || k == ctree.KindCentroid)
	}
	// An edge actually flips if requested, trunk, and not buffered.
	flips := make([]bool, t.Len())
	for id := 1; id < t.Len(); id++ {
		flips[id] = flip[id] && isTrunk(id) && !t.Nodes[id].Wiring.BufMid
	}
	// A vertex stays on the back side only if every incident trunk edge is
	// back-side and nothing front-bound lives there (root, node buffer,
	// leaf nets at centroids).
	vertexBack := make([]bool, t.Len())
	for id := range t.Nodes {
		n := &t.Nodes[id]
		if id == t.Root() || n.BufferAtNode || n.Kind == ctree.KindCentroid || n.Kind == ctree.KindSink {
			continue
		}
		back := true
		if isTrunk(id) && !flips[id] {
			back = false
		}
		if id != t.Root() && !isTrunk(id) {
			back = false
		}
		for _, c := range n.Children {
			if isTrunk(c) {
				if !flips[c] {
					back = false
				}
			} else {
				back = false // leaf-net children pin the vertex to the front
			}
		}
		vertexBack[id] = back && flips[id]
	}
	ntsvs := 0
	for id := 1; id < t.Len(); id++ {
		if !flips[id] {
			continue
		}
		n := &t.Nodes[id]
		w := ctree.EdgeWiring{WireSide: ctree.Back}
		if !vertexBack[n.Parent] {
			w.TSVUp = true
			ntsvs++
		}
		if !vertexBack[id] {
			w.TSVDown = true
			ntsvs++
		}
		n.Wiring = w
	}
	if err := t.Validate(); err != nil {
		return 0, fmt.Errorf("baseline: flipped tree invalid: %w", err)
	}
	return ntsvs, nil
}

// Veloso implements method [2]: flip every (unbuffered) net above the
// low-level clustering centroids to the back side — the latency-extreme
// assignment of Fig. 2(b).
func Veloso(t *ctree.Tree) (int, error) {
	flip := make([]bool, t.Len())
	for i := range flip {
		flip[i] = true
	}
	return FlipToBack(t, flip)
}

// FanoutFlip implements method [7]: flip edges whose subtree drives at
// least `threshold` sinks (Fig. 2(c)). The paper's DSE sweeps this
// threshold from 20 to 1000.
func FanoutFlip(t *ctree.Tree, threshold int) (int, error) {
	if threshold <= 0 {
		return 0, fmt.Errorf("baseline: fanout threshold must be positive, got %d", threshold)
	}
	counts := t.SinkCounts()
	flip := make([]bool, t.Len())
	for id := range flip {
		flip[id] = counts[id] >= threshold
	}
	return FlipToBack(t, flip)
}

// CriticalFlip implements method [6]: rank sinks by timing criticality,
// take the worst fraction q (paper sweeps 0.2..0.9, default 0.5), and flip
// the nets on the paths from their leaf clusters to the root (Fig. 2(d)).
// Ground-truth Elmore delays replace the paper's GNN predictor (a strict
// upper bound on its selection quality; DESIGN.md §1).
func CriticalFlip(t *ctree.Tree, tc *tech.Tech, fraction float64) (int, error) {
	if fraction <= 0 || fraction > 1 {
		return 0, fmt.Errorf("baseline: criticality fraction %v outside (0,1]", fraction)
	}
	m, err := eval.New(tc, eval.Elmore).Evaluate(t)
	if err != nil {
		return 0, fmt.Errorf("baseline: %w", err)
	}
	type sd struct {
		node  int
		delay float64
	}
	var all []sd
	for _, sid := range t.Sinks() {
		all = append(all, sd{sid, m.SinkDelays[t.Nodes[sid].SinkIdx]})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].delay > all[j].delay })
	take := int(float64(len(all))*fraction + 0.5)
	if take < 1 {
		take = 1
	}
	flip := make([]bool, t.Len())
	for _, s := range all[:take] {
		// Walk from the sink's centroid up to the root, marking trunk
		// edges on the path.
		for id := t.Nodes[s.node].Parent; id > 0; id = t.Nodes[id].Parent {
			flip[id] = true
		}
	}
	return FlipToBack(t, flip)
}
