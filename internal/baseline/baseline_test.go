package baseline

import (
	"math"
	"math/rand"
	"testing"

	"dscts/internal/ctree"
	"dscts/internal/eval"
	"dscts/internal/geom"
	"dscts/internal/tech"
)

func someSinks(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	hot := []geom.Point{{X: 60, Y: 60}, {X: 350, Y: 100}, {X: 150, Y: 380}}
	pts := make([]geom.Point, n)
	for i := range pts {
		h := hot[rng.Intn(len(hot))]
		pts[i] = geom.Pt(math.Abs(h.X+rng.NormFloat64()*45), math.Abs(h.Y+rng.NormFloat64()*45))
	}
	return pts
}

func TestOpenROADTreeValidAndBuffered(t *testing.T) {
	tc := tech.ASAP7()
	sinks := someSinks(500, 3)
	tr, err := OpenROADTree(geom.Pt(200, 0), sinks, tc, OpenROADOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Sinks()); got != len(sinks) {
		t.Fatalf("%d of %d sinks", got, len(sinks))
	}
	bufs, tsvs := tr.Counts()
	if bufs == 0 {
		t.Fatal("baseline tree has no buffers")
	}
	if tsvs != 0 {
		t.Fatal("front-side baseline must have no nTSVs")
	}
	m, err := eval.New(tc, eval.Elmore).Evaluate(tr)
	if err != nil {
		t.Fatal(err)
	}
	if m.Latency <= 0 || m.Skew < 0 {
		t.Fatalf("metrics %+v", m)
	}
}

func TestOpenROADTreeRespectsMaxCapBudget(t *testing.T) {
	tc := tech.ASAP7()
	sinks := someSinks(800, 7)
	tr, err := OpenROADTree(geom.Pt(0, 0), sinks, tc, OpenROADOptions{ClusterSize: 40})
	if err != nil {
		t.Fatal(err)
	}
	// Every leaf cluster's shielded load must be within the budget the
	// greedy buffering uses.
	front := tc.Front()
	for _, cid := range tr.Centroids() {
		load := 0.0
		for _, c := range tr.Nodes[cid].Children {
			if tr.Nodes[c].Kind == ctree.KindSink {
				load += front.UnitCap*tr.EdgeLen(c) + tc.SinkCap
			}
		}
		if load > tc.Buf.MaxCap {
			t.Fatalf("leaf cluster %d load %.1f exceeds max cap %.1f", cid, load, tc.Buf.MaxCap)
		}
	}
}

func TestOpenROADTreeErrors(t *testing.T) {
	tc := tech.ASAP7()
	if _, err := OpenROADTree(geom.Pt(0, 0), nil, tc, OpenROADOptions{}); err == nil {
		t.Error("no sinks should error")
	}
	bad := *tc
	bad.SinkCap = 0
	if _, err := OpenROADTree(geom.Pt(0, 0), someSinks(10, 1), &bad, OpenROADOptions{}); err == nil {
		t.Error("bad tech should error")
	}
}

func TestVelosoFlipReducesLatency(t *testing.T) {
	tc := tech.ASAP7()
	sinks := someSinks(600, 11)
	tr, err := OpenROADTree(geom.Pt(200, 0), sinks, tc, OpenROADOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ev := eval.New(tc, eval.Elmore)
	before, err := ev.Evaluate(tr)
	if err != nil {
		t.Fatal(err)
	}
	ntsvs, err := Veloso(tr)
	if err != nil {
		t.Fatal(err)
	}
	after, err := ev.Evaluate(tr)
	if err != nil {
		t.Fatal(err)
	}
	if ntsvs == 0 {
		t.Fatal("Veloso inserted no nTSVs")
	}
	if after.NTSVs != ntsvs {
		t.Fatalf("eval counts %d vs reported %d", after.NTSVs, ntsvs)
	}
	// The whole point of [2]: back-side metal cuts latency.
	if after.Latency >= before.Latency {
		t.Fatalf("latency %v not reduced from %v", after.Latency, before.Latency)
	}
	t.Logf("Veloso: %.1f -> %.1f ps with %d nTSVs", before.Latency, after.Latency, ntsvs)
}

func TestFanoutFlipMonotoneInThreshold(t *testing.T) {
	tc := tech.ASAP7()
	sinks := someSinks(600, 13)
	base, err := OpenROADTree(geom.Pt(200, 0), sinks, tc, OpenROADOptions{})
	if err != nil {
		t.Fatal(err)
	}
	prevTSV := 1 << 30
	for _, th := range []int{20, 100, 400} {
		tr := base.Clone()
		n, err := FanoutFlip(tr, th)
		if err != nil {
			t.Fatal(err)
		}
		// Larger thresholds flip fewer nets → no more nTSVs... the count is
		// not strictly monotone (boundaries shift), allow slack.
		if n > prevTSV+4 {
			t.Fatalf("threshold %d gave %d nTSVs, more than smaller threshold's %d", th, n, prevTSV)
		}
		prevTSV = n
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := FanoutFlip(base.Clone(), 0); err == nil {
		t.Error("zero threshold should error")
	}
}

func TestCriticalFlip(t *testing.T) {
	tc := tech.ASAP7()
	sinks := someSinks(600, 17)
	base, err := OpenROADTree(geom.Pt(200, 0), sinks, tc, OpenROADOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tr := base.Clone()
	n, err := CriticalFlip(tr, tc, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no nTSVs inserted")
	}
	ev := eval.New(tc, eval.Elmore)
	before, _ := ev.Evaluate(base)
	after, err := ev.Evaluate(tr)
	if err != nil {
		t.Fatal(err)
	}
	if after.Latency >= before.Latency {
		t.Fatalf("critical flip did not help: %v vs %v", after.Latency, before.Latency)
	}
	// Larger fractions flip at least as many paths.
	tr9 := base.Clone()
	n9, err := CriticalFlip(tr9, tc, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if n9 < n {
		t.Logf("note: q=0.9 used %d nTSVs vs q=0.5's %d (boundary effects)", n9, n)
	}
	if _, err := CriticalFlip(base.Clone(), tc, 0); err == nil {
		t.Error("zero fraction should error")
	}
	if _, err := CriticalFlip(base.Clone(), tc, 1.5); err == nil {
		t.Error("fraction > 1 should error")
	}
}

func TestFlipSkipsBufferedEdges(t *testing.T) {
	tc := tech.ASAP7()
	sinks := someSinks(400, 19)
	tr, err := OpenROADTree(geom.Pt(200, 0), sinks, tc, OpenROADOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buffered []int
	for _, id := range tr.TrunkEdges() {
		if tr.Nodes[id].Wiring.BufMid {
			buffered = append(buffered, id)
		}
	}
	if len(buffered) == 0 {
		t.Skip("no buffered trunk edges in this instance")
	}
	if _, err := Veloso(tr); err != nil {
		t.Fatal(err)
	}
	for _, id := range buffered {
		if tr.Nodes[id].Wiring.WireSide == ctree.Back {
			t.Fatalf("buffered edge %d was flipped to the back side", id)
		}
	}
}

func TestFlipMaskLengthError(t *testing.T) {
	tc := tech.ASAP7()
	tr, err := OpenROADTree(geom.Pt(0, 0), someSinks(50, 23), tc, OpenROADOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FlipToBack(tr, make([]bool, 3)); err == nil {
		t.Fatal("bad mask length should error")
	}
}

// Veloso on a tree with interior buffers produces alternating front/back
// regions; every region boundary must carry an nTSV (validated), and the
// nTSV count must equal the number of side transitions.
func TestFlipTSVCountMatchesTransitions(t *testing.T) {
	tc := tech.ASAP7()
	sinks := someSinks(500, 29)
	tr, err := OpenROADTree(geom.Pt(200, 0), sinks, tc, OpenROADOptions{})
	if err != nil {
		t.Fatal(err)
	}
	n, err := Veloso(tr)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for id := 1; id < tr.Len(); id++ {
		count += tr.Nodes[id].Wiring.NTSVCount()
	}
	if count != n {
		t.Fatalf("wiring has %d nTSVs, Veloso reported %d", count, n)
	}
}
