// Package baseline implements the comparison flows of Table III: an
// OpenROAD/TritonCTS-style front-side buffered clock tree, and the three
// post-CTS back-side assignment methods the paper compares against —
// Veloso et al. [2] (flip everything above the leaf level), Bethur et al.
// [7] (flip by fanout threshold) and Bethur et al. [6] (flip nets feeding
// timing-critical sinks; the GNN selector is replaced by ground-truth delay
// ranking, see DESIGN.md §1).
package baseline

import (
	"fmt"
	"sort"

	"dscts/internal/cluster"
	"dscts/internal/ctree"
	"dscts/internal/geom"
	"dscts/internal/tech"
)

// OpenROADOptions tunes the TritonCTS-style baseline.
type OpenROADOptions struct {
	// ClusterSize is the sink-cluster target (TritonCTS groups ~10-30
	// sinks per leaf buffer). Default 30.
	ClusterSize int
	// RepeaterSpacing segments branches and drives them with repeaters
	// (µm). Default 80.
	RepeaterSpacing float64
	// Seed for clustering determinism.
	Seed int64
}

// OpenROADTree builds a front-side buffered clock tree the way TritonCTS
// does: sink clustering, a balanced geometric-bisection (H-tree-like)
// topology over the cluster centroids, cap-driven repeater insertion along
// branches, and a leaf buffer per cluster.
func OpenROADTree(root geom.Point, sinks []geom.Point, tc *tech.Tech, opt OpenROADOptions) (*ctree.Tree, error) {
	if len(sinks) == 0 {
		return nil, fmt.Errorf("baseline: no sinks")
	}
	if err := tc.Validate(); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	if opt.ClusterSize <= 0 {
		opt.ClusterSize = 30
	}
	if opt.RepeaterSpacing <= 0 {
		opt.RepeaterSpacing = 80
	}
	front := tc.Front()
	cl, err := cluster.KMeans(sinks, cluster.Options{
		TargetSize: opt.ClusterSize, Seed: opt.Seed + 1, Balance: true, MaxIter: 30,
	})
	if err != nil {
		return nil, fmt.Errorf("baseline: clustering: %w", err)
	}
	// Split clusters whose leaf net would exceed the buffer budget.
	groups := splitOverloaded(cl, sinks, tc)

	t := ctree.New(root)
	idx := make([]int, len(groups))
	for i := range idx {
		idx[i] = i
	}
	top := bisect(t, idx, groups, true)
	// Connect the clock root to the topology root.
	reparent(t, top, t.Root())
	// Attach leaf nets.
	for _, cid := range t.Centroids() {
		g := groups[t.Nodes[cid].ClusterIdx]
		for _, si := range g.sinks {
			t.AddSink(cid, sinks[si], si)
		}
	}
	t.SplitTrunkEdges(opt.RepeaterSpacing)
	bufferGreedy(t, tc, front)
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("baseline: built tree invalid: %w", err)
	}
	return t, nil
}

type group struct {
	centroid geom.Point
	sinks    []int
}

// splitOverloaded recursively bipartitions clusters whose leaf-net load
// exceeds the drivable budget.
func splitOverloaded(cl *cluster.Result, sinks []geom.Point, tc *tech.Tech) []group {
	front := tc.Front()
	budget := 0.6 * tc.Buf.MaxCap
	var out []group
	var rec func(g group)
	rec = func(g group) {
		total := 0.0
		for _, si := range g.sinks {
			total += tc.SinkCap + front.UnitCap*sinks[si].Dist(g.centroid)
		}
		if total <= budget || len(g.sinks) <= 1 {
			out = append(out, g)
			return
		}
		pts := make([]geom.Point, len(g.sinks))
		for i, si := range g.sinks {
			pts[i] = sinks[si]
		}
		sub, err := cluster.KMeans(pts, cluster.Options{TargetSize: (len(pts) + 1) / 2, Seed: 99, MaxIter: 20})
		if err != nil || sub.K() < 2 {
			out = append(out, g)
			return
		}
		for k := 0; k < sub.K(); k++ {
			ng := group{centroid: sub.Centroids[k]}
			for _, m := range sub.Members[k] {
				ng.sinks = append(ng.sinks, g.sinks[m])
			}
			rec(ng)
		}
	}
	for c := 0; c < cl.K(); c++ {
		rec(group{centroid: cl.Centroids[c], sinks: append([]int(nil), cl.Members[c]...)})
	}
	return out
}

// bisect recursively splits the group index set by alternating median cuts
// and returns the id of the subtree root it creates (an H-tree-like
// balanced topology).
func bisect(t *ctree.Tree, idx []int, groups []group, vertical bool) int {
	if len(idx) == 1 {
		// Leaf region: a centroid node, temporarily parented at root.
		return t.AddCentroid(t.Root(), groups[idx[0]].centroid, idx[0])
	}
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := groups[idx[a]].centroid, groups[idx[b]].centroid
		if vertical {
			return pa.X < pb.X
		}
		return pa.Y < pb.Y
	})
	mid := len(idx) / 2
	left := bisect(t, append([]int(nil), idx[:mid]...), groups, !vertical)
	right := bisect(t, append([]int(nil), idx[mid:]...), groups, !vertical)
	// Steiner point at the midpoint of the two subtree roots.
	p := t.Nodes[left].Pos.Lerp(t.Nodes[right].Pos, 0.5)
	s := t.Add(t.Root(), ctree.KindSteiner, p)
	reparent(t, left, s)
	reparent(t, right, s)
	return s
}

// reparent moves node id under newParent.
func reparent(t *ctree.Tree, id, newParent int) {
	old := t.Nodes[id].Parent
	if old == newParent {
		return
	}
	kids := t.Nodes[old].Children
	for i, c := range kids {
		if c == id {
			t.Nodes[old].Children = append(kids[:i], kids[i+1:]...)
			break
		}
	}
	t.Nodes[id].Parent = newParent
	t.Nodes[newParent].Children = append(t.Nodes[newParent].Children, id)
}

// bufferGreedy inserts repeaters bottom-up whenever the accumulated load
// would exceed the drive budget, and a leaf buffer at every centroid —
// the level/cap-driven buffering style of TritonCTS.
func bufferGreedy(t *ctree.Tree, tc *tech.Tech, front tech.Layer) {
	budget := 0.7 * tc.Buf.MaxCap
	load := make([]float64, t.Len())
	t.PostOrder(func(id int) {
		n := &t.Nodes[id]
		switch n.Kind {
		case ctree.KindSink:
			load[id] = front.UnitCap*t.EdgeLen(id) + tc.SinkCap
		case ctree.KindCentroid:
			sum := 0.0
			for _, c := range n.Children {
				sum += load[c]
			}
			// Leaf buffer shields the cluster.
			n.BufferAtNode = true
			load[id] = front.UnitCap*t.EdgeLen(id) + tc.Buf.InputCap
			_ = sum
		default:
			sum := 0.0
			for _, c := range n.Children {
				sum += load[c]
			}
			wire := front.UnitCap * t.EdgeLen(id)
			if id == t.Root() {
				load[id] = sum
				return
			}
			if sum+wire > budget {
				n.Wiring.BufMid = true
				load[id] = front.UnitCap*t.EdgeLen(id)/2 + tc.Buf.InputCap
			} else {
				load[id] = sum + wire
			}
		}
	})
}
