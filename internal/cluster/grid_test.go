package cluster

import (
	"math/rand"
	"testing"

	"dscts/internal/geom"
)

// TestGridMatchesBrute pins the accelerator contract: the spatial-grid
// nearest-centroid search must reproduce the brute-force clustering
// exactly — same assignments, same centroids — for any worker count,
// including clustered (hotspot-like) and degenerate point sets.
func TestGridMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 6; trial++ {
		n := 300 + rng.Intn(2500)
		pts := make([]geom.Point, n)
		for i := range pts {
			switch trial % 3 {
			case 0: // uniform
				pts[i] = geom.Pt(rng.Float64()*1000, rng.Float64()*800)
			case 1: // hotspots, like the Table II generator
				cx, cy := float64(rng.Intn(4))*250, float64(rng.Intn(3))*250
				pts[i] = geom.Pt(cx+rng.NormFloat64()*40, cy+rng.NormFloat64()*40)
			default: // near-collinear (degenerate vertical extent)
				pts[i] = geom.Pt(rng.Float64()*1000, rng.Float64()*1e-6)
			}
		}
		grid, err := KMeans(pts, Options{TargetSize: 25, Seed: int64(trial), Balance: true, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		brute, err := KMeans(pts, Options{TargetSize: 25, Seed: int64(trial), Balance: true, Workers: 5, Brute: true})
		if err != nil {
			t.Fatal(err)
		}
		if grid.K() != brute.K() {
			t.Fatalf("trial %d: K %d vs %d", trial, grid.K(), brute.K())
		}
		for i := range grid.Assign {
			if grid.Assign[i] != brute.Assign[i] {
				t.Fatalf("trial %d: assign[%d] = %d (grid) vs %d (brute)", trial, i, grid.Assign[i], brute.Assign[i])
			}
		}
		for c := range grid.Centroids {
			if grid.Centroids[c] != brute.Centroids[c] {
				t.Fatalf("trial %d: centroid %d differs: %v vs %v", trial, c, grid.Centroids[c], brute.Centroids[c])
			}
		}
	}
}

// TestDualLevelWorkerInvariance checks the full dual-level hierarchy is
// identical across worker counts (the parallel path covers the
// per-high-cluster fan-out and the sharded assignment loop).
func TestDualLevelWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := make([]geom.Point, 5000)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*2000, rng.Float64()*1500)
	}
	opt := DualOptions{HighSize: 1500, LowSize: 30, Seed: 1, MaxIter: 40}
	opt.Workers = 1
	a, err := DualLevel(pts, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = 7
	b, err := DualLevel(pts, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumLow() != b.NumLow() {
		t.Fatalf("low cluster counts differ: %d vs %d", a.NumLow(), b.NumLow())
	}
	for lc := range a.LowCentroids {
		if a.LowCentroids[lc] != b.LowCentroids[lc] {
			t.Fatalf("low centroid %d differs: %v vs %v", lc, a.LowCentroids[lc], b.LowCentroids[lc])
		}
		if len(a.LowSinks[lc]) != len(b.LowSinks[lc]) {
			t.Fatalf("low cluster %d sizes differ", lc)
		}
		for i := range a.LowSinks[lc] {
			if a.LowSinks[lc][i] != b.LowSinks[lc][i] {
				t.Fatalf("low cluster %d member %d differs", lc, i)
			}
		}
	}
}
