// Package cluster implements the dual-level sink clustering of the paper's
// hierarchical clock routing (Sec. III-B): k-means++ seeded Lloyd iterations
// with a capacity-balancing refinement, applied twice — high-level clusters
// of target size Hc (3000 in the paper) and, within each, low-level clusters
// of target size Lc (30). Centroids of both levels are recorded for the
// hierarchical DME step and for skew-refinement buffer sites.
package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dscts/internal/geom"
)

// Result is one clustering solution.
type Result struct {
	// Assign maps each input point index to its cluster id in [0,K).
	Assign []int
	// Centroids holds one centroid per cluster.
	Centroids []geom.Point
	// Members lists the point indices of each cluster.
	Members [][]int
}

// K returns the number of clusters.
func (r *Result) K() int { return len(r.Centroids) }

// IntraWL returns the total intra-cluster wirelength approximation the
// high-level clustering minimizes: the sum of Manhattan distances from each
// point to its cluster centroid.
func (r *Result) IntraWL(pts []geom.Point) float64 {
	var wl float64
	for i, a := range r.Assign {
		wl += pts[i].Dist(r.Centroids[a])
	}
	return wl
}

// Options controls KMeans.
type Options struct {
	// TargetSize is the desired cluster size; K = ceil(N/TargetSize).
	TargetSize int
	// MaxIter bounds Lloyd iterations.
	MaxIter int
	// Seed makes runs deterministic.
	Seed int64
	// Balance enables the capacity refinement pass that caps cluster size
	// at ceil(1.25·TargetSize), moving overflow points to their next
	// nearest non-full cluster. This keeps low-level clusters within the
	// leaf-net fanout bound.
	Balance bool
}

// KMeans clusters pts into ceil(len(pts)/TargetSize) groups.
func KMeans(pts []geom.Point, opt Options) (*Result, error) {
	n := len(pts)
	if n == 0 {
		return nil, fmt.Errorf("cluster: no points")
	}
	if opt.TargetSize <= 0 {
		return nil, fmt.Errorf("cluster: target size %d", opt.TargetSize)
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 50
	}
	k := (n + opt.TargetSize - 1) / opt.TargetSize
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	cents := seedPlusPlus(pts, k, rng)
	assign := make([]int, n)
	for iter := 0; iter < opt.MaxIter; iter++ {
		changed := assignNearest(pts, cents, assign)
		cents = recompute(pts, assign, k, cents)
		if !changed && iter > 0 {
			break
		}
	}
	if opt.Balance {
		balance(pts, cents, assign, opt.TargetSize)
		cents = recompute(pts, assign, len(cents), cents)
	}
	return buildResult(pts, cents, assign), nil
}

// seedPlusPlus is the k-means++ seeding: spread initial centroids with
// probability proportional to squared distance from the nearest chosen seed.
func seedPlusPlus(pts []geom.Point, k int, rng *rand.Rand) []geom.Point {
	cents := make([]geom.Point, 0, k)
	cents = append(cents, pts[rng.Intn(len(pts))])
	d2 := make([]float64, len(pts))
	for i, p := range pts {
		d2[i] = sq(p.DistEuclid(cents[0]))
	}
	for len(cents) < k {
		var total float64
		for _, v := range d2 {
			total += v
		}
		var next int
		if total <= 0 {
			next = rng.Intn(len(pts))
		} else {
			r := rng.Float64() * total
			acc := 0.0
			next = len(pts) - 1
			for i, v := range d2 {
				acc += v
				if acc >= r {
					next = i
					break
				}
			}
		}
		c := pts[next]
		cents = append(cents, c)
		for i, p := range pts {
			if v := sq(p.DistEuclid(c)); v < d2[i] {
				d2[i] = v
			}
		}
	}
	return cents
}

func sq(v float64) float64 { return v * v }

func assignNearest(pts []geom.Point, cents []geom.Point, assign []int) bool {
	changed := false
	for i, p := range pts {
		best, bestD := 0, math.Inf(1)
		for c, cp := range cents {
			if d := p.DistEuclid(cp); d < bestD {
				best, bestD = c, d
			}
		}
		if assign[i] != best {
			assign[i] = best
			changed = true
		}
	}
	return changed
}

func recompute(pts []geom.Point, assign []int, k int, prev []geom.Point) []geom.Point {
	sum := make([]geom.Point, k)
	cnt := make([]int, k)
	for i, a := range assign {
		sum[a] = sum[a].Add(pts[i])
		cnt[a]++
	}
	cents := make([]geom.Point, k)
	for c := range cents {
		if cnt[c] == 0 {
			cents[c] = prev[c] // keep empty cluster's seed; may repopulate
			continue
		}
		cents[c] = sum[c].Scale(1 / float64(cnt[c]))
	}
	return cents
}

// balance enforces a soft capacity of ceil(1.25·target): clusters over the
// cap shed their farthest points to the nearest cluster with headroom.
func balance(pts []geom.Point, cents []geom.Point, assign []int, target int) {
	capSize := int(math.Ceil(1.25 * float64(target)))
	if capSize < 1 {
		capSize = 1
	}
	k := len(cents)
	members := make([][]int, k)
	for i, a := range assign {
		members[a] = append(members[a], i)
	}
	size := make([]int, k)
	for c := range members {
		size[c] = len(members[c])
	}
	for c := 0; c < k; c++ {
		if size[c] <= capSize {
			continue
		}
		// Evict points farthest from the centroid first.
		m := members[c]
		sort.Slice(m, func(i, j int) bool {
			return pts[m[i]].DistEuclid(cents[c]) < pts[m[j]].DistEuclid(cents[c])
		})
		for len(m) > capSize {
			p := m[len(m)-1]
			m = m[:len(m)-1]
			// Nearest cluster with headroom.
			best, bestD := -1, math.Inf(1)
			for o := 0; o < k; o++ {
				if o == c || size[o] >= capSize {
					continue
				}
				if d := pts[p].DistEuclid(cents[o]); d < bestD {
					best, bestD = o, d
				}
			}
			if best < 0 {
				// Everyone full (can happen when N ≈ k·cap); keep it.
				m = append(m, p)
				break
			}
			assign[p] = best
			size[best]++
			size[c]--
		}
		members[c] = m
	}
}

func buildResult(pts []geom.Point, cents []geom.Point, assign []int) *Result {
	// Drop empty clusters and remap ids for a compact result.
	k := len(cents)
	cnt := make([]int, k)
	for _, a := range assign {
		cnt[a]++
	}
	remap := make([]int, k)
	var kept []geom.Point
	for c := 0; c < k; c++ {
		if cnt[c] == 0 {
			remap[c] = -1
			continue
		}
		remap[c] = len(kept)
		kept = append(kept, cents[c])
	}
	out := &Result{
		Assign:    make([]int, len(assign)),
		Centroids: kept,
		Members:   make([][]int, len(kept)),
	}
	for i, a := range assign {
		na := remap[a]
		out.Assign[i] = na
		out.Members[na] = append(out.Members[na], i)
	}
	return out
}
