// Package cluster implements the dual-level sink clustering of the paper's
// hierarchical clock routing (Sec. III-B): k-means++ seeded Lloyd iterations
// with a capacity-balancing refinement, applied twice — high-level clusters
// of target size Hc (3000 in the paper) and, within each, low-level clusters
// of target size Lc (30). Centroids of both levels are recorded for the
// hierarchical DME step and for skew-refinement buffer sites.
//
// The Lloyd assignment step — the hot loop of the whole synthesis flow — is
// accelerated two ways, neither of which changes the result:
//
//   - a spatial grid over the centroids answers exact nearest-centroid
//     queries by ring search instead of the naive O(k) scan (see grid.go);
//   - the per-point assignment loop is sharded across a worker pool
//     (Options.Workers). Assignments are pure per-point functions of the
//     centroid set and centroid updates are accumulated sequentially, so any
//     worker count produces bit-identical clusterings.
//
// Iterations also stop as soon as the centroid set reaches a fixed point
// (exact equality), which skips the trailing no-op assignment passes of a
// fixed iteration budget.
package cluster

import (
	"fmt"
	"math"
	"math/rand/v2"
	"slices"
	"sort"

	"dscts/internal/geom"
	"dscts/internal/par"
)

// Result is one clustering solution.
type Result struct {
	// Assign maps each input point index to its cluster id in [0,K).
	Assign []int
	// Centroids holds one centroid per cluster.
	Centroids []geom.Point
	// Members lists the point indices of each cluster.
	Members [][]int
}

// K returns the number of clusters.
func (r *Result) K() int { return len(r.Centroids) }

// IntraWL returns the total intra-cluster wirelength approximation the
// high-level clustering minimizes: the sum of Manhattan distances from each
// point to its cluster centroid.
func (r *Result) IntraWL(pts []geom.Point) float64 {
	var wl float64
	for i, a := range r.Assign {
		wl += pts[i].Dist(r.Centroids[a])
	}
	return wl
}

// Options controls KMeans.
type Options struct {
	// TargetSize is the desired cluster size; K = ceil(N/TargetSize).
	TargetSize int
	// MaxIter bounds Lloyd iterations.
	MaxIter int
	// Seed makes runs deterministic.
	Seed int64
	// Balance enables the capacity refinement pass that caps cluster size
	// at ceil(1.25·TargetSize), moving overflow points to their next
	// nearest non-full cluster. This keeps low-level clusters within the
	// leaf-net fanout bound.
	Balance bool
	// Workers shards the assignment loop; <= 0 means all CPUs. The result
	// is identical for every worker count.
	Workers int
	// Brute disables the spatial-grid nearest-centroid accelerator and
	// forces the reference O(n·k) scan. The grid is exact, so this only
	// exists for benchmarking and cross-checking (see grid.go).
	Brute bool
}

// KMeans clusters pts into ceil(len(pts)/TargetSize) groups.
func KMeans(pts []geom.Point, opt Options) (*Result, error) {
	n := len(pts)
	if n == 0 {
		return nil, fmt.Errorf("cluster: no points")
	}
	if opt.TargetSize <= 0 {
		return nil, fmt.Errorf("cluster: target size %d", opt.TargetSize)
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 50
	}
	k := (n + opt.TargetSize - 1) / opt.TargetSize
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	// PCG seeding is effectively free, which matters because the
	// cap-aware splitting of the dual-level hierarchy re-enters KMeans
	// hundreds of times on small point sets.
	rng := rand.New(rand.NewPCG(uint64(opt.Seed), 0x9e3779b97f4a7c15))
	cents := seedPlusPlus(pts, k, rng)
	assign := make([]int, n)
	workers := par.N(opt.Workers)
	var grid *centGrid
	if !opt.Brute {
		grid = newCentGrid(cents)
	}
	prev := make([]geom.Point, k)
	changedBy := make([]bool, (n+assignChunk-1)/assignChunk)
	for iter := 0; iter < opt.MaxIter; iter++ {
		if grid != nil {
			grid.build(cents)
		}
		changed := assignNearest(pts, cents, assign, grid, workers, changedBy)
		copy(prev, cents)
		cents = recompute(pts, assign, k, cents)
		if !changed && iter > 0 {
			break
		}
		// Fixed point: if no centroid moved at all, the next assignment
		// pass cannot change anything either — stop early. Exact equality
		// keeps the final (assign, cents) identical to the full loop.
		if slices.Equal(prev, cents) {
			break
		}
	}
	if opt.Balance {
		balance(pts, cents, assign, opt.TargetSize)
		cents = recompute(pts, assign, len(cents), cents)
	}
	return buildResult(pts, cents, assign), nil
}

// seedPlusPlus is the k-means++ seeding: spread initial centroids with
// probability proportional to squared distance from the nearest chosen seed.
func seedPlusPlus(pts []geom.Point, k int, rng *rand.Rand) []geom.Point {
	cents := make([]geom.Point, 0, k)
	cents = append(cents, pts[rng.IntN(len(pts))])
	d2 := make([]float64, len(pts))
	var total float64
	for i, p := range pts {
		d2[i] = p.Dist2(cents[0])
		total += d2[i]
	}
	for len(cents) < k {
		var next int
		if total <= 0 {
			next = rng.IntN(len(pts))
		} else {
			r := rng.Float64() * total
			acc := 0.0
			next = len(pts) - 1
			for i, v := range d2 {
				acc += v
				if acc >= r {
					next = i
					break
				}
			}
		}
		c := pts[next]
		cents = append(cents, c)
		// Tighten the distance field and rebuild its sum in one pass
		// (recomputing rather than decrementing keeps the sum exact).
		total = 0
		for i, p := range pts {
			if v := p.Dist2(c); v < d2[i] {
				d2[i] = v
			}
			total += d2[i]
		}
	}
	return cents
}

// assignChunk is the fixed shard size of the parallel assignment loop. The
// chunk boundaries depend only on the point count, so sharding never
// affects which points compare against which centroids.
const assignChunk = 2048

// assignNearest writes the index of the exact nearest centroid (lowest
// index on ties) for every point, using the grid accelerator when one is
// available and sharding across workers. Each point's assignment is an
// independent pure function, so the output is schedule-independent.
func assignNearest(pts []geom.Point, cents []geom.Point, assign []int, grid *centGrid, workers int, changedBy []bool) bool {
	n := len(pts)
	for i := range changedBy {
		changedBy[i] = false
	}
	par.Chunks(workers, n, assignChunk, func(lo, hi int) {
		chunkChanged := false
		for i := lo; i < hi; i++ {
			var best int
			if grid != nil {
				best = grid.nearest(pts[i], cents)
			} else {
				best = bruteNearest(pts[i], cents)
			}
			if assign[i] != best {
				assign[i] = best
				chunkChanged = true
			}
		}
		if chunkChanged {
			changedBy[lo/assignChunk] = true
		}
	})
	for _, c := range changedBy {
		if c {
			return true
		}
	}
	return false
}

// bruteNearest is the reference O(k) scan; first minimum wins, which equals
// the lowest index among distance ties. Squared distances order identically
// to Euclidean ones, so this matches the grid search exactly.
func bruteNearest(p geom.Point, cents []geom.Point) int {
	best, bestD2 := 0, math.Inf(1)
	for c, cp := range cents {
		if d2 := p.Dist2(cp); d2 < bestD2 {
			best, bestD2 = c, d2
		}
	}
	return best
}

func recompute(pts []geom.Point, assign []int, k int, prev []geom.Point) []geom.Point {
	sum := make([]geom.Point, k)
	cnt := make([]int, k)
	for i, a := range assign {
		sum[a] = sum[a].Add(pts[i])
		cnt[a]++
	}
	cents := make([]geom.Point, k)
	for c := range cents {
		if cnt[c] == 0 {
			cents[c] = prev[c] // keep empty cluster's seed; may repopulate
			continue
		}
		cents[c] = sum[c].Scale(1 / float64(cnt[c]))
	}
	return cents
}

// balance enforces a soft capacity of ceil(1.25·target): clusters over the
// cap shed their farthest points to the nearest cluster with headroom.
func balance(pts []geom.Point, cents []geom.Point, assign []int, target int) {
	capSize := int(math.Ceil(1.25 * float64(target)))
	if capSize < 1 {
		capSize = 1
	}
	k := len(cents)
	members := make([][]int, k)
	for i, a := range assign {
		members[a] = append(members[a], i)
	}
	size := make([]int, k)
	for c := range members {
		size[c] = len(members[c])
	}
	for c := 0; c < k; c++ {
		if size[c] <= capSize {
			continue
		}
		// Evict points farthest from the centroid first.
		m := members[c]
		sort.Slice(m, func(i, j int) bool {
			return pts[m[i]].Dist2(cents[c]) < pts[m[j]].Dist2(cents[c])
		})
		for len(m) > capSize {
			p := m[len(m)-1]
			m = m[:len(m)-1]
			// Nearest cluster with headroom.
			best, bestD2 := -1, math.Inf(1)
			for o := 0; o < k; o++ {
				if o == c || size[o] >= capSize {
					continue
				}
				if d2 := pts[p].Dist2(cents[o]); d2 < bestD2 {
					best, bestD2 = o, d2
				}
			}
			if best < 0 {
				// Everyone full (can happen when N ≈ k·cap); keep it.
				m = append(m, p)
				break
			}
			assign[p] = best
			size[best]++
			size[c]--
		}
		members[c] = m
	}
}

func buildResult(pts []geom.Point, cents []geom.Point, assign []int) *Result {
	// Drop empty clusters and remap ids for a compact result.
	k := len(cents)
	cnt := make([]int, k)
	for _, a := range assign {
		cnt[a]++
	}
	remap := make([]int, k)
	var kept []geom.Point
	for c := 0; c < k; c++ {
		if cnt[c] == 0 {
			remap[c] = -1
			continue
		}
		remap[c] = len(kept)
		kept = append(kept, cents[c])
	}
	out := &Result{
		Assign:    make([]int, len(assign)),
		Centroids: kept,
		Members:   make([][]int, len(kept)),
	}
	for i, a := range assign {
		na := remap[a]
		out.Assign[i] = na
		out.Members[na] = append(out.Members[na], i)
	}
	return out
}
