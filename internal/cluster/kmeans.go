// Package cluster implements the dual-level sink clustering of the paper's
// hierarchical clock routing (Sec. III-B): k-means++ seeded Lloyd iterations
// with a capacity-balancing refinement, applied twice — high-level clusters
// of target size Hc (3000 in the paper) and, within each, low-level clusters
// of target size Lc (30). Centroids of both levels are recorded for the
// hierarchical DME step and for skew-refinement buffer sites.
//
// The Lloyd assignment step — the hot loop of the whole synthesis flow — is
// accelerated three ways, none of which changes the result:
//
//   - a spatial grid over the centroids answers exact nearest-centroid
//     queries by ring search instead of the naive O(k) scan (see grid.go);
//   - the per-point assignment loop is sharded across a worker pool
//     (Options.Workers). Assignments are pure per-point functions of the
//     centroid set and centroid updates are accumulated sequentially, so any
//     worker count produces bit-identical clusterings;
//   - all inner loops run over flat struct-of-arrays x/y float64 slices held
//     in a reusable scratch arena (kmScratch) instead of []geom.Point, so a
//     whole Lloyd run allocates nothing after the first invocation warms the
//     scratch. The scratch comes from the job arena (Options.Arena) when one
//     is attached, or from a package-level pool otherwise — repeated calls
//     reuse buffers either way.
//
// Iterations also stop as soon as the centroid set reaches a fixed point
// (exact equality), which skips the trailing no-op assignment passes of a
// fixed iteration budget.
package cluster

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"dscts/internal/arena"
	"dscts/internal/geom"
	"dscts/internal/par"
)

// Result is one clustering solution.
type Result struct {
	// Assign maps each input point index to its cluster id in [0,K).
	Assign []int
	// Centroids holds one centroid per cluster.
	Centroids []geom.Point
	// Members lists the point indices of each cluster.
	Members [][]int
}

// K returns the number of clusters.
func (r *Result) K() int { return len(r.Centroids) }

// IntraWL returns the total intra-cluster wirelength approximation the
// high-level clustering minimizes: the sum of Manhattan distances from each
// point to its cluster centroid.
func (r *Result) IntraWL(pts []geom.Point) float64 {
	var wl float64
	for i, a := range r.Assign {
		wl += pts[i].Dist(r.Centroids[a])
	}
	return wl
}

// Options controls KMeans.
type Options struct {
	// TargetSize is the desired cluster size; K = ceil(N/TargetSize).
	TargetSize int
	// MaxIter bounds Lloyd iterations.
	MaxIter int
	// Seed makes runs deterministic.
	Seed int64
	// Balance enables the capacity refinement pass that caps cluster size
	// at ceil(1.25·TargetSize), moving overflow points to their next
	// nearest non-full cluster. This keeps low-level clusters within the
	// leaf-net fanout bound.
	Balance bool
	// Workers shards the assignment loop; <= 0 means all CPUs. The result
	// is identical for every worker count.
	Workers int
	// Brute disables the spatial-grid nearest-centroid accelerator and
	// forces the reference O(n·k) scan. The grid is exact, so this only
	// exists for benchmarking and cross-checking (see grid.go).
	Brute bool
	// Arena, when set, sources all Lloyd scratch from the job's arena so
	// recycled jobs cluster allocation-free. A nil Arena falls back to a
	// package-level scratch pool; results are bit-identical either way.
	Arena *arena.Job
}

// kmScratch holds every transient buffer of one KMeans invocation in flat
// struct-of-arrays form. It is reused across invocations via clusterScratch
// pools; every field is fully (re)written before it is read, so reuse cannot
// affect results.
type kmScratch struct {
	xs, ys   []float64 // flattened input points
	cxs, cys []float64 // centroids
	pxs, pys []float64 // previous-iteration centroids
	sxs, sys []float64 // recompute accumulators
	cnt      []int
	d2       []float64 // k-means++ distance field
	assign   []int
	changed  []bool // per-chunk assignment-change flags
	remap    []int
	members  []int // balance: counting-sorted member index backing
	moff     []int
	grid     centGrid
}

// clusterScratch is the cluster phase's slot in the job arena: pools of
// per-invocation scratch (nested and concurrent KMeans calls each check out
// their own).
type clusterScratch struct {
	km  arena.Pool[kmScratch]
	sub arena.Pool[subBuf]
}

// subBuf stages the point subset handed to a nested KMeans call.
type subBuf struct {
	pts []geom.Point
}

// fallbackScratch serves callers with no job arena attached, so even the
// plain KMeans/DualLevel entry points stop re-making their scratch on every
// invocation.
var fallbackScratch clusterScratch

func scratchHome(j *arena.Job) *clusterScratch {
	if s := arena.Slot(j, arena.PhaseCluster, func() *clusterScratch { return &clusterScratch{} }); s != nil {
		return s
	}
	return &fallbackScratch
}

// KMeans clusters pts into ceil(len(pts)/TargetSize) groups.
func KMeans(pts []geom.Point, opt Options) (*Result, error) {
	n := len(pts)
	if n == 0 {
		return nil, fmt.Errorf("cluster: no points")
	}
	if opt.TargetSize <= 0 {
		return nil, fmt.Errorf("cluster: target size %d", opt.TargetSize)
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 50
	}
	k := (n + opt.TargetSize - 1) / opt.TargetSize
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	home := scratchHome(opt.Arena)
	s := home.km.Get()
	if s == nil {
		s = &kmScratch{}
	}
	defer home.km.Put(s)

	s.xs = arena.Grow(s.xs, n)
	s.ys = arena.Grow(s.ys, n)
	for i, p := range pts {
		s.xs[i] = p.X
		s.ys[i] = p.Y
	}
	lloyd(s, n, k, opt)
	if opt.Balance {
		balance(s, n, k, opt.TargetSize)
		recompute(s, n, k)
	}
	return buildResult(s, n, k), nil
}

// lloyd runs the k-means++ seeding and the Lloyd iteration loop entirely in
// scratch, leaving the final assignment in s.assign[:n] and the centroids in
// s.cxs/s.cys[:k]. It is shared by KMeans and the allocation-free bisect
// entry of the cap-aware splitter.
func lloyd(s *kmScratch, n, k int, opt Options) {
	s.cxs = arena.Grow(s.cxs, k)
	s.cys = arena.Grow(s.cys, k)
	s.pxs = arena.Grow(s.pxs, k)
	s.pys = arena.Grow(s.pys, k)
	s.sxs = arena.Grow(s.sxs, k)
	s.sys = arena.Grow(s.sys, k)
	s.cnt = arena.Grow(s.cnt, k)
	s.assign = arena.GrowZero(s.assign, n)
	s.changed = arena.Grow(s.changed, (n+assignChunk-1)/assignChunk)

	// PCG seeding is effectively free, which matters because the
	// cap-aware splitting of the dual-level hierarchy re-enters KMeans
	// hundreds of times on small point sets.
	rng := rand.New(rand.NewPCG(uint64(opt.Seed), 0x9e3779b97f4a7c15))
	seedPlusPlus(s, n, k, rng)
	workers := par.N(opt.Workers)
	useGrid := !opt.Brute && s.grid.size(s.cxs, s.cys)
	for iter := 0; iter < opt.MaxIter; iter++ {
		if useGrid {
			s.grid.build(s.cxs, s.cys)
		}
		changed := assignNearest(s, useGrid, workers)
		copy(s.pxs, s.cxs)
		copy(s.pys, s.cys)
		recompute(s, n, k)
		if !changed && iter > 0 {
			break
		}
		// Fixed point: if no centroid moved at all, the next assignment
		// pass cannot change anything either — stop early. Exact equality
		// keeps the final (assign, cents) identical to the full loop.
		if centsEqual(s, k) {
			break
		}
	}
}

// bisect is the allocation-free twin of KMeans for the cap-aware recursive
// bipartition: TargetSize=(n+1)/2 always yields k=2 for n >= 2, Balance is
// off, and the caller consumes the assignment/centroids straight from the
// returned scratch (which it must hand back to home.km). The points are
// gathered from sinks through the index list, so the split recursion never
// materializes point subsets. The computation — seeding, iteration, early
// exits — is byte-for-byte the KMeans code path, so the split hierarchy is
// bit-identical to the one the full KMeans entry produced.
func bisect(sinks []geom.Point, idx []int, opt Options, home *clusterScratch) *kmScratch {
	n := len(idx)
	if opt.MaxIter <= 0 {
		opt.MaxIter = 50
	}
	s := home.km.Get()
	if s == nil {
		s = &kmScratch{}
	}
	s.xs = arena.Grow(s.xs, n)
	s.ys = arena.Grow(s.ys, n)
	for i, id := range idx {
		s.xs[i] = sinks[id].X
		s.ys[i] = sinks[id].Y
	}
	lloyd(s, n, 2, opt)
	return s
}

func centsEqual(s *kmScratch, k int) bool {
	for c := 0; c < k; c++ {
		if s.pxs[c] != s.cxs[c] || s.pys[c] != s.cys[c] {
			return false
		}
	}
	return true
}

// seedPlusPlus is the k-means++ seeding: spread initial centroids with
// probability proportional to squared distance from the nearest chosen seed.
// It writes the k seeds into s.cxs/s.cys.
func seedPlusPlus(s *kmScratch, n, k int, rng *rand.Rand) {
	first := rng.IntN(n)
	s.cxs[0] = s.xs[first]
	s.cys[0] = s.ys[first]
	if k == 1 {
		// The distance field below only steers the CHOICE of later seeds;
		// with a single centroid it is dead work (the rng is not consulted
		// again), so skipping it cannot change any result.
		return
	}
	s.d2 = arena.Grow(s.d2, n)
	d2 := s.d2
	var total float64
	for i := 0; i < n; i++ {
		dx, dy := s.xs[i]-s.cxs[0], s.ys[i]-s.cys[0]
		d2[i] = dx*dx + dy*dy
		total += d2[i]
	}
	for kc := 1; kc < k; kc++ {
		var next int
		if total <= 0 {
			next = rng.IntN(n)
		} else {
			r := rng.Float64() * total
			acc := 0.0
			next = n - 1
			for i, v := range d2 {
				acc += v
				if acc >= r {
					next = i
					break
				}
			}
		}
		cx, cy := s.xs[next], s.ys[next]
		s.cxs[kc] = cx
		s.cys[kc] = cy
		// Tighten the distance field and rebuild its sum in one pass
		// (recomputing rather than decrementing keeps the sum exact).
		total = 0
		for i := 0; i < n; i++ {
			dx, dy := s.xs[i]-cx, s.ys[i]-cy
			if v := dx*dx + dy*dy; v < d2[i] {
				d2[i] = v
			}
			total += d2[i]
		}
	}
}

// assignChunk is the fixed shard size of the parallel assignment loop. The
// chunk boundaries depend only on the point count, so sharding never
// affects which points compare against which centroids. It is also the
// cache block: a chunk's x/y lanes (2·2048·8 B = 32 KB) stay resident while
// the centroid lanes stream through.
const assignChunk = 2048

// assignNearest writes the index of the exact nearest centroid (lowest
// index on ties) for every point, using the grid accelerator when one is
// available and sharding across workers. Each point's assignment is an
// independent pure function, so the output is schedule-independent.
func assignNearest(s *kmScratch, useGrid bool, workers int) bool {
	n := len(s.xs)
	for i := range s.changed {
		s.changed[i] = false
	}
	if workers <= 1 {
		// Inline chunk walk: same chunk boundaries and per-point work as
		// the pooled path, minus the escaping closures (which used to cost
		// two heap allocations per Lloyd pass — thousands per clustering
		// once the cap-aware splitter re-enters KMeans per low cluster).
		for lo := 0; lo < n; lo += assignChunk {
			hi := lo + assignChunk
			if hi > n {
				hi = n
			}
			chunkChanged := false
			if useGrid {
				for i := lo; i < hi; i++ {
					best := s.grid.nearest(s.xs[i], s.ys[i], s.cxs, s.cys, s.assign[i])
					if s.assign[i] != best {
						s.assign[i] = best
						chunkChanged = true
					}
				}
			} else {
				for i := lo; i < hi; i++ {
					best := bruteNearest(s.xs[i], s.ys[i], s.cxs, s.cys)
					if s.assign[i] != best {
						s.assign[i] = best
						chunkChanged = true
					}
				}
			}
			if chunkChanged {
				s.changed[lo/assignChunk] = true
			}
		}
		for _, c := range s.changed {
			if c {
				return true
			}
		}
		return false
	}
	par.Chunks(workers, n, assignChunk, func(lo, hi int) {
		chunkChanged := false
		if useGrid {
			for i := lo; i < hi; i++ {
				best := s.grid.nearest(s.xs[i], s.ys[i], s.cxs, s.cys, s.assign[i])
				if s.assign[i] != best {
					s.assign[i] = best
					chunkChanged = true
				}
			}
		} else {
			for i := lo; i < hi; i++ {
				best := bruteNearest(s.xs[i], s.ys[i], s.cxs, s.cys)
				if s.assign[i] != best {
					s.assign[i] = best
					chunkChanged = true
				}
			}
		}
		if chunkChanged {
			s.changed[lo/assignChunk] = true
		}
	})
	for _, c := range s.changed {
		if c {
			return true
		}
	}
	return false
}

// bruteNearest is the reference O(k) scan; first minimum wins, which equals
// the lowest index among distance ties. Squared distances order identically
// to Euclidean ones, so this matches the grid search exactly.
func bruteNearest(px, py float64, cxs, cys []float64) int {
	best, bestD2 := 0, math.Inf(1)
	for c := range cxs {
		dx, dy := px-cxs[c], py-cys[c]
		if d2 := dx*dx + dy*dy; d2 < bestD2 {
			best, bestD2 = c, d2
		}
	}
	return best
}

// recompute rebuilds the centroid set from the current assignment, in place
// over s.cxs/s.cys. Sums accumulate componentwise in point order — the exact
// FP operation sequence of the original geom.Point accumulation. Clusters
// left empty keep their current centroid (they may repopulate).
func recompute(s *kmScratch, n, k int) {
	sxs, sys, cnt := s.sxs[:k], s.sys[:k], s.cnt[:k]
	for c := 0; c < k; c++ {
		sxs[c], sys[c], cnt[c] = 0, 0, 0
	}
	for i := 0; i < n; i++ {
		a := s.assign[i]
		sxs[a] += s.xs[i]
		sys[a] += s.ys[i]
		cnt[a]++
	}
	for c := 0; c < k; c++ {
		if cnt[c] == 0 {
			continue // keep seed; may repopulate
		}
		inv := 1 / float64(cnt[c])
		s.cxs[c] = sxs[c] * inv
		s.cys[c] = sys[c] * inv
	}
}

// balance enforces a soft capacity of ceil(1.25·target): clusters over the
// cap shed their farthest points to the nearest cluster with headroom.
func balance(s *kmScratch, n, k, target int) {
	capSize := int(math.Ceil(1.25 * float64(target)))
	if capSize < 1 {
		capSize = 1
	}
	// Counting-sort the members into one flat backing; segments are
	// three-index sliced so the rare "everyone full" re-append cannot
	// scribble over the next cluster's segment.
	s.moff = arena.Grow(s.moff, k+1)
	s.members = arena.Grow(s.members, n)
	moff := s.moff
	for c := range moff {
		moff[c] = 0
	}
	for i := 0; i < n; i++ {
		moff[s.assign[i]+1]++
	}
	for c := 1; c <= k; c++ {
		moff[c] += moff[c-1]
	}
	s.cnt = arena.GrowZero(s.cnt, k)
	fill := s.cnt
	for i := 0; i < n; i++ {
		a := s.assign[i]
		s.members[moff[a]+fill[a]] = i
		fill[a]++
	}
	memberOf := func(c int) []int {
		return s.members[moff[c]:moff[c+1]:moff[c+1]]
	}
	size := fill // alias: fill[c] == len(members of c)
	for c := 0; c < k; c++ {
		if size[c] <= capSize {
			continue
		}
		// Evict points farthest from the centroid first.
		m := memberOf(c)
		ccx, ccy := s.cxs[c], s.cys[c]
		sort.Slice(m, func(i, j int) bool {
			dxi, dyi := s.xs[m[i]]-ccx, s.ys[m[i]]-ccy
			dxj, dyj := s.xs[m[j]]-ccx, s.ys[m[j]]-ccy
			return dxi*dxi+dyi*dyi < dxj*dxj+dyj*dyj
		})
		for len(m) > capSize {
			p := m[len(m)-1]
			m = m[:len(m)-1]
			// Nearest cluster with headroom.
			best, bestD2 := -1, math.Inf(1)
			px, py := s.xs[p], s.ys[p]
			for o := 0; o < k; o++ {
				if o == c || size[o] >= capSize {
					continue
				}
				dx, dy := px-s.cxs[o], py-s.cys[o]
				if d2 := dx*dx + dy*dy; d2 < bestD2 {
					best, bestD2 = o, d2
				}
			}
			if best < 0 {
				// Everyone full (can happen when N ≈ k·cap); keep it.
				m = append(m, p)
				break
			}
			s.assign[p] = best
			size[best]++
			size[c]--
		}
	}
}

// buildResult materializes the compact Result. Everything it returns is
// freshly heap-allocated — the Result escapes to the caller and must never
// alias arena scratch. Members is a counting sort over one shared backing
// array, replacing the per-cluster append chains that used to dominate the
// clustering allocation profile.
func buildResult(s *kmScratch, n, k int) *Result {
	// Drop empty clusters and remap ids for a compact result.
	s.cnt = arena.GrowZero(s.cnt, k)
	cnt := s.cnt
	for _, a := range s.assign[:n] {
		cnt[a]++
	}
	s.remap = arena.Grow(s.remap, k)
	remap := s.remap
	nk := 0
	for c := 0; c < k; c++ {
		if cnt[c] == 0 {
			remap[c] = -1
			continue
		}
		remap[c] = nk
		nk++
	}
	kept := make([]geom.Point, nk)
	nk = 0
	for c := 0; c < k; c++ {
		if remap[c] >= 0 {
			kept[nk] = geom.Point{X: s.cxs[c], Y: s.cys[c]}
			nk++
		}
	}
	out := &Result{
		Assign:    make([]int, n),
		Centroids: kept,
		Members:   make([][]int, nk),
	}
	backing := make([]int, n)
	s.moff = arena.Grow(s.moff, nk+1)
	moff := s.moff
	for c := range moff[:nk+1] {
		moff[c] = 0
	}
	for _, a := range s.assign[:n] {
		moff[remap[a]+1]++
	}
	for c := 1; c <= nk; c++ {
		moff[c] += moff[c-1]
	}
	for c := 0; c < nk; c++ {
		out.Members[c] = backing[moff[c]:moff[c]:moff[c+1]]
	}
	for i, a := range s.assign[:n] {
		na := remap[a]
		out.Assign[i] = na
		out.Members[na] = append(out.Members[na], i)
	}
	return out
}
