package cluster

import (
	"math"
	"math/rand"
	"testing"

	"dscts/internal/geom"
)

func randomPoints(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
	}
	return pts
}

// clumpedPoints mimics the macro-blocked, non-uniform placements of Fig. 5:
// points drawn around a few attractor hotspots.
func clumpedPoints(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	hot := []geom.Point{{X: 100, Y: 100}, {X: 800, Y: 200}, {X: 300, Y: 850}, {X: 900, Y: 900}}
	pts := make([]geom.Point, n)
	for i := range pts {
		h := hot[rng.Intn(len(hot))]
		pts[i] = geom.Pt(h.X+rng.NormFloat64()*60, h.Y+rng.NormFloat64()*60)
	}
	return pts
}

func TestKMeansPartition(t *testing.T) {
	pts := randomPoints(500, 3)
	res, err := KMeans(pts, Options{TargetSize: 30, Seed: 7, Balance: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.K() == 0 {
		t.Fatal("no clusters")
	}
	// Every point assigned exactly once; member lists consistent.
	count := 0
	for c, m := range res.Members {
		for _, i := range m {
			if res.Assign[i] != c {
				t.Fatalf("member %d of %d has assign %d", i, c, res.Assign[i])
			}
			count++
		}
	}
	if count != len(pts) {
		t.Fatalf("%d of %d points in members", count, len(pts))
	}
}

func TestKMeansDeterministic(t *testing.T) {
	pts := randomPoints(300, 9)
	a, _ := KMeans(pts, Options{TargetSize: 25, Seed: 42})
	b, _ := KMeans(pts, Options{TargetSize: 25, Seed: 42})
	if a.K() != b.K() {
		t.Fatalf("K differs: %d vs %d", a.K(), b.K())
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed must give same assignment")
		}
	}
}

func TestKMeansBalanceCap(t *testing.T) {
	pts := clumpedPoints(1000, 5)
	res, err := KMeans(pts, Options{TargetSize: 30, Seed: 1, Balance: true})
	if err != nil {
		t.Fatal(err)
	}
	capSize := int(math.Ceil(1.25 * 30))
	over := 0
	for _, m := range res.Members {
		if len(m) > capSize {
			over++
		}
	}
	// Balancing is best-effort; on clumped data the cap must hold for the
	// overwhelming majority (allow a couple of saturated clusters).
	if over > res.K()/10 {
		t.Fatalf("%d of %d clusters above cap %d", over, res.K(), capSize)
	}
}

func TestKMeansSmallInputs(t *testing.T) {
	pts := []geom.Point{geom.Pt(1, 1)}
	res, err := KMeans(pts, Options{TargetSize: 30, Seed: 1})
	if err != nil || res.K() != 1 || res.Assign[0] != 0 {
		t.Fatalf("single point: %+v err %v", res, err)
	}
	if !res.Centroids[0].Eq(geom.Pt(1, 1), 1e-9) {
		t.Errorf("centroid %v", res.Centroids[0])
	}
	if _, err := KMeans(nil, Options{TargetSize: 30}); err == nil {
		t.Error("empty input should error")
	}
	if _, err := KMeans(pts, Options{TargetSize: 0}); err == nil {
		t.Error("bad target should error")
	}
}

func TestKMeansIdenticalPoints(t *testing.T) {
	pts := make([]geom.Point, 100)
	for i := range pts {
		pts[i] = geom.Pt(5, 5)
	}
	res, err := KMeans(pts, Options{TargetSize: 10, Seed: 2, Balance: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Centroids {
		if !c.Eq(geom.Pt(5, 5), 1e-9) {
			t.Fatalf("centroid %v for identical points", c)
		}
	}
}

// Property: clustering quality — assignment cost must not exceed the cost of
// assigning every point to a single global centroid (k-means with k>=1
// cannot be worse than k=1 up to Lloyd local optima; we allow 1% slack).
func TestKMeansBeatsSingleCluster(t *testing.T) {
	pts := clumpedPoints(600, 11)
	res, err := KMeans(pts, Options{TargetSize: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var c geom.Point
	for _, p := range pts {
		c = c.Add(p)
	}
	c = c.Scale(1 / float64(len(pts)))
	single := 0.0
	for _, p := range pts {
		single += p.Dist(c)
	}
	if got := res.IntraWL(pts); got > single*1.01 {
		t.Fatalf("k-means WL %v worse than single cluster %v", got, single)
	}
}

func TestDualLevelHierarchy(t *testing.T) {
	pts := clumpedPoints(2000, 21)
	d, err := DualLevel(pts, DualOptions{HighSize: 500, LowSize: 30, Seed: 1, MaxIter: 30})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(len(pts)); err != nil {
		t.Fatal(err)
	}
	if d.High.K() < 2 {
		t.Fatalf("expected several high clusters, got %d", d.High.K())
	}
	if d.NumLow() < 40 {
		t.Fatalf("expected ~67 low clusters, got %d", d.NumLow())
	}
	if len(d.LowCentroids) != len(d.LowHigh) || len(d.LowCentroids) != len(d.LowSinks) {
		t.Fatal("flattened arrays inconsistent")
	}
	// Each flattened low cluster must point at a valid high cluster and its
	// sinks must all belong to that high cluster.
	for lc, h := range d.LowHigh {
		if h < 0 || h >= d.High.K() {
			t.Fatalf("low %d bad high %d", lc, h)
		}
		for _, s := range d.LowSinks[lc] {
			if d.High.Assign[s] != h {
				t.Fatalf("sink %d of low %d not in high %d", s, lc, h)
			}
		}
	}
}

func TestDualLevelSmall(t *testing.T) {
	// Fewer sinks than Lc: single high cluster, single low cluster.
	pts := randomPoints(10, 1)
	d, err := DualLevel(pts, DualOptions{HighSize: 3000, LowSize: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d.High.K() != 1 || d.NumLow() != 1 {
		t.Fatalf("K = %d/%d, want 1/1", d.High.K(), d.NumLow())
	}
	if err := d.Validate(len(pts)); err != nil {
		t.Fatal(err)
	}
}

func TestDualLevelOptionErrors(t *testing.T) {
	pts := randomPoints(10, 1)
	if _, err := DualLevel(pts, DualOptions{HighSize: 0, LowSize: 30}); err == nil {
		t.Error("zero Hc should error")
	}
	if _, err := DualLevel(pts, DualOptions{HighSize: 10, LowSize: 30}); err == nil {
		t.Error("Lc > Hc should error")
	}
}

func TestDefaultDualOptionsMatchPaper(t *testing.T) {
	o := DefaultDualOptions()
	if o.HighSize != 3000 || o.LowSize != 30 {
		t.Fatalf("paper sets Hc=3000, Lc=30; got %d/%d", o.HighSize, o.LowSize)
	}
}

// Low-level clusters respect the fanout-style cap (soft bound check on
// realistic clumped data).
func TestDualLowClusterSizes(t *testing.T) {
	pts := clumpedPoints(3000, 31)
	d, err := DualLevel(pts, DualOptions{HighSize: 1000, LowSize: 30, Seed: 4, MaxIter: 30})
	if err != nil {
		t.Fatal(err)
	}
	capSize := int(math.Ceil(1.25 * 30))
	over := 0
	for _, s := range d.LowSinks {
		if len(s) > capSize {
			over++
		}
	}
	if over > d.NumLow()/10 {
		t.Fatalf("%d of %d low clusters above %d sinks", over, d.NumLow(), capSize)
	}
}
