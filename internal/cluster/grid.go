package cluster

import (
	"math"

	"dscts/internal/geom"
)

// centGrid is a uniform spatial hash over the current centroid set, used to
// answer exact nearest-centroid queries without scanning all k centroids.
// Cells are sized so the grid holds ~1 centroid per cell; a query walks
// Chebyshev rings outward from the query point's cell and stops as soon as
// no unvisited ring can contain a closer centroid.
//
// The search is exact and breaks distance ties by the lowest centroid
// index, so it returns precisely the centroid the brute-force scan of
// assignBrute would return — the grid is a pure accelerator, never a
// heuristic.
type centGrid struct {
	minX, minY float64
	cell       float64 // cell edge length, µm
	inv        float64 // 1/cell
	nx, ny     int
	// CSR bucket layout: items[start[c]:start[c+1]] are the centroid
	// indices in cell c (row-major). Rebuilt once per Lloyd iteration.
	start []int32
	items []int32
	fill  []int32
}

// gridMinCentroids is the centroid count below which the brute-force scan
// wins (grid build + ring bookkeeping costs more than k distance checks).
const gridMinCentroids = 16

// newCentGrid sizes the grid for k ~ len(cents) occupied cells. It returns
// nil when the centroid set is too small or degenerate (zero spatial
// extent), in which case the caller falls back to the brute-force scan.
func newCentGrid(cents []geom.Point) *centGrid {
	k := len(cents)
	if k < gridMinCentroids {
		return nil
	}
	bb := geom.NewBBox(cents...)
	w, h := bb.W(), bb.H()
	if w <= 0 && h <= 0 {
		return nil // all centroids coincide
	}
	// Aim for ~1 centroid per cell, but never more than ~2√k cells per
	// axis: an anisotropic point set (one extent near zero) would
	// otherwise shatter the long axis into k·(long/short) mostly-empty
	// cells and turn each ring walk into a crawl. Cells stay square — the
	// (r-1)·cell ring lower bound depends on that.
	maxPerAxis := 2*math.Sqrt(float64(k)) + 1
	cell := math.Sqrt(math.Max(w, 1e-9) * math.Max(h, 1e-9) / float64(k))
	cell = math.Max(cell, math.Max(w, h)/maxPerAxis)
	if cell <= 0 {
		return nil
	}
	nx := int(w/cell) + 1
	ny := int(h/cell) + 1
	// The caller rebuilds the buckets (build) before each query round;
	// the constructor only sizes the arenas.
	return &centGrid{
		minX: bb.MinX, minY: bb.MinY,
		cell: cell, inv: 1 / cell,
		nx: nx, ny: ny,
		start: make([]int32, nx*ny+1),
		items: make([]int32, k),
		fill:  make([]int32, nx*ny),
	}
}

// build re-buckets the centroids (called once per Lloyd iteration, since
// centroids move between iterations but the bounding box is re-used: points
// drifting outside are clamped into border cells, which keeps the search
// exact because the ring lower bound is measured from the clamped cell).
func (g *centGrid) build(cents []geom.Point) {
	for i := range g.start {
		g.start[i] = 0
	}
	cellIdx := func(p geom.Point) int {
		cx := clampInt(int((p.X-g.minX)*g.inv), 0, g.nx-1)
		cy := clampInt(int((p.Y-g.minY)*g.inv), 0, g.ny-1)
		return cy*g.nx + cx
	}
	for _, c := range cents {
		g.start[cellIdx(c)+1]++
	}
	for i := 1; i < len(g.start); i++ {
		g.start[i] += g.start[i-1]
	}
	for i := range g.fill {
		g.fill[i] = 0
	}
	for i, c := range cents {
		cell := cellIdx(c)
		g.items[g.start[cell]+g.fill[cell]] = int32(i)
		g.fill[cell]++
	}
}

// nearest returns the index of the exact nearest centroid to p (ties broken
// by lowest index, matching bruteNearest). Distances are compared squared:
// the ordering is identical and the hot loop avoids math.Hypot.
func (g *centGrid) nearest(p geom.Point, cents []geom.Point) int {
	cx := clampInt(int((p.X-g.minX)*g.inv), 0, g.nx-1)
	cy := clampInt(int((p.Y-g.minY)*g.inv), 0, g.ny-1)
	best := -1
	bestD2 := math.Inf(1)
	scanRow := func(x0, x1, y int) bool {
		if y < 0 || y >= g.ny {
			return false
		}
		if x0 < 0 {
			x0 = 0
		}
		if x1 >= g.nx {
			x1 = g.nx - 1
		}
		if x0 > x1 {
			return false
		}
		row := y * g.nx
		for _, ci := range g.items[g.start[row+x0]:g.start[row+x1+1]] {
			c := int(ci)
			if d2 := p.Dist2(cents[c]); d2 < bestD2 || (d2 == bestD2 && c < best) {
				best, bestD2 = c, d2
			}
		}
		return true
	}
	scanCell := func(x, y int) bool {
		if x < 0 || x >= g.nx || y < 0 || y >= g.ny {
			return false
		}
		cell := y*g.nx + x
		for _, ci := range g.items[g.start[cell]:g.start[cell+1]] {
			c := int(ci)
			if d2 := p.Dist2(cents[c]); d2 < bestD2 || (d2 == bestD2 && c < best) {
				best, bestD2 = c, d2
			}
		}
		return true
	}
	for r := 0; ; r++ {
		// Any centroid bucketed in a ring-r cell is at least (r-1)·cell
		// away from p: clamping is 1-Lipschitz, so cell-index distance
		// lower-bounds true distance. Once that bound strictly exceeds
		// the best distance (ties at exactly bestD2 could still have a
		// lower index), no further ring can improve the answer.
		if best >= 0 && r >= 1 {
			lb := float64(r-1) * g.cell
			if lb*lb > bestD2 {
				return best
			}
		}
		visited := false
		if r == 0 {
			visited = scanCell(cx, cy)
		} else {
			// Top and bottom rows of the ring (contiguous in memory),
			// then the two side columns.
			visited = scanRow(cx-r, cx+r, cy-r) || visited
			visited = scanRow(cx-r, cx+r, cy+r) || visited
			for y := cy - r + 1; y <= cy+r-1; y++ {
				visited = scanCell(cx-r, y) || visited
				visited = scanCell(cx+r, y) || visited
			}
		}
		if !visited && best >= 0 {
			return best // ring fully outside the grid; nothing further out
		}
		if !visited && r > g.nx+g.ny {
			return best // unreachable guard: empty grid
		}
	}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
