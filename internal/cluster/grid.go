package cluster

import (
	"math"

	"dscts/internal/arena"
)

// centGrid is a uniform spatial hash over the current centroid set, used to
// answer exact nearest-centroid queries without scanning all k centroids.
// Cells are sized so the grid holds ~1 centroid per cell; a query walks
// Chebyshev rings outward from the query point's cell and stops as soon as
// no unvisited ring can contain a closer centroid.
//
// The search is exact and breaks distance ties by the lowest centroid
// index, so it returns precisely the centroid the brute-force scan of
// bruteNearest would return — the grid is a pure accelerator, never a
// heuristic. It lives inside kmScratch and reuses its CSR buffers across
// Lloyd iterations and across KMeans invocations; the hot ring walk is
// written as straight loops over the flat centroid lanes (the closure-based
// row/cell scanners it replaced were ~20% of clustering CPU).
type centGrid struct {
	minX, minY float64
	cell       float64 // cell edge length, µm
	inv        float64 // 1/cell
	nx, ny     int
	// CSR bucket layout: items[start[c]:start[c+1]] are the centroid
	// indices in cell c (row-major). Rebuilt once per Lloyd iteration.
	// px/py mirror items with the centroid coordinates packed in the same
	// order, so a ring scan streams contiguous floats instead of gathering
	// cxs[c]/cys[c] at random — the values are copied verbatim at build
	// time, so every computed distance is bit-identical to the gather.
	start []int32
	items []int32
	fill  []int32
	px    []float64
	py    []float64
}

// gridMinCentroids is the centroid count below which the brute-force scan
// wins (grid build + ring bookkeeping costs more than k distance checks).
const gridMinCentroids = 16

// size (re)dimensions the grid for k ~ len(cxs) occupied cells, reusing the
// CSR buffers from the previous use. It returns false when the centroid set
// is too small or degenerate (zero spatial extent), in which case the caller
// falls back to the brute-force scan.
func (g *centGrid) size(cxs, cys []float64) bool {
	k := len(cxs)
	if k < gridMinCentroids {
		return false
	}
	minX, minY := cxs[0], cys[0]
	maxX, maxY := cxs[0], cys[0]
	for i := 1; i < k; i++ {
		minX = math.Min(minX, cxs[i])
		minY = math.Min(minY, cys[i])
		maxX = math.Max(maxX, cxs[i])
		maxY = math.Max(maxY, cys[i])
	}
	w, h := maxX-minX, maxY-minY
	if w <= 0 && h <= 0 {
		return false // all centroids coincide
	}
	// Aim for ~1 centroid per cell, but never more than ~2√k cells per
	// axis: an anisotropic point set (one extent near zero) would
	// otherwise shatter the long axis into k·(long/short) mostly-empty
	// cells and turn each ring walk into a crawl. Cells stay square — the
	// (r-1)·cell ring lower bound depends on that.
	maxPerAxis := 2*math.Sqrt(float64(k)) + 1
	cell := math.Sqrt(math.Max(w, 1e-9) * math.Max(h, 1e-9) / float64(k))
	cell = math.Max(cell, math.Max(w, h)/maxPerAxis)
	if cell <= 0 {
		return false
	}
	nx := int(w/cell) + 1
	ny := int(h/cell) + 1
	g.minX, g.minY = minX, minY
	g.cell, g.inv = cell, 1/cell
	g.nx, g.ny = nx, ny
	// The caller rebuilds the buckets (build) before each query round; the
	// sizing pass only (re)dimensions the arenas.
	g.start = arena.Grow(g.start, nx*ny+1)
	g.items = arena.Grow(g.items, k)
	g.fill = arena.Grow(g.fill, nx*ny)
	g.px = arena.Grow(g.px, k)
	g.py = arena.Grow(g.py, k)
	return true
}

// cellIdx returns the (clamped) bucket of a coordinate pair. Points drifting
// outside the sizing bounding box are clamped into border cells, which keeps
// the search exact because the ring lower bound is measured from the clamped
// cell.
func (g *centGrid) cellIdx(x, y float64) int {
	cx := clampInt(int((x-g.minX)*g.inv), 0, g.nx-1)
	cy := clampInt(int((y-g.minY)*g.inv), 0, g.ny-1)
	return cy*g.nx + cx
}

// build re-buckets the centroids (called once per Lloyd iteration, since
// centroids move between iterations but the bounding box is re-used).
func (g *centGrid) build(cxs, cys []float64) {
	for i := range g.start {
		g.start[i] = 0
	}
	for i := range cxs {
		g.start[g.cellIdx(cxs[i], cys[i])+1]++
	}
	for i := 1; i < len(g.start); i++ {
		g.start[i] += g.start[i-1]
	}
	for i := range g.fill {
		g.fill[i] = 0
	}
	for i := range cxs {
		cell := g.cellIdx(cxs[i], cys[i])
		pos := g.start[cell] + g.fill[cell]
		g.items[pos] = int32(i)
		g.px[pos] = cxs[i]
		g.py[pos] = cys[i]
		g.fill[cell]++
	}
}

// nearest returns the index of the exact nearest centroid to (px,py) (ties
// broken by lowest index, matching bruteNearest). Distances are compared
// squared: the ordering is identical and the hot loop avoids math.Hypot.
//
// seed (when >= 0) primes the walk with a known candidate — the point's
// previous assignment — whose distance upper-bounds the answer, so rings
// beyond it terminate immediately. This is a pure accelerator: the
// termination bound is strict (lb² > bestD2), so every centroid at distance
// <= the current best is still scanned and the lowest-index tie-break is
// applied to exactly the same candidate set as the unseeded walk.
func (g *centGrid) nearest(px, py float64, cxs, cys []float64, seed int) int {
	qx := clampInt(int((px-g.minX)*g.inv), 0, g.nx-1)
	qy := clampInt(int((py-g.minY)*g.inv), 0, g.ny-1)
	best := -1
	bestD2 := math.Inf(1)
	if seed >= 0 {
		dx, dy := px-cxs[seed], py-cys[seed]
		best, bestD2 = seed, dx*dx+dy*dy
	}
	// scan streams one contiguous CSR range [lo,hi) through the packed
	// coordinate lanes. Ring rows cover several adjacent cells in one range,
	// so the common case is a single linear walk per row.
	scan := func(lo, hi int32) {
		for t := lo; t < hi; t++ {
			dx, dy := px-g.px[t], py-g.py[t]
			if d2 := dx*dx + dy*dy; d2 < bestD2 || (d2 == bestD2 && int(g.items[t]) < best) {
				best, bestD2 = int(g.items[t]), d2
			}
		}
	}
	for r := 0; ; r++ {
		// Any centroid bucketed in a ring-r cell is at least (r-1)·cell
		// away from p: clamping is 1-Lipschitz, so cell-index distance
		// lower-bounds true distance. Once that bound strictly exceeds
		// the best distance (ties at exactly bestD2 could still have a
		// lower index), no further ring can improve the answer.
		if best >= 0 && r >= 1 {
			lb := float64(r-1) * g.cell
			if lb*lb > bestD2 {
				return best
			}
		}
		visited := false
		if r == 0 {
			// The query cell is clamped in range, so ring 0 always scans.
			cell := qy*g.nx + qx
			scan(g.start[cell], g.start[cell+1])
			visited = true
		} else {
			// Top and bottom rows of the ring (contiguous in memory),
			// then the two side columns.
			x0, x1 := qx-r, qx+r
			if x0 < 0 {
				x0 = 0
			}
			if x1 >= g.nx {
				x1 = g.nx - 1
			}
			if x0 <= x1 {
				if y := qy - r; y >= 0 && y < g.ny {
					row := y * g.nx
					scan(g.start[row+x0], g.start[row+x1+1])
					visited = true
				}
				if y := qy + r; y >= 0 && y < g.ny {
					row := y * g.nx
					scan(g.start[row+x0], g.start[row+x1+1])
					visited = true
				}
			}
			for y := qy - r + 1; y <= qy+r-1; y++ {
				if y < 0 || y >= g.ny {
					continue
				}
				row := y * g.nx
				if x := qx - r; x >= 0 && x < g.nx {
					cell := row + x
					scan(g.start[cell], g.start[cell+1])
					visited = true
				}
				if x := qx + r; x >= 0 && x < g.nx {
					cell := row + x
					scan(g.start[cell], g.start[cell+1])
					visited = true
				}
			}
		}
		if !visited && best >= 0 {
			return best // ring fully outside the grid; nothing further out
		}
		if !visited && r > g.nx+g.ny {
			return best // unreachable guard: empty grid
		}
	}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
