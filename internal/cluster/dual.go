package cluster

import (
	"fmt"

	"dscts/internal/arena"
	"dscts/internal/geom"
	"dscts/internal/par"
)

// Dual is the dual-level clustering hierarchy of Fig. 5(a)-(b): high-level
// clusters of target size Hc and, inside each, low-level clusters of size
// Lc. Low-level clusters are the leaves of the hierarchical DME and the
// roots of the leaf nets; their centroids are also the skew-refinement
// buffer sites (Sec. III-D step 2).
type Dual struct {
	// High is the top clustering over all sinks.
	High *Result
	// Low holds one low-level clustering per high cluster; Low[h] indexes
	// points by their position in High.Members[h].
	Low []*Result
	// LowCentroids flattens all low-level centroids in deterministic order
	// (high cluster major, low cluster minor).
	LowCentroids []geom.Point
	// LowHigh maps each flattened low-centroid index to its high cluster.
	LowHigh []int
	// LowSinks maps each flattened low-centroid index to the ORIGINAL sink
	// indices it contains.
	LowSinks [][]int
}

// DualOptions configures DualLevel.
type DualOptions struct {
	HighSize int // Hc, paper default 3000
	LowSize  int // Lc, paper default 30
	Seed     int64
	MaxIter  int

	// Workers shards the k-means loops and runs the independent low-level
	// clusterings of different high clusters concurrently; <= 0 means all
	// CPUs. Per-cluster seeds depend only on the high-cluster index, so
	// the hierarchy is identical for every worker count.
	Workers int
	// Brute forces the reference O(n·k) nearest-centroid scan instead of
	// the spatial grid. The grid is exact, so this exists only for
	// benchmarking the accelerator against its baseline.
	Brute bool

	// CapOf, when set, gives the load a sink contributes to a leaf net
	// rooted at the given centroid (pin cap plus wire cap, typically).
	// Low-level clusters whose total exceeds CapLimit are split further so
	// every leaf net stays drivable by one buffer (the max-cap constraint
	// of Sec. III-C2).
	CapOf    func(sink, centroid geom.Point) float64
	CapLimit float64

	// Arena sources the k-means scratch from the owning job's arena; nil
	// falls back to the package pool. Identical results either way.
	Arena *arena.Job
}

// DefaultDualOptions returns the paper's empirical settings.
func DefaultDualOptions() DualOptions {
	return DualOptions{HighSize: 3000, LowSize: 30, Seed: 1, MaxIter: 40}
}

// DualLevel runs the two sequential clustering steps on the sink locations.
func DualLevel(sinks []geom.Point, opt DualOptions) (*Dual, error) {
	if opt.HighSize <= 0 || opt.LowSize <= 0 {
		return nil, fmt.Errorf("cluster: sizes must be positive, got Hc=%d Lc=%d", opt.HighSize, opt.LowSize)
	}
	if opt.LowSize > opt.HighSize {
		return nil, fmt.Errorf("cluster: Lc=%d exceeds Hc=%d", opt.LowSize, opt.HighSize)
	}
	workers := par.N(opt.Workers)
	home := scratchHome(opt.Arena)
	high, err := KMeans(sinks, Options{
		TargetSize: opt.HighSize, MaxIter: opt.MaxIter, Seed: opt.Seed, Balance: false,
		Workers: workers, Brute: opt.Brute, Arena: opt.Arena,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: high level: %w", err)
	}
	d := &Dual{High: high, Low: make([]*Result, high.K())}

	// The low-level clusterings of distinct high clusters are independent;
	// run them concurrently and distribute the worker budget between the
	// outer fan-out and each k-means' inner assignment loop. Results land
	// in d.Low[h] by index, so the outcome is order- (and worker-count-)
	// independent. Each concurrent call checks its point staging buffer out
	// of the scratch pool; KMeans copies the points into its own flat
	// lanes, so the buffer is free for reuse as soon as the call returns.
	inner := workers / high.K()
	if inner < 1 {
		inner = 1
	}
	lowErr := make([]error, high.K())
	par.ForEach(workers, high.K(), func(h int) {
		sb := home.sub.Get()
		if sb == nil {
			sb = &subBuf{}
		}
		sb.pts = arena.Grow(sb.pts, len(high.Members[h]))
		for i, idx := range high.Members[h] {
			sb.pts[i] = sinks[idx]
		}
		d.Low[h], lowErr[h] = KMeans(sb.pts, Options{
			TargetSize: opt.LowSize, MaxIter: opt.MaxIter, Seed: opt.Seed + int64(h) + 1, Balance: true,
			Workers: inner, Brute: opt.Brute, Arena: opt.Arena,
		})
		home.sub.Put(sb)
	})
	for h, err := range lowErr {
		if err != nil {
			return nil, fmt.Errorf("cluster: low level %d: %w", h, err)
		}
	}

	// The cap-aware flattening stays sequential: its recursive split seeds
	// depend on the global append order, and preserving that order keeps
	// the hierarchy bit-identical to the single-threaded reference.
	for h := 0; h < high.K(); h++ {
		low := d.Low[h]
		for lc := 0; lc < low.K(); lc++ {
			orig := make([]int, len(low.Members[lc]))
			for i, li := range low.Members[lc] {
				orig[i] = high.Members[h][li]
			}
			d.appendCapAware(sinks, orig, low.Centroids[lc], h, opt, home)
		}
	}
	return d, nil
}

// appendCapAware appends the cluster, bipartitioning it recursively while
// its leaf-net load exceeds opt.CapLimit. Clusters are carried as index
// lists into sinks — the splitter gathers coordinates through the indices
// straight into k-means scratch (bisect), so recursion allocates nothing
// beyond the member lists that escape into d.LowSinks.
func (d *Dual) appendCapAware(sinks []geom.Point, orig []int, centroid geom.Point, h int, opt DualOptions, home *clusterScratch) {
	if opt.CapOf != nil && len(orig) > 1 {
		total := 0.0
		for _, id := range orig {
			total += opt.CapOf(sinks[id], centroid)
		}
		if total > opt.CapLimit {
			// This pass is sequential by design (its seeds depend on the
			// global append order), so the bipartitions run
			// single-threaded to honor the Workers bound.
			s := bisect(sinks, orig, Options{
				MaxIter: opt.MaxIter, Seed: opt.Seed + int64(len(d.LowSinks)) + 17,
				Workers: 1, Brute: opt.Brute, Arena: opt.Arena,
			}, home)
			n := len(orig)
			cnt0 := 0
			for _, a := range s.assign[:n] {
				if a == 0 {
					cnt0++
				}
			}
			// Both halves populated is exactly KMeans' two.K() >= 2 after
			// its empty-cluster drop.
			if cnt0 > 0 && cnt0 < n {
				sub0 := make([]int, 0, cnt0)
				sub1 := make([]int, 0, n-cnt0)
				for i, a := range s.assign[:n] {
					if a == 0 {
						sub0 = append(sub0, orig[i])
					} else {
						sub1 = append(sub1, orig[i])
					}
				}
				c0 := geom.Point{X: s.cxs[0], Y: s.cys[0]}
				c1 := geom.Point{X: s.cxs[1], Y: s.cys[1]}
				home.km.Put(s)
				d.appendCapAware(sinks, sub0, c0, h, opt, home)
				d.appendCapAware(sinks, sub1, c1, h, opt, home)
				return
			}
			home.km.Put(s)
			// Degenerate split (identical points): fall through and keep.
		}
	}
	d.LowCentroids = append(d.LowCentroids, centroid)
	d.LowHigh = append(d.LowHigh, h)
	d.LowSinks = append(d.LowSinks, orig)
}

// NumLow returns the number of low-level clusters across all high clusters.
func (d *Dual) NumLow() int { return len(d.LowCentroids) }

// Validate checks that the hierarchy is a partition of [0,n).
func (d *Dual) Validate(n int) error {
	seen := make([]bool, n)
	total := 0
	for lc, sinks := range d.LowSinks {
		if len(sinks) == 0 {
			return fmt.Errorf("cluster: empty low cluster %d", lc)
		}
		for _, s := range sinks {
			if s < 0 || s >= n {
				return fmt.Errorf("cluster: sink index %d out of range", s)
			}
			if seen[s] {
				return fmt.Errorf("cluster: sink %d assigned twice", s)
			}
			seen[s] = true
			total++
		}
	}
	if total != n {
		return fmt.Errorf("cluster: %d of %d sinks assigned", total, n)
	}
	return nil
}
