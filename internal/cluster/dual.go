package cluster

import (
	"fmt"

	"dscts/internal/geom"
	"dscts/internal/par"
)

// Dual is the dual-level clustering hierarchy of Fig. 5(a)-(b): high-level
// clusters of target size Hc and, inside each, low-level clusters of size
// Lc. Low-level clusters are the leaves of the hierarchical DME and the
// roots of the leaf nets; their centroids are also the skew-refinement
// buffer sites (Sec. III-D step 2).
type Dual struct {
	// High is the top clustering over all sinks.
	High *Result
	// Low holds one low-level clustering per high cluster; Low[h] indexes
	// points by their position in High.Members[h].
	Low []*Result
	// LowCentroids flattens all low-level centroids in deterministic order
	// (high cluster major, low cluster minor).
	LowCentroids []geom.Point
	// LowHigh maps each flattened low-centroid index to its high cluster.
	LowHigh []int
	// LowSinks maps each flattened low-centroid index to the ORIGINAL sink
	// indices it contains.
	LowSinks [][]int
}

// DualOptions configures DualLevel.
type DualOptions struct {
	HighSize int // Hc, paper default 3000
	LowSize  int // Lc, paper default 30
	Seed     int64
	MaxIter  int

	// Workers shards the k-means loops and runs the independent low-level
	// clusterings of different high clusters concurrently; <= 0 means all
	// CPUs. Per-cluster seeds depend only on the high-cluster index, so
	// the hierarchy is identical for every worker count.
	Workers int
	// Brute forces the reference O(n·k) nearest-centroid scan instead of
	// the spatial grid. The grid is exact, so this exists only for
	// benchmarking the accelerator against its baseline.
	Brute bool

	// CapOf, when set, gives the load a sink contributes to a leaf net
	// rooted at the given centroid (pin cap plus wire cap, typically).
	// Low-level clusters whose total exceeds CapLimit are split further so
	// every leaf net stays drivable by one buffer (the max-cap constraint
	// of Sec. III-C2).
	CapOf    func(sink, centroid geom.Point) float64
	CapLimit float64
}

// DefaultDualOptions returns the paper's empirical settings.
func DefaultDualOptions() DualOptions {
	return DualOptions{HighSize: 3000, LowSize: 30, Seed: 1, MaxIter: 40}
}

// DualLevel runs the two sequential clustering steps on the sink locations.
func DualLevel(sinks []geom.Point, opt DualOptions) (*Dual, error) {
	if opt.HighSize <= 0 || opt.LowSize <= 0 {
		return nil, fmt.Errorf("cluster: sizes must be positive, got Hc=%d Lc=%d", opt.HighSize, opt.LowSize)
	}
	if opt.LowSize > opt.HighSize {
		return nil, fmt.Errorf("cluster: Lc=%d exceeds Hc=%d", opt.LowSize, opt.HighSize)
	}
	workers := par.N(opt.Workers)
	high, err := KMeans(sinks, Options{
		TargetSize: opt.HighSize, MaxIter: opt.MaxIter, Seed: opt.Seed, Balance: false,
		Workers: workers, Brute: opt.Brute,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: high level: %w", err)
	}
	d := &Dual{High: high, Low: make([]*Result, high.K())}

	// The low-level clusterings of distinct high clusters are independent;
	// run them concurrently and distribute the worker budget between the
	// outer fan-out and each k-means' inner assignment loop. Results land
	// in d.Low[h] by index, so the outcome is order- (and worker-count-)
	// independent.
	inner := workers / high.K()
	if inner < 1 {
		inner = 1
	}
	lowErr := make([]error, high.K())
	par.ForEach(workers, high.K(), func(h int) {
		sub := make([]geom.Point, len(high.Members[h]))
		for i, idx := range high.Members[h] {
			sub[i] = sinks[idx]
		}
		d.Low[h], lowErr[h] = KMeans(sub, Options{
			TargetSize: opt.LowSize, MaxIter: opt.MaxIter, Seed: opt.Seed + int64(h) + 1, Balance: true,
			Workers: inner, Brute: opt.Brute,
		})
	})
	for h, err := range lowErr {
		if err != nil {
			return nil, fmt.Errorf("cluster: low level %d: %w", h, err)
		}
	}

	// The cap-aware flattening stays sequential: its recursive split seeds
	// depend on the global append order, and preserving that order keeps
	// the hierarchy bit-identical to the single-threaded reference.
	for h := 0; h < high.K(); h++ {
		low := d.Low[h]
		for lc := 0; lc < low.K(); lc++ {
			sub := make([]geom.Point, len(low.Members[lc]))
			orig := make([]int, len(low.Members[lc]))
			for i, li := range low.Members[lc] {
				orig[i] = high.Members[h][li]
				sub[i] = sinks[orig[i]]
			}
			d.appendCapAware(sub, orig, low.Centroids[lc], h, opt)
		}
	}
	return d, nil
}

// appendCapAware appends the cluster, bipartitioning it recursively while
// its leaf-net load exceeds opt.CapLimit.
func (d *Dual) appendCapAware(pts []geom.Point, orig []int, centroid geom.Point, h int, opt DualOptions) {
	if opt.CapOf != nil && len(pts) > 1 {
		total := 0.0
		for _, p := range pts {
			total += opt.CapOf(p, centroid)
		}
		if total > opt.CapLimit {
			// This pass is sequential by design (its seeds depend on the
			// global append order), so the bipartitions run
			// single-threaded to honor the Workers bound.
			two, err := KMeans(pts, Options{
				TargetSize: (len(pts) + 1) / 2, MaxIter: opt.MaxIter, Seed: opt.Seed + int64(len(d.LowSinks)) + 17,
				Workers: 1, Brute: opt.Brute,
			})
			if err == nil && two.K() >= 2 {
				for k := 0; k < two.K(); k++ {
					subPts := make([]geom.Point, len(two.Members[k]))
					subOrig := make([]int, len(two.Members[k]))
					for i, m := range two.Members[k] {
						subPts[i] = pts[m]
						subOrig[i] = orig[m]
					}
					d.appendCapAware(subPts, subOrig, two.Centroids[k], h, opt)
				}
				return
			}
			// Degenerate split (identical points): fall through and keep.
		}
	}
	d.LowCentroids = append(d.LowCentroids, centroid)
	d.LowHigh = append(d.LowHigh, h)
	d.LowSinks = append(d.LowSinks, orig)
}

// NumLow returns the number of low-level clusters across all high clusters.
func (d *Dual) NumLow() int { return len(d.LowCentroids) }

// Validate checks that the hierarchy is a partition of [0,n).
func (d *Dual) Validate(n int) error {
	seen := make([]bool, n)
	total := 0
	for lc, sinks := range d.LowSinks {
		if len(sinks) == 0 {
			return fmt.Errorf("cluster: empty low cluster %d", lc)
		}
		for _, s := range sinks {
			if s < 0 || s >= n {
				return fmt.Errorf("cluster: sink index %d out of range", s)
			}
			if seen[s] {
				return fmt.Errorf("cluster: sink %d assigned twice", s)
			}
			seen[s] = true
			total++
		}
	}
	if total != n {
		return fmt.Errorf("cluster: %d of %d sinks assigned", total, n)
	}
	return nil
}
