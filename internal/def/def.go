// Package def reads and writes the minimal DEF (Design Exchange Format)
// subset the CTS flow consumes: UNITS, DIEAREA, COMPONENTS with placement,
// PINS, and NETS. The paper's flow takes post-placement DEFs produced by
// OpenROAD; this package provides the same interchange for the synthetic
// benchmark generator and the command-line tools.
package def

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"dscts/internal/geom"
)

// Component is a placed cell instance.
type Component struct {
	Name  string
	Macro string
	Pos   geom.Point // µm
	Fixed bool
}

// Pin is a top-level design pin.
type Pin struct {
	Name      string
	Net       string
	Direction string
	Pos       geom.Point // µm
}

// NetConn is one connection of a net: either a top pin (Comp == "PIN") or a
// component pin.
type NetConn struct {
	Comp string // component name, or "PIN" for a top-level pin
	Pin  string
}

// Net is a logical net.
type Net struct {
	Name  string
	Conns []NetConn
}

// File is a parsed DEF design.
type File struct {
	Design     string
	DBU        int // database units per micron
	Die        geom.BBox
	Components []Component
	Pins       []Pin
	Nets       []Net
}

// Parse reads the DEF subset from r.
func Parse(r io.Reader) (*File, error) {
	f := &File{DBU: 1000}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	sc.Split(bufio.ScanWords)
	var toks []string
	for sc.Scan() {
		toks = append(toks, sc.Text())
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("def: %w", err)
	}
	i := 0
	next := func() string {
		if i >= len(toks) {
			return ""
		}
		t := toks[i]
		i++
		return t
	}
	peek := func() string {
		if i >= len(toks) {
			return ""
		}
		return toks[i]
	}
	skipStmt := func() {
		for i < len(toks) && toks[i] != ";" {
			i++
		}
		i++ // consume ';'
	}
	toUM := func(s string) (float64, error) {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, fmt.Errorf("def: bad coordinate %q", s)
		}
		return v / float64(f.DBU), nil
	}
	for i < len(toks) {
		switch t := next(); t {
		case "DESIGN":
			f.Design = next()
			skipStmt()
		case "UNITS":
			if next() != "DISTANCE" || next() != "MICRONS" {
				return nil, fmt.Errorf("def: malformed UNITS")
			}
			v, err := strconv.Atoi(next())
			if err != nil || v <= 0 {
				return nil, fmt.Errorf("def: bad DBU")
			}
			f.DBU = v
			skipStmt()
		case "DIEAREA":
			var pts []geom.Point
			for peek() == "(" {
				next() // (
				x, err := toUM(next())
				if err != nil {
					return nil, err
				}
				y, err := toUM(next())
				if err != nil {
					return nil, err
				}
				if next() != ")" {
					return nil, fmt.Errorf("def: malformed DIEAREA point")
				}
				pts = append(pts, geom.Pt(x, y))
			}
			skipStmt()
			if len(pts) < 2 {
				return nil, fmt.Errorf("def: DIEAREA needs two points")
			}
			f.Die = geom.NewBBox(pts...)
		case "COMPONENTS":
			skipStmt() // count ;
			for peek() == "-" {
				next() // -
				c := Component{Name: next(), Macro: next()}
				for peek() != ";" && peek() != "" {
					if next() != "+" {
						continue
					}
					switch peek() {
					case "PLACED", "FIXED":
						c.Fixed = next() == "FIXED"
						if next() != "(" {
							return nil, fmt.Errorf("def: malformed placement of %s", c.Name)
						}
						x, err := toUM(next())
						if err != nil {
							return nil, err
						}
						y, err := toUM(next())
						if err != nil {
							return nil, err
						}
						if next() != ")" {
							return nil, fmt.Errorf("def: malformed placement of %s", c.Name)
						}
						c.Pos = geom.Pt(x, y)
						next() // orientation
					}
				}
				skipStmt()
				f.Components = append(f.Components, c)
			}
			if next() != "END" || next() != "COMPONENTS" {
				return nil, fmt.Errorf("def: unterminated COMPONENTS")
			}
		case "PINS":
			skipStmt()
			for peek() == "-" {
				next()
				p := Pin{Name: next()}
				for peek() != ";" && peek() != "" {
					if next() == "+" {
						switch peek() {
						case "NET":
							next()
							p.Net = next()
						case "DIRECTION":
							next()
							p.Direction = next()
						case "PLACED", "FIXED":
							next()
							if next() != "(" {
								return nil, fmt.Errorf("def: malformed pin placement of %s", p.Name)
							}
							x, err := toUM(next())
							if err != nil {
								return nil, err
							}
							y, err := toUM(next())
							if err != nil {
								return nil, err
							}
							if next() != ")" {
								return nil, fmt.Errorf("def: malformed pin placement of %s", p.Name)
							}
							p.Pos = geom.Pt(x, y)
							next() // orientation
						}
					}
				}
				skipStmt()
				f.Pins = append(f.Pins, p)
			}
			if next() != "END" || next() != "PINS" {
				return nil, fmt.Errorf("def: unterminated PINS")
			}
		case "NETS":
			skipStmt()
			for peek() == "-" {
				next()
				n := Net{Name: next()}
				for peek() != ";" && peek() != "" {
					if next() == "(" {
						conn := NetConn{Comp: next(), Pin: next()}
						if next() != ")" {
							return nil, fmt.Errorf("def: malformed net conn in %s", n.Name)
						}
						n.Conns = append(n.Conns, conn)
					}
				}
				skipStmt()
				f.Nets = append(f.Nets, n)
			}
			if next() != "END" || next() != "NETS" {
				return nil, fmt.Errorf("def: unterminated NETS")
			}
		case "END":
			if peek() == "DESIGN" {
				next()
				return f, nil
			}
		default:
			// Unknown statement: skip to ';'.
			skipStmt()
		}
	}
	return f, nil
}

// Write emits the DEF subset.
func (f *File) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	dbu := f.DBU
	if dbu <= 0 {
		dbu = 1000
	}
	c := func(v float64) int { return int(v*float64(dbu) + 0.5) }
	fmt.Fprintf(bw, "VERSION 5.8 ;\nDESIGN %s ;\nUNITS DISTANCE MICRONS %d ;\n", f.Design, dbu)
	fmt.Fprintf(bw, "DIEAREA ( %d %d ) ( %d %d ) ;\n", c(f.Die.MinX), c(f.Die.MinY), c(f.Die.MaxX), c(f.Die.MaxY))
	fmt.Fprintf(bw, "COMPONENTS %d ;\n", len(f.Components))
	for _, comp := range f.Components {
		kind := "PLACED"
		if comp.Fixed {
			kind = "FIXED"
		}
		fmt.Fprintf(bw, "  - %s %s + %s ( %d %d ) N ;\n", comp.Name, comp.Macro, kind, c(comp.Pos.X), c(comp.Pos.Y))
	}
	fmt.Fprintf(bw, "END COMPONENTS\n")
	fmt.Fprintf(bw, "PINS %d ;\n", len(f.Pins))
	for _, p := range f.Pins {
		dir := p.Direction
		if dir == "" {
			dir = "INPUT"
		}
		fmt.Fprintf(bw, "  - %s + NET %s + DIRECTION %s + PLACED ( %d %d ) N ;\n",
			p.Name, p.Net, dir, c(p.Pos.X), c(p.Pos.Y))
	}
	fmt.Fprintf(bw, "END PINS\n")
	fmt.Fprintf(bw, "NETS %d ;\n", len(f.Nets))
	for _, n := range f.Nets {
		fmt.Fprintf(bw, "  - %s", n.Name)
		for k, conn := range n.Conns {
			if k%8 == 0 {
				fmt.Fprintf(bw, "\n   ")
			}
			fmt.Fprintf(bw, " ( %s %s )", conn.Comp, conn.Pin)
		}
		fmt.Fprintf(bw, " ;\n")
	}
	fmt.Fprintf(bw, "END NETS\nEND DESIGN\n")
	return bw.Flush()
}

// ClockSinks extracts the clock net's sink placement from the DEF: the
// returned points are the positions of components connected to the net
// driven by the named top pin (or, if no NETS section is present, all
// components whose macro name contains "DFF"). The root position is the top
// pin's location (die-boundary center fallback).
func (f *File) ClockSinks(clockPin string) (root geom.Point, sinks []geom.Point, err error) {
	pos := make(map[string]geom.Point, len(f.Components))
	for _, c := range f.Components {
		pos[c.Name] = c.Pos
	}
	var netName string
	rootFound := false
	for _, p := range f.Pins {
		if p.Name == clockPin || (clockPin == "" && strings.Contains(strings.ToLower(p.Name), "clk")) {
			root = p.Pos
			netName = p.Net
			rootFound = true
			break
		}
	}
	if !rootFound {
		root = geom.Pt((f.Die.MinX+f.Die.MaxX)/2, f.Die.MinY)
	}
	if netName != "" {
		// Follow the clock transitively through buffering cells: a
		// post-CTS DEF splits the clock into per-stage nets, with each
		// buffer's input (A) on the parent net and output (Y) driving the
		// next. Flip-flops (macro containing "DFF") terminate paths.
		macro := make(map[string]string, len(f.Components))
		for _, c := range f.Components {
			macro[c.Name] = c.Macro
		}
		netByName := make(map[string]*Net, len(f.Nets))
		drives := make(map[string]string) // component -> net its Y pin drives
		for i := range f.Nets {
			n := &f.Nets[i]
			netByName[n.Name] = n
			for _, conn := range n.Conns {
				if conn.Pin == "Y" || conn.Pin == "Z" || conn.Pin == "OUT" {
					drives[conn.Comp] = n.Name
				}
			}
		}
		visited := map[string]bool{}
		queue := []string{netName}
		for len(queue) > 0 {
			name := queue[0]
			queue = queue[1:]
			if visited[name] {
				continue
			}
			visited[name] = true
			n, ok := netByName[name]
			if !ok {
				continue
			}
			for _, conn := range n.Conns {
				if conn.Comp == "PIN" {
					continue
				}
				p, ok := pos[conn.Comp]
				if !ok {
					return root, nil, fmt.Errorf("def: net %s references unknown component %s", n.Name, conn.Comp)
				}
				switch {
				case strings.Contains(macro[conn.Comp], "DFF"):
					sinks = append(sinks, p)
				case conn.Pin == "Y" || conn.Pin == "Z" || conn.Pin == "OUT":
					// The driver of this net; nothing downstream here.
				default:
					// A buffering cell's input: continue into the net its
					// output drives, if any.
					if next, ok := drives[conn.Comp]; ok {
						queue = append(queue, next)
					}
				}
			}
		}
	}
	if len(sinks) == 0 {
		for _, c := range f.Components {
			if strings.Contains(c.Macro, "DFF") {
				sinks = append(sinks, c.Pos)
			}
		}
	}
	if len(sinks) == 0 {
		return root, nil, fmt.Errorf("def: no clock sinks found")
	}
	return root, sinks, nil
}
