package def

// Native Go fuzz targets for the DEF parser. The contract under fuzzing:
// Parse and ClockSinks must return errors on malformed input — never
// panic, never loop — and anything Parse accepts must survive a
// Write/re-Parse round trip without panicking either. The seed corpus is
// the C1..C3 round-trip corpus (benchmark placements truncated to keep
// mutation cheap) plus the malformed shapes the unit tests pin.
//
// Run the smoke locally with:
//
//	go test -run xxx -fuzz FuzzParseDEF -fuzztime 10s ./internal/def
//
// (CI runs the same via `make fuzz`.)

import (
	"bytes"
	"strings"
	"testing"

	"dscts/internal/geom"
)

// fuzzSeedDEFs builds the round-trip seed corpus. It cannot import
// internal/bench (bench imports def), so it replays the same shape: the
// clk pin, DFF components and a single clock net, at C1..C3-like spreads.
func fuzzSeedDEFs() []string {
	var out []string
	for _, n := range []int{4, 32, 128} { // truncated C1..C3 stand-ins
		f := &File{Design: "seed", DBU: 1000}
		f.Die.MaxX, f.Die.MaxY = 300, 300
		net := Net{Name: "clk", Conns: []NetConn{{Comp: "PIN", Pin: "clk"}}}
		for i := 0; i < n; i++ {
			name := "ff_" + strings.Repeat("x", i%3) + string(rune('a'+i%26))
			comp := Component{
				Name: name, Macro: "DFFHQNx1_ASAP7_75t_R",
				Pos: geom.Pt(float64(i%17)*17.5, float64(i/17)*23.25),
			}
			f.Components = append(f.Components, comp)
			net.Conns = append(net.Conns, NetConn{Comp: name, Pin: "CLK"})
		}
		f.Pins = append(f.Pins, Pin{Name: "clk", Net: "clk", Direction: "INPUT", Pos: geom.Pt(150, 0)})
		f.Nets = append(f.Nets, net)
		var buf bytes.Buffer
		if err := f.Write(&buf); err != nil {
			panic(err)
		}
		out = append(out, buf.String())
	}
	return out
}

func FuzzParseDEF(f *testing.F) {
	for _, seed := range fuzzSeedDEFs() {
		f.Add(seed)
	}
	// Malformed and degenerate shapes.
	for _, s := range []string{
		"",
		";",
		"DESIGN",
		"DESIGN d ; UNITS DISTANCE MICRONS 0 ;",
		"DESIGN d ; UNITS DISTANCE MICRONS -5 ;",
		"DIEAREA ( 0 0 ) ;",
		"DIEAREA ( a b ) ( 1 1 ) ;",
		"COMPONENTS 1 ; - c M + PLACED ( 1",
		"COMPONENTS 1 ; - c M + PLACED ( 1 2 ) N ;",
		"PINS 1 ; - p + NET n + PLACED ( x y ) N ; END PINS",
		"NETS 1 ; - n ( a b ( c d ;",
		"END DESIGN trailing tokens",
		"UNKNOWN statement with no semicolon",
		"DESIGN d ; DIEAREA ( 0 0 ) ( 1000 1000 ) ; COMPONENTS 2 ; - a DFF + PLACED ( 5 5 ) N ; END COMPONENTS END DESIGN",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		parsed, err := Parse(strings.NewReader(input))
		if err != nil {
			return // rejected cleanly: exactly the contract
		}
		// Whatever parses must round-trip without panicking.
		var buf bytes.Buffer
		if werr := parsed.Write(&buf); werr != nil {
			t.Fatalf("Write failed on parsed input: %v", werr)
		}
		if _, rerr := Parse(bytes.NewReader(buf.Bytes())); rerr != nil {
			// Adversarial names (e.g. a component literally called ";")
			// may not survive re-parsing; erroring is fine, panicking is
			// not — reaching this line at all means no panic.
			t.Logf("re-parse rejected written DEF: %v", rerr)
		}
		// Clock extraction must also be panic-free on arbitrary nets.
		if _, _, serr := parsed.ClockSinks(""); serr != nil {
			return
		}
	})
}
