package def

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"dscts/internal/geom"
)

func sample() *File {
	return &File{
		Design: "tiny",
		DBU:    1000,
		Die:    geom.NewBBox(geom.Pt(0, 0), geom.Pt(100, 80)),
		Components: []Component{
			{Name: "ff_0", Macro: "DFFHQNx1_ASAP7_75t_R", Pos: geom.Pt(10.5, 20.25)},
			{Name: "ff_1", Macro: "DFFHQNx1_ASAP7_75t_R", Pos: geom.Pt(90, 70), Fixed: true},
			{Name: "u_buf", Macro: "BUFx4_ASAP7_75t_R", Pos: geom.Pt(50, 40)},
		},
		Pins: []Pin{{Name: "clk", Net: "clk", Direction: "INPUT", Pos: geom.Pt(50, 0)}},
		Nets: []Net{{Name: "clk", Conns: []NetConn{
			{Comp: "PIN", Pin: "clk"}, {Comp: "ff_0", Pin: "CLK"}, {Comp: "ff_1", Pin: "CLK"},
		}}},
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	src := sample()
	if err := src.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Design != "tiny" || got.DBU != 1000 {
		t.Fatalf("header: %q %d", got.Design, got.DBU)
	}
	if got.Die.MaxX != 100 || got.Die.MaxY != 80 {
		t.Fatalf("die: %+v", got.Die)
	}
	if len(got.Components) != 3 {
		t.Fatalf("components: %d", len(got.Components))
	}
	if !got.Components[0].Pos.Eq(geom.Pt(10.5, 20.25), 1e-9) {
		t.Errorf("pos round-trip: %v", got.Components[0].Pos)
	}
	if !got.Components[1].Fixed || got.Components[0].Fixed {
		t.Error("fixed flags lost")
	}
	if len(got.Pins) != 1 || got.Pins[0].Net != "clk" || !got.Pins[0].Pos.Eq(geom.Pt(50, 0), 1e-9) {
		t.Fatalf("pins: %+v", got.Pins)
	}
	if len(got.Nets) != 1 || len(got.Nets[0].Conns) != 3 {
		t.Fatalf("nets: %+v", got.Nets)
	}
}

func TestClockSinksViaNet(t *testing.T) {
	root, sinks, err := sample().ClockSinks("clk")
	if err != nil {
		t.Fatal(err)
	}
	if !root.Eq(geom.Pt(50, 0), 1e-9) {
		t.Errorf("root %v", root)
	}
	// Net-based extraction must not pick up the buffer.
	if len(sinks) != 2 {
		t.Fatalf("sinks: %d", len(sinks))
	}
}

func TestClockSinksFallbackToDFF(t *testing.T) {
	f := sample()
	f.Nets = nil
	f.Pins = nil
	root, sinks, err := f.ClockSinks("")
	if err != nil {
		t.Fatal(err)
	}
	if len(sinks) != 2 {
		t.Fatalf("DFF fallback found %d sinks", len(sinks))
	}
	// Root falls back to bottom boundary center.
	if math.Abs(root.X-50) > 1e-9 || root.Y != 0 {
		t.Errorf("fallback root %v", root)
	}
}

func TestClockSinksNoSinks(t *testing.T) {
	f := &File{Design: "x", DBU: 1000}
	if _, _, err := f.ClockSinks(""); err == nil {
		t.Fatal("expected error for empty design")
	}
}

func TestParseSkipsUnknownStatements(t *testing.T) {
	src := `VERSION 5.8 ;
DESIGN foo ;
TECHNOLOGY asap7 ;
UNITS DISTANCE MICRONS 2000 ;
ROW row_0 core 0 0 N DO 100 BY 1 STEP 10 0 ;
DIEAREA ( 0 0 ) ( 200000 200000 ) ;
COMPONENTS 1 ;
  - a DFFX + PLACED ( 2000 4000 ) N ;
END COMPONENTS
PINS 0 ;
END PINS
NETS 0 ;
END NETS
END DESIGN
`
	f, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if f.DBU != 2000 {
		t.Errorf("DBU %d", f.DBU)
	}
	if f.Die.MaxX != 100 { // 200000 / 2000
		t.Errorf("die %v", f.Die)
	}
	if len(f.Components) != 1 || !f.Components[0].Pos.Eq(geom.Pt(1, 2), 1e-9) {
		t.Errorf("components %+v", f.Components)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"UNITS DISTANCE MICRONS x ;",
		"DIEAREA ( 0 0 ) ;",
		"COMPONENTS 1 ;\n - a M + PLACED ( 1 ) N ;\nEND COMPONENTS",
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c)); err == nil {
			t.Errorf("expected parse error for %q", c)
		}
	}
}

func TestWriteDefaultsDBU(t *testing.T) {
	f := sample()
	f.DBU = 0
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "MICRONS 1000") {
		t.Error("zero DBU should default to 1000")
	}
}
