package serve

import (
	"context"
	"testing"
)

// TestServeArenaRecycleBitIdentical pins the queue's scratch-arena recycling:
// a job that re-runs a design on a warm recycled arena (same size bucket)
// must produce bit-identical metrics to the cold run. A 1-entry result cache
// plus an interleaved C5 job forces the second C4 submission to actually
// re-execute instead of hitting the cache.
func TestServeArenaRecycleBitIdentical(t *testing.T) {
	s, client := newTestServer(t, Config{MaxRunning: 1, CacheEntries: 1})
	ctx := context.Background()

	req := &Request{Design: "C4", IncludeSinkDelays: true}
	cold, err := client.Synthesize(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Synthesize(ctx, &Request{Design: "C5"}); err != nil {
		t.Fatal(err) // evicts C4 from the 1-entry cache
	}
	warm, err := client.Synthesize(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheHit {
		t.Fatal("second C4 run was a cache hit; the recycle path never ran")
	}

	st := s.Queue().Stats()
	if st.Arenas.Gets < 3 {
		t.Fatalf("expected >=3 arena checkouts, got %+v", st.Arenas)
	}
	// C4 and C5 land in different size buckets, so the warm C4 run must have
	// recycled the cold C4 run's arena.
	if st.Arenas.Hits < 1 {
		t.Fatalf("expected a warm arena hit, got %+v", st.Arenas)
	}
	if st.Arenas.Puts != st.Arenas.Gets {
		t.Fatalf("arena leak: %+v", st.Arenas)
	}

	cm, wm := cold.Result.Metrics, warm.Result.Metrics
	if cm.Latency != wm.Latency || cm.Skew != wm.Skew || cm.WL != wm.WL ||
		cm.Buffers != wm.Buffers || cm.NTSVs != wm.NTSVs {
		t.Fatalf("recycled-arena run differs from cold run:\ncold %+v\nwarm %+v", cm, wm)
	}
	for idx, d := range cm.SinkDelays {
		if wm.SinkDelays[idx] != d {
			t.Fatalf("sink %d delay %v != %v on recycled arena", idx, wm.SinkDelays[idx], d)
		}
	}
}
