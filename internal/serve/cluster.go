package serve

// Cluster mode (DESIGN.md §9): a peer-aware queue where cache keys route
// over a consistent-hash ring (forward-on-miss, so any node answers any
// request), partitioned jobs dispatch regions to peers over POST
// /internal/region, idle peers steal queued regions from loaded ones, and
// a static-membership liveness layer (periodic /readyz probes + per-peer
// circuit breakers) degrades every remote path to local execution instead
// of failing jobs when peers die. The determinism contract extends across
// every remote seam: a region executes with core.RunRegion on whichever
// node runs it, results travel as exact gob round-trips, and the engine
// consumes them in region-ID order — so a clustered run's Metrics are
// bit-identical to a single-node run of the same request.

import (
	"bytes"
	"context"
	"crypto/subtle"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dscts/internal/clusterd"
	"dscts/internal/core"
	"dscts/internal/tech"
)

// Cluster-internal HTTP headers.
const (
	// headerForwarded marks a request already forwarded once (value: the
	// origin node ID); a receiving node never forwards it again, so ring
	// disagreement during membership churn cannot create forwarding loops.
	headerForwarded = "X-Dscts-Forwarded"
	// headerSecret authenticates /internal/* calls between peers.
	headerSecret = "X-Dscts-Cluster-Secret"
	// headerNode identifies the answering node on every response.
	headerNode = "X-Dscts-Node"
)

// ClusterConfig enables cluster mode on a queue. The zero durations and
// counts pick the defaults noted per field.
type ClusterConfig struct {
	// NodeID is this node's ID; it must appear in Peers.
	NodeID string
	// Peers is the full static member list, the local node included.
	Peers []clusterd.Peer
	// Secret, when non-empty, must accompany every /internal/* call (the
	// X-Dscts-Cluster-Secret header).
	Secret string
	// VNodes is the ring's virtual-node count per member (default 64).
	VNodes int
	// ProbeInterval / ProbeTimeout drive the /readyz liveness prober
	// (defaults 2s / 1s).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// FailThreshold consecutive call failures open a peer's circuit
	// breaker for Cooldown (defaults 3 / 5s).
	FailThreshold int
	Cooldown      time.Duration
	// StealInterval is the idle poll cadence of the work stealer (default
	// 100ms); DisableSteal turns stealing off entirely.
	StealInterval time.Duration
	DisableSteal  bool
	// DisableDispatch turns off proactive region dispatch to peers (the
	// region board still runs locally and can still be stolen from).
	DisableDispatch bool
	// LeaseTimeout bounds a stolen region's execution; an expired lease is
	// re-offered locally and its late completion rejected (default 60s).
	LeaseTimeout time.Duration
	// LocalExecutors sets the local region-executor goroutines draining
	// this node's board (0 = one per CPU). Negative runs none — the board
	// drains only through peer dispatch and stealing — which tests and
	// benchmarks use to force remote execution deterministically.
	LocalExecutors int
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.VNodes <= 0 {
		c.VNodes = clusterd.DefaultVNodes
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.StealInterval <= 0 {
		c.StealInterval = 100 * time.Millisecond
	}
	if c.LeaseTimeout <= 0 {
		c.LeaseTimeout = 60 * time.Second
	}
	return c
}

// ClusterStats is the cluster section of GET /stats.
type ClusterStats struct {
	NodeID string                `json:"node_id"`
	Peers  []clusterd.PeerStatus `json:"peers"`
	// Forwarded counts requests this node routed to their ring owner;
	// ForwardFallback counts forwards that failed and were served locally
	// instead; ForwardedIn counts forwarded requests received from peers.
	Forwarded       int64 `json:"forwarded"`
	ForwardFallback int64 `json:"forward_fallback_local"`
	ForwardedIn     int64 `json:"forwarded_in"`
	// RegionsDispatched counts regions this node pushed to peers (applied
	// results); RegionDispatchErrors counts dispatch attempts that failed
	// and were re-offered. RegionsServed counts regions this node executed
	// for peers via POST /internal/region.
	RegionsDispatched    int64 `json:"regions_dispatched"`
	RegionDispatchErrors int64 `json:"region_dispatch_errors,omitempty"`
	RegionsServed        int64 `json:"regions_served"`
	// RegionsStolen counts regions this node stole from peers and
	// completed; StealsGiven counts leases this node's board handed to
	// stealing peers; StealRejects counts stale or duplicate steal
	// completions this board refused (lease token reuse).
	RegionsStolen int64 `json:"regions_stolen"`
	StealsGiven   int64 `json:"steals_given"`
	StealRejects  int64 `json:"steal_rejects,omitempty"`
	// RegionsLocal counts board regions executed by the local executors.
	RegionsLocal int64 `json:"regions_local"`
	// BreakerOpens totals per-peer circuit-breaker openings.
	BreakerOpens int64 `json:"breaker_opens,omitempty"`
}

// clusterNode is a queue's cluster runtime: ring, peer liveness, the
// region board and its executors/dispatchers/stealer, and the counters
// behind ClusterStats and the dscts_cluster_* metric families.
type clusterNode struct {
	cfg   ClusterConfig
	self  clusterd.Peer
	ring  *clusterd.Ring
	peers *clusterd.PeerSet
	board *regionBoard
	queue *Queue
	httpc *http.Client
	log   *slog.Logger

	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once

	forwarded       atomic.Int64
	forwardFallback atomic.Int64
	forwardedIn     atomic.Int64
	dispatched      atomic.Int64
	dispatchErrs    atomic.Int64
	served          atomic.Int64
	stolen          atomic.Int64
	stealsGiven     atomic.Int64
	stealRejects    atomic.Int64
	localRegions    atomic.Int64
}

// newClusterNode validates the config, builds the ring over the full
// member list and starts the liveness prober, the board executors, the
// per-peer dispatchers, the stealer and the lease reaper.
func newClusterNode(cfg ClusterConfig, q *Queue) (*clusterNode, error) {
	cfg = cfg.withDefaults()
	self, others, err := clusterd.SplitSelf(cfg.Peers, cfg.NodeID)
	if err != nil {
		return nil, err
	}
	ids := make([]string, len(cfg.Peers))
	for i, p := range cfg.Peers {
		ids[i] = p.ID
	}
	httpc := &http.Client{} // per-call contexts carry the deadlines
	c := &clusterNode{
		cfg:  cfg,
		self: self,
		ring: clusterd.NewRing(ids, cfg.VNodes),
		peers: clusterd.NewPeerSet(others, clusterd.PeerSetOptions{
			ProbeInterval: cfg.ProbeInterval,
			ProbeTimeout:  cfg.ProbeTimeout,
			FailThreshold: cfg.FailThreshold,
			Cooldown:      cfg.Cooldown,
			Client:        httpc,
		}),
		board: newRegionBoard(cfg.LeaseTimeout),
		queue: q,
		httpc: httpc,
		log:   q.log.With("node", cfg.NodeID),
		stop:  make(chan struct{}),
	}
	c.peers.Start()
	// Local board executors: one per core by default, mirroring the
	// pre-cluster outer fan-out cap; each runs its region with a modest
	// inner budget (the engine is deterministic in all of these,
	// wall-clock only).
	execs := cfg.LocalExecutors
	if execs == 0 {
		execs = runtime.GOMAXPROCS(0)
	}
	if execs < 0 {
		execs = 0
	}
	inner := runtime.GOMAXPROCS(0) / 2
	if inner < 1 {
		inner = 1
	}
	for i := 0; i < execs; i++ {
		c.wg.Add(1)
		go c.localExecutor(inner)
	}
	if !cfg.DisableDispatch {
		for _, id := range c.peers.IDs() {
			c.wg.Add(1)
			go c.dispatcher(id)
		}
	}
	if !cfg.DisableSteal {
		c.wg.Add(1)
		go c.stealer(inner)
	}
	c.wg.Add(1)
	go c.reaper()
	return c, nil
}

// close stops every cluster goroutine. Called by Queue.Close after the
// runners drained, so no job is still waiting on the board.
func (c *clusterNode) close() {
	c.closeOnce.Do(func() {
		close(c.stop)
		c.board.close()
		c.peers.Close()
		c.wg.Wait()
	})
}

// stats snapshots the cluster section of GET /stats.
func (c *clusterNode) stats() *ClusterStats {
	return &ClusterStats{
		NodeID:               c.self.ID,
		Peers:                c.peers.Snapshot(),
		Forwarded:            c.forwarded.Load(),
		ForwardFallback:      c.forwardFallback.Load(),
		ForwardedIn:          c.forwardedIn.Load(),
		RegionsDispatched:    c.dispatched.Load(),
		RegionDispatchErrors: c.dispatchErrs.Load(),
		RegionsServed:        c.served.Load(),
		RegionsStolen:        c.stolen.Load(),
		StealsGiven:          c.stealsGiven.Load(),
		StealRejects:         c.stealRejects.Load(),
		RegionsLocal:         c.localRegions.Load(),
		BreakerOpens:         c.peers.BreakerOpens(),
	}
}

// ---------------------------------------------------------------------------
// Forward-on-miss request routing.

// shouldForward decides whether a decoded submission should be routed to a
// peer: cluster mode on, the request not already forwarded once, sync mode
// (async/stream job state is node-local and not replicated, so those
// execute where they land), a remote ring owner, no local cached result,
// and the owner in rotation. It returns the owner to forward to.
func (c *clusterNode) shouldForward(r *http.Request, mode string, req *Request, kind string) (string, bool) {
	if c == nil || mode != "sync" || r.Header.Get(headerForwarded) != "" {
		return "", false
	}
	owner := c.ring.Owner(req.Key(kind))
	if owner == c.self.ID {
		return "", false
	}
	if c.queue.cache.Has(req.Key(kind)) {
		return "", false // local hit beats a network hop
	}
	if !c.peers.Usable(owner) {
		c.forwardFallback.Add(1)
		return "", false
	}
	return owner, true
}

// forward proxies the (already decoded and header-merged) submission to
// its ring owner and relays the response. A transport failure or a 5xx
// feeds the owner's breaker and reports false — the caller serves the
// request locally instead (fallback-to-local; the cluster answers even
// with the owner down). The local X-Request-ID travels along, so one
// request keeps one ID across nodes.
func (c *clusterNode) forward(w http.ResponseWriter, r *http.Request, owner string, req *Request) bool {
	body, err := json.Marshal(req)
	if err != nil {
		c.forwardFallback.Add(1)
		return false
	}
	u := c.peers.URL(owner) + r.URL.Path
	if r.URL.RawQuery != "" {
		u += "?" + r.URL.RawQuery
	}
	fr, err := http.NewRequestWithContext(r.Context(), http.MethodPost, u, bytes.NewReader(body))
	if err != nil {
		c.forwardFallback.Add(1)
		return false
	}
	fr.Header.Set("Content-Type", "application/json")
	fr.Header.Set(headerForwarded, c.self.ID)
	if c.cfg.Secret != "" {
		fr.Header.Set(headerSecret, c.cfg.Secret)
	}
	if id := r.Header.Get("X-Request-ID"); id != "" {
		fr.Header.Set("X-Request-ID", id)
	}
	resp, err := c.httpc.Do(fr)
	if err != nil {
		c.peers.Failure(owner)
		c.forwardFallback.Add(1)
		c.log.Debug("forward failed; serving locally", "owner", owner, "error", err)
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 500 {
		io.Copy(io.Discard, resp.Body)
		c.peers.Failure(owner)
		c.forwardFallback.Add(1)
		c.log.Debug("forward got 5xx; serving locally", "owner", owner, "status", resp.StatusCode)
		return false
	}
	c.peers.Success(owner)
	c.forwarded.Add(1)
	for _, h := range []string{"Content-Type", "Retry-After", headerNode} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return true
}

// ---------------------------------------------------------------------------
// Region execution: the core.Options.RegionExec seam.

// regionTask is one board entry's work: the region plus everything a node
// (local or remote) needs to execute it.
type regionTask struct {
	work core.RegionWork
	tc   *tech.Tech
	tech string       // wire name of tc
	opt  core.Options // scheduling hooks stripped; Faults applied node-locally
}

// execFor returns the RegionExec hook for one job: every region is offered
// to the board, where local executors, peer dispatchers and stealing peers
// drain it concurrently.
func (c *clusterNode) execFor(techName string, tc *tech.Tech, opt core.Options) core.RegionExecFunc {
	// Keep the knob fields bit-identical to the local path; strip only the
	// node-local hooks. Faults are reapplied by whichever node executes,
	// from its own registry, so chaos specs fire where the work runs.
	opt.Arena = nil
	opt.Progress = nil
	opt.RegionExec = nil
	opt.Faults = nil
	return func(ctx context.Context, w core.RegionWork) (*core.RegionOut, error) {
		return c.board.run(ctx, regionTask{work: w, tc: tc, tech: techName, opt: opt})
	}
}

// runTask executes a board task on this node, injecting this node's own
// fault registry so chaos specs fire wherever the work actually runs.
func (c *clusterNode) runTask(ctx context.Context, t regionTask, workers int) (*core.RegionOut, error) {
	opt := t.opt
	opt.Faults = c.queue.cfg.Faults
	return core.RunRegion(ctx, t.work, t.tc, opt, workers)
}

// localExecutor drains board entries on this node.
func (c *clusterNode) localExecutor(workers int) {
	defer c.wg.Done()
	for {
		e := c.board.next()
		if e == nil {
			return
		}
		if e.ctx.Err() != nil {
			c.board.deliver(e, nil, e.ctx.Err())
			continue
		}
		out, err := c.runTask(e.ctx, e.task, workers)
		if c.board.deliver(e, out, err) && err == nil {
			c.localRegions.Add(1)
		}
	}
}

// dispatcher pushes board entries to one peer over POST /internal/region.
// A failed dispatch re-offers the entry (twice burned → pinned local) and
// feeds the peer's breaker; the job never fails because a peer did.
func (c *clusterNode) dispatcher(peer string) {
	defer c.wg.Done()
	for {
		if !c.peers.Usable(peer) {
			select {
			case <-c.stop:
				return
			case <-time.After(c.cfg.ProbeInterval):
			}
			continue
		}
		e := c.board.nextRemote()
		if e == nil {
			return // board closed
		}
		if e.ctx.Err() != nil {
			c.board.deliver(e, nil, e.ctx.Err())
			continue
		}
		var resp regionRPCResp
		err := c.postGob(e.ctx, peer, "/internal/region",
			regionRPCReq{Work: e.task.work, Tech: e.task.tech, Opt: e.task.opt}, &resp)
		if err == nil && resp.Out == nil {
			err = fmt.Errorf("serve: peer %s returned an empty region result", peer)
		}
		if err != nil {
			c.peers.Failure(peer)
			c.dispatchErrs.Add(1)
			c.log.Debug("region dispatch failed; re-offering", "peer", peer,
				"region", e.task.work.ID, "error", err)
			c.board.reoffer(e)
			continue
		}
		c.peers.Success(peer)
		if c.board.deliver(e, resp.Out, nil) {
			c.dispatched.Add(1)
		}
	}
}

// stealer polls peers for queued regions whenever the local board is idle,
// executes what it gets locally and posts the result back under the lease
// token. Steal errors are reported back too, so the victim re-offers
// instead of waiting out the lease.
func (c *clusterNode) stealer(workers int) {
	defer c.wg.Done()
	for {
		select {
		case <-c.stop:
			return
		case <-time.After(c.cfg.StealInterval):
		}
		if c.board.pendingLen() > 0 {
			continue // loaded ourselves; stealing would only shuffle work
		}
		for _, peer := range c.peers.IDs() {
			if !c.peers.Usable(peer) {
				continue
			}
			if c.stealOnce(peer, workers) {
				break // got work; re-check our own board first
			}
		}
	}
}

// stealOnce tries to steal and complete one region from a peer; reports
// whether work was obtained.
func (c *clusterNode) stealOnce(peer string, workers int) bool {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
	var sr stealResp
	err := c.postGob(ctx, peer, "/internal/steal", stealReq{Node: c.self.ID}, &sr)
	cancel()
	if err != nil {
		c.peers.Failure(peer)
		return false
	}
	c.peers.Success(peer)
	if !sr.Found {
		return false
	}
	tc, terr := techByName(sr.Tech)
	execCtx, cancelExec := context.WithTimeout(context.Background(), c.cfg.LeaseTimeout)
	var out *core.RegionOut
	if terr != nil {
		err = terr
	} else {
		out, err = c.runTask(execCtx, regionTask{work: sr.Work, tc: tc, tech: sr.Tech, opt: sr.Opt}, workers)
	}
	cancelExec()
	done := stealDoneReq{Token: sr.Token, Out: out}
	if err != nil {
		done.Err, done.Out = err.Error(), nil
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	var dr stealDoneResp
	if derr := c.postGob(ctx2, peer, "/internal/steal/done", done, &dr); derr != nil {
		c.peers.Failure(peer)
		return true // victim's lease reaper re-offers; we did obtain work
	}
	if err == nil && dr.Applied {
		c.stolen.Add(1)
	}
	return true
}

// reaper re-offers board entries whose steal lease expired.
func (c *clusterNode) reaper() {
	defer c.wg.Done()
	interval := c.cfg.LeaseTimeout / 4
	if interval > time.Second {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case now := <-t.C:
			c.board.reapLeases(now)
		}
	}
}

// ---------------------------------------------------------------------------
// Cluster wire format: gob over HTTP between peers.

type regionRPCReq struct {
	Work core.RegionWork
	Tech string
	Opt  core.Options
}

type regionRPCResp struct {
	Out *core.RegionOut
}

type stealReq struct {
	Node string
}

type stealResp struct {
	Found bool
	Token string
	Work  core.RegionWork
	Tech  string
	Opt   core.Options
}

type stealDoneReq struct {
	Token string
	Err   string
	Out   *core.RegionOut
}

type stealDoneResp struct {
	Applied bool
}

// techByName resolves a wire tech name the same way request validation
// does, so a region executes against the identical technology everywhere.
func techByName(name string) (*tech.Tech, error) {
	switch name {
	case "", "asap7":
		return tech.ASAP7(), nil
	}
	return nil, fmt.Errorf("serve: unknown tech %q", name)
}

// postGob gob-POSTs to a peer's internal endpoint and decodes the reply.
func (c *clusterNode) postGob(ctx context.Context, peer, path string, in, out any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(in); err != nil {
		return fmt.Errorf("serve: cluster encode: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.peers.URL(peer)+path, &buf)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if c.cfg.Secret != "" {
		req.Header.Set(headerSecret, c.cfg.Secret)
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("serve: peer %s %s: status %d: %s", peer, path, resp.StatusCode, bytes.TrimSpace(msg))
	}
	if err := gob.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("serve: cluster decode: %w", err)
	}
	return nil
}

// authOK gates /internal/* on the shared cluster secret (constant-time).
func (c *clusterNode) authOK(r *http.Request) bool {
	if c.cfg.Secret == "" {
		return true
	}
	return subtle.ConstantTimeCompare([]byte(r.Header.Get(headerSecret)), []byte(c.cfg.Secret)) == 1
}

// handleRegion is POST /internal/region: execute one region for a peer and
// return its tree + summary. The region runs under this node's own fault
// registry and worker budget; an execution error is a 500 the dispatcher
// turns into a local re-offer.
func (c *clusterNode) handleRegion(w http.ResponseWriter, r *http.Request) {
	if !c.authOK(r) {
		writeErr(w, http.StatusForbidden, fmt.Errorf("serve: bad cluster secret"))
		return
	}
	var req regionRPCReq
	if err := gob.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("serve: region decode: %w", err))
		return
	}
	tc, err := techByName(req.Tech)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	workers := runtime.GOMAXPROCS(0) / 2
	if workers < 1 {
		workers = 1
	}
	out, err := c.runTask(r.Context(), regionTask{work: req.Work, tc: tc, tech: req.Tech, opt: req.Opt}, workers)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	c.served.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := gob.NewEncoder(w).Encode(regionRPCResp{Out: out}); err != nil {
		c.log.Debug("region response encode failed", "error", err)
	}
}

// handleSteal is POST /internal/steal: lease one pending region to an idle
// peer. Nothing pending is a normal answer, not an error.
func (c *clusterNode) handleSteal(w http.ResponseWriter, r *http.Request) {
	if !c.authOK(r) {
		writeErr(w, http.StatusForbidden, fmt.Errorf("serve: bad cluster secret"))
		return
	}
	var req stealReq
	if err := gob.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("serve: steal decode: %w", err))
		return
	}
	var resp stealResp
	if e, token := c.board.lease(req.Node); e != nil {
		c.stealsGiven.Add(1)
		resp = stealResp{Found: true, Token: token, Work: e.task.work, Tech: e.task.tech, Opt: e.task.opt}
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := gob.NewEncoder(w).Encode(resp); err != nil {
		c.log.Debug("steal response encode failed", "error", err)
	}
}

// handleStealDone is POST /internal/steal/done: apply a stolen region's
// result under its single-use lease token. A stale, reused or unknown
// token is rejected (Applied=false) — the idempotency barrier that makes
// double-execution after a lease reclaim harmless.
func (c *clusterNode) handleStealDone(w http.ResponseWriter, r *http.Request) {
	if !c.authOK(r) {
		writeErr(w, http.StatusForbidden, fmt.Errorf("serve: bad cluster secret"))
		return
	}
	var req stealDoneReq
	if err := gob.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("serve: steal-done decode: %w", err))
		return
	}
	var rerr error
	if req.Err != "" {
		rerr = fmt.Errorf("serve: stolen region failed remotely: %s", req.Err)
	}
	applied := c.board.completeLease(req.Token, req.Out, rerr)
	if !applied {
		c.stealRejects.Add(1)
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := gob.NewEncoder(w).Encode(stealDoneResp{Applied: applied}); err != nil {
		c.log.Debug("steal-done response encode failed", "error", err)
	}
}

// ---------------------------------------------------------------------------
// The region board.

const (
	entryPending = iota
	entryActive  // claimed by a local executor or dispatcher
	entryLeased  // leased to a stealing peer
	entryDone
)

// boardEntry is one offered region riding through the board.
type boardEntry struct {
	task regionTask
	ctx  context.Context

	// attempts counts failed remote tries; past 2 the entry pins local.
	attempts  int
	localOnly bool

	state       int
	token       string
	leaseExpiry time.Time

	out  *core.RegionOut
	err  error
	done chan struct{}
}

// regionBoard is the shared pending-region queue of one node: partitioned
// jobs offer their regions here, and local executors, per-peer dispatchers
// and stealing peers drain it. Completion is single-shot per entry
// (whoever delivers first wins; everything else is a counted no-op), and
// steal leases carry single-use tokens so a reclaimed lease's late result
// can never double-apply.
type regionBoard struct {
	mu      sync.Mutex
	cond    *sync.Cond
	closed  bool
	pending []*boardEntry
	leases  map[string]*boardEntry
	nextTok int64
	timeout time.Duration
}

func newRegionBoard(leaseTimeout time.Duration) *regionBoard {
	b := &regionBoard{leases: make(map[string]*boardEntry), timeout: leaseTimeout}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *regionBoard) close() {
	b.mu.Lock()
	b.closed = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// run offers one region and blocks until someone delivers its result or
// the job's context ends.
func (b *regionBoard) run(ctx context.Context, task regionTask) (*core.RegionOut, error) {
	e := &boardEntry{task: task, ctx: ctx, done: make(chan struct{})}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, ErrClosed
	}
	e.state = entryPending
	b.pending = append(b.pending, e)
	b.cond.Broadcast()
	b.mu.Unlock()
	select {
	case <-e.done:
		return e.out, e.err
	case <-ctx.Done():
		if b.deliver(e, nil, ctx.Err()) {
			return nil, ctx.Err()
		}
		<-e.done // delivery raced the cancellation; take the result
		return e.out, e.err
	}
}

func (b *regionBoard) pendingLen() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.pending)
}

// pop removes the first claimable pending entry; remote claimants skip
// local-pinned entries. Caller holds b.mu.
func (b *regionBoard) pop(remote bool) *boardEntry {
	for i, e := range b.pending {
		if e.state != entryPending {
			continue // delivered (cancelled) while pending; GC'd below
		}
		if remote && e.localOnly {
			continue
		}
		b.pending = append(b.pending[:i], b.pending[i+1:]...)
		return e
	}
	// Compact delivered husks so a long-lived board does not accrete them.
	live := b.pending[:0]
	for _, e := range b.pending {
		if e.state == entryPending {
			live = append(live, e)
		}
	}
	b.pending = live
	return nil
}

// next blocks until a pending entry is claimable locally (nil after close).
func (b *regionBoard) next() *boardEntry {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if e := b.pop(false); e != nil {
			e.state = entryActive
			return e
		}
		if b.closed {
			return nil
		}
		b.cond.Wait()
	}
}

// nextRemote is next for dispatchers: skips local-pinned entries.
func (b *regionBoard) nextRemote() *boardEntry {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if e := b.pop(true); e != nil {
			e.state = entryActive
			return e
		}
		if b.closed {
			return nil
		}
		b.cond.Wait()
	}
}

// reoffer returns a failed remote attempt to the pending queue; the second
// failure pins the entry to local execution.
func (b *regionBoard) reoffer(e *boardEntry) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if e.state == entryDone {
		return
	}
	e.attempts++
	if e.attempts >= 2 {
		e.localOnly = true
	}
	if tok := e.token; tok != "" {
		delete(b.leases, tok)
		e.token = ""
	}
	e.state = entryPending
	b.pending = append(b.pending, e)
	b.cond.Broadcast()
}

// deliver completes an entry exactly once; later deliveries report false
// and change nothing.
func (b *regionBoard) deliver(e *boardEntry, out *core.RegionOut, err error) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if e.state == entryDone {
		return false
	}
	if e.token != "" {
		delete(b.leases, e.token)
		e.token = ""
	}
	e.state = entryDone
	e.out, e.err = out, err
	close(e.done)
	return true
}

// lease hands one pending entry to a stealing peer under a fresh
// single-use token.
func (b *regionBoard) lease(node string) (*boardEntry, string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.pop(true)
	if e == nil {
		return nil, ""
	}
	b.nextTok++
	tok := fmt.Sprintf("lease-%s-%d", node, b.nextTok)
	e.state = entryLeased
	e.token = tok
	e.leaseExpiry = time.Now().Add(b.timeout)
	b.leases[tok] = e
	return e, tok
}

// completeLease applies a stolen region's outcome if — and only if — the
// token still names a live lease. A remote error re-offers the entry
// locally instead of failing the job. Reports whether the token was
// accepted (a reused or reclaimed token is not).
func (b *regionBoard) completeLease(token string, out *core.RegionOut, rerr error) bool {
	b.mu.Lock()
	e, ok := b.leases[token]
	if !ok || e.token != token || e.state != entryLeased {
		b.mu.Unlock()
		return false
	}
	delete(b.leases, token)
	e.token = ""
	if rerr != nil {
		// Accepted, but the work failed remotely: back to the local queue.
		e.attempts++
		if e.attempts >= 2 {
			e.localOnly = true
		}
		e.state = entryPending
		b.pending = append(b.pending, e)
		b.cond.Broadcast()
		b.mu.Unlock()
		return true
	}
	e.state = entryDone
	e.out, e.err = out, nil
	close(e.done)
	b.mu.Unlock()
	return true
}

// reapLeases re-offers entries whose steal lease expired (stealer died or
// hung); the stale token is invalidated so the thief's late completion is
// rejected.
func (b *regionBoard) reapLeases(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for tok, e := range b.leases {
		if now.Before(e.leaseExpiry) {
			continue
		}
		delete(b.leases, tok)
		e.token = ""
		e.attempts++
		if e.attempts >= 2 {
			e.localOnly = true
		}
		e.state = entryPending
		b.pending = append(b.pending, e)
	}
	b.cond.Broadcast()
}
