package serve

import (
	"context"

	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"dscts/internal/obs"
)

// newMetricsServer is newTestServer with an observability registry wired in.
func newMetricsServer(t *testing.T, cfg Config) (*Server, *Client, *httptest.Server, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	cfg.Metrics = reg
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, NewClient(ts.URL), ts, reg
}

func scrape(t *testing.T, ts *httptest.Server) map[string]float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics content type %q", ct)
	}
	samples, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return samples
}

// TestMetricFamiliesGolden pins the exported metric set: adding a family is
// a deliberate act (update this list), renaming or dropping one is a
// breaking change for dashboards and must fail loudly here.
func TestMetricFamiliesGolden(t *testing.T) {
	_, client, ts, _ := newMetricsServer(t, Config{MaxRunning: 2})
	if _, err := client.Synthesize(context.Background(), &Request{Design: "C4"}); err != nil {
		t.Fatal(err)
	}
	if resp, err := http.Get(ts.URL + "/readyz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}

	want := []string{
		"dscts_arena_gets_total",
		"dscts_arena_hits_total",
		"dscts_arena_puts_total",
		"dscts_build_info",
		"dscts_cache_corruptions_total",
		"dscts_cache_encode_drops_total",
		"dscts_cache_entries",
		"dscts_cache_evictions_total",
		"dscts_cache_hits_total",
		"dscts_cache_misses_total",
		"dscts_eco_base_entries",
		"dscts_eco_base_hits_total",
		"dscts_eco_base_misses_total",
		"dscts_faults_injected_total",
		"dscts_http_request_duration_seconds",
		"dscts_http_requests_total",
		"dscts_idempotent_replays_total",
		"dscts_job_duration_seconds",
		"dscts_job_queue_wait_seconds",
		"dscts_jobs_abandoned_workers",
		"dscts_jobs_panics_total",
		"dscts_jobs_queue_capacity",
		"dscts_jobs_queue_depth",
		"dscts_jobs_rejected_total",
		"dscts_jobs_running",
		"dscts_jobs_submitted_total",
		"dscts_jobs_timeouts_total",
		"dscts_jobs_total",
		"dscts_jobs_watchdog_kills_total",
		"dscts_phase_duration_seconds",
		"dscts_qos_dispatched_total",
		"dscts_qos_jobs_total",
		"dscts_qos_pending",
		"dscts_qos_running",
		"dscts_qos_share",
		"dscts_readyz_checks_total",
		"dscts_regions_total",
		"dscts_store_dropped_total",
		"dscts_store_entries",
		"dscts_store_pending",
		"dscts_store_warm_loaded_total",
		"dscts_store_warm_skipped_total",
		"dscts_store_write_errors_total",
		"dscts_store_writes_total",
		"dscts_uptime_seconds",
		"dscts_worker_budget",
		"go_gc_cycles_total",
		"go_gc_pause_seconds_total",
		"go_gomaxprocs",
		"go_goroutines",
		"go_heap_alloc_bytes",
		"go_heap_objects",
		"go_heap_sys_bytes",
	}
	got := obs.FamilyNames(scrape(t, ts))
	if !reflect.DeepEqual(got, want) {
		t.Errorf("exported families changed:\n got %v\nwant %v", got, want)
	}
	if len(got) < 25 {
		t.Errorf("only %d families exported; the observability contract requires >= 25", len(got))
	}
}

// TestMetricsMatchStats cross-checks /metrics against /stats after a mixed
// run: same atomics, so every shared counter must agree exactly.
func TestMetricsMatchStats(t *testing.T) {
	s, client, ts, _ := newMetricsServer(t, Config{MaxRunning: 2, MaxJobSinks: 20_000})
	ctx := context.Background()
	if _, err := client.Synthesize(ctx, &Request{Design: "C4"}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Synthesize(ctx, &Request{Design: "C4"}); err != nil { // cache hit
		t.Fatal(err)
	}
	if _, err := client.Synthesize(ctx, &Request{Design: "C2", Seed: 2}); err != nil {
		t.Fatal(err)
	}
	// One admission-control rejection (413: over the sink budget).
	if _, err := client.Synthesize(ctx, &Request{XLSinks: 100_000}); err == nil {
		t.Fatal("oversized request not rejected")
	}

	stats := s.Queue().Stats()
	m := scrape(t, ts)

	checks := map[string]float64{
		"dscts_jobs_submitted_total":                     float64(stats.Jobs.Submitted),
		`dscts_jobs_total{state="done"}`:                 float64(stats.Jobs.Done),
		`dscts_jobs_total{state="failed"}`:               float64(stats.Jobs.Failed),
		`dscts_jobs_total{state="cancelled"}`:            float64(stats.Jobs.Cancelled),
		`dscts_jobs_rejected_total{reason="too_large"}`:  float64(stats.Jobs.RejectedLarge),
		`dscts_jobs_rejected_total{reason="queue_full"}`: float64(stats.Jobs.RejectedFull),
		`dscts_jobs_rejected_total{reason="closed"}`:     float64(stats.Jobs.RejectedClosed),
		`dscts_jobs_rejected_total{reason="quota"}`:      float64(stats.Jobs.RejectedQuota),
		"dscts_cache_hits_total":                         float64(stats.Cache.Hits),
		"dscts_cache_misses_total":                       float64(stats.Cache.Misses),
		"dscts_jobs_panics_total":                        float64(stats.Jobs.Panics),
	}
	for name, want := range checks {
		if got := m[name]; got != want {
			t.Errorf("%s = %v, /stats says %v", name, got, want)
		}
	}
	if stats.Jobs.RejectedLarge != 1 {
		t.Errorf("rejected_large = %d, want 1", stats.Jobs.RejectedLarge)
	}
	if stats.Jobs.Rejected != stats.Jobs.RejectedFull+stats.Jobs.RejectedLarge+stats.Jobs.RejectedClosed+stats.Jobs.RejectedQuota {
		t.Errorf("rejected sum mismatch: %+v", stats.Jobs)
	}
	// The accounting identity: submitted counts ADMITTED jobs only, so the
	// terminal states plus the in-flight ones always sum back to it — a
	// rejection (the 413 above) must not leak into submitted.
	if got := stats.Jobs.Done + stats.Jobs.Failed + stats.Jobs.Cancelled +
		stats.Jobs.Queued + stats.Jobs.Running; got != stats.Jobs.Submitted {
		t.Errorf("accounting identity broken: done+failed+cancelled+queued+running = %d, submitted = %d",
			got, stats.Jobs.Submitted)
	}
	if stats.Jobs.Submitted != 3 {
		t.Errorf("submitted = %d, want 3 (the rejected submission must not count)", stats.Jobs.Submitted)
	}
	// Done-job latency observations must sum to the done counter.
	durCount := m[`dscts_job_duration_seconds_count{cache="hit"}`] + m[`dscts_job_duration_seconds_count{cache="miss"}`]
	if durCount != float64(stats.Jobs.Done) {
		t.Errorf("job_duration count %v != done %d", durCount, stats.Jobs.Done)
	}
	if m[`dscts_job_duration_seconds_count{cache="hit"}`] != 1 {
		t.Errorf("cache-hit duration count = %v, want 1", m[`dscts_job_duration_seconds_count{cache="hit"}`])
	}
}

// TestConcurrentScrapeUnderLoad hammers /metrics while jobs run; with -race
// this is the data-race gate for the scrape path against the hot path.
func TestConcurrentScrapeUnderLoad(t *testing.T) {
	_, client, ts, _ := newMetricsServer(t, Config{MaxRunning: 4, MaxQueued: 64})
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := client.Synthesize(ctx, &Request{Design: "C4", Seed: int64(1 + i%3)}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 10; k++ {
				resp, err := http.Get(ts.URL + "/metrics")
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := obs.ParseText(resp.Body); err != nil {
					t.Errorf("scrape %d unparseable: %v", k, err)
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	m := scrape(t, ts)
	if m["dscts_jobs_submitted_total"] != 8 {
		t.Errorf("submitted = %v, want 8", m["dscts_jobs_submitted_total"])
	}
}

// TestResultPhases asserts the span tracer's accounting: a synthesis result
// carries its phase breakdown, and the phase durations sum to approximately
// the job's engine-reported wall time (the flow is phases end to end; only
// inter-phase glue may fall in the gaps).
func TestResultPhases(t *testing.T) {
	_, client, _, _ := newMetricsServer(t, Config{MaxRunning: 1})
	info, err := client.Synthesize(context.Background(), &Request{Design: "C3"})
	if err != nil {
		t.Fatal(err)
	}
	res := info.Result
	if res == nil || len(res.Phases) == 0 {
		t.Fatalf("result carries no phase breakdown: %+v", info)
	}
	seen := map[string]obs.PhaseTotal{}
	var sum float64
	for _, pt := range res.Phases {
		seen[pt.Phase] = pt
		sum += pt.MS
	}
	for _, ph := range []string{"route", "insert", "eval"} {
		if seen[ph].Count == 0 {
			t.Errorf("phase %q missing from breakdown %+v", ph, res.Phases)
		}
	}
	if sum > res.TotalMS*1.10+1 {
		t.Errorf("phase sum %.3fms exceeds job total %.3fms", sum, res.TotalMS)
	}
	if sum < res.TotalMS*0.5 {
		t.Errorf("phase sum %.3fms is under half the job total %.3fms — spans are dropping time", sum, res.TotalMS)
	}

	// A repeat is a cache hit and reports the producing run's breakdown.
	info2, err := client.Synthesize(context.Background(), &Request{Design: "C3"})
	if err != nil {
		t.Fatal(err)
	}
	if !info2.CacheHit {
		t.Error("repeat was not a cache hit")
	}
	if !reflect.DeepEqual(info2.Result.Phases, res.Phases) {
		t.Errorf("cache hit changed the phase breakdown:\n%+v\n%+v", info2.Result.Phases, res.Phases)
	}
}

// TestVersionEndpointAndStats covers the build-identity satellite: GET
// /version, the /stats uptime/version fields, and the result stamp.
func TestVersionEndpointAndStats(t *testing.T) {
	s, client, ts, _ := newMetricsServer(t, Config{})
	resp, err := http.Get(ts.URL + "/version")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "go_version") {
		t.Fatalf("GET /version: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("response carries no X-Request-ID")
	}
	stats := s.Queue().Stats()
	if stats.UptimeSeconds <= 0 || stats.Version == "" || stats.Revision == "" {
		t.Errorf("stats missing identity fields: %+v", stats)
	}
	info, err := client.Synthesize(context.Background(), &Request{Design: "C4"})
	if err != nil {
		t.Fatal(err)
	}
	if info.Result == nil || info.Result.Version == "" || info.Result.Revision == "" {
		t.Errorf("result missing build stamp: %+v", info.Result)
	}
}

// TestRequestIDInErrorBody: a client-supplied X-Request-ID is echoed in the
// header and the error body.
func TestRequestIDInErrorBody(t *testing.T) {
	_, _, ts, _ := newMetricsServer(t, Config{})
	req, _ := http.NewRequest("POST", ts.URL+"/synthesize", strings.NewReader("{not json"))
	req.Header.Set("X-Request-ID", "trace-me-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Request-ID") != "trace-me-42" {
		t.Errorf("header X-Request-ID = %q", resp.Header.Get("X-Request-ID"))
	}
	if !strings.Contains(string(body), `"request_id":"trace-me-42"`) {
		t.Errorf("error body missing request_id: %s", body)
	}
}

// TestReadyzCounters: the distinct readiness outcomes land in distinct
// counters (satellite: saturated/draining were previously unobservable).
func TestReadyzCounters(t *testing.T) {
	s, _, ts, _ := newMetricsServer(t, Config{})
	get := func() int {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get(); code != http.StatusOK {
		t.Fatalf("ready probe: %d", code)
	}
	s.Drain()
	if code := get(); code != http.StatusServiceUnavailable {
		t.Fatalf("draining probe: %d", code)
	}
	m := scrape(t, ts)
	if m[`dscts_readyz_checks_total{state="ready"}`] != 1 {
		t.Errorf("ready checks = %v, want 1", m[`dscts_readyz_checks_total{state="ready"}`])
	}
	if m[`dscts_readyz_checks_total{state="draining"}`] != 1 {
		t.Errorf("draining checks = %v, want 1", m[`dscts_readyz_checks_total{state="draining"}`])
	}
}

// TestMetricsDisabled: with no registry the endpoints degrade cleanly —
// /metrics 404s, jobs still carry phases, nothing panics.
func TestMetricsDisabled(t *testing.T) {
	s := NewServer(Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /metrics with metrics disabled: %d, want 404", resp.StatusCode)
	}
	info, err := NewClient(ts.URL).Synthesize(context.Background(), &Request{Design: "C4"})
	if err != nil {
		t.Fatal(err)
	}
	if info.Result == nil || len(info.Result.Phases) == 0 {
		t.Error("phases missing with metrics disabled (the tracer is always on)")
	}
}
