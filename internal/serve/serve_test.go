package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"dscts/internal/bench"
	"dscts/internal/core"
	"dscts/internal/dse"
	"dscts/internal/fault"
	"dscts/internal/tech"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, NewClient(ts.URL)
}

// directMetrics runs the library directly with the options the service
// derives from req, as the reference for bit-identical comparison.
func directMetrics(t *testing.T, req *Request, kind string) *resolved {
	t.Helper()
	rv, err := req.resolve(kind)
	if err != nil {
		t.Fatal(err)
	}
	return rv
}

func requireSameMetrics(t *testing.T, label string, got *Result, req *Request) {
	t.Helper()
	rv := directMetrics(t, req, KindSynthesize)
	want, err := core.Synthesize(rv.root, rv.sinks, rv.tc, rv.opt)
	if err != nil {
		t.Fatalf("%s: direct synthesis: %v", label, err)
	}
	wm, gm := want.Metrics, got.Metrics
	if gm == nil {
		t.Fatalf("%s: no metrics in service result", label)
	}
	if gm.Latency != wm.Latency || gm.Skew != wm.Skew || gm.Buffers != wm.Buffers ||
		gm.NTSVs != wm.NTSVs || gm.WL != wm.WL {
		t.Fatalf("%s: service metrics differ from direct synthesis:\nservice %+v\ndirect  %+v", label, gm, wm)
	}
	if len(gm.SinkDelays) != len(wm.SinkDelays) {
		t.Fatalf("%s: sink delay count %d != %d", label, len(gm.SinkDelays), len(wm.SinkDelays))
	}
	for idx, d := range wm.SinkDelays {
		if gd, ok := gm.SinkDelays[idx]; !ok || gd != d {
			t.Fatalf("%s: sink %d delay %v != %v", label, idx, gm.SinkDelays[idx], d)
		}
	}
}

// TestConcurrentJobsBitIdentical serves 8 concurrent synthesis jobs over
// HTTP and checks every result — down to each per-sink delay, after a JSON
// round trip — against a direct library call. This is the service's core
// guarantee: scheduling and worker budgets never change results.
func TestConcurrentJobsBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrent end-to-end run")
	}
	_, client := newTestServer(t, Config{MaxRunning: 8, MaxQueued: 32})
	reqs := make([]*Request, 8)
	for i := range reqs {
		design := "C4"
		if i%2 == 1 {
			design = "C5"
		}
		reqs[i] = &Request{
			Design: design, Seed: int64(1 + i/4),
			Options:           OptionsSpec{FanoutThreshold: []int{0, 120}[i%2]},
			IncludeSinkDelays: true,
		}
	}
	results := make([]*Result, len(reqs))
	errs := make([]error, len(reqs))
	var wg sync.WaitGroup
	for i, req := range reqs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			info, err := client.Synthesize(context.Background(), req)
			if err != nil {
				errs[i] = err
				return
			}
			if info.State != StateDone {
				errs[i] = fmt.Errorf("job %s state %s (%s)", info.ID, info.State, info.Error)
				return
			}
			results[i] = info.Result
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		requireSameMetrics(t, fmt.Sprintf("job %d (%s)", i, reqs[i].Design), results[i], reqs[i])
	}
}

// TestCacheHitOnRepeat submits the identical request twice and checks the
// second is answered from the cache — visible both on the job (cache_hit)
// and in the /stats counters — with an identical result. A request
// differing only in scheduling-irrelevant fields shares the entry.
func TestCacheHitOnRepeat(t *testing.T) {
	_, client := newTestServer(t, Config{MaxRunning: 2, MaxQueued: 8})
	req := &Request{Design: "C4", IncludeSinkDelays: true}

	first, err := client.Synthesize(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Fatal("first request reported a cache hit")
	}
	st, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Cache.Hits != 0 || st.Cache.Misses != 1 || st.Cache.Entries != 1 {
		t.Fatalf("after first request: %+v", st.Cache)
	}

	second, err := client.Synthesize(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Fatal("repeated identical request was not a cache hit")
	}
	st, err = client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Fatalf("after repeat: %+v", st.Cache)
	}
	fm, sm := first.Result.Metrics, second.Result.Metrics
	if fm.Latency != sm.Latency || fm.Skew != sm.Skew || fm.Buffers != sm.Buffers || fm.NTSVs != sm.NTSVs {
		t.Fatalf("cache returned different metrics: %+v vs %+v", fm, sm)
	}
	if len(sm.SinkDelays) != len(fm.SinkDelays) {
		t.Fatalf("cache dropped sink delays: %d vs %d", len(sm.SinkDelays), len(fm.SinkDelays))
	}
}

// TestCancelInFlight cancels a running job and checks it stops promptly and
// leaves no goroutines behind once the server closes.
func TestCancelInFlight(t *testing.T) {
	before := runtime.NumGoroutine()

	// A deterministic context-honoring delay at the insert boundary holds
	// the job in flight long enough to be cancelled on any machine (the
	// bare C2 synthesis can finish in tens of milliseconds, losing the
	// race); cancellation interrupts the delay immediately.
	reg, err := fault.Parse("delay@core.insert:every=1:30s", 1)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(Config{MaxRunning: 1, MaxQueued: 4, Workers: 1, Faults: reg})
	ts := httptest.NewServer(s.Handler())
	client := NewClient(ts.URL)

	// C2 is the biggest design; at one worker it runs long enough to be
	// caught in flight.
	info, err := client.SubmitAsync(context.Background(), KindSynthesize, &Request{Design: "C2"})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		j, err := client.Job(context.Background(), info.ID)
		if err != nil {
			t.Fatal(err)
		}
		if j.State == StateRunning {
			break
		}
		if j.State.terminal() {
			t.Fatalf("job finished before it could be cancelled: %s", j.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started: %s", j.State)
		}
		time.Sleep(time.Millisecond)
	}
	cancelled := time.Now()
	if _, err := client.Cancel(context.Background(), info.ID); err != nil {
		t.Fatal(err)
	}
	for {
		j, err := client.Job(context.Background(), info.ID)
		if err != nil {
			t.Fatal(err)
		}
		if j.State.terminal() {
			if j.State != StateCancelled {
				t.Fatalf("cancelled job ended %s (%s)", j.State, j.Error)
			}
			break
		}
		if time.Since(cancelled) > 5*time.Second {
			t.Fatal("job did not stop after cancellation")
		}
		time.Sleep(time.Millisecond)
	}
	st, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Jobs.Cancelled != 1 || st.Jobs.Running != 0 {
		t.Fatalf("stats after cancel: %+v", st.Jobs)
	}

	ts.Close()
	s.Close()
	// All runner and flow goroutines must be gone.
	settle := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			break
		} else if time.Now().After(settle) {
			t.Fatalf("goroutines leaked: %d before, %d after shutdown", before, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAdmissionControl fills the queue and checks the next submission is
// rejected with 429, visible in /stats.
func TestAdmissionControl(t *testing.T) {
	s, client := newTestServer(t, Config{MaxRunning: 1, MaxQueued: 1, Workers: 1})
	// Occupy the single runner.
	run, err := s.Queue().Submit(&Request{Design: "C2"}, KindSynthesize)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		run.Cancel()
		<-run.Done()
	}()
	deadline := time.Now().Add(10 * time.Second)
	for run.Info().State != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	// Fill the single queue slot.
	queued, err := s.Queue().Submit(&Request{Design: "C2", Seed: 2}, KindSynthesize)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		queued.Cancel()
		<-queued.Done()
	}()
	// Next admission must bounce, as HTTP 429 through the API.
	if _, err := client.SubmitAsync(context.Background(), KindSynthesize, &Request{Design: "C2", Seed: 3}); err == nil {
		t.Fatal("over-capacity submission accepted")
	} else if ae, ok := err.(*apiError); !ok || ae.Status != 429 {
		t.Fatalf("want HTTP 429, got %v", err)
	}
	st, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Jobs.Rejected != 1 {
		t.Fatalf("rejected count %d", st.Jobs.Rejected)
	}
}

// TestStreamingProgress runs a job in stream mode and checks the NDJSON
// event sequence: queued, running, every phase in order, then a terminal
// done event carrying the result.
func TestStreamingProgress(t *testing.T) {
	_, client := newTestServer(t, Config{MaxRunning: 2})
	var events []Event
	last, err := client.Stream(context.Background(), KindSynthesize, &Request{Design: "C4"}, func(ev Event) {
		events = append(events, ev)
	})
	if err != nil {
		t.Fatal(err)
	}
	if last.Event != string(StateDone) || last.Result == nil || last.Result.Metrics == nil {
		t.Fatalf("terminal event %+v", last)
	}
	var kinds []string
	phaseDone := map[string]bool{}
	for _, ev := range events {
		kinds = append(kinds, ev.Event)
		if ev.Event == "phase" && ev.PhaseDone {
			phaseDone[ev.Phase] = true
		}
	}
	if kinds[0] != "queued" || kinds[1] != "running" {
		t.Fatalf("event order %v", kinds)
	}
	for _, ph := range []core.Phase{core.PhaseRoute, core.PhaseInsert, core.PhaseEval} {
		if !phaseDone[string(ph)] {
			t.Fatalf("missing completed phase %q in %v", ph, kinds)
		}
	}
}

// TestDSEEndpoint sweeps thresholds through the service and compares
// against the direct sweep, then checks the repeat is a cache hit.
func TestDSEEndpoint(t *testing.T) {
	_, client := newTestServer(t, Config{MaxRunning: 2})
	req := &Request{Design: "C4", Thresholds: []int{60, 400}}
	info, err := client.DSE(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StateDone || len(info.Result.Points) != 2 {
		t.Fatalf("dse job %+v", info)
	}
	p := mustPlacement(t, "C4", 1)
	want, err := dse.SweepFanout(p.Root, p.Sinks, tech.ASAP7(), req.Thresholds, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range info.Result.Points {
		if pt != want[i] {
			t.Fatalf("dse point %d: service %+v direct %+v", i, pt, want[i])
		}
	}
	again, err := client.DSE(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Fatal("repeated dse request missed the cache")
	}
}

func mustPlacement(t *testing.T, id string, seed int64) *bench.Placement {
	t.Helper()
	d, err := bench.ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	p, err := bench.Generate(d, seed)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestBadRequests exercises the 400 paths.
func TestBadRequests(t *testing.T) {
	_, client := newTestServer(t, Config{})
	cases := []*Request{
		{},                             // no placement at all
		{Design: "C9"},                 // unknown design
		{Design: "C4", Tech: "sky130"}, // unknown tech
		{Design: "C4", Options: OptionsSpec{Mode: "triple"}}, // bad mode
		{Design: "C4", Root: &XY{1, 1}, Sinks: []XY{{2, 2}}}, // both forms
	}
	for i, req := range cases {
		_, err := client.Synthesize(context.Background(), req)
		ae, ok := err.(*apiError)
		if !ok || ae.Status != 400 {
			t.Fatalf("case %d: want HTTP 400, got %v", i, err)
		}
	}
	// DSE without thresholds.
	if _, err := client.DSE(context.Background(), &Request{Design: "C4"}); err == nil {
		t.Fatal("dse without thresholds accepted")
	}
	// Health must still be fine.
	if err := client.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestRequestKey pins the cache-identity rules: scheduling- and response-
// shape fields are excluded, every result-affecting field participates.
func TestRequestKey(t *testing.T) {
	base := func() *Request { return &Request{Design: "C4", Seed: 1} }
	k := base().Key(KindSynthesize)
	same := base()
	same.IncludeSinkDelays = true
	if same.Key(KindSynthesize) != k {
		t.Fatal("IncludeSinkDelays changed the key")
	}
	// bench.ByID accepts ID and name; both spellings must share the entry.
	byName := &Request{Design: "riscv32i", Seed: 1}
	if byName.Key(KindSynthesize) != k {
		t.Fatal("design name and ID produced different keys")
	}
	// An implicit seed is the same request as seed 1.
	if (&Request{Design: "C4"}).Key(KindSynthesize) != k {
		t.Fatal("default seed keyed differently from seed 1")
	}
	if base().Key(KindDSE) == k {
		t.Fatal("kind did not change the key")
	}
	diff := []*Request{
		{Design: "C5", Seed: 1},
		{Design: "C4", Seed: 2},
		{Design: "C4", Seed: 1, Options: OptionsSpec{Mode: "single"}},
		{Design: "C4", Seed: 1, Options: OptionsSpec{FanoutThreshold: 100}},
		{Design: "C4", Seed: 1, Options: OptionsSpec{Alpha: 2}},
		{Design: "C4", Seed: 1, Options: OptionsSpec{SkipRefine: true}},
		{Design: "C4", Seed: 1, Options: OptionsSpec{UseFlatDME: true}},
		{Root: &XY{1, 2}, Sinks: []XY{{3, 4}}},
	}
	seen := map[string]int{k: -1}
	for i, r := range diff {
		rk := r.Key(KindSynthesize)
		if j, dup := seen[rk]; dup {
			t.Fatalf("requests %d and %d share a key", i, j)
		}
		seen[rk] = i
	}
	// Explicit placements: coordinate identity is exact.
	a := &Request{Root: &XY{1, 2}, Sinks: []XY{{3, 4}, {5, 6}}}
	b := &Request{Root: &XY{1, 2}, Sinks: []XY{{3, 4}, {5, 6.0000000001}}}
	if a.Key(KindSynthesize) == b.Key(KindSynthesize) {
		t.Fatal("perturbed sink coordinate kept the key")
	}
}

// TestSubmitAfterClose checks a closed queue rejects new work instead of
// accepting jobs nothing will ever run (which would hang sync waiters).
func TestSubmitAfterClose(t *testing.T) {
	q := NewQueue(Config{MaxRunning: 1, MaxQueued: 1})
	q.Close()
	if _, err := q.Submit(&Request{Design: "C4"}, KindSynthesize); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: err = %v", err)
	}
}

// TestCacheLRU checks capacity eviction order.
func TestCacheLRU(t *testing.T) {
	c := newCache(2)
	r := &Result{Kind: KindSynthesize}
	c.Put("a", r)
	c.Put("b", r)
	if _, ok := c.Get("a"); !ok { // a is now most recent
		t.Fatal("a missing")
	}
	c.Put("c", r) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted out of LRU order")
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats %+v", st)
	}
}
