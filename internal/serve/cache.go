package serve

import (
	"container/list"
	"sync"
)

// CacheStats is the cache section of GET /stats.
type CacheStats struct {
	Entries    int   `json:"entries"`
	MaxEntries int   `json:"max_entries"`
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	Evictions  int64 `json:"evictions"`
}

// cache is a content-addressed result cache with LRU eviction. Results are
// deterministic functions of their request key, so entries never go stale;
// the only eviction pressure is capacity. Stored results are treated as
// immutable by all readers.
type cache struct {
	mu        sync.Mutex
	max       int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	hits      int64
	misses    int64
	evictions int64
}

type cacheEntry struct {
	key string
	val *Result
}

func newCache(maxEntries int) *cache {
	if maxEntries <= 0 {
		maxEntries = 128
	}
	return &cache{max: maxEntries, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached result for key, counting a hit or a miss.
func (c *cache) Get(key string) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put stores a result, evicting the least recently used entry beyond
// capacity. Storing an existing key refreshes its value and recency.
func (c *cache) Put(key string, val *Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.max {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// Stats snapshots the counters.
func (c *cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries: c.ll.Len(), MaxEntries: c.max,
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
	}
}
