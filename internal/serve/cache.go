package serve

import (
	"container/list"
	"sync"
)

// CacheStats is the cache section of GET /stats.
type CacheStats struct {
	Entries    int   `json:"entries"`
	MaxEntries int   `json:"max_entries"`
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	Evictions  int64 `json:"evictions"`
}

// lru is a content-addressed cache with LRU eviction. Stored values are
// deterministic functions of their key, so entries never go stale; the only
// eviction pressure is capacity. Stored values are treated as immutable by
// all readers. It backs both the result cache (JSON payloads, cheap, many
// entries) and the ECO base cache (full retained outcomes, heavy, few
// entries).
type lru[V any] struct {
	mu        sync.Mutex
	max       int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	hits      int64
	misses    int64
	evictions int64
}

type lruEntry[V any] struct {
	key string
	val V
}

func newLRU[V any](maxEntries, fallback int) *lru[V] {
	if maxEntries <= 0 {
		maxEntries = fallback
	}
	return &lru[V]{max: maxEntries, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached value for key, counting a hit or a miss.
func (c *lru[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		var zero V
		return zero, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry[V]).val, true
}

// Put stores a value, evicting the least recently used entry beyond
// capacity. Storing an existing key refreshes its value and recency.
func (c *lru[V]) Put(key string, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry[V]).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry[V]{key: key, val: val})
	for c.ll.Len() > c.max {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*lruEntry[V]).key)
		c.evictions++
	}
}

// Stats snapshots the counters.
func (c *lru[V]) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries: c.ll.Len(), MaxEntries: c.max,
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
	}
}

// cache is the result cache.
type cache = lru[*Result]

func newCache(maxEntries int) *cache { return newLRU[*Result](maxEntries, 128) }
