package serve

import (
	"container/list"
	"encoding/json"
	"hash/fnv"
	"sync"
	"sync/atomic"
)

// CacheStats is the cache section of GET /stats.
type CacheStats struct {
	Entries    int   `json:"entries"`
	MaxEntries int   `json:"max_entries"`
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	Evictions  int64 `json:"evictions"`
	// Corruptions counts entries whose integrity checksum failed on read;
	// each was evicted and recomputed instead of served (result cache only).
	Corruptions int64 `json:"corruptions,omitempty"`
	// EncodeDrops counts results whose checksum encoding failed at store
	// time; each was dropped instead of cached under a bogus sum (result
	// cache only).
	EncodeDrops int64 `json:"encode_drops,omitempty"`
}

// lru is a content-addressed cache with LRU eviction. Stored values are
// deterministic functions of their key, so entries never go stale; the only
// eviction pressure is capacity. Stored values are treated as immutable by
// all readers. It backs both the result cache (JSON payloads, cheap, many
// entries) and the ECO base cache (full retained outcomes, heavy, few
// entries).
type lru[V any] struct {
	mu          sync.Mutex
	max         int
	ll          *list.List // front = most recently used
	items       map[string]*list.Element
	hits        int64
	misses      int64
	evictions   int64
	corruptions int64
}

type lruEntry[V any] struct {
	key string
	val V
}

func newLRU[V any](maxEntries, fallback int) *lru[V] {
	if maxEntries <= 0 {
		maxEntries = fallback
	}
	return &lru[V]{max: maxEntries, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached value for key, counting a hit or a miss.
func (c *lru[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		var zero V
		return zero, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry[V]).val, true
}

// GetChecked is Get with an integrity gate: the entry is handed to verify
// while the cache lock is held, and a failing entry is removed and counted
// as a corruption, an eviction AND a miss in the same critical section. A
// concurrent Stats snapshot therefore always sees the three counters agree
// about every lookup — there is no window where a corrupted read has been
// counted as a hit but not yet reclassified.
func (c *lru[V]) GetChecked(key string, verify func(V) bool) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var zero V
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return zero, false
	}
	e := el.Value.(*lruEntry[V])
	if verify != nil && !verify(e.val) {
		c.ll.Remove(el)
		delete(c.items, key)
		c.corruptions++
		c.evictions++
		c.misses++
		return zero, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return e.val, true
}

// Put stores a value, evicting the least recently used entry beyond
// capacity. Storing an existing key refreshes its value and recency.
func (c *lru[V]) Put(key string, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry[V]).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry[V]{key: key, val: val})
	for c.ll.Len() > c.max {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*lruEntry[V]).key)
		c.evictions++
	}
}

// Remove drops a key if present (corrupted-entry eviction); it counts as an
// eviction.
func (c *lru[V]) Remove(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return false
	}
	c.ll.Remove(el)
	delete(c.items, key)
	c.evictions++
	return true
}

// Peek returns the value without touching recency or the hit/miss counters.
func (c *lru[V]) Peek(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		return el.Value.(*lruEntry[V]).val, true
	}
	var zero V
	return zero, false
}

// Stats snapshots the counters.
func (c *lru[V]) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries: c.ll.Len(), MaxEntries: c.max,
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Corruptions: c.corruptions,
	}
}

// cachedResult is one result-cache entry: the immutable result plus the
// integrity checksum computed at store time.
type cachedResult struct {
	res *Result
	sum uint64
}

// cache is the result cache: a checksummed LRU. Every entry's checksum is
// computed when stored and re-verified on every read; a mismatch means the
// entry was corrupted in place (injected by the fault harness, or real
// memory damage once entries live off-heap), so Get evicts it and reports a
// miss — the caller recomputes instead of serving garbage.
type cache struct {
	lru         *lru[cachedResult]
	encodeDrops atomic.Int64
}

func newCache(maxEntries int) *cache {
	return &cache{lru: newLRU[cachedResult](maxEntries, 128)}
}

// Get returns the cached result after verifying its checksum. Verification
// runs under the LRU lock so the hit/miss/corruption counters stay
// mutually consistent (see lru.GetChecked).
func (c *cache) Get(key string) (*Result, bool) {
	e, ok := c.lru.GetChecked(key, func(e cachedResult) bool {
		sum, err := checksumResult(e.res)
		return err == nil && sum == e.sum
	})
	if !ok {
		return nil, false
	}
	return e.res, true
}

// Put stores a result with a fresh checksum. A result whose canonical
// encoding fails — which a well-formed engine result never does — is
// dropped and counted instead of stored under a checksum over a truncated
// stream, which a later Get would misreport as a corruption.
func (c *cache) Put(key string, res *Result) bool {
	sum, err := checksumResult(res)
	if err != nil {
		c.encodeDrops.Add(1)
		return false
	}
	c.lru.Put(key, cachedResult{res: res, sum: sum})
	return true
}

// Has reports whether a key is present without touching recency or the
// hit/miss counters: cluster routing peeks before forwarding a request to
// its ring owner, and a peek must not distort the cache statistics.
func (c *cache) Has(key string) bool {
	_, ok := c.lru.Peek(key)
	return ok
}

// Corrupt flips the stored checksum of an entry, simulating in-place
// corruption for the fault harness and tests; the next Get must detect it.
func (c *cache) Corrupt(key string) bool {
	e, ok := c.lru.Peek(key)
	if !ok {
		return false
	}
	e.sum ^= 0xdeadbeef
	c.lru.Put(key, e)
	return true
}

// Stats snapshots the counters. A corrupted read counts as a miss (the
// caller recomputed), not a hit, and its eviction is included in Evictions;
// all three are taken from one LRU snapshot, so no transient combination
// (negative hits included) is ever observable.
func (c *cache) Stats() CacheStats {
	st := c.lru.Stats()
	st.EncodeDrops = c.encodeDrops.Load()
	return st
}

// checksumResult hashes the canonical JSON encoding of a result (FNV-64a).
// JSON keeps the walk stable (struct order, sorted maps) and exactly covers
// what a client could ever be served. An encode failure is surfaced, not
// swallowed: a sum over a truncated stream would be indistinguishable from
// in-place corruption on the next read.
func checksumResult(r *Result) (uint64, error) {
	h := fnv.New64a()
	if err := json.NewEncoder(h).Encode(r); err != nil {
		return 0, err
	}
	return h.Sum64(), nil
}
