package serve

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"

	"dscts/internal/core"
	"dscts/internal/store"
)

// This file is the queue's bridge to the disk persistence tier
// (internal/store). The store is payload-agnostic — it moves checksummed
// byte blobs — so everything format-shaped lives here: cached Results
// persist as their canonical JSON (the same encoding the integrity checksum
// covers), retained ECO base outcomes persist as gob snapshots. Writes are
// fire-and-forget behind the in-memory caches; reads happen exactly once,
// at NewQueue, to warm-start the caches before the first submission.

// warmStart reloads persisted entries into the in-memory caches. Entries
// that fail to decode are reported corrupt to the store (which counts and
// deletes them); a corrupt or truncated file can therefore cost at most one
// cold miss, never an error surfaced to a client.
func (q *Queue) warmStart() {
	st := q.cfg.Store
	if st == nil {
		return
	}
	var results, bases int
	st.Load(store.KindResult, func(key string, payload []byte) bool {
		res := new(Result)
		if err := json.Unmarshal(payload, res); err != nil {
			return false
		}
		if !q.cache.Put(key, res) {
			return false
		}
		results++
		return true
	})
	if q.bases != nil {
		st.Load(store.KindBase, func(key string, payload []byte) bool {
			out, err := decodeBaseOutcome(payload)
			if err != nil {
				return false
			}
			q.bases.Put(key, out)
			bases++
			return true
		})
	}
	s := st.Stats()
	q.log.Info("warm start from persistent store",
		"results", results, "bases", bases,
		"skipped_corrupt", s.WarmSkippedCorrupt,
		"skipped_version", s.WarmSkippedVersion,
		"skipped_io", s.WarmSkippedIO)
}

// persistResult writes a freshly computed result behind the in-memory
// cache. Best-effort and non-blocking: a full write-behind queue drops the
// entry (counted by the store), costing a cold miss after the next restart.
func (q *Queue) persistResult(key string, res *Result) {
	st := q.cfg.Store
	if st == nil {
		return
	}
	payload, err := json.Marshal(res)
	if err != nil {
		// Unreachable for a result the cache accepted: cache.Put already
		// proved the canonical encoding works.
		q.log.Warn("result not persisted: encode failed", "error", err)
		return
	}
	st.Put(store.KindResult, key, payload)
}

// persistBase snapshots a retained base outcome so POST /eco survives a
// restart without re-synthesizing its base.
func (q *Queue) persistBase(key string, out *core.Outcome) {
	st := q.cfg.Store
	if st == nil || out == nil || out.Retained == nil {
		return
	}
	payload, err := encodeBaseOutcome(out)
	if err != nil {
		q.log.Warn("eco base not persisted: encode failed", "error", err)
		return
	}
	st.Put(store.KindBase, key, payload)
}

// storeStats snapshots the persistence tier for GET /stats; nil when
// persistence is disabled.
func (q *Queue) storeStats() *store.Stats {
	if q.cfg.Store == nil {
		return nil
	}
	s := q.cfg.Store.Stats()
	return &s
}

// encodeBaseOutcome gob-encodes a base outcome for persistence. The
// retained options are copied with the per-run scaffolding stripped:
// Progress closures capture live jobs, and a fault registry is test
// equipment — neither belongs in a snapshot that outlives the process.
func encodeBaseOutcome(out *core.Outcome) ([]byte, error) {
	c := *out
	ret := *out.Retained
	ret.Opt.Progress = nil
	ret.Opt.Faults = nil
	c.Retained = &ret
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&c); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeBaseOutcome is the inverse of encodeBaseOutcome. A snapshot
// without retained state is useless to /eco and reports as corrupt.
func decodeBaseOutcome(payload []byte) (*core.Outcome, error) {
	out := new(core.Outcome)
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(out); err != nil {
		return nil, err
	}
	if out.Retained == nil || out.Tree == nil {
		return nil, fmt.Errorf("serve: base snapshot missing retained state")
	}
	return out, nil
}
