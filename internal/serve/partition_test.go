package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dscts/internal/core"
)

// TestSizeAdmissionControl checks the job-size budget: an oversized request
// is rejected with ErrTooLarge at the queue and HTTP 413 with a size
// estimate in the body — before any placement is materialized.
func TestSizeAdmissionControl(t *testing.T) {
	srv := NewServer(Config{MaxJobSinks: 10_000})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// Queue-level: sentinel and size payload.
	_, err := srv.Queue().Submit(&Request{XLSinks: 1_000_000}, KindSynthesize)
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized submit error = %v, want ErrTooLarge", err)
	}
	var sz *SizeError
	if !errors.As(err, &sz) || sz.EstimatedSinks != 1_000_000 || sz.MaxSinks != 10_000 {
		t.Fatalf("size error payload = %+v", sz)
	}

	// HTTP-level: 413 with the estimate in the body.
	resp, err := http.Post(ts.URL+"/synthesize", "application/json",
		strings.NewReader(`{"xl_sinks": 1000000}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	var body struct {
		Error          string `json:"error"`
		EstimatedSinks int    `json:"estimated_sinks"`
		MaxSinks       int    `json:"max_sinks"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.EstimatedSinks != 1_000_000 || body.MaxSinks != 10_000 || body.Error == "" {
		t.Fatalf("413 body = %+v", body)
	}

	// A C2-sized named benchmark (14338 sinks) also exceeds the budget.
	if _, err := srv.Queue().Submit(&Request{Design: "C2"}, KindSynthesize); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("C2 submit error = %v, want ErrTooLarge", err)
	}
	// All three rejections (direct XL, HTTP XL, C2) are counted, and C4
	// still fits.
	if st := srv.Queue().Stats(); st.Jobs.Rejected != 3 || st.Jobs.MaxJobSinks != 10_000 {
		t.Fatalf("stats after rejections: %+v", st.Jobs)
	}
	if _, err := srv.Queue().Submit(&Request{Design: "C4"}, KindSynthesize); err != nil {
		t.Fatalf("C4 submit: %v", err)
	}
}

// TestWorkersSizedByJob checks the size-aware budget split: ordinary jobs
// share the worker budget, mega-scale jobs get all of it.
func TestWorkersSizedByJob(t *testing.T) {
	q := NewQueue(Config{MaxRunning: 4, Workers: 8})
	t.Cleanup(q.Close)
	if w := q.workersFor(1000); w != 2 {
		t.Fatalf("small job workers = %d, want 2", w)
	}
	if w := q.workersFor(DefaultXLSoloSinks); w != 8 {
		t.Fatalf("XL job workers = %d, want the full budget 8", w)
	}
}

// TestPartitionOptionsInCacheKey checks that the partition options are part
// of the result identity: the same design with and without partitioning (or
// with different capacities/strategies) must never share a cache entry.
func TestPartitionOptionsInCacheKey(t *testing.T) {
	plain := &Request{Design: "C1"}
	part := &Request{Design: "C1", Options: OptionsSpec{PartitionMaxSinks: 2000}}
	smaller := &Request{Design: "C1", Options: OptionsSpec{PartitionMaxSinks: 1000}}
	grid := &Request{Design: "C1", Options: OptionsSpec{PartitionMaxSinks: 2000, PartitionStrategy: "grid"}}
	kd := &Request{Design: "C1", Options: OptionsSpec{PartitionMaxSinks: 2000, PartitionStrategy: "kd"}}
	keys := map[string]string{
		"plain":   plain.Key(KindSynthesize),
		"part":    part.Key(KindSynthesize),
		"smaller": smaller.Key(KindSynthesize),
		"grid":    grid.Key(KindSynthesize),
	}
	seen := map[string]string{}
	for name, k := range keys {
		if prev, dup := seen[k]; dup {
			t.Fatalf("requests %q and %q share cache key %s", prev, name, k)
		}
		seen[k] = name
	}
	// The empty strategy canonicalizes to "kd": same entry.
	if kd.Key(KindSynthesize) != part.Key(KindSynthesize) {
		t.Fatal(`explicit "kd" and default strategy should share a cache entry`)
	}
}

// TestXLRequestValidation covers the xl_sinks request form.
func TestXLRequestValidation(t *testing.T) {
	bad := []*Request{
		{XLSinks: -5},
		{XLSinks: 1000, Design: "C1"},
		{XLSinks: 1000, Root: &XY{1, 1}, Sinks: []XY{{2, 2}}},
		{Design: "C1", Options: OptionsSpec{PartitionMaxSinks: -1}},
		{Design: "C1", Options: OptionsSpec{PartitionMaxSinks: 10, PartitionStrategy: "voronoi"}},
	}
	for i, r := range bad {
		if _, _, err := r.validate(KindSynthesize); err == nil {
			t.Errorf("bad request %d validated: %+v", i, r)
		}
	}
	design, sinks, err := (&Request{XLSinks: 250_000}).validate(KindSynthesize)
	if err != nil || design != "XL250000" || sinks != 250_000 {
		t.Fatalf("XL validate = %q, %d, %v", design, sinks, err)
	}
}

// TestPartitionedJobStreamsPhases runs a small partitioned synthesis through
// the service and checks that partition/stitch phase events reach the NDJSON
// stream and the result matches a direct library run bit-identically.
func TestPartitionedJobStreamsPhases(t *testing.T) {
	srv := NewServer(Config{MaxRunning: 2, Workers: 2})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	client := NewClient(ts.URL)

	req := &Request{Design: "C4", Options: OptionsSpec{PartitionMaxSinks: 300}}
	var phases []string
	last, err := client.Stream(context.Background(), KindSynthesize, req, func(ev Event) {
		if ev.Event == "phase" && ev.PhaseDone {
			phases = append(phases, ev.Phase)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if last.Event != string(StateDone) || last.Result == nil {
		t.Fatalf("terminal event %+v", last)
	}
	var sawPartition, sawStitch bool
	for _, ph := range phases {
		if ph == "partition" {
			sawPartition = true
		}
		if ph == "stitch" {
			sawStitch = true
		}
	}
	if !sawPartition || !sawStitch {
		t.Fatalf("phases %v missing partition/stitch", phases)
	}

	// Bit-identical to the direct library run.
	rv, err := req.resolve(KindSynthesize)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := core.Synthesize(rv.root, rv.sinks, rv.tc, rv.opt)
	if err != nil {
		t.Fatal(err)
	}
	if last.Result.Metrics.Latency != direct.Metrics.Latency ||
		last.Result.Metrics.Skew != direct.Metrics.Skew ||
		last.Result.Metrics.Buffers != direct.Metrics.Buffers ||
		last.Result.Metrics.NTSVs != direct.Metrics.NTSVs {
		t.Fatalf("service result drifted from direct run:\nservice %+v\ndirect  %+v", last.Result.Metrics, direct.Metrics)
	}
}
