package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"dscts/internal/arena"
	"dscts/internal/core"
	"dscts/internal/corner"
	"dscts/internal/dse"
	"dscts/internal/eval"
	"dscts/internal/fault"
	"dscts/internal/obs"
	"dscts/internal/par"
	"dscts/internal/store"
)

// Job kinds.
const (
	KindSynthesize = "synthesize"
	KindDSE        = "dse"
	KindECO        = "eco"
)

// JobState is the lifecycle state of a queued job.
type JobState string

// Job lifecycle: queued → running → done | failed | cancelled. Cache hits
// are born done.
const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

func (s JobState) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Sentinel errors of Submit; the HTTP layer maps them to status codes.
var (
	// ErrQueueFull is returned when admission control rejects a job.
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrBadRequest wraps request validation failures.
	ErrBadRequest = errors.New("serve: bad request")
	// ErrNotFound is returned for unknown job IDs.
	ErrNotFound = errors.New("serve: no such job")
	// ErrClosed is returned by Submit after Close.
	ErrClosed = errors.New("serve: queue closed")
	// ErrTooLarge is returned when a job's estimated size exceeds the
	// queue's sink budget; the HTTP layer maps it to 413 with the size
	// estimate in the body. Always wrapped in a *SizeError.
	ErrTooLarge = errors.New("serve: job too large")
)

// SizeError carries the admission-control size estimate of a rejected job.
type SizeError struct {
	// EstimatedSinks is the job's estimated sink count (exact for named
	// benchmarks, XL placements and explicit sink lists).
	EstimatedSinks int
	// MaxSinks is the queue's configured budget.
	MaxSinks int
}

func (e *SizeError) Error() string {
	return fmt.Sprintf("serve: job too large: estimated %d sinks exceeds the %d-sink budget", e.EstimatedSinks, e.MaxSinks)
}

// Unwrap makes errors.Is(err, ErrTooLarge) work.
func (e *SizeError) Unwrap() error { return ErrTooLarge }

// DPStats summarizes the insertion DP of a synthesis result.
type DPStats struct {
	Nodes     int `json:"nodes"`
	Solutions int `json:"solutions"`
}

// RefineStats summarizes the skew-refinement outcome.
type RefineStats struct {
	Triggered    bool    `json:"triggered"`
	Inserted     int     `json:"inserted"`
	Attempted    int     `json:"attempted"`
	SkewBeforePS float64 `json:"skew_before_ps"`
	SkewAfterPS  float64 `json:"skew_after_ps"`
}

// Result is the JSON result payload of a finished job. Synthesize jobs
// carry Metrics/DP/Refine; DSE jobs carry Points. Phase times are from the
// run that produced the result (a cache hit reports the original run's).
type Result struct {
	Kind    string        `json:"kind"`
	Design  string        `json:"design"`
	Sinks   int           `json:"sinks"`
	Metrics *eval.Metrics `json:"metrics,omitempty"`
	DP      *DPStats      `json:"dp,omitempty"`
	Refine  *RefineStats  `json:"refine,omitempty"`
	Points  []dse.Point   `json:"points,omitempty"`
	// Corners is the multi-corner sign-off report: per-corner Metrics in
	// request corner order plus the cross-corner summary. Present only
	// when a synthesize request named corners.
	Corners *corner.Report `json:"corners,omitempty"`
	// CornerPoints replaces Points for DSE jobs that named corners: one
	// entry per threshold, each carrying one point per corner in request
	// corner order.
	CornerPoints []dse.CornerPoint `json:"corner_points,omitempty"`
	// ECO summarizes an incremental job's dirty set (eco jobs only).
	ECO *core.ECOStats `json:"eco,omitempty"`
	// BaseCacheHit reports whether an eco job found its base outcome in
	// the base cache (false means the base was synthesized first, and its
	// runtime is excluded from ECOMS but included in TotalMS).
	BaseCacheHit bool `json:"base_cache_hit,omitempty"`

	RouteMS   float64 `json:"route_ms,omitempty"`
	InsertMS  float64 `json:"insert_ms,omitempty"`
	RefineMS  float64 `json:"refine_ms,omitempty"`
	CornersMS float64 `json:"corners_ms,omitempty"`
	ECOMS     float64 `json:"eco_ms,omitempty"`
	TotalMS   float64 `json:"total_ms"`

	// Phases is the traced per-phase breakdown of the run that produced the
	// result (span counts, point counts, summed durations), in completion
	// order. Like the *_ms fields, a cache hit reports the original run's.
	Phases []obs.PhaseTotal `json:"phases,omitempty"`
	// Version and Revision identify the build that produced the result.
	Version  string `json:"version,omitempty"`
	Revision string `json:"revision,omitempty"`
}

// view returns the response shape of the result: a shallow copy whose
// Metrics (top-level and per-corner) drop the (large) per-sink delay maps
// unless asked for. The cached Result itself is immutable.
func (r *Result) view(includeSinkDelays bool) *Result {
	if r == nil || includeSinkDelays || (r.Metrics == nil && r.Corners == nil) {
		return r
	}
	c := *r
	if r.Metrics != nil {
		m := *r.Metrics
		m.SinkDelays = nil
		c.Metrics = &m
	}
	if r.Corners != nil {
		rep := *r.Corners
		rep.Results = make([]corner.Result, len(r.Corners.Results))
		for i, res := range r.Corners.Results {
			m := *res.Metrics
			m.SinkDelays = nil
			res.Metrics = &m
			rep.Results[i] = res
		}
		c.Corners = &rep
	}
	return &c
}

// Event is one NDJSON progress line: the job lifecycle transitions plus the
// flow's per-phase events. The terminal event ("done", "failed" or
// "cancelled") closes the stream; "done" carries the result.
type Event struct {
	Event     string  `json:"event"`
	JobID     string  `json:"job_id"`
	Phase     string  `json:"phase,omitempty"`
	PhaseDone bool    `json:"phase_done,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`
	Point     int     `json:"point,omitempty"`
	Total     int     `json:"total,omitempty"`
	Error     string  `json:"error,omitempty"`
	Result    *Result `json:"result,omitempty"`
}

// JobInfo is the JSON snapshot of a job (GET /jobs/{id}).
type JobInfo struct {
	ID       string    `json:"id"`
	Kind     string    `json:"kind"`
	State    JobState  `json:"state"`
	CacheHit bool      `json:"cache_hit"`
	Design   string    `json:"design,omitempty"`
	Sinks    int       `json:"sinks,omitempty"`
	Created  time.Time `json:"created"`
	QueueMS  float64   `json:"queue_ms,omitempty"`
	RunMS    float64   `json:"run_ms,omitempty"`
	Error    string    `json:"error,omitempty"`
	Result   *Result   `json:"result,omitempty"`
	// TimedOut marks a failure caused by the job's wall-clock deadline
	// (Config.JobTimeout or the request's timeout_ms); sync HTTP maps it to
	// 504.
	TimedOut bool `json:"timed_out,omitempty"`
	// Panicked marks a failure caused by a panic inside the job body (the
	// worker recovered; see /stats last_panics); sync HTTP maps it to 500.
	Panicked bool `json:"panicked,omitempty"`
}

// Job is one admitted request moving through the queue.
type Job struct {
	id     string
	kind   string
	key    string
	req    *Request
	design string
	sinks  int
	// tenant and class are the job's QoS coordinates, fixed at admission
	// (request field or X-Tenant header; empty tenant → "default", empty
	// class → the configured default class).
	tenant string
	class  string
	// reqID is the HTTP request ID that admitted the job (empty for direct
	// queue submissions); it threads through the job's log lines so a
	// client-reported ID leads straight to the job.
	reqID string
	// trace records the job's phase timeline from the progress events; it is
	// always on (the tracer is a few locked appends per phase) so results
	// carry their phase breakdown even with metrics disabled.
	trace *obs.Tracer

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	// timeout is the job's effective running wall-clock deadline (0 = none),
	// fixed at admission from Config.JobTimeout and the request's timeout_ms.
	timeout time.Duration
	// abandon is closed by the watchdog to release the job's runner while
	// the body is stuck; the body goroutine is joined separately.
	abandon     chan struct{}
	abandonOnce sync.Once

	mu       sync.Mutex
	cond     *sync.Cond
	state    JobState
	cacheHit bool
	created  time.Time
	started  time.Time
	finished time.Time
	result   *Result
	errMsg   string
	log      []Event
	// runCtx is the body's context (job.ctx plus the deadline), set when the
	// job starts running; the watchdog reads it to spot stuck bodies.
	runCtx context.Context
	// stuckSince is watchdog bookkeeping: when the job's cancelled/expired
	// context was first observed still running.
	stuckSince time.Time
	timedOut   bool
	panicked   bool
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Cancel asks the job to stop. A queued job is skipped by the runner; a
// running job's context is cancelled and the flow stops mid-phase. Safe to
// call at any time, from any goroutine, repeatedly.
func (j *Job) Cancel() { j.cancel() }

// Info snapshots the job. The result view honors the request's
// IncludeSinkDelays.
func (j *Job) Info() JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	info := JobInfo{
		ID: j.id, Kind: j.kind, State: j.state, CacheHit: j.cacheHit,
		Design: j.design, Sinks: j.sinks,
		Created: j.created, Error: j.errMsg,
		Result:   j.result.view(j.req.IncludeSinkDelays),
		TimedOut: j.timedOut, Panicked: j.panicked,
	}
	if !j.started.IsZero() {
		info.QueueMS = ms(j.started.Sub(j.created))
		if !j.finished.IsZero() {
			info.RunMS = ms(j.finished.Sub(j.started))
		}
	} else if !j.finished.IsZero() { // cache hit or cancelled while queued
		info.QueueMS = ms(j.finished.Sub(j.created))
	}
	return info
}

// Follow replays the job's event log from the beginning and then follows it
// live, invoking fn for each event in order, until the terminal event has
// been delivered (returns nil), fn returns an error (returned as-is), or
// ctx is cancelled (returns ctx.Err()). Multiple followers may run
// concurrently; each sees the full ordered log.
func (j *Job) Follow(ctx context.Context, fn func(Event) error) error {
	// A context cancellation must wake a waiting follower.
	stop := context.AfterFunc(ctx, func() {
		j.mu.Lock()
		j.cond.Broadcast()
		j.mu.Unlock()
	})
	defer stop()
	cursor := 0
	for {
		j.mu.Lock()
		for cursor >= len(j.log) && !j.state.terminal() && ctx.Err() == nil {
			j.cond.Wait()
		}
		batch := append([]Event(nil), j.log[cursor:]...)
		cursor += len(batch)
		terminal := j.state.terminal() && cursor == len(j.log)
		j.mu.Unlock()
		for _, ev := range batch {
			if err := fn(ev); err != nil {
				return err
			}
		}
		if terminal {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
	}
}

func (j *Job) append(ev Event) {
	j.mu.Lock()
	// An abandoned body can emit progress after the watchdog already
	// finished the job; followers have seen the terminal event, so drop it.
	if !j.state.terminal() {
		j.log = append(j.log, ev)
		j.cond.Broadcast()
	}
	j.mu.Unlock()
}

func (j *Job) progress(p core.Progress) {
	// The flow's event grammar maps onto the tracer directly: Done closes a
	// span (the engine-measured Elapsed preferred over wall-clock), a
	// positive Total is a point event (sweep point, region, corner,
	// cluster), anything else opens a span.
	switch {
	case p.Done:
		j.trace.End(string(p.Phase), p.Elapsed)
	case p.Total > 0:
		j.trace.Point(string(p.Phase))
	default:
		j.trace.Begin(string(p.Phase))
	}
	j.append(Event{
		Event: "phase", JobID: j.id,
		Phase: string(p.Phase), PhaseDone: p.Done, ElapsedMS: ms(p.Elapsed),
		Point: p.Point, Total: p.Total,
	})
}

func (j *Job) setRunning(runCtx context.Context) {
	j.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	j.runCtx = runCtx
	j.log = append(j.log, Event{Event: "running", JobID: j.id})
	j.cond.Broadcast()
	j.mu.Unlock()
}

// setTimedOut marks the terminal error as deadline-caused (HTTP 504); must
// be called before finish so snapshots taken after Done see it.
func (j *Job) setTimedOut() {
	j.mu.Lock()
	j.timedOut = true
	j.mu.Unlock()
}

// setPanicked marks the terminal error as panic-caused (HTTP 500).
func (j *Job) setPanicked() {
	j.mu.Lock()
	j.panicked = true
	j.mu.Unlock()
}

// finish moves the job to a terminal state exactly once, reporting whether
// THIS call did the transition. Late finishers — an abandoned body returning
// after the watchdog already failed the job — get false and must not touch
// the queue counters again.
func (j *Job) finish(state JobState, res *Result, err error) bool {
	j.mu.Lock()
	if j.state.terminal() {
		j.mu.Unlock()
		return false
	}
	j.state = state
	j.finished = time.Now()
	j.result = res
	ev := Event{Event: string(state), JobID: j.id}
	if err != nil {
		j.errMsg = err.Error()
		ev.Error = j.errMsg
	}
	if res != nil {
		ev.Result = res.view(j.req.IncludeSinkDelays)
	}
	j.log = append(j.log, ev)
	j.cond.Broadcast()
	j.mu.Unlock()
	j.cancel() // release the context's resources
	close(j.done)
	return true
}

// Config sizes the service.
type Config struct {
	// MaxQueued bounds the number of admitted-but-not-finished jobs the
	// queue holds beyond the running set; admission control rejects
	// submissions past it with ErrQueueFull. Default 64.
	MaxQueued int
	// MaxRunning is the number of jobs executing concurrently. Default 4.
	MaxRunning int
	// Workers is the total synthesis worker budget shared by the running
	// jobs; each job runs with max(1, Workers/MaxRunning) workers. 0 means
	// one worker per CPU. Budgets never affect results: the engine is
	// deterministic in its worker count.
	Workers int
	// CacheEntries caps the result cache (LRU evicted). Default 128.
	CacheEntries int
	// RetainJobs caps the finished-job records kept for GET /jobs/{id};
	// the oldest are forgotten first. Default 1024.
	RetainJobs int
	// MaxJobSinks is the admission-control size budget: requests whose
	// estimated sink count exceeds it are rejected with ErrTooLarge (HTTP
	// 413) instead of queueing work that will exhaust memory. 0 uses
	// DefaultMaxJobSinks; negative disables the check.
	MaxJobSinks int
	// XLSoloSinks is the size above which a job stops sharing the worker
	// budget and gets all of it: a mega-scale partitioned synthesis wants
	// every core, and the queue's other slots would otherwise sit on
	// per-job slices while it dominates the machine anyway. 0 uses
	// DefaultXLSoloSinks. Budgets never affect results.
	XLSoloSinks int
	// ECOBaseEntries caps the base-outcome cache backing POST /eco: full
	// retained outcomes (trees included) are orders of magnitude heavier
	// than cached Result payloads, so this LRU is kept deliberately small.
	// 0 uses DefaultECOBaseEntries; negative disables base caching (every
	// eco job re-synthesizes its base).
	ECOBaseEntries int
	// JobTimeout bounds each job's RUNNING wall-clock (queue wait excluded):
	// past it the job's context is cancelled, the job fails with TimedOut
	// set (HTTP 504 in sync mode) and its worker returns to the pool. A
	// request may shorten — never extend — it per job via timeout_ms. 0
	// disables the service-wide deadline.
	JobTimeout time.Duration
	// WatchdogGrace is how long a job whose context is already cancelled or
	// expired may keep running before the watchdog force-fails it and
	// abandons its worker goroutine (the body is stuck: a hung syscall, an
	// injected hang, a bug). The freed runner picks up the next job
	// immediately; the abandoned goroutine is joined when it eventually
	// returns (Close waits for them). 0 uses DefaultWatchdogGrace.
	WatchdogGrace time.Duration
	// IdempotencyEntries caps the idempotency-key LRU backing retried
	// submissions: while a key is retained, every submission carrying it
	// maps to the original job instead of running again. 0 uses
	// DefaultIdempotencyEntries; negative disables keyed dedup.
	IdempotencyEntries int
	// QoSClasses configures the job queue's priority classes (weighted
	// fair-share dispatch and running-slot budgets; see qosScheduler). The
	// FIRST class is the default for requests that name none. Empty uses
	// DefaultQoSClasses (interactive:3, batch:1).
	QoSClasses []QoSClass
	// TenantQuota caps each tenant's outstanding (queued or running)
	// jobs; past it submissions are rejected with ErrQuota (HTTP 429). 0
	// disables per-tenant quotas.
	TenantQuota int
	// Store is the disk-backed persistence tier: when set, finished
	// results and retained ECO bases are written behind the in-memory
	// caches and reloaded on the next NewQueue (warm start), so a restart
	// serves previously-cached requests as hits. The queue uses the store
	// but does not own it — the caller Opens it first and Closes it after
	// Queue.Close (flushing the write-behind tail). nil disables
	// persistence.
	Store *store.Store
	// Faults is the deterministic fault-injection registry (internal/fault)
	// threaded into the queue, the result cache and every job's
	// core.Options. nil — the production default — is a zero-cost no-op.
	Faults *fault.Registry
	// Metrics is the observability registry GET /metrics renders. Every
	// counter that /stats also reports is registered as a closure over the
	// same atomics, so the two endpoints cannot drift. nil disables
	// instrument registration entirely (zero hot-path cost).
	Metrics *obs.Registry
	// Logger receives the queue's structured log lines (admissions, job
	// terminations, panics, watchdog kills). nil discards them.
	Logger *slog.Logger
	// Cluster enables cluster mode (see cluster.go): consistent-hash
	// request routing across the peer set, remote region dispatch for
	// partitioned jobs, and work stealing. nil — the default — runs the
	// queue single-node. An invalid cluster config (node ID not in the
	// peer list, malformed peers) panics in NewQueue: it is static boot
	// configuration, pre-validated by the flag parser in cmd/dsctsd.
	Cluster *ClusterConfig
}

// DefaultMaxJobSinks bounds admitted job sizes when Config.MaxJobSinks is 0:
// large enough for multi-million-sink partitioned jobs, small enough to
// reject obvious memory bombs.
const DefaultMaxJobSinks = 4_000_000

// DefaultXLSoloSinks is the job size that earns the whole worker budget.
const DefaultXLSoloSinks = 100_000

// DefaultECOBaseEntries bounds the retained base outcomes kept for /eco.
const DefaultECOBaseEntries = 8

// DefaultWatchdogGrace is how long a cancelled job may ignore its context
// before its worker is abandoned: long enough that every cooperative
// mid-phase cancellation check fires first, short enough that a stuck job
// cannot monopolize a worker slot for more than a couple of seconds.
const DefaultWatchdogGrace = 2 * time.Second

// DefaultIdempotencyEntries bounds the retained idempotency keys.
const DefaultIdempotencyEntries = 512

// panicRingSize bounds the panic records retained for GET /stats.
const panicRingSize = 8

func (c Config) withDefaults() Config {
	if c.MaxQueued <= 0 {
		c.MaxQueued = 64
	}
	if c.MaxRunning <= 0 {
		c.MaxRunning = 4
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 128
	}
	if c.RetainJobs <= 0 {
		c.RetainJobs = 1024
	}
	if c.MaxJobSinks == 0 {
		c.MaxJobSinks = DefaultMaxJobSinks
	}
	if c.XLSoloSinks == 0 {
		c.XLSoloSinks = DefaultXLSoloSinks
	}
	if c.ECOBaseEntries == 0 {
		c.ECOBaseEntries = DefaultECOBaseEntries
	}
	if c.WatchdogGrace <= 0 {
		c.WatchdogGrace = DefaultWatchdogGrace
	}
	if c.IdempotencyEntries == 0 {
		c.IdempotencyEntries = DefaultIdempotencyEntries
	}
	return c
}

// QueueStats is the jobs section of GET /stats.
type QueueStats struct {
	// Submitted counts ADMITTED submissions only: every rejection path
	// returns before it, so submitted == done + failed + cancelled +
	// queued + running at every instant — the accounting identity cismoke
	// metrics enforces. Rejections are tallied separately below.
	Submitted int64 `json:"submitted"`
	// Rejected is the total of the rejection reasons below.
	Rejected int64 `json:"rejected"`
	// RejectedFull / RejectedLarge / RejectedClosed / RejectedQuota break
	// rejections down by cause: bounded queue full (429), over the sink
	// budget (413), queue closed during shutdown (503), tenant admission
	// quota exceeded (429).
	RejectedFull   int64 `json:"rejected_full,omitempty"`
	RejectedLarge  int64 `json:"rejected_large,omitempty"`
	RejectedClosed int64 `json:"rejected_closed,omitempty"`
	RejectedQuota  int64 `json:"rejected_quota,omitempty"`
	Queued         int64 `json:"queued"`
	Running        int64 `json:"running"`
	Done           int64 `json:"done"`
	Failed         int64 `json:"failed"`
	Cancelled      int64 `json:"cancelled"`
	MaxQueued      int   `json:"max_queued"`
	MaxRunning     int   `json:"max_running"`
	WorkerBudget   int   `json:"worker_budget"`
	PerJobWorkers  int   `json:"per_job_workers"`
	MaxJobSinks    int   `json:"max_job_sinks"`
	// Panics counts job bodies that panicked and were recovered (each is
	// also in Failed).
	Panics int64 `json:"panics,omitempty"`
	// Timeouts counts failures caused by the per-job deadline (subset of
	// Failed).
	Timeouts int64 `json:"timeouts,omitempty"`
	// WatchdogKills counts jobs force-finished by the watchdog because the
	// body ignored cancellation past the grace period.
	WatchdogKills int64 `json:"watchdog_kills,omitempty"`
	// AbandonedWorkers is the number of stuck job bodies currently detached
	// from the runner pool and not yet returned — a persistent nonzero
	// value means something is permanently hung.
	AbandonedWorkers int64 `json:"abandoned_workers,omitempty"`
	// Deduped counts submissions answered by an earlier job through their
	// idempotency key.
	Deduped int64 `json:"deduped,omitempty"`
}

// ArenaStats is the scratch-arena recycling section of GET /stats: Gets
// counts arena checkouts by synthesis jobs, Hits the checkouts served by a
// warm recycled arena (same size bucket), Puts the arenas returned. Gets -
// Puts over a quiet queue is the number of arenas dropped after panics.
type ArenaStats struct {
	Gets uint64 `json:"gets"`
	Hits uint64 `json:"hits"`
	Puts uint64 `json:"puts"`
}

// PanicRecord is one recovered job panic retained for GET /stats.
type PanicRecord struct {
	JobID string    `json:"job_id"`
	Value string    `json:"value"`
	Stack string    `json:"stack"`
	Time  time.Time `json:"time"`
}

// Stats is the GET /stats payload.
type Stats struct {
	UptimeMS      float64 `json:"uptime_ms"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Version and Revision identify the running build (GET /version has the
	// full identity).
	Version  string     `json:"version"`
	Revision string     `json:"revision"`
	Jobs     QueueStats `json:"jobs"`
	Cache    CacheStats `json:"cache"`
	// ECOBases is the base-outcome cache behind POST /eco.
	ECOBases CacheStats `json:"eco_bases"`
	// Arenas is the scratch-arena pool recycling snapshot.
	Arenas ArenaStats `json:"arenas"`
	// QoS is the per-class and per-tenant scheduling snapshot.
	QoS QoSStats `json:"qos"`
	// Store is the disk persistence tier's snapshot; nil when persistence
	// is disabled.
	Store *store.Stats `json:"store,omitempty"`
	// Faults counts fired injections per "kind@point" when a fault registry
	// is armed (chaos/test builds only).
	Faults map[string]int64 `json:"faults,omitempty"`
	// LastPanics is the ring of most recent recovered job panics, oldest
	// first, stack traces included.
	LastPanics []PanicRecord `json:"last_panics,omitempty"`
	// Cluster is the cluster-mode snapshot (routing, region dispatch,
	// stealing, peer liveness); nil when cluster mode is off.
	Cluster *ClusterStats `json:"cluster,omitempty"`
}

// Queue runs jobs on a fixed pool of runners with bounded admission and a
// shared result cache.
type Queue struct {
	cfg   Config
	cache *cache
	// bases retains recent synthesis outcomes (with their ECO state) so
	// POST /eco can splice against them; nil when base caching is disabled.
	bases  *lru[*core.Outcome]
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	// bodyWG tracks abandoned job bodies (stuck goroutines the watchdog
	// detached from the runner pool); Close joins them after the runners.
	bodyWG sync.WaitGroup
	// wdStop stops the watchdog; it outlives the runners so a stuck body
	// can still be reaped during shutdown.
	wdStop    chan struct{}
	wdWG      sync.WaitGroup
	closeOnce sync.Once

	// arenas recycles synthesis scratch arenas across queued jobs, bucketed
	// by sink count so a small request never pins a mega-run's working set.
	// A job that panics mid-run drops its arena (possibly inconsistent)
	// instead of returning it.
	arenas *arena.JobPool

	// sched is the pending set: class-weighted fair-share dispatch with
	// per-tenant round-robin and admission quotas (see qos.go).
	sched *qosScheduler
	// tenants holds the bounded per-tenant counter table for /stats.
	tenants *tenantTable

	mu       sync.Mutex
	closed   bool
	jobs     map[string]*Job
	finished []string      // retention ring of finished job IDs, oldest first
	panics   []PanicRecord // ring of recovered panics, oldest first

	// baseInflight coalesces concurrent base synthesis for /eco: one job
	// per base key does the work, the rest wait on its channel and then
	// take the cached outcome.
	baseMu       sync.Mutex
	baseInflight map[string]chan struct{}

	// idemMu serializes idempotency-key lookup-and-create so concurrent
	// retries with the same key coalesce onto one job; idem maps key→jobID
	// (nil when keyed dedup is disabled).
	idemMu sync.Mutex
	idem   *lru[string]

	nextID    atomic.Int64
	submitted atomic.Int64
	// Rejections split by cause; /stats reports the sum plus the breakdown
	// and /metrics labels dscts_jobs_rejected_total by reason.
	rejectedFull   atomic.Int64
	rejectedLarge  atomic.Int64
	rejectedClosed atomic.Int64
	rejectedQuota  atomic.Int64
	doneCt         atomic.Int64
	failedCt       atomic.Int64
	cancelCt       atomic.Int64
	panicCt        atomic.Int64
	timeoutCt      atomic.Int64
	watchdogCt     atomic.Int64
	abandonCt      atomic.Int64 // gauge: bodies currently detached
	dedupCt        atomic.Int64

	// metrics is the instrument set over these atomics (nil when
	// Config.Metrics is nil); log is never nil (discard by default).
	metrics *metrics
	log     *slog.Logger

	// cluster is the cluster-mode runtime (ring, peer liveness, region
	// board); nil when Config.Cluster is nil.
	cluster *clusterNode

	start time.Time
}

// NewQueue starts the runner pool. With Config.Store set it warm-starts
// first: persisted results and ECO bases are verified and loaded into the
// in-memory caches before the first submission can arrive.
func NewQueue(cfg Config) *Queue {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	q := &Queue{
		cfg: cfg, cache: newCache(cfg.CacheEntries),
		ctx: ctx, cancel: cancel,
		arenas:       arena.NewJobPool(0),
		sched:        newQoSScheduler(cfg.QoSClasses, cfg.MaxQueued, cfg.MaxRunning, cfg.TenantQuota),
		tenants:      newTenantTable(),
		jobs:         make(map[string]*Job),
		baseInflight: make(map[string]chan struct{}),
		wdStop:       make(chan struct{}),
		start:        time.Now(),
	}
	if cfg.ECOBaseEntries > 0 {
		q.bases = newLRU[*core.Outcome](cfg.ECOBaseEntries, DefaultECOBaseEntries)
	}
	if cfg.IdempotencyEntries > 0 {
		q.idem = newLRU[string](cfg.IdempotencyEntries, DefaultIdempotencyEntries)
	}
	q.log = cfg.Logger
	if q.log == nil {
		q.log = slog.New(slog.DiscardHandler)
	}
	q.warmStart()
	if cfg.Cluster != nil {
		cn, err := newClusterNode(*cfg.Cluster, q)
		if err != nil {
			panic(fmt.Sprintf("serve: invalid cluster config: %v", err))
		}
		q.cluster = cn
	}
	q.metrics = newMetrics(cfg.Metrics, q)
	q.wg.Add(cfg.MaxRunning)
	for i := 0; i < cfg.MaxRunning; i++ {
		go q.runner()
	}
	q.wdWG.Add(1)
	go q.watchdog()
	return q
}

// watchdog periodically sweeps the running jobs for bodies that ignored
// cancellation (or their deadline) past the grace period, force-finishes
// them and frees their runners. It runs until Close has joined the runner
// pool, so shutdown cannot hang on a stuck body either.
func (q *Queue) watchdog() {
	defer q.wdWG.Done()
	interval := q.cfg.WatchdogGrace / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	if interval > 250*time.Millisecond {
		interval = 250 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-q.wdStop:
			return
		case now := <-t.C:
			q.sweepStuck(now)
		}
	}
}

// sweepStuck force-fails every running job whose context has been done for
// at least the grace period: the body is stuck, so the job is finished on
// its behalf (timeout or cancellation semantics, matching what the body
// would have reported) and its runner released via the abandon channel.
func (q *Queue) sweepStuck(now time.Time) {
	q.mu.Lock()
	running := make([]*Job, 0, q.cfg.MaxRunning)
	for _, j := range q.jobs {
		j.mu.Lock()
		if j.state == StateRunning {
			running = append(running, j)
		}
		j.mu.Unlock()
	}
	q.mu.Unlock()
	for _, j := range running {
		j.mu.Lock()
		if j.state != StateRunning || j.runCtx == nil || j.runCtx.Err() == nil {
			j.stuckSince = time.Time{}
			j.mu.Unlock()
			continue
		}
		if j.stuckSince.IsZero() {
			j.stuckSince = now
			j.mu.Unlock()
			continue
		}
		stuck := now.Sub(j.stuckSince) >= q.cfg.WatchdogGrace
		timedOut := errors.Is(j.runCtx.Err(), context.DeadlineExceeded) && j.ctx.Err() == nil
		j.mu.Unlock()
		if !stuck {
			continue
		}
		state, err := StateCancelled, fmt.Errorf(
			"serve: watchdog: job ignored cancellation for %v; worker abandoned", q.cfg.WatchdogGrace)
		if timedOut {
			state = StateFailed
			err = fmt.Errorf("serve: watchdog: job still running %v past its %v deadline; worker abandoned",
				q.cfg.WatchdogGrace, j.timeout)
			j.setTimedOut()
		}
		if j.finish(state, nil, err) {
			q.watchdogCt.Add(1)
			if timedOut {
				q.failedCt.Add(1)
				q.timeoutCt.Add(1)
			} else {
				q.cancelCt.Add(1)
			}
			q.log.Warn("watchdog abandoned stuck job",
				"job", j.id, "kind", j.kind, "timed_out", timedOut,
				"grace", q.cfg.WatchdogGrace, "request_id", j.reqID)
		}
		j.abandonOnce.Do(func() { close(j.abandon) })
	}
}

// perJobWorkers is the worker budget handed to each running job.
func (q *Queue) perJobWorkers() int {
	w := par.N(q.cfg.Workers) / q.cfg.MaxRunning
	if w < 1 {
		w = 1
	}
	return w
}

// workersFor sizes a job's worker budget by its estimated sink count:
// ordinary jobs share the budget evenly, mega-scale jobs (>= XLSoloSinks)
// get all of it. The engine is deterministic in the worker count, so sizing
// affects wall-clock only, never results.
func (q *Queue) workersFor(sinks int) int {
	if q.cfg.XLSoloSinks > 0 && sinks >= q.cfg.XLSoloSinks {
		return par.N(q.cfg.Workers)
	}
	return q.perJobWorkers()
}

// Submit validates, content-addresses and admits a request. An identical
// request already served is answered from the cache with a job born done
// (CacheHit set); otherwise the job enters the bounded queue or is rejected
// with ErrQueueFull. Validation failures wrap ErrBadRequest. The benchmark
// placement itself is materialized at execution, not here, so cache hits
// and rejections stay cheap.
//
// A request carrying an IdempotencyKey is deduplicated first: while the key
// is retained, resubmissions (client retries of a POST whose response was
// lost) return the ORIGINAL job — whatever state it is in — instead of
// running the work again. Lookup and insert hold one lock, so concurrent
// retries of the same key coalesce onto a single job.
func (q *Queue) Submit(req *Request, kind string) (*Job, error) {
	key := req.IdempotencyKey
	if key == "" || q.idem == nil {
		return q.submitNew(req, kind)
	}
	q.idemMu.Lock()
	defer q.idemMu.Unlock()
	if id, ok := q.idem.Get(key); ok {
		q.mu.Lock()
		j := q.jobs[id]
		q.mu.Unlock()
		if j != nil {
			q.dedupCt.Add(1)
			return j, nil
		}
		// The job fell out of the retention ring; run it afresh below.
	}
	job, err := q.submitNew(req, kind)
	if err == nil {
		q.idem.Put(key, job.id)
	}
	return job, err
}

func (q *Queue) submitNew(req *Request, kind string) (*Job, error) {
	if kind != KindSynthesize && kind != KindDSE && kind != KindECO {
		return nil, fmt.Errorf("%w: unknown job kind %q", ErrBadRequest, kind)
	}
	design, sinks, err := req.validate(kind)
	if err != nil {
		return nil, fmt.Errorf("%w: %s", ErrBadRequest, err)
	}
	cls, ok := q.sched.lookup(req.Class)
	if !ok {
		return nil, fmt.Errorf("%w: unknown qos class %q", ErrBadRequest, req.Class)
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = "default"
	}
	// NOTE the accounting contract: EVERY rejection path (too-large here,
	// closed/full/quota in admit) returns before q.submitted is counted —
	// a rejection is not a submission, uniformly across reasons.
	if q.cfg.MaxJobSinks > 0 && sinks > q.cfg.MaxJobSinks {
		q.rejectedLarge.Add(1)
		q.log.Debug("job rejected: too large",
			"kind", kind, "design", design, "sinks", sinks,
			"max_sinks", q.cfg.MaxJobSinks, "request_id", req.reqID)
		return nil, &SizeError{EstimatedSinks: sinks, MaxSinks: q.cfg.MaxJobSinks}
	}
	ctx, cancel := context.WithCancel(q.ctx)
	job := &Job{
		id:   fmt.Sprintf("job-%06d", q.nextID.Add(1)),
		kind: kind, key: req.Key(kind), req: req,
		design: design, sinks: sinks,
		tenant: tenant, class: cls.name,
		reqID: req.reqID, trace: obs.NewTracer(),
		ctx: ctx, cancel: cancel,
		done: make(chan struct{}), abandon: make(chan struct{}),
		state: StateQueued, created: time.Now(),
		timeout: effectiveTimeout(q.cfg.JobTimeout, req.TimeoutMS),
	}
	job.cond = sync.NewCond(&job.mu)
	job.append(Event{Event: "queued", JobID: job.id})

	// Scripted cache corruption fires here, before the lookup, so the
	// integrity check below is what must catch it.
	if f := q.cfg.Faults.Fire(fault.PointServeCache); f != nil && f.Kind == fault.Corrupt {
		q.cache.Corrupt(job.key)
	}
	if res, ok := q.cache.Get(job.key); ok {
		job.cacheHit = true
		if err := q.admit(job, false); err != nil {
			return nil, err
		}
		if job.finish(StateDone, res, nil) {
			q.doneCt.Add(1)
		}
		q.log.Debug("job served from cache",
			"job", job.id, "kind", kind, "design", design, "sinks", sinks,
			"request_id", job.reqID)
		q.retire(job)
		return job, nil
	}
	if err := q.admit(job, true); err != nil {
		return nil, err
	}
	q.log.Debug("job admitted",
		"job", job.id, "kind", kind, "design", design, "sinks", sinks,
		"request_id", job.reqID)
	return job, nil
}

// effectiveTimeout combines the service deadline with the request's
// timeout_ms: the request can only shorten it, and never below a 1ms
// floor. Without the floor a sub-microsecond timeout_ms truncates to
// duration 0, which context.WithTimeout never gets to see — run() treats 0
// as "no deadline", so a tiny request value would DISABLE the service-wide
// JobTimeout instead of shortening it.
func effectiveTimeout(svc time.Duration, reqMS float64) time.Duration {
	d := svc
	if reqMS > 0 {
		r := time.Duration(reqMS * float64(time.Millisecond))
		if r < time.Millisecond {
			r = time.Millisecond
		}
		if d == 0 || r < d {
			d = r
		}
	}
	return d
}

// admit registers the job — and, when enqueue is set, places it on the
// QoS scheduler — atomically with respect to Close, so a job is either
// rejected (ErrClosed/ErrQueueFull/ErrQuota) or guaranteed to reach a
// terminal state: anything admitted before Close is drained by it. The
// submitted counter increments here, after every rejection check, so
// submitted counts exactly the jobs that will reach a terminal state.
func (q *Queue) admit(job *Job, enqueue bool) error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		q.rejectedClosed.Add(1)
		job.cancel()
		return ErrClosed
	}
	if enqueue {
		if err := q.sched.push(job); err != nil {
			q.mu.Unlock()
			job.cancel()
			switch {
			case errors.Is(err, ErrQuota):
				q.rejectedQuota.Add(1)
				q.tenants.quotaRejected(job.tenant)
				q.log.Debug("job rejected: tenant quota",
					"kind", job.kind, "design", job.design, "tenant", job.tenant,
					"class", job.class, "request_id", job.reqID)
				return fmt.Errorf("%w: tenant %q already has %d jobs outstanding",
					ErrQuota, job.tenant, q.cfg.TenantQuota)
			case errors.Is(err, ErrClosed):
				q.rejectedClosed.Add(1)
				return ErrClosed
			default:
				q.rejectedFull.Add(1)
				q.log.Debug("job rejected: queue full",
					"kind", job.kind, "design", job.design, "request_id", job.reqID)
				return ErrQueueFull
			}
		}
	}
	q.jobs[job.id] = job
	q.mu.Unlock()
	q.submitted.Add(1)
	q.tenants.submitted(job.tenant)
	return nil
}

// Job looks up a job by ID.
func (q *Queue) Job(id string) (*Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j, nil
}

// Cancel cancels a job by ID.
func (q *Queue) Cancel(id string) (*Job, error) {
	j, err := q.Job(id)
	if err != nil {
		return nil, err
	}
	j.Cancel()
	return j, nil
}

// Stats snapshots the queue and cache counters.
func (q *Queue) Stats() Stats {
	var queued, running int64
	q.mu.Lock()
	for _, j := range q.jobs {
		j.mu.Lock()
		switch j.state {
		case StateQueued:
			queued++
		case StateRunning:
			running++
		}
		j.mu.Unlock()
	}
	lastPanics := append([]PanicRecord(nil), q.panics...)
	q.mu.Unlock()
	rejFull, rejLarge, rejClosed, rejQuota :=
		q.rejectedFull.Load(), q.rejectedLarge.Load(), q.rejectedClosed.Load(), q.rejectedQuota.Load()
	build := obs.Build()
	uptime := time.Since(q.start)
	return Stats{
		UptimeMS: ms(uptime), UptimeSeconds: uptime.Seconds(),
		Version: build.Version, Revision: build.Revision,
		ECOBases: q.baseStats(),
		Arenas:   q.arenaStats(),
		QoS: QoSStats{
			DefaultClass: q.sched.defaultClass(),
			TenantQuota:  q.cfg.TenantQuota,
			Classes:      q.sched.snapshot(),
			Tenants:      q.tenants.snapshot(q.sched),
		},
		Store: q.storeStats(),
		Jobs: QueueStats{
			Submitted:    q.submitted.Load(),
			Rejected:     rejFull + rejLarge + rejClosed + rejQuota,
			RejectedFull: rejFull, RejectedLarge: rejLarge, RejectedClosed: rejClosed,
			RejectedQuota: rejQuota,
			Queued:        queued, Running: running,
			Done: q.doneCt.Load(), Failed: q.failedCt.Load(), Cancelled: q.cancelCt.Load(),
			MaxQueued: q.cfg.MaxQueued, MaxRunning: q.cfg.MaxRunning,
			WorkerBudget: par.N(q.cfg.Workers), PerJobWorkers: q.perJobWorkers(),
			MaxJobSinks: q.cfg.MaxJobSinks,
			Panics:      q.panicCt.Load(), Timeouts: q.timeoutCt.Load(),
			WatchdogKills:    q.watchdogCt.Load(),
			AbandonedWorkers: q.abandonCt.Load(),
			Deduped:          q.dedupCt.Load(),
		},
		Cache:      q.cache.Stats(),
		Faults:     q.cfg.Faults.Counts(),
		LastPanics: lastPanics,
		Cluster:    q.clusterStats(),
	}
}

// clusterStats returns the cluster snapshot, nil when cluster mode is off.
func (q *Queue) clusterStats() *ClusterStats {
	if q.cluster == nil {
		return nil
	}
	return q.cluster.stats()
}

// Close stops the runner pool: new submissions are rejected with
// ErrClosed, running jobs are cancelled mid-phase, still queued jobs are
// finished as cancelled, and Close blocks until every goroutine the queue
// started — runners, the watchdog, and any abandoned job bodies — has
// exited. The watchdog keeps running until the runners have drained, so a
// body stuck past the grace period cannot hang shutdown: its runner is
// freed, and the body itself is joined once its (bounded) hang returns.
// Safe to call more than once.
func (q *Queue) Close() {
	q.closeOnce.Do(func() {
		q.mu.Lock()
		q.closed = true
		q.mu.Unlock()
		q.cancel()
		// Wake runners blocked on an empty scheduler; pending jobs stay
		// queued for the drain below.
		q.sched.close()
		q.wg.Wait()
		close(q.wdStop)
		q.wdWG.Wait()
		q.bodyWG.Wait()
		// With every job body joined, nothing can be waiting on the region
		// board; stop the cluster runtime (executors, dispatchers, stealer,
		// prober) last.
		if q.cluster != nil {
			q.cluster.close()
		}
		// Drain jobs the runners never picked up.
		for _, job := range q.sched.drain() {
			if job.finish(StateCancelled, nil, context.Canceled) {
				q.cancelCt.Add(1)
			}
			q.retire(job)
		}
	})
}

// Saturated reports whether the pending queue is full: the next enqueue
// would be rejected with ErrQueueFull, so /readyz turns not-ready and load
// balancers can drain before clients see 429s.
func (q *Queue) Saturated() bool { return q.sched.Full() }

// RetryAfter estimates when a rejected submission is worth retrying: the
// queue depth divided by the running slots, floored at one second. It is
// deliberately coarse — job runtimes vary by orders of magnitude — but it
// scales with backlog, which is what spreads a thundering herd.
func (q *Queue) RetryAfter() time.Duration {
	d := time.Duration(1+q.sched.Len()/q.cfg.MaxRunning) * time.Second
	if d > 60*time.Second {
		d = 60 * time.Second
	}
	return d
}

// retire records a finished job in the retention ring, forgetting the
// oldest finished jobs beyond the cap. Every job passes through exactly
// once, already terminal, which makes it the one funnel for the latency
// histograms and the per-job log line.
func (q *Queue) retire(job *Job) {
	q.metrics.observeRetired(job)
	job.mu.Lock()
	state, errMsg, hit := job.state, job.errMsg, job.cacheHit
	dur := job.finished.Sub(job.created)
	job.mu.Unlock()
	// retire is the one funnel every job passes exactly once, so the
	// per-class and per-tenant terminal counters hook here (cache hits
	// included).
	q.sched.observeTerminal(job, state)
	q.tenants.terminal(job.tenant, state)
	q.log.Debug("job finished",
		"job", job.id, "kind", job.kind, "state", string(state),
		"cache_hit", hit, "dur_ms", ms(dur),
		"error", errMsg, "request_id", job.reqID)
	q.mu.Lock()
	q.finished = append(q.finished, job.id)
	for len(q.finished) > q.cfg.RetainJobs {
		delete(q.jobs, q.finished[0])
		q.finished = q.finished[1:]
	}
	q.mu.Unlock()
}

func (q *Queue) runner() {
	defer q.wg.Done()
	for {
		job := q.sched.next()
		if job == nil { // scheduler closed
			return
		}
		q.run(job)
	}
}

// run executes one job on a runner. The body runs in a child goroutine so
// the runner can be reclaimed if the body gets stuck: normally the select
// ends with the body's return, but when the watchdog abandons the job the
// runner moves on immediately and the stuck goroutine is joined later
// (bodyWG, waited by Close).
func (q *Queue) run(job *Job) {
	// The running slot and tenant-quota unit free when the RUNNER moves
	// on — also after a watchdog abandon, where the stuck body lingers
	// but its slot is already being reused.
	defer q.sched.release(job)
	defer q.retire(job)
	if job.ctx.Err() != nil { // cancelled while queued
		if job.finish(StateCancelled, nil, job.ctx.Err()) {
			q.cancelCt.Add(1)
		}
		return
	}
	runCtx, cancelRun := job.ctx, context.CancelFunc(func() {})
	if job.timeout > 0 {
		runCtx, cancelRun = context.WithTimeout(job.ctx, job.timeout)
	}
	job.setRunning(runCtx)
	bodyDone := make(chan struct{})
	go func() {
		defer close(bodyDone)
		defer cancelRun()
		q.execute(job, runCtx)
	}()
	select {
	case <-bodyDone:
	case <-job.abandon:
		// Watchdog force-failed the job: this runner is free, the body is
		// tracked until it eventually returns. The Add happens before this
		// runner exits, so it is always ordered before Close's bodyWG.Wait.
		q.abandonCt.Add(1)
		q.bodyWG.Add(1)
		go func() {
			<-bodyDone
			q.abandonCt.Add(-1)
			q.bodyWG.Done()
		}()
	}
}

// execute is the job body: recover any panic into a structured failure,
// apply the serve.job injection point, dispatch by kind and classify the
// terminal state. Runs in its own goroutine; all counter updates are gated
// on finish() returning true so a late-returning abandoned body cannot
// double-count.
func (q *Queue) execute(job *Job, ctx context.Context) {
	defer func() {
		if r := recover(); r != nil {
			q.recordPanic(job.id, r, debug.Stack())
			job.setPanicked()
			if job.finish(StateFailed, nil, fmt.Errorf("serve: job panicked: %v", r)) {
				q.failedCt.Add(1)
			}
			q.panicCt.Add(1)
			q.log.Warn("job panicked (recovered)",
				"job", job.id, "kind", job.kind, "panic", fmt.Sprint(r),
				"request_id", job.reqID)
		}
	}()
	if f := q.cfg.Faults.Fire(fault.PointServeJob); f != nil {
		switch f.Kind {
		case fault.Cancel:
			job.cancel()
		case fault.Corrupt:
			// Meaningless at the job boundary; ignore.
		default:
			if err := f.Apply(ctx); err != nil {
				q.finishJob(job, ctx, nil, err)
				return
			}
		}
	}
	if job.kind == KindECO {
		result, err := q.runECO(job, ctx)
		q.finishJob(job, ctx, result, err)
		return
	}
	rv, err := job.req.resolve(job.kind)
	if err != nil {
		// Unreachable for a validated request; fail cleanly regardless.
		q.finishJob(job, ctx, nil, err)
		return
	}
	opt := rv.opt
	opt.Workers = q.workersFor(job.sinks)
	opt.Progress = job.progress
	opt.Faults = q.cfg.Faults
	if q.cluster != nil {
		// Partitioned regions route through the cluster's region board:
		// local executors, peer dispatch and work stealing drain it. The
		// executor is result-equivalent to the local path, so Metrics stay
		// bit-identical to a single-node run.
		opt.RegionExec = q.cluster.execFor(job.req.Tech, rv.tc, opt)
	}

	var result *Result
	switch job.kind {
	case KindSynthesize:
		// Recycle a size-bucketed scratch arena across queued jobs. A run
		// that retains ECO state keeps its arena on the retained outcome
		// instead (the base LRU owns it then), so only non-retaining runs
		// borrow from the pool. Put happens only on a non-panicking return:
		// a panic unwinds past this frame, dropping the (possibly
		// inconsistent) arena for the GC — exactly what JobPool documents.
		var aj *arena.Job
		if !opt.RetainECO {
			aj = q.arenas.Get(job.sinks)
			opt.Arena = aj
		}
		var o *core.Outcome
		o, err = core.SynthesizeContext(ctx, rv.root, rv.sinks, rv.tc, opt)
		q.arenas.Put(aj)
		if err == nil {
			result = resultFromOutcome(KindSynthesize, job.design, job.sinks, o)
		}
	case KindDSE:
		t0 := time.Now()
		if len(rv.opt.Corners) > 0 {
			var pts []dse.CornerPoint
			pts, err = dse.SweepFanoutCorners(ctx, rv.root, rv.sinks, rv.tc, job.req.Thresholds, rv.opt.Corners, opt)
			if err == nil {
				result = &Result{
					Kind: KindDSE, Design: job.design, Sinks: job.sinks,
					Version: obs.Build().Version, Revision: obs.Build().Revision,
					CornerPoints: pts, TotalMS: ms(time.Since(t0)),
				}
			}
			break
		}
		var pts []dse.Point
		pts, err = dse.SweepFanoutContext(ctx, rv.root, rv.sinks, rv.tc, job.req.Thresholds, opt)
		if err == nil {
			result = &Result{
				Kind: KindDSE, Design: job.design, Sinks: job.sinks,
				Version: obs.Build().Version, Revision: obs.Build().Revision,
				Points: pts, TotalMS: ms(time.Since(t0)),
			}
		}
	}
	q.finishJob(job, ctx, result, err)
}

// finishJob classifies a body's outcome into the job's terminal state:
// success, deadline (failed + TimedOut, only when the PARENT context is
// still live — a cancelled parent is a cancellation however the deadline
// raced it), cancellation, or plain failure. A successful result is cached
// even if the job was already force-finished (it is valid; the next
// identical request deserves the hit).
func (q *Queue) finishJob(job *Job, runCtx context.Context, res *Result, err error) {
	switch {
	case err == nil:
		// The traced phase breakdown rides with the result into the cache:
		// like the *_ms fields, a later hit reports the producing run's.
		res.Phases = job.trace.Totals()
		if q.cache.Put(job.key, res) {
			q.persistResult(job.key, res)
		}
		if job.finish(StateDone, res, nil) {
			q.doneCt.Add(1)
		}
	case errors.Is(runCtx.Err(), context.DeadlineExceeded) && job.ctx.Err() == nil:
		job.setTimedOut()
		if job.finish(StateFailed, nil, fmt.Errorf("serve: deadline exceeded after %v: %w", job.timeout, err)) {
			q.failedCt.Add(1)
			q.timeoutCt.Add(1)
		}
	case job.ctx.Err() != nil:
		if job.finish(StateCancelled, nil, err) {
			q.cancelCt.Add(1)
		}
	default:
		if job.finish(StateFailed, nil, err) {
			q.failedCt.Add(1)
		}
	}
}

// recordPanic appends to the bounded panic ring retained for GET /stats.
func (q *Queue) recordPanic(jobID string, val any, stack []byte) {
	rec := PanicRecord{
		JobID: jobID, Value: fmt.Sprint(val), Stack: string(stack), Time: time.Now(),
	}
	q.mu.Lock()
	q.panics = append(q.panics, rec)
	if len(q.panics) > panicRingSize {
		q.panics = q.panics[len(q.panics)-panicRingSize:]
	}
	q.mu.Unlock()
}

// runECO executes an eco job: the base request (the job's request minus its
// delta) is resolved through the base-outcome cache — synthesized with
// retained state on a miss, which also populates the ordinary result cache
// under the base's own key — and the delta is then applied incrementally.
func (q *Queue) runECO(job *Job, ctx context.Context) (*Result, error) {
	t0 := time.Now()
	baseReq := *job.req
	baseReq.Delta = nil
	baseKey := baseReq.Key(KindSynthesize)
	prev, baseHit, err := q.resolveBase(job, ctx, &baseReq, baseKey)
	if err != nil {
		return nil, err
	}
	delta, err := job.req.Delta.toDelta()
	if err != nil {
		return nil, err // unreachable for a validated request
	}
	out, err := core.SynthesizeECOContext(ctx, prev, delta, core.Options{
		Workers: q.workersFor(job.sinks), Progress: job.progress,
		Faults: q.cfg.Faults,
	})
	if err != nil {
		return nil, err
	}
	r := resultFromOutcome(KindECO, job.design, job.sinks, out)
	r.BaseCacheHit = baseHit
	r.TotalMS = ms(time.Since(t0)) // include base resolution in the job total
	return r, nil
}

// resolveBase returns the retained base outcome for an eco job: from the
// base cache when present, otherwise synthesized — at most once per base
// key across concurrent jobs (single-flight), so N cold deltas against the
// same base pay for one synthesis instead of N. The leader's job streams
// the base-run phases and reports BaseCacheHit=false; waiters pick the
// outcome up from the cache (BaseCacheHit=true). If the leader fails or
// its entry is evicted before a waiter wakes, the waiter retries and may
// become the new leader. With base caching disabled every job synthesizes
// its own base — there is nowhere to share the result through.
func (q *Queue) resolveBase(job *Job, ctx context.Context, baseReq *Request, baseKey string) (*core.Outcome, bool, error) {
	for {
		if q.bases != nil {
			if prev, ok := q.bases.Get(baseKey); ok {
				return prev, true, nil
			}
		}
		var ch chan struct{}
		leader := q.bases == nil // no cache: coalescing cannot share anything
		if !leader {
			q.baseMu.Lock()
			ch = q.baseInflight[baseKey]
			if ch == nil {
				ch = make(chan struct{})
				q.baseInflight[baseKey] = ch
				leader = true
			}
			q.baseMu.Unlock()
		}
		if !leader {
			select {
			case <-ch:
				continue // leader finished: re-check the cache
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
		}
		// The inflight entry MUST be cleared even if the base synthesis
		// panics (e.g. an injected fault): a stranded entry would park every
		// later delta against this base forever.
		prev, err := func() (*core.Outcome, error) {
			defer func() {
				if ch != nil {
					q.baseMu.Lock()
					delete(q.baseInflight, baseKey)
					q.baseMu.Unlock()
					close(ch)
				}
			}()
			return q.synthesizeBase(job, ctx, baseReq, baseKey)
		}()
		return prev, false, err
	}
}

// synthesizeBase runs the base synthesis of an eco job with retained state
// and populates both caches: the base-outcome LRU (for later deltas) and
// the ordinary result cache under the base's own key (a later plain
// /synthesize of the base is a hit).
func (q *Queue) synthesizeBase(job *Job, ctx context.Context, baseReq *Request, baseKey string) (*core.Outcome, error) {
	rv, err := baseReq.resolve(KindSynthesize)
	if err != nil {
		return nil, err
	}
	opt := rv.opt
	opt.Workers = q.workersFor(len(rv.sinks))
	opt.Progress = job.progress
	opt.Faults = q.cfg.Faults
	opt.RetainECO = true
	if q.cluster != nil {
		opt.RegionExec = q.cluster.execFor(baseReq.Tech, rv.tc, opt)
	}
	prev, err := core.SynthesizeContext(ctx, rv.root, rv.sinks, rv.tc, opt)
	if err != nil {
		return nil, err
	}
	if q.bases != nil {
		q.bases.Put(baseKey, prev)
		q.persistBase(baseKey, prev)
	}
	// The base result cached under the base's own key carries the phases
	// traced so far — exactly the base-run phases, since the ECO splice has
	// not started yet.
	baseRes := resultFromOutcome(KindSynthesize, job.design, len(rv.sinks), prev)
	baseRes.Phases = job.trace.Totals()
	if q.cache.Put(baseKey, baseRes) {
		q.persistResult(baseKey, baseRes)
	}
	return prev, nil
}

func resultFromOutcome(kind, design string, sinks int, o *core.Outcome) *Result {
	build := obs.Build()
	r := &Result{
		Kind: kind, Design: design, Sinks: sinks,
		Version: build.Version, Revision: build.Revision,
		Metrics: o.Metrics,
		Corners: o.Corners,
		ECO:     o.ECO,
		DP:      &DPStats{Nodes: o.DP.Nodes, Solutions: o.DP.Solutions},
		RouteMS: ms(o.RouteTime), InsertMS: ms(o.InsertTime),
		RefineMS: ms(o.RefineTime), CornersMS: ms(o.CornersTime),
		ECOMS: ms(o.ECOTime), TotalMS: ms(o.TotalTime),
	}
	if o.Refine != nil {
		r.Refine = &RefineStats{
			Triggered: o.Refine.Triggered, Inserted: o.Refine.Inserted,
			Attempted:    o.Refine.Attempted,
			SkewBeforePS: o.Refine.Before.Skew, SkewAfterPS: o.Refine.After.Skew,
		}
	}
	return r
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
