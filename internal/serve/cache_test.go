package serve

import (
	"context"
	"math"
	"testing"

	"dscts/internal/eval"
)

// TestLRUEdges pins the generic LRU's less-travelled operations: Remove,
// Peek and the eviction bookkeeping around them.
func TestLRUEdges(t *testing.T) {
	l := newLRU[int](2, 128)
	l.Put("a", 1)
	l.Put("b", 2)

	// Peek reads without touching recency or counters.
	if v, ok := l.Peek("a"); !ok || v != 1 {
		t.Fatalf("Peek(a) = %d, %v", v, ok)
	}
	if st := l.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Errorf("Peek moved the counters: %+v", st)
	}
	// "a" is still the LRU victim despite the Peek: the next Put evicts it.
	l.Put("c", 3)
	if _, ok := l.Peek("a"); ok {
		t.Error("Peek refreshed recency: a survived the eviction")
	}
	if _, ok := l.Peek("b"); !ok {
		t.Error("b evicted out of order")
	}

	// Remove drops a present key (counted as an eviction) and reports an
	// absent one without counting anything.
	if !l.Remove("b") {
		t.Error("Remove(b) = false with b present")
	}
	if l.Remove("b") || l.Remove("ghost") {
		t.Error("Remove of an absent key reported true")
	}
	st := l.Stats()
	if st.Entries != 1 || st.Evictions != 2 {
		t.Errorf("stats %+v, want 1 entry and 2 evictions (capacity + Remove)", st)
	}

	// A Get after Remove is a clean miss.
	if _, ok := l.Get("b"); ok {
		t.Error("removed key still readable")
	}
	if st := l.Stats(); st.Misses != 1 {
		t.Errorf("misses = %d, want 1", st.Misses)
	}

	// Re-putting an existing key refreshes value and recency, not size.
	l.Put("c", 30)
	if v, _ := l.Get("c"); v != 30 {
		t.Errorf("refreshed value = %d, want 30", v)
	}
	if st := l.Stats(); st.Entries != 1 {
		t.Errorf("entries = %d after refreshing the only key, want 1", st.Entries)
	}
}

// TestLRUGetCheckedConsistency: a failing verify is one atomic
// corruption+eviction+miss, and the entry is gone afterwards.
func TestLRUGetCheckedConsistency(t *testing.T) {
	l := newLRU[int](4, 128)
	l.Put("k", 7)
	if _, ok := l.GetChecked("k", func(int) bool { return false }); ok {
		t.Fatal("failing verify still returned the entry")
	}
	st := l.Stats()
	if st.Corruptions != 1 || st.Evictions != 1 || st.Misses != 1 || st.Hits != 0 {
		t.Errorf("counters %+v, want corruption=eviction=miss=1 from one lookup", st)
	}
	if _, ok := l.Peek("k"); ok {
		t.Error("corrupt entry still cached")
	}
	// An absent key is a plain miss, verify never called.
	if _, ok := l.GetChecked("ghost", func(int) bool { t.Error("verify called for absent key"); return true }); ok {
		t.Fatal("absent key returned")
	}
	// A passing verify is a plain hit.
	l.Put("k2", 8)
	if v, ok := l.GetChecked("k2", func(v int) bool { return v == 8 }); !ok || v != 8 {
		t.Errorf("passing verify: %d, %v", v, ok)
	}
}

// TestEncodeDropNotCached: a result whose canonical encoding fails (NaN is
// unrepresentable in JSON) is refused by the cache — Put returns false, the
// drop is counted, and no unverifiable entry exists to serve.
func TestEncodeDropNotCached(t *testing.T) {
	c := newCache(8)
	bad := &Result{Kind: KindSynthesize, Design: "C1", Metrics: &eval.Metrics{Latency: math.NaN()}}
	if c.Put("k", bad) {
		t.Fatal("cache accepted an unencodable result")
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("unencodable result served back")
	}
	st := c.Stats()
	if st.EncodeDrops != 1 {
		t.Errorf("encode_drops = %d, want 1", st.EncodeDrops)
	}
	if st.Entries != 0 || st.Corruptions != 0 {
		t.Errorf("stats %+v, want no entry and no corruption from a refused Put", st)
	}
	// A well-formed result on the same key still works.
	good := &Result{Kind: KindSynthesize, Design: "C1", Metrics: &eval.Metrics{Latency: 1}}
	if !c.Put("k", good) {
		t.Fatal("cache refused a well-formed result")
	}
	if _, ok := c.Get("k"); !ok {
		t.Fatal("well-formed result not served")
	}
}

// TestIdempotencyRingFallthrough: an idempotency key that outlives its job's
// retention-ring record starts a FRESH job instead of replaying a dangling
// ID — retries stay safe, they just lose dedup once the record is gone.
func TestIdempotencyRingFallthrough(t *testing.T) {
	s, client := newTestServer(t, Config{
		MaxRunning: 1, MaxQueued: 4, Workers: 1,
		RetainJobs: 1, // the next finished job evicts the previous record
	})
	ctx := context.Background()

	first, err := client.Synthesize(ctx, &Request{Design: "C1", IdempotencyKey: "k"})
	if err != nil {
		t.Fatal(err)
	}
	// An unrelated job pushes the keyed job out of the one-slot ring.
	if _, err := client.Synthesize(ctx, &Request{Design: "C2"}); err != nil {
		t.Fatal(err)
	}

	retry, err := client.Synthesize(ctx, &Request{Design: "C1", IdempotencyKey: "k"})
	if err != nil {
		t.Fatalf("retry after ring eviction: %v", err)
	}
	if retry.ID == first.ID {
		t.Error("retry returned the forgotten job's ID")
	}
	if retry.State != StateDone || !retry.CacheHit {
		t.Errorf("retry ended %s (hit %v); the fresh job should hit the result cache", retry.State, retry.CacheHit)
	}
	if retry.Result.Metrics.Latency != first.Result.Metrics.Latency {
		t.Error("retry result differs from the original")
	}

	st := s.Queue().Stats()
	if st.Jobs.Deduped != 0 {
		t.Errorf("deduped = %d, want 0 (the record was gone; nothing was deduplicated)", st.Jobs.Deduped)
	}
	if st.Jobs.Submitted != 3 {
		t.Errorf("submitted = %d, want 3", st.Jobs.Submitted)
	}
}
