package serve

import (
	"context"
	"sync"
	"testing"

	"dscts/internal/core"
)

// directECO computes the reference result for an eco request: resolve the
// base (request minus delta), synthesize it with retained state, apply the
// delta incrementally.
func directECO(t *testing.T, req *Request) *core.Outcome {
	t.Helper()
	base := *req
	base.Delta = nil
	rv, err := base.resolve(KindSynthesize)
	if err != nil {
		t.Fatal(err)
	}
	opt := rv.opt
	opt.RetainECO = true
	prev, err := core.Synthesize(rv.root, rv.sinks, rv.tc, opt)
	if err != nil {
		t.Fatal(err)
	}
	d, err := req.Delta.toDelta()
	if err != nil {
		t.Fatal(err)
	}
	out, err := core.SynthesizeECO(prev, d, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func ecoRequest(design string, moveSink int) *Request {
	return &Request{
		Design: design, Seed: 1,
		Delta: &DeltaSpec{
			Move:   []MoveSpec{{Sink: moveSink, X: 150, Y: 150}},
			Remove: []int{moveSink + 1},
			Add:    []XY{{X: 140, Y: 145}},
		},
	}
}

// TestECOJobEndToEnd: POST /eco resolves its base (synthesizing it on the
// first miss), returns metrics bit-identical to the direct library path,
// and reuses both the base cache and the result cache on repeats.
func TestECOJobEndToEnd(t *testing.T) {
	s, client := newTestServer(t, Config{MaxRunning: 2, MaxQueued: 8})
	req := ecoRequest("C4", 10)

	info, err := client.ECO(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StateDone {
		t.Fatalf("job ended %s (%s)", info.State, info.Error)
	}
	res := info.Result
	if res.Kind != KindECO || res.ECO == nil {
		t.Fatalf("unexpected result shape: kind %q, eco %+v", res.Kind, res.ECO)
	}
	if res.BaseCacheHit {
		t.Fatal("first eco job cannot hit the base cache")
	}
	if res.ECO.DirtyScopes == 0 || res.ECO.TotalScopes == 0 {
		t.Fatalf("eco stats empty: %+v", res.ECO)
	}
	if res.Sinks != 1056 { // 1056 - 1 removed + 1 added
		t.Fatalf("post-delta sink count %d", res.Sinks)
	}

	want := directECO(t, req)
	if res.Metrics.Latency != want.Metrics.Latency || res.Metrics.Skew != want.Metrics.Skew ||
		res.Metrics.Buffers != want.Metrics.Buffers || res.Metrics.WL != want.Metrics.WL {
		t.Fatalf("served eco differs from direct run:\nserve  %+v\ndirect %+v", res.Metrics, want.Metrics)
	}

	// The base synthesis was cached under the base's own key: a plain
	// /synthesize of the base is a cache hit now.
	base := *req
	base.Delta = nil
	binfo, err := client.Synthesize(context.Background(), &base)
	if err != nil {
		t.Fatal(err)
	}
	if !binfo.CacheHit {
		t.Fatal("base synthesis was not cached under the base key")
	}

	// Identical eco request: result cache hit, born done.
	again, err := client.ECO(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Fatal("repeated eco request missed the result cache")
	}

	// A different delta against the same base: base cache hit this time.
	other := ecoRequest("C4", 20)
	oinfo, err := client.ECO(context.Background(), other)
	if err != nil {
		t.Fatal(err)
	}
	if !oinfo.Result.BaseCacheHit {
		t.Fatal("second delta on the same base missed the base cache")
	}
	st := s.Queue().Stats()
	if st.ECOBases.Entries == 0 || st.ECOBases.Hits == 0 {
		t.Fatalf("base cache stats: %+v", st.ECOBases)
	}
}

// TestECOBadRequests: malformed eco traffic maps to 400s, and deltas are
// rejected outside /eco.
func TestECOBadRequests(t *testing.T) {
	_, client := newTestServer(t, Config{MaxRunning: 1, MaxQueued: 4})
	cases := []struct {
		name string
		call func() error
	}{
		{"delta on /synthesize", func() error {
			_, err := client.Synthesize(context.Background(), ecoRequest("C4", 1))
			return err
		}},
		{"eco without delta", func() error {
			_, err := client.ECO(context.Background(), &Request{Design: "C4"})
			return err
		}},
		{"remove out of range", func() error {
			_, err := client.ECO(context.Background(), &Request{Design: "C4",
				Delta: &DeltaSpec{Remove: []int{1056}}})
			return err
		}},
		{"move of removed sink", func() error {
			_, err := client.ECO(context.Background(), &Request{Design: "C4",
				Delta: &DeltaSpec{Remove: []int{5}, Move: []MoveSpec{{Sink: 5, X: 1, Y: 1}}}})
			return err
		}},
		{"unknown delta corner", func() error {
			_, err := client.ECO(context.Background(), &Request{Design: "C4",
				Delta: &DeltaSpec{Corners: []string{"wat"}}})
			return err
		}},
	}
	for _, tc := range cases {
		err := tc.call()
		if err == nil {
			t.Errorf("%s: expected an error", tc.name)
			continue
		}
		var api *apiError
		if !asAPIError(err, &api) || api.Status != 400 {
			t.Errorf("%s: got %v, want HTTP 400", tc.name, err)
		}
	}
}

func asAPIError(err error, out **apiError) bool {
	if e, ok := err.(*apiError); ok {
		*out = e
		return true
	}
	return false
}

// TestECOConcurrentJobs runs distinct deltas against one shared base
// concurrently (exercising the base cache under contention; run under
// -race by `make race`) and checks every result against the direct path.
func TestECOConcurrentJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrent end-to-end run")
	}
	_, client := newTestServer(t, Config{MaxRunning: 4, MaxQueued: 16})
	const n = 6
	infos := make([]*JobInfo, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			infos[i], errs[i] = client.ECO(context.Background(), ecoRequest("C4", 30+7*i))
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("job %d: %v", i, errs[i])
		}
		if infos[i].State != StateDone {
			t.Fatalf("job %d ended %s (%s)", i, infos[i].State, infos[i].Error)
		}
		want := directECO(t, ecoRequest("C4", 30+7*i))
		got := infos[i].Result.Metrics
		if got.Latency != want.Metrics.Latency || got.Skew != want.Metrics.Skew {
			t.Fatalf("job %d diverged from direct run: %+v vs %+v", i, got, want.Metrics)
		}
	}
}

// TestECOBaseSingleFlight: N concurrent deltas against one COLD base must
// synthesize the base exactly once — one leader (BaseCacheHit=false), every
// other job waits and takes the cached outcome (BaseCacheHit=true).
func TestECOBaseSingleFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrent end-to-end run")
	}
	_, client := newTestServer(t, Config{MaxRunning: 6, MaxQueued: 16})
	const n = 6
	infos := make([]*JobInfo, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			infos[i], errs[i] = client.ECO(context.Background(), ecoRequest("C5", 11*i))
		}(i)
	}
	wg.Wait()
	leaders := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("job %d: %v", i, errs[i])
		}
		if infos[i].State != StateDone {
			t.Fatalf("job %d ended %s (%s)", i, infos[i].State, infos[i].Error)
		}
		if !infos[i].Result.BaseCacheHit {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d jobs synthesized the base, want exactly 1 (single-flight)", leaders)
	}
}

// TestECOStreamPhases: the NDJSON stream of an eco job carries the eco
// phase events and ends with a result-bearing terminal event.
func TestECOStreamPhases(t *testing.T) {
	_, client := newTestServer(t, Config{MaxRunning: 1, MaxQueued: 4})
	seen := map[string]bool{}
	last, err := client.Stream(context.Background(), KindECO, ecoRequest("C4", 40), func(ev Event) {
		if ev.Event == "phase" {
			seen[ev.Phase] = true
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if last.Event != string(StateDone) || last.Result == nil {
		t.Fatalf("terminal event %+v", last)
	}
	if !seen[string(core.PhaseECO)] {
		t.Fatalf("no eco phase streamed; saw %v", seen)
	}
	// The base synthesis streamed its phases through the same job.
	if !seen[string(core.PhaseRoute)] {
		t.Fatalf("base synthesis phases missing; saw %v", seen)
	}
}

// TestECODeltaCornersReplace: a corners-only delta re-runs sign-off on the
// retained base without dirtying any scope.
func TestECODeltaCornersReplace(t *testing.T) {
	_, client := newTestServer(t, Config{MaxRunning: 1, MaxQueued: 4})
	req := &Request{Design: "C4", Seed: 1, Delta: &DeltaSpec{Corners: []string{"slow", "fast"}}}
	info, err := client.ECO(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	res := info.Result
	if res.Corners == nil || len(res.Corners.Results) != 2 {
		t.Fatalf("corner payload: %+v", res.Corners)
	}
	if res.ECO.DirtyScopes != 0 {
		t.Fatalf("corners-only delta dirtied %d scopes", res.ECO.DirtyScopes)
	}
	for i, name := range []string{"slow", "fast"} {
		if res.Corners.Results[i].Corner.Name != name {
			t.Fatalf("corner %d is %q", i, res.Corners.Results[i].Corner.Name)
		}
	}
}
