package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"dscts/internal/fault"
)

// mustFaults parses a chaos spec or fails the test.
func mustFaults(t *testing.T, spec string, seed int64) *fault.Registry {
	t.Helper()
	reg, err := fault.Parse(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// awaitTerminal polls a job until it reaches a terminal state.
func awaitTerminal(t *testing.T, c *Client, id string, within time.Duration) *JobInfo {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		info, err := c.Job(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if info.State.terminal() {
			return info
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, info.State, within)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPanicIsolation: a panic inside a job body becomes a structured 500 on
// that job only — the daemon keeps serving, the worker is reused, and the
// panic is retained (value + stack) in /stats.
func TestPanicIsolation(t *testing.T) {
	s, client := newTestServer(t, Config{
		MaxRunning: 1, MaxQueued: 4, Workers: 1,
		Faults: mustFaults(t, "panic@serve.job:once", 1),
	})
	ctx := context.Background()

	_, err := client.Synthesize(ctx, &Request{Design: "C1"})
	var apiErr *apiError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusInternalServerError {
		t.Fatalf("panicked sync job returned %v, want HTTP 500", err)
	}
	if !strings.Contains(apiErr.Msg, "panicked") {
		t.Errorf("500 body %q does not say the job panicked", apiErr.Msg)
	}

	// The same worker serves the next request normally.
	info, err := client.Synthesize(ctx, &Request{Design: "C1"})
	if err != nil {
		t.Fatalf("request after a panic failed: %v", err)
	}
	if info.State != StateDone || info.Result == nil {
		t.Fatalf("request after a panic ended %s", info.State)
	}
	if err := client.Health(ctx); err != nil {
		t.Errorf("daemon unhealthy after a recovered panic: %v", err)
	}

	st := s.Queue().Stats()
	if st.Jobs.Panics != 1 || st.Jobs.Failed != 1 {
		t.Errorf("stats: panics %d failed %d, want 1 and 1", st.Jobs.Panics, st.Jobs.Failed)
	}
	if len(st.LastPanics) != 1 {
		t.Fatalf("stats retained %d panics, want 1", len(st.LastPanics))
	}
	rec := st.LastPanics[0]
	if rec.Stack == "" || !strings.Contains(rec.Value, "injected panic") {
		t.Errorf("panic record missing stack or value: %+v", rec)
	}
	if st.Faults["panic@serve.job"] != 1 {
		t.Errorf("fault counters = %v, want panic@serve.job: 1", st.Faults)
	}
}

// TestInjectedErrorIsStructured: a scripted mid-flow error fails only its own
// job, with the injection visible in the job's error string (HTTP 200: the
// request itself was handled fine).
func TestInjectedErrorIsStructured(t *testing.T) {
	_, client := newTestServer(t, Config{
		MaxRunning: 1, MaxQueued: 4, Workers: 1,
		Faults: mustFaults(t, "error@core.route:once", 1),
	})
	info, err := client.Synthesize(context.Background(), &Request{Design: "C1"})
	if err != nil {
		t.Fatalf("sync submit: %v", err)
	}
	if info.State != StateFailed {
		t.Fatalf("job ended %s, want failed", info.State)
	}
	if !strings.Contains(info.Error, "injected fault") || !strings.Contains(info.Error, "core.route") {
		t.Errorf("failure %q does not identify the injected fault", info.Error)
	}
}

// TestJobDeadline: a job past its wall-clock deadline fails with TimedOut
// set, sync mode maps it to 504, and the worker is immediately reusable.
func TestJobDeadline(t *testing.T) {
	s, client := newTestServer(t, Config{
		MaxRunning: 1, MaxQueued: 4, Workers: 1,
		// Two one-shot delays (context-honoring) stall the first two jobs
		// past their request deadlines; the third job runs clean.
		Faults: mustFaults(t, "delay@core.insert:nth=1:30s;delay@core.insert:nth=2:30s", 1),
	})
	ctx := context.Background()

	info, err := client.SubmitAsync(ctx, KindSynthesize, &Request{Design: "C1", TimeoutMS: 100})
	if err != nil {
		t.Fatal(err)
	}
	final := awaitTerminal(t, client, info.ID, 10*time.Second)
	if final.State != StateFailed || !final.TimedOut {
		t.Fatalf("deadline job ended %s (timed_out=%v), want failed+timed_out", final.State, final.TimedOut)
	}
	if !strings.Contains(final.Error, "deadline exceeded") {
		t.Errorf("deadline failure %q does not say so", final.Error)
	}

	_, err = client.Synthesize(ctx, &Request{Design: "C1", TimeoutMS: 100})
	var apiErr *apiError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusGatewayTimeout {
		t.Fatalf("sync deadline job returned %v, want HTTP 504", err)
	}

	// The worker that hosted both timed-out jobs serves the next request.
	done, err := client.Synthesize(ctx, &Request{Design: "C1"})
	if err != nil {
		t.Fatalf("request after timeouts: %v", err)
	}
	if done.State != StateDone {
		t.Fatalf("request after timeouts ended %s", done.State)
	}
	if st := s.Queue().Stats(); st.Jobs.Timeouts != 2 {
		t.Errorf("stats timeouts = %d, want 2", st.Jobs.Timeouts)
	}
}

// TestWatchdogReclaimsStuckWorker: a body that IGNORES cancellation (an
// injected hang) is force-failed by the watchdog after the grace period, its
// runner serves the next job while the stuck goroutine drains, and the gauge
// of abandoned workers returns to zero once it does.
func TestWatchdogReclaimsStuckWorker(t *testing.T) {
	before := runtime.NumGoroutine()

	s := NewServer(Config{
		MaxRunning: 1, MaxQueued: 4, Workers: 1,
		WatchdogGrace: 100 * time.Millisecond,
		Faults:        mustFaults(t, "hang@serve.job:once:1500ms", 1),
	})
	ts := httptest.NewServer(s.Handler())
	client := NewClient(ts.URL)
	ctx := context.Background()

	// The deadline rides on the request so only the hung job carries it.
	info, err := client.SubmitAsync(ctx, KindSynthesize, &Request{Design: "C1", TimeoutMS: 100})
	if err != nil {
		t.Fatal(err)
	}
	final := awaitTerminal(t, client, info.ID, 5*time.Second)
	if final.State != StateFailed || !final.TimedOut {
		t.Fatalf("hung job ended %s (timed_out=%v), want failed+timed_out", final.State, final.TimedOut)
	}
	if !strings.Contains(final.Error, "watchdog") {
		t.Errorf("watchdog kill error %q does not say so", final.Error)
	}

	// The hang lasts 1.5s but the kill lands around 200ms, so right now the
	// body is still detached from the pool.
	st := s.Queue().Stats()
	if st.Jobs.WatchdogKills != 1 {
		t.Errorf("watchdog kills = %d, want 1", st.Jobs.WatchdogKills)
	}
	if st.Jobs.AbandonedWorkers != 1 {
		t.Errorf("abandoned workers = %d, want 1 while the body hangs", st.Jobs.AbandonedWorkers)
	}

	// The freed runner serves the next job well before the hang drains.
	done, err := client.Synthesize(ctx, &Request{Design: "C1"})
	if err != nil {
		t.Fatalf("request while a body hangs: %v", err)
	}
	if done.State != StateDone {
		t.Fatalf("request while a body hangs ended %s", done.State)
	}

	// The stuck body eventually returns and is reabsorbed.
	deadline := time.Now().Add(5 * time.Second)
	for s.Queue().Stats().Jobs.AbandonedWorkers != 0 {
		if time.Now().After(deadline) {
			t.Fatal("abandoned worker never drained")
		}
		time.Sleep(20 * time.Millisecond)
	}

	ts.Close()
	s.Close()
	deadline = time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutines leaked: %d before, %d after close", before, n)
	}
}

// TestIdempotentSubmission: resubmitting an idempotency key — sequentially or
// from concurrent retries — returns the ORIGINAL job, and the header spelling
// aliases the body field.
func TestIdempotentSubmission(t *testing.T) {
	s, client := newTestServer(t, Config{
		MaxRunning: 1, MaxQueued: 8, Workers: 1,
		// Hold the first job in flight (context-honoring, cancelled at close)
		// so dedup is observable against a live job.
		Faults: mustFaults(t, "delay@serve.job:every=1:30s", 1),
	})
	ctx := context.Background()

	first, err := client.SubmitAsync(ctx, KindSynthesize, &Request{Design: "C1", IdempotencyKey: "k1"})
	if err != nil {
		t.Fatal(err)
	}
	const retries = 4
	ids := make([]string, retries)
	var wg sync.WaitGroup
	for i := 0; i < retries; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			info, err := client.SubmitAsync(ctx, KindSynthesize, &Request{Design: "C1", IdempotencyKey: "k1"})
			if err == nil {
				ids[i] = info.ID
			}
		}(i)
	}
	wg.Wait()
	for i, id := range ids {
		if id != first.ID {
			t.Errorf("retry %d got job %q, want original %q", i, id, first.ID)
		}
	}

	// The Idempotency-Key header is an alias for the body field.
	body, _ := json.Marshal(&Request{Design: "C1"})
	hreq, err := http.NewRequest(http.MethodPost, client.Base+"/synthesize?mode=async", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("Idempotency-Key", "k1")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	var viaHeader JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&viaHeader); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if viaHeader.ID != first.ID {
		t.Errorf("header-keyed submit got job %q, want original %q", viaHeader.ID, first.ID)
	}

	// A different key is a different job.
	other, err := client.SubmitAsync(ctx, KindSynthesize, &Request{Design: "C1", IdempotencyKey: "k2"})
	if err != nil {
		t.Fatal(err)
	}
	if other.ID == first.ID {
		t.Error("distinct keys shared a job")
	}

	st := s.Queue().Stats()
	if st.Jobs.Deduped != retries+1 {
		t.Errorf("deduped = %d, want %d", st.Jobs.Deduped, retries+1)
	}
	if st.Jobs.Submitted != 2 {
		t.Errorf("submitted = %d, want 2 (k1 and k2 only)", st.Jobs.Submitted)
	}
}

// TestCorruptedCacheRecompute: a cache entry whose checksum fails is evicted
// and recomputed — the client gets a correct fresh result, never garbage, and
// the corruption is counted.
func TestCorruptedCacheRecompute(t *testing.T) {
	s, client := newTestServer(t, Config{
		MaxRunning: 1, MaxQueued: 4, Workers: 1,
		// The second submission's cache probe hits a corrupted entry.
		Faults: mustFaults(t, "corrupt@serve.cache:nth=2", 1),
	})
	ctx := context.Background()
	req := &Request{Design: "C1"}

	first, err := client.Synthesize(ctx, req)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	if first.State != StateDone {
		t.Fatalf("first run ended %s", first.State)
	}

	second, err := client.Synthesize(ctx, req)
	if err != nil {
		t.Fatalf("recompute after corruption: %v", err)
	}
	if second.State != StateDone {
		t.Fatalf("recompute after corruption ended %s", second.State)
	}
	if second.CacheHit {
		t.Error("corrupted entry was served as a cache hit")
	}
	if second.Result.Metrics.Skew != first.Result.Metrics.Skew ||
		second.Result.Metrics.Latency != first.Result.Metrics.Latency {
		t.Error("recomputed result differs from the original")
	}

	// The recompute restored a good entry: the third identical request hits.
	third, err := client.Synthesize(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !third.CacheHit {
		t.Error("cache entry not restored after recompute")
	}

	st := s.Queue().Stats()
	if st.Cache.Corruptions != 1 {
		t.Errorf("corruptions = %d, want 1", st.Cache.Corruptions)
	}
}

// TestClientRetryBackoff: the client retries keyed submissions through
// transient 429s (honoring Retry-After) and never retries an unkeyed POST.
func TestClientRetryBackoff(t *testing.T) {
	var mu sync.Mutex
	attempts := 0
	fail := 2
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		attempts++
		n := attempts
		mu.Unlock()
		if n <= fail {
			w.Header().Set("Retry-After", "0")
			writeErr(w, http.StatusTooManyRequests, ErrQueueFull)
			return
		}
		writeJSON(w, http.StatusAccepted, JobInfo{ID: "job-000001", State: StateQueued})
	})
	ts := httptest.NewServer(h)
	defer ts.Close()
	client := &Client{Base: ts.URL, RetryBackoff: time.Millisecond}
	ctx := context.Background()

	info, err := client.SubmitAsync(ctx, KindSynthesize, &Request{Design: "C1", IdempotencyKey: "k"})
	if err != nil {
		t.Fatalf("keyed submit did not survive transient 429s: %v", err)
	}
	if info.ID != "job-000001" {
		t.Fatalf("got job %q", info.ID)
	}
	mu.Lock()
	got := attempts
	mu.Unlock()
	if got != fail+1 {
		t.Errorf("keyed submit took %d attempts, want %d", got, fail+1)
	}

	mu.Lock()
	attempts = 0
	mu.Unlock()
	_, err = client.SubmitAsync(ctx, KindSynthesize, &Request{Design: "C1"})
	var apiErr *apiError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("unkeyed submit returned %v, want immediate 429", err)
	}
	mu.Lock()
	got = attempts
	mu.Unlock()
	if got != 1 {
		t.Errorf("unkeyed POST was retried: %d attempts", got)
	}
}

// TestRetryDelay unit-tests the retry classifier and backoff math.
func TestRetryDelay(t *testing.T) {
	base := time.Millisecond

	// 429 with a Retry-After hint: retriable, and the hint floors the wait.
	wait, ok := retryDelay(&apiError{Status: 429, RetryAfter: 2 * time.Second}, 0, base)
	if !ok || wait < 2*time.Second {
		t.Errorf("429 with hint: wait %v retriable %v, want >= 2s", wait, ok)
	}
	if _, ok := retryDelay(&apiError{Status: 503}, 0, base); !ok {
		t.Error("503 not retriable")
	}
	if _, ok := retryDelay(&apiError{Status: 400}, 0, base); ok {
		t.Error("400 retriable")
	}
	if _, ok := retryDelay(&apiError{Status: 504}, 0, base); ok {
		t.Error("504 retriable (the job ran and timed out; repeating it is not transient recovery)")
	}

	// Transport errors are retriable unless the caller's context caused them.
	if _, ok := retryDelay(&url.Error{Op: "Post", URL: "x", Err: io.EOF}, 0, base); !ok {
		t.Error("connection error not retriable")
	}
	if _, ok := retryDelay(&url.Error{Op: "Post", URL: "x", Err: context.Canceled}, 0, base); ok {
		t.Error("context cancellation retried")
	}
	if _, ok := retryDelay(errors.New("other"), 0, base); ok {
		t.Error("arbitrary error retried")
	}

	// Exponential growth with jitter, capped.
	w0, _ := retryDelay(&apiError{Status: 503}, 0, 100*time.Millisecond)
	if w0 < 50*time.Millisecond || w0 > 150*time.Millisecond {
		t.Errorf("attempt 0 backoff %v outside 100ms±50%%", w0)
	}
	w20, _ := retryDelay(&apiError{Status: 503}, 20, 100*time.Millisecond)
	if w20 > maxRetryBackoff*3/2 {
		t.Errorf("attempt 20 backoff %v exceeds cap (with jitter) %v", w20, maxRetryBackoff*3/2)
	}
}

// TestEffectiveTimeout: the request can shorten the service deadline, never
// extend it, and a positive timeout_ms can never round down to "no deadline".
func TestEffectiveTimeout(t *testing.T) {
	cases := []struct {
		svc   time.Duration
		reqMS float64
		want  time.Duration
	}{
		{0, 0, 0},
		{0, 250, 250 * time.Millisecond},
		{time.Second, 0, time.Second},
		{time.Second, 250, 250 * time.Millisecond},
		{time.Second, 5000, time.Second}, // cannot extend
		// A sub-millisecond request deadline truncates to 0 ns without the
		// floor — which context.WithTimeout would treat as already-expired
		// and, worse, the pre-floor code treated as "no deadline at all",
		// silently disabling the service-wide JobTimeout the request asked
		// to SHORTEN. Asking for a deadline must always produce one.
		{0, 0.0001, time.Millisecond},
		{time.Second, 0.0001, time.Millisecond},
		{0, 0.5, time.Millisecond},
		{time.Millisecond / 2, 0.0001, time.Millisecond / 2}, // service deadline already tighter
	}
	for _, c := range cases {
		if got := effectiveTimeout(c.svc, c.reqMS); got != c.want {
			t.Errorf("effectiveTimeout(%v, %g) = %v, want %v", c.svc, c.reqMS, got, c.want)
		}
	}
}

// TestReadyz: ready → 200; saturated queue → 503 with Retry-After; draining
// → 503 with Retry-After.
func TestReadyz(t *testing.T) {
	s, client := newTestServer(t, Config{
		MaxRunning: 1, MaxQueued: 1, Workers: 1,
		// Hold jobs in flight so the queue can saturate.
		Faults: mustFaults(t, "delay@serve.job:every=1:30s", 1),
	})
	ctx := context.Background()

	if err := client.Ready(ctx); err != nil {
		t.Fatalf("idle server not ready: %v", err)
	}

	// Occupy the single runner, then fill the single queue slot.
	running, err := client.SubmitAsync(ctx, KindSynthesize, &Request{Design: "C1"})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		info, err := client.Job(ctx, running.ID)
		if err != nil {
			t.Fatal(err)
		}
		if info.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started running (state %s)", info.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := client.SubmitAsync(ctx, KindSynthesize, &Request{Design: "C2"}); err != nil {
		t.Fatal(err)
	}

	err = client.Ready(ctx)
	var apiErr *apiError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("saturated server readyz = %v, want 503", err)
	}
	if apiErr.RetryAfter < time.Second {
		t.Errorf("saturated readyz Retry-After = %v, want >= 1s", apiErr.RetryAfter)
	}

	resp, err := http.Get(client.Base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var status struct {
		Status string `json:"status"`
	}
	json.NewDecoder(resp.Body).Decode(&status)
	resp.Body.Close()
	if status.Status != "saturated" {
		t.Errorf("readyz status %q, want saturated", status.Status)
	}

	s.Drain()
	err = client.Ready(ctx)
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("draining server readyz = %v, want 503", err)
	}
	resp, err = http.Get(client.Base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&status)
	resp.Body.Close()
	if status.Status != "draining" {
		t.Errorf("readyz status %q, want draining", status.Status)
	}
}

// TestSchedulingKnobsOutsideKey: timeout_ms, idempotency_key and
// include_sink_delays never change the cache identity.
func TestSchedulingKnobsOutsideKey(t *testing.T) {
	plain := (&Request{Design: "C1"}).Key(KindSynthesize)
	knobbed := (&Request{
		Design: "C1", TimeoutMS: 5000, IdempotencyKey: "k", IncludeSinkDelays: true,
	}).Key(KindSynthesize)
	if plain != knobbed {
		t.Error("scheduling knobs changed the request key")
	}
	if other := (&Request{Design: "C1", Options: OptionsSpec{SkipRefine: true}}).Key(KindSynthesize); other == plain {
		t.Error("a result-affecting option did not change the request key")
	}
}
