package serve

// Cluster-mode tests: an in-process 3-node cluster over real listeners,
// pinning the tentpole guarantees — routed forwarding with exactly-one-
// owner caching, remote region dispatch and stealing that stay
// bit-identical to single-node runs, request-ID propagation across the
// forward hop, lease-token idempotency, and fallback-to-local when a node
// dies mid-cluster.

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"dscts/internal/clusterd"
	"dscts/internal/core"
)

// testClusterNode is one in-process cluster member.
type testClusterNode struct {
	id     string
	url    string
	srv    *Server
	hs     *http.Server
	client *Client
	killed bool
}

// kill closes the node abruptly: listener first (peers start seeing
// connection refused), then the server (cancelling in-flight jobs).
func (n *testClusterNode) kill() {
	if n.killed {
		return
	}
	n.killed = true
	n.hs.Close()
	n.srv.Close()
}

// newTestCluster boots n nodes on loopback listeners. Listeners come
// first so every node knows the full peer URL set before it starts.
// mutate, when non-nil, adjusts each node's Config before boot.
func newTestCluster(t *testing.T, n int, mutate func(i int, cfg *Config)) []*testClusterNode {
	t.Helper()
	lns := make([]net.Listener, n)
	peers := make([]clusterd.Peer, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		peers[i] = clusterd.Peer{
			ID:  fmt.Sprintf("n%d", i+1),
			URL: "http://" + ln.Addr().String(),
		}
	}
	nodes := make([]*testClusterNode, n)
	for i := range nodes {
		cfg := Config{
			MaxRunning: 4, MaxQueued: 32,
			Cluster: &ClusterConfig{
				NodeID: peers[i].ID, Peers: peers, Secret: "test-secret",
				ProbeInterval: 100 * time.Millisecond,
				ProbeTimeout:  time.Second,
				Cooldown:      200 * time.Millisecond,
				StealInterval: 10 * time.Millisecond,
				LeaseTimeout:  30 * time.Second,
			},
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		srv := NewServer(cfg)
		hs := &http.Server{Handler: srv.Handler()}
		node := &testClusterNode{
			id: peers[i].ID, url: peers[i].URL,
			srv: srv, hs: hs, client: NewClient(peers[i].URL),
		}
		go hs.Serve(lns[i])
		nodes[i] = node
	}
	t.Cleanup(func() {
		for _, node := range nodes {
			node.kill()
		}
	})
	return nodes
}

// ownerOf returns the index of the node owning req's cache key and the
// index of some other node.
func ownerOf(t *testing.T, nodes []*testClusterNode, req *Request, kind string) (owner, other int) {
	t.Helper()
	ring := nodes[0].srv.Queue().cluster.ring
	id := ring.Owner(req.Key(kind))
	owner = -1
	for i, n := range nodes {
		if n.id == id {
			owner = i
		} else {
			other = i
		}
	}
	if owner < 0 {
		t.Fatalf("ring owner %q not among nodes", id)
	}
	return owner, other
}

// TestClusterForwardedBitIdentical submits C1..C5 to a node that does NOT
// own their cache keys and checks each request was forwarded to its ring
// owner, answered with metrics bit-identical to a direct library run, and
// cached on exactly the owner (a repeat from a different non-owner is a
// cluster-wide cache hit).
func TestClusterForwardedBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node end-to-end run")
	}
	nodes := newTestCluster(t, 3, nil)
	for _, design := range []string{"C1", "C2", "C3", "C4", "C5"} {
		req := &Request{Design: design, IncludeSinkDelays: true}
		owner, other := ownerOf(t, nodes, req, KindSynthesize)
		before := nodes[other].srv.Queue().cluster.forwarded.Load()
		info, err := nodes[other].client.Synthesize(context.Background(), req)
		if err != nil {
			t.Fatalf("%s via %s: %v", design, nodes[other].id, err)
		}
		if info.State != StateDone {
			t.Fatalf("%s: state %s (%s)", design, info.State, info.Error)
		}
		requireSameMetrics(t, design+" via "+nodes[other].id, info.Result, req)
		if got := nodes[other].srv.Queue().cluster.forwarded.Load(); got != before+1 {
			t.Fatalf("%s: node %s forwarded %d→%d, want +1", design, nodes[other].id, before, got)
		}
		// The owner — and only the owner — holds the cached result.
		key := req.Key(KindSynthesize)
		for i, n := range nodes {
			if has := n.srv.Queue().cache.Has(key); has != (i == owner) {
				t.Fatalf("%s: node %s cache presence %v, want %v", design, n.id, has, i == owner)
			}
		}
		// A repeat through the third node (neither owner nor first
		// submitter) is answered from the owner's cache.
		third := 3 - owner - other
		repeat, err := nodes[third].client.Synthesize(context.Background(), req)
		if err != nil {
			t.Fatalf("%s repeat: %v", design, err)
		}
		if !repeat.CacheHit {
			t.Fatalf("%s: repeat via %s was not a cluster cache hit", design, nodes[third].id)
		}
	}
	// Counter consistency: forwards sent across the cluster equal forwards
	// received.
	var sent, recv int64
	for _, n := range nodes {
		cs := n.srv.Queue().Stats().Cluster
		sent += cs.Forwarded
		recv += cs.ForwardedIn
	}
	if sent == 0 || sent != recv {
		t.Fatalf("forwarded %d != forwarded_in %d", sent, recv)
	}
}

// TestClusterRemoteRegionDispatch runs a partitioned job on a node with no
// local board executors, so every region MUST execute remotely (dispatch
// or steal), and checks the stitched result is still bit-identical to a
// direct single-process run.
func TestClusterRemoteRegionDispatch(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node end-to-end run")
	}
	nodes := newTestCluster(t, 3, func(i int, cfg *Config) {
		if i == 0 {
			cfg.Cluster.LocalExecutors = -1 // n1 cannot run its own regions
		}
	})
	req := &Request{Design: "C4", IncludeSinkDelays: true,
		Options: OptionsSpec{PartitionMaxSinks: 300}}
	// Bypass routing: submit straight to n1's queue so the partitioned job
	// runs on the executor-less node regardless of ring ownership.
	job, err := nodes[0].srv.Queue().Submit(req, KindSynthesize)
	if err != nil {
		t.Fatal(err)
	}
	<-job.Done()
	info := job.Info()
	if info.State != StateDone {
		t.Fatalf("job state %s (%s)", info.State, info.Error)
	}
	requireSameMetrics(t, "partitioned via cluster", info.Result, req)
	c := nodes[0].srv.Queue().cluster
	remote := c.dispatched.Load() + c.stealsGiven.Load()
	if remote == 0 {
		t.Fatal("no region was dispatched or stolen despite zero local executors")
	}
	if c.localRegions.Load() != 0 {
		t.Fatalf("executor-less node ran %d regions locally", c.localRegions.Load())
	}
	var served, stolen int64
	for _, n := range nodes[1:] {
		cs := n.srv.Queue().Stats().Cluster
		served += cs.RegionsServed
		stolen += cs.RegionsStolen
	}
	if served != c.dispatched.Load() {
		t.Fatalf("peers served %d regions, dispatcher applied %d", served, c.dispatched.Load())
	}
	if stolen > c.stealsGiven.Load() {
		t.Fatalf("peers stole %d > leases given %d", stolen, c.stealsGiven.Load())
	}
}

// TestClusterForwardCarriesRequestID pins end-to-end request-ID
// propagation: a client-supplied X-Request-ID crosses the forward hop and
// is the ID the owning node's job records.
func TestClusterForwardCarriesRequestID(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node end-to-end run")
	}
	nodes := newTestCluster(t, 3, nil)
	req := &Request{Design: "C1"}
	owner, other := ownerOf(t, nodes, req, KindSynthesize)
	body, _ := json.Marshal(req)
	hreq, err := http.NewRequest(http.MethodPost,
		nodes[other].url+"/synthesize?mode=sync", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	const rid = "rid-cluster-e2e-42"
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("X-Request-ID", rid)
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != rid {
		t.Fatalf("response X-Request-ID %q, want %q", got, rid)
	}
	if got := resp.Header.Get("X-Dscts-Node"); got != nodes[owner].id {
		t.Fatalf("answered by %q, want owner %q", got, nodes[owner].id)
	}
	// The job exists on the owner and records the client's request ID.
	q := nodes[owner].srv.Queue()
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.jobs) != 1 {
		t.Fatalf("owner holds %d jobs, want 1", len(q.jobs))
	}
	for _, j := range q.jobs {
		if j.reqID != rid {
			t.Fatalf("owner job request ID %q, want %q", j.reqID, rid)
		}
	}
}

// TestClusterNodeKillFallback kills one node and checks requests owned by
// it still succeed from any survivor: the forward fails, the breaker
// records it, and the survivor serves the job locally.
func TestClusterNodeKillFallback(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node end-to-end run")
	}
	nodes := newTestCluster(t, 3, nil)
	// Find a request owned by node 0 so killing it exercises the fallback.
	var req *Request
	for seed := int64(1); seed < 100; seed++ {
		cand := &Request{Design: "C2", Seed: seed, IncludeSinkDelays: true}
		if owner, _ := ownerOf(t, nodes, cand, KindSynthesize); owner == 0 {
			req = cand
			break
		}
	}
	if req == nil {
		t.Fatal("no seed hashed to node n1")
	}
	nodes[0].kill()
	info, err := nodes[1].client.Synthesize(context.Background(), req)
	if err != nil {
		t.Fatalf("synthesize after node kill: %v", err)
	}
	if info.State != StateDone {
		t.Fatalf("state %s (%s)", info.State, info.Error)
	}
	requireSameMetrics(t, "fallback after kill", info.Result, req)
	cs := nodes[1].srv.Queue().Stats().Cluster
	if cs.ForwardFallback == 0 {
		t.Fatal("no forward fallback recorded after killing the owner")
	}
	// Once the breaker opens (or the prober marks the peer down), later
	// requests skip the doomed forward entirely and are still answered.
	for i := 0; i < 3; i++ {
		again, err := nodes[2].client.Synthesize(context.Background(), req)
		if err != nil {
			t.Fatalf("post-kill request %d: %v", i, err)
		}
		if again.State != StateDone {
			t.Fatalf("post-kill request %d: state %s", i, again.State)
		}
	}
}

// TestRegionBoardLeaseTokenSingleUse pins steal idempotency at the board
// level: a lease token applies exactly once, a reused token is rejected,
// and a reaped (expired) lease's late completion is rejected too — the
// region is re-offered and executes exactly once.
func TestRegionBoardLeaseTokenSingleUse(t *testing.T) {
	b := newRegionBoard(time.Minute)
	defer b.close()
	resCh := make(chan error, 1)
	go func() {
		_, err := b.run(context.Background(), regionTask{work: core.RegionWork{ID: 7}})
		resCh <- err
	}()
	// Wait for the entry to land on the board, then lease it.
	var tok string
	for i := 0; ; i++ {
		if e, tk := b.lease("thief"); e != nil {
			tok = tk
			break
		}
		if i > 1000 {
			t.Fatal("entry never appeared on the board")
		}
		time.Sleep(time.Millisecond)
	}
	out := &core.RegionOut{}
	if !b.completeLease(tok, out, nil) {
		t.Fatal("first completion of a live lease was rejected")
	}
	if b.completeLease(tok, out, nil) {
		t.Fatal("token reuse was accepted — double execution would apply twice")
	}
	if err := <-resCh; err != nil {
		t.Fatalf("board run: %v", err)
	}

	// Expired lease: the reaper re-offers the entry and invalidates the
	// token, so the slow thief's late completion must be rejected.
	go func() {
		_, err := b.run(context.Background(), regionTask{work: core.RegionWork{ID: 8}})
		resCh <- err
	}()
	for i := 0; ; i++ {
		if e, tk := b.lease("slow-thief"); e != nil {
			tok = tk
			break
		}
		if i > 1000 {
			t.Fatal("second entry never appeared")
		}
		time.Sleep(time.Millisecond)
	}
	b.reapLeases(time.Now().Add(2 * time.Minute))
	if b.completeLease(tok, out, nil) {
		t.Fatal("completion under a reaped lease token was accepted")
	}
	// The re-offered entry is claimable again and completes normally.
	e := b.next()
	if e == nil || e.task.work.ID != 8 {
		t.Fatalf("re-offered entry not claimable: %+v", e)
	}
	if !b.deliver(e, out, nil) {
		t.Fatal("delivery of the re-offered entry failed")
	}
	if err := <-resCh; err != nil {
		t.Fatalf("board run after reclaim: %v", err)
	}
}

// TestClusterSecretRejected pins the /internal/* authentication gate: a
// request without the shared secret is refused.
func TestClusterSecretRejected(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node end-to-end run")
	}
	nodes := newTestCluster(t, 3, nil)
	resp, err := http.Post(nodes[0].url+"/internal/steal", "application/octet-stream", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("unauthenticated /internal/steal: status %d, want 403", resp.StatusCode)
	}
}
