package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"dscts/internal/obs"
)

// Server is the HTTP face of the job queue.
//
//	POST /synthesize        run the full flow            (body: Request)
//	POST /dse               run a fanout-threshold sweep (body: Request)
//	POST /eco               incremental re-synthesis     (body: Request + delta)
//	GET  /jobs/{id}         job snapshot (with result when done)
//	POST /jobs/{id}/cancel  stop a queued or running job
//	GET  /healthz           liveness
//	GET  /readyz            readiness (503 while draining or saturated)
//	GET  /stats             queue + cache counters
//	GET  /version           build identity (module version, VCS revision)
//	GET  /metrics           Prometheus text exposition (when Config.Metrics set)
//
// POST endpoints take ?mode=sync (default), async or stream. Sync waits for
// the job and returns its final snapshot; the job is cancelled if the
// client disconnects. Async returns 202 with the queued job's snapshot;
// poll GET /jobs/{id}. Stream responds with NDJSON (application/x-ndjson):
// one Event per line — lifecycle transitions and per-phase progress — ending
// with the terminal event, which carries the result; disconnecting mid-
// stream cancels the job.
//
// Every response carries an X-Request-ID header (client-supplied value
// echoed, otherwise generated); error bodies repeat it as request_id, and
// the queue's job log lines carry it, so a client-reported failure leads
// straight to the matching server-side records.
type Server struct {
	queue *Queue
	mux   *http.ServeMux
	log   *slog.Logger
	hm    *httpMetrics
	// nextReq numbers generated request IDs.
	nextReq atomic.Int64
	// draining flips /readyz to 503 ahead of shutdown so load balancers
	// stop routing here before in-flight jobs are cancelled.
	draining atomic.Bool
}

// NewServer builds a Server with its own queue. Config.Metrics, when set,
// additionally serves GET /metrics; Config.Logger receives the HTTP access
// log at debug level alongside the queue's job log.
func NewServer(cfg Config) *Server {
	s := &Server{queue: NewQueue(cfg), mux: http.NewServeMux()}
	s.log = s.queue.log
	s.hm = newHTTPMetrics(cfg.Metrics)
	s.mux.HandleFunc("POST /synthesize", func(w http.ResponseWriter, r *http.Request) {
		s.submit(w, r, KindSynthesize)
	})
	s.mux.HandleFunc("POST /dse", func(w http.ResponseWriter, r *http.Request) {
		s.submit(w, r, KindDSE)
	})
	s.mux.HandleFunc("POST /eco", func(w http.ResponseWriter, r *http.Request) {
		s.submit(w, r, KindECO)
	})
	s.mux.HandleFunc("GET /jobs/{id}", s.job)
	s.mux.HandleFunc("POST /jobs/{id}/cancel", s.cancel)
	s.mux.HandleFunc("GET /healthz", s.healthz)
	s.mux.HandleFunc("GET /readyz", s.readyz)
	s.mux.HandleFunc("GET /stats", s.stats)
	s.mux.HandleFunc("GET /version", s.version)
	if c := s.queue.cluster; c != nil {
		// Cluster-internal peer API (gob over HTTP, shared-secret gated):
		// remote region execution and the work-stealing handshake.
		s.mux.HandleFunc("POST /internal/region", c.handleRegion)
		s.mux.HandleFunc("POST /internal/steal", c.handleSteal)
		s.mux.HandleFunc("POST /internal/steal/done", c.handleStealDone)
	}
	if cfg.Metrics != nil {
		reg := cfg.Metrics
		s.mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := reg.WritePrometheus(w); err != nil {
				s.log.Debug("metrics write failed", "error", err)
			}
		})
	}
	return s
}

// Handler returns the HTTP handler: the API mux behind the request-ID and
// instrumentation middleware.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = fmt.Sprintf("req-%08x", s.nextReq.Add(1))
			r.Header.Set("X-Request-ID", id)
		}
		w.Header().Set("X-Request-ID", id)
		if c := s.queue.cluster; c != nil {
			// Which node answered; a forwarded response's header (set by
			// the owner) is relayed as-is by the forwarding node instead.
			if w.Header().Get(headerNode) == "" {
				w.Header().Set(headerNode, c.self.ID)
			}
		}
		rec := &statusRecorder{ResponseWriter: w}
		s.mux.ServeHTTP(rec, r)
		code := rec.code
		if code == 0 {
			code = http.StatusOK
		}
		s.hm.observe(code, time.Since(t0))
		s.log.Debug("http request",
			"method", r.Method, "path", r.URL.Path, "status", code,
			"dur_ms", ms(time.Since(t0)), "request_id", id)
	})
}

// Queue exposes the underlying queue (stats, direct submission).
func (s *Server) Queue() *Queue { return s.queue }

// Drain marks the server not-ready (/readyz → 503) without stopping it:
// call it before the HTTP server's graceful shutdown so load balancers
// divert traffic while in-flight jobs finish.
func (s *Server) Drain() { s.draining.Store(true) }

// Close stops the queue (draining first); see Queue.Close.
func (s *Server) Close() {
	s.Drain()
	s.queue.Close()
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request, kind string) {
	var req Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeErr(w, r, http.StatusBadRequest, fmt.Errorf("invalid JSON body: %w", err))
		return
	}
	mode := r.URL.Query().Get("mode")
	if mode == "" {
		mode = "sync"
	}
	// The Idempotency-Key header is an alias for the request field; the
	// body field wins when both are set.
	if req.IdempotencyKey == "" {
		req.IdempotencyKey = r.Header.Get("Idempotency-Key")
	}
	// Likewise X-Tenant for the tenant field: proxies that authenticate
	// tenants stamp the header without touching the body.
	if req.Tenant == "" {
		req.Tenant = r.Header.Get("X-Tenant")
	}
	req.reqID = r.Header.Get("X-Request-ID")
	// Cluster routing: a sync request whose cache key hashes to a peer is
	// forwarded there (so repeated invocations hit exactly one node's
	// cache) unless we hold a local cached result or the owner is down —
	// a failed forward falls back to local execution below.
	if c := s.queue.cluster; c != nil {
		if r.Header.Get(headerForwarded) != "" {
			c.forwardedIn.Add(1)
		} else if owner, ok := c.shouldForward(r, mode, &req, kind); ok {
			if c.forward(w, r, owner, &req) {
				return
			}
		}
	}
	job, err := s.queue.Submit(&req, kind)
	if err != nil {
		var sz *SizeError
		switch {
		case errors.As(err, &sz):
			// 413 with the size estimate so clients can right-size or
			// partition the request.
			s.writeJSON(w, r, http.StatusRequestEntityTooLarge, map[string]any{
				"error":           err.Error(),
				"estimated_sinks": sz.EstimatedSinks,
				"max_sinks":       sz.MaxSinks,
				"request_id":      r.Header.Get("X-Request-ID"),
			})
		case errors.Is(err, ErrQueueFull):
			s.setRetryAfter(w)
			s.writeErr(w, r, http.StatusTooManyRequests, err)
		case errors.Is(err, ErrQuota):
			// Same 429 as a full queue, but scoped to the tenant: the
			// backlog hint still applies (their own jobs must finish).
			s.setRetryAfter(w)
			s.writeErr(w, r, http.StatusTooManyRequests, err)
		case errors.Is(err, ErrBadRequest):
			s.writeErr(w, r, http.StatusBadRequest, err)
		case errors.Is(err, ErrClosed):
			s.setRetryAfter(w)
			s.writeErr(w, r, http.StatusServiceUnavailable, err)
		default:
			s.writeErr(w, r, http.StatusInternalServerError, err)
		}
		return
	}
	switch mode {
	case "async":
		s.writeJSON(w, r, http.StatusAccepted, job.Info())
	case "stream":
		s.stream(w, r, job)
	case "sync":
		// Tie the job to the request: a disconnected client must not keep
		// burning workers.
		select {
		case <-job.Done():
			info := job.Info()
			s.writeJSON(w, r, terminalStatus(info), info)
		case <-r.Context().Done():
			job.Cancel()
			<-job.Done()
			s.writeErr(w, r, http.StatusRequestTimeout, fmt.Errorf("client went away; job %s cancelled", job.ID()))
		}
	default:
		s.writeErr(w, r, http.StatusBadRequest, fmt.Errorf("unknown mode %q (want sync, async or stream)", mode))
	}
}

// terminalStatus maps a finished job to the sync-mode HTTP status: 504 for
// deadline-exceeded, 500 for a recovered panic, 200 otherwise (including
// plain failures, whose structured error rides in the body — the request
// itself was handled fine).
func terminalStatus(info JobInfo) int {
	if info.State == StateFailed {
		switch {
		case info.TimedOut:
			return http.StatusGatewayTimeout
		case info.Panicked:
			return http.StatusInternalServerError
		}
	}
	return http.StatusOK
}

// setRetryAfter stamps the backlog-scaled retry hint on 429/503 responses.
func (s *Server) setRetryAfter(w http.ResponseWriter) {
	secs := int(s.queue.RetryAfter().Seconds())
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

// stream writes the job's event log as NDJSON until the terminal event.
func (s *Server) stream(w http.ResponseWriter, r *http.Request, job *Job) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	err := job.Follow(r.Context(), func(ev Event) error {
		if err := enc.Encode(ev); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
	if err != nil {
		// Client went away (or the write failed, same thing): stop the job.
		job.Cancel()
	}
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) {
	job, err := s.queue.Job(r.PathValue("id"))
	if err != nil {
		s.writeErr(w, r, http.StatusNotFound, err)
		return
	}
	if r.URL.Query().Get("mode") == "stream" {
		s.stream(w, r, job)
		return
	}
	s.writeJSON(w, r, http.StatusOK, job.Info())
}

func (s *Server) cancel(w http.ResponseWriter, r *http.Request) {
	job, err := s.queue.Cancel(r.PathValue("id"))
	if err != nil {
		s.writeErr(w, r, http.StatusNotFound, err)
		return
	}
	s.writeJSON(w, r, http.StatusOK, job.Info())
}

func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, r, http.StatusOK, map[string]string{"status": "ok"})
}

// readyz is the load-balancer readiness gate, distinct from the /healthz
// liveness probe: the daemon is alive but should receive no new traffic
// while draining toward shutdown or while the queue is saturated (the next
// submission would be rejected with 429 anyway). Each probe outcome
// increments its own dscts_readyz_checks_total counter.
func (s *Server) readyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.draining.Load():
		s.hm.readyz("draining")
		s.setRetryAfter(w)
		s.writeJSON(w, r, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	case s.queue.Saturated():
		s.hm.readyz("saturated")
		s.setRetryAfter(w)
		s.writeJSON(w, r, http.StatusServiceUnavailable, map[string]string{"status": "saturated"})
	default:
		s.hm.readyz("ready")
		s.writeJSON(w, r, http.StatusOK, map[string]string{"status": "ready"})
	}
}

func (s *Server) stats(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, r, http.StatusOK, s.queue.Stats())
}

func (s *Server) version(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, r, http.StatusOK, obs.Build())
}

// writeJSON writes a JSON response; encode failures (a client that went
// away mid-body, typically) are logged at debug instead of dropped.
func (s *Server) writeJSON(w http.ResponseWriter, r *http.Request, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.log.Debug("response encode failed",
			"path", r.URL.Path, "status", status, "error", err,
			"request_id", r.Header.Get("X-Request-ID"))
	}
}

// writeErr writes a structured error body carrying the request ID.
func (s *Server) writeErr(w http.ResponseWriter, r *http.Request, status int, err error) {
	s.writeJSON(w, r, status, map[string]string{
		"error":      err.Error(),
		"request_id": r.Header.Get("X-Request-ID"),
	})
}

// writeJSON and writeErr are the bare helpers behind the Server methods,
// kept for callers with no request in hand.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
