package serve

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"dscts/internal/core"
	"dscts/internal/dse"
)

// TestRequestKeyCorners pins the corner rules of the cache identity: the
// corner set (and its order, which fixes the response layout) is part of
// the key; spellings canonicalize; corner-free requests cannot alias
// cornered ones.
func TestRequestKeyCorners(t *testing.T) {
	plain := &Request{Design: "C4", Seed: 1}
	cornered := &Request{Design: "C4", Seed: 1, Corners: []string{"slow", "typ", "fast"}}
	if plain.Key(KindSynthesize) == cornered.Key(KindSynthesize) {
		t.Fatal("adding corners kept the cache key")
	}
	// Preset names canonicalize case-insensitively.
	shouty := &Request{Design: "C4", Seed: 1, Corners: []string{"SLOW", "Typ", "fast"}}
	if shouty.Key(KindSynthesize) != cornered.Key(KindSynthesize) {
		t.Fatal("corner spellings keyed differently")
	}
	// Corner order fixes the per-corner response layout, so it is part of
	// the identity.
	perm := &Request{Design: "C4", Seed: 1, Corners: []string{"fast", "typ", "slow"}}
	if perm.Key(KindSynthesize) == cornered.Key(KindSynthesize) {
		t.Fatal("corner order did not change the key")
	}
	// Subsets differ.
	sub := &Request{Design: "C4", Seed: 1, Corners: []string{"slow"}}
	if sub.Key(KindSynthesize) == cornered.Key(KindSynthesize) {
		t.Fatal("corner subset shared the key")
	}
}

// TestRequestKeyPinned pins the exact canonical-encoding hashes. These
// MUST change whenever the encoding version bumps, and must NOT change
// otherwise: an accidental encoding edit that silently remaps every cache
// entry fails here, and so does adding a result-affecting field without
// bumping requestKeyVersion (start from the recorded v4 values and
// re-pin on every deliberate version bump).
func TestRequestKeyPinned(t *testing.T) {
	if requestKeyVersion != "dscts-request-v4" {
		t.Fatalf("encoding version changed to %q: re-pin the hashes below", requestKeyVersion)
	}
	pins := map[string]*Request{
		"c2c950a2aa40ee599e3fd5743bb84795e1ecf7dbf9b074cfa2a8936f5b585120": {Design: "C4", Seed: 1},
		"1bef29523aa268296dc51b69e413320b619f6a75c627167bba9f4899041270de": {Design: "C4", Seed: 1, Corners: []string{"slow", "typ", "fast"}},
		"85f74bd6d4dd9b737df44e0b9b6f13665ec189e14b1d74f9bc0c1196c88467fb": {Design: "C4", Seed: 1, Options: OptionsSpec{PartitionMaxSinks: 50000}},
		"e6975a4041b1f7a27d23d4d7d0c25dbd8f593aa198542be0babda52665e9a649": {XLSinks: 1000000, Seed: 1, Options: OptionsSpec{PartitionMaxSinks: 50000}},
	}
	for want, req := range pins {
		if got := req.Key(KindSynthesize); got != want {
			t.Errorf("canonical encoding drifted without a version bump:\nrequest %+v\ngot  %s\nwant %s", req, got, want)
		}
	}
	// The delta section hashes under the job kind "eco" and can never
	// alias the base (same request, no delta, kind "synthesize").
	ecoReq := &Request{Design: "C4", Seed: 1, Delta: &DeltaSpec{
		Move:   []MoveSpec{{Sink: 7, X: 100.5, Y: 200.25}},
		Remove: []int{3},
		Add:    []XY{{X: 10, Y: 20}},
	}}
	const wantECO = "ca239420a52aa1356ce891bbaad98222be9cd9309002bf132b94adf071176450"
	if got := ecoReq.Key(KindECO); got != wantECO {
		t.Errorf("eco canonical encoding drifted without a version bump:\ngot  %s\nwant %s", got, wantECO)
	}
	base := *ecoReq
	base.Delta = nil
	if base.Key(KindSynthesize) == ecoReq.Key(KindECO) {
		t.Fatal("eco request aliased its base")
	}
}

// TestCornerJobEndToEnd submits a multi-corner synthesis over HTTP and
// checks the per-corner payload against a direct library run: same corner
// order, bit-identical per-corner metrics, same cross-corner summary, and
// per-corner sink-delay maps trimmed from the response unless asked for.
func TestCornerJobEndToEnd(t *testing.T) {
	_, client := newTestServer(t, Config{MaxRunning: 2, MaxQueued: 8})
	req := &Request{Design: "C4", Seed: 1, Corners: []string{"slow", "typ", "fast"}}
	info, err := client.Synthesize(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StateDone {
		t.Fatalf("job ended %s (%s)", info.State, info.Error)
	}
	res := info.Result
	if res.Corners == nil || len(res.Corners.Results) != 3 {
		t.Fatalf("corner payload missing: %+v", res.Corners)
	}
	for i, name := range []string{"slow", "typ", "fast"} {
		got := res.Corners.Results[i]
		if got.Corner.Name != name {
			t.Fatalf("corner %d is %q want %q", i, got.Corner.Name, name)
		}
		if got.Metrics.SinkDelays != nil {
			t.Fatal("per-corner sink delays leaked into the trimmed view")
		}
	}

	// Reference: direct synthesis with the same derived options.
	rv := directMetrics(t, req, KindSynthesize)
	want, err := core.Synthesize(rv.root, rv.sinks, rv.tc, rv.opt)
	if err != nil {
		t.Fatal(err)
	}
	for i, wres := range want.Corners.Results {
		gres := res.Corners.Results[i]
		if gres.Metrics.Latency != wres.Metrics.Latency || gres.Metrics.Skew != wres.Metrics.Skew {
			t.Fatalf("corner %s differs from direct run: %+v vs %+v",
				wres.Corner.Name, gres.Metrics, wres.Metrics)
		}
	}
	if res.Corners.Summary != want.Corners.Summary {
		t.Fatalf("summary differs: %+v vs %+v", res.Corners.Summary, want.Corners.Summary)
	}
	// Physics sanity on the served payload: slow corner dominates.
	if res.Corners.Summary.WorstLatencyCorner != "slow" {
		t.Fatalf("worst latency corner %q", res.Corners.Summary.WorstLatencyCorner)
	}

	// With IncludeSinkDelays the per-corner maps come through.
	full := &Request{Design: "C4", Seed: 1, Corners: []string{"slow", "typ", "fast"}, IncludeSinkDelays: true}
	finfo, err := client.Synthesize(context.Background(), full)
	if err != nil {
		t.Fatal(err)
	}
	fres := finfo.Result
	if len(fres.Corners.Results[0].Metrics.SinkDelays) == 0 {
		t.Fatal("IncludeSinkDelays did not surface per-corner delays")
	}
	if !finfo.CacheHit {
		t.Fatal("IncludeSinkDelays must not change the cache identity")
	}
}

// TestConcurrentCornerJobs runs 8 concurrent multi-corner jobs (mixed
// corner sets and designs) and checks every per-corner metric against a
// direct run — the corner fan-out must stay race-clean and schedule-
// independent under concurrent service load (run with -race via make
// race).
func TestConcurrentCornerJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrent end-to-end run")
	}
	_, client := newTestServer(t, Config{MaxRunning: 8, MaxQueued: 32})
	cornerSets := [][]string{
		{"slow", "typ", "fast"},
		{"fast", "slow"},
		{"typ"},
		{"slow", "fast"},
	}
	reqs := make([]*Request, 8)
	for i := range reqs {
		design := "C4"
		if i%2 == 1 {
			design = "C5"
		}
		reqs[i] = &Request{Design: design, Seed: int64(1 + i/4), Corners: cornerSets[i%len(cornerSets)]}
	}
	results := make([]*Result, len(reqs))
	errs := make([]error, len(reqs))
	var wg sync.WaitGroup
	for i, req := range reqs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			info, err := client.Synthesize(context.Background(), req)
			if err != nil {
				errs[i] = err
				return
			}
			if info.State != StateDone {
				errs[i] = fmt.Errorf("job %s state %s (%s)", info.ID, info.State, info.Error)
				return
			}
			results[i] = info.Result
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		rv := directMetrics(t, reqs[i], KindSynthesize)
		want, err := core.Synthesize(rv.root, rv.sinks, rv.tc, rv.opt)
		if err != nil {
			t.Fatal(err)
		}
		got := results[i].Corners
		if got == nil || len(got.Results) != len(reqs[i].Corners) {
			t.Fatalf("job %d: corner payload %+v", i, got)
		}
		for c := range got.Results {
			gm, wm := got.Results[c].Metrics, want.Corners.Results[c].Metrics
			if gm.Latency != wm.Latency || gm.Skew != wm.Skew || gm.WL != wm.WL {
				t.Fatalf("job %d corner %s: %+v vs %+v", i, got.Results[c].Corner.Name, gm, wm)
			}
		}
		if got.Summary != want.Corners.Summary {
			t.Fatalf("job %d summary: %+v vs %+v", i, got.Summary, want.Corners.Summary)
		}
	}
}

// TestDSECornerEndpoint checks a DSE request with corners returns
// cross-corner points (one per threshold × corner, in request corner
// order) that match a direct corner sweep, and that the corner set
// separates DSE cache entries too.
func TestDSECornerEndpoint(t *testing.T) {
	_, client := newTestServer(t, Config{MaxRunning: 2})
	req := &Request{Design: "C4", Thresholds: []int{100, 800}, Corners: []string{"slow", "fast"}}
	info, err := client.DSE(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StateDone {
		t.Fatalf("job ended %s (%s)", info.State, info.Error)
	}
	res := info.Result
	if len(res.Points) != 0 || len(res.CornerPoints) != 2 {
		t.Fatalf("want 2 corner points and no plain points, got %d/%d", len(res.CornerPoints), len(res.Points))
	}
	rv := directMetrics(t, req, KindDSE)
	want, err := dse.SweepFanoutCorners(context.Background(), rv.root, rv.sinks, rv.tc, req.Thresholds, rv.opt.Corners, rv.opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if res.CornerPoints[i].Param != want[i].Param {
			t.Fatalf("point %d param %g want %g", i, res.CornerPoints[i].Param, want[i].Param)
		}
		for c := range want[i].Corners {
			if res.CornerPoints[i].Corners[c] != want[i].Corners[c] {
				t.Fatalf("point %d corner %d differs:\nservice %+v\ndirect  %+v",
					i, c, res.CornerPoints[i].Corners[c], want[i].Corners[c])
			}
		}
	}
	plain := &Request{Design: "C4", Thresholds: []int{100, 800}}
	if plain.Key(KindDSE) == req.Key(KindDSE) {
		t.Fatal("corner set did not separate DSE cache entries")
	}
}

// TestBadCornerRequests checks corner validation happens at admission
// (HTTP 400), before any synthesis work.
func TestBadCornerRequests(t *testing.T) {
	_, client := newTestServer(t, Config{})
	cases := []*Request{
		{Design: "C4", Corners: []string{"weird"}},
		{Design: "C4", Corners: []string{"slow", "slow"}},
		{Design: "C4", Corners: []string{""}},
	}
	for i, req := range cases {
		_, err := client.Synthesize(context.Background(), req)
		ae, ok := err.(*apiError)
		if !ok || ae.Status != 400 {
			t.Fatalf("case %d: want HTTP 400, got %v", i, err)
		}
	}
}

// TestCornerProgressEvents checks the corners phase streams per-corner
// completion events.
func TestCornerProgressEvents(t *testing.T) {
	_, client := newTestServer(t, Config{MaxRunning: 1})
	req := &Request{Design: "C4", Corners: []string{"slow", "typ", "fast"}}
	sawPhase := false
	sawPoints := 0
	last, err := client.Stream(context.Background(), KindSynthesize, req, func(ev Event) {
		if ev.Phase == string(core.PhaseCorners) {
			sawPhase = true
			if ev.Total == 3 && ev.Point > 0 {
				sawPoints++
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if last.Event != string(StateDone) {
		t.Fatalf("terminal event %q (%s)", last.Event, last.Error)
	}
	if !sawPhase || sawPoints != 3 {
		t.Fatalf("corner progress events: phase %v, %d point events", sawPhase, sawPoints)
	}
}
