package serve

// Retry-classification tests for the API client: 4xx responses are
// terminal (the request itself is wrong; repeating it cannot help) with
// the single exception of 429 backpressure, while 5xx responses retry
// except 501. Pinned server-side by counting actual attempts, not by
// inspecting the classifier.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// retryProbe is a fake endpoint that serves a fixed status sequence and
// counts attempts.
func retryProbe(t *testing.T, statuses ...int) (*Client, *atomic.Int64) {
	t.Helper()
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := attempts.Add(1)
		code := statuses[min(int(n)-1, len(statuses)-1)]
		if code == http.StatusOK {
			w.Header().Set("Content-Type", "application/json")
			w.Write([]byte(`{"id":"job-1","state":"done"}`))
			return
		}
		writeErr(w, code, context.DeadlineExceeded)
	}))
	t.Cleanup(ts.Close)
	return &Client{Base: ts.URL, RetryBackoff: time.Millisecond}, &attempts
}

// TestClientNeverRetries400 pins that a 400 Bad Request is terminal even
// for an idempotent submission: exactly one attempt reaches the server.
func TestClientNeverRetries400(t *testing.T) {
	client, attempts := retryProbe(t, http.StatusBadRequest)
	req := &Request{Design: "C1", IdempotencyKey: "retry-test"}
	_, err := client.Synthesize(context.Background(), req)
	if err == nil {
		t.Fatal("expected an error from a 400 response")
	}
	var he interface{ HTTPStatus() int }
	if !asHTTPErr(err, &he) || he.HTTPStatus() != http.StatusBadRequest {
		t.Fatalf("error %v does not carry status 400", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("400 response was attempted %d times, want exactly 1", got)
	}
}

// TestClientTerminal4xxAnd501 sweeps the terminal statuses: every 4xx but
// 429, plus 501, gets exactly one attempt.
func TestClientTerminal4xxAnd501(t *testing.T) {
	// 504 rides with the terminal set: in sync mode it means the job ran
	// and hit its deadline, and the engine is deterministic — a repeat
	// would time out identically.
	for _, code := range []int{
		http.StatusUnauthorized, http.StatusForbidden, http.StatusNotFound,
		http.StatusRequestEntityTooLarge, http.StatusNotImplemented,
		http.StatusGatewayTimeout,
	} {
		client, attempts := retryProbe(t, code)
		req := &Request{Design: "C1", IdempotencyKey: "retry-test"}
		if _, err := client.Synthesize(context.Background(), req); err == nil {
			t.Fatalf("status %d: expected an error", code)
		}
		if got := attempts.Load(); got != 1 {
			t.Fatalf("status %d was attempted %d times, want exactly 1", code, got)
		}
	}
}

// TestClientRetriesTransient pins that 429 and the transient 5xx family
// retry until success.
func TestClientRetriesTransient(t *testing.T) {
	for _, code := range []int{
		http.StatusTooManyRequests, http.StatusInternalServerError,
		http.StatusBadGateway, http.StatusServiceUnavailable,
	} {
		client, attempts := retryProbe(t, code, code, http.StatusOK)
		req := &Request{Design: "C1", IdempotencyKey: "retry-test"}
		info, err := client.Synthesize(context.Background(), req)
		if err != nil {
			t.Fatalf("status %d: %v", code, err)
		}
		if info.ID != "job-1" {
			t.Fatalf("status %d: unexpected payload %+v", code, info)
		}
		if got := attempts.Load(); got != 3 {
			t.Fatalf("status %d: %d attempts, want 3 (two failures + success)", code, got)
		}
	}
}

// TestClientNoRetryWithoutIdempotencyKey re-pins that even a retriable
// status is attempted once when the submission carries no idempotency key:
// replaying an unkeyed POST could run the job twice.
func TestClientNoRetryWithoutIdempotencyKey(t *testing.T) {
	client, attempts := retryProbe(t, http.StatusServiceUnavailable, http.StatusOK)
	req := &Request{Design: "C1"}
	if _, err := client.Synthesize(context.Background(), req); err == nil {
		t.Fatal("expected the 503 to surface without retries")
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("unkeyed POST attempted %d times, want exactly 1", got)
	}
}

// asHTTPErr unwraps to the HTTPStatus interface like external callers do.
func asHTTPErr(err error, target *interface{ HTTPStatus() int }) bool {
	for e := err; e != nil; {
		if he, ok := e.(interface{ HTTPStatus() int }); ok {
			*target = he
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}
