package serve

import (
	"net/http"
	"strconv"
	"time"

	"dscts/internal/obs"
	"dscts/internal/par"
	"dscts/internal/store"
)

// metrics is the queue's instrument set. Counters and gauges that mirror
// GET /stats are registered as CounterFunc/GaugeFunc closures over the SAME
// atomics the stats snapshot reads, so /metrics and /stats can never drift:
// there is one source of truth and two renderings. Owned instruments exist
// only for distributions /stats does not carry (latency histograms) and for
// HTTP-layer counts. A nil *metrics (registry disabled) is a no-op
// everywhere it is consulted.
type metrics struct {
	reg *obs.Registry

	// jobDur is the end-to-end job latency (admission to terminal state) of
	// DONE jobs, split by cache hit/miss; its total count equals the done
	// counter, which cismoke cross-checks.
	jobDurHit  *obs.Histogram
	jobDurMiss *obs.Histogram
	// queueWait is time from admission to the runner picking the job up
	// (executed jobs only — cache hits never wait).
	queueWait *obs.Histogram
	// regions accumulates partition regions synthesized; per-phase duration
	// histograms are created lazily through HistogramOf as phases first
	// complete.
	regions *obs.Counter
}

// newMetrics registers the queue's families. reg may be nil (disabled).
func newMetrics(reg *obs.Registry, q *Queue) *metrics {
	if reg == nil {
		return nil
	}
	m := &metrics{reg: reg}

	reg.CounterFunc("dscts_jobs_submitted_total",
		"Jobs past validation and size control (admitted, cache hits included).",
		func() float64 { return float64(q.submitted.Load()) })
	reg.CounterFunc("dscts_jobs_rejected_total",
		"Submissions rejected by admission control: the queue was full.",
		func() float64 { return float64(q.rejectedFull.Load()) },
		obs.L("reason", "queue_full"))
	reg.CounterFunc("dscts_jobs_rejected_total",
		"Submissions rejected by admission control: over the sink budget.",
		func() float64 { return float64(q.rejectedLarge.Load()) },
		obs.L("reason", "too_large"))
	reg.CounterFunc("dscts_jobs_rejected_total",
		"Submissions rejected by admission control: the queue was closed.",
		func() float64 { return float64(q.rejectedClosed.Load()) },
		obs.L("reason", "closed"))
	reg.CounterFunc("dscts_jobs_rejected_total",
		"Submissions rejected by admission control: the tenant's outstanding-job quota.",
		func() float64 { return float64(q.rejectedQuota.Load()) },
		obs.L("reason", "quota"))
	reg.CounterFunc("dscts_jobs_total", "Jobs finished done.",
		func() float64 { return float64(q.doneCt.Load()) }, obs.L("state", "done"))
	reg.CounterFunc("dscts_jobs_total", "Jobs finished failed.",
		func() float64 { return float64(q.failedCt.Load()) }, obs.L("state", "failed"))
	reg.CounterFunc("dscts_jobs_total", "Jobs finished cancelled.",
		func() float64 { return float64(q.cancelCt.Load()) }, obs.L("state", "cancelled"))
	reg.CounterFunc("dscts_jobs_panics_total",
		"Job bodies that panicked and were recovered (each also counts as failed).",
		func() float64 { return float64(q.panicCt.Load()) })
	reg.CounterFunc("dscts_jobs_timeouts_total",
		"Job failures caused by the per-job running deadline.",
		func() float64 { return float64(q.timeoutCt.Load()) })
	reg.CounterFunc("dscts_jobs_watchdog_kills_total",
		"Jobs force-finished by the watchdog after ignoring cancellation past the grace period.",
		func() float64 { return float64(q.watchdogCt.Load()) })
	reg.CounterFunc("dscts_idempotent_replays_total",
		"Submissions answered by an earlier job through their idempotency key.",
		func() float64 { return float64(q.dedupCt.Load()) })
	reg.GaugeFunc("dscts_jobs_abandoned_workers",
		"Stuck job bodies currently detached from the runner pool.",
		func() float64 { return float64(q.abandonCt.Load()) })
	reg.GaugeFunc("dscts_jobs_queue_depth",
		"Jobs admitted and waiting for a runner.",
		func() float64 { return float64(q.sched.Len()) })
	reg.GaugeFunc("dscts_jobs_queue_capacity",
		"Pending-queue bound past which submissions are rejected with 429.",
		func() float64 { return float64(q.cfg.MaxQueued) })
	reg.GaugeFunc("dscts_jobs_running",
		"Jobs currently executing on a runner.",
		func() float64 { return float64(q.countState(StateRunning)) })
	reg.GaugeFunc("dscts_worker_budget",
		"Total synthesis worker budget shared by the running jobs.",
		func() float64 { return float64(par.N(q.cfg.Workers)) })

	// Result cache: same CacheStats the /stats payload snapshots.
	reg.CounterFunc("dscts_cache_hits_total", "Result-cache lookups answered from the cache.",
		func() float64 { return float64(q.cache.Stats().Hits) })
	reg.CounterFunc("dscts_cache_misses_total",
		"Result-cache lookups that missed (checksum corruptions included).",
		func() float64 { return float64(q.cache.Stats().Misses) })
	reg.CounterFunc("dscts_cache_evictions_total", "Result-cache entries evicted by the LRU cap.",
		func() float64 { return float64(q.cache.Stats().Evictions) })
	reg.CounterFunc("dscts_cache_corruptions_total",
		"Result-cache entries dropped by the integrity check (counted in misses too).",
		func() float64 { return float64(q.cache.Stats().Corruptions) })
	reg.CounterFunc("dscts_cache_encode_drops_total",
		"Results dropped at store time because their checksum encoding failed.",
		func() float64 { return float64(q.cache.Stats().EncodeDrops) })
	reg.GaugeFunc("dscts_cache_entries", "Result-cache entries currently resident.",
		func() float64 { return float64(q.cache.Stats().Entries) })
	reg.CounterFunc("dscts_eco_base_hits_total", "ECO base-outcome cache hits.",
		func() float64 { return float64(q.baseStats().Hits) })
	reg.CounterFunc("dscts_eco_base_misses_total",
		"ECO base-outcome cache misses (the base was re-synthesized).",
		func() float64 { return float64(q.baseStats().Misses) })
	reg.GaugeFunc("dscts_eco_base_entries", "ECO base outcomes currently retained.",
		func() float64 { return float64(q.baseStats().Entries) })
	reg.CounterFunc("dscts_arena_gets_total", "Scratch-arena checkouts by synthesis jobs.",
		func() float64 { return float64(q.arenaStats().Gets) })
	reg.CounterFunc("dscts_arena_hits_total",
		"Scratch-arena checkouts served by a warm recycled arena.",
		func() float64 { return float64(q.arenaStats().Hits) })
	reg.CounterFunc("dscts_arena_puts_total",
		"Scratch arenas returned to the pool (gets minus puts over a quiet queue = arenas dropped after panics).",
		func() float64 { return float64(q.arenaStats().Puts) })

	// QoS classes are fixed at startup, so per-class instruments register
	// once, each closing over that class's scheduler state; the label set
	// is exactly the configured class list.
	for _, c := range q.sched.classes {
		c := c
		reg.GaugeFunc("dscts_qos_pending",
			"Jobs waiting for a runner, by QoS class.",
			func() float64 { return float64(q.sched.pendingOf(c)) },
			obs.L("class", c.name))
		reg.GaugeFunc("dscts_qos_running",
			"Jobs currently executing, by QoS class.",
			func() float64 { return float64(q.sched.runningOf(c)) },
			obs.L("class", c.name))
		reg.GaugeFunc("dscts_qos_share",
			"Running-slot budget of the class under contention (weighted slice of max_running).",
			func() float64 { return float64(c.share) },
			obs.L("class", c.name))
		reg.CounterFunc("dscts_qos_dispatched_total",
			"Jobs handed to runners, by QoS class.",
			func() float64 { return float64(c.dispatched.Load()) },
			obs.L("class", c.name))
		reg.CounterFunc("dscts_qos_jobs_total", "Jobs finished done, by QoS class.",
			func() float64 { return float64(c.doneCt.Load()) },
			obs.L("class", c.name), obs.L("state", "done"))
		reg.CounterFunc("dscts_qos_jobs_total", "Jobs finished failed, by QoS class.",
			func() float64 { return float64(c.failedCt.Load()) },
			obs.L("class", c.name), obs.L("state", "failed"))
		reg.CounterFunc("dscts_qos_jobs_total", "Jobs finished cancelled, by QoS class.",
			func() float64 { return float64(c.cancelledCt.Load()) },
			obs.L("class", c.name), obs.L("state", "cancelled"))
	}

	// Store families register unconditionally (zero-valued when persistence
	// is off) so the family set — which tests pin — does not depend on
	// configuration.
	sv := func(f func(store.Stats) int64) func() float64 {
		return func() float64 {
			if q.cfg.Store == nil {
				return 0
			}
			return float64(f(q.cfg.Store.Stats()))
		}
	}
	reg.CounterFunc("dscts_store_writes_total",
		"Blobs persisted by the write-behind store.",
		sv(func(s store.Stats) int64 { return s.Writes }))
	reg.CounterFunc("dscts_store_write_errors_total",
		"Store persist attempts that failed (entry lost from disk, kept in memory).",
		sv(func(s store.Stats) int64 { return s.WriteErrors }))
	reg.CounterFunc("dscts_store_dropped_total",
		"Writes discarded because the write-behind queue was full or the store closed.",
		sv(func(s store.Stats) int64 { return s.Dropped }))
	reg.GaugeFunc("dscts_store_pending",
		"Write-behind backlog of the persistent store.",
		sv(func(s store.Stats) int64 { return s.Pending }))
	reg.GaugeFunc("dscts_store_entries", "Result blobs currently on disk.",
		sv(func(s store.Stats) int64 { return s.ResultEntries }), obs.L("kind", "result"))
	reg.GaugeFunc("dscts_store_entries", "ECO base blobs currently on disk.",
		sv(func(s store.Stats) int64 { return s.BaseEntries }), obs.L("kind", "base"))
	reg.CounterFunc("dscts_store_warm_loaded_total",
		"Results loaded into the cache by warm start.",
		sv(func(s store.Stats) int64 { return s.WarmResults }), obs.L("kind", "result"))
	reg.CounterFunc("dscts_store_warm_loaded_total",
		"ECO bases loaded into the cache by warm start.",
		sv(func(s store.Stats) int64 { return s.WarmBases }), obs.L("kind", "base"))
	reg.CounterFunc("dscts_store_warm_skipped_total",
		"Warm-start blobs skipped and deleted: integrity mismatch.",
		sv(func(s store.Stats) int64 { return s.WarmSkippedCorrupt }), obs.L("reason", "corrupt"))
	reg.CounterFunc("dscts_store_warm_skipped_total",
		"Warm-start blobs skipped and deleted: format-version mismatch.",
		sv(func(s store.Stats) int64 { return s.WarmSkippedVersion }), obs.L("reason", "version"))
	reg.CounterFunc("dscts_store_warm_skipped_total",
		"Warm-start blobs skipped and deleted: IO error.",
		sv(func(s store.Stats) int64 { return s.WarmSkippedIO }), obs.L("reason", "io"))

	// Cluster families register only in cluster mode: unlike the store
	// families (a store can appear on restart without changing the family
	// set's meaning), a non-clustered daemon has no peers to report on, and
	// the golden family-set test pins the single-node list.
	if c := q.cluster; c != nil {
		reg.CounterFunc("dscts_cluster_forwarded_total",
			"Requests this node routed to their consistent-hash ring owner.",
			func() float64 { return float64(c.forwarded.Load()) })
		reg.CounterFunc("dscts_cluster_forward_fallback_total",
			"Forwards that failed (peer down or erroring) and were served locally instead.",
			func() float64 { return float64(c.forwardFallback.Load()) })
		reg.CounterFunc("dscts_cluster_forwarded_in_total",
			"Forwarded requests received from peers.",
			func() float64 { return float64(c.forwardedIn.Load()) })
		reg.CounterFunc("dscts_cluster_regions_total",
			"Board regions executed locally on this node.",
			func() float64 { return float64(c.localRegions.Load()) },
			obs.L("path", "local"))
		reg.CounterFunc("dscts_cluster_regions_total",
			"Board regions dispatched to peers (applied results).",
			func() float64 { return float64(c.dispatched.Load()) },
			obs.L("path", "dispatched"))
		reg.CounterFunc("dscts_cluster_regions_total",
			"Regions this node executed for peers via POST /internal/region.",
			func() float64 { return float64(c.served.Load()) },
			obs.L("path", "served"))
		reg.CounterFunc("dscts_cluster_regions_total",
			"Regions this node stole from peers and completed.",
			func() float64 { return float64(c.stolen.Load()) },
			obs.L("path", "stolen"))
		reg.CounterFunc("dscts_cluster_region_dispatch_errors_total",
			"Region dispatch attempts that failed and were re-offered.",
			func() float64 { return float64(c.dispatchErrs.Load()) })
		reg.CounterFunc("dscts_cluster_steals_given_total",
			"Region leases handed to stealing peers.",
			func() float64 { return float64(c.stealsGiven.Load()) })
		reg.CounterFunc("dscts_cluster_steal_rejects_total",
			"Stale or duplicate steal completions rejected by the lease-token check.",
			func() float64 { return float64(c.stealRejects.Load()) })
		reg.CounterFunc("dscts_cluster_breaker_opens_total",
			"Per-peer circuit-breaker openings, summed over the peer set.",
			func() float64 { return float64(c.peers.BreakerOpens()) })
		for _, id := range c.peers.IDs() {
			id := id
			reg.GaugeFunc("dscts_cluster_peer_up",
				"Peer liveness from this node's prober (1 healthy, 0 down).",
				func() float64 {
					if c.peers.Usable(id) {
						return 1
					}
					return 0
				},
				obs.L("peer", id))
		}
	}

	reg.CounterFunc("dscts_faults_injected_total",
		"Fired fault injections across all points (chaos/test builds; 0 in production).",
		func() float64 {
			var n int64
			for _, v := range q.cfg.Faults.Counts() {
				n += v
			}
			return float64(n)
		})
	reg.GaugeFunc("dscts_uptime_seconds", "Seconds since the queue started.",
		func() float64 { return time.Since(q.start).Seconds() })

	m.jobDurHit = reg.Histogram("dscts_job_duration_seconds",
		"End-to-end latency of done jobs, admission to terminal state.",
		nil, obs.L("cache", "hit"))
	m.jobDurMiss = reg.Histogram("dscts_job_duration_seconds",
		"End-to-end latency of done jobs, admission to terminal state.",
		nil, obs.L("cache", "miss"))
	m.queueWait = reg.Histogram("dscts_job_queue_wait_seconds",
		"Time executed jobs spent waiting for a runner.", nil)
	m.regions = reg.Counter("dscts_regions_total",
		"Partition regions synthesized by partition-parallel jobs.")

	obs.RegisterRuntime(reg)
	obs.RegisterBuildInfo(reg)
	return m
}

// observeRetired feeds the latency and per-phase histograms from a job that
// just reached the retention ring (every job passes through exactly once,
// already terminal). Nil-safe.
func (m *metrics) observeRetired(j *Job) {
	if m == nil {
		return
	}
	j.mu.Lock()
	state, hit := j.state, j.cacheHit
	created, started, finished := j.created, j.started, j.finished
	j.mu.Unlock()
	if state == StateDone && !finished.IsZero() {
		h := m.jobDurMiss
		if hit {
			h = m.jobDurHit
		}
		h.Observe(finished.Sub(created).Seconds())
	}
	if !started.IsZero() {
		m.queueWait.Observe(started.Sub(created).Seconds())
	}
	for _, pt := range j.trace.Totals() {
		if pt.Count > 0 {
			m.reg.HistogramOf("dscts_phase_duration_seconds",
				"Flow phase durations across jobs, engine-measured.",
				nil, obs.L("phase", pt.Phase)).Observe(pt.MS / 1e3)
		}
		if pt.Phase == "partition" && pt.Points > 0 {
			m.regions.Add(int64(pt.Points))
		}
	}
}

// countState counts jobs currently in the given state (scrape-time only;
// holds the queue and per-job locks briefly).
func (q *Queue) countState(s JobState) int {
	n := 0
	q.mu.Lock()
	for _, j := range q.jobs {
		j.mu.Lock()
		if j.state == s {
			n++
		}
		j.mu.Unlock()
	}
	q.mu.Unlock()
	return n
}

// baseStats snapshots the ECO base cache, empty when base caching is off.
func (q *Queue) baseStats() CacheStats {
	if q.bases == nil {
		return CacheStats{}
	}
	return q.bases.Stats()
}

// arenaStats snapshots the scratch-arena recycling pool.
func (q *Queue) arenaStats() ArenaStats {
	gets, hits, puts := q.arenas.Stats()
	return ArenaStats{Gets: gets, Hits: hits, Puts: puts}
}

// httpMetrics instruments the HTTP layer: request counts by status code, a
// latency histogram, and readiness-probe outcomes. Nil when the registry is
// disabled.
type httpMetrics struct {
	reg    *obs.Registry
	reqDur *obs.Histogram
}

func newHTTPMetrics(reg *obs.Registry) *httpMetrics {
	if reg == nil {
		return nil
	}
	return &httpMetrics{
		reg: reg,
		reqDur: reg.Histogram("dscts_http_request_duration_seconds",
			"HTTP request handling latency (sync submissions include the job run).", nil),
	}
}

func (h *httpMetrics) observe(code int, dur time.Duration) {
	if h == nil {
		return
	}
	h.reg.CounterOf("dscts_http_requests_total", "HTTP requests served, by status code.",
		obs.L("code", strconv.Itoa(code))).Inc()
	h.reqDur.Observe(dur.Seconds())
}

func (h *httpMetrics) readyz(state string) {
	if h == nil {
		return
	}
	h.reg.CounterOf("dscts_readyz_checks_total",
		"Readiness probes answered, by reported state.", obs.L("state", state)).Inc()
}

// statusRecorder captures the response code for the request counter.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// Flush keeps NDJSON streaming working through the recorder.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
