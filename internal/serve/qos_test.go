package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"testing"
)

// TestParseQoSClasses pins the -qos-classes grammar.
func TestParseQoSClasses(t *testing.T) {
	got, err := ParseQoSClasses("")
	if err != nil || len(got) != 2 || got[0].Name != "interactive" || got[0].Weight != 3 ||
		got[1].Name != "batch" || got[1].Weight != 1 {
		t.Errorf("empty spec: %v, %v; want the default interactive:3,batch:1", got, err)
	}
	got, err = ParseQoSClasses(" gold:5 , silver:2 ")
	if err != nil || len(got) != 2 || got[0] != (QoSClass{Name: "gold", Weight: 5}) ||
		got[1] != (QoSClass{Name: "silver", Weight: 2}) {
		t.Errorf("gold/silver spec: %v, %v", got, err)
	}
	for _, bad := range []string{"noweight", "a:x", "a:0", "a:-1", ":3", "a:1,a:2"} {
		if _, err := ParseQoSClasses(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func testScheduler(capacity, maxRunning, quota int) *qosScheduler {
	return newQoSScheduler(DefaultQoSClasses(), capacity, maxRunning, quota)
}

// TestWeightedFairDispatch: with both classes backlogged and slots freed
// after every dispatch, the 3:1 weights yield a 3:1 dispatch ratio.
func TestWeightedFairDispatch(t *testing.T) {
	s := testScheduler(100, 4, 0)
	for i := 0; i < 20; i++ {
		if err := s.push(&Job{tenant: "a", class: "interactive"}); err != nil {
			t.Fatal(err)
		}
		if err := s.push(&Job{tenant: "b", class: "batch"}); err != nil {
			t.Fatal(err)
		}
	}
	counts := map[string]int{}
	for i := 0; i < 16; i++ {
		job := s.next()
		counts[job.class]++
		s.release(job) // slot freed immediately: pure WFQ, no share binding
	}
	// Weighted fair queuing delivers the 3:1 ratio over any window, modulo
	// one dispatch of boundary tie-breaking.
	if counts["interactive"] < 11 || counts["interactive"] > 13 {
		t.Errorf("dispatch mix %v, want ~12 interactive of 16", counts)
	}
}

// TestShareBoundsRunningSlots: with no slots freed, a backlogged class stops
// dispatching at its weight-proportional share — until the other class runs
// dry, at which point work conservation hands it the rest.
func TestShareBoundsRunningSlots(t *testing.T) {
	s := testScheduler(100, 4, 0) // shares: interactive 3, batch 1
	for i := 0; i < 8; i++ {
		if err := s.push(&Job{tenant: "a", class: "interactive"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.push(&Job{tenant: "b", class: "batch"}); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for i := 0; i < 4; i++ { // fill MaxRunning without releasing
		counts[s.next().class]++
	}
	if counts["interactive"] != 3 || counts["batch"] != 1 {
		t.Errorf("first 4 slots went %v, want 3 interactive + 1 batch (the shares)", counts)
	}
	// Batch is now dry; interactive takes the next slot past its share.
	if got := s.next(); got.class != "interactive" {
		t.Errorf("work conservation failed: idle slot given to %q", got.class)
	}
}

// TestTenantRoundRobin: inside one class, tenants take turns regardless of
// how deep any one tenant's backlog is.
func TestTenantRoundRobin(t *testing.T) {
	s := testScheduler(100, 4, 0)
	names := map[*Job]string{}
	push := func(tenant, label string) {
		j := &Job{tenant: tenant, class: "interactive"}
		names[j] = label
		if err := s.push(j); err != nil {
			t.Fatal(err)
		}
	}
	push("A", "a1")
	push("A", "a2")
	push("A", "a3")
	push("B", "b1")
	push("C", "c1")
	var order []string
	for i := 0; i < 5; i++ {
		job := s.next()
		order = append(order, names[job])
		s.release(job)
	}
	want := []string{"a1", "b1", "c1", "a2", "a3"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v (round-robin across tenants)", order, want)
		}
	}
}

// TestTenantQuotaOutstanding: the quota counts queued AND running jobs, and
// release/drain return the units.
func TestTenantQuotaOutstanding(t *testing.T) {
	s := testScheduler(100, 4, 2)
	j1, j2 := &Job{tenant: "t", class: "batch"}, &Job{tenant: "t", class: "batch"}
	if err := s.push(j1); err != nil {
		t.Fatal(err)
	}
	if err := s.push(j2); err != nil {
		t.Fatal(err)
	}
	if err := s.push(&Job{tenant: "t", class: "batch"}); !errors.Is(err, ErrQuota) {
		t.Fatalf("third push: %v, want ErrQuota", err)
	}
	// Another tenant is unaffected.
	if err := s.push(&Job{tenant: "u", class: "batch"}); err != nil {
		t.Fatalf("other tenant rejected: %v", err)
	}
	// Dispatching does NOT free a unit — the job is still outstanding.
	got := s.next()
	if err := s.push(&Job{tenant: "t", class: "batch"}); !errors.Is(err, ErrQuota) {
		t.Fatalf("push while running: %v, want ErrQuota (quota covers running jobs)", err)
	}
	s.release(got)
	if err := s.push(&Job{tenant: "t", class: "batch"}); err != nil {
		t.Fatalf("push after release: %v, want admission", err)
	}
	if n := len(s.drain()); n != 3 {
		t.Errorf("drained %d jobs, want 3", n)
	}
	if out := s.outstandingOf("t"); out != 0 {
		t.Errorf("tenant t still has %d outstanding after drain", out)
	}
}

// TestSchedulerCapacityAndClose: capacity rejects with ErrQueueFull, close
// rejects with ErrClosed and wakes blocked dispatchers with nil.
func TestSchedulerCapacityAndClose(t *testing.T) {
	s := testScheduler(2, 1, 0)
	s.push(&Job{tenant: "a", class: "batch"})
	s.push(&Job{tenant: "a", class: "batch"})
	if err := s.push(&Job{tenant: "a", class: "batch"}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("push past capacity: %v, want ErrQueueFull", err)
	}
	done := make(chan *Job)
	go func() {
		s.next() // drains one pending
		s.next()
		done <- s.next() // blocks until close
	}()
	s.close()
	if job := <-done; job != nil {
		t.Errorf("next after close returned %v, want nil", job)
	}
	if err := s.push(&Job{tenant: "a", class: "batch"}); !errors.Is(err, ErrClosed) {
		t.Errorf("push after close: %v, want ErrClosed", err)
	}
}

// TestTenantQuotaHTTP: the admission quota surfaces as 429 with Retry-After,
// is per-tenant, accepts the X-Tenant header as the tenant spelling, and is
// accounted as a rejection — never a submission.
func TestTenantQuotaHTTP(t *testing.T) {
	s, client := newTestServer(t, Config{
		MaxRunning: 1, MaxQueued: 8, Workers: 1, TenantQuota: 1,
		// Hold the first job in flight so quotas bind deterministically.
		Faults: mustFaults(t, "delay@serve.job:every=1:30s", 1),
	})
	ctx := context.Background()

	first, err := client.SubmitAsync(ctx, KindSynthesize, &Request{Design: "C1", Tenant: "acme"})
	if err != nil {
		t.Fatal(err)
	}
	if first.State == StateDone {
		t.Fatal("job finished under a 30s delay fault; quota cannot bind")
	}

	_, err = client.SubmitAsync(ctx, KindSynthesize, &Request{Design: "C2", Tenant: "acme"})
	var apiErr *apiError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit returned %v, want HTTP 429", err)
	}
	if apiErr.RetryAfter <= 0 {
		t.Error("429 carried no Retry-After hint")
	}

	// The X-Tenant header is an alias for the body field.
	body, _ := json.Marshal(&Request{Design: "C2"})
	hreq, err := http.NewRequest(http.MethodPost, client.Base+"/synthesize?mode=async", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("X-Tenant", "acme")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("header-spelled tenant got %d, want 429", resp.StatusCode)
	}

	// A different tenant is admitted; the default tenant too.
	if _, err := client.SubmitAsync(ctx, KindSynthesize, &Request{Design: "C2", Tenant: "rival"}); err != nil {
		t.Fatalf("other tenant rejected: %v", err)
	}
	if _, err := client.SubmitAsync(ctx, KindSynthesize, &Request{Design: "C3"}); err != nil {
		t.Fatalf("default tenant rejected: %v", err)
	}

	st := s.Queue().Stats()
	if st.Jobs.RejectedQuota != 2 {
		t.Errorf("rejected_quota = %d, want 2", st.Jobs.RejectedQuota)
	}
	if st.Jobs.Submitted != 3 {
		t.Errorf("submitted = %d, want 3 (rejections are not submissions)", st.Jobs.Submitted)
	}
	if st.QoS.TenantQuota != 1 {
		t.Errorf("stats tenant_quota = %d, want 1", st.QoS.TenantQuota)
	}
	acme := st.QoS.Tenants["acme"]
	if acme.Submitted != 1 || acme.RejectedQuota != 2 || acme.Outstanding != 1 {
		t.Errorf("acme counters %+v, want 1 submitted, 2 quota-rejected, 1 outstanding", acme)
	}
	if rival := st.QoS.Tenants["rival"]; rival.Submitted != 1 || rival.RejectedQuota != 0 {
		t.Errorf("rival counters %+v, want a clean admission", rival)
	}
}

// TestUnknownClassRejected: naming a class outside the configured set is a
// 400, not a silent fallback — a typo must not quietly demote (or promote)
// a tenant's traffic.
func TestUnknownClassRejected(t *testing.T) {
	s, client := newTestServer(t, Config{MaxRunning: 1, MaxQueued: 4, Workers: 1})
	_, err := client.Synthesize(context.Background(), &Request{Design: "C1", Class: "platinum"})
	var apiErr *apiError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("unknown class returned %v, want HTTP 400", err)
	}
	if st := s.Queue().Stats(); st.Jobs.Submitted != 0 {
		t.Errorf("submitted = %d after a rejected class, want 0", st.Jobs.Submitted)
	}
}

// TestClassAccounting: jobs land in their class's dispatch and terminal
// counters, the default class absorbs unclassed requests, and /stats carries
// the configured class set.
func TestClassAccounting(t *testing.T) {
	s, client := newTestServer(t, Config{MaxRunning: 2, MaxQueued: 8, Workers: 1})
	ctx := context.Background()
	if _, err := client.Synthesize(ctx, &Request{Design: "C1", Class: "batch", Tenant: "acme"}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Synthesize(ctx, &Request{Design: "C2"}); err != nil { // default class + tenant
		t.Fatal(err)
	}

	st := s.Queue().Stats()
	if st.QoS.DefaultClass != "interactive" {
		t.Errorf("default_class = %q", st.QoS.DefaultClass)
	}
	byName := map[string]ClassStats{}
	for _, c := range st.QoS.Classes {
		byName[c.Name] = c
	}
	if b := byName["batch"]; b.Dispatched != 1 || b.Done != 1 || b.Weight != 1 {
		t.Errorf("batch class %+v, want 1 dispatched, 1 done", b)
	}
	if i := byName["interactive"]; i.Dispatched != 1 || i.Done != 1 || i.Share != 1 {
		t.Errorf("interactive class %+v, want 1 dispatched, 1 done, share 3*2/4 = 1", i)
	}
	if d := st.QoS.Tenants["default"]; d.Submitted != 1 || d.Done != 1 {
		t.Errorf("default tenant %+v, want 1 submitted, 1 done", d)
	}
	if a := st.QoS.Tenants["acme"]; a.Done != 1 {
		t.Errorf("acme tenant %+v, want 1 done", a)
	}
}

// TestCacheHitCountsForClass: a cache hit never touches the scheduler's
// queue, but still lands in its class's and tenant's terminal counters —
// the accounting identity covers every submission.
func TestCacheHitCountsForClass(t *testing.T) {
	s, client := newTestServer(t, Config{MaxRunning: 1, MaxQueued: 4, Workers: 1})
	ctx := context.Background()
	req := &Request{Design: "C1", Class: "batch", Tenant: "acme"}
	if _, err := client.Synthesize(ctx, req); err != nil {
		t.Fatal(err)
	}
	hit, err := client.Synthesize(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.CacheHit {
		t.Fatal("second identical request missed the cache")
	}
	st := s.Queue().Stats()
	var batch ClassStats
	for _, c := range st.QoS.Classes {
		if c.Name == "batch" {
			batch = c
		}
	}
	if batch.Done != 2 || batch.Dispatched != 1 {
		t.Errorf("batch class %+v, want 2 done from 1 dispatch (the hit skipped the queue)", batch)
	}
	if a := st.QoS.Tenants["acme"]; a.Submitted != 2 || a.Done != 2 {
		t.Errorf("acme tenant %+v, want 2 submitted, 2 done", a)
	}
	if st.Jobs.Submitted != 2 || st.Jobs.Done != 2 {
		t.Errorf("identity: submitted %d done %d, want 2 and 2", st.Jobs.Submitted, st.Jobs.Done)
	}
}
