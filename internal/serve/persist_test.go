package serve

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"dscts/internal/core"
	"dscts/internal/fault"
	"dscts/internal/store"
)

// persistedServer is one daemon "process" over a store directory, torn down
// in dependency order so a test can restart over the same dir.
type persistedServer struct {
	st     *store.Store
	s      *Server
	ts     *httptest.Server
	client *Client
}

func startPersisted(t *testing.T, dir string, mut func(*Config)) *persistedServer {
	t.Helper()
	st, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{MaxRunning: 2, MaxQueued: 8, Workers: 1, Store: st}
	if mut != nil {
		mut(&cfg)
	}
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	p := &persistedServer{st: st, s: s, ts: ts, client: NewClient(ts.URL)}
	t.Cleanup(p.stop) // idempotent: store.Close and Server.Close tolerate repeats
	return p
}

func (p *persistedServer) stop() {
	p.ts.Close()
	p.s.Close()
	p.st.Close()
}

// TestPersistWarmRestart is the tier's core contract: a restarted daemon
// serves previously-computed requests as cache hits — including resolving a
// never-seen ECO delta from the persisted base snapshot.
func TestPersistWarmRestart(t *testing.T) {
	dir := t.TempDir()
	req := &Request{Design: "C1"}
	ecoReq := func(x float64) *Request {
		r := *req
		r.Delta = &DeltaSpec{Move: []MoveSpec{{Sink: 0, X: x, Y: x}}}
		return &r
	}
	ctx := context.Background()

	p1 := startPersisted(t, dir, nil)
	first, err := p1.client.Synthesize(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Fatal("first request of a fresh store was a cache hit")
	}
	if _, err := p1.client.ECO(ctx, ecoReq(40)); err != nil {
		t.Fatal(err)
	}
	p1.stop() // flushes the write-behind tail

	p2 := startPersisted(t, dir, nil)
	warm, err := p2.client.Synthesize(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Fatal("restarted daemon recomputed a persisted request")
	}
	if warm.Result.Metrics.Latency != first.Result.Metrics.Latency ||
		warm.Result.Metrics.Skew != first.Result.Metrics.Skew {
		t.Errorf("warm result differs from the original: %+v vs %+v", warm.Result.Metrics, first.Result.Metrics)
	}

	// A delta the first process never saw: only the persisted base snapshot
	// can explain a base hit.
	eco, err := p2.client.ECO(ctx, ecoReq(41))
	if err != nil {
		t.Fatal(err)
	}
	if eco.CacheHit {
		t.Fatal("unseen delta was a full-result hit (test bug)")
	}
	if !eco.Result.BaseCacheHit {
		t.Error("post-restart eco re-synthesized its base instead of loading the snapshot")
	}

	st := p2.s.Queue().Stats()
	if st.Store == nil {
		t.Fatal("no store section in stats")
	}
	// The cold process persisted the C1 result (the base re-put lands on the
	// same key) and the eco result: 2 result blobs, 1 base snapshot.
	if st.Store.WarmResults != 2 || st.Store.WarmBases != 1 {
		t.Errorf("warm start loaded %d results, %d bases; want 2 and 1", st.Store.WarmResults, st.Store.WarmBases)
	}
	if skips := st.Store.WarmSkippedCorrupt + st.Store.WarmSkippedVersion + st.Store.WarmSkippedIO; skips != 0 {
		t.Errorf("%d warm skips over a cleanly closed store: %+v", skips, *st.Store)
	}
}

// TestPersistCorruptBlobCostsOneMiss: a blob corrupted on disk is skipped at
// warm start (counted, deleted) and the request recomputes correctly — a
// damaged tier can cost a miss, never an error or wrong bytes.
func TestPersistCorruptBlobCostsOneMiss(t *testing.T) {
	dir := t.TempDir()
	req := &Request{Design: "C1"}
	ctx := context.Background()

	p1 := startPersisted(t, dir, nil)
	first, err := p1.client.Synthesize(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	p1.stop()

	blobs, err := filepath.Glob(filepath.Join(dir, "results", "*.blob"))
	if err != nil || len(blobs) != 1 {
		t.Fatalf("result blobs: %v (err %v), want exactly 1", blobs, err)
	}
	data, err := os.ReadFile(blobs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(blobs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	p2 := startPersisted(t, dir, nil)
	got, err := p2.client.Synthesize(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if got.CacheHit {
		t.Error("corrupted blob served as a cache hit")
	}
	if got.Result.Metrics.Latency != first.Result.Metrics.Latency {
		t.Error("recomputed result differs from the original")
	}
	st := p2.s.Queue().Stats()
	if st.Store.WarmSkippedCorrupt != 1 || st.Store.WarmResults != 0 {
		t.Errorf("store skip accounting %+v, want exactly 1 corrupt skip", *st.Store)
	}
}

// TestPersistUndecodablePayloadRejected: a blob that passes the store's
// checksum but is not a Result (e.g. written by something else) is reported
// corrupt by the serve-side decode callback, counted and deleted.
func TestPersistUndecodablePayloadRejected(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	st.Put(store.KindResult, "not-a-result", []byte("plain text, valid checksum"))
	st.Flush()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	p := startPersisted(t, dir, nil)
	stats := p.s.Queue().Stats()
	if stats.Store.WarmSkippedCorrupt != 1 || stats.Store.WarmResults != 0 {
		t.Errorf("store accounting %+v, want the undecodable payload counted corrupt", *stats.Store)
	}
	if stats.Cache.Entries != 0 {
		t.Errorf("%d cache entries warmed from garbage", stats.Cache.Entries)
	}
}

// TestBaseOutcomeGobRoundTrip pins the base-snapshot encoding: the decoded
// outcome must drive an incremental ECO to the exact result the live
// retained state produces, with the per-run scaffolding (progress closures,
// fault registry) stripped rather than breaking the encoder.
func TestBaseOutcomeGobRoundTrip(t *testing.T) {
	rv := directMetrics(t, &Request{Design: "C1"}, KindSynthesize)
	opt := rv.opt
	opt.RetainECO = true
	// A live registry in the retained options must not poison the snapshot:
	// encode strips it (it is process-local test equipment).
	reg, err := fault.Parse("error@core.route:nth=1000000", 1)
	if err != nil {
		t.Fatal(err)
	}
	opt.Faults = reg
	base, err := core.Synthesize(rv.root, rv.sinks, rv.tc, opt)
	if err != nil {
		t.Fatal(err)
	}

	payload, err := encodeBaseOutcome(base)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	decoded, err := decodeBaseOutcome(payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if decoded.Retained.Opt.Faults != nil || decoded.Retained.Opt.Progress != nil {
		t.Error("per-run scaffolding survived the round trip")
	}
	if decoded.Metrics.Latency != base.Metrics.Latency || decoded.Metrics.Skew != base.Metrics.Skew {
		t.Fatalf("metrics changed in the round trip: %+v vs %+v", decoded.Metrics, base.Metrics)
	}

	// The decisive check: the same delta applied to the live state and to
	// the round-tripped snapshot must produce identical metrics.
	delta := DeltaSpec{Move: []MoveSpec{{Sink: 0, X: 55, Y: 55}}}
	d, err := delta.toDelta()
	if err != nil {
		t.Fatal(err)
	}
	fromLive, err := core.SynthesizeECO(base, d, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fromSnapshot, err := core.SynthesizeECO(decoded, d, core.Options{})
	if err != nil {
		t.Fatalf("eco over the decoded snapshot: %v", err)
	}
	if fromLive.Metrics.Latency != fromSnapshot.Metrics.Latency ||
		fromLive.Metrics.Skew != fromSnapshot.Metrics.Skew ||
		fromLive.Metrics.Buffers != fromSnapshot.Metrics.Buffers ||
		fromLive.Metrics.WL != fromSnapshot.Metrics.WL {
		t.Errorf("eco diverged: live %+v vs snapshot %+v", fromLive.Metrics, fromSnapshot.Metrics)
	}

	// An empty or truncated snapshot reports as an error, never a nil deref.
	if _, err := decodeBaseOutcome(nil); err == nil {
		t.Error("empty snapshot decoded")
	}
	if _, err := decodeBaseOutcome(payload[:len(payload)/2]); err == nil {
		t.Error("truncated snapshot decoded")
	}
}
