package serve

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// ErrQuota is returned by Submit when the tenant already has its full
// admission quota of jobs outstanding; the HTTP layer maps it to 429 with
// a Retry-After hint.
var ErrQuota = errors.New("serve: tenant admission quota exceeded")

// QoSClass configures one priority class of the job queue. Weights set the
// fair-share ratio between backlogged classes: a weight-3 class is
// dispatched three pending jobs for every one of a weight-1 class, and its
// share of the running slots is bounded proportionally (floored at one
// slot so no configured class can starve outright).
type QoSClass struct {
	Name   string `json:"name"`
	Weight int    `json:"weight"`
}

// DefaultQoSClasses is the class set used when Config.QoSClasses is empty:
// latency-sensitive interactive traffic at 3× the weight of bulk batch
// work. The FIRST class is the default for requests that name none.
func DefaultQoSClasses() []QoSClass {
	return []QoSClass{{Name: "interactive", Weight: 3}, {Name: "batch", Weight: 1}}
}

// ParseQoSClasses parses a "name:weight,name:weight" flag value (e.g.
// "interactive:3,batch:1") into a class set; the first entry is the
// default class.
func ParseQoSClasses(s string) ([]QoSClass, error) {
	if strings.TrimSpace(s) == "" {
		return DefaultQoSClasses(), nil
	}
	var out []QoSClass
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		name, weightStr, ok := strings.Cut(strings.TrimSpace(part), ":")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return nil, fmt.Errorf("bad qos class %q (want name:weight)", part)
		}
		w, err := strconv.Atoi(strings.TrimSpace(weightStr))
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("bad qos weight in %q (want a positive integer)", part)
		}
		if seen[name] {
			return nil, fmt.Errorf("duplicate qos class %q", name)
		}
		seen[name] = true
		out = append(out, QoSClass{Name: name, Weight: w})
	}
	return out, nil
}

// classState is one class's scheduler-side state. The atomics are exported
// through /metrics as closures (classes are fixed at startup, so per-class
// instruments register once); everything else is guarded by the
// scheduler's mutex.
type classState struct {
	name   string
	weight int
	// share is the class's running-slot budget: its weight-proportional
	// slice of MaxRunning, floored at one. Shares bind only under
	// contention — a lone backlogged class takes every slot (the scheduler
	// is work-conserving).
	share int
	// vtime is the class's weighted virtual time: incremented by 1/weight
	// per dispatch, so picking the lowest-vtime backlogged class yields
	// weighted fair queuing across classes.
	vtime   float64
	pending int
	running int
	// tenants holds this class's per-tenant FIFOs; ring is the round-robin
	// order over tenants with pending jobs, so one chatty tenant cannot
	// starve others inside its class.
	tenants map[string][]*Job
	ring    []string
	next    int

	dispatched  atomic.Int64
	doneCt      atomic.Int64
	failedCt    atomic.Int64
	cancelledCt atomic.Int64
}

// qosScheduler is the pending set of the job queue: bounded like the old
// channel, but dispatch-ordered by weighted fair share across classes and
// round-robin across tenants inside a class, with per-tenant admission
// quotas. All methods are safe for concurrent use.
type qosScheduler struct {
	mu       sync.Mutex
	cond     *sync.Cond
	capacity int
	quota    int // per-tenant outstanding cap; 0 = unlimited
	size     int
	closed   bool
	// vclock is the virtual time of the most recent dispatch; a class
	// waking from idle is advanced to it so banked idle time cannot buy a
	// monopoly over currently-backlogged classes.
	vclock  float64
	classes []*classState
	byName  map[string]*classState
	// tenants counts each tenant's outstanding jobs (queued or running)
	// for quota admission.
	tenants map[string]int
}

func newQoSScheduler(classes []QoSClass, capacity, maxRunning, quota int) *qosScheduler {
	if len(classes) == 0 {
		classes = DefaultQoSClasses()
	}
	s := &qosScheduler{
		capacity: capacity,
		quota:    quota,
		byName:   map[string]*classState{},
		tenants:  map[string]int{},
	}
	s.cond = sync.NewCond(&s.mu)
	total := 0
	for _, c := range classes {
		total += c.Weight
	}
	for _, c := range classes {
		share := c.Weight * maxRunning / total
		if share < 1 {
			share = 1
		}
		cs := &classState{
			name: c.Name, weight: c.Weight, share: share,
			tenants: map[string][]*Job{},
		}
		s.classes = append(s.classes, cs)
		s.byName[c.Name] = cs
	}
	return s
}

// defaultClass is the class assigned to requests that name none.
func (s *qosScheduler) defaultClass() string { return s.classes[0].name }

// lookup resolves a request's class name ("" = default).
func (s *qosScheduler) lookup(name string) (*classState, bool) {
	if name == "" {
		return s.classes[0], true
	}
	c, ok := s.byName[name]
	return c, ok
}

// push admits a job to its class/tenant queue. Errors: ErrQueueFull past
// capacity, ErrQuota past the tenant's outstanding cap, ErrClosed after
// close.
func (s *qosScheduler) push(job *Job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.size >= s.capacity {
		return ErrQueueFull
	}
	if s.quota > 0 && s.tenants[job.tenant] >= s.quota {
		return ErrQuota
	}
	c := s.byName[job.class]
	if c.pending == 0 {
		// Waking from idle: catch the class's virtual time up to the
		// clock so it competes from now, not from its idle past.
		if c.vtime < s.vclock {
			c.vtime = s.vclock
		}
	}
	if len(c.tenants[job.tenant]) == 0 {
		c.ring = append(c.ring, job.tenant)
	}
	c.tenants[job.tenant] = append(c.tenants[job.tenant], job)
	c.pending++
	s.size++
	s.tenants[job.tenant]++
	s.cond.Signal()
	return nil
}

// next blocks until a job is dispatchable and returns it, or returns nil
// once the scheduler is closed. Class choice: the lowest-vtime backlogged
// class among those under their running-slot share; if every backlogged
// class is at or over its share, the lowest-vtime one anyway (work
// conservation — idle slots are never held back for a class with nothing
// queued). Within the class, tenants are served round-robin.
func (s *qosScheduler) next() *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.size == 0 && !s.closed {
		s.cond.Wait()
	}
	if s.closed {
		return nil
	}
	c := s.pickClass()
	job := c.popTenantRR()
	c.pending--
	s.size--
	c.running++
	c.vtime += 1 / float64(c.weight)
	s.vclock = c.vtime
	c.dispatched.Add(1)
	return job
}

func (s *qosScheduler) pickClass() *classState {
	var best *classState
	for _, c := range s.classes {
		if c.pending > 0 && c.running < c.share && (best == nil || c.vtime < best.vtime) {
			best = c
		}
	}
	if best == nil {
		for _, c := range s.classes {
			if c.pending > 0 && (best == nil || c.vtime < best.vtime) {
				best = c
			}
		}
	}
	return best
}

// popTenantRR dequeues the next tenant's oldest job, advancing the
// round-robin ring; called with the scheduler lock held and pending > 0.
func (c *classState) popTenantRR() *Job {
	i := c.next % len(c.ring)
	tn := c.ring[i]
	q := c.tenants[tn]
	job := q[0]
	if len(q) == 1 {
		delete(c.tenants, tn)
		c.ring = append(c.ring[:i], c.ring[i+1:]...)
		if len(c.ring) > 0 {
			c.next = i % len(c.ring)
		} else {
			c.next = 0
		}
	} else {
		c.tenants[tn] = q[1:]
		c.next = (i + 1) % len(c.ring)
	}
	return job
}

// release returns a dispatched job's running slot and tenant-quota unit;
// called exactly once per dispatched job, after its run ends (the watchdog
// abandoning the BODY still frees the slot — the runner moved on).
func (s *qosScheduler) release(job *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c := s.byName[job.class]; c != nil {
		c.running--
	}
	s.decTenant(job.tenant)
}

func (s *qosScheduler) decTenant(tenant string) {
	if n := s.tenants[tenant]; n <= 1 {
		delete(s.tenants, tenant)
	} else {
		s.tenants[tenant] = n - 1
	}
}

// close wakes every blocked next() with a nil dispatch; pending jobs stay
// queued for drain.
func (s *qosScheduler) close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

// drain empties every class queue (quota units released) and returns the
// never-dispatched jobs for the caller to finish as cancelled.
func (s *qosScheduler) drain() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*Job
	for _, c := range s.classes {
		for tn, q := range c.tenants {
			for _, job := range q {
				s.decTenant(job.tenant)
				out = append(out, job)
			}
			delete(c.tenants, tn)
		}
		c.ring, c.next, c.pending = nil, 0, 0
	}
	s.size = 0
	return out
}

// Len is the pending-job count; Full reports whether the next push would
// be rejected with ErrQueueFull.
func (s *qosScheduler) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

func (s *qosScheduler) Full() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size >= s.capacity
}

func (s *qosScheduler) pendingOf(c *classState) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return c.pending
}

func (s *qosScheduler) runningOf(c *classState) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return c.running
}

// observeTerminal feeds a job's terminal state into its class counters
// (cache hits included: they carry a class even though they never queue).
func (s *qosScheduler) observeTerminal(job *Job, state JobState) {
	c := s.byName[job.class]
	if c == nil {
		return
	}
	switch state {
	case StateDone:
		c.doneCt.Add(1)
	case StateFailed:
		c.failedCt.Add(1)
	case StateCancelled:
		c.cancelledCt.Add(1)
	}
}

// ClassStats is one QoS class's snapshot in GET /stats.
type ClassStats struct {
	Name   string `json:"name"`
	Weight int    `json:"weight"`
	// Share is the class's running-slot budget under contention.
	Share      int   `json:"share"`
	Pending    int   `json:"pending"`
	Running    int   `json:"running"`
	Dispatched int64 `json:"dispatched"`
	Done       int64 `json:"done"`
	Failed     int64 `json:"failed,omitempty"`
	Cancelled  int64 `json:"cancelled,omitempty"`
}

// TenantStats is one tenant's snapshot in GET /stats.
type TenantStats struct {
	Submitted int64 `json:"submitted"`
	Done      int64 `json:"done"`
	Failed    int64 `json:"failed,omitempty"`
	Cancelled int64 `json:"cancelled,omitempty"`
	// RejectedQuota counts this tenant's submissions rejected by the
	// admission quota.
	RejectedQuota int64 `json:"rejected_quota,omitempty"`
	// Outstanding is the tenant's jobs currently queued or running.
	Outstanding int `json:"outstanding,omitempty"`
}

// QoSStats is the qos section of GET /stats.
type QoSStats struct {
	DefaultClass string `json:"default_class"`
	// TenantQuota is the per-tenant outstanding-job cap (0 = unlimited).
	TenantQuota int                    `json:"tenant_quota,omitempty"`
	Classes     []ClassStats           `json:"classes"`
	Tenants     map[string]TenantStats `json:"tenants,omitempty"`
}

// snapshot renders the scheduler's per-class state for /stats.
func (s *qosScheduler) snapshot() []ClassStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ClassStats, len(s.classes))
	for i, c := range s.classes {
		out[i] = ClassStats{
			Name: c.name, Weight: c.weight, Share: c.share,
			Pending: c.pending, Running: c.running,
			Dispatched: c.dispatched.Load(),
			Done:       c.doneCt.Load(),
			Failed:     c.failedCt.Load(),
			Cancelled:  c.cancelledCt.Load(),
		}
	}
	return out
}

func (s *qosScheduler) outstandingOf(tenant string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tenants[tenant]
}

// tenantCounters are the per-tenant terminal counters the queue maintains
// outside the scheduler (tenants are dynamic, so these live in a bounded
// map rendered into /stats, not in static /metrics families).
type tenantCounters struct {
	submitted, done, failed, cancelled, quota int64
}

// maxTenantEntries bounds the per-tenant stats map; past it, new tenants
// aggregate under tenantOverflow so an open X-Tenant header cannot grow
// server memory without bound.
const (
	maxTenantEntries = 256
	tenantOverflow   = "(other)"
)

// tenantTable is the bounded per-tenant counter map.
type tenantTable struct {
	mu  sync.Mutex
	cts map[string]*tenantCounters
}

func newTenantTable() *tenantTable {
	return &tenantTable{cts: map[string]*tenantCounters{}}
}

func (t *tenantTable) get(tenant string) *tenantCounters {
	c, ok := t.cts[tenant]
	if !ok {
		if len(t.cts) >= maxTenantEntries {
			tenant = tenantOverflow
			if c = t.cts[tenant]; c != nil {
				return c
			}
		}
		c = &tenantCounters{}
		t.cts[tenant] = c
	}
	return c
}

func (t *tenantTable) submitted(tenant string) {
	t.mu.Lock()
	t.get(tenant).submitted++
	t.mu.Unlock()
}

func (t *tenantTable) quotaRejected(tenant string) {
	t.mu.Lock()
	t.get(tenant).quota++
	t.mu.Unlock()
}

func (t *tenantTable) terminal(tenant string, state JobState) {
	t.mu.Lock()
	c := t.get(tenant)
	switch state {
	case StateDone:
		c.done++
	case StateFailed:
		c.failed++
	case StateCancelled:
		c.cancelled++
	}
	t.mu.Unlock()
}

// snapshot renders the table for /stats, with live outstanding counts from
// the scheduler, in stable (sorted) tenant order for test and diff
// friendliness.
func (t *tenantTable) snapshot(s *qosScheduler) map[string]TenantStats {
	t.mu.Lock()
	names := make([]string, 0, len(t.cts))
	for n := range t.cts {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make(map[string]TenantStats, len(names))
	for _, n := range names {
		c := t.cts[n]
		out[n] = TenantStats{
			Submitted: c.submitted, Done: c.done, Failed: c.failed,
			Cancelled: c.cancelled, RejectedQuota: c.quota,
			Outstanding: s.outstandingOf(n),
		}
	}
	t.mu.Unlock()
	if len(out) == 0 {
		return nil
	}
	return out
}
