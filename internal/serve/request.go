// Package serve turns the synthesis library into a multi-tenant service: a
// bounded job queue with admission control and per-job worker budgets, a
// content-addressed result cache with LRU eviction and hit/miss metrics,
// and an HTTP JSON API (POST /synthesize, POST /dse, GET /jobs/{id},
// GET /healthz, GET /stats) with NDJSON progress streaming. The cmd/dsctsd
// daemon wires it to a listener; Client is the matching Go client.
//
// Because the engine is deterministic in its worker count, the service can
// shrink or grow a job's worker budget freely — every admitted job returns
// Metrics bit-identical to a direct core.Synthesize call, and identical
// requests are served from the cache.
package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"math"

	"dscts/internal/bench"
	"dscts/internal/core"
	"dscts/internal/corner"
	"dscts/internal/eco"
	"dscts/internal/geom"
	"dscts/internal/partition"
	"dscts/internal/tech"
)

// XY is a JSON-friendly planar point (µm).
type XY struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// OptionsSpec is the JSON view of the synthesis options a request may set.
// It deliberately excludes the worker count: concurrency is a service
// scheduling concern (per-job budgets), never part of the result identity —
// the engine produces bit-identical Metrics for every worker count.
type OptionsSpec struct {
	// Mode is "double" (default) or "single".
	Mode string `json:"mode,omitempty"`
	// FanoutThreshold configures the heterogeneous DP (0 = full mode).
	FanoutThreshold int `json:"fanout_threshold,omitempty"`
	// Alpha, Beta, Gamma are the MOES weights; all-zero means the paper's
	// 1, 10, 1.
	Alpha float64 `json:"alpha,omitempty"`
	Beta  float64 `json:"beta,omitempty"`
	Gamma float64 `json:"gamma,omitempty"`
	// SkipRefine disables skew refinement.
	SkipRefine bool `json:"skip_refine,omitempty"`
	// SelectMinLatency picks the minimum-latency root instead of MOES.
	SelectMinLatency bool `json:"select_min_latency,omitempty"`
	// DiversePruning widens DP pruning with the resource axis.
	DiversePruning bool `json:"diverse_pruning,omitempty"`
	// MaxPerSide caps the DP solution set per side (0 = default).
	MaxPerSide int `json:"max_per_side,omitempty"`
	// UseFlatDME replaces hierarchical DME with matching-based DME.
	UseFlatDME bool `json:"use_flat_dme,omitempty"`
	// PartitionMaxSinks enables the partition-parallel pipeline with the
	// given region capacity (0 = monolithic flow). Region work streams as
	// "partition"/"stitch" phase events.
	PartitionMaxSinks int `json:"partition_max_sinks,omitempty"`
	// PartitionStrategy selects the region cut scheme ("kd" default,
	// "grid"); only meaningful with PartitionMaxSinks > 0.
	PartitionStrategy string `json:"partition_strategy,omitempty"`
}

// Request is the body of POST /synthesize and POST /dse. The instance is
// either a named built-in benchmark (Design, Seed) or an explicit placement
// (Root, Sinks); exactly one form must be given.
type Request struct {
	// Design names a built-in Table II benchmark (C1..C5 or name).
	Design string `json:"design,omitempty"`
	// Seed is the benchmark generation seed (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Root and Sinks give an explicit placement instead of Design.
	Root  *XY  `json:"root,omitempty"`
	Sinks []XY `json:"sinks,omitempty"`
	// XLSinks names a synthetic mega-scale placement with this many sinks
	// (bench.GenerateXL, seeded by Seed) — the placement is generated
	// server-side at execution, so million-sink jobs need no million-point
	// request body. Mutually exclusive with Design and Root/Sinks.
	XLSinks int `json:"xl_sinks,omitempty"`
	// Tech selects the technology ("asap7" is the default and currently
	// the only one).
	Tech string `json:"tech,omitempty"`
	// Options carries the synthesis knobs.
	Options OptionsSpec `json:"options"`
	// Corners names the PVT corners for multi-corner sign-off ("slow",
	// "typ", "fast"); empty means single-corner (typical) evaluation
	// only. Order matters for the response layout, and the set is part of
	// the result identity (the cache key).
	Corners []string `json:"corners,omitempty"`
	// Thresholds is the fanout sweep for POST /dse (ignored by
	// /synthesize).
	Thresholds []int `json:"thresholds,omitempty"`
	// Delta is the engineering change order of POST /eco: the rest of the
	// request describes the BASE synthesis (resolved through the
	// content-addressed base cache, or synthesized on a miss), and the
	// delta is applied incrementally on top. Required for /eco, rejected
	// everywhere else.
	Delta *DeltaSpec `json:"delta,omitempty"`
	// IncludeSinkDelays asks the response to carry the per-sink delay map
	// (it is large; off by default). Never part of the cache identity.
	IncludeSinkDelays bool `json:"include_sink_delays,omitempty"`
	// TimeoutMS bounds this job's RUNNING wall-clock in milliseconds. It can
	// only shorten the service-wide Config.JobTimeout, never extend it; 0
	// means the service default. A deadline-exceeded job fails with HTTP
	// 504. A scheduling knob: never part of the cache identity.
	TimeoutMS float64 `json:"timeout_ms,omitempty"`
	// Tenant names the submitting tenant for QoS accounting and per-tenant
	// admission quotas. Mirrors the X-Tenant HTTP header (the body field
	// wins when both are set); empty means the "default" tenant. A
	// scheduling knob: never part of the cache identity — tenants share the
	// content-addressed result cache by design.
	Tenant string `json:"tenant,omitempty"`
	// Class selects the QoS class ("interactive" or "batch" with the
	// default configuration; -qos-classes redefines the set). Empty means
	// the first configured class. Classes shape scheduling order and worker
	// shares only — never the result — so this is a scheduling knob,
	// excluded from the cache identity.
	Class string `json:"class,omitempty"`
	// IdempotencyKey deduplicates submissions: while the key is retained,
	// resubmitting it returns the ORIGINAL job instead of running the work
	// again, making client retries of lost POST responses safe. Mirrors the
	// Idempotency-Key HTTP header (the body field wins when both are set).
	// Keys are caller-chosen opaque strings scoped to the daemon instance.
	// A scheduling knob: never part of the cache identity.
	IdempotencyKey string `json:"idempotency_key,omitempty"`

	// reqID is the HTTP request ID that carried the submission, stamped by
	// the server for log correlation. Unexported: invisible to JSON and
	// never part of the cache identity.
	reqID string
}

// MoveSpec relocates one base-placement sink (JSON view of eco.Move).
type MoveSpec struct {
	Sink int     `json:"sink"`
	X    float64 `json:"x"`
	Y    float64 `json:"y"`
}

// DeltaSpec is the JSON view of an engineering change order. Sink indices
// refer to the BASE placement (benchmark generation order, or the request's
// sink list order).
type DeltaSpec struct {
	// Add appends new sinks.
	Add []XY `json:"add,omitempty"`
	// Move relocates base sinks.
	Move []MoveSpec `json:"move,omitempty"`
	// Remove drops base sinks by index.
	Remove []int `json:"remove,omitempty"`
	// Corners, when non-empty, replaces the base run's sign-off corner set
	// (a corner change never dirties the tree).
	Corners []string `json:"corners,omitempty"`
}

// toDelta resolves the spec against the built-in corner presets.
func (d *DeltaSpec) toDelta() (eco.Delta, error) {
	var out eco.Delta
	for _, p := range d.Add {
		out.Add = append(out.Add, geom.Pt(p.X, p.Y))
	}
	for _, m := range d.Move {
		out.Move = append(out.Move, eco.Move{Sink: m.Sink, To: geom.Pt(m.X, m.Y)})
	}
	out.Remove = d.Remove
	for _, name := range d.Corners {
		c, err := corner.ByName(name)
		if err != nil {
			return eco.Delta{}, err
		}
		out.SetCorners = append(out.SetCorners, c)
	}
	if len(out.SetCorners) > 0 {
		if err := corner.ValidateSet(out.SetCorners); err != nil {
			return eco.Delta{}, err
		}
	}
	return out, nil
}

// resolved is a validated request, ready to execute.
type resolved struct {
	design string
	root   geom.Point
	sinks  []geom.Point
	tc     *tech.Tech
	opt    core.Options
}

// validate checks everything resolve checks without materializing the
// placement — benchmark generation is the expensive part of a request and
// is deferred to job execution, so cache hits and queue-full rejections
// never pay it. It returns the canonical design label (benchmark ID or
// "custom") and the sink count. A request that validates cannot fail to
// resolve.
func (r *Request) validate(kind string) (design string, sinks int, err error) {
	forms := 0
	if r.Design != "" {
		forms++
	}
	if r.Root != nil || len(r.Sinks) > 0 {
		forms++
	}
	if r.XLSinks != 0 {
		forms++
	}
	if forms > 1 {
		return "", 0, fmt.Errorf("give exactly one of design, root+sinks or xl_sinks")
	}
	switch {
	case r.Design != "":
		d, err := bench.ByID(r.Design)
		if err != nil {
			return "", 0, err
		}
		design, sinks = d.ID, d.FFs
	case r.XLSinks != 0:
		if r.XLSinks < 0 {
			return "", 0, fmt.Errorf("xl_sinks must be positive, got %d", r.XLSinks)
		}
		design, sinks = bench.XLDesign(r.XLSinks).ID, r.XLSinks
	case r.Root != nil && len(r.Sinks) > 0:
		design, sinks = "custom", len(r.Sinks)
	default:
		return "", 0, fmt.Errorf("request needs a design, a root plus sinks, or xl_sinks")
	}
	if r.Options.PartitionMaxSinks < 0 {
		return "", 0, fmt.Errorf("partition_max_sinks must be >= 0, got %d", r.Options.PartitionMaxSinks)
	}
	if err := (partition.Options{MaxSinks: r.Options.PartitionMaxSinks, Strategy: r.Options.PartitionStrategy}).Validate(); err != nil {
		return "", 0, err
	}
	switch r.Tech {
	case "", "asap7":
	default:
		return "", 0, fmt.Errorf("unknown tech %q", r.Tech)
	}
	switch r.Options.Mode {
	case "", "double", "single":
	default:
		return "", 0, fmt.Errorf("unknown mode %q (want \"double\" or \"single\")", r.Options.Mode)
	}
	if len(r.Corners) > 0 {
		if _, err := r.corners(); err != nil {
			return "", 0, err
		}
	}
	if kind == KindDSE {
		if len(r.Thresholds) == 0 {
			return "", 0, fmt.Errorf("dse request needs thresholds")
		}
		for _, th := range r.Thresholds {
			if th <= 0 {
				return "", 0, fmt.Errorf("thresholds must be positive, got %d", th)
			}
		}
	}
	if r.TimeoutMS < 0 {
		return "", 0, fmt.Errorf("timeout_ms must be >= 0, got %g", r.TimeoutMS)
	}
	if r.Delta != nil && kind != KindECO {
		return "", 0, fmt.Errorf("delta is only valid for eco requests")
	}
	if kind == KindECO {
		if r.Delta == nil {
			return "", 0, fmt.Errorf("eco request needs a delta")
		}
		d, err := r.Delta.toDelta()
		if err != nil {
			return "", 0, err
		}
		if err := d.Validate(sinks); err != nil {
			return "", 0, err
		}
		// Admission control sizes the job by the post-delta placement.
		sinks += len(r.Delta.Add) - len(r.Delta.Remove)
	}
	return design, sinks, nil
}

// resolve validates the request for the given job kind and materializes the
// placement, technology and options.
func (r *Request) resolve(kind string) (*resolved, error) {
	design, _, err := r.validate(kind)
	if err != nil {
		return nil, err
	}
	out := &resolved{design: design, tc: tech.ASAP7()}
	// Macro blockages of a generated placement feed the partition cut-line
	// chooser below, matching what the CLI passes for the same design —
	// they are a pure function of (design, seed), both already in the
	// cache key.
	var macros []geom.BBox
	if r.Design != "" || r.XLSinks > 0 {
		seed := r.Seed
		if seed == 0 {
			seed = 1
		}
		var p *bench.Placement
		if r.XLSinks > 0 {
			p, err = bench.GenerateXL(r.XLSinks, seed)
		} else {
			var d bench.Design
			d, err = bench.ByID(r.Design)
			if err != nil {
				return nil, err
			}
			p, err = bench.Generate(d, seed)
		}
		if err != nil {
			return nil, err
		}
		out.root, out.sinks = p.Root, p.Sinks
		macros = p.Macros
	} else {
		out.root = geom.Pt(r.Root.X, r.Root.Y)
		out.sinks = make([]geom.Point, len(r.Sinks))
		for i, s := range r.Sinks {
			out.sinks[i] = geom.Pt(s.X, s.Y)
		}
	}
	o := r.Options
	if o.Mode == "single" {
		out.opt.Mode = core.SingleSide
	}
	out.opt.FanoutThreshold = o.FanoutThreshold
	out.opt.Alpha, out.opt.Beta, out.opt.Gamma = o.Alpha, o.Beta, o.Gamma
	out.opt.SkipRefine = o.SkipRefine
	out.opt.SelectMinLatency = o.SelectMinLatency
	out.opt.DiversePruning = o.DiversePruning
	out.opt.MaxPerSide = o.MaxPerSide
	out.opt.UseFlatDME = o.UseFlatDME
	out.opt.Partition = partition.Options{MaxSinks: o.PartitionMaxSinks, Strategy: o.PartitionStrategy, Macros: macros}
	if len(r.Corners) > 0 {
		cs, err := r.corners()
		if err != nil {
			return nil, err
		}
		out.opt.Corners = cs
	}
	return out, nil
}

// corners resolves the request's corner names against the built-in
// presets, rejecting unknowns and duplicates.
func (r *Request) corners() ([]corner.Corner, error) {
	out := make([]corner.Corner, len(r.Corners))
	seen := map[string]bool{}
	for i, name := range r.Corners {
		c, err := corner.ByName(name)
		if err != nil {
			return nil, err
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("duplicate corner %q", c.Name)
		}
		seen[c.Name] = true
		out[i] = c
	}
	return out, nil
}

// requestKeyVersion tags the canonical request encoding hashed by Key.
// The encoding is versioned precisely so that ADDING a field can never
// alias an old cache entry: every field that determines the result —
// including zero values, with an explicit count before every variable-
// length section — is always encoded, and any change to the field set or
// their meaning MUST bump this version. v1 predates corners and the
// evaluation-model tag; v2 appends both unconditionally; v3 appends the
// XL-placement selector and the partition options unconditionally; v4
// appends the ECO delta section (add/move/remove/corner-replace)
// unconditionally, so a delta-carrying request can never alias its base.
const requestKeyVersion = "dscts-request-v4"

// evalModel names the delay model the engine evaluates results with. It
// is part of the canonical encoding so that a future model switch (e.g.
// NLDM sign-off results) cannot collide with Elmore-evaluated entries.
const evalModel = "elmore"

// Key returns the content address of the request for the given job kind: a
// hex SHA-256 over a canonical versioned binary encoding of everything
// that determines the result — the placement (by benchmark identity or
// exact coordinate bits), the technology name, the evaluation model, the
// option fields, the corner set and, for DSE, the threshold sweep.
// Scheduling knobs (worker budgets, TimeoutMS, IdempotencyKey, Tenant,
// Class) and response-shape knobs (IncludeSinkDelays) are excluded, so
// requests differing only in those share one cache entry.
func (r *Request) Key(kind string) string {
	h := sha256.New()
	ws := func(s string) {
		binary.Write(h, binary.LittleEndian, uint32(len(s)))
		io.WriteString(h, s)
	}
	wi := func(v int64) { binary.Write(h, binary.LittleEndian, v) }
	wf := func(v float64) { binary.Write(h, binary.LittleEndian, math.Float64bits(v)) }
	wb := func(v bool) {
		if v {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	ws(requestKeyVersion)
	ws(kind)
	ws(evalModel)
	tc := r.Tech
	if tc == "" {
		tc = "asap7"
	}
	ws(tc)
	if r.XLSinks > 0 {
		ws("xl")
		wi(int64(r.XLSinks))
		seed := r.Seed
		if seed == 0 {
			seed = 1
		}
		wi(seed)
	} else if r.Design != "" {
		ws("design")
		// Canonicalize: bench.ByID accepts both the ID and the name, and
		// both spellings must share one cache entry.
		name := r.Design
		if d, err := bench.ByID(r.Design); err == nil {
			name = d.ID
		}
		ws(name)
		seed := r.Seed
		if seed == 0 {
			seed = 1
		}
		wi(seed)
	} else {
		ws("explicit")
		if r.Root != nil {
			wf(r.Root.X)
			wf(r.Root.Y)
		}
		wi(int64(len(r.Sinks)))
		for _, s := range r.Sinks {
			wf(s.X)
			wf(s.Y)
		}
	}
	o := r.Options
	ws(o.Mode)
	wi(int64(o.FanoutThreshold))
	wf(o.Alpha)
	wf(o.Beta)
	wf(o.Gamma)
	wb(o.SkipRefine)
	wb(o.SelectMinLatency)
	wb(o.DiversePruning)
	wi(int64(o.MaxPerSide))
	wb(o.UseFlatDME)
	// The partition section is always encoded (zeros when absent): the
	// options change the synthesized tree, so they are part of the result
	// identity. The strategy string is canonicalized to "kd" when empty.
	wi(int64(o.PartitionMaxSinks))
	strat := o.PartitionStrategy
	if strat == "" {
		strat = "kd"
	}
	ws(strat)
	// The corner section is always encoded (count 0 when absent), and
	// names are canonicalized through ByName so "SLOW" and "slow" share
	// an entry. Unresolvable names hash as given; such requests never
	// reach execution (validate rejects them), so no result is stored
	// under those keys.
	wi(int64(len(r.Corners)))
	for _, name := range r.Corners {
		if c, err := corner.ByName(name); err == nil {
			name = c.Name
		}
		ws(name)
	}
	// The delta section is always encoded (zero counts when absent): the
	// job kind already separates /eco from /synthesize, and the explicit
	// counts keep any combination of delta fields prefix-free against the
	// corner and threshold sections around it.
	var dl DeltaSpec
	if r.Delta != nil {
		dl = *r.Delta
	}
	wi(int64(len(dl.Add)))
	for _, p := range dl.Add {
		wf(p.X)
		wf(p.Y)
	}
	wi(int64(len(dl.Move)))
	for _, m := range dl.Move {
		wi(int64(m.Sink))
		wf(m.X)
		wf(m.Y)
	}
	wi(int64(len(dl.Remove)))
	for _, s := range dl.Remove {
		wi(int64(s))
	}
	wi(int64(len(dl.Corners)))
	for _, name := range dl.Corners {
		if c, err := corner.ByName(name); err == nil {
			name = c.Name
		}
		ws(name)
	}
	if kind == KindDSE {
		wi(int64(len(r.Thresholds)))
		for _, th := range r.Thresholds {
			wi(int64(th))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
