package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// Client is a small Go client for the dsctsd HTTP API.
type Client struct {
	// Base is the server base URL, e.g. "http://127.0.0.1:8577".
	Base string
	// HTTP is the underlying client; nil means http.DefaultClient.
	HTTP *http.Client
}

// NewClient returns a Client for the given base URL.
func NewClient(base string) *Client { return &Client{Base: base} }

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// apiError is the decoded JSON error envelope of a non-2xx response.
type apiError struct {
	Status int
	Msg    string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("serve: HTTP %d: %s", e.Status, e.Msg)
}

func decodeErr(resp *http.Response) error {
	var body struct {
		Error string `json:"error"`
	}
	msg := resp.Status
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&body); err == nil && body.Error != "" {
		msg = body.Error
	}
	return &apiError{Status: resp.StatusCode, Msg: msg}
}

func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeErr(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Synthesize runs req synchronously and returns the finished job snapshot.
func (c *Client) Synthesize(ctx context.Context, req *Request) (*JobInfo, error) {
	var info JobInfo
	if err := c.do(ctx, http.MethodPost, "/synthesize?mode=sync", req, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// DSE runs a fanout sweep synchronously.
func (c *Client) DSE(ctx context.Context, req *Request) (*JobInfo, error) {
	var info JobInfo
	if err := c.do(ctx, http.MethodPost, "/dse?mode=sync", req, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// ECO applies req.Delta incrementally against the base described by the
// rest of req, synchronously.
func (c *Client) ECO(ctx context.Context, req *Request) (*JobInfo, error) {
	var info JobInfo
	if err := c.do(ctx, http.MethodPost, "/eco?mode=sync", req, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// SubmitAsync enqueues req (kind KindSynthesize, KindDSE or KindECO) and
// returns the queued job snapshot immediately; poll Job for completion.
func (c *Client) SubmitAsync(ctx context.Context, kind string, req *Request) (*JobInfo, error) {
	var info JobInfo
	if err := c.do(ctx, http.MethodPost, "/"+kind+"?mode=async", req, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Stream submits req and follows its NDJSON progress stream, calling fn for
// every event. It returns the terminal event's result-bearing job snapshot
// reconstructed from the stream. Cancelling ctx aborts the stream, which
// cancels the job server-side.
func (c *Client) Stream(ctx context.Context, kind string, req *Request, fn func(Event)) (*Event, error) {
	data, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/"+kind+"?mode=stream", bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, decodeErr(resp)
	}
	dec := json.NewDecoder(resp.Body)
	var last Event
	for {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			if err == io.EOF {
				break
			}
			return nil, err
		}
		last = ev
		if fn != nil {
			fn(ev)
		}
	}
	switch last.Event {
	case string(StateDone), string(StateFailed), string(StateCancelled):
		return &last, nil
	case "":
		return nil, fmt.Errorf("serve: empty event stream")
	default:
		return nil, fmt.Errorf("serve: stream ended without a terminal event (last %q)", last.Event)
	}
}

// Job fetches a job snapshot by ID.
func (c *Client) Job(ctx context.Context, id string) (*JobInfo, error) {
	var info JobInfo
	if err := c.do(ctx, http.MethodGet, "/jobs/"+id, nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Cancel stops a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) (*JobInfo, error) {
	var info JobInfo
	if err := c.do(ctx, http.MethodPost, "/jobs/"+id+"/cancel", nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Stats fetches the queue and cache counters.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	var st Stats
	if err := c.do(ctx, http.MethodGet, "/stats", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Health checks GET /healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}
