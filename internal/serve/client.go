package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// DefaultClientTimeout bounds each non-streaming request end to end
// (including reading the response body) when Client.Timeout is zero. It is
// deliberately generous — a sync XL synthesis can legitimately run for
// minutes — while still guaranteeing that no call can hang forever the way
// the old default (http.DefaultClient, no timeout at all) could.
const DefaultClientTimeout = 15 * time.Minute

// DefaultMaxRetries is the retry budget for idempotent requests when
// Client.MaxRetries is zero.
const DefaultMaxRetries = 3

// DefaultRetryBackoff is the base backoff when Client.RetryBackoff is zero;
// attempt n waits base·2ⁿ with ±50% jitter, capped at maxRetryBackoff, and
// a server Retry-After hint always wins when it is longer.
const DefaultRetryBackoff = 100 * time.Millisecond

const maxRetryBackoff = 5 * time.Second

// Client is a small Go client for the dsctsd HTTP API.
//
// Retries: transient failures — connection errors, 429 Too Many Requests,
// 503 Service Unavailable — are retried with exponential backoff and
// jitter, honoring the server's Retry-After hint, but ONLY for requests
// that are safe to repeat: GETs, cancels, and submissions carrying an
// IdempotencyKey (the server dedups those onto the original job). An
// unkeyed POST is never retried: the response loss could mask a submission
// that actually ran.
type Client struct {
	// Base is the server base URL, e.g. "http://127.0.0.1:8577".
	Base string
	// HTTP is the underlying client; when set it is used as-is (its own
	// Timeout included) for non-streaming calls. nil builds one with
	// Timeout below.
	HTTP *http.Client
	// Timeout bounds each non-streaming request end to end when HTTP is
	// nil: 0 means DefaultClientTimeout, negative disables the bound.
	// Streaming requests are exempt — an NDJSON stream legitimately stays
	// open for the whole job — and are governed by their context instead.
	Timeout time.Duration
	// MaxRetries is the transient-failure retry budget for idempotent
	// requests: 0 means DefaultMaxRetries, negative disables retries.
	MaxRetries int
	// RetryBackoff is the base backoff; 0 means DefaultRetryBackoff.
	RetryBackoff time.Duration
}

// NewClient returns a Client for the given base URL.
func NewClient(base string) *Client { return &Client{Base: base} }

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	t := c.Timeout
	switch {
	case t == 0:
		t = DefaultClientTimeout
	case t < 0:
		t = 0
	}
	return &http.Client{Timeout: t}
}

// streamHTTP is the client for NDJSON streams: no overall timeout (the
// stream lives as long as the job; ctx cancels it), sharing the configured
// transport when one was given.
func (c *Client) streamHTTP() *http.Client {
	if c.HTTP != nil {
		return &http.Client{Transport: c.HTTP.Transport}
	}
	return &http.Client{}
}

// apiError is the decoded JSON error envelope of a non-2xx response.
type apiError struct {
	Status int
	Msg    string
	// RetryAfter is the server's parsed Retry-After hint (0 when absent).
	RetryAfter time.Duration
}

func (e *apiError) Error() string {
	return fmt.Sprintf("serve: HTTP %d: %s", e.Status, e.Msg)
}

// HTTPStatus exposes the status code to callers outside the package (via
// errors.As against an interface{ HTTPStatus() int }), so they can tell a
// 504 deadline from a 500 panic from a 429 rejection without string-matching.
func (e *apiError) HTTPStatus() int { return e.Status }

func decodeErr(resp *http.Response) error {
	var body struct {
		Error string `json:"error"`
	}
	msg := resp.Status
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&body); err == nil && body.Error != "" {
		msg = body.Error
	}
	e := &apiError{Status: resp.StatusCode, Msg: msg}
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
			e.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return e
}

// do performs one API call; when idempotent is set, transient failures are
// retried with backoff.
func (c *Client) do(ctx context.Context, method, path string, body, out any, idempotent bool) error {
	var data []byte
	if body != nil {
		var err error
		if data, err = json.Marshal(body); err != nil {
			return err
		}
	}
	retries := c.MaxRetries
	switch {
	case retries == 0:
		retries = DefaultMaxRetries
	case retries < 0:
		retries = 0
	}
	if !idempotent {
		retries = 0
	}
	base := c.RetryBackoff
	if base <= 0 {
		base = DefaultRetryBackoff
	}
	for attempt := 0; ; attempt++ {
		err := c.once(ctx, method, path, data, out)
		if err == nil || attempt >= retries {
			return err
		}
		wait, retriable := retryDelay(err, attempt, base)
		if !retriable {
			return err
		}
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// retryDelay classifies an error and computes the attempt's backoff:
// exponential with ±50% jitter, floored by the server's Retry-After hint.
// Transport errors are retriable (except context cancellation). HTTP
// statuses split by class: every 4xx is TERMINAL except 429 — the request
// itself is wrong (400), too big (413) or unroutable (404), and repeating
// it can only waste the server's time and mask the real error — while 5xx
// is retriable except the two that retrying cannot fix: 501 Not
// Implemented, and 504, which in sync mode means the job RAN and hit its
// deadline — the engine is deterministic, so a repeat would burn the same
// wall-clock and time out the same way.
func retryDelay(err error, attempt int, base time.Duration) (time.Duration, bool) {
	var hint time.Duration
	var apiErr *apiError
	var urlErr *url.Error
	switch {
	case errors.As(err, &apiErr):
		switch {
		case apiErr.Status == http.StatusTooManyRequests:
			// Backpressure: the one 4xx that asks for a retry.
		case apiErr.Status >= 500 &&
			apiErr.Status != http.StatusNotImplemented &&
			apiErr.Status != http.StatusGatewayTimeout:
			// Server-side transient (500 recovered panic, 502/503 along
			// the path).
		default:
			return 0, false
		}
		hint = apiErr.RetryAfter
	case errors.As(err, &urlErr):
		if urlErr.Err != nil && (errors.Is(urlErr.Err, context.Canceled) || errors.Is(urlErr.Err, context.DeadlineExceeded)) {
			return 0, false
		}
	default:
		return 0, false
	}
	backoff := base << attempt
	if backoff > maxRetryBackoff {
		backoff = maxRetryBackoff
	}
	backoff = time.Duration(float64(backoff) * (0.5 + rand.Float64()))
	if hint > backoff {
		backoff = hint
	}
	return backoff, true
}

func (c *Client) once(ctx context.Context, method, path string, data []byte, out any) error {
	var rd io.Reader
	if data != nil {
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return err
	}
	if data != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeErr(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Synthesize runs req synchronously and returns the finished job snapshot.
func (c *Client) Synthesize(ctx context.Context, req *Request) (*JobInfo, error) {
	var info JobInfo
	if err := c.do(ctx, http.MethodPost, "/synthesize?mode=sync", req, &info, req.IdempotencyKey != ""); err != nil {
		return nil, err
	}
	return &info, nil
}

// DSE runs a fanout sweep synchronously.
func (c *Client) DSE(ctx context.Context, req *Request) (*JobInfo, error) {
	var info JobInfo
	if err := c.do(ctx, http.MethodPost, "/dse?mode=sync", req, &info, req.IdempotencyKey != ""); err != nil {
		return nil, err
	}
	return &info, nil
}

// ECO applies req.Delta incrementally against the base described by the
// rest of req, synchronously.
func (c *Client) ECO(ctx context.Context, req *Request) (*JobInfo, error) {
	var info JobInfo
	if err := c.do(ctx, http.MethodPost, "/eco?mode=sync", req, &info, req.IdempotencyKey != ""); err != nil {
		return nil, err
	}
	return &info, nil
}

// SubmitAsync enqueues req (kind KindSynthesize, KindDSE or KindECO) and
// returns the queued job snapshot immediately; poll Job for completion.
// With req.IdempotencyKey set, transient rejections are retried and a
// retried submission resolves to the original job.
func (c *Client) SubmitAsync(ctx context.Context, kind string, req *Request) (*JobInfo, error) {
	var info JobInfo
	if err := c.do(ctx, http.MethodPost, "/"+kind+"?mode=async", req, &info, req.IdempotencyKey != ""); err != nil {
		return nil, err
	}
	return &info, nil
}

// Stream submits req and follows its NDJSON progress stream, calling fn for
// every event. It returns the terminal event's result-bearing job snapshot
// reconstructed from the stream. Cancelling ctx aborts the stream, which
// cancels the job server-side. Streams are never retried — a broken stream
// may have cancelled the job — and are exempt from Client.Timeout.
func (c *Client) Stream(ctx context.Context, kind string, req *Request, fn func(Event)) (*Event, error) {
	data, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/"+kind+"?mode=stream", bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.streamHTTP().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, decodeErr(resp)
	}
	dec := json.NewDecoder(resp.Body)
	var last Event
	for {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			if err == io.EOF {
				break
			}
			return nil, err
		}
		last = ev
		if fn != nil {
			fn(ev)
		}
	}
	switch last.Event {
	case string(StateDone), string(StateFailed), string(StateCancelled):
		return &last, nil
	case "":
		return nil, fmt.Errorf("serve: empty event stream")
	default:
		return nil, fmt.Errorf("serve: stream ended without a terminal event (last %q)", last.Event)
	}
}

// Job fetches a job snapshot by ID.
func (c *Client) Job(ctx context.Context, id string) (*JobInfo, error) {
	var info JobInfo
	if err := c.do(ctx, http.MethodGet, "/jobs/"+id, nil, &info, true); err != nil {
		return nil, err
	}
	return &info, nil
}

// Cancel stops a queued or running job. Cancellation is idempotent
// server-side, so it is safe to retry.
func (c *Client) Cancel(ctx context.Context, id string) (*JobInfo, error) {
	var info JobInfo
	if err := c.do(ctx, http.MethodPost, "/jobs/"+id+"/cancel", nil, &info, true); err != nil {
		return nil, err
	}
	return &info, nil
}

// Stats fetches the queue and cache counters.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	var st Stats
	if err := c.do(ctx, http.MethodGet, "/stats", nil, &st, true); err != nil {
		return nil, err
	}
	return &st, nil
}

// Health checks GET /healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil, true)
}

// Ready checks GET /readyz: nil when the daemon accepts new work, an
// *apiError (503) while draining or saturated.
func (c *Client) Ready(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/readyz", nil, nil, false)
}
