package eval

import (
	"fmt"
	"math"

	"dscts/internal/arena"
	"dscts/internal/ctree"
	"dscts/internal/timing"
)

// This file is the hierarchical half of the evaluator, used by the
// partition-parallel pipeline (internal/core, DESIGN.md §3): each region
// subtree is summarized ONCE by SummarizeRegion, and global metrics are then
// composed from a small top tree plus those summaries — without re-walking
// any region tree. Composition is exact under the Elmore model because a
// buffer sits at every region tap: the tap buffer shields the region
// (upstream sees only its input cap) and drives exactly the load the
// region-local root driver drove, so
//
//	delay(sink j of region i) = A_i + d_ij
//
// where A_i is the arrival at tap i's buffer OUTPUT in the top tree, minus
// the tap buffer's drive term — which the region-local delay d_ij already
// carries as its root-driver term (both resistances are Buf.DriveRes by
// construction). TestComposeHierMatchesFullEval pins equality against the
// full-tree evaluator to 1e-9 relative.

// RegionEval summarizes one synthesized region subtree for hierarchical
// composition.
type RegionEval struct {
	// RootLoad is the unshielded capacitance (fF) the region root presents
	// to whatever drives it: stage-0 load of the region-local RC network.
	RootLoad float64
	// MaxDelay and MinDelay are the region-internal sink delay extremes
	// (ps), as seen from the region-local root driver.
	MaxDelay, MinDelay float64
	// Metrics is the full region-local evaluation; SinkDelays is keyed by
	// REGION-LOCAL sink index.
	Metrics *Metrics
	// Sinks maps region-local sink index to the original (global) sink
	// index. SummarizeRegion leaves it nil; the pipeline fills it in before
	// composing.
	Sinks []int
}

// SummarizeRegion evaluates a region subtree in one pass: the region-local
// Metrics plus the root load the region presents upstream. Elmore mode only —
// NLDM slew propagation does not compose additively across the tap buffers.
// Unlike Evaluate it does not re-validate the tree: the pipeline validates
// the merged tree once at stitch time, and a full structural walk per region
// would double the evaluation cost at mega scale.
func (e *Evaluator) SummarizeRegion(t *ctree.Tree) (*RegionEval, error) {
	return e.SummarizeRegionIn(t, nil)
}

// SummarizeRegionIn is SummarizeRegion sourcing its working memory from the
// job's eval arena; nil falls back to the package pool. Bit-identical either
// way (see EvaluateIn).
func (e *Evaluator) SummarizeRegionIn(t *ctree.Tree, j *arena.Job) (*RegionEval, error) {
	if e.mode != Elmore {
		return nil, fmt.Errorf("eval: hierarchical summaries require Elmore mode")
	}
	home := evalHomeOf(j)
	s := home.get()
	defer home.pool.Put(s)
	s.lower(t, e.tc)
	if len(s.pairs) == 0 {
		return nil, fmt.Errorf("eval: region tree has no sinks")
	}
	s.delays = s.net.DelaysInto(s.delays)
	m := &Metrics{SinkDelays: make(map[int]float64, len(s.pairs)), WL: t.Wirelength()}
	m.Buffers, m.NTSVs = t.Counts()
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range s.pairs {
		d := s.delays[p.node]
		m.SinkDelays[p.sinkIdx] = d
		lo = math.Min(lo, d)
		hi = math.Max(hi, d)
	}
	m.Latency = hi
	m.Skew = hi - lo
	return &RegionEval{RootLoad: s.net.SourceLoad(), MaxDelay: hi, MinDelay: lo, Metrics: m}, nil
}

// buildTopNetwork lowers a top (stitch) tree — plain front wires, node
// buffers, region taps — into an RC network. taps maps top-tree node ids to
// region indices; each tap node must carry a BufferAtNode (the shield the
// composition proof needs) and contributes its region's RootLoad to the
// buffer's driven load. Returns the network and, per region index, the
// network node whose Delays() entry is the tap buffer's output arrival.
func buildTopNetwork(top *ctree.Tree, taps map[int]int, regions []*RegionEval, e *Evaluator) (*timing.Network, []int, error) {
	front, buf := e.tc.Front(), e.tc.Buf
	net := timing.NewNetwork(buf.DriveRes)
	tapNode := make([]int, len(regions))
	for i := range tapNode {
		tapNode[i] = -1
	}
	netOf := make([]int, top.Len())
	netOf[top.Root()] = 0
	var err error
	top.PreOrder(func(id int) {
		if err != nil {
			return
		}
		n := &top.Nodes[id]
		if id != top.Root() {
			if n.Wiring.WireSide != ctree.Front || n.Wiring.BufMid {
				err = fmt.Errorf("eval: top-tree edge %d is not a plain front wire", id)
				return
			}
			length := top.EdgeLen(id)
			netOf[id] = net.AddWire(netOf[n.Parent], front.UnitRes*length, front.UnitCap*length)
		}
		ri, isTap := taps[id]
		if isTap {
			if ri < 0 || ri >= len(regions) {
				err = fmt.Errorf("eval: tap %d names region %d of %d", id, ri, len(regions))
				return
			}
			if !n.BufferAtNode {
				err = fmt.Errorf("eval: region tap %d has no buffer (composition requires a shielded tap)", id)
				return
			}
			if len(n.Children) > 0 {
				err = fmt.Errorf("eval: region tap %d has top-tree children", id)
				return
			}
			// The tap buffer is modeled unloaded here: its drive term over
			// the region load is already inside the region-local delays
			// (both drivers are Buf.DriveRes), so the tap's output arrival
			// in this network is exactly what those delays compose against.
			b := net.AddBuffer(netOf[id], 0, buf)
			tapNode[ri] = b
			netOf[id] = b
			return
		}
		if n.BufferAtNode {
			netOf[id] = net.AddBuffer(netOf[id], 0, buf)
		}
	})
	if err != nil {
		return nil, nil, err
	}
	for ri, tn := range tapNode {
		if tn < 0 {
			return nil, nil, fmt.Errorf("eval: region %d has no tap in the top tree", ri)
		}
	}
	return net, tapNode, nil
}

// TopDelays returns, per region index, the tap arrival time (ps): input
// arrival plus the tap buffer's intrinsic delay, excluding its drive term
// over the region load — the region-local delays carry that term as their
// root-driver contribution, so arrival + d_ij is the exact merged-tree sink
// delay.
func (e *Evaluator) TopDelays(top *ctree.Tree, taps map[int]int, regions []*RegionEval) ([]float64, error) {
	net, tapNode, err := buildTopNetwork(top, taps, regions, e)
	if err != nil {
		return nil, err
	}
	delays := net.Delays()
	out := make([]float64, len(regions))
	for ri, tn := range tapNode {
		out[ri] = delays[tn]
	}
	return out, nil
}

// ComposeHier computes global metrics from the top tree and the per-region
// summaries, without re-walking any region tree: O(top + total sinks) with
// the per-region evaluation work already paid. Every RegionEval must carry
// its Sinks map (region-local → global sink index). Resource counts and
// wirelength are the top tree's plus the regions'.
func (e *Evaluator) ComposeHier(top *ctree.Tree, taps map[int]int, regions []*RegionEval) (*Metrics, error) {
	arrivals, err := e.TopDelays(top, taps, regions)
	if err != nil {
		return nil, err
	}
	total := 0
	for ri, re := range regions {
		if len(re.Sinks) != len(re.Metrics.SinkDelays) {
			return nil, fmt.Errorf("eval: region %d sink map has %d entries for %d sinks",
				ri, len(re.Sinks), len(re.Metrics.SinkDelays))
		}
		total += len(re.Sinks)
	}
	m := &Metrics{SinkDelays: make(map[int]float64, total), WL: top.Wirelength()}
	m.Buffers, m.NTSVs = top.Counts()
	lo, hi := math.Inf(1), math.Inf(-1)
	for ri, re := range regions {
		m.Buffers += re.Metrics.Buffers
		m.NTSVs += re.Metrics.NTSVs
		m.WL += re.Metrics.WL
		for local, global := range re.Sinks {
			d, ok := re.Metrics.SinkDelays[local]
			if !ok {
				return nil, fmt.Errorf("eval: region %d missing delay for local sink %d", ri, local)
			}
			g := arrivals[ri] + d
			m.SinkDelays[global] = g
			lo = math.Min(lo, g)
			hi = math.Max(hi, g)
		}
	}
	if total == 0 {
		return nil, fmt.Errorf("eval: no sinks to compose")
	}
	m.Latency = hi
	m.Skew = hi - lo
	return m, nil
}
