package eval

import (
	"math"
	"testing"

	"dscts/internal/ctree"
	"dscts/internal/geom"
	"dscts/internal/tech"
)

// refineryTree builds a small two-cluster tree with leaf nets, the shape
// the WhatIf evaluator exists for.
func refineryTree() *ctree.Tree {
	tr := ctree.New(geom.Pt(0, 0))
	st := tr.Add(0, ctree.KindSteiner, geom.Pt(30, 0))
	a := tr.AddCentroid(st, geom.Pt(60, 20), 0)
	b := tr.AddCentroid(st, geom.Pt(200, -40), 1)
	s := 0
	for i := 0; i < 5; i++ {
		tr.AddSink(a, geom.Pt(62+float64(i), 21), s)
		s++
	}
	for i := 0; i < 9; i++ {
		tr.AddSink(b, geom.Pt(201+float64(i%3), -41-float64(i/3)), s)
		s++
	}
	return tr
}

// TestDownstreamCapMatchesNetwork pins DownstreamCap's lowering against the
// network builder: without a root buffer, the cap the root stage drives in
// the staged network (SourceLoad) must equal DownstreamCap at the root —
// across plain wires, back-side wires with nTSVs, mid-edge buffers and
// node buffers. A drift here means the ECO re-legalization is checking
// loads under different physics than the evaluator.
func TestDownstreamCapMatchesNetwork(t *testing.T) {
	tc := tech.ASAP7()
	tr := refineryTree()
	// Decorate with every wiring shape the lowering distinguishes.
	tr.Nodes[1].Wiring = ctree.EdgeWiring{WireSide: ctree.Back, TSVUp: true, TSVDown: true}
	tr.Nodes[2].Wiring = ctree.EdgeWiring{BufMid: true}
	tr.Nodes[3].BufferAtNode = true
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	net, _, err := BuildNetwork(tr, tc)
	if err != nil {
		t.Fatal(err)
	}
	got := DownstreamCap(tr, tr.Root(), tc)
	want := net.SourceLoad()
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("DownstreamCap(root) = %v, network SourceLoad = %v", got, want)
	}
}

// TestWhatIfMatchesEvaluate cross-checks the flat what-if network against
// the reference Evaluate, both in the base state and after committing an
// end-point buffer (compared against BufferAtNode + full re-evaluation).
func TestWhatIfMatchesEvaluate(t *testing.T) {
	tc := tech.ASAP7()
	tr := refineryTree()
	ev := New(tc, Elmore)
	ref, err := ev.Evaluate(tr)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWhatIf(tr, tc)
	sc := w.NewScratch()

	const tol = 1e-9
	lat, skew := w.Eval(-1, sc, nil)
	if math.Abs(lat-ref.Latency) > tol || math.Abs(skew-ref.Skew) > tol {
		t.Fatalf("base state: whatif (%v, %v) vs evaluate (%v, %v)", lat, skew, ref.Latency, ref.Skew)
	}

	// Trial = commit + full re-evaluation, within tolerance.
	for _, cid := range tr.Centroids() {
		slot := w.SlotOf(cid)
		if slot < 0 {
			t.Fatalf("centroid %d has no slot", cid)
		}
		tlat, tskew := w.Eval(slot, sc, nil)
		tr.Nodes[cid].BufferAtNode = true
		m, err := ev.Evaluate(tr)
		tr.Nodes[cid].BufferAtNode = false
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(tlat-m.Latency) > tol || math.Abs(tskew-m.Skew) > tol {
			t.Fatalf("trial at %d: whatif (%v, %v) vs evaluate (%v, %v)", cid, tlat, tskew, m.Latency, m.Skew)
		}
	}

	// Committed state must agree too, including per-sink delays.
	cid := tr.Centroids()[1]
	w.Commit(w.SlotOf(cid))
	dst := make([]float64, len(ref.SinkDelays))
	clat, cskew := w.Eval(-1, sc, dst)
	tr.Nodes[cid].BufferAtNode = true
	m, err := ev.Evaluate(tr)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(clat-m.Latency) > tol || math.Abs(cskew-m.Skew) > tol {
		t.Fatalf("committed: whatif (%v, %v) vs evaluate (%v, %v)", clat, cskew, m.Latency, m.Skew)
	}
	for idx, d := range m.SinkDelays {
		if math.Abs(dst[idx]-d) > tol {
			t.Fatalf("sink %d: whatif delay %v vs evaluate %v", idx, dst[idx], d)
		}
	}
	nodes := w.CommittedTreeNodes()
	if len(nodes) != 1 || nodes[0] != cid {
		t.Fatalf("committed nodes %v, want [%d]", nodes, cid)
	}
}
