// Package eval extracts the paper's reported metrics from a finished clock
// tree: latency (max source-to-sink delay), skew (max-min), buffer and nTSV
// counts, and clock wirelength. It builds a staged RC network from the
// tree's wiring annotations and evaluates it with the Elmore model (the
// optimization model) or the NLDM+slew model (the paper's evaluation model,
// Sec. IV-A).
package eval

import (
	"fmt"
	"math"

	"dscts/internal/ctree"
	"dscts/internal/tech"
	"dscts/internal/timing"
)

// Mode selects the delay model.
type Mode int

const (
	// Elmore evaluates with the L-type Elmore model used by optimization.
	Elmore Mode = iota
	// NLDM evaluates buffers with NLDM lookup tables and propagates slew
	// (PERI); wires remain Elmore.
	NLDM
)

// Metrics are the per-design numbers reported in Table III.
type Metrics struct {
	Latency float64 // ps
	Skew    float64 // ps
	Buffers int
	NTSVs   int
	WL      float64 // µm, total clock wirelength
	// SinkDelays maps original sink index to its source-to-sink delay.
	SinkDelays map[int]float64
	// MaxSlew is the worst sink transition time (NLDM mode only).
	MaxSlew float64
}

// Evaluator caches technology-derived tables.
type Evaluator struct {
	tc   *tech.Tech
	tbl  *timing.NLDM
	mode Mode
	// InputSlew is the transition time at the clock root (ps).
	InputSlew float64
}

// New creates an evaluator. Mode NLDM synthesizes the buffer table once.
func New(tc *tech.Tech, mode Mode) *Evaluator {
	e := &Evaluator{tc: tc, mode: mode, InputSlew: 10}
	if mode == NLDM {
		e.tbl = timing.SynthesizeNLDM(tc.Buf)
	}
	return e
}

// Evaluate computes the metrics of the annotated tree.
func (e *Evaluator) Evaluate(t *ctree.Tree) (*Metrics, error) {
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("eval: %w", err)
	}
	net, sinkNode, err := BuildNetwork(t, e.tc)
	if err != nil {
		return nil, err
	}
	var delays []float64
	if e.mode == NLDM {
		delays = net.DelaysNLDM(e.InputSlew, e.tbl)
	} else {
		delays = net.Delays()
	}
	m := &Metrics{SinkDelays: make(map[int]float64, len(sinkNode)), WL: t.Wirelength()}
	m.Buffers, m.NTSVs = t.Counts()
	lo, hi := math.Inf(1), math.Inf(-1)
	for sinkIdx, nid := range sinkNode {
		d := delays[nid]
		m.SinkDelays[sinkIdx] = d
		lo = math.Min(lo, d)
		hi = math.Max(hi, d)
	}
	if len(sinkNode) == 0 {
		return nil, fmt.Errorf("eval: tree has no sinks")
	}
	m.Latency = hi
	m.Skew = hi - lo
	if e.mode == NLDM {
		slews := net.Slews(e.InputSlew, e.tbl)
		for _, nid := range sinkNode {
			m.MaxSlew = math.Max(m.MaxSlew, slews[nid])
		}
	}
	return m, nil
}

// DownstreamCap returns the unshielded capacitance that node id's output
// stage drives, under exactly BuildNetwork's lowering rules: wire body cap
// by side, nTSV caps, sink pin caps, with buffers — node-level or mid-edge
// — shielding everything below them behind their input cap. It lives here,
// next to BuildNetwork, so the lowering rules have a single home; the ECO
// engine uses it to re-legalize graft points (a spliced leaf net that
// outgrew the drive budget gets a shielding buffer).
// TestDownstreamCapMatchesNetwork pins it against the network builder.
func DownstreamCap(t *ctree.Tree, id int, tc *tech.Tech) float64 {
	front, back, tsv, buf := tc.Front(), tc.Back(), tc.TSV, tc.Buf
	var rec func(c int) float64
	rec = func(c int) float64 {
		n := &t.Nodes[c]
		w := n.Wiring
		length := t.EdgeLen(c)
		var capv float64
		switch {
		case w.BufMid:
			return front.UnitCap*(length/2) + buf.InputCap
		case w.WireSide == ctree.Back:
			capv = back.UnitCap*length + float64(w.NTSVCount())*tsv.Cap
		default:
			capv = front.UnitCap * length
		}
		if n.BufferAtNode {
			return capv + buf.InputCap
		}
		if n.Kind == ctree.KindSink {
			return capv + tc.SinkCap
		}
		for _, cc := range n.Children {
			capv += rec(cc)
		}
		return capv
	}
	total := 0.0
	for _, c := range t.Nodes[id].Children {
		total += rec(c)
	}
	return total
}

// BuildNetwork lowers the annotated clock tree into a staged RC network.
// It returns the network and a map from original sink index to network node.
//
// Lowering rules per edge (parent → child), following the delay models of
// Sec. II-B: a front/back wire is a series resistance with its cap at the
// downstream node (L-model); a mid-edge buffer splits the edge into two
// halves around a buffer element; an nTSV is a series resistance with its
// cap at its downstream node. A node-level buffer (BufferAtNode) is placed
// between the edge's arrival and the node's children. The clock root drives
// stage 0 through the buffer's drive resistance (root driver).
func BuildNetwork(t *ctree.Tree, tc *tech.Tech) (*timing.Network, map[int]int, error) {
	front, back, tsv, buf := tc.Front(), tc.Back(), tc.TSV, tc.Buf
	net := timing.NewNetwork(buf.DriveRes)
	sinkNode := make(map[int]int)
	// netOf[id] is the network node carrying clock-tree vertex id's signal
	// (after any node buffer).
	netOf := make([]int, t.Len())
	netOf[t.Root()] = 0
	if t.Nodes[t.Root()].BufferAtNode {
		netOf[t.Root()] = net.AddBuffer(0, 0, buf)
	}
	var err error
	t.PreOrder(func(id int) {
		if err != nil || id == t.Root() {
			return
		}
		n := &t.Nodes[id]
		parent := netOf[n.Parent]
		length := t.EdgeLen(id)
		w := n.Wiring
		var at int
		switch {
		case n.Kind == ctree.KindSink:
			// Leaf-net star branch: front wire (L-model: wire cap at the
			// far node) terminated by the sink pin cap.
			at = net.AddWire(parent, front.UnitRes*length, front.UnitCap*length+tc.SinkCap)
			sinkNode[n.SinkIdx] = at
		case w.BufMid:
			h := length / 2
			upw := net.AddWire(parent, front.UnitRes*h, front.UnitCap*h)
			bufn := net.AddBuffer(upw, 0, buf)
			at = net.AddWire(bufn, front.UnitRes*h, front.UnitCap*h)
		case w.WireSide == ctree.Back:
			cur := parent
			if w.TSVUp {
				cur = net.AddWire(cur, tsv.Res, tsv.Cap)
			}
			cur = net.AddWire(cur, back.UnitRes*length, back.UnitCap*length)
			if w.TSVDown {
				cur = net.AddWire(cur, tsv.Res, tsv.Cap)
			}
			at = cur
		default: // plain front wire
			at = net.AddWire(parent, front.UnitRes*length, front.UnitCap*length)
		}
		if n.BufferAtNode {
			at = net.AddBuffer(at, 0, buf)
		}
		netOf[id] = at
	})
	if err != nil {
		return nil, nil, err
	}
	return net, sinkNode, nil
}
