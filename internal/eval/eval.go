// Package eval extracts the paper's reported metrics from a finished clock
// tree: latency (max source-to-sink delay), skew (max-min), buffer and nTSV
// counts, and clock wirelength. It builds a staged RC network from the
// tree's wiring annotations and evaluates it with the Elmore model (the
// optimization model) or the NLDM+slew model (the paper's evaluation model,
// Sec. IV-A).
package eval

import (
	"fmt"
	"math"

	"dscts/internal/arena"
	"dscts/internal/ctree"
	"dscts/internal/tech"
	"dscts/internal/timing"
)

// Mode selects the delay model.
type Mode int

const (
	// Elmore evaluates with the L-type Elmore model used by optimization.
	Elmore Mode = iota
	// NLDM evaluates buffers with NLDM lookup tables and propagates slew
	// (PERI); wires remain Elmore.
	NLDM
)

// Metrics are the per-design numbers reported in Table III.
type Metrics struct {
	Latency float64 // ps
	Skew    float64 // ps
	Buffers int
	NTSVs   int
	WL      float64 // µm, total clock wirelength
	// SinkDelays maps original sink index to its source-to-sink delay.
	SinkDelays map[int]float64
	// MaxSlew is the worst sink transition time (NLDM mode only).
	MaxSlew float64
}

// Evaluator caches technology-derived tables.
type Evaluator struct {
	tc   *tech.Tech
	tbl  *timing.NLDM
	mode Mode
	// InputSlew is the transition time at the clock root (ps).
	InputSlew float64
}

// New creates an evaluator. Mode NLDM synthesizes the buffer table once.
func New(tc *tech.Tech, mode Mode) *Evaluator {
	e := &Evaluator{tc: tc, mode: mode, InputSlew: 10}
	if mode == NLDM {
		e.tbl = timing.SynthesizeNLDM(tc.Buf)
	}
	return e
}

// sinkPair records one sink's network node during lowering.
type sinkPair struct {
	sinkIdx int // original sink index
	node    int // network node carrying the sink pin
}

// evalScratch is the per-evaluation working set: the RC network, the
// tree-vertex → network-node map and the delay/slew result lanes. It lives
// in the owning job's PhaseEval slot (or the package fallback pool) and is
// fully rewound per evaluation, so steady-state Evaluate calls allocate only
// the Metrics that escape to the caller.
type evalScratch struct {
	net    timing.Network
	netOf  []int
	pairs  []sinkPair
	delays []float64
	slews  []float64
}

// evalHome is the pool the scratch checks in and out of; one per arena job
// (multiple evaluations inside one job may overlap, e.g. refine workers).
// The wi pool recycles WhatIf models the same way (see NewWhatIfIn).
type evalHome struct {
	pool arena.Pool[evalScratch]
	wi   arena.Pool[WhatIf]
}

// fallbackEval serves callers without an arena job.
var fallbackEval evalHome

func evalHomeOf(j *arena.Job) *evalHome {
	if h := arena.Slot(j, arena.PhaseEval, func() *evalHome { return &evalHome{} }); h != nil {
		return h
	}
	return &fallbackEval
}

func (h *evalHome) get() *evalScratch {
	if s := h.pool.Get(); s != nil {
		return s
	}
	return &evalScratch{}
}

// Evaluate computes the metrics of the annotated tree.
func (e *Evaluator) Evaluate(t *ctree.Tree) (*Metrics, error) {
	return e.EvaluateIn(t, nil)
}

// EvaluateIn is Evaluate sourcing its working memory from the job's eval
// arena; nil falls back to the package pool. Results are bit-identical
// either way: the network lowering order, every FP operation and the
// min/max reductions (order-independent for non-NaN operands) are
// unchanged — only where the intermediate lanes live differs.
func (e *Evaluator) EvaluateIn(t *ctree.Tree, j *arena.Job) (*Metrics, error) {
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("eval: %w", err)
	}
	home := evalHomeOf(j)
	s := home.get()
	defer home.pool.Put(s)
	s.lower(t, e.tc)
	var delays []float64
	if e.mode == NLDM {
		s.delays = s.net.DelaysNLDMInto(s.delays, e.InputSlew, e.tbl)
	} else {
		s.delays = s.net.DelaysInto(s.delays)
	}
	delays = s.delays
	m := &Metrics{SinkDelays: make(map[int]float64, len(s.pairs)), WL: t.Wirelength()}
	m.Buffers, m.NTSVs = t.Counts()
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range s.pairs {
		d := delays[p.node]
		m.SinkDelays[p.sinkIdx] = d
		lo = math.Min(lo, d)
		hi = math.Max(hi, d)
	}
	if len(s.pairs) == 0 {
		return nil, fmt.Errorf("eval: tree has no sinks")
	}
	m.Latency = hi
	m.Skew = hi - lo
	if e.mode == NLDM {
		s.slews = s.net.SlewsInto(s.slews, e.InputSlew, e.tbl)
		for _, p := range s.pairs {
			m.MaxSlew = math.Max(m.MaxSlew, s.slews[p.node])
		}
	}
	return m, nil
}

// DownstreamCap returns the unshielded capacitance that node id's output
// stage drives, under exactly BuildNetwork's lowering rules: wire body cap
// by side, nTSV caps, sink pin caps, with buffers — node-level or mid-edge
// — shielding everything below them behind their input cap. It lives here,
// next to BuildNetwork, so the lowering rules have a single home; the ECO
// engine uses it to re-legalize graft points (a spliced leaf net that
// outgrew the drive budget gets a shielding buffer).
// TestDownstreamCapMatchesNetwork pins it against the network builder.
func DownstreamCap(t *ctree.Tree, id int, tc *tech.Tech) float64 {
	front, back, tsv, buf := tc.Front(), tc.Back(), tc.TSV, tc.Buf
	var rec func(c int) float64
	rec = func(c int) float64 {
		n := &t.Nodes[c]
		w := n.Wiring
		length := t.EdgeLen(c)
		var capv float64
		switch {
		case w.BufMid:
			return front.UnitCap*(length/2) + buf.InputCap
		case w.WireSide == ctree.Back:
			capv = back.UnitCap*length + float64(w.NTSVCount())*tsv.Cap
		default:
			capv = front.UnitCap * length
		}
		if n.BufferAtNode {
			return capv + buf.InputCap
		}
		if n.Kind == ctree.KindSink {
			return capv + tc.SinkCap
		}
		for _, cc := range n.Children {
			capv += rec(cc)
		}
		return capv
	}
	total := 0.0
	for _, c := range t.Nodes[id].Children {
		total += rec(c)
	}
	return total
}

// BuildNetwork lowers the annotated clock tree into a staged RC network.
// It returns the network and a map from original sink index to network node.
//
// Lowering rules per edge (parent → child), following the delay models of
// Sec. II-B: a front/back wire is a series resistance with its cap at the
// downstream node (L-model); a mid-edge buffer splits the edge into two
// halves around a buffer element; an nTSV is a series resistance with its
// cap at its downstream node. A node-level buffer (BufferAtNode) is placed
// between the edge's arrival and the node's children. The clock root drives
// stage 0 through the buffer's drive resistance (root driver).
func BuildNetwork(t *ctree.Tree, tc *tech.Tech) (*timing.Network, map[int]int, error) {
	net := timing.NewNetwork(tc.Buf.DriveRes)
	sinkNode := make(map[int]int)
	netOf := make([]int, t.Len())
	lowerTree(t, tc, net, netOf, func(sinkIdx, node int) {
		sinkNode[sinkIdx] = node
	})
	return net, sinkNode, nil
}

// lower rebuilds the scratch network and sink pairs from the tree, reusing
// every lane from the previous evaluation.
func (s *evalScratch) lower(t *ctree.Tree, tc *tech.Tech) {
	s.net.Reset(tc.Buf.DriveRes)
	s.net.Grow(t.Len() + t.Len()/2)
	s.netOf = arena.Grow(s.netOf, t.Len())
	s.pairs = s.pairs[:0]
	lowerTree(t, tc, &s.net, s.netOf, func(sinkIdx, node int) {
		s.pairs = append(s.pairs, sinkPair{sinkIdx: sinkIdx, node: node})
	})
}

// lowerTree is the single home of the lowering rules: it appends the tree's
// RC elements to net (which must hold only the root driver), records each
// tree vertex's network node in netOf (len >= t.Len()), and reports each
// sink's pin node through emit, in preorder.
func lowerTree(t *ctree.Tree, tc *tech.Tech, net *timing.Network, netOf []int, emit func(sinkIdx, node int)) {
	front, back, tsv, buf := tc.Front(), tc.Back(), tc.TSV, tc.Buf
	netOf[t.Root()] = 0
	if t.Nodes[t.Root()].BufferAtNode {
		netOf[t.Root()] = net.AddBuffer(0, 0, buf)
	}
	t.PreOrder(func(id int) {
		if id == t.Root() {
			return
		}
		n := &t.Nodes[id]
		parent := netOf[n.Parent]
		length := t.EdgeLen(id)
		w := n.Wiring
		var at int
		switch {
		case n.Kind == ctree.KindSink:
			// Leaf-net star branch: front wire (L-model: wire cap at the
			// far node) terminated by the sink pin cap.
			at = net.AddWire(parent, front.UnitRes*length, front.UnitCap*length+tc.SinkCap)
			emit(n.SinkIdx, at)
		case w.BufMid:
			h := length / 2
			upw := net.AddWire(parent, front.UnitRes*h, front.UnitCap*h)
			bufn := net.AddBuffer(upw, 0, buf)
			at = net.AddWire(bufn, front.UnitRes*h, front.UnitCap*h)
		case w.WireSide == ctree.Back:
			cur := parent
			if w.TSVUp {
				cur = net.AddWire(cur, tsv.Res, tsv.Cap)
			}
			cur = net.AddWire(cur, back.UnitRes*length, back.UnitCap*length)
			if w.TSVDown {
				cur = net.AddWire(cur, tsv.Res, tsv.Cap)
			}
			at = cur
		default: // plain front wire
			at = net.AddWire(parent, front.UnitRes*length, front.UnitCap*length)
		}
		if n.BufferAtNode {
			at = net.AddBuffer(at, 0, buf)
		}
		netOf[id] = at
	})
}
