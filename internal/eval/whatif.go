package eval

import (
	"fmt"
	"math"

	"dscts/internal/arena"
	"dscts/internal/ctree"
	"dscts/internal/tech"
)

// WhatIf answers "what would latency and skew be if an end-point buffer
// were added at this centroid?" without rebuilding the RC network or
// allocating per query. It exists for the skew-refinement loop, whose
// accept/reject trials dominated the end-to-end synthesis runtime when
// each trial re-ran a full Evaluate (tree validation, network
// construction and a sink-delay map per attempt).
//
// The network is lowered once, with a zero-impedance pass-through "slot"
// node at every centroid that could receive an end-point buffer. A trial
// evaluates the network with one extra slot treated as a buffer; a commit
// flips the slot permanently. Evaluations against the same committed state
// are independent pure functions, so trials for different candidates may
// run concurrently on separate scratches — the basis of the speculative
// parallel refinement pass.
type WhatIf struct {
	parent []int32
	res    []float64
	capv   []float64
	kind   []uint8 // wire / fixed buffer / toggleable slot
	on     []bool  // slot state (committed buffers)

	buf     tech.Buffer
	rootRes float64

	sinkNet []int32 // network node of each sink record
	sinkIdx []int32 // original sink index of each sink record
	slotOf  map[int]int32

	netOf   []int32                   // lowering scratch, reused across builds
	sinkDst []float64                 // per-sink delay scratch (EvaluateWhatIfIn)
	spool   arena.Pool[WhatIfScratch] // idle evaluation workspaces
}

const (
	wiWire uint8 = iota
	wiBuf
	wiSlot
)

// WhatIfScratch is the reusable per-evaluation workspace. Evaluations on
// distinct scratches are safe to run concurrently.
type WhatIfScratch struct {
	load, d []float64
}

// NewScratch returns a workspace sized for this network, recycling one a
// previous evaluation put back.
func (w *WhatIf) NewScratch() *WhatIfScratch {
	s := w.spool.Get()
	if s == nil {
		s = &WhatIfScratch{}
	}
	n := len(w.parent)
	s.load = arena.Grow(s.load, n)
	s.d = arena.Grow(s.d, n)
	return s
}

// PutScratch returns a workspace for reuse by a later NewScratch.
func (w *WhatIf) PutScratch(s *WhatIfScratch) { w.spool.Put(s) }

// NewWhatIf lowers the annotated tree once, mirroring BuildNetwork's RC
// rules, and plants a toggleable buffer slot at every centroid that does
// not already carry a node buffer. The tree must already be valid (the
// caller's initial Evaluate checks that).
func NewWhatIf(t *ctree.Tree, tc *tech.Tech) *WhatIf {
	return NewWhatIfIn(t, tc, nil)
}

// NewWhatIfIn is NewWhatIf recycling a model (lanes, slot map and idle
// scratches) from the job's eval arena; nil falls back to the package pool.
// Release with ReleaseWhatIf when done. Bit-identical results either way.
func NewWhatIfIn(t *ctree.Tree, tc *tech.Tech, j *arena.Job) *WhatIf {
	w := evalHomeOf(j).wi.Get()
	if w == nil {
		w = &WhatIf{slotOf: make(map[int]int32)}
	}
	w.build(t, tc)
	return w
}

// ReleaseWhatIf returns a model obtained from NewWhatIfIn to its pool. The
// caller must pass the same job (or nil) it acquired with and must not use
// w afterwards.
func ReleaseWhatIf(j *arena.Job, w *WhatIf) { evalHomeOf(j).wi.Put(w) }

// build (re)lowers the tree into the model, rewinding every lane.
func (w *WhatIf) build(t *ctree.Tree, tc *tech.Tech) {
	front, back, tsv, buf := tc.Front(), tc.Back(), tc.TSV, tc.Buf
	w.buf, w.rootRes = buf, buf.DriveRes
	w.parent = w.parent[:0]
	w.res = w.res[:0]
	w.capv = w.capv[:0]
	w.kind = w.kind[:0]
	w.sinkNet = w.sinkNet[:0]
	w.sinkIdx = w.sinkIdx[:0]
	clear(w.slotOf)
	w.addNode(-1, 0, 0, wiWire) // node 0: root driver
	w.netOf = arena.Grow(w.netOf, t.Len())
	netOf := w.netOf
	netOf[t.Root()] = 0
	if t.Nodes[t.Root()].BufferAtNode {
		netOf[t.Root()] = w.addNode(0, 0, buf.InputCap, wiBuf)
	}
	t.PreOrder(func(id int) {
		if id == t.Root() {
			return
		}
		n := &t.Nodes[id]
		parent := netOf[n.Parent]
		length := t.EdgeLen(id)
		wr := n.Wiring
		var at int32
		switch {
		case n.Kind == ctree.KindSink:
			at = w.addNode(parent, front.UnitRes*length, front.UnitCap*length+tc.SinkCap, wiWire)
			w.sinkNet = append(w.sinkNet, at)
			w.sinkIdx = append(w.sinkIdx, int32(n.SinkIdx))
		case wr.BufMid:
			h := length / 2
			upw := w.addNode(parent, front.UnitRes*h, front.UnitCap*h, wiWire)
			bufn := w.addNode(upw, 0, buf.InputCap, wiBuf)
			at = w.addNode(bufn, front.UnitRes*h, front.UnitCap*h, wiWire)
		case wr.WireSide == ctree.Back:
			cur := parent
			if wr.TSVUp {
				cur = w.addNode(cur, tsv.Res, tsv.Cap, wiWire)
			}
			cur = w.addNode(cur, back.UnitRes*length, back.UnitCap*length, wiWire)
			if wr.TSVDown {
				cur = w.addNode(cur, tsv.Res, tsv.Cap, wiWire)
			}
			at = cur
		default: // plain front wire
			at = w.addNode(parent, front.UnitRes*length, front.UnitCap*length, wiWire)
		}
		switch {
		case n.BufferAtNode:
			at = w.addNode(at, 0, buf.InputCap, wiBuf)
		case n.Kind == ctree.KindCentroid:
			at = w.addNode(at, 0, 0, wiSlot)
			w.slotOf[id] = at
		}
		netOf[id] = at
	})
	w.on = arena.GrowZero(w.on, len(w.parent))
}

func (w *WhatIf) addNode(parent int32, res, capv float64, kind uint8) int32 {
	id := int32(len(w.parent))
	w.parent = append(w.parent, parent)
	w.res = append(w.res, res)
	w.capv = append(w.capv, capv)
	w.kind = append(w.kind, kind)
	return id
}

// SlotOf returns the slot node of a centroid tree node, or -1 when the
// centroid already carries a fixed buffer.
func (w *WhatIf) SlotOf(treeNode int) int32 {
	if s, ok := w.slotOf[treeNode]; ok {
		return s
	}
	return -1
}

// Committed reports whether the slot is already a buffer.
func (w *WhatIf) Committed(slot int32) bool { return w.on[slot] }

// Commit turns the slot into a buffer for all subsequent evaluations.
func (w *WhatIf) Commit(slot int32) { w.on[slot] = true }

// CommittedTreeNodes returns the tree node ids of all committed slots.
func (w *WhatIf) CommittedTreeNodes() []int {
	var out []int
	for id, s := range w.slotOf {
		if w.on[s] {
			out = append(out, id)
		}
	}
	return out
}

// EvaluateWhatIf computes the tree's full Metrics through one flat WhatIf
// pass instead of Evaluate's staged network, skipping the structural
// re-validation walk. It exists for incremental (ECO) re-synthesis, where
// the tree is a splice of already-validated pieces and the evaluation is
// the tail of the hot path: the spliced structure is correct by
// construction, so only the numbers need recomputing. nSinks bounds the
// sink index space of the tree. Elmore mode only; agrees with Evaluate to
// 1e-9 relative (TestWhatIfMatchesEvaluate).
func (e *Evaluator) EvaluateWhatIf(t *ctree.Tree, nSinks int) (*Metrics, error) {
	return e.EvaluateWhatIfIn(t, nSinks, nil)
}

// EvaluateWhatIfIn is EvaluateWhatIf recycling the model and its lanes from
// the job's eval arena; nil falls back to the package pool. Bit-identical
// results either way.
func (e *Evaluator) EvaluateWhatIfIn(t *ctree.Tree, nSinks int, j *arena.Job) (*Metrics, error) {
	if e.mode != Elmore {
		return nil, fmt.Errorf("eval: what-if evaluation requires Elmore mode")
	}
	w := NewWhatIfIn(t, e.tc, j)
	defer ReleaseWhatIf(j, w)
	if len(w.sinkIdx) == 0 {
		return nil, fmt.Errorf("eval: tree has no sinks")
	}
	// Every cell read below is written by Eval first (only sink indices in
	// w.sinkIdx are consulted), so the lane needs no zeroing.
	w.sinkDst = arena.Grow(w.sinkDst, nSinks)
	dst := w.sinkDst
	for _, si := range w.sinkIdx {
		if si < 0 || int(si) >= nSinks {
			return nil, fmt.Errorf("eval: sink index %d outside [0,%d)", si, nSinks)
		}
	}
	sc := w.NewScratch()
	lat, skew := w.Eval(-1, sc, dst)
	w.PutScratch(sc)
	m := &Metrics{
		Latency: lat, Skew: skew, WL: t.Wirelength(),
		SinkDelays: make(map[int]float64, len(w.sinkIdx)),
	}
	m.Buffers, m.NTSVs = t.Counts()
	for _, si := range w.sinkIdx {
		m.SinkDelays[int(si)] = dst[si]
	}
	return m, nil
}

// Eval computes (latency, skew) of the network with slot `extra` (-1 for
// none) treated as a buffer on top of the committed state. When dst is
// non-nil it must be indexable by every original sink index; the per-sink
// delays are written into it. Eval does not mutate w and may run
// concurrently on distinct scratches.
func (w *WhatIf) Eval(extra int32, sc *WhatIfScratch, dst []float64) (latency, skew float64) {
	n := len(w.parent)
	load := sc.load[:n]
	for i := range load {
		load[i] = 0
	}
	inCap := w.buf.InputCap
	// Bottom-up loads (children have larger indices than parents).
	for i := n - 1; i >= 1; i-- {
		active := w.kind[i] == wiBuf || (w.kind[i] == wiSlot && (w.on[i] || int32(i) == extra))
		l := load[i]
		if !active {
			l += w.capv[i]
		}
		load[i] = l
		p := w.parent[i]
		if active {
			load[p] += inCap
		} else {
			load[p] += l
		}
	}
	// Top-down delays.
	d := sc.d[:n]
	d[0] = 0
	for i := 1; i < n; i++ {
		active := w.kind[i] == wiBuf || (w.kind[i] == wiSlot && (w.on[i] || int32(i) == extra))
		visible := load[i]
		if active {
			visible = inCap
		}
		at := d[w.parent[i]] + w.res[i]*visible
		if active {
			at += w.buf.Delay(load[i])
		}
		d[i] = at
	}
	src := w.rootRes * load[0]
	lo, hi := math.Inf(1), math.Inf(-1)
	for k, nn := range w.sinkNet {
		dd := d[nn] + src
		if dst != nil {
			dst[w.sinkIdx[k]] = dd
		}
		if dd < lo {
			lo = dd
		}
		if dd > hi {
			hi = dd
		}
	}
	return hi, hi - lo
}
