package eval

import (
	"math"
	"testing"

	"dscts/internal/ctree"
	"dscts/internal/geom"
	"dscts/internal/tech"
	"dscts/internal/timing"
)

// twoSinkTree: root → centroid → {2 sinks}, all front side.
func twoSinkTree() *ctree.Tree {
	t := ctree.New(geom.Pt(0, 0))
	c := t.AddCentroid(0, geom.Pt(50, 0), 0)
	t.AddSink(c, geom.Pt(55, 2), 0)
	t.AddSink(c, geom.Pt(52, -1), 1)
	return t
}

func TestEvaluateFrontTreeByHand(t *testing.T) {
	tc := tech.ASAP7()
	tr := twoSinkTree()
	m, err := New(tc, Elmore).Evaluate(tr)
	if err != nil {
		t.Fatal(err)
	}
	front := tc.Front()
	// Hand Elmore: root driver R drives everything; trunk wire 50µm; leaf
	// wires 7 and 3 µm.
	l0, l1 := 7.0, 3.0
	leafCap := func(l float64) float64 { return front.UnitCap*l + tc.SinkCap }
	trunkCap := front.UnitCap*50 + leafCap(l0) + leafCap(l1)
	rootTerm := tc.Buf.DriveRes * trunkCap
	trunkDelay := front.UnitRes * 50 * (front.UnitCap*50 + leafCap(l0) + leafCap(l1))
	d0 := rootTerm + trunkDelay + front.UnitRes*l0*leafCap(l0)
	d1 := rootTerm + trunkDelay + front.UnitRes*l1*leafCap(l1)
	if math.Abs(m.SinkDelays[0]-d0) > 1e-9 || math.Abs(m.SinkDelays[1]-d1) > 1e-9 {
		t.Fatalf("delays %v/%v, want %v/%v", m.SinkDelays[0], m.SinkDelays[1], d0, d1)
	}
	if math.Abs(m.Latency-math.Max(d0, d1)) > 1e-12 {
		t.Errorf("latency %v", m.Latency)
	}
	if math.Abs(m.Skew-math.Abs(d0-d1)) > 1e-12 {
		t.Errorf("skew %v", m.Skew)
	}
	if m.Buffers != 0 || m.NTSVs != 0 {
		t.Errorf("counts %d/%d", m.Buffers, m.NTSVs)
	}
	if want := 50.0 + 7 + 3; math.Abs(m.WL-want) > 1e-9 {
		t.Errorf("WL %v want %v", m.WL, want)
	}
}

func TestEvaluateBackEdgeMatchesEq2(t *testing.T) {
	tc := tech.ASAP7()
	// root → centroid via a P4 edge (back wire, nTSV both ends), one sink
	// with zero leaf wire.
	tr := ctree.New(geom.Pt(0, 0))
	c := tr.AddCentroid(0, geom.Pt(100, 0), 0)
	tr.Nodes[c].Wiring = ctree.EdgeWiring{WireSide: ctree.Back, TSVUp: true, TSVDown: true}
	tr.AddSink(c, geom.Pt(100, 0), 0)
	m, err := New(tc, Elmore).Evaluate(tr)
	if err != nil {
		t.Fatal(err)
	}
	cd := tc.SinkCap
	want := timing.NTSVOnWireDelay(tc.Back(), tc.TSV, 100, cd) +
		tc.Buf.DriveRes*timing.NTSVOnWireCap(tc.Back(), tc.TSV, 100, cd)
	if math.Abs(m.Latency-want) > 1e-9 {
		t.Fatalf("latency %v, want %v (Eq. 2 + root driver)", m.Latency, want)
	}
	if m.NTSVs != 2 {
		t.Errorf("ntsvs %d", m.NTSVs)
	}
}

func TestEvaluateMidBufferShields(t *testing.T) {
	tc := tech.ASAP7()
	mk := func(buffered bool) float64 {
		tr := ctree.New(geom.Pt(0, 0))
		c := tr.AddCentroid(0, geom.Pt(200, 0), 0)
		if buffered {
			tr.Nodes[c].Wiring = ctree.EdgeWiring{BufMid: true}
		}
		for i := 0; i < 20; i++ {
			tr.AddSink(c, geom.Pt(200, float64(i)), i)
		}
		m, err := New(tc, Elmore).Evaluate(tr)
		if err != nil {
			t.Fatal(err)
		}
		if buffered && m.Buffers != 1 {
			t.Fatalf("buffers %d", m.Buffers)
		}
		return m.Latency
	}
	if lb, lw := mk(true), mk(false); lb >= lw {
		t.Fatalf("buffered 200µm trunk (%v) should beat unbuffered (%v)", lb, lw)
	}
}

func TestEvaluateNodeBufferCounted(t *testing.T) {
	tc := tech.ASAP7()
	tr := twoSinkTree()
	tr.Nodes[1].BufferAtNode = true
	m, err := New(tc, Elmore).Evaluate(tr)
	if err != nil {
		t.Fatal(err)
	}
	if m.Buffers != 1 {
		t.Fatalf("buffers %d", m.Buffers)
	}
}

func TestEvaluateNLDMModeProducesSlew(t *testing.T) {
	tc := tech.ASAP7()
	tr := twoSinkTree()
	tr.Nodes[1].Wiring = ctree.EdgeWiring{BufMid: true}
	m, err := New(tc, NLDM).Evaluate(tr)
	if err != nil {
		t.Fatal(err)
	}
	if m.MaxSlew <= 0 {
		t.Fatal("NLDM mode must report slew")
	}
	me, err := New(tc, Elmore).Evaluate(tr)
	if err != nil {
		t.Fatal(err)
	}
	// NLDM adds slew-dependent gate delay: close to but above Elmore.
	if m.Latency < me.Latency {
		t.Errorf("NLDM latency %v below Elmore %v", m.Latency, me.Latency)
	}
	if m.Latency > me.Latency*1.5 {
		t.Errorf("NLDM latency %v implausibly far from Elmore %v", m.Latency, me.Latency)
	}
}

func TestEvaluateRejectsInvalidTree(t *testing.T) {
	tc := tech.ASAP7()
	tr := twoSinkTree()
	tr.Nodes[1].Wiring = ctree.EdgeWiring{WireSide: ctree.Back} // sinks on back
	if _, err := New(tc, Elmore).Evaluate(tr); err == nil {
		t.Fatal("invalid tree must be rejected")
	}
	empty := ctree.New(geom.Pt(0, 0))
	if _, err := New(tc, Elmore).Evaluate(empty); err == nil {
		t.Fatal("sink-less tree must be rejected")
	}
}
