package eco

import (
	"reflect"
	"testing"

	"dscts/internal/geom"
	"dscts/internal/partition"
)

func TestApplySemantics(t *testing.T) {
	sinks := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0), geom.Pt(3, 0)}
	d := Delta{
		Remove: []int{1},
		Move:   []Move{{Sink: 2, To: geom.Pt(2.5, 1)}},
		Add:    []geom.Point{geom.Pt(9, 9)},
	}
	if err := d.Validate(len(sinks)); err != nil {
		t.Fatal(err)
	}
	got, oldToNew := Apply(sinks, d)
	want := []geom.Point{geom.Pt(0, 0), geom.Pt(2.5, 1), geom.Pt(3, 0), geom.Pt(9, 9)}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Apply = %v, want %v", got, want)
	}
	if !reflect.DeepEqual(oldToNew, []int{0, -1, 1, 2}) {
		t.Fatalf("oldToNew = %v", oldToNew)
	}
}

func TestDeltaValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		d    Delta
	}{
		{"remove out of range", Delta{Remove: []int{4}}},
		{"negative remove", Delta{Remove: []int{-1}}},
		{"double remove", Delta{Remove: []int{1, 1}}},
		{"move out of range", Delta{Move: []Move{{Sink: 9, To: geom.Pt(0, 0)}}}},
		{"move of removed", Delta{Remove: []int{1}, Move: []Move{{Sink: 1, To: geom.Pt(0, 0)}}}},
		{"double move", Delta{Move: []Move{{Sink: 1, To: geom.Pt(0, 0)}, {Sink: 1, To: geom.Pt(1, 1)}}}},
		{"empties placement", Delta{Remove: []int{0, 1, 2, 3}}},
	}
	for _, tc := range cases {
		if err := tc.d.Validate(4); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	if (Delta{}).Validate(4) != nil {
		t.Error("empty delta must validate")
	}
	if !(Delta{}).Empty() || (Delta{Add: []geom.Point{{}}}).Empty() {
		t.Error("Empty misreports")
	}
}

// grid16 is a 4x4 unit grid of sinks, indices row-major.
func grid16() []geom.Point {
	sinks := make([]geom.Point, 0, 16)
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			sinks = append(sinks, geom.Pt(float64(x)*10, float64(y)*10))
		}
	}
	return sinks
}

func priorRegions(t *testing.T, sinks []geom.Point, maxSinks int) []partition.Region {
	t.Helper()
	regions, err := partition.Split(sinks, partition.Options{MaxSinks: maxSinks})
	if err != nil {
		t.Fatal(err)
	}
	return regions
}

func TestPlanRegionsCleanReuse(t *testing.T) {
	sinks := grid16()
	prior := priorRegions(t, sinks, 4)
	// Move one sink within its region: exactly one region dirty, the rest
	// reuse their prior geometry bit-identically.
	d := Delta{Move: []Move{{Sink: 0, To: geom.Pt(1, 1)}}}
	newSinks, oldToNew := Apply(sinks, d)
	plan, err := PlanRegions(prior, sinks, oldToNew, newSinks, d, partition.Options{MaxSinks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Regions) != len(prior) {
		t.Fatalf("region count changed: %d -> %d", len(prior), len(plan.Regions))
	}
	if plan.DirtyCount() != 1 {
		t.Fatalf("dirty count %d, want 1", plan.DirtyCount())
	}
	for i := range plan.Regions {
		if plan.Dirty[i] {
			continue
		}
		p := prior[plan.Prev[i]]
		if plan.Regions[i].Anchor != p.Anchor || plan.Regions[i].Box != p.Box {
			t.Fatalf("clean region %d geometry drifted", i)
		}
		if !reflect.DeepEqual(plan.Regions[i].Sinks, p.Sinks) {
			// With no removals the remapping is the identity here.
			t.Fatalf("clean region %d membership drifted", i)
		}
	}
}

func TestPlanRegionsAddAssignmentAndResplit(t *testing.T) {
	sinks := grid16()
	prior := priorRegions(t, sinks, 4)
	// Pile 5 adds onto the region around (0,0): it must go dirty and split
	// into capacity-sized pieces.
	d := Delta{Add: []geom.Point{
		geom.Pt(1, 1), geom.Pt(2, 1), geom.Pt(1, 2), geom.Pt(2, 2), geom.Pt(3, 3),
	}}
	newSinks, oldToNew := Apply(sinks, d)
	plan, err := PlanRegions(prior, sinks, oldToNew, newSinks, d, partition.Options{MaxSinks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Regions) <= len(prior) {
		t.Fatalf("overfull dirty region was not re-split: %d regions", len(plan.Regions))
	}
	for i, r := range plan.Regions {
		if len(r.Sinks) > 4 {
			t.Fatalf("region %d holds %d sinks past the capacity", i, len(r.Sinks))
		}
		if !plan.Dirty[i] && plan.Prev[i] < 0 {
			t.Fatalf("clean region %d lost its prior link", i)
		}
	}
	// Determinism: planning twice gives the same plan.
	again, err := PlanRegions(prior, sinks, oldToNew, newSinks, d, partition.Options{MaxSinks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plan, again) {
		t.Fatal("PlanRegions is not deterministic")
	}
}

func TestPlanRegionsRemovalEmptiesRegion(t *testing.T) {
	sinks := grid16()
	prior := priorRegions(t, sinks, 4)
	var d Delta
	d.Remove = append(d.Remove, prior[0].Sinks...)
	newSinks, oldToNew := Apply(sinks, d)
	plan, err := PlanRegions(prior, sinks, oldToNew, newSinks, d, partition.Options{MaxSinks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Regions) != len(prior)-1 {
		t.Fatalf("emptied region not dropped: %d regions", len(plan.Regions))
	}
}

func TestPlanClusters(t *testing.T) {
	// Two clusters: sinks 0,1 near (0,0); sinks 2,3 near (100,0).
	clusterOf := []int{0, 0, 1, 1}
	centroids := []geom.Point{geom.Pt(0, 0), geom.Pt(100, 0)}
	sinks := []geom.Point{geom.Pt(0, 1), geom.Pt(1, 0), geom.Pt(100, 1), geom.Pt(101, 0)}
	d := Delta{
		Remove: []int{0},
		Add:    []geom.Point{geom.Pt(99, 0)}, // nearest centroid 1
	}
	newSinks, oldToNew := Apply(sinks, d)
	plan, err := PlanClusters(clusterOf, centroids, oldToNew, newSinks, d)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plan.Clusters, []int{0, 1}) {
		t.Fatalf("dirty clusters %v", plan.Clusters)
	}
	// Cluster 0 keeps surviving sink 1 (new index 0); cluster 1 gains the
	// add (new index 3).
	if !reflect.DeepEqual(plan.Members[0], []int{0}) {
		t.Fatalf("cluster 0 members %v", plan.Members[0])
	}
	if !reflect.DeepEqual(plan.Members[1], []int{1, 2, 3}) {
		t.Fatalf("cluster 1 members %v", plan.Members[1])
	}
	if plan.Total != 2 {
		t.Fatalf("total %d", plan.Total)
	}
}

func TestSplitMembersBounded(t *testing.T) {
	sinks := grid16()
	members := []int{0, 1, 2, 3, 4, 5, 6, 7, 8}
	groups, err := partition.SplitMembers(sinks, members, partition.Options{MaxSinks: 3})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, g := range groups {
		if len(g) > 3 {
			t.Fatalf("group %v past capacity", g)
		}
		for _, si := range g {
			if seen[si] {
				t.Fatalf("sink %d in two groups", si)
			}
			seen[si] = true
		}
	}
	if len(seen) != len(members) {
		t.Fatalf("%d of %d members grouped", len(seen), len(members))
	}
}
