package eco

import (
	"encoding/json"
	"fmt"
	"io"

	"dscts/internal/corner"
	"dscts/internal/geom"
)

// jsonSpec is the on-disk delta format consumed by the CLI (-eco-from):
//
//	{
//	  "add":    [{"x": 10, "y": 20}, ...],
//	  "move":   [{"sink": 7, "x": 100.5, "y": 200.25}, ...],
//	  "remove": [3, 17],
//	  "corners": ["slow", "typ", "fast"]
//	}
//
// The HTTP layer has its own structurally identical wire format
// (serve.DeltaSpec), kept separate because it participates in the versioned
// cache-key encoding.
type jsonSpec struct {
	Add []struct {
		X float64 `json:"x"`
		Y float64 `json:"y"`
	} `json:"add"`
	Move []struct {
		Sink int     `json:"sink"`
		X    float64 `json:"x"`
		Y    float64 `json:"y"`
	} `json:"move"`
	Remove  []int    `json:"remove"`
	Corners []string `json:"corners"`
}

// LoadJSON reads a delta spec. Unknown fields are rejected so a typo'd edit
// cannot silently no-op; corner names resolve against the built-in presets.
// The returned delta still needs Validate against the base sink count.
func LoadJSON(r io.Reader) (Delta, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var spec jsonSpec
	if err := dec.Decode(&spec); err != nil {
		return Delta{}, fmt.Errorf("eco: invalid delta JSON: %w", err)
	}
	var d Delta
	for _, p := range spec.Add {
		d.Add = append(d.Add, geom.Pt(p.X, p.Y))
	}
	for _, m := range spec.Move {
		d.Move = append(d.Move, Move{Sink: m.Sink, To: geom.Pt(m.X, m.Y)})
	}
	d.Remove = spec.Remove
	for _, name := range spec.Corners {
		c, err := corner.ByName(name)
		if err != nil {
			return Delta{}, fmt.Errorf("eco: %w", err)
		}
		d.SetCorners = append(d.SetCorners, c)
	}
	return d, nil
}
