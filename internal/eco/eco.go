// Package eco models engineering change orders against a finished synthesis:
// a Delta of sink edits (add/move/remove) plus optional corner- or
// technology-set replacements, applied to a prior placement to produce the
// post-ECO placement and an index remapping. The planners here compute the
// dirty set the incremental engine (core.SynthesizeECO) re-synthesizes —
// affected regions under partitioning, affected low-level clusters
// monolithically — as pure functions of (prior state, delta), so the dirty
// set, like everything else in this codebase, is deterministic in the worker
// count and in iteration order.
package eco

import (
	"fmt"
	"math"
	"sort"

	"dscts/internal/corner"
	"dscts/internal/geom"
	"dscts/internal/partition"
	"dscts/internal/tech"
)

// Move relocates one existing sink.
type Move struct {
	// Sink is the sink's index in the PRIOR placement.
	Sink int
	// To is the new position (µm).
	To geom.Point
}

// Delta is one engineering change order against a prior synthesis. The zero
// value is the empty delta: applying it is defined to reproduce the prior
// outcome bit-identically.
type Delta struct {
	// Add appends new sinks; they take the indices following the surviving
	// prior sinks in the post-ECO placement.
	Add []geom.Point
	// Move relocates prior sinks in place (their relative order is kept).
	Move []Move
	// Remove drops prior sinks by index; the survivors' indices compact
	// while preserving order.
	Remove []int
	// SetCorners, when non-empty, replaces the sign-off corner set of the
	// prior run. Corner changes never dirty the tree: only the sign-off
	// re-evaluation re-runs.
	SetCorners []corner.Corner
	// SetTech, when non-nil, replaces the technology. A tech change
	// invalidates every delay and sizing decision in the retained tree, so
	// the dirty set is the whole design: the engine falls back to a full
	// re-synthesis of the post-ECO placement.
	SetTech *tech.Tech
}

// Empty reports whether the delta changes nothing at all.
func (d Delta) Empty() bool {
	return len(d.Add) == 0 && len(d.Move) == 0 && len(d.Remove) == 0 &&
		len(d.SetCorners) == 0 && d.SetTech == nil
}

// Geometric reports whether the delta edits the placement itself (as
// opposed to only the corner or technology sets).
func (d Delta) Geometric() bool {
	return len(d.Add) > 0 || len(d.Move) > 0 || len(d.Remove) > 0
}

// Validate rejects deltas that do not describe a well-formed edit of a
// placement with nSinks sinks: out-of-range or duplicate removals, moves of
// unknown or removed sinks, duplicate moves, non-finite coordinates, and
// edits that would leave no sinks at all.
func (d Delta) Validate(nSinks int) error {
	removed := make(map[int]bool, len(d.Remove))
	for _, r := range d.Remove {
		if r < 0 || r >= nSinks {
			return fmt.Errorf("eco: remove index %d out of range [0,%d)", r, nSinks)
		}
		if removed[r] {
			return fmt.Errorf("eco: sink %d removed twice", r)
		}
		removed[r] = true
	}
	moved := make(map[int]bool, len(d.Move))
	for _, m := range d.Move {
		if m.Sink < 0 || m.Sink >= nSinks {
			return fmt.Errorf("eco: move index %d out of range [0,%d)", m.Sink, nSinks)
		}
		if removed[m.Sink] {
			return fmt.Errorf("eco: sink %d both moved and removed", m.Sink)
		}
		if moved[m.Sink] {
			return fmt.Errorf("eco: sink %d moved twice", m.Sink)
		}
		moved[m.Sink] = true
		if !finite(m.To) {
			return fmt.Errorf("eco: move of sink %d to non-finite position", m.Sink)
		}
	}
	for i, p := range d.Add {
		if !finite(p) {
			return fmt.Errorf("eco: added sink %d has non-finite position", i)
		}
	}
	if nSinks-len(d.Remove)+len(d.Add) <= 0 {
		return fmt.Errorf("eco: delta leaves no sinks")
	}
	if len(d.SetCorners) > 0 {
		if err := corner.ValidateSet(d.SetCorners); err != nil {
			return fmt.Errorf("eco: %w", err)
		}
	}
	if d.SetTech != nil {
		if err := d.SetTech.Validate(); err != nil {
			return fmt.Errorf("eco: %w", err)
		}
	}
	return nil
}

func finite(p geom.Point) bool {
	return !math.IsNaN(p.X) && !math.IsInf(p.X, 0) && !math.IsNaN(p.Y) && !math.IsInf(p.Y, 0)
}

// Apply builds the post-ECO placement: surviving prior sinks first (moves
// applied in place, removals compacted, relative order preserved), then the
// added sinks in Delta order. It returns the new sink list and oldToNew,
// which maps every prior sink index to its post-ECO index (-1 for removed
// sinks). The delta must already have passed Validate.
func Apply(sinks []geom.Point, d Delta) (newSinks []geom.Point, oldToNew []int) {
	removed := make(map[int]bool, len(d.Remove))
	for _, r := range d.Remove {
		removed[r] = true
	}
	movedTo := make(map[int]geom.Point, len(d.Move))
	for _, m := range d.Move {
		movedTo[m.Sink] = m.To
	}
	newSinks = make([]geom.Point, 0, len(sinks)-len(d.Remove)+len(d.Add))
	oldToNew = make([]int, len(sinks))
	for i, p := range sinks {
		if removed[i] {
			oldToNew[i] = -1
			continue
		}
		if to, ok := movedTo[i]; ok {
			p = to
		}
		oldToNew[i] = len(newSinks)
		newSinks = append(newSinks, p)
	}
	newSinks = append(newSinks, d.Add...)
	return newSinks, oldToNew
}

// boxDist is the L1 distance from p to the box (0 inside).
func boxDist(b geom.BBox, p geom.Point) float64 {
	dx := math.Max(0, math.Max(b.MinX-p.X, p.X-b.MaxX))
	dy := math.Max(0, math.Max(b.MinY-p.Y, p.Y-b.MaxY))
	return dx + dy
}

// RegionPlan is the partitioned dirty set: the post-ECO region list plus,
// per region, whether it must be re-synthesized and — for clean regions —
// which prior region's tree and summary it reuses.
type RegionPlan struct {
	// Regions are the post-ECO regions: Sinks hold POST-ECO sink indices,
	// ascending; IDs are 0..len-1 in plan order (surviving prior regions in
	// prior-ID order, capacity re-splits expanded in place).
	Regions []partition.Region
	// Dirty marks regions that must re-run synthesis.
	Dirty []bool
	// Prev maps each region to the prior region index whose retained tree
	// and summary it reuses; -1 for dirty regions.
	Prev []int
}

// DirtyCount returns the number of dirty regions.
func (p *RegionPlan) DirtyCount() int {
	n := 0
	for _, d := range p.Dirty {
		if d {
			n++
		}
	}
	return n
}

// PlanRegions computes the partitioned dirty set. A prior region is dirty
// when it lost a sink, a member moved, or it received an added sink; added
// sinks go to the region nearest to them (L1 distance to the region's sink
// bounding box, ties to the lower prior region ID). A dirty region that
// outgrew opt.MaxSinks is re-cut with the same kd median strategy; a region
// emptied by removals is dropped. Clean regions keep their prior anchor and
// box bit-identically — their retained trees are rooted there.
func PlanRegions(prior []partition.Region, sinks []geom.Point, oldToNew []int, newSinks []geom.Point, d Delta, opt partition.Options) (*RegionPlan, error) {
	moved := make(map[int]bool, len(d.Move))
	for _, m := range d.Move {
		moved[m.Sink] = true
	}
	type work struct {
		members []int // post-ECO indices, ascending
		dirty   bool
		prev    int
		anchor  geom.Point
		box     geom.BBox
	}
	works := make([]work, len(prior))
	for i, r := range prior {
		w := &works[i]
		w.prev = i
		w.anchor, w.box = r.Anchor, r.Box
		w.members = make([]int, 0, len(r.Sinks))
		for _, old := range r.Sinks {
			ni := oldToNew[old]
			if ni < 0 {
				w.dirty = true // lost a member
				continue
			}
			if moved[old] {
				w.dirty = true
			}
			w.members = append(w.members, ni)
		}
	}
	// Adds: nearest prior region by box distance, ties to the lower ID.
	addBase := len(newSinks) - len(d.Add)
	for j := range d.Add {
		ni := addBase + j
		p := newSinks[ni]
		best, bestDist := -1, math.Inf(1)
		for i := range prior {
			if dist := boxDist(prior[i].Box, p); dist < bestDist {
				best, bestDist = i, dist
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("eco: no prior region for added sink %d", j)
		}
		works[best].members = append(works[best].members, ni)
		works[best].dirty = true
	}
	plan := &RegionPlan{}
	emit := func(members []int, dirty bool, prev int, anchor geom.Point, box geom.BBox) {
		id := len(plan.Regions)
		r := partition.Region{ID: id, Sinks: members}
		if dirty {
			// Recompute geometry: the region is re-synthesized anyway.
			var cx, cy float64
			for _, si := range members {
				r.Box.Grow(newSinks[si])
				cx += newSinks[si].X
				cy += newSinks[si].Y
			}
			n := float64(len(members))
			r.Anchor = geom.Pt(cx/n, cy/n)
			prev = -1
		} else {
			r.Anchor, r.Box = anchor, box
		}
		plan.Regions = append(plan.Regions, r)
		plan.Dirty = append(plan.Dirty, dirty)
		plan.Prev = append(plan.Prev, prev)
	}
	for i := range works {
		w := &works[i]
		if len(w.members) == 0 {
			continue // region emptied by removals
		}
		sort.Ints(w.members)
		if w.dirty && opt.MaxSinks > 0 && len(w.members) > opt.MaxSinks {
			groups, err := partition.SplitMembers(newSinks, w.members, opt)
			if err != nil {
				return nil, fmt.Errorf("eco: re-splitting region %d: %w", i, err)
			}
			for _, g := range groups {
				emit(g, true, -1, geom.Point{}, geom.BBox{})
			}
			continue
		}
		emit(w.members, w.dirty, w.prev, w.anchor, w.box)
	}
	if len(plan.Regions) == 0 {
		return nil, fmt.Errorf("eco: delta empties every region")
	}
	if err := partition.Validate(plan.Regions, len(newSinks)); err != nil {
		return nil, fmt.Errorf("eco: %w", err)
	}
	return plan, nil
}

// ClusterPlan is the monolithic dirty set: the affected low-level clusters
// and their post-ECO membership.
type ClusterPlan struct {
	// Clusters lists the dirty cluster indices, ascending.
	Clusters []int
	// Members[i] holds cluster Clusters[i]'s post-ECO sink indices,
	// ascending; an empty slice means the cluster lost all its sinks.
	Members [][]int
	// Total is the number of low-level clusters in the prior tree.
	Total int
}

// PlanClusters computes the monolithic dirty set from the prior sink→cluster
// assignment and the cluster centroid positions. A cluster is dirty when it
// lost a member, a member moved, or it receives an added sink; added sinks
// join the cluster with the nearest centroid (Manhattan distance, ties to
// the lower cluster index).
func PlanClusters(clusterOf []int, centroids []geom.Point, oldToNew []int, newSinks []geom.Point, d Delta) (*ClusterPlan, error) {
	if len(clusterOf) != len(oldToNew) {
		return nil, fmt.Errorf("eco: cluster map covers %d sinks, placement has %d", len(clusterOf), len(oldToNew))
	}
	dirty := make(map[int]bool)
	for _, r := range d.Remove {
		dirty[clusterOf[r]] = true
	}
	for _, m := range d.Move {
		dirty[clusterOf[m.Sink]] = true
	}
	addCluster := make([]int, len(d.Add))
	addBase := len(newSinks) - len(d.Add)
	for j := range d.Add {
		p := newSinks[addBase+j]
		best, bestDist := -1, math.Inf(1)
		for c, ctr := range centroids {
			if dist := p.Dist(ctr); dist < bestDist {
				best, bestDist = c, dist
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("eco: no prior cluster for added sink %d", j)
		}
		addCluster[j] = best
		dirty[best] = true
	}
	plan := &ClusterPlan{Total: len(centroids)}
	for c := range centroids {
		if dirty[c] {
			plan.Clusters = append(plan.Clusters, c)
		}
	}
	members := make(map[int][]int, len(plan.Clusters))
	for old, c := range clusterOf {
		if !dirty[c] {
			continue
		}
		if ni := oldToNew[old]; ni >= 0 {
			members[c] = append(members[c], ni)
		}
	}
	for j, c := range addCluster {
		members[c] = append(members[c], addBase+j)
	}
	plan.Members = make([][]int, len(plan.Clusters))
	for i, c := range plan.Clusters {
		m := members[c]
		sort.Ints(m)
		if m == nil {
			m = []int{}
		}
		plan.Members[i] = m
	}
	return plan, nil
}
