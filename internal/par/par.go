// Package par holds the tiny worker-pool primitives shared by the parallel
// phases of the synthesis flow (clustering, DP insertion, DSE sweeps, skew
// refinement).
//
// Every parallel loop in this codebase is designed so that its result is a
// pure function of its inputs — never of the schedule — so a caller may pick
// any worker count (including 1) and obtain bit-identical output. The
// helpers here only distribute work; they deliberately carry no per-item
// state of their own.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// N resolves a Workers option: values <= 0 mean "use every available CPU"
// (runtime.GOMAXPROCS), anything else is taken literally.
func N(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// ForEach runs fn(i) for every i in [0, n) using the given number of
// workers. Iterations must be independent: fn must not mutate state shared
// with another index except through disjoint writes (e.g. out[i] = ...).
// With workers <= 1 the loop runs inline on the calling goroutine, with no
// goroutine or channel overhead.
func ForEach(workers, n int, fn func(i int)) {
	workers = N(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Chunks splits [0, n) into contiguous chunks of the given size and runs
// fn(lo, hi) for each on the given number of workers. Chunk boundaries
// depend only on n and chunk — never on the worker count — so per-chunk
// partial results can be merged in chunk order to give schedule-independent
// (and therefore worker-count-independent) floating-point sums.
func Chunks(workers, n, chunk int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if chunk <= 0 {
		chunk = 1
	}
	nChunks := (n + chunk - 1) / chunk
	ForEach(workers, nChunks, func(c int) {
		lo := c * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	})
}
