package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestN(t *testing.T) {
	if got := N(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("N(0) = %d, want GOMAXPROCS", got)
	}
	if got := N(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("N(-3) = %d, want GOMAXPROCS", got)
	}
	if got := N(5); got != 5 {
		t.Fatalf("N(5) = %d", got)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		const n = 1000
		var hits [n]int32
		ForEach(workers, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
	// n smaller than workers and n == 0 must be safe.
	var count atomic.Int32
	ForEach(8, 3, func(i int) { count.Add(1) })
	if count.Load() != 3 {
		t.Fatalf("short run executed %d of 3", count.Load())
	}
	ForEach(4, 0, func(i int) { t.Fatal("fn called for n=0") })
}

func TestChunksPartition(t *testing.T) {
	for _, workers := range []int{1, 3} {
		const n, chunk = 1037, 64
		var hits [n]int32
		Chunks(workers, n, chunk, func(lo, hi int) {
			if hi-lo > chunk || lo >= hi {
				t.Errorf("bad chunk [%d,%d)", lo, hi)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d covered %d times", workers, i, h)
			}
		}
	}
}
