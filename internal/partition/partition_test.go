package partition

import (
	"math/rand"
	"reflect"
	"testing"

	"dscts/internal/geom"
)

func randomSinks(n int, seed int64, side float64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	out := make([]geom.Point, n)
	for i := range out {
		out[i] = geom.Pt(rng.Float64()*side, rng.Float64()*side)
	}
	return out
}

func TestSplitCoversAndBounds(t *testing.T) {
	sinks := randomSinks(5000, 1, 1000)
	for _, strat := range []string{"", StrategyKD, StrategyGrid} {
		regions, err := Split(sinks, Options{MaxSinks: 300, Strategy: strat})
		if err != nil {
			t.Fatalf("strategy %q: %v", strat, err)
		}
		if err := Validate(regions, len(sinks)); err != nil {
			t.Fatalf("strategy %q: %v", strat, err)
		}
		if len(regions) < 2 {
			t.Fatalf("strategy %q: expected multiple regions, got %d", strat, len(regions))
		}
		for _, r := range regions {
			if len(r.Sinks) > 300 {
				t.Fatalf("strategy %q: region %d holds %d > 300 sinks", strat, r.ID, len(r.Sinks))
			}
			if !r.Box.Contains(r.Anchor, 1e-9) {
				t.Fatalf("strategy %q: region %d anchor %v outside box", strat, r.ID, r.Anchor)
			}
		}
	}
}

func TestSplitDeterministic(t *testing.T) {
	sinks := randomSinks(3000, 7, 800)
	opt := Options{MaxSinks: 250, Macros: []geom.BBox{geom.NewBBox(geom.Pt(100, 100), geom.Pt(300, 400))}}
	a, err := Split(sinks, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Split(sinks, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Split is not deterministic")
	}
}

func TestSplitSingleRegion(t *testing.T) {
	sinks := randomSinks(100, 3, 50)
	for _, opt := range []Options{{}, {MaxSinks: 100}, {MaxSinks: 5000}} {
		regions, err := Split(sinks, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(regions) != 1 || len(regions[0].Sinks) != 100 {
			t.Fatalf("opt %+v: want one full region, got %d regions", opt, len(regions))
		}
	}
}

// TestMacroAwareCut pins the macro-aware nudge: with a macro straddling the
// population median, the chosen cut line must not pass through it.
func TestMacroAwareCut(t *testing.T) {
	// Two uniform halves with a macro centered on the X median.
	var sinks []geom.Point
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		sinks = append(sinks, geom.Pt(rng.Float64()*1000, rng.Float64()*100))
	}
	macro := geom.NewBBox(geom.Pt(460, -10), geom.Pt(540, 110))
	regions, err := Split(sinks, Options{MaxSinks: 600, Macros: []geom.BBox{macro}})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(regions, len(sinks)); err != nil {
		t.Fatal(err)
	}
	if len(regions) != 2 {
		t.Fatalf("want 2 regions, got %d", len(regions))
	}
	// The cut line lies between the two regions' X extents; it must avoid
	// the macro interior.
	line := (regions[0].Box.MaxX + regions[1].Box.MinX) / 2
	if line > macro.MinX && line < macro.MaxX {
		t.Fatalf("cut line %.1f runs through macro [%.1f, %.1f]", line, macro.MinX, macro.MaxX)
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := (Options{MaxSinks: -1}).Validate(); err == nil {
		t.Fatal("negative MaxSinks accepted")
	}
	if err := (Options{Strategy: "voronoi"}).Validate(); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	if _, err := Split(nil, Options{MaxSinks: 10}); err == nil {
		t.Fatal("empty sink set accepted")
	}
}

func TestGridStrategyBoundsOverfullCells(t *testing.T) {
	// A single dense hotspot: uniform grid cells overflow and must be
	// kd-split down to capacity.
	var sinks []geom.Point
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		sinks = append(sinks, geom.Pt(500+rng.NormFloat64(), 500+rng.NormFloat64()))
	}
	for i := 0; i < 500; i++ {
		sinks = append(sinks, geom.Pt(rng.Float64()*1000, rng.Float64()*1000))
	}
	regions, err := Split(sinks, Options{MaxSinks: 200, Strategy: StrategyGrid})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(regions, len(sinks)); err != nil {
		t.Fatal(err)
	}
	for _, r := range regions {
		if len(r.Sinks) > 200 {
			t.Fatalf("region %d holds %d > 200 sinks", r.ID, len(r.Sinks))
		}
	}
}
