// Package partition splits a die into capacity-bounded regions for the
// partition-parallel mega-scale pipeline: each region holds at most MaxSinks
// sinks and is synthesized independently (clustering → DME → insertion →
// refinement), after which the stitch stage merges the region roots under a
// top tree (see internal/core and DESIGN.md §3).
//
// The default strategy is a kd-style recursive median cut: regions follow
// the sink density by construction (every cut splits the population, not the
// area, in half), and the cut-line chooser is aware of macro blockages — a
// cut that would run through a macro is nudged to the macro's edge so region
// boundaries land in routable space. The alternative "grid" strategy tiles
// the sink bounding box uniformly and kd-splits only the cells that overflow
// the capacity, which gives more square regions on uniform placements.
//
// Split is deterministic: the regions, their IDs and their sink membership
// are a pure function of the sinks and the options, never of a worker count
// or iteration order.
package partition

import (
	"fmt"
	"math"
	"sort"

	"dscts/internal/geom"
)

// Strategies accepted by Options.Strategy.
const (
	// StrategyKD is the default recursive median cut.
	StrategyKD = "kd"
	// StrategyGrid tiles the sink bounding box uniformly, kd-splitting
	// overfull cells.
	StrategyGrid = "grid"
)

// Options configures Split. The zero value disables partitioning
// (MaxSinks == 0): callers treat that as "run the monolithic flow".
type Options struct {
	// MaxSinks is the region capacity: no region holds more sinks than
	// this. 0 disables partitioning.
	MaxSinks int
	// Strategy selects the cut scheme: "kd" (default) or "grid".
	Strategy string
	// Macros are blockages the kd cut-line chooser avoids slicing through.
	// They never affect which sinks end up together beyond moving the cut
	// coordinate; sink membership itself stays a median split.
	Macros []geom.BBox
}

// Enabled reports whether the options ask for partitioning at all.
func (o Options) Enabled() bool { return o.MaxSinks > 0 }

// Validate rejects malformed options.
func (o Options) Validate() error {
	if o.MaxSinks < 0 {
		return fmt.Errorf("partition: MaxSinks must be >= 0, got %d", o.MaxSinks)
	}
	switch o.Strategy {
	case "", StrategyKD, StrategyGrid:
	default:
		return fmt.Errorf("partition: unknown strategy %q (want %q or %q)", o.Strategy, StrategyKD, StrategyGrid)
	}
	return nil
}

// Region is one capacity-bounded piece of the die.
type Region struct {
	// ID is the region's index in the deterministic Split order.
	ID int
	// Box is the bounding box of the region's sinks.
	Box geom.BBox
	// Sinks are the ORIGINAL sink indices of the region, ascending.
	Sinks []int
	// Anchor is the region's clock entry point — the sink centroid — where
	// the region-local tree is rooted and the top tree taps in.
	Anchor geom.Point
}

// Split partitions the sinks into capacity-bounded regions. With
// partitioning disabled, or when every sink fits one region, it returns a
// single region covering everything.
func Split(sinks []geom.Point, opt Options) ([]Region, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if len(sinks) == 0 {
		return nil, fmt.Errorf("partition: no sinks")
	}
	all := make([]int, len(sinks))
	for i := range all {
		all[i] = i
	}
	if !opt.Enabled() || len(sinks) <= opt.MaxSinks {
		return []Region{makeRegion(0, sinks, all)}, nil
	}
	var groups [][]int
	if opt.Strategy == StrategyGrid {
		for _, cell := range gridGroups(sinks, all, opt.MaxSinks) {
			groups = kdSplit(sinks, cell, opt, groups)
		}
	} else {
		groups = kdSplit(sinks, all, opt, nil)
	}
	out := make([]Region, len(groups))
	for i, g := range groups {
		sort.Ints(g)
		out[i] = makeRegion(i, sinks, g)
	}
	return out, nil
}

func makeRegion(id int, sinks []geom.Point, members []int) Region {
	r := Region{ID: id, Sinks: members}
	var cx, cy float64
	for _, si := range members {
		r.Box.Grow(sinks[si])
		cx += sinks[si].X
		cy += sinks[si].Y
	}
	n := float64(len(members))
	r.Anchor = geom.Pt(cx/n, cy/n)
	return r
}

// kdSplit recursively median-cuts the member set until every group fits the
// capacity, appending finished groups to acc in deterministic (depth-first,
// low-half-first) order.
func kdSplit(sinks []geom.Point, members []int, opt Options, acc [][]int) [][]int {
	if len(members) <= opt.MaxSinks {
		return append(acc, members)
	}
	var box geom.BBox
	for _, si := range members {
		box.Grow(sinks[si])
	}
	// Cut across the longer extent so regions stay roughly square.
	vertical := box.W() >= box.H() // vertical cut line: split by X
	coord := func(si int) float64 {
		if vertical {
			return sinks[si].X
		}
		return sinks[si].Y
	}
	other := func(si int) float64 {
		if vertical {
			return sinks[si].Y
		}
		return sinks[si].X
	}
	sorted := append([]int(nil), members...)
	sort.Slice(sorted, func(a, b int) bool {
		ia, ib := sorted[a], sorted[b]
		ca, cb := coord(ia), coord(ib)
		if ca != cb {
			return ca < cb
		}
		if oa, ob := other(ia), other(ib); oa != ob {
			return oa < ob
		}
		return ia < ib
	})
	cut := len(sorted) / 2
	cut = nudgeCutOffMacros(sorted, cut, coord, box, vertical, opt.Macros)
	lo := sorted[:cut]
	hi := sorted[cut:]
	acc = kdSplit(sinks, lo, opt, acc)
	return kdSplit(sinks, hi, opt, acc)
}

// SplitMembers kd-splits an explicit member set (original sink indices)
// into capacity-bounded groups, each sorted ascending, in the same
// deterministic depth-first order Split uses. It exists for incremental
// re-synthesis: a dirty region that grew past the capacity is re-cut in
// place without re-partitioning the whole die. MaxSinks must be positive.
func SplitMembers(sinks []geom.Point, members []int, opt Options) ([][]int, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if !opt.Enabled() {
		return nil, fmt.Errorf("partition: SplitMembers needs MaxSinks > 0")
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("partition: no members")
	}
	groups := kdSplit(sinks, append([]int(nil), members...), opt, nil)
	for _, g := range groups {
		sort.Ints(g)
	}
	return groups, nil
}

// nudgeCutOffMacros moves the median split index so the induced cut line —
// halfway between the two sinks adjacent to the split — does not run through
// a macro blockage that crosses the region. It scans outward from the median
// for the nearest legal split, preferring the smaller index on ties, and
// keeps at least one sink on each side; if every split position is blocked
// the median stands.
func nudgeCutOffMacros(sorted []int, cut int, coord func(int) float64, box geom.BBox, vertical bool, macros []geom.BBox) int {
	if len(macros) == 0 {
		return cut
	}
	legal := func(c int) bool {
		if c <= 0 || c >= len(sorted) {
			return false
		}
		line := (coord(sorted[c-1]) + coord(sorted[c])) / 2
		for _, m := range macros {
			var cutsMacro bool
			if vertical {
				cutsMacro = line > m.MinX && line < m.MaxX &&
					box.MinY < m.MaxY && box.MaxY > m.MinY
			} else {
				cutsMacro = line > m.MinY && line < m.MaxY &&
					box.MinX < m.MaxX && box.MaxX > m.MinX
			}
			if cutsMacro {
				return false
			}
		}
		return true
	}
	if legal(cut) {
		return cut
	}
	for d := 1; d < len(sorted); d++ {
		if legal(cut - d) {
			return cut - d
		}
		if legal(cut + d) {
			return cut + d
		}
	}
	return cut
}

// gridGroups tiles the sink bounding box with ceil(sqrt(n/maxSinks))²
// cells and buckets the members; empty cells are dropped. Cells are emitted
// row-major, so the grouping is deterministic.
func gridGroups(sinks []geom.Point, members []int, maxSinks int) [][]int {
	var box geom.BBox
	for _, si := range members {
		box.Grow(sinks[si])
	}
	g := int(math.Ceil(math.Sqrt(float64(len(members)) / float64(maxSinks))))
	if g < 1 {
		g = 1
	}
	w, h := box.W(), box.H()
	cellOf := func(si int) int {
		cx, cy := 0, 0
		if w > 0 {
			cx = int(float64(g) * (sinks[si].X - box.MinX) / w)
		}
		if h > 0 {
			cy = int(float64(g) * (sinks[si].Y - box.MinY) / h)
		}
		if cx >= g {
			cx = g - 1
		}
		if cy >= g {
			cy = g - 1
		}
		return cy*g + cx
	}
	cells := make([][]int, g*g)
	for _, si := range members {
		c := cellOf(si)
		cells[c] = append(cells[c], si)
	}
	var out [][]int
	for _, cell := range cells {
		if len(cell) > 0 {
			out = append(out, cell)
		}
	}
	return out
}

// Validate checks that the regions are a partition of [0, n): every sink in
// exactly one region, no empty regions, IDs in slice order.
func Validate(regions []Region, n int) error {
	seen := make([]bool, n)
	total := 0
	for i, r := range regions {
		if r.ID != i {
			return fmt.Errorf("partition: region %d has ID %d", i, r.ID)
		}
		if len(r.Sinks) == 0 {
			return fmt.Errorf("partition: region %d is empty", i)
		}
		for _, s := range r.Sinks {
			if s < 0 || s >= n {
				return fmt.Errorf("partition: sink index %d out of range", s)
			}
			if seen[s] {
				return fmt.Errorf("partition: sink %d assigned twice", s)
			}
			seen[s] = true
			total++
		}
	}
	if total != n {
		return fmt.Errorf("partition: %d of %d sinks assigned", total, n)
	}
	return nil
}
