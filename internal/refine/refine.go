// Package refine implements the resource-aware end-point skew refinement of
// Sec. III-D: when the post-insertion skew exceeds p% of the maximum
// latency, up to n = min(N·t, m) end-points are refined by inserting one
// buffer at their low-level clustering centroids, where t is the adaptive
// scale factor of Fig. 8 and m bounds the total refinement budget.
//
// An end-point buffer changes timing two ways: it shields the leaf net's
// capacitance from the trunk (speeding the shared upstream path) and adds a
// gate delay to its own cluster's sinks. Refinement is therefore applied one
// end-point at a time in descending order of delay, keeping an insertion
// only if it improves skew without degrading latency beyond a guard band —
// that is the "resource-aware" part: buffers that do not pay for themselves
// are rolled back. If the slow-side pass leaves the skew above target, a
// second pass pads the fastest end-points (raising the minimum delay), a
// documented extension that keeps the method effective when slow paths are
// wire-dominated (see DESIGN.md).
package refine

import (
	"context"
	"fmt"
	"math"
	"sort"

	"dscts/internal/arena"
	"dscts/internal/ctree"
	"dscts/internal/eval"
	"dscts/internal/par"
	"dscts/internal/tech"
)

// Params are the tuning knobs of Sec. III-D.
type Params struct {
	// TriggerPct is p: refinement triggers when skew > p% of latency.
	// Paper value 23.
	TriggerPct float64
	// MaxEndpoints is m, the refinement budget. Paper value 33.
	MaxEndpoints int
	// LatencyGuard bounds acceptable latency degradation per accepted
	// buffer, as a fraction (default 0.02 = 2%).
	LatencyGuard float64
	// EnablePadding enables the fast-side padding pass.
	EnablePadding bool
	// Workers bounds the concurrency of the speculative trial
	// evaluations; <= 0 means all CPUs. Candidates are still consumed in
	// rank order against the same accepted state, so every worker count
	// makes exactly the same accept/reject decisions as the sequential
	// pass.
	Workers int
	// Arena sources the evaluation working set (WhatIf model, trial
	// scratches) from the owning job's arena; nil falls back to the
	// package pools. Identical results either way.
	Arena *arena.Job
}

// DefaultParams returns the paper's experimental settings.
func DefaultParams() Params {
	return Params{TriggerPct: 23, MaxEndpoints: 33, LatencyGuard: 0.02, EnablePadding: true}
}

// AdaptiveT is the adaptive scale factor t of Fig. 8 as a function of
// x = N/10,000: t stays at 0.10 up to x = 0.6, decreases linearly to 0.06
// at x = 1.0, and saturates at 0.06 beyond.
func AdaptiveT(n int) float64 {
	x := float64(n) / 10000.0
	switch {
	case x <= 0.6:
		return 0.10
	case x >= 1.0:
		return 0.06
	default:
		return 0.10 - (x-0.6)/(1.0-0.6)*0.04
	}
}

// Budget returns n = min(N·t, m), the number of end-points to refine.
func Budget(sinks int, p Params) int {
	n := int(math.Ceil(float64(sinks) * AdaptiveT(sinks)))
	if n > p.MaxEndpoints {
		n = p.MaxEndpoints
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Report describes what the refinement did.
type Report struct {
	Triggered     bool
	Before, After eval.Metrics
	Inserted      int // buffers accepted
	Attempted     int // end-points tried
}

// Refine runs skew refinement on the tree in place.
//
// The accept/reject loop evaluates candidates against a WhatIf view of the
// RC network (built once) instead of re-running a full Evaluate per
// attempt. Trials are speculatively evaluated in parallel batches of up to
// Params.Workers candidates: every candidate in a batch is judged against
// the same accepted state, the batch is then consumed in rank order, and
// the first acceptance discards the stale remainder — which is exactly the
// decision sequence of the sequential loop, for every worker count.
func Refine(t *ctree.Tree, tc *tech.Tech, p Params) (*Report, error) {
	return RefineContext(context.Background(), t, tc, p)
}

// RefineContext is Refine with cancellation: the context is observed before
// every speculative trial batch, so a cancelled refinement stops between
// batches and returns an error wrapping ctx.Err() with the tree unchanged
// (accepted end-point buffers are only applied on success).
func RefineContext(ctx context.Context, t *ctree.Tree, tc *tech.Tech, p Params) (*Report, error) {
	if p.TriggerPct <= 0 {
		return nil, fmt.Errorf("refine: trigger percentage must be positive, got %v", p.TriggerPct)
	}
	ev := eval.New(tc, eval.Elmore)
	before, err := ev.EvaluateIn(t, p.Arena)
	if err != nil {
		return nil, fmt.Errorf("refine: %w", err)
	}
	rep := &Report{Before: *before, After: *before}
	target := p.TriggerPct / 100 * before.Latency
	if before.Skew <= target {
		return rep, nil
	}
	rep.Triggered = true

	n := Budget(len(before.SinkDelays), p)
	workers := par.N(p.Workers)

	w := eval.NewWhatIfIn(t, tc, p.Arena)
	defer eval.ReleaseWhatIf(p.Arena, w)
	scratches := make([]*eval.WhatIfScratch, workers)
	for i := range scratches {
		scratches[i] = w.NewScratch()
	}
	defer func() {
		for _, sc := range scratches {
			w.PutScratch(sc)
		}
	}()
	// Per-sink delays of the current accepted state, indexed by original
	// sink index (the ranking key).
	maxSink := 0
	for idx := range before.SinkDelays {
		if idx > maxSink {
			maxSink = idx
		}
	}
	sinkDelay := make([]float64, maxSink+1)
	// Seed the loop state from the WhatIf model itself (not the reference
	// Evaluate, which sums in a different order and agrees only to ~1e-9)
	// so every accept/reject comparison is internally consistent.
	curLat, curSkew := w.Eval(-1, scratches[0], sinkDelay)
	delaysStale := false

	// Rank centroids by the delay of their slowest sink (descending).
	type endpoint struct {
		node  int
		slot  int32
		delay float64
	}
	rank := func(slowFirst bool) []endpoint {
		var eps []endpoint
		for _, cid := range t.Centroids() {
			slot := w.SlotOf(cid)
			if t.Nodes[cid].BufferAtNode || slot < 0 || w.Committed(slot) {
				continue
			}
			worst, best := math.Inf(-1), math.Inf(1)
			for _, c := range t.Nodes[cid].Children {
				sn := &t.Nodes[c]
				if sn.Kind != ctree.KindSink {
					continue
				}
				d := sinkDelay[sn.SinkIdx]
				worst = math.Max(worst, d)
				best = math.Min(best, d)
			}
			if math.IsInf(worst, -1) {
				continue
			}
			if slowFirst {
				eps = append(eps, endpoint{cid, slot, worst})
			} else {
				eps = append(eps, endpoint{cid, slot, best})
			}
		}
		sort.Slice(eps, func(i, j int) bool {
			if slowFirst {
				return eps[i].delay > eps[j].delay
			}
			return eps[i].delay < eps[j].delay
		})
		return eps
	}

	lats := make([]float64, workers)
	skews := make([]float64, workers)
	var ctxErr error
	tryPass := func(slowFirst bool) {
		if delaysStale {
			// Ranking reads per-sink delays; refresh them once per pass
			// rather than on every accept.
			w.Eval(-1, scratches[0], sinkDelay)
			delaysStale = false
		}
		eps := rank(slowFirst)
		// The budget n counts refined (accepted) end-points; attempts are
		// bounded separately so rejected trials cannot stall the pass.
		maxAttempts := 4 * n
		if maxAttempts < 50 {
			maxAttempts = 50
		}
		attempts := 0
		for i := 0; i < len(eps); {
			if err := ctx.Err(); err != nil {
				ctxErr = err
				return
			}
			if rep.Inserted >= n || attempts >= maxAttempts || curSkew <= target {
				return
			}
			batch := workers
			if rem := len(eps) - i; batch > rem {
				batch = rem
			}
			// Speculate: judge the next `batch` candidates against the
			// same accepted state, each on its own scratch.
			par.ForEach(workers, batch, func(b int) {
				lats[b], skews[b] = w.Eval(eps[i+b].slot, scratches[b], nil)
			})
			accepted := false
			for b := 0; b < batch && !accepted; b++ {
				if rep.Inserted >= n || attempts >= maxAttempts || curSkew <= target {
					return
				}
				attempts++
				rep.Attempted++
				i++
				if skews[b] >= curSkew || lats[b] > curLat*(1+p.LatencyGuard) {
					continue // rejected, exactly as the sequential loop
				}
				w.Commit(eps[i-1].slot)
				// The trial already evaluated exactly this committed
				// state (same active slot set, same arithmetic).
				curLat, curSkew = lats[b], skews[b]
				delaysStale = true
				rep.Inserted++
				accepted = true // rest of the batch is stale; re-speculate
			}
		}
	}

	// Pass 1 (paper): descending order of delay — shield the slow side.
	tryPass(true)
	// Pass 2 (extension): pad the fast side while it helps, re-ranking
	// after each round since accepted buffers shift the delay profile.
	for round := 0; ctxErr == nil && p.EnablePadding && round < 6 && curSkew > target && rep.Inserted < n; round++ {
		ins := rep.Inserted
		tryPass(false)
		if rep.Inserted == ins {
			break
		}
	}
	if ctxErr != nil {
		return nil, fmt.Errorf("refine: %w", ctxErr)
	}

	// Apply the committed end-point buffers to the tree and report the
	// exact final metrics from a standard evaluation.
	for _, cid := range w.CommittedTreeNodes() {
		t.Nodes[cid].BufferAtNode = true
	}
	after, err := ev.EvaluateIn(t, p.Arena)
	if err != nil {
		return nil, fmt.Errorf("refine: %w", err)
	}
	rep.After = *after
	return rep, nil
}
