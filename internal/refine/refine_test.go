package refine

import (
	"math"
	"testing"

	"dscts/internal/ctree"
	"dscts/internal/eval"
	"dscts/internal/geom"
	"dscts/internal/tech"
)

func TestAdaptiveTMatchesFig8(t *testing.T) {
	cases := []struct {
		n    int
		want float64
	}{
		{0, 0.10},
		{1000, 0.10},
		{6000, 0.10},  // x = 0.6 boundary
		{8000, 0.08},  // midpoint of the ramp
		{10000, 0.06}, // x = 1.0
		{20000, 0.06}, // saturated
	}
	for _, c := range cases {
		if got := AdaptiveT(c.n); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("AdaptiveT(%d) = %v, want %v", c.n, got, c.want)
		}
	}
	// Monotone non-increasing over the whole range.
	prev := math.Inf(1)
	for n := 0; n <= 30000; n += 100 {
		v := AdaptiveT(n)
		if v > prev+1e-15 {
			t.Fatalf("AdaptiveT not non-increasing at %d", n)
		}
		prev = v
	}
}

func TestBudget(t *testing.T) {
	p := DefaultParams()
	// Small design: N·t below m.
	if got := Budget(100, p); got != 10 {
		t.Errorf("Budget(100) = %d, want 10", got)
	}
	// Large design: clipped at m = 33.
	if got := Budget(14338, p); got != 33 {
		t.Errorf("Budget(14338) = %d, want 33", got)
	}
	if got := Budget(1, p); got != 1 {
		t.Errorf("Budget(1) = %d, want 1", got)
	}
}

func TestDefaultParamsMatchPaper(t *testing.T) {
	p := DefaultParams()
	if p.TriggerPct != 23 || p.MaxEndpoints != 33 {
		t.Fatalf("p=%v m=%d; paper uses 23/33", p.TriggerPct, p.MaxEndpoints)
	}
}

// skewedTree builds a tree with a deliberately imbalanced pair of clusters:
// one hangs off a long heavy branch.
func skewedTree() *ctree.Tree {
	tr := ctree.New(geom.Pt(0, 0))
	st := tr.Add(0, ctree.KindSteiner, geom.Pt(10, 0))
	near := tr.AddCentroid(st, geom.Pt(20, 10), 0)
	far := tr.AddCentroid(st, geom.Pt(250, -10), 1)
	s := 0
	for i := 0; i < 6; i++ {
		tr.AddSink(near, geom.Pt(21+float64(i), 11), s)
		s++
	}
	for i := 0; i < 25; i++ {
		tr.AddSink(far, geom.Pt(251+float64(i%5), -11-float64(i/5)), s)
		s++
	}
	return tr
}

func TestRefineReducesSkew(t *testing.T) {
	tc := tech.ASAP7()
	tr := skewedTree()
	before, err := eval.New(tc, eval.Elmore).Evaluate(tr)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Refine(tr, tc, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Triggered {
		t.Fatalf("expected trigger: skew %v latency %v", before.Skew, before.Latency)
	}
	if rep.After.Skew >= before.Skew {
		t.Fatalf("skew not reduced: %v → %v", before.Skew, rep.After.Skew)
	}
	if rep.Inserted == 0 {
		t.Fatal("no buffers inserted")
	}
	// Latency must stay within the guard band per accepted buffer.
	if rep.After.Latency > before.Latency*math.Pow(1.02, float64(rep.Inserted))+1e-9 {
		t.Fatalf("latency blew up: %v → %v", before.Latency, rep.After.Latency)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRefineNoTriggerOnBalancedTree(t *testing.T) {
	tc := tech.ASAP7()
	tr := ctree.New(geom.Pt(0, 0))
	st := tr.Add(0, ctree.KindSteiner, geom.Pt(10, 0))
	a := tr.AddCentroid(st, geom.Pt(20, 10), 0)
	b := tr.AddCentroid(st, geom.Pt(20, -10), 1)
	tr.AddSink(a, geom.Pt(21, 11), 0)
	tr.AddSink(b, geom.Pt(21, -11), 1)
	rep, err := Refine(tr, tc, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Triggered || rep.Inserted != 0 {
		t.Fatalf("balanced tree must not trigger: %+v", rep)
	}
	bufs, _ := tr.Counts()
	if bufs != 0 {
		t.Fatal("buffers inserted without trigger")
	}
}

func TestRefineRespectsBudget(t *testing.T) {
	tc := tech.ASAP7()
	tr := skewedTree()
	p := DefaultParams()
	p.MaxEndpoints = 1
	rep, err := Refine(tr, tc, p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Attempted > 1 {
		t.Fatalf("attempted %d > budget 1", rep.Attempted)
	}
	if rep.Inserted > 1 {
		t.Fatalf("inserted %d > budget 1", rep.Inserted)
	}
}

func TestRefineParamValidation(t *testing.T) {
	tc := tech.ASAP7()
	tr := skewedTree()
	if _, err := Refine(tr, tc, Params{TriggerPct: 0}); err == nil {
		t.Fatal("zero trigger must error")
	}
}

func TestRefineRollbackKeepsMetricsConsistent(t *testing.T) {
	tc := tech.ASAP7()
	tr := skewedTree()
	rep, err := Refine(tr, tc, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// The reported After metrics must match a fresh evaluation of the tree.
	m, err := eval.New(tc, eval.Elmore).Evaluate(tr)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Skew-rep.After.Skew) > 1e-9 || math.Abs(m.Latency-rep.After.Latency) > 1e-9 {
		t.Fatalf("report (%v, %v) inconsistent with tree (%v, %v)",
			rep.After.Latency, rep.After.Skew, m.Latency, m.Skew)
	}
	bufs, _ := tr.Counts()
	if bufs != rep.Inserted {
		t.Fatalf("tree has %d buffers, report says %d", bufs, rep.Inserted)
	}
}
