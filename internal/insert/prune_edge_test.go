package insert

import (
	"testing"

	"dscts/internal/ctree"
)

// TestPruneTinyBudgets pins the thinning path for the smallest budgets:
// MaxPerSide is public API with no documented minimum, and maxKeep == 2
// used to divide by zero in the stride computation.
func TestPruneTinyBudgets(t *testing.T) {
	sols := []Solution{
		{Up: ctree.Front, Cap: 1, MaxD: 40},
		{Up: ctree.Front, Cap: 2, MaxD: 30},
		{Up: ctree.Front, Cap: 3, MaxD: 20},
		{Up: ctree.Front, Cap: 4, MaxD: 10},
	}
	for _, maxKeep := range []int{1, 2, 3} {
		out := prune(sols, maxKeep, false)
		if len(out) == 0 {
			t.Fatalf("maxKeep=%d: pruned to nothing", maxKeep)
		}
		if maxKeep > 1 && len(out) > maxKeep {
			t.Fatalf("maxKeep=%d: kept %d", maxKeep, len(out))
		}
		// The latency-best point must always survive thinning.
		found := false
		for _, s := range out {
			if s.MaxD == 10 {
				found = true
			}
		}
		if !found {
			t.Fatalf("maxKeep=%d: latency-best solution thinned away: %+v", maxKeep, out)
		}
	}
}
