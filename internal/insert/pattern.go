// Package insert implements the paper's core contribution: concurrent
// buffer and nTSV insertion by multi-objective dynamic programming over the
// double-side design space (Sec. III-C).
//
// The design space is the six edge patterns of Fig. 6 (P1 buffer, P2 front
// wire, P3 back wire, P4 back wire with an nTSV at each end, P5/P6 back wire
// with a single nTSV at one end), subject to the connectivity constraint
// that the shared vertex of adjacent edges has one side type. The DP walks a
// tree whose nodes are the clock-tree edges (Step 1), generates candidate
// solutions bottom-up by merging child sets and inserting patterns (Step 2),
// selects the root solution by the multi-objective enhancement score MOES =
// α·latency + β·buffers + γ·nTSVs (Step 3, Eq. 3) and retraces the decisions
// top-down (Step 4). Inferior-solution pruning à la van Ginneken [16] is
// applied per side type, which keeps the DP latency-optimal.
package insert

import (
	"fmt"

	"dscts/internal/ctree"
	"dscts/internal/tech"
	"dscts/internal/timing"
)

// Pattern enumerates the edge patterns P1-P6 of Fig. 6.
type Pattern int

const (
	// PBuffer (P1): front wire with one buffer at the midpoint.
	PBuffer Pattern = iota
	// PWireF (P2): plain front-side wire.
	PWireF
	// PWireB (P3): plain back-side wire.
	PWireB
	// PNTSV1 (P4): back-side wire with an nTSV at each endpoint; both
	// endpoints present front-side types.
	PNTSV1
	// PNTSV2 (P5): back-side wire with one nTSV at the downstream
	// (sink-side) end; upstream endpoint stays on the back side.
	PNTSV2
	// PNTSV3 (P6): back-side wire with one nTSV at the upstream
	// (root-side) end; downstream endpoint stays on the back side.
	PNTSV3
	numPatterns int = iota
)

// String returns the paper's pattern label.
func (p Pattern) String() string {
	switch p {
	case PBuffer:
		return "P1:Buffer"
	case PWireF:
		return "P2:Wiring_F"
	case PWireB:
		return "P3:Wiring_B"
	case PNTSV1:
		return "P4:NTSV1"
	case PNTSV2:
		return "P5:NTSV2"
	case PNTSV3:
		return "P6:NTSV3"
	}
	return fmt.Sprintf("P?(%d)", int(p))
}

// Wiring converts the pattern to the clock tree's edge annotation.
func (p Pattern) Wiring() ctree.EdgeWiring {
	switch p {
	case PBuffer:
		return ctree.EdgeWiring{WireSide: ctree.Front, BufMid: true}
	case PWireF:
		return ctree.EdgeWiring{WireSide: ctree.Front}
	case PWireB:
		return ctree.EdgeWiring{WireSide: ctree.Back}
	case PNTSV1:
		return ctree.EdgeWiring{WireSide: ctree.Back, TSVUp: true, TSVDown: true}
	case PNTSV2:
		return ctree.EdgeWiring{WireSide: ctree.Back, TSVDown: true}
	case PNTSV3:
		return ctree.EdgeWiring{WireSide: ctree.Back, TSVUp: true}
	}
	panic("insert: unknown pattern")
}

// UpSide returns the side type at the upstream (root-side) endpoint.
func (p Pattern) UpSide() ctree.Side { return p.Wiring().UpSide() }

// DownSide returns the side type at the downstream (sink-side) endpoint.
func (p Pattern) DownSide() ctree.Side { return p.Wiring().DownSide() }

// Buffers returns the buffer cost of the pattern.
func (p Pattern) Buffers() int { return p.Wiring().BufferCount() }

// NTSVs returns the nTSV cost of the pattern.
func (p Pattern) NTSVs() int { return p.Wiring().NTSVCount() }

// Mode is the nTSV inserting mode of a DP node (Sec. III-C2 Step 1).
type Mode int

const (
	// ModeFull allows all patterns P1-P6 (flexible nTSV).
	ModeFull Mode = iota
	// ModeIntra forbids nTSVs: only P1-P3 are allowed.
	ModeIntra
)

// Allowed reports whether pattern p may be inserted under mode m.
func (m Mode) Allowed(p Pattern) bool {
	if m == ModeIntra {
		return p == PBuffer || p == PWireF || p == PWireB
	}
	return true
}

// transfer applies pattern p across an edge of length L (µm), transforming
// the merged downstream state (cap C, path delays maxD/minD measured from
// the downstream endpoint) into the state at the upstream endpoint.
// feasible is false when the pattern violates the max-load constraint of
// the buffer it inserts.
func transfer(p Pattern, tc *tech.Tech, length, cap, maxD, minD float64) (upCap, upMaxD, upMinD float64, feasible bool) {
	front, back, tsv, buf := tc.Front(), tc.Back(), tc.TSV, tc.Buf
	switch p {
	case PWireF:
		d := timing.WireDelay(front, length, cap)
		return timing.WireCap(front, length, cap), maxD + d, minD + d, true
	case PWireB:
		d := timing.WireDelay(back, length, cap)
		return timing.WireCap(back, length, cap), maxD + d, minD + d, true
	case PBuffer:
		h := length / 2
		load := timing.WireCap(front, h, cap) // what the buffer drives
		if load > buf.MaxCap {
			return 0, 0, 0, false
		}
		down := timing.WireDelay(front, h, cap)
		gate := buf.Delay(load)
		up := timing.WireDelay(front, h, buf.InputCap)
		d := down + gate + up
		return timing.WireCap(front, h, buf.InputCap), maxD + d, minD + d, true
	case PNTSV1:
		d := timing.NTSVOnWireDelay(back, tsv, length, cap)
		return timing.NTSVOnWireCap(back, tsv, length, cap), maxD + d, minD + d, true
	case PNTSV2:
		d := timing.SingleNTSVDownDelay(back, tsv, length, cap)
		return timing.SingleNTSVDownCap(back, tsv, length, cap), maxD + d, minD + d, true
	case PNTSV3:
		d := timing.SingleNTSVUpDelay(back, tsv, length, cap)
		return timing.SingleNTSVUpCap(back, tsv, length, cap), maxD + d, minD + d, true
	}
	panic("insert: unknown pattern")
}
