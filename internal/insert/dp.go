package insert

import (
	"context"
	"fmt"
	"math"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"dscts/internal/arena"
	"dscts/internal/ctree"
	"dscts/internal/par"
	"dscts/internal/tech"
	"dscts/internal/timing"
)

// Solution is one DP candidate at a node (= clock-tree edge), describing the
// state at the edge's upstream endpoint after the edge's pattern is applied.
type Solution struct {
	// Up is the side type of the upstream endpoint.
	Up ctree.Side
	// Cap is the effective downstream capacitance seen at the upstream
	// endpoint.
	Cap float64
	// MaxD and MinD are the maximum and minimum delays from the upstream
	// endpoint to any sink below.
	MaxD, MinD float64
	// Bufs and TSVs count the resources used in the subtree.
	Bufs, TSVs int
	// Pattern is the pattern assigned to this edge.
	Pattern Pattern
	// left and right are the chosen solution indices in the child DP
	// nodes (-1 when absent), recorded for the top-down retrace.
	left, right int32
	// rootIdx records, for root-set candidates only, the chosen solution
	// index within each root edge's DP node.
	rootIdx []int32
}

// Config controls the DP.
type Config struct {
	// Tech is the technology view (required).
	Tech *tech.Tech
	// Alpha, Beta, Gamma weight latency, buffer count and nTSV count in
	// the MOES root selection (Eq. 3). The paper's experiments use
	// 1, 10, 1.
	Alpha, Beta, Gamma float64
	// ModeOf configures the inserting mode per DP node (identified by the
	// clock-tree node id of the edge's downstream endpoint and the number
	// of sinks the edge drives). Nil means full mode everywhere.
	ModeOf func(treeID, fanout int) Mode
	// MaxPerSide caps the pruned solution-set size per side type
	// (diversity-preserving downsample). 0 means the default 48.
	MaxPerSide int
	// KeepRootSet retains all root candidates in the result (Fig. 10).
	KeepRootSet bool
	// DiversePruning adds the resource count (buffers+nTSVs) to the
	// dominance test, so cheaper-but-slower solutions survive pruning.
	// This widens the root set for design-space studies (Fig. 10) at the
	// cost of a larger working set; the default 2-D (cap, delay) rule is
	// the paper's and keeps MOES selection latency-strong.
	DiversePruning bool
	// SelectMinLatency ignores MOES and picks the minimum-latency root
	// solution ("w/o MOES" ablation of Fig. 10).
	SelectMinLatency bool
	// Workers bounds the concurrency of the bottom-up generation pass;
	// <= 0 means all CPUs. The DP tree is binary and a node only needs its
	// children's solution sets, so independent subtrees generate
	// concurrently through a ready-queue. Every per-node computation is a
	// pure function of its children, so any worker count produces
	// identical solution sets (and therefore identical trees).
	Workers int
	// Arena sources the per-worker generation scratch (and the slab the
	// per-node solution sets land in) from the owning job's arena; nil
	// falls back to the package pool. Identical results either way.
	Arena *arena.Job
}

// DefaultConfig returns the paper's experimental settings (α,β,γ = 1,10,1).
func DefaultConfig(tc *tech.Tech) Config {
	return Config{Tech: tc, Alpha: 1, Beta: 10, Gamma: 1}
}

// RootCandidate summarizes one candidate solution at the DP root.
type RootCandidate struct {
	Latency float64 // ps, max source-to-sink delay below the root edge
	Skew    float64 // ps, MaxD - MinD
	Cap     float64 // fF at the clock root
	Bufs    int
	TSVs    int
	MOES    float64
}

// Result reports the DP outcome. The input tree is annotated in place.
type Result struct {
	// Chosen is the selected root candidate.
	Chosen RootCandidate
	// Candidates holds the full root set when Config.KeepRootSet is set,
	// sorted by latency.
	Candidates []RootCandidate
	// Solutions is the total number of candidate solutions generated,
	// a measure of design-space size.
	Solutions int
	// Nodes is the number of DP nodes (clock-tree trunk edges).
	Nodes int
}

// dpNode is one node of the heterogeneous DP tree (Step 1): it stands for
// the clock-tree edge whose downstream endpoint is treeID. The clock tree's
// trunk is binary, so the child links are a fixed pair instead of a slice —
// no per-node allocation, and the whole DP tree sits in one flat array.
type dpNode struct {
	treeID int
	length float64
	mode   Mode
	nkids  int8
	child  [2]int32 // dp node indices, -1 when absent
	sols   []Solution
}

// Run performs the four DP steps on the tree's trunk, leaving leaf nets
// untouched, and writes the chosen patterns into the tree's edge wirings.
func Run(t *ctree.Tree, cfg Config) (*Result, error) {
	return RunContext(context.Background(), t, cfg)
}

// RunContext is Run with cancellation: the bottom-up generation pass — the
// DP's dominant cost — observes ctx per node, so a cancelled run stops
// mid-pass, its ready-queue workers all exit (no goroutine leaks), and the
// call returns an error wrapping ctx.Err() without touching the tree's
// wiring annotations.
func RunContext(ctx context.Context, t *ctree.Tree, cfg Config) (*Result, error) {
	if cfg.Tech == nil {
		return nil, fmt.Errorf("insert: nil tech")
	}
	if err := cfg.Tech.Validate(); err != nil {
		return nil, fmt.Errorf("insert: %w", err)
	}
	if cfg.MaxPerSide <= 0 {
		cfg.MaxPerSide = 48
	}
	fanout := t.SinkCounts()

	// Step 1: build the heterogeneous DP tree over trunk edges.
	nodes, rootDPs, err := buildDPTree(t, cfg, fanout)
	if err != nil {
		return nil, err
	}

	res := &Result{Nodes: len(nodes)}

	// Step 2: bottom-up generation (nodes are in postorder). A node is
	// ready as soon as its children are done, so the pass runs on a
	// ready-queue worker pool; with one worker it degenerates to the
	// plain postorder loop. The checked-out scratches own the slab memory
	// every dp.sols points into, so they return to their pool only after
	// the retrace below is done reading the solution sets.
	home := insHomeOf(cfg.Arena)
	scratches, err := generateAll(ctx, t, nodes, cfg, res, home)
	defer func() {
		for _, sc := range scratches {
			home.pool.Put(sc)
		}
	}()
	if err != nil {
		return nil, err
	}

	// Merge the DP roots (children of the clock root vertex) into the
	// final root set; the clock root pin is on the front side.
	rootSet, err := mergeRoots(nodes, rootDPs, cfg)
	if err != nil {
		return nil, err
	}

	// Step 3: multi-objective selection.
	bestIdx := -1
	bestScore := math.Inf(1)
	for i, s := range rootSet {
		lat := s.MaxD
		score := cfg.Alpha*lat + cfg.Beta*float64(s.Bufs) + cfg.Gamma*float64(s.TSVs)
		if cfg.SelectMinLatency {
			score = lat
		}
		if score < bestScore {
			bestScore, bestIdx = score, i
		}
		if cfg.KeepRootSet {
			res.Candidates = append(res.Candidates, RootCandidate{
				Latency: lat, Skew: s.MaxD - s.MinD, Cap: s.Cap,
				Bufs: s.Bufs, TSVs: s.TSVs,
				MOES: cfg.Alpha*lat + cfg.Beta*float64(s.Bufs) + cfg.Gamma*float64(s.TSVs),
			})
		}
	}
	if bestIdx < 0 {
		return nil, fmt.Errorf("insert: no feasible root solution (max-cap too tight?)")
	}
	if cfg.KeepRootSet {
		sort.Slice(res.Candidates, func(i, j int) bool {
			return res.Candidates[i].Latency < res.Candidates[j].Latency
		})
	}
	chosen := rootSet[bestIdx]
	res.Chosen = RootCandidate{
		Latency: chosen.MaxD, Skew: chosen.MaxD - chosen.MinD, Cap: chosen.Cap,
		Bufs: chosen.Bufs, TSVs: chosen.TSVs,
		MOES: cfg.Alpha*chosen.MaxD + cfg.Beta*float64(chosen.Bufs) + cfg.Gamma*float64(chosen.TSVs),
	}

	// Step 4: top-down decision.
	decideRoots(t, nodes, rootDPs, chosen)
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("insert: decided tree invalid: %w", err)
	}
	return res, nil
}

// buildDPTree creates one DP node per trunk edge in postorder (children
// before parents) and returns the DP indices of the clock root's edges.
func buildDPTree(t *ctree.Tree, cfg Config, fanout []int) (nodes []dpNode, rootDPs []int, err error) {
	dpOf := make([]int, t.Len())
	for i := range dpOf {
		dpOf[i] = -1
	}
	order := make([]int, 0, t.Len())
	t.PostOrder(func(id int) {
		k := t.Nodes[id].Kind
		if id != t.Root() && (k == ctree.KindSteiner || k == ctree.KindCentroid) {
			order = append(order, id)
		}
	})
	if len(order) == 0 {
		return nil, nil, fmt.Errorf("insert: tree has no trunk edges")
	}
	for _, id := range order {
		mode := ModeFull
		if cfg.ModeOf != nil {
			mode = cfg.ModeOf(id, fanout[id])
		}
		dp := dpNode{treeID: id, length: t.EdgeLen(id), mode: mode, child: [2]int32{-1, -1}}
		for _, c := range t.Nodes[id].Children {
			k := t.Nodes[c].Kind
			if k == ctree.KindSteiner || k == ctree.KindCentroid {
				if dpOf[c] < 0 {
					return nil, nil, fmt.Errorf("insert: postorder violated at %d", c)
				}
				if dp.nkids == 2 {
					return nil, nil, fmt.Errorf("insert: trunk vertex %d has more than 2 trunk children; the clock tree must be binary", id)
				}
				dp.child[dp.nkids] = int32(dpOf[c])
				dp.nkids++
			}
		}
		dpOf[id] = len(nodes)
		nodes = append(nodes, dp)
	}
	for _, c := range t.Nodes[t.Root()].Children {
		if dpOf[c] < 0 {
			return nil, nil, fmt.Errorf("insert: root child %d is not a trunk edge", c)
		}
		rootDPs = append(rootDPs, dpOf[c])
	}
	return nodes, rootDPs, nil
}

// genScratch is the per-worker buffer set of the generation pass. All
// transient candidate sets are built in these reusable arenas, and the
// per-node final solution sets land in the sols slab, so the steady-state
// pass allocates nothing per node. The slab's memory stays owned by this
// scratch: dp.sols slices into it and is consumed (decide/mergeRoots)
// strictly before the scratch returns to its pool.
type genScratch struct {
	merged []Solution // raw merge products (single-child copy / two-child cross)
	mid    []Solution // pruned merged set of the two-child case
	out    []Solution // insertion products before the final prune
	pruned []Solution // final prune result (copied into dp.sols)
	side   []Solution // per-side collection inside pruneSide
	order  []int32    // sort permutation inside paretoKeep
	keep   []int32    // dominance-survivor indices inside paretoKeep
	mark   []bool     // thinning selection marks

	sols arena.Slab[Solution] // backing store of every dp.sols this worker emits
}

// takeSols copies src into slab-backed storage.
func (sc *genScratch) takeSols(src []Solution) []Solution {
	dst := sc.sols.Take(len(src))
	copy(dst, src)
	return dst
}

// insHome pools generation scratches per arena job.
type insHome struct {
	pool arena.Pool[genScratch]
}

// fallbackIns serves callers without an arena job.
var fallbackIns insHome

func insHomeOf(j *arena.Job) *insHome {
	if h := arena.Slot(j, arena.PhaseInsert, func() *insHome { return &insHome{} }); h != nil {
		return h
	}
	return &fallbackIns
}

func (h *insHome) get() *genScratch {
	if sc := h.pool.Get(); sc != nil {
		sc.sols.Reset()
		return sc
	}
	return &genScratch{}
}

// generateAll runs Step 2 over every DP node, concurrently when
// cfg.Workers allows. Scheduling never affects results: each node's
// solution set is a pure function of its children's sets. Cancellation via
// ctx aborts the pass between nodes; the success path never consults the
// context's state beyond a cheap Err poll, so results stay deterministic.
func generateAll(ctx context.Context, t *ctree.Tree, nodes []dpNode, cfg Config, res *Result, home *insHome) ([]*genScratch, error) {
	workers := par.N(cfg.Workers)
	if workers > len(nodes) {
		workers = len(nodes)
	}
	if workers <= 1 {
		sc := home.get()
		for i := range nodes {
			if err := ctx.Err(); err != nil {
				return []*genScratch{sc}, fmt.Errorf("insert: %w", err)
			}
			n, err := generate(t, &nodes[i], nodes, cfg, sc)
			if err != nil {
				return []*genScratch{sc}, err
			}
			res.Solutions += n
		}
		return []*genScratch{sc}, nil
	}

	// Ready-queue schedule: a node enters the queue when its last child
	// finishes. The queue is buffered to the node count, so sends never
	// block and no worker waits on another except through readiness.
	parentOf := make([]int32, len(nodes))
	pending := make([]int32, len(nodes))
	for i := range parentOf {
		parentOf[i] = -1
	}
	for i := range nodes {
		for k := int8(0); k < nodes[i].nkids; k++ {
			parentOf[nodes[i].child[k]] = int32(i)
		}
		pending[i] = int32(nodes[i].nkids)
	}
	queue := make(chan int32, len(nodes))
	counts := make([]int, len(nodes))
	errs := make([]error, len(nodes))
	var remaining atomic.Int64
	remaining.Store(int64(len(nodes)))
	for i := range nodes {
		if pending[i] == 0 {
			queue <- int32(i)
		}
	}
	scratches := make([]*genScratch, workers)
	for w := range scratches {
		scratches[w] = home.get()
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	done := ctx.Done()
	for w := 0; w < workers; w++ {
		sc := scratches[w]
		go func() {
			defer wg.Done()
			for {
				// The queue's capacity is the node count, so sends never
				// block: a worker that exits here can only strand buffered
				// work, never another worker's send.
				var id int32
				var ok bool
				select {
				case <-done:
					return
				case id, ok = <-queue:
					if !ok {
						return
					}
				}
				n, err := generate(t, &nodes[id], nodes, cfg, sc)
				counts[id], errs[id] = n, err
				if p := parentOf[id]; p >= 0 {
					if atomic.AddInt32(&pending[p], -1) == 0 {
						queue <- p
					}
				}
				if remaining.Add(-1) == 0 {
					close(queue)
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return scratches, fmt.Errorf("insert: %w", err)
	}
	// An upstream failure cascades into its ancestors; report the
	// deepest (lowest-index, since nodes are postorder) error — the same
	// one the sequential loop would have returned.
	for i, err := range errs {
		if err != nil {
			return scratches, err
		}
		res.Solutions += counts[i]
	}
	return scratches, nil
}

// generate runs the merge and insert operations of Step 2 for one DP node,
// returning the number of candidate solutions produced before pruning.
func generate(t *ctree.Tree, dp *dpNode, nodes []dpNode, cfg Config, sc *genScratch) (int, error) {
	merged := mergeChildren(t, dp, nodes, cfg, sc)
	if len(merged) == 0 {
		return 0, fmt.Errorf("insert: node %d (tree %d): no merged candidates", dp.treeID, dp.treeID)
	}
	// Inserting: assign a pattern to this edge for every merged candidate.
	out := sc.out[:0]
	for _, m := range merged {
		for p := Pattern(0); int(p) < numPatterns; p++ {
			if !dp.mode.Allowed(p) {
				continue
			}
			if p.DownSide() != m.Up {
				continue // connectivity at the downstream vertex
			}
			upCap, maxD, minD, ok := transfer(p, cfg.Tech, dp.length, m.Cap, m.MaxD, m.MinD)
			if !ok || upCap > cfg.Tech.Buf.MaxCap {
				continue
			}
			out = append(out, Solution{
				Up: p.UpSide(), Cap: upCap, MaxD: maxD, MinD: minD,
				Bufs: m.Bufs + p.Buffers(), TSVs: m.TSVs + p.NTSVs(),
				Pattern: p, left: m.left, right: m.right,
			})
		}
	}
	sc.out = out
	sc.pruned = pruneInto(sc.pruned[:0], out, cfg.MaxPerSide, cfg.DiversePruning, sc)
	dp.sols = sc.takeSols(sc.pruned)
	if len(dp.sols) == 0 {
		return len(out), fmt.Errorf("insert: node for tree edge %d has no feasible solutions (edge length %.2f µm, load %.2f fF, max cap %.2f fF)",
			dp.treeID, dp.length, merged[0].Cap, cfg.Tech.Buf.MaxCap)
	}
	return len(out), nil
}

// mergeChildren produces the merged candidate set at the downstream vertex
// of dp's edge: the "state before this edge's pattern is applied". The Up
// field of a merged candidate holds the side type of the downstream vertex;
// left/right record child solution indices. The returned slice aliases the
// scratch arenas and is only valid until the next scratch use.
func mergeChildren(t *ctree.Tree, dp *dpNode, nodes []dpNode, cfg Config, sc *genScratch) []Solution {
	switch dp.nkids {
	case 0:
		// Leaf DP node: the downstream vertex is a low-level centroid
		// driving its front-side star leaf net. (With zero-length leaf
		// nets this reduces to the bare sink load.)
		load, maxD, minD := leafNetLoad(t, dp.treeID, cfg.Tech)
		sc.merged = append(sc.merged[:0], Solution{Up: ctree.Front, Cap: load, MaxD: maxD, MinD: minD, left: -1, right: -1})
		return sc.merged
	case 1:
		kid := &nodes[dp.child[0]]
		out := sc.merged[:0]
		for i, s := range kid.sols {
			out = append(out, Solution{
				Up: s.Up, Cap: s.Cap, MaxD: s.MaxD, MinD: s.MinD,
				Bufs: s.Bufs, TSVs: s.TSVs, left: int32(i), right: -1,
			})
		}
		sc.merged = out
		return out
	default:
		a, b := &nodes[dp.child[0]], &nodes[dp.child[1]]
		out := sc.merged[:0]
		for i, sa := range a.sols {
			for j, sb := range b.sols {
				if sa.Up != sb.Up {
					continue // connectivity at the shared vertex
				}
				out = append(out, Solution{
					Up:   sa.Up,
					Cap:  sa.Cap + sb.Cap,
					MaxD: math.Max(sa.MaxD, sb.MaxD),
					MinD: math.Min(sa.MinD, sb.MinD),
					Bufs: sa.Bufs + sb.Bufs, TSVs: sa.TSVs + sb.TSVs,
					left: int32(i), right: int32(j),
				})
			}
		}
		sc.merged = out
		// Merged sets grow quadratically; prune before insertion too.
		sc.mid = pruneInto(sc.mid[:0], out, cfg.MaxPerSide, cfg.DiversePruning, sc)
		return sc.mid
	}
}

// leafNetLoad computes the load and internal delays of the star leaf net
// hanging off centroid node id (front side, L-model).
func leafNetLoad(t *ctree.Tree, id int, tc *tech.Tech) (load, maxD, minD float64) {
	front := tc.Front()
	minD = math.Inf(1)
	any := false
	for _, c := range t.Nodes[id].Children {
		n := &t.Nodes[c]
		if n.Kind != ctree.KindSink {
			continue
		}
		any = true
		l := t.EdgeLen(c)
		load += timing.WireCap(front, l, tc.SinkCap)
		d := timing.WireDelay(front, l, tc.SinkCap)
		maxD = math.Max(maxD, d)
		minD = math.Min(minD, d)
	}
	if !any {
		// A trunk edge ending in a centroid with no sinks (can happen in
		// synthetic trees): treat as a bare vertex.
		return 0, 0, 0
	}
	return load, maxD, minD
}

// prune keeps, per side type, the Pareto-optimal solutions — the
// inferior-solution rule of [16] extended to the double-side scenario by
// pruning front-side and back-side candidates separately (Sec. III-C2).
// The default dominance test is the paper's (effective cap, max delay):
// the min-latency solution is never dominated, so the DP is latency-
// optimal. With diverse=true the resource count joins the test, so
// cheaper-but-slower solutions also survive (design-space studies).
// Sets beyond maxPerSide are thinned evenly along the cap axis, always
// retaining the latency-best point.
func prune(sols []Solution, maxPerSide int, diverse bool) []Solution {
	return pruneInto(nil, sols, maxPerSide, diverse, &genScratch{})
}

// pruneInto is the arena-backed prune: survivors are appended to dst and
// all transient sets live in the scratch buffers.
func pruneInto(dst, sols []Solution, maxPerSide int, diverse bool, sc *genScratch) []Solution {
	dst = pruneSideInto(dst, sols, ctree.Front, maxPerSide, diverse, sc)
	return pruneSideInto(dst, sols, ctree.Back, maxPerSide, diverse, sc)
}

func pruneSideInto(dst, sols []Solution, side ctree.Side, maxPerSide int, diverse bool, sc *genScratch) []Solution {
	g := sc.side[:0]
	for _, s := range sols {
		if s.Up == side {
			g = append(g, s)
		}
	}
	sc.side = g
	if len(g) == 0 {
		return dst
	}
	return paretoKeepInto(dst, g, maxPerSide, diverse, sc)
}

// solCompare is a strict total order on solutions: the pruning keys
// (effective cap, max delay, resources) first, then every remaining field
// as a tie-breaker. A total order makes the sorted sequence — and with it
// the dominance filter and the thinning — independent of the sorting
// algorithm, which keeps pruning deterministic.
func solCompare(a, b *Solution, diverse bool) int {
	if a.Cap != b.Cap {
		if a.Cap < b.Cap {
			return -1
		}
		return 1
	}
	if a.MaxD != b.MaxD {
		if a.MaxD < b.MaxD {
			return -1
		}
		return 1
	}
	if diverse {
		if ra, rb := a.Bufs+a.TSVs, b.Bufs+b.TSVs; ra != rb {
			return ra - rb
		}
	}
	// Among candidates identical in the pruning keys, prefer the higher
	// minimum delay (lower downstream skew), then deterministic
	// bookkeeping fields.
	if a.MinD != b.MinD {
		if a.MinD > b.MinD {
			return -1
		}
		return 1
	}
	if a.Bufs != b.Bufs {
		return a.Bufs - b.Bufs
	}
	if a.TSVs != b.TSVs {
		return a.TSVs - b.TSVs
	}
	if a.Pattern != b.Pattern {
		return int(a.Pattern) - int(b.Pattern)
	}
	if a.left != b.left {
		return int(a.left) - int(b.left)
	}
	return int(a.right) - int(b.right)
}

// paretoKeepInto filters dominated solutions (same-side input) and thins,
// appending survivors to dst. The sort and the dominance pass work on an
// index permutation rather than moving the ~80-byte solutions themselves:
// solCompare is a strict total order, so the sorted sequence — and every
// downstream choice — is identical to sorting the structs, while the hot
// loop stops spending its time in struct copies (this was the single
// largest memmove cost of the whole insertion pass).
func paretoKeepInto(dst, g []Solution, maxKeep int, diverse bool, sc *genScratch) []Solution {
	const eps = 1e-12
	res := func(s *Solution) int {
		if !diverse {
			return 0 // resources do not participate in dominance
		}
		return s.Bufs + s.TSVs
	}
	order := sc.order[:0]
	for i := range g {
		order = append(order, int32(i))
	}
	slices.SortFunc(order, func(a, b int32) int { return solCompare(&g[a], &g[b], diverse) })
	sc.order = order
	keep := sc.keep[:0]
	for _, gi := range order {
		s := &g[gi]
		dominated := false
		for _, ki := range keep {
			q := &g[ki] // q.Cap <= s.Cap by sort order
			if q.MaxD <= s.MaxD+eps && res(q) <= res(s) {
				dominated = true
				break
			}
		}
		if !dominated {
			keep = append(keep, gi)
		}
	}
	sc.keep = keep
	if len(keep) <= maxKeep || maxKeep <= 1 {
		for _, ki := range keep {
			dst = append(dst, g[ki])
		}
		return dst
	}
	// Thin evenly along the cap axis, always retaining the latency-best
	// point.
	if cap(sc.mark) < len(keep) {
		sc.mark = make([]bool, len(keep))
	}
	mark := sc.mark[:len(keep)]
	for i := range mark {
		mark[i] = false
	}
	bestD := 0
	for i := range keep {
		if g[keep[i]].MaxD < g[keep[bestD]].MaxD {
			bestD = i
		}
	}
	mark[bestD] = true
	div := maxKeep - 2
	if div < 1 {
		div = 1 // maxKeep == 2: keep the latency-best point plus the cap-min end
	}
	for i := 0; i < maxKeep-1; i++ {
		mark[i*(len(keep)-1)/div] = true
	}
	for i := range keep {
		if mark[i] {
			dst = append(dst, g[keep[i]])
		}
	}
	return dst
}

// mergeRoots folds the DP root sets of the clock root's edges into final
// root candidates. The clock root vertex is on the front side, so only
// front-up solutions qualify.
func mergeRoots(nodes []dpNode, rootDPs []int, cfg Config) ([]Solution, error) {
	if len(rootDPs) == 0 {
		return nil, fmt.Errorf("insert: no root edges")
	}
	// Start from the first root edge's front-side solutions, remembering
	// which DP node each left/right index refers to via rootChoice.
	var acc []Solution
	for i, s := range nodes[rootDPs[0]].sols {
		if s.Up != ctree.Front {
			continue
		}
		c := s
		c.left = int32(i) // index within nodes[rootDPs[0]].sols
		c.right = -1
		c.rootIdx = []int32{int32(i)}
		acc = append(acc, c)
	}
	for r := 1; r < len(rootDPs); r++ {
		var next []Solution
		for _, a := range acc {
			for j, sb := range nodes[rootDPs[r]].sols {
				if sb.Up != ctree.Front {
					continue
				}
				c := Solution{
					Up:   ctree.Front,
					Cap:  a.Cap + sb.Cap,
					MaxD: math.Max(a.MaxD, sb.MaxD),
					MinD: math.Min(a.MinD, sb.MinD),
					Bufs: a.Bufs + sb.Bufs, TSVs: a.TSVs + sb.TSVs,
				}
				c.rootIdx = append(append([]int32{}, a.rootIdx...), int32(j))
				next = append(next, c)
			}
		}
		acc = prunePreserveRoot(next, cfg.MaxPerSide*4, cfg.DiversePruning)
	}
	if len(acc) == 0 {
		return nil, fmt.Errorf("insert: no front-side root candidates")
	}
	return acc, nil
}

// prunePreserveRoot prunes like prune; Solution values (including the
// rootIdx bookkeeping) are kept wholesale. All candidates are front-side
// by construction, so no per-side split is needed.
func prunePreserveRoot(sols []Solution, maxKeep int, diverse bool) []Solution {
	return paretoKeepInto(nil, sols, maxKeep, diverse, &genScratch{})
}

// decideRoots applies the chosen root candidate's per-root-edge solution
// indices and retraces each subtree top-down.
func decideRoots(t *ctree.Tree, nodes []dpNode, rootDPs []int, chosen Solution) {
	for r, dpIdx := range rootDPs {
		decide(t, nodes, dpIdx, int(chosen.rootIdx[r]))
	}
}

// decide writes the pattern of solution solIdx at DP node dpIdx into the
// tree and recurses into the recorded child solutions.
func decide(t *ctree.Tree, nodes []dpNode, dpIdx, solIdx int) {
	dp := &nodes[dpIdx]
	s := dp.sols[solIdx]
	t.Nodes[dp.treeID].Wiring = s.Pattern.Wiring()
	switch dp.nkids {
	case 0:
	case 1:
		decide(t, nodes, int(dp.child[0]), int(s.left))
	default:
		decide(t, nodes, int(dp.child[0]), int(s.left))
		decide(t, nodes, int(dp.child[1]), int(s.right))
	}
}
