package insert

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dscts/internal/ctree"
	"dscts/internal/tech"
)

// Properties of the pattern transfer functions: the DP's correctness rests
// on these monotonicity and bookkeeping invariants.

func sanitizeLen(l float64) float64 {
	if l != l || math.IsInf(l, 0) || l < 0 {
		return 1
	}
	return 0.1 + math.Mod(l, 400)
}

func sanitizeCap(c float64) float64 {
	if c != c || math.IsInf(c, 0) || c < 0 {
		return 1
	}
	return 0.1 + math.Mod(c, 50)
}

// Delay through any pattern is strictly increasing in downstream cap.
func TestTransferMonotoneInCap(t *testing.T) {
	tc := tech.ASAP7()
	f := func(lRaw, cRaw float64) bool {
		l := sanitizeLen(lRaw)
		c := sanitizeCap(cRaw)
		for p := Pattern(0); int(p) < numPatterns; p++ {
			_, d1, _, ok1 := transfer(p, tc, l, c, 0, 0)
			_, d2, _, ok2 := transfer(p, tc, l, c+1, 0, 0)
			if !ok1 || !ok2 {
				continue // max-cap rejection is allowed
			}
			if d2 <= d1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Upstream cap of every pattern is increasing in downstream cap except the
// buffer pattern, which shields (constant in downstream cap).
func TestTransferCapShielding(t *testing.T) {
	tc := tech.ASAP7()
	f := func(lRaw, cRaw float64) bool {
		l := sanitizeLen(lRaw)
		c := sanitizeCap(cRaw)
		for p := Pattern(0); int(p) < numPatterns; p++ {
			c1, _, _, ok1 := transfer(p, tc, l, c, 0, 0)
			c2, _, _, ok2 := transfer(p, tc, l, c+1, 0, 0)
			if !ok1 || !ok2 {
				continue
			}
			if p == PBuffer {
				if c1 != c2 {
					return false // buffer must shield
				}
			} else if c2 <= c1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// The max/min delay bookkeeping shifts both bounds by the same edge delay:
// skew below an edge never changes by assigning a pattern to it.
func TestTransferPreservesSubtreeSkew(t *testing.T) {
	tc := tech.ASAP7()
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 500; i++ {
		l := rng.Float64()*300 + 0.1
		c := rng.Float64()*40 + 0.1
		minD := rng.Float64() * 100
		maxD := minD + rng.Float64()*50
		for p := Pattern(0); int(p) < numPatterns; p++ {
			_, nMax, nMin, ok := transfer(p, tc, l, c, maxD, minD)
			if !ok {
				continue
			}
			if diff := (nMax - nMin) - (maxD - minD); diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("%v changed subtree skew by %v", p, diff)
			}
		}
	}
}

// Back-side patterns always beat the plain front wire on delay for long
// wires (the technology premise).
func TestBackPatternsWinOnLongWires(t *testing.T) {
	tc := tech.ASAP7()
	for _, l := range []float64{50, 100, 200, 400} {
		c := 10.0
		_, front, _, _ := transfer(PWireF, tc, l, c, 0, 0)
		for _, p := range []Pattern{PWireB, PNTSV1, PNTSV2, PNTSV3} {
			_, d, _, ok := transfer(p, tc, l, c, 0, 0)
			if !ok {
				t.Fatalf("%v infeasible at l=%v", p, l)
			}
			if d >= front {
				t.Errorf("%v (%v) not faster than front wire (%v) at l=%v", p, d, front, l)
			}
		}
	}
}

// Pruning keeps at least one solution whenever the input is non-empty, and
// never invents solutions.
func TestPruneNeverEmptiesNonEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(60) + 1
		sols := make([]Solution, n)
		for i := range sols {
			side := ctree.Front
			if rng.Intn(2) == 0 {
				side = ctree.Back
			}
			sols[i] = Solution{
				Up:   side,
				Cap:  rng.Float64() * 100,
				MaxD: rng.Float64() * 500,
				Bufs: rng.Intn(10), TSVs: rng.Intn(10),
			}
		}
		for _, diverse := range []bool{false, true} {
			out := prune(sols, 16, diverse)
			if len(out) == 0 {
				t.Fatalf("prune emptied %d solutions", n)
			}
			if len(out) > n {
				t.Fatalf("prune grew the set")
			}
			// The min-latency solution must survive (latency optimality).
			bestIn, bestOut := 1e18, 1e18
			for _, s := range sols {
				if s.MaxD < bestIn {
					bestIn = s.MaxD
				}
			}
			for _, s := range out {
				if s.MaxD < bestOut {
					bestOut = s.MaxD
				}
			}
			if bestOut > bestIn+1e-9 {
				t.Fatalf("pruning lost the min-latency solution: %v vs %v (diverse=%v)", bestOut, bestIn, diverse)
			}
		}
	}
}

// DP determinism: identical inputs give identical decisions.
func TestRunDeterministic(t *testing.T) {
	trA, tc := routedTree(t, 150, 77, 40)
	trB := trA.Clone()
	ra, err := Run(trA, DefaultConfig(tc))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(trB, DefaultConfig(tc))
	if err != nil {
		t.Fatal(err)
	}
	if ra.Chosen != rbChosenNoMOES(rb) && ra.Chosen != rb.Chosen {
		t.Fatalf("nondeterministic DP: %+v vs %+v", ra.Chosen, rb.Chosen)
	}
	for i := range trA.Nodes {
		if trA.Nodes[i].Wiring != trB.Nodes[i].Wiring {
			t.Fatalf("wiring differs at node %d", i)
		}
	}
}

func rbChosenNoMOES(r *Result) RootCandidate { return r.Chosen }
