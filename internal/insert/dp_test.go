package insert

import (
	"math"
	"math/rand"
	"testing"

	"dscts/internal/cluster"
	"dscts/internal/ctree"
	"dscts/internal/dme"
	"dscts/internal/eval"
	"dscts/internal/geom"
	"dscts/internal/tech"
)

func TestPatternTable(t *testing.T) {
	cases := []struct {
		p          Pattern
		up, down   ctree.Side
		bufs, tsvs int
	}{
		{PBuffer, ctree.Front, ctree.Front, 1, 0},
		{PWireF, ctree.Front, ctree.Front, 0, 0},
		{PWireB, ctree.Back, ctree.Back, 0, 0},
		{PNTSV1, ctree.Front, ctree.Front, 0, 2},
		{PNTSV2, ctree.Back, ctree.Front, 0, 1},
		{PNTSV3, ctree.Front, ctree.Back, 0, 1},
	}
	for _, c := range cases {
		if c.p.UpSide() != c.up || c.p.DownSide() != c.down {
			t.Errorf("%v sides = %v/%v, want %v/%v", c.p, c.p.UpSide(), c.p.DownSide(), c.up, c.down)
		}
		if c.p.Buffers() != c.bufs || c.p.NTSVs() != c.tsvs {
			t.Errorf("%v cost = %d/%d, want %d/%d", c.p, c.p.Buffers(), c.p.NTSVs(), c.bufs, c.tsvs)
		}
		if !c.p.Wiring().Valid() {
			t.Errorf("%v wiring invalid", c.p)
		}
	}
}

func TestModeAllowed(t *testing.T) {
	for p := Pattern(0); int(p) < numPatterns; p++ {
		if !ModeFull.Allowed(p) {
			t.Errorf("full mode must allow %v", p)
		}
	}
	for _, p := range []Pattern{PBuffer, PWireF, PWireB} {
		if !ModeIntra.Allowed(p) {
			t.Errorf("intra mode must allow %v", p)
		}
	}
	for _, p := range []Pattern{PNTSV1, PNTSV2, PNTSV3} {
		if ModeIntra.Allowed(p) {
			t.Errorf("intra mode must forbid %v", p)
		}
	}
}

func TestTransferMatchesPaperEquations(t *testing.T) {
	tc := tech.ASAP7()
	L, C := 120.0, 8.0
	// P2 against Eq.-style wire delay.
	upCap, maxD, _, ok := transfer(PWireF, tc, L, C, 0, 0)
	front := tc.Front()
	if !ok || math.Abs(upCap-(front.UnitCap*L+C)) > 1e-12 {
		t.Errorf("P2 cap = %v", upCap)
	}
	if want := front.UnitRes * L * (front.UnitCap*L + C); math.Abs(maxD-want) > 1e-12 {
		t.Errorf("P2 delay = %v want %v", maxD, want)
	}
	// P4 against Eq. (2).
	back, tsv := tc.Back(), tc.TSV
	_, maxD4, _, _ := transfer(PNTSV1, tc, L, C, 0, 0)
	rb, cb := back.UnitRes, back.UnitCap
	rt, ct := tsv.Res, tsv.Cap
	want4 := rb*cb*L*L + (rb*ct+rb*C+rt*cb)*L + rt*(3*ct+2*C)
	if math.Abs(maxD4-want4) > 1e-9 {
		t.Errorf("P4 delay = %v want %v (Eq. 2)", maxD4, want4)
	}
	// P1: buffer load constraint.
	_, _, _, ok = transfer(PBuffer, tc, L, tc.Buf.MaxCap, 0, 0)
	if ok {
		t.Error("P1 with load above MaxCap must be infeasible")
	}
}

// routedTree builds a real hierarchical routed tree for DP tests.
func routedTree(t *testing.T, n int, seed int64, maxEdge float64) (*ctree.Tree, *tech.Tech) {
	t.Helper()
	tc := tech.ASAP7()
	rng := rand.New(rand.NewSource(seed))
	hot := []geom.Point{{X: 60, Y: 60}, {X: 400, Y: 90}, {X: 180, Y: 420}}
	sinks := make([]geom.Point, n)
	for i := range sinks {
		h := hot[rng.Intn(len(hot))]
		sinks[i] = geom.Pt(math.Abs(h.X+rng.NormFloat64()*40), math.Abs(h.Y+rng.NormFloat64()*40))
	}
	front := tc.Front()
	d, err := cluster.DualLevel(sinks, cluster.DualOptions{
		HighSize: 120, LowSize: 15, Seed: 1, MaxIter: 25,
		CapOf:    func(s, c geom.Point) float64 { return tc.SinkCap + front.UnitCap*s.Dist(c) },
		CapLimit: 0.6 * tc.Buf.MaxCap,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := dme.HierarchicalRoute(geom.Pt(250, 250), sinks, d, tc, dme.HierOptions{MaxTrunkEdge: maxEdge})
	if err != nil {
		t.Fatal(err)
	}
	return tr, tc
}

func TestRunFullModeProducesValidTree(t *testing.T) {
	tr, tc := routedTree(t, 300, 7, 40)
	res, err := Run(tr, DefaultConfig(tc))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	bufs, tsvs := tr.Counts()
	if bufs != res.Chosen.Bufs || tsvs != res.Chosen.TSVs {
		t.Fatalf("counts mismatch: tree %d/%d vs chosen %d/%d", bufs, tsvs, res.Chosen.Bufs, res.Chosen.TSVs)
	}
	if res.Chosen.Latency <= 0 {
		t.Fatalf("latency %v", res.Chosen.Latency)
	}
	if res.Solutions == 0 || res.Nodes == 0 {
		t.Fatal("no DP activity recorded")
	}
}

// The DP's internal arithmetic must agree with the independent RC-network
// evaluation: eval latency = DP latency + root-driver term.
func TestRunDPDelaysMatchNetworkEval(t *testing.T) {
	tr, tc := routedTree(t, 200, 11, 40)
	res, err := Run(tr, DefaultConfig(tc))
	if err != nil {
		t.Fatal(err)
	}
	m, err := eval.New(tc, eval.Elmore).Evaluate(tr)
	if err != nil {
		t.Fatal(err)
	}
	rootTerm := tc.Buf.DriveRes * res.Chosen.Cap
	if diff := math.Abs(m.Latency - (res.Chosen.Latency + rootTerm)); diff > 1e-6*(1+m.Latency) {
		t.Fatalf("eval latency %v vs DP %v + root %v (diff %v)", m.Latency, res.Chosen.Latency, rootTerm, diff)
	}
	if diff := math.Abs(m.Skew - res.Chosen.Skew); diff > 1e-6*(1+m.Skew) {
		t.Fatalf("eval skew %v vs DP skew %v", m.Skew, res.Chosen.Skew)
	}
	mb, mt := m.Buffers, m.NTSVs
	if mb != res.Chosen.Bufs || mt != res.Chosen.TSVs {
		t.Fatalf("eval counts %d/%d vs DP %d/%d", mb, mt, res.Chosen.Bufs, res.Chosen.TSVs)
	}
}

func TestRunIntraModeUsesNoTSVs(t *testing.T) {
	tr, tc := routedTree(t, 250, 13, 40)
	cfg := DefaultConfig(tc)
	cfg.ModeOf = func(treeID, fanout int) Mode { return ModeIntra }
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chosen.TSVs != 0 {
		t.Fatalf("intra-side run used %d nTSVs", res.Chosen.TSVs)
	}
	_, tsvs := tr.Counts()
	if tsvs != 0 {
		t.Fatalf("tree has %d nTSVs", tsvs)
	}
	// Without nTSVs nothing can reach the back side from the front root.
	for _, id := range tr.TrunkEdges() {
		if tr.Nodes[id].Wiring.WireSide == ctree.Back {
			t.Fatalf("edge %d on back side without nTSVs", id)
		}
	}
}

// The paper's headline: the double-side design space strictly improves
// latency versus front-side-only insertion on the same routed tree.
func TestFullModeBeatsIntraModeLatency(t *testing.T) {
	trFull, tc := routedTree(t, 400, 17, 40)
	trIntra := trFull.Clone()
	resFull, err := Run(trFull, DefaultConfig(tc))
	if err != nil {
		t.Fatal(err)
	}
	cfgIntra := DefaultConfig(tc)
	cfgIntra.ModeOf = func(treeID, fanout int) Mode { return ModeIntra }
	resIntra, err := Run(trIntra, cfgIntra)
	if err != nil {
		t.Fatal(err)
	}
	if resFull.Chosen.Latency > resIntra.Chosen.Latency+1e-9 {
		t.Fatalf("full mode latency %v worse than intra %v", resFull.Chosen.Latency, resIntra.Chosen.Latency)
	}
	if resFull.Chosen.TSVs == 0 {
		t.Fatal("full mode on a real tree should use nTSVs")
	}
	t.Logf("full: %.1f ps (%d bufs, %d tsvs); intra: %.1f ps (%d bufs)",
		resFull.Chosen.Latency, resFull.Chosen.Bufs, resFull.Chosen.TSVs,
		resIntra.Chosen.Latency, resIntra.Chosen.Bufs)
}

func TestSelectMinLatencyAtLeastAsFastAsMOES(t *testing.T) {
	trA, tc := routedTree(t, 300, 19, 40)
	trB := trA.Clone()
	cfgMOES := DefaultConfig(tc)
	cfgMOES.KeepRootSet = true
	resMOES, err := Run(trA, cfgMOES)
	if err != nil {
		t.Fatal(err)
	}
	cfgLat := DefaultConfig(tc)
	cfgLat.SelectMinLatency = true
	resLat, err := Run(trB, cfgLat)
	if err != nil {
		t.Fatal(err)
	}
	if resLat.Chosen.Latency > resMOES.Chosen.Latency+1e-9 {
		t.Fatalf("min-latency selection %v slower than MOES %v", resLat.Chosen.Latency, resMOES.Chosen.Latency)
	}
	if len(resMOES.Candidates) == 0 {
		t.Fatal("KeepRootSet returned no candidates")
	}
	// Candidates sorted by latency; the MOES choice must exist among them.
	prev := math.Inf(-1)
	for _, c := range resMOES.Candidates {
		if c.Latency < prev {
			t.Fatal("candidates not sorted")
		}
		prev = c.Latency
	}
}

func TestModeHeterogeneityByFanout(t *testing.T) {
	tr, tc := routedTree(t, 300, 23, 40)
	threshold := 50
	cfg := DefaultConfig(tc)
	cfg.ModeOf = func(treeID, fanout int) Mode {
		if fanout < threshold {
			return ModeFull
		}
		return ModeIntra
	}
	if _, err := Run(tr, cfg); err != nil {
		t.Fatal(err)
	}
	// Edges with fanout >= threshold must not carry nTSVs.
	counts := tr.SinkCounts()
	for _, id := range tr.TrunkEdges() {
		if counts[id] >= threshold && tr.Nodes[id].Wiring.NTSVCount() > 0 {
			t.Fatalf("edge %d (fanout %d) carries nTSVs in intra mode", id, counts[id])
		}
	}
}

func TestRunErrors(t *testing.T) {
	tr, tc := routedTree(t, 50, 29, 40)
	if _, err := Run(tr, Config{}); err == nil {
		t.Error("nil tech should error")
	}
	bad := *tc
	bad.SinkCap = -1
	if _, err := Run(tr, DefaultConfig(&bad)); err == nil {
		t.Error("invalid tech should error")
	}
	// A tree with no trunk (root→sink directly) must be rejected.
	small := ctree.New(geom.Pt(0, 0))
	small.AddSink(0, geom.Pt(1, 1), 0)
	if _, err := Run(small, DefaultConfig(tc)); err == nil {
		t.Error("trunk-less tree should error")
	}
}

func TestPrunedSetsSmallAndParetoOptimal(t *testing.T) {
	sols := []Solution{
		{Up: ctree.Front, Cap: 1, MaxD: 10},
		{Up: ctree.Front, Cap: 2, MaxD: 5},
		{Up: ctree.Front, Cap: 3, MaxD: 7}, // dominated by (2,5)
		{Up: ctree.Front, Cap: 3, MaxD: 4},
		{Up: ctree.Back, Cap: 1, MaxD: 20},
		{Up: ctree.Back, Cap: 1.5, MaxD: 25}, // dominated
	}
	out := prune(sols, 48, false)
	if len(out) != 4 {
		t.Fatalf("prune kept %d, want 4: %+v", len(out), out)
	}
	for _, s := range out {
		for _, o := range out {
			if s.Up == o.Up && o.Cap < s.Cap-1e-12 && o.MaxD < s.MaxD-1e-12 {
				t.Fatalf("kept dominated solution %+v (by %+v)", s, o)
			}
		}
	}
	// Thinning respects the cap (within one slot for the latency-best
	// point, which may coincide with a spaced pick).
	var many []Solution
	for i := 0; i < 500; i++ {
		many = append(many, Solution{Up: ctree.Front, Cap: float64(i), MaxD: float64(1000 - i)})
	}
	out = prune(many, 16, true)
	if len(out) > 16 || len(out) < 8 {
		t.Fatalf("thinned to %d, want <= 16", len(out))
	}
	// Extremes and the latency-best point preserved.
	if out[0].Cap != 0 || out[len(out)-1].Cap != 499 {
		t.Fatalf("thinning lost extremes: %+v", out)
	}
	bestD := out[0].MaxD
	for _, s := range out {
		if s.MaxD < bestD {
			bestD = s.MaxD
		}
	}
	if bestD != many[499].MaxD {
		t.Fatalf("thinning lost the latency-best solution")
	}
}

// Property test: on random small trees, the decided tree always satisfies
// the connectivity constraint and resource counts match the DP's claim.
func TestRunPropertyRandomTrees(t *testing.T) {
	for seed := int64(100); seed < 110; seed++ {
		tr, tc := routedTree(t, 80+int(seed%4)*30, seed, 35)
		res, err := Run(tr, DefaultConfig(tc))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, n := tr.Counts()
		if b != res.Chosen.Bufs || n != res.Chosen.TSVs {
			t.Fatalf("seed %d: counts %d/%d vs %d/%d", seed, b, n, res.Chosen.Bufs, res.Chosen.TSVs)
		}
	}
}
