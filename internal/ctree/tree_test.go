package ctree

import (
	"math"
	"math/rand"
	"testing"

	"dscts/internal/geom"
)

// buildSmall constructs root → steiner → {centroidA → 2 sinks, centroidB → 1 sink}.
func buildSmall() *Tree {
	t := New(geom.Pt(0, 0))
	st := t.Add(0, KindSteiner, geom.Pt(10, 0))
	ca := t.AddCentroid(st, geom.Pt(20, 5), 0)
	cb := t.AddCentroid(st, geom.Pt(20, -5), 1)
	t.AddSink(ca, geom.Pt(22, 6), 0)
	t.AddSink(ca, geom.Pt(23, 4), 1)
	t.AddSink(cb, geom.Pt(21, -6), 2)
	return t
}

func TestBuildAndValidate(t *testing.T) {
	tr := buildSmall()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Sinks()); got != 3 {
		t.Errorf("sinks = %d", got)
	}
	if got := len(tr.Centroids()); got != 2 {
		t.Errorf("centroids = %d", got)
	}
	if got := len(tr.TrunkEdges()); got != 3 {
		t.Errorf("trunk edges = %d, want 3 (steiner + 2 centroids)", got)
	}
}

func TestEdgeLenAndWirelength(t *testing.T) {
	tr := buildSmall()
	// root→st:10, st→ca:15, st→cb:15, leaf edges: 3, 4, 2.
	if got := tr.EdgeLen(1); got != 10 {
		t.Errorf("EdgeLen(st) = %v", got)
	}
	want := 10.0 + 15 + 15 + 3 + 4 + 2
	if got := tr.Wirelength(); math.Abs(got-want) > 1e-9 {
		t.Errorf("Wirelength = %v, want %v", got, want)
	}
	if got := tr.EdgeLen(0); got != 0 {
		t.Errorf("root edge length = %v", got)
	}
}

func TestTraversalOrders(t *testing.T) {
	tr := buildSmall()
	var post, pre []int
	tr.PostOrder(func(id int) { post = append(post, id) })
	tr.PreOrder(func(id int) { pre = append(pre, id) })
	if len(post) != tr.Len() || len(pre) != tr.Len() {
		t.Fatal("traversals must visit every node once")
	}
	if pre[0] != 0 || post[len(post)-1] != 0 {
		t.Error("root order wrong")
	}
	// In postorder every child appears before its parent.
	idx := make(map[int]int)
	for i, id := range post {
		idx[id] = i
	}
	for id := 1; id < tr.Len(); id++ {
		if idx[id] > idx[tr.Nodes[id].Parent] {
			t.Fatalf("postorder: node %d after parent", id)
		}
	}
}

func TestSinkCounts(t *testing.T) {
	tr := buildSmall()
	cnt := tr.SinkCounts()
	if cnt[0] != 3 || cnt[1] != 3 || cnt[2] != 2 || cnt[3] != 1 {
		t.Fatalf("SinkCounts = %v", cnt)
	}
}

func TestWiringSemantics(t *testing.T) {
	cases := []struct {
		w          EdgeWiring
		up, down   Side
		tsvs, bufs int
		valid      bool
	}{
		{EdgeWiring{}, Front, Front, 0, 0, true},                                           // P2
		{EdgeWiring{BufMid: true}, Front, Front, 0, 1, true},                               // P1
		{EdgeWiring{WireSide: Back}, Back, Back, 0, 0, true},                               // P3
		{EdgeWiring{WireSide: Back, TSVUp: true, TSVDown: true}, Front, Front, 2, 0, true}, // P4
		{EdgeWiring{WireSide: Back, TSVDown: true}, Back, Front, 1, 0, true},               // P5
		{EdgeWiring{WireSide: Back, TSVUp: true}, Front, Back, 1, 0, true},                 // P6
		{EdgeWiring{WireSide: Back, BufMid: true}, Back, Back, 0, 1, false},                // illegal
		{EdgeWiring{WireSide: Front, TSVUp: true}, Front, Front, 0, 0, false},              // illegal
	}
	for i, c := range cases {
		if got := c.w.UpSide(); got != c.up {
			t.Errorf("case %d UpSide = %v want %v", i, got, c.up)
		}
		if got := c.w.DownSide(); got != c.down {
			t.Errorf("case %d DownSide = %v want %v", i, got, c.down)
		}
		if got := c.w.NTSVCount(); got != c.tsvs {
			t.Errorf("case %d NTSVCount = %d want %d", i, got, c.tsvs)
		}
		if got := c.w.BufferCount(); got != c.bufs {
			t.Errorf("case %d BufferCount = %d want %d", i, got, c.bufs)
		}
		if got := c.w.Valid(); got != c.valid {
			t.Errorf("case %d Valid = %v want %v", i, got, c.valid)
		}
	}
}

func TestValidateSideContinuity(t *testing.T) {
	tr := buildSmall()
	// P6 on steiner edge: downstream of steiner is Back, but children edges
	// are front-up by default → must fail.
	tr.Nodes[1].Wiring = EdgeWiring{WireSide: Back, TSVUp: true}
	if err := tr.Validate(); err == nil {
		t.Fatal("expected side mismatch error")
	}
	// Fix: children edges start on back and return to front before
	// centroids (P5), which the leaf nets require.
	tr.Nodes[2].Wiring = EdgeWiring{WireSide: Back, TSVDown: true}
	tr.Nodes[3].Wiring = EdgeWiring{WireSide: Back, TSVDown: true}
	if err := tr.Validate(); err != nil {
		t.Fatalf("legal double-side tree rejected: %v", err)
	}
	// Counts: P6 (1 tsv) + 2×P5 (1 tsv each) = 3 nTSVs.
	b, n := tr.Counts()
	if b != 0 || n != 3 {
		t.Fatalf("Counts = %d buffers, %d ntsvs; want 0, 3", b, n)
	}
}

func TestValidateRejectsBackSink(t *testing.T) {
	tr := New(geom.Pt(0, 0))
	c := tr.AddCentroid(0, geom.Pt(5, 0), 0)
	s := tr.AddSink(c, geom.Pt(6, 0), 0)
	tr.Nodes[c].Wiring = EdgeWiring{WireSide: Back, TSVUp: true} // down = Back
	tr.Nodes[s].Wiring = EdgeWiring{WireSide: Back}              // sink reached on back
	if err := tr.Validate(); err == nil {
		t.Fatal("sink on back side must be rejected")
	}
}

func TestCountsWithNodeBuffers(t *testing.T) {
	tr := buildSmall()
	tr.Nodes[2].BufferAtNode = true
	tr.Nodes[1].Wiring = EdgeWiring{BufMid: true}
	b, n := tr.Counts()
	if b != 2 || n != 0 {
		t.Fatalf("Counts = %d/%d, want 2/0", b, n)
	}
}

func TestSplitTrunkEdges(t *testing.T) {
	tr := New(geom.Pt(0, 0))
	c := tr.AddCentroid(0, geom.Pt(100, 40), 0)
	tr.AddSink(c, geom.Pt(101, 41), 0)
	before := tr.Wirelength()
	n := tr.SplitTrunkEdges(30)
	if n == 0 {
		t.Fatal("expected splits")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Total wirelength preserved (split along the L-route).
	if after := tr.Wirelength(); math.Abs(after-before) > 1e-9 {
		t.Fatalf("wirelength changed: %v → %v", before, after)
	}
	// Every trunk edge now within bound.
	for _, id := range tr.TrunkEdges() {
		if tr.EdgeLen(id) > 30+1e-9 {
			t.Fatalf("edge %d still %v long", id, tr.EdgeLen(id))
		}
	}
	// Centroid keeps its metadata and its sink child.
	found := false
	for _, id := range tr.Centroids() {
		if tr.Nodes[id].ClusterIdx == 0 && len(tr.Nodes[id].Children) == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("centroid lost its child after splitting")
	}
}

func TestSplitNoopOnShortEdges(t *testing.T) {
	tr := buildSmall()
	before := tr.Len()
	if n := tr.SplitTrunkEdges(1000); n != 0 || tr.Len() != before {
		t.Fatalf("unexpected splits: %d", n)
	}
}

func TestPointAlongL(t *testing.T) {
	from, to := geom.Pt(0, 0), geom.Pt(6, 4)
	if got := PointAlongL(from, to, 0); got != from {
		t.Errorf("frac 0 = %v", got)
	}
	if got := PointAlongL(from, to, 1); !got.Eq(to, 1e-9) {
		t.Errorf("frac 1 = %v", got)
	}
	// Half of total distance 10 is 5: all horizontal (6) not yet done,
	// so point is (5, 0).
	if got := PointAlongL(from, to, 0.5); !got.Eq(geom.Pt(5, 0), 1e-9) {
		t.Errorf("frac 0.5 = %v", got)
	}
	// 0.8 → distance 8 → 6 horizontal + 2 vertical = (6,2).
	if got := PointAlongL(from, to, 0.8); !got.Eq(geom.Pt(6, 2), 1e-9) {
		t.Errorf("frac 0.8 = %v", got)
	}
	if got := PointAlongL(from, from, 0.5); got != from {
		t.Errorf("degenerate = %v", got)
	}
}

// Property: splitting preserves the sink set and the per-subtree sink counts
// at the centroid level.
func TestSplitPreservesSinksProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		tr := New(geom.Pt(0, 0))
		nc := rng.Intn(5) + 1
		sinkIdx := 0
		for c := 0; c < nc; c++ {
			cen := tr.AddCentroid(0, geom.Pt(rng.Float64()*500, rng.Float64()*500), c)
			ns := rng.Intn(4) + 1
			for s := 0; s < ns; s++ {
				tr.AddSink(cen, geom.Pt(rng.Float64()*500, rng.Float64()*500), sinkIdx)
				sinkIdx++
			}
		}
		before := len(tr.Sinks())
		tr.SplitTrunkEdges(40)
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
		if got := len(tr.Sinks()); got != before {
			t.Fatalf("sink count changed %d → %d", before, got)
		}
	}
}

func TestCloneWithout(t *testing.T) {
	tr := New(geom.Pt(0, 0))
	st := tr.Add(0, KindSteiner, geom.Pt(10, 0))
	c0 := tr.AddCentroid(st, geom.Pt(20, 0), 0)
	c1 := tr.AddCentroid(st, geom.Pt(10, 20), 1)
	tr.AddSink(c0, geom.Pt(21, 1), 0)
	tr.AddSink(c0, geom.Pt(22, 0), 1)
	s2 := tr.AddSink(c1, geom.Pt(11, 21), 2)
	tr.Nodes[c1].BufferAtNode = true
	tr.Nodes[s2].SnakeExtra = 3.5

	// Drop cluster 0's leaf net (the children of c0).
	dropSet := make([]bool, tr.Len())
	for _, c := range tr.Nodes[c0].Children {
		dropSet[c] = true
	}
	nt, idMap := tr.CloneWithout(func(id int) bool { return dropSet[id] })
	if err := nt.Validate(); err != nil {
		t.Fatal(err)
	}
	if nt.Len() != tr.Len()-2 {
		t.Fatalf("clone has %d nodes, want %d", nt.Len(), tr.Len()-2)
	}
	if idMap[c0] < 0 || len(nt.Nodes[idMap[c0]].Children) != 0 {
		t.Fatal("graft point did not survive childless")
	}
	for _, c := range tr.Nodes[c0].Children {
		if idMap[c] != -1 {
			t.Fatalf("dropped node %d mapped to %d", c, idMap[c])
		}
	}
	n := nt.Nodes[idMap[s2]]
	if n.Kind != KindSink || n.SinkIdx != 2 || n.SnakeExtra != 3.5 {
		t.Fatalf("surviving sink annotations lost: %+v", n)
	}
	if !nt.Nodes[idMap[c1]].BufferAtNode {
		t.Fatal("surviving buffer annotation lost")
	}
	// The original is untouched.
	if tr.Len() != 7 || len(tr.Nodes[c0].Children) != 2 {
		t.Fatal("CloneWithout mutated the source tree")
	}
}

func TestCloneIndependence(t *testing.T) {
	tr := buildSmall()
	cp := tr.Clone()
	cp.Nodes[1].Wiring = EdgeWiring{WireSide: Back}
	cp.Add(1, KindSteiner, geom.Pt(1, 1))
	if tr.Nodes[1].Wiring.WireSide == Back {
		t.Fatal("clone shares wiring")
	}
	if tr.Len() == cp.Len() {
		t.Fatal("clone shares node slice")
	}
	if len(tr.Nodes[1].Children) == len(cp.Nodes[1].Children) {
		t.Fatal("clone shares children slices")
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	tr := buildSmall()
	tr.Nodes[2].Parent = 0 // child list of 1 still references 2
	if err := tr.Validate(); err == nil {
		t.Fatal("expected parent/child mismatch")
	}
}
