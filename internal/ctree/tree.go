// Package ctree defines the clock-tree data structure shared by routing,
// insertion, refinement, baselines and evaluation: a rooted tree whose trunk
// (root → low-level cluster centroids) is binary and whose leaf nets
// (centroid → sinks) are stars, with per-edge double-side wiring annotations
// (side assignment, mid-edge buffers, endpoint nTSVs) and per-node buffer
// annotations (end-point buffers from skew refinement).
package ctree

import (
	"fmt"

	"dscts/internal/geom"
)

// Kind classifies tree nodes.
type Kind int

const (
	// KindRoot is the clock source.
	KindRoot Kind = iota
	// KindSteiner is an internal merge/tapping point of the trunk.
	KindSteiner
	// KindCentroid is a low-level cluster centroid: the boundary between
	// trunk nets and leaf nets.
	KindCentroid
	// KindSink is a clock sink (FF clock pin).
	KindSink
)

func (k Kind) String() string {
	switch k {
	case KindRoot:
		return "root"
	case KindSteiner:
		return "steiner"
	case KindCentroid:
		return "centroid"
	case KindSink:
		return "sink"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Side is the metal side of a wire or endpoint.
type Side int

const (
	// Front is the conventional front-side metal stack.
	Front Side = iota
	// Back is the back-side metal stack reached through nTSVs.
	Back
)

func (s Side) String() string {
	if s == Back {
		return "B"
	}
	return "F"
}

// EdgeWiring is the physical realization of the edge from a node to its
// parent, decided by buffer/nTSV insertion. The zero value is a plain
// front-side wire (pattern P2).
type EdgeWiring struct {
	// WireSide is the side the wire body runs on.
	WireSide Side
	// BufMid places one buffer at the edge midpoint (pattern P1, front
	// side only).
	BufMid bool
	// TSVUp places an nTSV at the upstream (root-side) endpoint; only
	// meaningful for back-side wire bodies.
	TSVUp bool
	// TSVDown places an nTSV at the downstream (sink-side) endpoint.
	TSVDown bool
}

// UpSide returns the side of the upstream endpoint implied by the wiring.
func (w EdgeWiring) UpSide() Side {
	if w.WireSide == Back && !w.TSVUp {
		return Back
	}
	return Front
}

// DownSide returns the side of the downstream endpoint implied by the wiring.
func (w EdgeWiring) DownSide() Side {
	if w.WireSide == Back && !w.TSVDown {
		return Back
	}
	return Front
}

// NTSVCount returns the number of nTSVs the wiring uses.
func (w EdgeWiring) NTSVCount() int {
	n := 0
	if w.WireSide == Back {
		if w.TSVUp {
			n++
		}
		if w.TSVDown {
			n++
		}
	}
	return n
}

// BufferCount returns the number of buffers the wiring uses.
func (w EdgeWiring) BufferCount() int {
	if w.BufMid {
		return 1
	}
	return 0
}

// Valid reports whether the combination is one of the six patterns of
// Fig. 6 (buffers only on front wires; nTSVs only on back wires).
func (w EdgeWiring) Valid() bool {
	if w.WireSide == Front {
		return !w.TSVUp && !w.TSVDown
	}
	return !w.BufMid
}

// Node is one vertex of the clock tree.
type Node struct {
	ID       int
	Kind     Kind
	Pos      geom.Point
	Parent   int // -1 for the root
	Children []int

	// Wiring realizes the edge Parent→this node. Unused for the root.
	Wiring EdgeWiring

	// SnakeExtra is detour wirelength (µm) on the edge to the parent
	// beyond the Manhattan distance, introduced by DME delay balancing.
	SnakeExtra float64

	// BufferAtNode inserts a buffer at this node between the incoming
	// edge and the node's children (skew-refinement end-point buffers and
	// baseline leaf buffers).
	BufferAtNode bool

	// SinkIdx is the original sink index for KindSink nodes, else -1.
	SinkIdx int
	// ClusterIdx is the flattened low-cluster index for KindCentroid
	// nodes, else -1.
	ClusterIdx int
}

// Tree is a rooted clock tree. Node 0 is always the root.
type Tree struct {
	Nodes []Node

	// kids is the shared backing store Children slices are carved from
	// (full slice expressions, so an over-long append reallocates to the
	// heap instead of clobbering a neighbour). Without it every node costs
	// one-to-two slice allocations — ~80% of a monolithic synthesis run's
	// allocation count. Unexported, so gob skips it: a decoded tree simply
	// carves fresh blocks if it is ever grown again, while its decoded
	// Children keep their own heap backing.
	kids []int
}

// carve reserves an n-capacity child slice from the shared store.
func (t *Tree) carve(n int) []int {
	if cap(t.kids)-len(t.kids) < n {
		c := 2 * cap(t.kids)
		if c < 256 {
			c = 256
		}
		if c < n {
			c = n
		}
		// Previous blocks stay alive through the slices carved from them.
		t.kids = make([]int, 0, c)
	}
	off := len(t.kids)
	t.kids = t.kids[: off+n : cap(t.kids)]
	return t.kids[off : off : off+n]
}

// ReserveChildren pre-carves capacity for n children of node id. Purely an
// allocation hint for assemblers that know the fan-out up front (e.g. a
// centroid about to receive its cluster's sinks); a no-op once the node has
// children or a reservation.
func (t *Tree) ReserveChildren(id, n int) {
	if p := &t.Nodes[id]; p.Children == nil && n > 0 {
		p.Children = t.carve(n)
	}
}

// New creates a tree containing only the root at pos.
func New(pos geom.Point) *Tree {
	return NewSized(pos, 0)
}

// NewSized creates a tree containing only the root at pos, with capacity
// for roughly `capacity` nodes. The hint is advisory — Add grows past it
// transparently — but a good one (assemblers know their sink and cluster
// counts up front) removes the append-doubling copies of the ~128-byte
// node records, which were the single largest allocation source of a
// monolithic synthesis run.
func NewSized(pos geom.Point, capacity int) *Tree {
	t := &Tree{}
	if capacity > 1 {
		t.Nodes = make([]Node, 0, capacity)
	}
	t.Nodes = append(t.Nodes, Node{
		ID: 0, Kind: KindRoot, Pos: pos, Parent: -1, SinkIdx: -1, ClusterIdx: -1,
	})
	return t
}

// Root returns the root node id (always 0).
func (t *Tree) Root() int { return 0 }

// Len returns the number of nodes.
func (t *Tree) Len() int { return len(t.Nodes) }

// Add appends a node of the given kind under parent and returns its id.
func (t *Tree) Add(parent int, kind Kind, pos geom.Point) int {
	if parent < 0 || parent >= len(t.Nodes) {
		panic(fmt.Sprintf("ctree: invalid parent %d", parent))
	}
	id := len(t.Nodes)
	t.Nodes = append(t.Nodes, Node{
		ID: id, Kind: kind, Pos: pos, Parent: parent, SinkIdx: -1, ClusterIdx: -1,
	})
	p := &t.Nodes[parent]
	if p.Children == nil {
		p.Children = t.carve(2) // binary merge trees: two children is the norm
	}
	p.Children = append(p.Children, id)
	return id
}

// AddSink appends a sink node carrying its original index.
func (t *Tree) AddSink(parent int, pos geom.Point, sinkIdx int) int {
	id := t.Add(parent, KindSink, pos)
	t.Nodes[id].SinkIdx = sinkIdx
	return id
}

// AddCentroid appends a centroid node carrying its low-cluster index.
func (t *Tree) AddCentroid(parent int, pos geom.Point, clusterIdx int) int {
	id := t.Add(parent, KindCentroid, pos)
	t.Nodes[id].ClusterIdx = clusterIdx
	return id
}

// EdgeLen returns the routed length of the edge from node id to its parent
// (Manhattan distance plus any snaking detour; 0 for the root).
func (t *Tree) EdgeLen(id int) float64 {
	n := &t.Nodes[id]
	if n.Parent < 0 {
		return 0
	}
	return n.Pos.Dist(t.Nodes[n.Parent].Pos) + n.SnakeExtra
}

// PostOrder calls f on every node id, children before parents.
func (t *Tree) PostOrder(f func(id int)) {
	var rec func(int)
	rec = func(id int) {
		for _, c := range t.Nodes[id].Children {
			rec(c)
		}
		f(id)
	}
	rec(t.Root())
}

// PreOrder calls f on every node id, parents before children.
func (t *Tree) PreOrder(f func(id int)) {
	var rec func(int)
	rec = func(id int) {
		f(id)
		for _, c := range t.Nodes[id].Children {
			rec(c)
		}
	}
	rec(t.Root())
}

// Sinks returns the ids of all sink nodes in preorder.
func (t *Tree) Sinks() []int {
	var out []int
	t.PreOrder(func(id int) {
		if t.Nodes[id].Kind == KindSink {
			out = append(out, id)
		}
	})
	return out
}

// Centroids returns the ids of all centroid nodes in preorder.
func (t *Tree) Centroids() []int {
	var out []int
	t.PreOrder(func(id int) {
		if t.Nodes[id].Kind == KindCentroid {
			out = append(out, id)
		}
	})
	return out
}

// TrunkEdges returns the ids of nodes whose incoming edge belongs to the
// trunk (everything at or above centroids: Steiner and centroid nodes).
func (t *Tree) TrunkEdges() []int {
	var out []int
	t.PreOrder(func(id int) {
		k := t.Nodes[id].Kind
		if id != t.Root() && (k == KindSteiner || k == KindCentroid) {
			out = append(out, id)
		}
	})
	return out
}

// Wirelength returns the total Manhattan wirelength of all edges (µm).
func (t *Tree) Wirelength() float64 {
	var wl float64
	for id := 1; id < len(t.Nodes); id++ {
		wl += t.EdgeLen(id)
	}
	return wl
}

// SinkCounts returns, per node id, the number of sinks in its subtree —
// the "fanout of driven sinks" used by baseline [7] and the DSE mode rule.
func (t *Tree) SinkCounts() []int {
	cnt := make([]int, len(t.Nodes))
	t.PostOrder(func(id int) {
		n := &t.Nodes[id]
		if n.Kind == KindSink {
			cnt[id] = 1
		}
		for _, c := range n.Children {
			cnt[id] += cnt[c]
		}
	})
	return cnt
}

// Counts tallies total buffers and nTSVs over edge wirings and node buffers.
func (t *Tree) Counts() (buffers, ntsvs int) {
	for id := 1; id < len(t.Nodes); id++ {
		n := &t.Nodes[id]
		buffers += n.Wiring.BufferCount()
		ntsvs += n.Wiring.NTSVCount()
		if n.BufferAtNode {
			buffers++
		}
	}
	if t.Nodes[t.Root()].BufferAtNode {
		buffers++
	}
	return
}

// SplitTrunkEdges subdivides every trunk edge longer than maxLen into equal
// segments by inserting Steiner nodes along the L-shaped route, so that
// downstream passes (DP insertion) see bounded edge lengths. Leaf nets are
// left untouched. Returns the number of nodes inserted.
func (t *Tree) SplitTrunkEdges(maxLen float64) int {
	if maxLen <= 0 {
		panic("ctree: maxLen must be positive")
	}
	inserted := 0
	// Collect first: we mutate children lists while iterating otherwise.
	var targets []int
	for id := 1; id < len(t.Nodes); id++ {
		k := t.Nodes[id].Kind
		if k != KindSteiner && k != KindCentroid {
			continue
		}
		if t.EdgeLen(id) > maxLen {
			targets = append(targets, id)
		}
	}
	for _, id := range targets {
		parent := t.Nodes[id].Parent
		length := t.EdgeLen(id)
		segs := int(length/maxLen) + 1
		if segs < 2 {
			continue
		}
		from := t.Nodes[parent].Pos // upstream
		to := t.Nodes[id].Pos       // downstream
		snakePer := t.Nodes[id].SnakeExtra / float64(segs)
		// Detach id from parent.
		removeChild(t, parent, id)
		prev := parent
		for s := 1; s < segs; s++ {
			p := PointAlongL(from, to, float64(s)/float64(segs))
			prev = t.Add(prev, KindSteiner, p)
			t.Nodes[prev].SnakeExtra = snakePer
			inserted++
		}
		// Reattach id under the last new node.
		t.Nodes[id].Parent = prev
		t.Nodes[id].SnakeExtra = snakePer
		t.Nodes[prev].Children = append(t.Nodes[prev].Children, id)
	}
	return inserted
}

func removeChild(t *Tree, parent, child int) {
	kids := t.Nodes[parent].Children
	for i, c := range kids {
		if c == child {
			t.Nodes[parent].Children = append(kids[:i], kids[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("ctree: %d is not a child of %d", child, parent))
}

// PointAlongL returns the point a fraction frac of the way from `from` to
// `to` along the L-shaped (horizontal-then-vertical) Manhattan route.
func PointAlongL(from, to geom.Point, frac float64) geom.Point {
	total := from.Dist(to)
	if total == 0 {
		return from
	}
	d := frac * total
	dx := to.X - from.X
	if ax := abs(dx); d <= ax {
		return geom.Pt(from.X+sign(dx)*d, from.Y)
	} else {
		d -= ax
		dy := to.Y - from.Y
		return geom.Pt(to.X, from.Y+sign(dy)*d)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func sign(v float64) float64 {
	if v < 0 {
		return -1
	}
	if v > 0 {
		return 1
	}
	return 0
}

// Validate checks structural invariants: parent/child consistency, a single
// root, acyclicity, sink/centroid metadata, wiring pattern validity and the
// side-continuity (connectivity) constraint of Sec. III-C1: at every shared
// vertex the downstream side of the incoming edge equals the upstream side
// of every outgoing edge, sinks are reached on the front side, and the root
// is on the front side.
func (t *Tree) Validate() error {
	if len(t.Nodes) == 0 || t.Nodes[0].Kind != KindRoot || t.Nodes[0].Parent != -1 {
		return fmt.Errorf("ctree: malformed root")
	}
	seen := make([]bool, len(t.Nodes))
	var count int
	var rec func(id int) error
	rec = func(id int) error {
		if id < 0 || id >= len(t.Nodes) {
			return fmt.Errorf("ctree: node id %d out of range", id)
		}
		if seen[id] {
			return fmt.Errorf("ctree: cycle or diamond through node %d", id)
		}
		seen[id] = true
		count++
		n := &t.Nodes[id]
		if n.ID != id {
			return fmt.Errorf("ctree: node %d has ID %d", id, n.ID)
		}
		for _, c := range n.Children {
			if t.Nodes[c].Parent != id {
				return fmt.Errorf("ctree: child %d of %d has parent %d", c, id, t.Nodes[c].Parent)
			}
			if err := rec(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return err
	}
	if count != len(t.Nodes) {
		return fmt.Errorf("ctree: %d of %d nodes reachable", count, len(t.Nodes))
	}
	for id := range t.Nodes {
		n := &t.Nodes[id]
		if n.Kind == KindSink && n.SinkIdx < 0 {
			return fmt.Errorf("ctree: sink %d missing SinkIdx", id)
		}
		if n.Kind == KindSink && len(n.Children) > 0 {
			return fmt.Errorf("ctree: sink %d has children", id)
		}
		if id != 0 && !n.Wiring.Valid() {
			return fmt.Errorf("ctree: node %d wiring %+v is not a legal pattern", id, n.Wiring)
		}
	}
	return t.validateSides()
}

// validateSides enforces the connectivity constraint on side types.
func (t *Tree) validateSides() error {
	// Side of each vertex as seen from above (arrival side).
	arrival := make([]Side, len(t.Nodes))
	arrival[0] = Front // clock root pin is on the front side
	var err error
	t.PreOrder(func(id int) {
		if err != nil || id == 0 {
			return
		}
		n := &t.Nodes[id]
		w := n.Wiring
		up := w.UpSide()
		if arrival[n.Parent] != up {
			err = fmt.Errorf("ctree: side mismatch at vertex %d: parent arrival %v, edge upstream %v",
				n.Parent, arrival[n.Parent], up)
			return
		}
		down := w.DownSide()
		if n.BufferAtNode && down != Front {
			err = fmt.Errorf("ctree: buffer at node %d on back side", id)
			return
		}
		if n.Kind == KindSink && down != Front {
			err = fmt.Errorf("ctree: sink %d reached on back side", id)
			return
		}
		if w.BufMid && w.WireSide != Front {
			err = fmt.Errorf("ctree: mid-edge buffer on back side at %d", id)
			return
		}
		arrival[id] = down
	})
	return err
}

// CloneWithout returns a deep copy of the tree that omits every node for
// which drop returns true — together with that node's entire subtree — and
// a map from prior node id to the copy's id (-1 for omitted nodes). Ids are
// renumbered compactly in preorder. Dropping the root is not allowed. This
// is the splice primitive of incremental re-synthesis: the retained tree is
// the prior tree minus its dirty subtrees, and freshly synthesized subtrees
// are grafted back at the surviving attachment points.
func (t *Tree) CloneWithout(drop func(id int) bool) (*Tree, []int) {
	if drop(t.Root()) {
		panic("ctree: cannot drop the root")
	}
	nt := &Tree{Nodes: make([]Node, 0, len(t.Nodes))}
	idMap := make([]int, len(t.Nodes))
	var rec func(id, parent int)
	rec = func(id, parent int) {
		n := t.Nodes[id]
		nid := len(nt.Nodes)
		idMap[id] = nid
		n.ID, n.Parent = nid, parent
		n.Children = nil
		nt.Nodes = append(nt.Nodes, n)
		if parent >= 0 {
			nt.Nodes[parent].Children = append(nt.Nodes[parent].Children, nid)
		}
		for _, c := range t.Nodes[id].Children {
			if drop(c) {
				markDropped(t, c, idMap)
				continue
			}
			rec(c, nid)
		}
	}
	rec(t.Root(), -1)
	return nt, idMap
}

func markDropped(t *Tree, id int, idMap []int) {
	idMap[id] = -1
	for _, c := range t.Nodes[id].Children {
		markDropped(t, c, idMap)
	}
}

// Clone returns a deep copy of the tree.
func (t *Tree) Clone() *Tree { return t.CloneSized(0) }

// CloneSized returns a deep copy whose node lane is pre-allocated for
// capacity total nodes. It is the graft primitive for assemblers that copy
// a small tree and then grow it to a known final size (the stitch stage
// clones the top tree and grafts every region tree into it): growing a
// million-node lane by append-doubling re-zeroes and re-copies ~2x the
// final ~128-byte-per-node array, which dominates cold stitch wall time.
// capacity <= Len() is simply Clone. The copied Children are carved from
// the clone's own shared store.
func (t *Tree) CloneSized(capacity int) *Tree {
	if capacity < len(t.Nodes) {
		capacity = len(t.Nodes)
	}
	nt := &Tree{Nodes: make([]Node, len(t.Nodes), capacity)}
	copy(nt.Nodes, t.Nodes)
	for i := range nt.Nodes {
		if n := len(t.Nodes[i].Children); n > 0 {
			nt.Nodes[i].Children = append(nt.carve(n), t.Nodes[i].Children...)
		}
	}
	return nt
}
