package ctree

import (
	"math/rand"
	"testing"

	"dscts/internal/geom"
)

// randomTree builds a random valid front-side clock tree.
func randomTree(rng *rand.Rand) *Tree {
	t := New(geom.Pt(rng.Float64()*100, rng.Float64()*100))
	steiners := []int{0}
	nSteiner := rng.Intn(10) + 1
	for i := 0; i < nSteiner; i++ {
		p := steiners[rng.Intn(len(steiners))]
		id := t.Add(p, KindSteiner, geom.Pt(rng.Float64()*100, rng.Float64()*100))
		steiners = append(steiners, id)
	}
	sinkIdx := 0
	for i := 0; i < rng.Intn(6)+1; i++ {
		p := steiners[rng.Intn(len(steiners))]
		c := t.AddCentroid(p, geom.Pt(rng.Float64()*100, rng.Float64()*100), i)
		for s := 0; s < rng.Intn(5)+1; s++ {
			t.AddSink(c, geom.Pt(rng.Float64()*100, rng.Float64()*100), sinkIdx)
			sinkIdx++
		}
	}
	return t
}

// Structural invariants hold for arbitrary construction sequences.
func TestRandomTreesValid(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		tr := randomTree(rng)
		if err := tr.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Sink counts at the root equal the number of sink nodes.
		if got := tr.SinkCounts()[tr.Root()]; got != len(tr.Sinks()) {
			t.Fatalf("root sink count %d vs %d sinks", got, len(tr.Sinks()))
		}
	}
}

// Splitting then validating preserves wirelength, sink sets and counts for
// arbitrary trees and split lengths.
func TestRandomSplitInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 200; trial++ {
		tr := randomTree(rng)
		wl := tr.Wirelength()
		sinks := len(tr.Sinks())
		bufs, tsvs := tr.Counts()
		maxLen := rng.Float64()*50 + 5
		tr.SplitTrunkEdges(maxLen)
		if err := tr.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got := tr.Wirelength(); got < wl-1e-6 || got > wl+1e-6 {
			t.Fatalf("trial %d: wirelength %v -> %v", trial, wl, got)
		}
		if got := len(tr.Sinks()); got != sinks {
			t.Fatalf("trial %d: sinks %d -> %d", trial, sinks, got)
		}
		b2, t2 := tr.Counts()
		if b2 != bufs || t2 != tsvs {
			t.Fatalf("trial %d: counts changed", trial)
		}
		for _, id := range tr.TrunkEdges() {
			if tr.EdgeLen(id) > maxLen+1e-9 {
				t.Fatalf("trial %d: edge %d length %v > %v", trial, id, tr.EdgeLen(id), maxLen)
			}
		}
	}
}

// Clone equivalence: a clone validates, and mutating it never affects the
// original.
func TestRandomCloneIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 100; trial++ {
		tr := randomTree(rng)
		wl := tr.Wirelength()
		cp := tr.Clone()
		if err := cp.Validate(); err != nil {
			t.Fatal(err)
		}
		// Random mutations on the clone.
		for i := 0; i < 5; i++ {
			id := rng.Intn(cp.Len())
			if id == 0 {
				continue
			}
			cp.Nodes[id].Wiring = EdgeWiring{WireSide: Back}
			cp.Nodes[id].BufferAtNode = true
			cp.Nodes[id].Pos = geom.Pt(0, 0)
		}
		cp.SplitTrunkEdges(10)
		if tr.Wirelength() != wl {
			t.Fatal("mutating the clone changed the original's wirelength")
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("original corrupted: %v", err)
		}
		for id := 1; id < tr.Len(); id++ {
			if tr.Nodes[id].BufferAtNode || tr.Nodes[id].Wiring.WireSide == Back {
				t.Fatal("mutation leaked into original")
			}
		}
	}
}

// L-route interpolation: PointAlongL always lies on the L-path, and
// cumulative distance is linear in the fraction.
func TestPointAlongLProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 500; trial++ {
		a := geom.Pt(rng.Float64()*200-100, rng.Float64()*200-100)
		b := geom.Pt(rng.Float64()*200-100, rng.Float64()*200-100)
		total := a.Dist(b)
		for _, f := range []float64{0, 0.1, 0.5, 0.9, 1} {
			p := PointAlongL(a, b, f)
			// Distance along the L-route from a to p plus p to b must
			// equal the total (p is on a shortest Manhattan path).
			if d := a.Dist(p) + p.Dist(b); d > total+1e-9 {
				t.Fatalf("point %v off the Manhattan shortest path: %v > %v", p, d, total)
			}
			if d := a.Dist(p); d < total*f-1e-9 || d > total*f+1e-9 {
				t.Fatalf("fraction %v gave distance %v of %v", f, d, total)
			}
		}
	}
}
