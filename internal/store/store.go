// Package store is dsctsd's disk-backed persistence tier: a
// content-addressed blob store with write-behind, FNV-64a integrity sums
// and a compact fixed-record index, built so the in-memory result cache and
// the retained ECO bases survive a restart.
//
// The store is deliberately payload-agnostic — it persists opaque byte
// blobs under (kind, key) — so it knows nothing about the serve package's
// JSON results or gob-encoded base outcomes. serve marshals, store
// persists, and warm-start hands the bytes back for serve to decode.
//
// On-disk layout under the configured directory:
//
//	results/<hex(sha256(key))>.blob   result payloads
//	bases/<hex(sha256(key))>.blob     retained ECO base snapshots
//	index.bin                         fixed 64-byte records, appended per write
//
// Every blob carries a magic tag, a format version, the full original key
// and an FNV-64a sum over the payload; every index record carries the key
// digest, the sum and the payload size. Warm-start trusts neither alone: a
// blob whose header, index record and recomputed sum disagree is skipped,
// counted and deleted rather than loaded. A missing or corrupt index is
// not fatal — the store falls back to scanning the blob directories and
// rebuilds the index from the surviving files.
//
// Writes are write-behind: Put enqueues and returns immediately, a single
// writer goroutine persists entries via temp-file-plus-rename and appends
// the index record. A full write queue drops the entry (and counts the
// drop) instead of stalling the job path — the disk tier is an
// accelerator, never a dependency.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kinds partition the store's namespace; each gets its own subdirectory
// and capacity bound.
const (
	KindResult = "result"
	KindBase   = "base"
)

const (
	blobMagic    = "DSCTSBLB"
	indexMagic   = "DSCTSIDX"
	formatVer    = 1
	indexRecSize = 64
	indexHdrSize = 16
)

// Defaults applied by Open for zero Config fields.
const (
	DefaultMaxResults = 4096
	DefaultMaxBases   = 32
	DefaultQueueDepth = 256
)

// Config sizes the store.
type Config struct {
	// Dir is the root directory; created if absent.
	Dir string
	// MaxResults / MaxBases cap the blob count per kind; the oldest files
	// are deleted first (the on-disk tier mirrors the in-memory LRUs).
	MaxResults int
	MaxBases   int
	// QueueDepth bounds the write-behind buffer; a full buffer drops
	// writes (counted) instead of blocking the job path.
	QueueDepth int
	// Logger receives write failures and warm-start skips. nil discards.
	Logger *slog.Logger
}

// Stats is the store section of GET /stats; counters accumulate since
// Open.
type Stats struct {
	// Writes counts blobs persisted; WriteErrors counts persist attempts
	// that failed (the entry is lost from disk, never from memory).
	Writes      int64 `json:"writes"`
	WriteErrors int64 `json:"write_errors,omitempty"`
	// Dropped counts writes discarded because the write-behind queue was
	// full or the store was closed.
	Dropped int64 `json:"dropped,omitempty"`
	// Pending is the write-behind backlog right now.
	Pending int64 `json:"pending"`
	// ResultEntries / BaseEntries are the blob counts currently on disk.
	ResultEntries int64 `json:"result_entries"`
	BaseEntries   int64 `json:"base_entries"`
	// WarmResults / WarmBases count entries loaded by warm-start.
	WarmResults int64 `json:"warm_results"`
	WarmBases   int64 `json:"warm_bases"`
	// Warm-start skip reasons: integrity mismatch (header, index or sum
	// disagree, or the caller failed to decode), format-version mismatch,
	// and plain IO errors. Skipped blobs are deleted so they cannot recur.
	WarmSkippedCorrupt int64 `json:"warm_skipped_corrupt,omitempty"`
	WarmSkippedVersion int64 `json:"warm_skipped_version,omitempty"`
	WarmSkippedIO      int64 `json:"warm_skipped_io,omitempty"`
}

// indexRecord is the in-memory form of one fixed 64-byte index record:
//
//	kind uint8, pad [7]byte, digest [32]byte, sum uint64, size uint64,
//	unixNano int64
//
// The layout is alignment-friendly and offset-computable (header + i*64),
// so readers may mmap the file and index into it directly; this
// implementation reads it with plain IO, which on these sizes is just as
// fast.
type indexRecord struct {
	sum  uint64
	size uint64
	nano int64
}

type kindState struct {
	dir string
	max int
	// entries maps key digest → record for every blob believed on disk.
	entries map[[32]byte]indexRecord
}

type writeOp struct {
	kind    string
	key     string
	payload []byte
	flush   chan struct{} // non-nil: barrier op, close when reached
}

// Store is a content-addressed write-behind blob store. All methods are
// safe for concurrent use.
type Store struct {
	cfg   Config
	log   *slog.Logger
	kinds map[string]*kindState

	mu       sync.Mutex // guards kinds' entries maps and the index file
	indexF   *os.File   // append handle; nil after Close
	putMu    sync.RWMutex
	closed   bool
	ch       chan writeOp
	wg       sync.WaitGroup
	writes   atomic.Int64
	writeErr atomic.Int64
	dropped  atomic.Int64
	pending  atomic.Int64

	warmResults atomic.Int64
	warmBases   atomic.Int64
	warmCorrupt atomic.Int64
	warmVersion atomic.Int64
	warmIO      atomic.Int64
}

// Open creates or reopens a store rooted at cfg.Dir, reconciles the index
// with the blob directories (rebuilding it when missing or corrupt) and
// starts the write-behind writer.
func Open(cfg Config) (*Store, error) {
	if cfg.Dir == "" {
		return nil, errors.New("store: Config.Dir is required")
	}
	if cfg.MaxResults <= 0 {
		cfg.MaxResults = DefaultMaxResults
	}
	if cfg.MaxBases <= 0 {
		cfg.MaxBases = DefaultMaxBases
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	s := &Store{
		cfg: cfg,
		log: cfg.Logger,
		kinds: map[string]*kindState{
			KindResult: {dir: filepath.Join(cfg.Dir, "results"), max: cfg.MaxResults, entries: map[[32]byte]indexRecord{}},
			KindBase:   {dir: filepath.Join(cfg.Dir, "bases"), max: cfg.MaxBases, entries: map[[32]byte]indexRecord{}},
		},
		ch: make(chan writeOp, cfg.QueueDepth),
	}
	if s.log == nil {
		s.log = slog.New(slog.DiscardHandler)
	}
	for _, ks := range s.kinds {
		if err := os.MkdirAll(ks.dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	s.loadIndex()
	s.reconcile()
	if err := s.rewriteIndex(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(s.indexPath(), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s.indexF = f
	s.wg.Add(1)
	go s.writer()
	return s, nil
}

func (s *Store) indexPath() string { return filepath.Join(s.cfg.Dir, "index.bin") }

func keyDigest(key string) [32]byte { return sha256.Sum256([]byte(key)) }

func (s *Store) blobPath(kind string, digest [32]byte) string {
	return filepath.Join(s.kinds[kind].dir, hex.EncodeToString(digest[:])+".blob")
}

func kindByte(kind string) uint8 {
	if kind == KindBase {
		return 1
	}
	return 0
}

func kindOf(b uint8) string {
	if b == 1 {
		return KindBase
	}
	return KindResult
}

// loadIndex reads index.bin into the in-memory maps; a missing or corrupt
// file simply leaves them empty for reconcile to rebuild from the blob
// directories. Later records win, so the appended log needs no in-place
// updates.
func (s *Store) loadIndex() {
	data, err := os.ReadFile(s.indexPath())
	if err != nil || len(data) < indexHdrSize || string(data[:8]) != indexMagic ||
		binary.LittleEndian.Uint32(data[8:12]) != formatVer {
		return
	}
	body := data[indexHdrSize:]
	for off := 0; off+indexRecSize <= len(body); off += indexRecSize {
		rec := body[off : off+indexRecSize]
		ks := s.kinds[kindOf(rec[0])]
		var digest [32]byte
		copy(digest[:], rec[8:40])
		ks.entries[digest] = indexRecord{
			sum:  binary.LittleEndian.Uint64(rec[40:48]),
			size: binary.LittleEndian.Uint64(rec[48:56]),
			nano: int64(binary.LittleEndian.Uint64(rec[56:64])),
		}
	}
}

// reconcile makes the blob directories the ground truth: index records
// whose file vanished are dropped, and blobs the index never heard of
// (crash before the index append, or a rebuilt directory) are adopted with
// the sum and size from their own header.
func (s *Store) reconcile() {
	for kind, ks := range s.kinds {
		onDisk := map[[32]byte]bool{}
		des, err := os.ReadDir(ks.dir)
		if err != nil {
			continue
		}
		for _, de := range des {
			name := de.Name()
			if filepath.Ext(name) != ".blob" {
				continue
			}
			raw, err := hex.DecodeString(name[:len(name)-len(".blob")])
			if err != nil || len(raw) != 32 {
				continue
			}
			var digest [32]byte
			copy(digest[:], raw)
			onDisk[digest] = true
			if _, ok := ks.entries[digest]; ok {
				continue
			}
			if _, sum, size, nano, err := readBlobHeader(filepath.Join(ks.dir, name)); err == nil {
				ks.entries[digest] = indexRecord{sum: sum, size: size, nano: nano}
			} else {
				s.log.Debug("store: dropping unreadable blob", "kind", kind, "file", name, "error", err)
				os.Remove(filepath.Join(ks.dir, name))
			}
		}
		for digest := range ks.entries {
			if !onDisk[digest] {
				delete(ks.entries, digest)
			}
		}
	}
}

// rewriteIndex writes a compacted index (header + one record per live
// blob) via temp-file-plus-rename.
func (s *Store) rewriteIndex() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rewriteIndexLocked()
}

func (s *Store) rewriteIndexLocked() error {
	var buf []byte
	hdr := make([]byte, indexHdrSize)
	copy(hdr, indexMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], formatVer)
	buf = append(buf, hdr...)
	for kind, ks := range s.kinds {
		for digest, rec := range ks.entries {
			buf = append(buf, encodeIndexRecord(kind, digest, rec)...)
		}
	}
	tmp := s.indexPath() + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, s.indexPath()); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

func encodeIndexRecord(kind string, digest [32]byte, rec indexRecord) []byte {
	out := make([]byte, indexRecSize)
	out[0] = kindByte(kind)
	copy(out[8:40], digest[:])
	binary.LittleEndian.PutUint64(out[40:48], rec.sum)
	binary.LittleEndian.PutUint64(out[48:56], rec.size)
	binary.LittleEndian.PutUint64(out[56:64], uint64(rec.nano))
	return out
}

// Sum is the integrity checksum the store verifies payloads with (FNV-64a,
// matching the serve cache's scheme).
func Sum(payload []byte) uint64 {
	h := fnv.New64a()
	h.Write(payload)
	return h.Sum64()
}

// Put enqueues a blob for write-behind persistence. It never blocks: a
// full queue or a closed store drops the write and counts it.
func (s *Store) Put(kind, key string, payload []byte) {
	if _, ok := s.kinds[kind]; !ok || key == "" {
		return
	}
	s.putMu.RLock()
	defer s.putMu.RUnlock()
	if s.closed {
		s.dropped.Add(1)
		return
	}
	select {
	case s.ch <- writeOp{kind: kind, key: key, payload: payload}:
		s.pending.Add(1)
	default:
		s.dropped.Add(1)
	}
}

// Flush blocks until every write enqueued before the call has been
// persisted (or failed). No-op on a closed store.
func (s *Store) Flush() {
	s.putMu.RLock()
	if s.closed {
		s.putMu.RUnlock()
		return
	}
	ack := make(chan struct{})
	s.ch <- writeOp{flush: ack}
	s.putMu.RUnlock()
	<-ack
}

// Close drains the write-behind queue, compacts the index and releases the
// file handles. Safe to call once; Puts racing Close are dropped.
func (s *Store) Close() error {
	s.putMu.Lock()
	if s.closed {
		s.putMu.Unlock()
		return nil
	}
	s.closed = true
	s.putMu.Unlock()
	close(s.ch)
	s.wg.Wait()
	err := s.rewriteIndex()
	s.mu.Lock()
	if s.indexF != nil {
		s.indexF.Close()
		s.indexF = nil
	}
	s.mu.Unlock()
	return err
}

func (s *Store) writer() {
	defer s.wg.Done()
	for op := range s.ch {
		if op.flush != nil {
			close(op.flush)
			continue
		}
		s.pending.Add(-1)
		if err := s.persist(op); err != nil {
			s.writeErr.Add(1)
			s.log.Warn("store: write failed", "kind", op.kind, "error", err)
			continue
		}
		s.writes.Add(1)
	}
}

// persist writes one blob atomically (temp file + rename), appends its
// index record and enforces the per-kind capacity bound.
func (s *Store) persist(op writeOp) error {
	ks := s.kinds[op.kind]
	digest := keyDigest(op.key)
	rec := indexRecord{sum: Sum(op.payload), size: uint64(len(op.payload)), nano: time.Now().UnixNano()}

	blob := encodeBlob(op.key, rec.sum, op.payload)
	path := s.blobPath(op.kind, digest)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	ks.entries[digest] = rec
	if s.indexF != nil {
		if _, err := s.indexF.Write(encodeIndexRecord(op.kind, digest, rec)); err != nil {
			s.log.Warn("store: index append failed", "error", err)
		}
	}
	// Capacity: evict the oldest blobs beyond the cap, mirroring the
	// in-memory LRUs' pressure model (recency on disk is write recency).
	for len(ks.entries) > ks.max {
		var oldest [32]byte
		oldestNano := int64(0)
		first := true
		for d, r := range ks.entries {
			if first || r.nano < oldestNano {
				oldest, oldestNano, first = d, r.nano, false
			}
		}
		delete(ks.entries, oldest)
		os.Remove(s.blobPath(op.kind, oldest))
	}
	return nil
}

func encodeBlob(key string, sum uint64, payload []byte) []byte {
	buf := make([]byte, 0, len(blobMagic)+4+4+len(key)+8+8+len(payload))
	buf = append(buf, blobMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, formatVer)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(key)))
	buf = append(buf, key...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = binary.LittleEndian.AppendUint64(buf, sum)
	buf = append(buf, payload...)
	return buf
}

var (
	errBadMagic   = errors.New("store: bad blob magic")
	errBadVersion = errors.New("store: blob format version mismatch")
	errCorrupt    = errors.New("store: blob integrity check failed")
)

// decodeBlob parses and verifies a blob file's bytes.
func decodeBlob(data []byte) (key string, sum uint64, payload []byte, err error) {
	if len(data) < len(blobMagic)+8 || string(data[:8]) != blobMagic {
		return "", 0, nil, errBadMagic
	}
	if binary.LittleEndian.Uint32(data[8:12]) != formatVer {
		return "", 0, nil, errBadVersion
	}
	keyLen := int(binary.LittleEndian.Uint32(data[12:16]))
	if len(data) < 16+keyLen+16 {
		return "", 0, nil, errCorrupt
	}
	key = string(data[16 : 16+keyLen])
	off := 16 + keyLen
	payLen := int(binary.LittleEndian.Uint64(data[off : off+8]))
	sum = binary.LittleEndian.Uint64(data[off+8 : off+16])
	if len(data) != off+16+payLen {
		return "", 0, nil, errCorrupt
	}
	payload = data[off+16:]
	if Sum(payload) != sum {
		return "", 0, nil, errCorrupt
	}
	return key, sum, payload, nil
}

// readBlobHeader parses just the header of a blob file (for index
// rebuilds): the key, the stored sum, the payload size and the file mtime.
func readBlobHeader(path string) (key string, sum uint64, size uint64, nano int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return "", 0, 0, 0, err
	}
	defer f.Close()
	hdr := make([]byte, 16)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return "", 0, 0, 0, err
	}
	if string(hdr[:8]) != blobMagic {
		return "", 0, 0, 0, errBadMagic
	}
	if binary.LittleEndian.Uint32(hdr[8:12]) != formatVer {
		return "", 0, 0, 0, errBadVersion
	}
	keyLen := int(binary.LittleEndian.Uint32(hdr[12:16]))
	if keyLen < 0 || keyLen > 1<<20 {
		return "", 0, 0, 0, errCorrupt
	}
	rest := make([]byte, keyLen+16)
	if _, err := io.ReadFull(f, rest); err != nil {
		return "", 0, 0, 0, err
	}
	key = string(rest[:keyLen])
	size = binary.LittleEndian.Uint64(rest[keyLen : keyLen+8])
	sum = binary.LittleEndian.Uint64(rest[keyLen+8 : keyLen+16])
	st, err := f.Stat()
	if err != nil {
		return "", 0, 0, 0, err
	}
	return key, sum, size, st.ModTime().UnixNano(), nil
}

// Load iterates the persisted blobs of a kind, oldest first (so a caller
// inserting into an LRU ends with the newest entries most recent), handing
// each verified (key, payload) to fn. fn reports whether it could decode
// the payload; a false return counts as a corruption and deletes the blob,
// exactly like a failed integrity check. Entries whose header, index
// record and recomputed sum disagree, or whose format version mismatches,
// are skipped, counted and deleted — a corrupt disk tier must never poison
// the in-memory caches.
func (s *Store) Load(kind string, fn func(key string, payload []byte) bool) {
	ks, ok := s.kinds[kind]
	if !ok {
		return
	}
	type item struct {
		digest [32]byte
		rec    indexRecord
	}
	s.mu.Lock()
	items := make([]item, 0, len(ks.entries))
	for d, r := range ks.entries {
		items = append(items, item{d, r})
	}
	s.mu.Unlock()
	sort.Slice(items, func(i, j int) bool { return items[i].rec.nano < items[j].rec.nano })

	for _, it := range items {
		path := s.blobPath(kind, it.digest)
		data, err := os.ReadFile(path)
		if err != nil {
			s.warmIO.Add(1)
			s.forget(kind, it.digest)
			continue
		}
		key, sum, payload, err := decodeBlob(data)
		switch {
		case errors.Is(err, errBadVersion):
			s.warmVersion.Add(1)
			s.remove(kind, it.digest)
			continue
		case err != nil:
			s.warmCorrupt.Add(1)
			s.remove(kind, it.digest)
			continue
		}
		// The index record is a second witness: a blob that verifies
		// internally but disagrees with the index was swapped or truncated
		// non-atomically — treat it as corrupt rather than trust either.
		if sum != it.rec.sum || uint64(len(payload)) != it.rec.size || keyDigest(key) != it.digest {
			s.warmCorrupt.Add(1)
			s.remove(kind, it.digest)
			continue
		}
		if !fn(key, payload) {
			s.warmCorrupt.Add(1)
			s.remove(kind, it.digest)
			continue
		}
		if kind == KindBase {
			s.warmBases.Add(1)
		} else {
			s.warmResults.Add(1)
		}
	}
}

func (s *Store) forget(kind string, digest [32]byte) {
	s.mu.Lock()
	delete(s.kinds[kind].entries, digest)
	s.mu.Unlock()
}

func (s *Store) remove(kind string, digest [32]byte) {
	os.Remove(s.blobPath(kind, digest))
	s.forget(kind, digest)
}

// Stats snapshots the store counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	results := int64(len(s.kinds[KindResult].entries))
	bases := int64(len(s.kinds[KindBase].entries))
	s.mu.Unlock()
	return Stats{
		Writes:             s.writes.Load(),
		WriteErrors:        s.writeErr.Load(),
		Dropped:            s.dropped.Load(),
		Pending:            s.pending.Load(),
		ResultEntries:      results,
		BaseEntries:        bases,
		WarmResults:        s.warmResults.Load(),
		WarmBases:          s.warmBases.Load(),
		WarmSkippedCorrupt: s.warmCorrupt.Load(),
		WarmSkippedVersion: s.warmVersion.Load(),
		WarmSkippedIO:      s.warmIO.Load(),
	}
}
