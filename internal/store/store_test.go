package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openT(t *testing.T, dir string, mut func(*Config)) *Store {
	t.Helper()
	cfg := Config{Dir: dir}
	if mut != nil {
		mut(&cfg)
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// loadAll drains Load into a map, accepting every entry.
func loadAll(s *Store, kind string) map[string]string {
	out := map[string]string{}
	s.Load(kind, func(key string, payload []byte) bool {
		out[key] = string(payload)
		return true
	})
	return out
}

// TestRoundTrip: blobs of both kinds survive Put → Flush → reopen → Load
// byte-for-byte, under separate namespaces.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, nil)
	s.Put(KindResult, "ka", []byte(`{"a":1}`))
	s.Put(KindResult, "kb", []byte(`{"b":2}`))
	s.Put(KindBase, "ka", []byte("base-payload")) // same key, different kind
	s.Flush()

	st := s.Stats()
	if st.Writes != 3 || st.WriteErrors != 0 || st.Dropped != 0 || st.Pending != 0 {
		t.Fatalf("after flush: %+v", st)
	}
	if st.ResultEntries != 2 || st.BaseEntries != 1 {
		t.Fatalf("entries: %d results, %d bases, want 2 and 1", st.ResultEntries, st.BaseEntries)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := openT(t, dir, nil)
	got := loadAll(r, KindResult)
	if len(got) != 2 || got["ka"] != `{"a":1}` || got["kb"] != `{"b":2}` {
		t.Errorf("results after reopen: %v", got)
	}
	if bases := loadAll(r, KindBase); len(bases) != 1 || bases["ka"] != "base-payload" {
		t.Errorf("bases after reopen: %v", bases)
	}
	st = r.Stats()
	if st.WarmResults != 2 || st.WarmBases != 1 {
		t.Errorf("warm counters: %d results, %d bases, want 2 and 1", st.WarmResults, st.WarmBases)
	}
	if skips := st.WarmSkippedCorrupt + st.WarmSkippedVersion + st.WarmSkippedIO; skips != 0 {
		t.Errorf("%d warm skips over a cleanly closed store: %+v", skips, st)
	}
}

// TestLoadOldestFirst: Load hands entries over in write order, so a caller
// filling an LRU leaves the newest blobs most recently used.
func TestLoadOldestFirst(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, nil)
	for i := 0; i < 5; i++ {
		s.Put(KindResult, fmt.Sprintf("k%d", i), []byte{byte(i)})
		s.Flush() // one at a time, so write timestamps are strictly ordered
	}
	s.Close()

	r := openT(t, dir, nil)
	var order []string
	r.Load(KindResult, func(key string, _ []byte) bool {
		order = append(order, key)
		return true
	})
	for i, key := range order {
		if want := fmt.Sprintf("k%d", i); key != want {
			t.Fatalf("load order %v, want oldest first", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("loaded %d entries, want 5", len(order))
	}
}

// mustOneBlob returns the single blob file under the store dir for a kind.
func mustOneBlob(t *testing.T, dir, subdir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, subdir, "*.blob"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("blob files in %s: %v (err %v), want exactly 1", subdir, matches, err)
	}
	return matches[0]
}

// TestCorruptBlobSkippedAndDeleted: a blob whose payload was flipped on disk
// is skipped (counted), deleted, and never handed to the caller.
func TestCorruptBlobSkippedAndDeleted(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, nil)
	s.Put(KindResult, "victim", []byte("payload-to-corrupt"))
	s.Flush()
	s.Close()

	path := mustOneBlob(t, dir, "results")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF // flip a payload byte; header stays valid
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	r := openT(t, dir, nil)
	if got := loadAll(r, KindResult); len(got) != 0 {
		t.Errorf("corrupt blob was loaded: %v", got)
	}
	st := r.Stats()
	if st.WarmSkippedCorrupt != 1 || st.WarmResults != 0 {
		t.Errorf("skip accounting: %+v, want 1 corrupt skip and 0 loads", st)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("corrupt blob not deleted (stat err %v)", err)
	}
	if st.ResultEntries != 0 {
		t.Errorf("corrupt entry still indexed: %d result entries", st.ResultEntries)
	}
}

// TestVersionMismatchSkipped: a blob from a future (or past) format version
// is skipped under its own counter — version drift is not corruption.
func TestVersionMismatchSkipped(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, nil)
	s.Put(KindResult, "old-format", []byte("payload"))
	s.Flush()
	s.Close()

	path := mustOneBlob(t, dir, "results")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[8] = 0xFE // version field follows the 8-byte magic
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	r := openT(t, dir, nil)
	if got := loadAll(r, KindResult); len(got) != 0 {
		t.Errorf("version-mismatched blob was loaded: %v", got)
	}
	st := r.Stats()
	if st.WarmSkippedVersion != 1 || st.WarmSkippedCorrupt != 0 {
		t.Errorf("skip accounting: %+v, want exactly 1 version skip", st)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("version-mismatched blob not deleted (stat err %v)", err)
	}
}

// TestCallbackRejectCountsCorrupt: a payload the CALLER cannot decode counts
// as a corruption and is deleted, exactly like a failed checksum — the store
// verified bytes, but bytes the cache cannot use are just as poisonous.
func TestCallbackRejectCountsCorrupt(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, nil)
	s.Put(KindResult, "good", []byte("ok"))
	s.Put(KindResult, "undecodable", []byte("not json"))
	s.Flush()
	s.Close()

	r := openT(t, dir, nil)
	loaded := 0
	r.Load(KindResult, func(key string, _ []byte) bool {
		if key == "undecodable" {
			return false
		}
		loaded++
		return true
	})
	st := r.Stats()
	if loaded != 1 || st.WarmResults != 1 || st.WarmSkippedCorrupt != 1 {
		t.Errorf("loaded %d, stats %+v; want 1 load and 1 corrupt skip", loaded, st)
	}
	if st.ResultEntries != 1 {
		t.Errorf("rejected entry still indexed: %d result entries", st.ResultEntries)
	}
}

// TestCapacityEvictsOldest: the per-kind cap deletes the oldest blobs first,
// mirroring the in-memory LRU's pressure model.
func TestCapacityEvictsOldest(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, func(c *Config) { c.MaxResults = 3 })
	for i := 0; i < 5; i++ {
		s.Put(KindResult, fmt.Sprintf("k%d", i), []byte{byte(i)})
		s.Flush()
	}
	if st := s.Stats(); st.ResultEntries != 3 {
		t.Fatalf("%d result entries, want the cap of 3", st.ResultEntries)
	}
	s.Close()

	r := openT(t, dir, func(c *Config) { c.MaxResults = 3 })
	got := loadAll(r, KindResult)
	for _, want := range []string{"k2", "k3", "k4"} {
		if _, ok := got[want]; !ok {
			t.Errorf("newest entry %s evicted; survivors %v", want, got)
		}
	}
	if len(got) != 3 {
		t.Errorf("loaded %d entries, want 3", len(got))
	}
}

// TestOverwriteSameKey: re-putting a key replaces the payload without
// growing the entry count.
func TestOverwriteSameKey(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, nil)
	s.Put(KindResult, "k", []byte("v1"))
	s.Put(KindResult, "k", []byte("v2"))
	s.Flush()
	if st := s.Stats(); st.ResultEntries != 1 || st.Writes != 2 {
		t.Fatalf("stats %+v, want 1 entry from 2 writes", st)
	}
	s.Close()
	r := openT(t, dir, nil)
	if got := loadAll(r, KindResult); len(got) != 1 || got["k"] != "v2" {
		t.Errorf("after overwrite: %v, want only v2", got)
	}
}

// TestPutAfterCloseDrops: a Put racing past Close is dropped and counted —
// never blocked, never a panic on the closed channel.
func TestPutAfterCloseDrops(t *testing.T) {
	s := openT(t, t.TempDir(), nil)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s.Put(KindResult, "late", []byte("x"))
	s.Flush() // no-op, must not hang
	if st := s.Stats(); st.Dropped != 1 || st.Writes != 0 {
		t.Errorf("stats %+v, want exactly 1 dropped write", st)
	}
	if err := s.Close(); err != nil {
		t.Errorf("second Close: %v, want nil", err)
	}
}

// TestUnknownKindIgnored: puts and loads against an unknown kind are no-ops,
// as is a put with an empty key.
func TestUnknownKindIgnored(t *testing.T) {
	s := openT(t, t.TempDir(), nil)
	s.Put("wrong", "k", []byte("x"))
	s.Put(KindResult, "", []byte("x"))
	s.Flush()
	s.Load("wrong", func(string, []byte) bool { t.Error("callback for unknown kind"); return true })
	if st := s.Stats(); st.Writes != 0 || st.Dropped != 0 {
		t.Errorf("stats %+v, want nothing written or dropped", st)
	}
}

// TestIndexRebuiltFromBlobs: deleting index.bin loses nothing — reconcile
// adopts every blob from its own header on the next Open.
func TestIndexRebuiltFromBlobs(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, nil)
	s.Put(KindResult, "a", []byte("pa"))
	s.Put(KindBase, "b", []byte("pb"))
	s.Flush()
	s.Close()
	if err := os.Remove(filepath.Join(dir, "index.bin")); err != nil {
		t.Fatal(err)
	}

	r := openT(t, dir, nil)
	if got := loadAll(r, KindResult); len(got) != 1 || got["a"] != "pa" {
		t.Errorf("results after index loss: %v", got)
	}
	if got := loadAll(r, KindBase); len(got) != 1 || got["b"] != "pb" {
		t.Errorf("bases after index loss: %v", got)
	}
}

// TestVanishedBlobDropped: an index record whose blob file is gone is
// reconciled away at Open — the directory is ground truth.
func TestVanishedBlobDropped(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, nil)
	s.Put(KindResult, "gone", []byte("x"))
	s.Flush()
	s.Close()
	if err := os.Remove(mustOneBlob(t, dir, "results")); err != nil {
		t.Fatal(err)
	}

	r := openT(t, dir, nil)
	if st := r.Stats(); st.ResultEntries != 0 {
		t.Errorf("%d result entries survive a deleted blob", st.ResultEntries)
	}
	if got := loadAll(r, KindResult); len(got) != 0 {
		t.Errorf("loaded %v from a deleted blob", got)
	}
}

// TestSumMatchesFNV pins the integrity checksum: FNV-64a, the serve cache's
// scheme, so the two tiers can cross-check each other's encodings.
func TestSumMatchesFNV(t *testing.T) {
	if got, want := Sum([]byte("")), uint64(0xcbf29ce484222325); got != want {
		t.Errorf("Sum(\"\") = %#x, want FNV-64a offset basis %#x", got, want)
	}
	if Sum([]byte("a")) == Sum([]byte("b")) {
		t.Error("distinct payloads share a checksum")
	}
}
