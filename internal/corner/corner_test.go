package corner

import (
	"context"
	"math"
	"strings"
	"testing"

	"dscts/internal/cluster"
	"dscts/internal/ctree"
	"dscts/internal/dme"
	"dscts/internal/eval"
	"dscts/internal/geom"
	"dscts/internal/insert"
	"dscts/internal/tech"
)

func TestPresetsValidateAndApply(t *testing.T) {
	tc := tech.ASAP7()
	for _, c := range Presets() {
		if err := c.Validate(); err != nil {
			t.Fatalf("preset %s: %v", c.Name, err)
		}
		derived := c.Apply(tc)
		if err := derived.Validate(); err != nil {
			t.Fatalf("preset %s derived tech: %v", c.Name, err)
		}
	}
	// Apply must not mutate the input technology.
	ref := tech.ASAP7()
	Slow().Apply(tc)
	if tc.Buf.DriveRes != ref.Buf.DriveRes || tc.Layers[0].UnitRes != ref.Layers[0].UnitRes {
		t.Fatal("Apply mutated the input tech")
	}
}

func TestApplyScalesEveryAxis(t *testing.T) {
	tc := tech.ASAP7()
	c := Corner{
		Name:    "x",
		WireRes: 2, WireCap: 3,
		BufRes: 1.5, BufCap: 1.25, BufIntrinsic: 1.1,
		TSVRes: 1.2, TSVCap: 1.3,
		SinkCap: 1.4,
	}
	d := c.Apply(tc)
	for i, l := range tc.Layers {
		if got, want := d.Layers[i].UnitRes, l.UnitRes*2; math.Abs(got-want) > 1e-15 {
			t.Fatalf("layer %s res %g want %g", l.Name, got, want)
		}
		if got, want := d.Layers[i].UnitCap, l.UnitCap*3; math.Abs(got-want) > 1e-15 {
			t.Fatalf("layer %s cap %g want %g", l.Name, got, want)
		}
	}
	if d.Buf.DriveRes != tc.Buf.DriveRes*1.5 || d.Buf.InputCap != tc.Buf.InputCap*1.25 || d.Buf.Intrinsic != tc.Buf.Intrinsic*1.1 {
		t.Fatalf("buffer not scaled: %+v", d.Buf)
	}
	if d.TSV.Res != tc.TSV.Res*1.2 || d.TSV.Cap != tc.TSV.Cap*1.3 {
		t.Fatalf("tsv not scaled: %+v", d.TSV)
	}
	if d.SinkCap != tc.SinkCap*1.4 {
		t.Fatalf("sink cap not scaled: %g", d.SinkCap)
	}
	// Unset factors mean unchanged.
	u := Corner{Name: "u", BufRes: 2}.Apply(tc)
	if u.Layers[2].UnitRes != tc.Layers[2].UnitRes || u.SinkCap != tc.SinkCap {
		t.Fatal("unset factors must leave axes unchanged")
	}
	if u.Buf.DriveRes != tc.Buf.DriveRes*2 {
		t.Fatal("set factor ignored")
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []Corner{
		{},                               // unnamed
		{Name: "bad", WireRes: -1},       // negative
		{Name: "bad", BufRes: 11},        // implausibly large
		{Name: "bad", SinkCap: 1.0 / 20}, // implausibly small
	}
	for _, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("corner %+v validated", c)
		}
	}
}

func TestByNameAndParseList(t *testing.T) {
	if _, err := ByName("SLOW"); err != nil {
		t.Fatalf("case-insensitive lookup: %v", err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown corner accepted")
	}
	cs, err := ParseList("slow, typ,fast")
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 3 || cs[0].Name != "slow" || cs[2].Name != "fast" {
		t.Fatalf("parsed %v", Names(cs))
	}
	for _, bad := range []string{"", "slow,slow", "slow,wat"} {
		if _, err := ParseList(bad); err == nil {
			t.Errorf("ParseList(%q) accepted", bad)
		}
	}
}

func TestLoadJSON(t *testing.T) {
	src := `[
	  {"name": "cold", "wire_res": 0.9, "buf_res": 0.8},
	  {"name": "hot",  "wire_res": 1.15, "buf_res": 1.3, "buf_intrinsic": 1.2}
	]`
	cs, err := LoadJSON(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 || cs[0].Name != "cold" || cs[1].BufIntrinsic != 1.2 {
		t.Fatalf("loaded %+v", cs)
	}
	// Unset factors resolve to 1.
	if cs[0].SinkCap != 1 || cs[0].TSVCap != 1 {
		t.Fatalf("defaults not applied: %+v", cs[0])
	}
	for _, bad := range []string{
		`[]`,
		`[{"wire_res": 1.0}]`,              // unnamed
		`[{"name":"a"},{"name":"a"}]`,      // duplicate
		`[{"name":"a","wire_res":99}]`,     // implausible
		`[{"name":"a","unknown_field":1}]`, // unknown field
		`{"name":"a"}`,                     // not an array
	} {
		if _, err := LoadJSON(strings.NewReader(bad)); err == nil {
			t.Errorf("LoadJSON(%q) accepted", bad)
		}
	}
}

func TestInterpolate(t *testing.T) {
	a, b := Slow(), Fast()
	if got := Interpolate(a, b, 0, "k"); got.BufRes != a.BufRes {
		t.Fatalf("t=0 gave %+v", got)
	}
	if got := Interpolate(a, b, 1, "k"); got.BufRes != b.BufRes {
		t.Fatalf("t=1 gave %+v", got)
	}
	mid := Interpolate(a, b, 0.5, "mid")
	want := (a.WireCap + b.WireCap) / 2
	if math.Abs(mid.WireCap-want) > 1e-15 {
		t.Fatalf("midpoint wire cap %g want %g", mid.WireCap, want)
	}
	if err := mid.Validate(); err != nil {
		t.Fatal(err)
	}
}

// smallTree builds a deterministic little clock tree for sign-off tests.
func smallTree(t *testing.T, tc *tech.Tech) *ctree.Tree {
	t.Helper()
	var sinks []geom.Point
	for i := 0; i < 60; i++ {
		sinks = append(sinks, geom.Pt(float64(i%10)*20, float64(i/10)*25))
	}
	front := tc.Front()
	d := cluster.DefaultDualOptions()
	d.CapOf = func(s, c geom.Point) float64 { return tc.SinkCap + front.UnitCap*s.Dist(c) }
	d.CapLimit = 0.6 * tc.Buf.MaxCap
	dual, err := cluster.DualLevel(sinks, d)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := dme.HierarchicalRoute(geom.Pt(90, 60), sinks, dual, tc, dme.HierOptions{MaxTrunkEdge: 40})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := insert.Run(tree, insert.DefaultConfig(tc)); err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestEvaluateAcrossCorners(t *testing.T) {
	tc := tech.ASAP7()
	tree := smallTree(t, tc)
	rep, err := Evaluate(context.Background(), tree, tc, Presets(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("%d results", len(rep.Results))
	}
	slow, typ, fast := rep.ByName("slow"), rep.ByName("typ"), rep.ByName("fast")
	if slow == nil || typ == nil || fast == nil {
		t.Fatal("missing corner result")
	}
	// Physics: slow corner must be slower than typ, typ slower than fast.
	if !(slow.Metrics.Latency > typ.Metrics.Latency && typ.Metrics.Latency > fast.Metrics.Latency) {
		t.Fatalf("latency ordering violated: slow %g typ %g fast %g",
			slow.Metrics.Latency, typ.Metrics.Latency, fast.Metrics.Latency)
	}
	// Structure is corner-independent: same tree, same counts.
	if slow.Metrics.Buffers != typ.Metrics.Buffers || slow.Metrics.WL != typ.Metrics.WL {
		t.Fatal("corner evaluation changed tree structure")
	}
	s := rep.Summary
	if s.WorstLatency != slow.Metrics.Latency || s.WorstLatencyCorner != "slow" {
		t.Fatalf("worst latency summary %+v", s)
	}
	wantSpread := slow.Metrics.Latency - fast.Metrics.Latency
	if math.Abs(s.LatencySpread-wantSpread) > 1e-12 {
		t.Fatalf("latency spread %g want %g", s.LatencySpread, wantSpread)
	}
	if s.MaxDivergence <= 0 || s.MaxDivergence < s.LatencySpread-1e-9 {
		// The worst sink's divergence is at least the latency spread when
		// the same sink is critical everywhere, and positive regardless.
		t.Fatalf("divergence %g implausible against spread %g", s.MaxDivergence, s.LatencySpread)
	}
	if s.WorstSkew < typ.Metrics.Skew {
		t.Fatalf("worst skew %g below typ %g", s.WorstSkew, typ.Metrics.Skew)
	}
}

func TestEvaluateDeterminismAcrossWorkersAndOrder(t *testing.T) {
	tc := tech.ASAP7()
	tree := smallTree(t, tc)
	// Eight corners exercise real fan-out.
	var corners []Corner
	for i := 0; i < 8; i++ {
		corners = append(corners, Interpolate(Slow(), Fast(), float64(i)/7, names8[i]))
	}
	run := func(workers int, cs []Corner) *Report {
		rep, err := Evaluate(context.Background(), tree, tc, cs, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(1, corners), run(8, corners)
	for i := range a.Results {
		ma, mb := a.Results[i].Metrics, b.Results[i].Metrics
		if ma.Latency != mb.Latency || ma.Skew != mb.Skew || ma.WL != mb.WL {
			t.Fatalf("workers changed corner %s: %+v vs %+v", a.Results[i].Corner.Name, ma, mb)
		}
		for sink, d := range ma.SinkDelays {
			if mb.SinkDelays[sink] != d {
				t.Fatalf("sink %d delay differs at corner %s", sink, a.Results[i].Corner.Name)
			}
		}
	}
	if a.Summary != b.Summary {
		t.Fatalf("summary differs: %+v vs %+v", a.Summary, b.Summary)
	}
	// Permuting the corner order permutes results but changes no metric.
	perm := []Corner{corners[5], corners[0], corners[7], corners[2], corners[6], corners[1], corners[3], corners[4]}
	c := run(3, perm)
	for i, pc := range perm {
		got := c.Results[i]
		if got.Corner.Name != pc.Name {
			t.Fatalf("merge order broken: result %d is %s want %s", i, got.Corner.Name, pc.Name)
		}
		ref := a.ByName(pc.Name)
		if got.Metrics.Latency != ref.Metrics.Latency || got.Metrics.Skew != ref.Metrics.Skew {
			t.Fatalf("corner %s metrics differ under permutation", pc.Name)
		}
	}
	// Summary is order-free.
	if c.Summary.WorstSkew != a.Summary.WorstSkew || c.Summary.MaxDivergence != a.Summary.MaxDivergence ||
		c.Summary.LatencySpread != a.Summary.LatencySpread || c.Summary.WorstLatency != a.Summary.WorstLatency {
		t.Fatalf("summary depends on corner order: %+v vs %+v", c.Summary, a.Summary)
	}
}

var names8 = []string{"k0", "k1", "k2", "k3", "k4", "k5", "k6", "k7"}

func TestEvaluateErrors(t *testing.T) {
	tc := tech.ASAP7()
	tree := smallTree(t, tc)
	if _, err := Evaluate(context.Background(), tree, tc, nil, Options{}); err == nil {
		t.Fatal("empty corner set accepted")
	}
	dup := []Corner{Typ(), Typ()}
	if _, err := Evaluate(context.Background(), tree, tc, dup, Options{}); err == nil {
		t.Fatal("duplicate corners accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Evaluate(ctx, tree, tc, Presets(), Options{}); err == nil {
		t.Fatal("cancelled context accepted")
	}
}

func TestEvaluateNLDMMode(t *testing.T) {
	tc := tech.ASAP7()
	tree := smallTree(t, tc)
	rep, err := Evaluate(context.Background(), tree, tc, Presets(), Options{Mode: eval.NLDM})
	if err != nil {
		t.Fatal(err)
	}
	slow, fast := rep.ByName("slow"), rep.ByName("fast")
	if !(slow.Metrics.Latency > fast.Metrics.Latency) {
		t.Fatalf("NLDM corner ordering violated: slow %g fast %g", slow.Metrics.Latency, fast.Metrics.Latency)
	}
	if slow.Metrics.MaxSlew <= fast.Metrics.MaxSlew {
		t.Fatalf("slow corner slew %g not above fast %g", slow.Metrics.MaxSlew, fast.Metrics.MaxSlew)
	}
}
