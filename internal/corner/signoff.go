package corner

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"

	"dscts/internal/ctree"
	"dscts/internal/eval"
	"dscts/internal/par"
	"dscts/internal/tech"
)

// Result is one corner's evaluation of a finished clock tree.
type Result struct {
	Corner  Corner        `json:"corner"`
	Metrics *eval.Metrics `json:"metrics"`
}

// Summary carries the derived cross-corner numbers: which corner is worst
// on each axis, how far the corners spread, and how much any single sink's
// delay diverges across corners.
type Summary struct {
	// WorstSkew is the maximum skew over corners, and WorstSkewCorner the
	// corner that attains it (first in corner order on ties).
	WorstSkew       float64 `json:"worst_skew_ps"`
	WorstSkewCorner string  `json:"worst_skew_corner"`
	// WorstLatency / WorstLatencyCorner likewise for latency.
	WorstLatency       float64 `json:"worst_latency_ps"`
	WorstLatencyCorner string  `json:"worst_latency_corner"`
	// LatencySpread is max-minus-min latency across corners: how much the
	// tree's insertion-to-capture window moves with PVT.
	LatencySpread float64 `json:"latency_spread_ps"`
	// MaxDivergence is the worst per-sink cross-corner delay spread: the
	// maximum over sinks of (max-min delay to that sink across corners).
	// Unlike LatencySpread it catches sinks whose delay reorders between
	// corners even when the envelope stays put.
	MaxDivergence float64 `json:"max_divergence_ps"`
}

// Report is the multi-corner sign-off of one tree: per-corner Metrics in
// the caller's corner order plus the cross-corner Summary.
type Report struct {
	Results []Result `json:"results"`
	Summary Summary  `json:"summary"`
}

// ByName returns the result for the named corner, or nil.
func (r *Report) ByName(name string) *Result {
	for i := range r.Results {
		if r.Results[i].Corner.Name == name {
			return &r.Results[i]
		}
	}
	return nil
}

// Options configures Evaluate.
type Options struct {
	// Mode selects the per-corner delay model (eval.Elmore default, or
	// eval.NLDM for table-based sign-off).
	Mode eval.Mode
	// Workers bounds the corner fan-out (0 or negative = one per CPU).
	// Results are bit-identical for every worker count: each corner's
	// evaluation is a pure function of (tree, tech, corner) and results
	// merge in corner order.
	Workers int
	// OnCorner, when non-nil, is called after each corner completes with
	// the completed and total counts. It may be called from multiple
	// goroutines.
	OnCorner func(done, total int)
}

// Evaluate signs off a finished clock tree across the given corners: each
// corner derives its own technology view (Corner.Apply), evaluates the
// tree under it, and the per-corner Metrics merge in corner order. Corners
// are embarrassingly parallel; opt.Workers bounds the fan-out on the
// shared worker budget. A cancelled ctx stops scheduling further corners
// and returns an error wrapping ctx.Err().
func Evaluate(ctx context.Context, t *ctree.Tree, tc *tech.Tech, corners []Corner, opt Options) (*Report, error) {
	if err := ValidateSet(corners); err != nil {
		return nil, err
	}
	rep := &Report{Results: make([]Result, len(corners))}
	errs := make([]error, len(corners))
	var done atomic.Int64
	par.ForEach(opt.Workers, len(corners), func(i int) {
		if ctx.Err() != nil {
			return
		}
		c := corners[i].Normalize()
		ctc := c.Apply(tc)
		m, err := eval.New(ctc, opt.Mode).Evaluate(t)
		if err != nil {
			errs[i] = fmt.Errorf("corner %s: %w", c.Name, err)
			return
		}
		rep.Results[i] = Result{Corner: c, Metrics: m}
		if opt.OnCorner != nil {
			opt.OnCorner(int(done.Add(1)), len(corners))
		}
	})
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("corner: %w", err)
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	rep.Summary = summarize(rep.Results)
	return rep, nil
}

// summarize computes the cross-corner numbers. Every reduction is a pure
// max/min, so the result is independent of iteration order; corner ties
// resolve to the first corner in caller order.
func summarize(results []Result) Summary {
	s := Summary{WorstSkew: math.Inf(-1), WorstLatency: math.Inf(-1)}
	minLat := math.Inf(1)
	for _, r := range results {
		if r.Metrics.Skew > s.WorstSkew {
			s.WorstSkew = r.Metrics.Skew
			s.WorstSkewCorner = r.Corner.Name
		}
		if r.Metrics.Latency > s.WorstLatency {
			s.WorstLatency = r.Metrics.Latency
			s.WorstLatencyCorner = r.Corner.Name
		}
		minLat = math.Min(minLat, r.Metrics.Latency)
	}
	s.LatencySpread = s.WorstLatency - minLat
	// Per-sink divergence across corners. Sink delay maps share one key
	// set (same tree under every corner).
	for sink, d0 := range results[0].Metrics.SinkDelays {
		lo, hi := d0, d0
		for _, r := range results[1:] {
			d := r.Metrics.SinkDelays[sink]
			lo = math.Min(lo, d)
			hi = math.Max(hi, d)
		}
		s.MaxDivergence = math.Max(s.MaxDivergence, hi-lo)
	}
	return s
}
