// Package corner models process/voltage/temperature (PVT) corners for
// multi-corner timing sign-off. A Corner is a named set of multiplicative
// derating factors applied to every delay-relevant axis of the technology:
// metal-layer unit parasitics (tech.Layer UnitRes/UnitCap, front and back
// side alike), the clock buffer's drive resistance, input capacitance and
// intrinsic delay (which also rescale the synthesized NLDM table, since the
// table is derived from the buffer model), the nTSV via R/C, and the sink
// pin capacitance.
//
// The paper's flow (Sec. II-B) optimizes under a single typical-corner
// Elmore/linear-gate model; real sign-off evaluates the finished tree at
// every corner. Evaluate does exactly that: it fans the corner evaluations
// out over the shared worker budget (internal/par) and merges them in
// corner order, so the per-corner Metrics are bit-identical for every
// worker count and every corner permutation.
package corner

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"dscts/internal/tech"
)

// Corner is one named PVT corner: multiplicative factors on the
// technology's delay-relevant parameters. A factor of 0 in the JSON or
// zero-value form means "unchanged" (1.0); Normalize resolves that. All
// resolved factors must be positive and physically plausible (Validate).
type Corner struct {
	Name string `json:"name"`
	// WireRes and WireCap scale every routing layer's unit resistance and
	// capacitance (front- and back-side metal alike).
	WireRes float64 `json:"wire_res,omitempty"`
	WireCap float64 `json:"wire_cap,omitempty"`
	// BufRes, BufCap and BufIntrinsic scale the clock buffer's linear
	// drive resistance, input pin capacitance and intrinsic delay. The
	// NLDM delay/slew surfaces are synthesized from these parameters, so
	// scaling them rescales the table axes consistently.
	BufRes       float64 `json:"buf_res,omitempty"`
	BufCap       float64 `json:"buf_cap,omitempty"`
	BufIntrinsic float64 `json:"buf_intrinsic,omitempty"`
	// TSVRes and TSVCap scale the nano-TSV via parasitics.
	TSVRes float64 `json:"tsv_res,omitempty"`
	TSVCap float64 `json:"tsv_cap,omitempty"`
	// SinkCap scales the flip-flop clock pin capacitance.
	SinkCap float64 `json:"sink_cap,omitempty"`
}

// factors lists the corner's factor fields in a fixed order; used by
// Normalize, Validate and Interpolate so no axis can be missed.
func (c *Corner) factors() []*float64 {
	return []*float64{
		&c.WireRes, &c.WireCap,
		&c.BufRes, &c.BufCap, &c.BufIntrinsic,
		&c.TSVRes, &c.TSVCap, &c.SinkCap,
	}
}

// Normalize returns a copy with every unset (zero) factor resolved to 1.0.
func (c Corner) Normalize() Corner {
	for _, f := range c.factors() {
		if *f == 0 {
			*f = 1
		}
	}
	return c
}

// maxFactor bounds plausible derating: real PVT corners derate delay axes
// by tens of percent, not orders of magnitude. Factors outside
// (1/maxFactor, maxFactor) are rejected as likely unit mistakes.
const maxFactor = 10.0

// Validate checks the corner after normalization.
func (c Corner) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("corner: unnamed corner")
	}
	n := c.Normalize()
	for _, f := range n.factors() {
		if !(*f > 1/maxFactor && *f < maxFactor) {
			return fmt.Errorf("corner %s: factor %g outside (%g, %g)", c.Name, *f, 1/maxFactor, maxFactor)
		}
	}
	return nil
}

// Apply returns a derived technology with the corner's factors applied.
// The input technology is not modified. The result satisfies
// tech.Validate whenever the input does and the corner validates, because
// uniform positive scaling preserves every ordering Validate checks except
// the back-vs-front RC premise, which a uniform wire factor also preserves.
func (c Corner) Apply(tc *tech.Tech) *tech.Tech {
	n := c.Normalize()
	out := *tc
	out.Layers = make([]tech.Layer, len(tc.Layers))
	for i, l := range tc.Layers {
		l.UnitRes *= n.WireRes
		l.UnitCap *= n.WireCap
		out.Layers[i] = l
	}
	out.Buf.DriveRes *= n.BufRes
	out.Buf.InputCap *= n.BufCap
	out.Buf.Intrinsic *= n.BufIntrinsic
	out.TSV.Res *= n.TSVRes
	out.TSV.Cap *= n.TSVCap
	out.SinkCap *= n.SinkCap
	return &out
}

// Typ returns the typical corner: the technology as characterized (all
// factors 1.0).
func Typ() Corner {
	return Corner{Name: "typ"}.Normalize()
}

// Slow returns the slow sign-off corner for the ASAP7-derived technology:
// slow process, low voltage, high temperature. Wires gain resistance from
// metal temperature and capacitance from worst-case dielectric spread;
// gates slow down substantially (drive resistance and intrinsic delay up,
// pin caps up slightly).
func Slow() Corner {
	return Corner{
		Name:    "slow",
		WireRes: 1.08, WireCap: 1.05,
		BufRes: 1.45, BufCap: 1.10, BufIntrinsic: 1.40,
		TSVRes: 1.20, TSVCap: 1.05,
		SinkCap: 1.05,
	}
}

// Fast returns the fast sign-off corner: fast process, high voltage, low
// temperature — the hold-check corner.
func Fast() Corner {
	return Corner{
		Name:    "fast",
		WireRes: 0.92, WireCap: 0.95,
		BufRes: 0.70, BufCap: 0.92, BufIntrinsic: 0.75,
		TSVRes: 0.85, TSVCap: 0.95,
		SinkCap: 0.95,
	}
}

// Presets returns the built-in sign-off set in canonical order:
// slow, typ, fast.
func Presets() []Corner {
	return []Corner{Slow(), Typ(), Fast()}
}

// ByName resolves a built-in preset name (case-insensitive).
func ByName(name string) (Corner, error) {
	for _, c := range Presets() {
		if strings.EqualFold(c.Name, name) {
			return c, nil
		}
	}
	return Corner{}, fmt.Errorf("corner: unknown corner %q (have slow, typ, fast)", name)
}

// ParseList resolves a comma-separated preset list, e.g. "slow,typ,fast".
// Duplicate names are rejected: each corner may appear once per sign-off.
func ParseList(s string) ([]Corner, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("corner: empty corner list")
	}
	var out []Corner
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		name := strings.TrimSpace(part)
		c, err := ByName(name)
		if err != nil {
			return nil, err
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("corner: duplicate corner %q", c.Name)
		}
		seen[c.Name] = true
		out = append(out, c)
	}
	return out, nil
}

// LoadJSON reads a custom corner set: a JSON array of Corner objects.
// Unset factors default to 1.0; every corner must validate and names must
// be unique.
func LoadJSON(r io.Reader) ([]Corner, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var raw []Corner
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("corner: %w", err)
	}
	if len(raw) == 0 {
		return nil, fmt.Errorf("corner: no corners in input")
	}
	seen := map[string]bool{}
	out := make([]Corner, len(raw))
	for i, c := range raw {
		if err := c.Validate(); err != nil {
			return nil, err
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("corner: duplicate corner %q", c.Name)
		}
		seen[c.Name] = true
		out[i] = c.Normalize()
	}
	return out, nil
}

// ValidateSet checks a sign-off corner list: non-empty, every corner
// valid, names unique. Flows call this before spending work that a bad
// list would throw away.
func ValidateSet(corners []Corner) error {
	if len(corners) == 0 {
		return fmt.Errorf("corner: no corners to evaluate")
	}
	seen := map[string]bool{}
	for _, c := range corners {
		if err := c.Validate(); err != nil {
			return err
		}
		if seen[c.Name] {
			return fmt.Errorf("corner: duplicate corner %q", c.Name)
		}
		seen[c.Name] = true
	}
	return nil
}

// Interpolate blends two corners: t=0 returns a, t=1 returns b, with every
// factor interpolated linearly in between (t outside [0,1] extrapolates).
// Used to synthesize dense corner sweeps between the slow and fast presets
// for scaling studies.
func Interpolate(a, b Corner, t float64, name string) Corner {
	na, nb := a.Normalize(), b.Normalize()
	out := Corner{Name: name}
	fa, fb, fo := na.factors(), nb.factors(), out.factors()
	for i := range fo {
		*fo[i] = *fa[i] + t*(*fb[i]-*fa[i])
	}
	return out
}

// Names returns the corner names in order, for labels and cache keys.
func Names(corners []Corner) []string {
	out := make([]string, len(corners))
	for i, c := range corners {
		out[i] = c.Name
	}
	return out
}
