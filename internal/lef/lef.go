// Package lef reads the minimal LEF (Library Exchange Format) subset the
// flow consumes: MACRO blocks with SIZE and CLASS. It also embeds the
// ASAP7-like macros the paper's experiments use (the BUFx4 clock buffer,
// the nTSV cell, and a DFF standing in for the clock sinks), so the tools
// run without external library files.
package lef

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Macro is one library cell.
type Macro struct {
	Name   string
	Class  string
	Width  float64 // µm
	Height float64 // µm
}

// Library is a parsed LEF file.
type Library struct {
	Macros map[string]Macro
}

// Parse reads MACRO blocks from r.
func Parse(r io.Reader) (*Library, error) {
	lib := &Library{Macros: map[string]Macro{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	var cur *Macro
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		toks := strings.Fields(line)
		switch {
		case toks[0] == "MACRO" && len(toks) >= 2:
			if cur != nil {
				return nil, fmt.Errorf("lef: nested MACRO %s inside %s", toks[1], cur.Name)
			}
			cur = &Macro{Name: toks[1]}
		case cur != nil && toks[0] == "CLASS" && len(toks) >= 2:
			cur.Class = strings.TrimSuffix(toks[1], ";")
		case cur != nil && toks[0] == "SIZE" && len(toks) >= 4:
			w, err1 := strconv.ParseFloat(toks[1], 64)
			h, err2 := strconv.ParseFloat(toks[3], 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("lef: bad SIZE in %s: %q", cur.Name, line)
			}
			cur.Width, cur.Height = w, h
		case cur != nil && toks[0] == "END" && len(toks) >= 2 && toks[1] == cur.Name:
			lib.Macros[cur.Name] = *cur
			cur = nil
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("lef: %w", err)
	}
	if cur != nil {
		return nil, fmt.Errorf("lef: unterminated MACRO %s", cur.Name)
	}
	return lib, nil
}

// Embedded is the built-in ASAP7-like library source.
const Embedded = `# ASAP7-like minimal LEF for the double-side CTS flow
MACRO BUFx4_ASAP7_75t_R
  CLASS CORE ;
  SIZE 0.378 BY 0.270 ;
END BUFx4_ASAP7_75t_R
MACRO NTSV
  CLASS CORE ;
  SIZE 0.270 BY 0.270 ;
END NTSV
MACRO DFFHQNx1_ASAP7_75t_R
  CLASS CORE ;
  SIZE 0.810 BY 0.270 ;
END DFFHQNx1_ASAP7_75t_R
`

// Default returns the embedded library.
func Default() *Library {
	lib, err := Parse(strings.NewReader(Embedded))
	if err != nil {
		panic("lef: embedded library invalid: " + err.Error())
	}
	return lib
}
