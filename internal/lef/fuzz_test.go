package lef

// Native Go fuzz target for the LEF parser. Contract: Parse must return
// errors on malformed input — never panic — and anything it accepts must
// yield a well-formed library (non-nil macro map, every recorded macro
// keyed by its own name). Seeds are the embedded ASAP7-like library (the
// same source the C1..C3 benchgen round trip emits next to each DEF) plus
// malformed MACRO shapes.
//
// Run the smoke locally with:
//
//	go test -run xxx -fuzz FuzzParseLEF -fuzztime 10s ./internal/lef
//
// (CI runs the same via `make fuzz`.)

import (
	"strings"
	"testing"
)

func FuzzParseLEF(f *testing.F) {
	f.Add(Embedded)
	for _, s := range []string{
		"",
		"# comment only\n",
		"MACRO\n",
		"MACRO A\nEND A\n",
		"MACRO A\nMACRO B\nEND B\nEND A\n", // nested
		"MACRO A\nSIZE 1 BY x ;\nEND A\n",  // bad size
		"MACRO A\nSIZE 1 BY\nEND A\n",      // short size
		"MACRO A\nCLASS\nEND A\n",          // short class
		"MACRO A\nCLASS CORE ;\nSIZE 0.378 BY 0.270 ;\n", // unterminated
		"END A\n",          // END without MACRO
		"SIZE 1 BY 2 ;\n",  // statement outside MACRO
		"MACRO A\nEND B\n", // mismatched END is ignored, stays open
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		lib, err := Parse(strings.NewReader(input))
		if err != nil {
			return // rejected cleanly
		}
		if lib.Macros == nil {
			t.Fatal("accepted library with nil macro map")
		}
		for name, m := range lib.Macros {
			if m.Name != name {
				t.Fatalf("macro %q recorded under key %q", m.Name, name)
			}
		}
	})
}
