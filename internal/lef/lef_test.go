package lef

import (
	"strings"
	"testing"
)

func TestDefaultLibrary(t *testing.T) {
	lib := Default()
	buf, ok := lib.Macros["BUFx4_ASAP7_75t_R"]
	if !ok {
		t.Fatal("buffer macro missing")
	}
	// Footprints from Sec. IV-A of the paper.
	if buf.Width != 0.378 || buf.Height != 0.270 {
		t.Errorf("buffer size %gx%g", buf.Width, buf.Height)
	}
	tsv, ok := lib.Macros["NTSV"]
	if !ok || tsv.Width != 0.270 || tsv.Height != 0.270 {
		t.Errorf("ntsv: %+v ok=%v", tsv, ok)
	}
	if _, ok := lib.Macros["DFFHQNx1_ASAP7_75t_R"]; !ok {
		t.Error("dff macro missing")
	}
	if buf.Class != "CORE" {
		t.Errorf("class %q", buf.Class)
	}
}

func TestParseHandlesCommentsAndBlank(t *testing.T) {
	src := `# comment

MACRO X
  CLASS PAD ;
  SIZE 1.5 BY 2.5 ;
END X
`
	lib, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	m := lib.Macros["X"]
	if m.Width != 1.5 || m.Height != 2.5 || m.Class != "PAD" {
		t.Errorf("macro %+v", m)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(strings.NewReader("MACRO A\nMACRO B\nEND B")); err == nil {
		t.Error("nested macro should fail")
	}
	if _, err := Parse(strings.NewReader("MACRO A\nSIZE x BY 2 ;\nEND A")); err == nil {
		t.Error("bad size should fail")
	}
	if _, err := Parse(strings.NewReader("MACRO A\nSIZE 1 BY 2 ;")); err == nil {
		t.Error("unterminated macro should fail")
	}
}
