package dme

import (
	"math"
	"math/rand"
	"testing"

	"dscts/internal/cluster"
	"dscts/internal/geom"
	"dscts/internal/tech"
)

func frontLayer() tech.Layer { return tech.ASAP7().Front() }

func TestRouteErrors(t *testing.T) {
	if _, err := Route(nil, geom.Pt(0, 0), Options{Layer: frontLayer(), Snaking: true}); err == nil {
		t.Error("empty leaves should error")
	}
	if _, err := Route([]Leaf{{Pos: geom.Pt(0, 0)}}, geom.Pt(0, 0), Options{}); err == nil {
		t.Error("zero layer should error")
	}
}

func TestRouteSingleLeaf(t *testing.T) {
	l := []Leaf{{Pos: geom.Pt(5, 5), Cap: 2}}
	tr, err := Route(l, geom.Pt(0, 0), Options{Layer: frontLayer(), Snaking: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Nodes) != 1 || tr.Nodes[tr.Root].LeafIdx != 0 {
		t.Fatalf("single-leaf tree malformed: %+v", tr.Nodes)
	}
	if tr.Cap != 2 {
		t.Errorf("Cap = %v", tr.Cap)
	}
}

func TestRouteSymmetricPairZeroSkew(t *testing.T) {
	leaves := []Leaf{
		{Pos: geom.Pt(0, 0), Cap: 1},
		{Pos: geom.Pt(10, 0), Cap: 1},
	}
	tr, err := Route(leaves, geom.Pt(5, 20), Options{Layer: frontLayer(), Snaking: true})
	if err != nil {
		t.Fatal(err)
	}
	d := tr.LeafDelays(frontLayer(), leaves)
	if math.Abs(d[0]-d[1]) > 1e-9 {
		t.Fatalf("skew = %v", d[0]-d[1])
	}
	// The tap must sit at Manhattan distance 5 from both leaves.
	root := tr.Nodes[tr.Root].Pos
	if math.Abs(root.Dist(geom.Pt(0, 0))-5) > 1e-6 {
		t.Errorf("tap %v not equidistant", root)
	}
}

// The central DME property: for any leaf set, caps and ready delays, the
// routed tree has (near-)zero Elmore skew at the root tapping point.
func TestRouteZeroSkewProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(40) + 2
		leaves := make([]Leaf, n)
		for i := range leaves {
			leaves[i] = Leaf{
				Pos:   geom.Pt(rng.Float64()*400, rng.Float64()*400),
				Cap:   rng.Float64()*5 + 0.5,
				Delay: rng.Float64() * 10,
			}
		}
		tr, err := Route(leaves, geom.Pt(200, 200), Options{Layer: frontLayer(), Snaking: true})
		if err != nil {
			t.Fatal(err)
		}
		d := tr.LeafDelays(frontLayer(), leaves)
		if len(d) != n {
			t.Fatalf("trial %d: %d of %d leaves have delays", trial, len(d), n)
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range d {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if hi-lo > 1e-6*(1+hi) {
			t.Fatalf("trial %d (n=%d): skew %v (latency %v)", trial, n, hi-lo, hi)
		}
	}
}

func TestRouteSnakingBalancesAsymmetricDelays(t *testing.T) {
	// Leaf 0 carries a huge ready delay: balancing must snake the other
	// branch rather than produce negative lengths.
	leaves := []Leaf{
		{Pos: geom.Pt(0, 0), Cap: 1, Delay: 50},
		{Pos: geom.Pt(4, 0), Cap: 1, Delay: 0},
	}
	tr, err := Route(leaves, geom.Pt(2, 0), Options{Layer: frontLayer(), Snaking: true})
	if err != nil {
		t.Fatal(err)
	}
	d := tr.LeafDelays(frontLayer(), leaves)
	if math.Abs(d[0]-d[1]) > 1e-6*(1+d[0]) {
		t.Fatalf("snaking failed to balance: %v vs %v", d[0], d[1])
	}
	// Wirelength must exceed the plain span (detour present).
	if tr.Wirelength() <= 4 {
		t.Fatalf("expected snaking wirelength > 4, got %v", tr.Wirelength())
	}
}

func TestRouteAllLeavesPresent(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	leaves := make([]Leaf, 57) // odd count exercises leftover promotion
	for i := range leaves {
		leaves[i] = Leaf{Pos: geom.Pt(rng.Float64()*100, rng.Float64()*100), Cap: 1}
	}
	tr, err := Route(leaves, geom.Pt(0, 0), Options{Layer: frontLayer(), Snaking: true})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, n := range tr.Nodes {
		if n.LeafIdx >= 0 {
			if seen[n.LeafIdx] {
				t.Fatalf("leaf %d duplicated", n.LeafIdx)
			}
			seen[n.LeafIdx] = true
		}
	}
	if len(seen) != len(leaves) {
		t.Fatalf("%d of %d leaves embedded", len(seen), len(leaves))
	}
}

func TestRouteDeterministic(t *testing.T) {
	leaves := []Leaf{
		{Pos: geom.Pt(0, 0), Cap: 1}, {Pos: geom.Pt(10, 3), Cap: 1},
		{Pos: geom.Pt(4, 9), Cap: 1}, {Pos: geom.Pt(8, 8), Cap: 1},
	}
	a, _ := Route(leaves, geom.Pt(0, 0), Options{Layer: frontLayer(), Snaking: true})
	b, _ := Route(leaves, geom.Pt(0, 0), Options{Layer: frontLayer(), Snaking: true})
	if len(a.Nodes) != len(b.Nodes) || a.Wirelength() != b.Wirelength() {
		t.Fatal("routing must be deterministic")
	}
}

func clumpedSinks(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	hot := []geom.Point{{X: 80, Y: 80}, {X: 700, Y: 120}, {X: 250, Y: 760}, {X: 820, Y: 800}}
	pts := make([]geom.Point, n)
	for i := range pts {
		h := hot[rng.Intn(len(hot))]
		pts[i] = geom.Pt(math.Abs(h.X+rng.NormFloat64()*50), math.Abs(h.Y+rng.NormFloat64()*50))
	}
	return pts
}

func TestHierarchicalRouteBuildsValidTree(t *testing.T) {
	tc := tech.ASAP7()
	sinks := clumpedSinks(800, 3)
	d, err := cluster.DualLevel(sinks, cluster.DualOptions{HighSize: 200, LowSize: 25, Seed: 1, MaxIter: 25})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := HierarchicalRoute(geom.Pt(450, 450), sinks, d, tc, HierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Sinks()); got != len(sinks) {
		t.Fatalf("%d of %d sinks in tree", got, len(sinks))
	}
	if got := len(tr.Centroids()); got != d.NumLow() {
		t.Fatalf("%d centroids, want %d", got, d.NumLow())
	}
	// Every sink node sits under a centroid carrying its cluster.
	for _, sid := range tr.Sinks() {
		p := tr.Nodes[sid].Parent
		if tr.Nodes[p].Kind != 2 /* KindCentroid */ {
			t.Fatalf("sink %d parent kind %v", sid, tr.Nodes[p].Kind)
		}
	}
}

func TestHierarchicalRouteSplitsEdges(t *testing.T) {
	tc := tech.ASAP7()
	sinks := clumpedSinks(300, 7)
	d, err := cluster.DualLevel(sinks, cluster.DualOptions{HighSize: 100, LowSize: 20, Seed: 2, MaxIter: 25})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := HierarchicalRoute(geom.Pt(400, 400), sinks, d, tc, HierOptions{MaxTrunkEdge: 25})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range tr.TrunkEdges() {
		if tr.EdgeLen(id) > 25+1e-9 {
			t.Fatalf("trunk edge %d length %v exceeds bound", id, tr.EdgeLen(id))
		}
	}
}

func TestFlatRouteBuildsValidTree(t *testing.T) {
	tc := tech.ASAP7()
	sinks := clumpedSinks(400, 11)
	d, err := cluster.DualLevel(sinks, cluster.DualOptions{HighSize: 150, LowSize: 20, Seed: 3, MaxIter: 25})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := FlatRoute(geom.Pt(400, 400), sinks, d, tc, HierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Sinks()); got != len(sinks) {
		t.Fatalf("%d of %d sinks", got, len(sinks))
	}
}

// The paper's motivation for the hierarchy (Fig. 5): on imbalanced sink
// distributions, hierarchical DME should not lose to plain matching DME on
// wirelength by any meaningful margin (it usually wins).
func TestHierVsFlatWirelength(t *testing.T) {
	tc := tech.ASAP7()
	sinks := clumpedSinks(1200, 19)
	d, err := cluster.DualLevel(sinks, cluster.DualOptions{HighSize: 300, LowSize: 25, Seed: 4, MaxIter: 25})
	if err != nil {
		t.Fatal(err)
	}
	hier, err := HierarchicalRoute(geom.Pt(450, 450), sinks, d, tc, HierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	flat, err := FlatRoute(geom.Pt(450, 450), sinks, d, tc, HierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	hw, fw := hier.Wirelength(), flat.Wirelength()
	if hw > fw*1.15 {
		t.Fatalf("hierarchical WL %v much worse than flat %v", hw, fw)
	}
	t.Logf("hier WL %.0f vs flat WL %.0f", hw, fw)
}

func TestWirelengthIncludesSnake(t *testing.T) {
	leaves := []Leaf{
		{Pos: geom.Pt(0, 0), Cap: 1, Delay: 100},
		{Pos: geom.Pt(2, 0), Cap: 1},
	}
	tr, err := Route(leaves, geom.Pt(1, 0), Options{Layer: frontLayer(), Snaking: true})
	if err != nil {
		t.Fatal(err)
	}
	var snake float64
	for _, n := range tr.Nodes {
		snake += n.SnakeExtra
	}
	if snake <= 0 {
		t.Fatal("expected snaking")
	}
	if tr.Wirelength() < snake {
		t.Fatal("wirelength must include snake detours")
	}
}

func TestRouteNoSnakingWhenDisabled(t *testing.T) {
	leaves := []Leaf{
		{Pos: geom.Pt(0, 0), Cap: 1, Delay: 100},
		{Pos: geom.Pt(2, 0), Cap: 1},
	}
	tr, err := Route(leaves, geom.Pt(1, 0), Options{Layer: frontLayer()})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range tr.Nodes {
		if n.SnakeExtra > 1e-6 {
			t.Fatalf("snake %v with snaking disabled", n.SnakeExtra)
		}
	}
	// Wirelength equals the plain span: the tap sits on the slow leaf.
	if tr.Wirelength() > 2+1e-6 {
		t.Fatalf("wirelength %v > 2", tr.Wirelength())
	}
}
