// Package dme implements Deferred-Merge Embedding clock routing (Boese &
// Kahng [13], Edahiro [14]) on the L-type Elmore model, plus the paper's
// hierarchical variant (Fig. 5(d)): DME over low-level cluster centroids as
// leaves with the corresponding high-level centroid as root, stacked under a
// top-level DME over the high-level centroids.
//
// DME runs in two phases. Bottom-up, each subtree is summarized by a
// *merging segment* — a Manhattan arc of feasible tapping points that all
// realize balanced (zero-skew under Elmore) delay — computed by expanding
// the children's segments by the balance-split edge lengths and
// intersecting. Top-down, a concrete embedding is chosen by projecting each
// merging segment onto the parent's placed tapping point.
package dme

import (
	"fmt"
	"math"

	"dscts/internal/geom"
	"dscts/internal/tech"
)

// Leaf is a DME leaf: a point with the capacitive load and ready delay of
// the subtree it stands for.
type Leaf struct {
	Pos geom.Point
	// Cap is the load the leaf presents to the routing (fF).
	Cap float64
	// Delay is the internal delay already accumulated below the leaf (ps);
	// nonzero when the leaf summarizes a routed subtree.
	Delay float64
}

// Node is one vertex of a routed DME tree.
type Node struct {
	Pos    geom.Point
	Parent int // -1 for the tree root
	// LeafIdx is the index into the input leaves for leaf nodes, -1 for
	// internal (merge) nodes.
	LeafIdx int
	// SnakeExtra is detour wirelength (µm) required on the edge to the
	// parent beyond the Manhattan distance, introduced by delay balancing
	// when one branch is intrinsically slower.
	SnakeExtra float64
}

// Tree is the output of Route: a binary routing tree over the input leaves.
type Tree struct {
	Nodes []Node
	Root  int
	// Cap and Delay summarize the routed tree at its root tapping point:
	// total downstream capacitance and balanced source-to-leaf delay.
	Cap   float64
	Delay float64
}

// Options tunes the router.
type Options struct {
	// Layer supplies the unit parasitics used for delay balancing. The
	// initial routing is balanced on the front-side layer; insertion
	// re-times everything afterwards.
	Layer tech.Layer
	// Snaking enables wire detours to balance intrinsically unequal
	// branches (exact zero-skew trees). The paper's flow leaves it off:
	// buffer insertion re-times the tree anyway, so detour wire would be
	// pure wirelength waste; residual skew is handled by the DP and skew
	// refinement.
	Snaking bool
}

type msNode struct {
	ms      geom.Arc
	cap     float64
	delay   float64
	child   [2]int // indices into the working node list, -1 for leaves
	edgeLen [2]float64
	leafIdx int
}

// Route builds a DME tree over the leaves and embeds it with the root
// tapping point pulled toward rootHint (the parent connection point).
// It returns an error for empty input.
func Route(leaves []Leaf, rootHint geom.Point, opt Options) (*Tree, error) {
	if len(leaves) == 0 {
		return nil, fmt.Errorf("dme: no leaves")
	}
	if opt.Layer.UnitRes <= 0 || opt.Layer.UnitCap <= 0 {
		return nil, fmt.Errorf("dme: invalid layer %+v", opt.Layer)
	}
	// Working set: one msNode per input leaf.
	work := make([]msNode, 0, 2*len(leaves))
	active := make([]int, 0, len(leaves))
	for i, l := range leaves {
		work = append(work, msNode{
			ms: geom.PointArc(l.Pos), cap: l.Cap, delay: l.Delay,
			child: [2]int{-1, -1}, leafIdx: i,
		})
		active = append(active, i)
	}
	// Bottom-up: pair nearest neighbours level by level.
	for len(active) > 1 {
		pairs, leftover := matchNearest(work, active)
		next := make([]int, 0, len(pairs)+1)
		for _, pr := range pairs {
			m := mergeMS(&work[pr[0]], &work[pr[1]], opt.Layer, opt.Snaking)
			m.child = [2]int{pr[0], pr[1]}
			m.leafIdx = -1
			work = append(work, m)
			next = append(next, len(work)-1)
		}
		if leftover >= 0 {
			next = append(next, leftover)
		}
		active = next
	}
	rootIdx := active[0]
	// Top-down embedding.
	t := &Tree{Root: -1, Cap: work[rootIdx].cap, Delay: work[rootIdx].delay}
	t.Root = embed(&t.Nodes, work, rootIdx, -1, rootHint, 0)
	return t, nil
}

// matchNearest greedily pairs active nodes by merging-segment distance.
// With an odd count the node left over is returned to be promoted a level.
func matchNearest(work []msNode, active []int) (pairs [][2]int, leftover int) {
	used := make(map[int]bool, len(active))
	leftover = -1
	// Deterministic order: iterate as given; for each unused node pick the
	// nearest unused partner.
	for i, a := range active {
		if used[a] {
			continue
		}
		best, bestD := -1, math.Inf(1)
		for _, b := range active[i+1:] {
			if used[b] {
				continue
			}
			if d := geom.ArcDist(work[a].ms, work[b].ms); d < bestD {
				best, bestD = b, d
			}
		}
		if best < 0 {
			leftover = a
			break
		}
		used[a], used[best] = true, true
		pairs = append(pairs, [2]int{a, best})
	}
	return pairs, leftover
}

// mergeMS merges two subtrees: split the connecting distance so Elmore
// delays balance. When one side is intrinsically slower even at split 0,
// snaking (a wire detour on the fast edge) restores exact balance if
// enabled; otherwise the tap simply sits on the slow branch's segment and
// the residual skew is left for insertion/refinement.
func mergeMS(a, b *msNode, layer tech.Layer, snaking bool) msNode {
	r, c := layer.UnitRes, layer.UnitCap
	d := geom.ArcDist(a.ms, b.ms)
	// delay via a-branch with edge length ea: a.delay + r·ea·(c·ea + a.cap)
	delayA := func(ea float64) float64 { return a.delay + r*ea*(c*ea+a.cap) }
	delayB := func(eb float64) float64 { return b.delay + r*eb*(c*eb+b.cap) }

	var ea, eb float64
	switch {
	case delayA(0)-delayB(d) > 0:
		// a slower even if tap sits on a's segment.
		ea = 0
		if snaking {
			eb = solveExtend(func(e float64) float64 { return delayB(e) - delayA(0) }, d)
		} else {
			eb = d
		}
	case delayB(0)-delayA(d) > 0:
		eb = 0
		if snaking {
			ea = solveExtend(func(e float64) float64 { return delayA(e) - delayB(0) }, d)
		} else {
			ea = d
		}
	default:
		// Balanced split in [0, d]: f is increasing in ea.
		ea = bisect(func(x float64) float64 { return delayA(x) - delayB(d-x) }, 0, d)
		eb = d - ea
	}

	var core geom.Arc
	switch {
	case ea == 0 && eb >= d:
		// Tap on a's segment within distance eb of b (eps guards the
		// eb == d boundary against floating-point noise).
		eps := 1e-9 * (1 + d)
		core = geom.NewTRR(a.ms, 0).Intersect(geom.NewTRR(b.ms, eb+eps)).CoreArc()
	case eb == 0 && ea >= d:
		eps := 1e-9 * (1 + d)
		core = geom.NewTRR(b.ms, 0).Intersect(geom.NewTRR(a.ms, ea+eps)).CoreArc()
	default:
		// ea+eb equals d exactly, so the intersection is degenerate and
		// floating-point noise can make it empty; expand by a hair so the
		// CoreArc midline collapse absorbs the noise instead.
		eps := 1e-9 * (1 + d)
		is := geom.NewTRR(a.ms, ea+eps).Intersect(geom.NewTRR(b.ms, eb+eps))
		if is.Empty() {
			// Still empty (pathological): place the tap on the closest-pair
			// chord at the balance split so delays stay balanced.
			pa, pb := geom.ClosestBetweenArcs(a.ms, b.ms)
			core = geom.PointArc(pa.Lerp(pb, ea/math.Max(d, 1e-12)))
		} else {
			core = is.CoreArc()
		}
	}
	if DebugMerge {
		fmt.Printf("merge: d=%g ea=%g eb=%g dA(ea)=%g dB(eb)=%g msA=%v msB=%v core=%v\n",
			d, ea, eb, delayA(ea), delayB(eb), a.ms, b.ms, core)
	}
	return msNode{
		ms:      core,
		cap:     a.cap + b.cap + c*(ea+eb),
		delay:   math.Max(delayA(ea), delayB(eb)),
		edgeLen: [2]float64{ea, eb},
	}
}

// solveExtend finds e >= d with f(e) = 0 for increasing f with f(d) <= 0.
func solveExtend(f func(float64) float64, d float64) float64 {
	lo, hi := d, math.Max(2*d, 1.0)
	for f(hi) < 0 {
		hi *= 2
		if hi > 1e9 {
			return hi // pathological; delay model will surface it
		}
	}
	return bisect(f, lo, hi)
}

// bisect finds a root of increasing f on [lo, hi].
func bisect(f func(float64) float64, lo, hi float64) float64 {
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if f(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// embed places node w (an index into work) given the already-placed parent
// position, appending to nodes and returning the new node's index.
func embed(nodes *[]Node, work []msNode, w, parentIdx int, parentPos geom.Point, edgeLen float64) int {
	n := work[w]
	pos := geom.ClosestOnArc(n.ms, parentPos)
	idx := len(*nodes)
	snake := 0.0
	if parentIdx >= 0 {
		if d := pos.Dist(parentPos); edgeLen > d {
			snake = edgeLen - d
		}
	}
	*nodes = append(*nodes, Node{Pos: pos, Parent: parentIdx, LeafIdx: n.leafIdx, SnakeExtra: snake})
	if n.child[0] >= 0 {
		embed(nodes, work, n.child[0], idx, pos, n.edgeLen[0])
		embed(nodes, work, n.child[1], idx, pos, n.edgeLen[1])
	}
	return idx
}

// Wirelength returns the total routed wirelength including snaking detours.
func (t *Tree) Wirelength() float64 {
	var wl float64
	for i, n := range t.Nodes {
		if n.Parent >= 0 {
			wl += n.Pos.Dist(t.Nodes[n.Parent].Pos) + n.SnakeExtra
		}
		_ = i
	}
	return wl
}

// LeafDelays computes, for verification, the Elmore delay from the root
// tapping point to every leaf on the given layer (L-model, including snake
// detours and each leaf's own Cap and ready Delay). Returns a map from leaf
// index to delay.
func (t *Tree) LeafDelays(layer tech.Layer, leaves []Leaf) map[int]float64 {
	r, c := layer.UnitRes, layer.UnitCap
	// Downstream cap per node, leaves seeded with their loads.
	caps := make([]float64, len(t.Nodes))
	order := t.postOrder()
	for _, i := range order {
		n := t.Nodes[i]
		if n.LeafIdx >= 0 {
			caps[i] += leaves[n.LeafIdx].Cap
		}
		if n.Parent >= 0 {
			l := t.Nodes[i].Pos.Dist(t.Nodes[n.Parent].Pos) + n.SnakeExtra
			caps[n.Parent] += caps[i] + c*l
		}
	}
	out := make(map[int]float64)
	delay := make([]float64, len(t.Nodes))
	for i := len(order) - 1; i >= 0; i-- { // reverse postorder = preorder
		idx := order[i]
		n := t.Nodes[idx]
		if n.Parent >= 0 {
			l := n.Pos.Dist(t.Nodes[n.Parent].Pos) + n.SnakeExtra
			delay[idx] = delay[n.Parent] + r*l*(c*l+caps[idx])
		}
		if n.LeafIdx >= 0 {
			out[n.LeafIdx] = delay[idx] + leaves[n.LeafIdx].Delay
		}
	}
	return out
}

func (t *Tree) postOrder() []int {
	kids := make([][]int, len(t.Nodes))
	for i, n := range t.Nodes {
		if n.Parent >= 0 {
			kids[n.Parent] = append(kids[n.Parent], i)
		}
	}
	var order []int
	var rec func(int)
	rec = func(i int) {
		for _, k := range kids[i] {
			rec(k)
		}
		order = append(order, i)
	}
	rec(t.Root)
	return order
}

// DebugMerge enables merge tracing for development.
var DebugMerge bool
